package repro

import "math/rand"

// newRand is a tiny helper shared by the root benchmarks.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
