// Quickstart: fix one erroneous Verilog module with the full RTLFixer
// configuration (ReAct prompting + RAG guidance + Quartus-style feedback)
// and print what happened.
package main

import (
	"fmt"

	"repro/internal/core"
)

// A typical LLM-generated module with two classic defects: the output is
// driven inside an always block but not declared reg, and one statement
// is missing its semicolon.
const buggy = `module top_module (
	input [3:0] a,
	input [3:0] b,
	output [3:0] sum,
	output carry
);
	always @(*) begin
		{carry, sum} = a + b
	end
endmodule
`

func main() {
	fixer, err := core.New(core.Options{
		CompilerName: "quartus", // richest feedback dialect
		PersonaName:  "gpt-3.5",
		RAG:          true,
		Mode:         core.ModeReAct,
		Seed:         42,
	})
	if err != nil {
		panic(err)
	}

	transcript := fixer.Fix("adder.v", buggy, 1)

	fmt.Printf("fixed: %v in %d iteration(s)\n", transcript.Success, transcript.Iterations)
	if len(transcript.FixerRules) > 0 {
		fmt.Printf("rule-based pre-fixer applied: %v\n", transcript.FixerRules)
	}
	fmt.Println("\nfinal code:")
	fmt.Println(transcript.FinalCode)

	// The structured transcript is available too: every Thought, Action,
	// and Observation of the debugging loop.
	fmt.Printf("transcript steps: %d\n", len(transcript.Steps))
}
