// react_trace prints a complete ReAct debugging session in the paper's
// Fig. 2c format — interleaved Thought / Action / Observation steps — on a
// multi-error sample whose second error is masked by the first (the
// cascade that makes iterative debugging outperform one-shot fixing).
package main

import (
	"fmt"

	"repro/internal/core"
)

// Two injected errors: a C-style increment (parse error, reported first)
// masks the undeclared 'clk' (elaboration error, revealed only after the
// first fix compiles past the parser).
const cascading = `module top_module (
	input [7:0] in,
	output reg [7:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 8; i++)
			out[i] <= in[7 - i];
	end
endmodule
`

func main() {
	for _, mode := range []core.Mode{core.ModeOneShot, core.ModeReAct} {
		fixer, err := core.New(core.Options{
			CompilerName: "quartus",
			PersonaName:  "gpt-3.5",
			RAG:          true,
			Mode:         mode,
			Seed:         7,
		})
		if err != nil {
			panic(err)
		}
		tr := fixer.Fix("reverse.sv", cascading, 3)
		fmt.Printf("================ %s ================\n\n", mode)
		fmt.Println(tr.Render())
	}
	fmt.Println("Note how One-shot can only respond to the first compiler message,")
	fmt.Println("while ReAct recompiles after each revision and discovers the masked error.")
}
