// pass_at_k demonstrates the Table 2 pipeline end-to-end on a small slice
// of the VerilogEval-Machine benchmark: sample implementations from the
// simulated model, measure functional correctness by simulation, fix the
// syntax failures with RTLFixer, and measure again.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fixer"
	"repro/internal/llm"
	"repro/internal/metrics"
)

func main() {
	rtlfixer, err := core.New(core.Options{
		CompilerName: "quartus",
		PersonaName:  "gpt-3.5",
		RAG:          true,
		Mode:         core.ModeReAct,
		Seed:         11,
	})
	if err != nil {
		panic(err)
	}

	problems := dataset.Problems(dataset.SuiteMachine)[:12]
	rng := rand.New(rand.NewSource(11))
	const samplesPerProblem = 10

	var ns, origPass, fixedPass []int
	fmt.Printf("%-24s %-10s %-10s\n", "problem", "orig c/n", "fixed c/n")
	for pi, p := range problems {
		rates := llm.SkewRates(llm.RatesFor(string(p.Suite), string(p.Difficulty)), p.ID)
		orig, fixed := 0, 0
		for s := 0; s < samplesPerProblem; s++ {
			sample := llm.Generate(p.RefSource, rates, rng).Code

			if passes(p, sample, int64(pi)) {
				orig++
				fixed++
				continue
			}
			// Only compile failures go through the agent: RTLFixer
			// addresses syntax, not logic.
			clean := fixer.Fix(sample).Code
			if _, design, _ := compiler.Frontend(clean); design != nil {
				continue // simulation error: fixing syntax will not help
			}
			tr := rtlfixer.Fix("sample.v", sample, rng.Int63())
			if passes(p, tr.FinalCode, int64(pi)) {
				fixed++
			}
		}
		ns = append(ns, samplesPerProblem)
		origPass = append(origPass, orig)
		fixedPass = append(fixedPass, fixed)
		fmt.Printf("%-24s %d/%-8d %d/%-8d\n", p.ID, orig, samplesPerProblem, fixed, samplesPerProblem)
	}

	o1, _ := metrics.MeanPassAtK(ns, origPass, 1)
	f1, _ := metrics.MeanPassAtK(ns, fixedPass, 1)
	o5, _ := metrics.MeanPassAtK(ns, origPass, 5)
	f5, _ := metrics.MeanPassAtK(ns, fixedPass, 5)
	fmt.Printf("\npass@1: %.3f -> %.3f (+%.3f from syntax fixing alone)\n", o1, f1, f1-o1)
	fmt.Printf("pass@5: %.3f -> %.3f\n", o5, f5)
}

// passes compiles and simulates a candidate against the problem's golden
// model.
func passes(p *dataset.Problem, code string, vecSeed int64) bool {
	clean := fixer.Fix(code).Code
	if _, design, _ := compiler.Frontend(clean); design == nil {
		return false
	}
	res, err := p.Check(clean, rand.New(rand.NewSource(vecSeed)))
	return err == nil && res.Passed()
}
