// feedback_quality reproduces the paper's Fig. 5 contrast: the same
// erroneous module compiled under each feedback persona, showing how the
// log dialects differ — nothing (Simple), terse file:line messages
// (iverilog), rich coded messages with suggestions (Quartus) — and why
// that matters for the debugging agent.
package main

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/llm"
)

// The paper's Fig. 5 example, task vector100r: 'clk' is not a port.
const vector100r = `module top_module (
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1) begin
			out[i] <= in[99 - i];
		end
	end
endmodule
`

func main() {
	for _, comp := range compiler.All() {
		res := comp.Compile("vector100r.sv", vector100r)
		fmt.Printf("=== %s (information score %.2f) ===\n", comp.Name(), comp.InfoScore())
		fmt.Println(res.Log)

		// What the simulated LLM can extract from each dialect:
		hyps := llm.AnalyzeLog(res.Log)
		if len(hyps) == 0 {
			fmt.Println("-> the model learns nothing about the error's location or cause")
		}
		for _, h := range hyps {
			fmt.Printf("-> hypothesis: %s at line %d (symbol %q, confidence %.2f)\n",
				h.Category, h.Line, h.Symbol, h.Confidence)
		}
		fmt.Println()
	}
}
