#!/usr/bin/env bash
# vlint smoke: drive the analyzer end to end through the CLI over the
# known-dirty fixtures in testdata/lint/ and assert the -json report
# shape with jq. Run from the repo root; CI's analyze job does.
set -euo pipefail

cd "$(dirname "$0")/.."

VLINT="$(mktemp -d)/vlint"
trap 'rm -rf "$(dirname "$VLINT")"' EXIT
go build -o "$VLINT" ./cmd/vlint

FIXTURES=(testdata/lint/latch_sensitivity.v testdata/lint/comb_loop.v
          testdata/lint/races_alias.v testdata/lint/shared_loop_var.v)

fail() { echo "vlint_smoke: FAIL: $*" >&2; exit 1; }

# --- JSON report over all fixtures -----------------------------------
OUT="$("$VLINT" -json "${FIXTURES[@]}")"
echo "$OUT" | jq -e . >/dev/null || fail "-json output is not valid JSON"

[ "$(echo "$OUT" | jq 'length')" -eq 4 ] || fail "expected 4 file reports"
[ "$(echo "$OUT" | jq '[.[] | select(.ok)] | length')" -eq 4 ] \
  || fail "fixtures are frontend-clean; every report should be ok"

# Every rule the fixtures are built to trigger must appear.
for rule in L001 L002 L003 L004 L005 L006 L007 L008 L009 L010; do
  n="$(echo "$OUT" | jq --arg r "$rule" '[.[].findings[] | select(.rule == $r)] | length')"
  [ "$n" -ge 1 ] || fail "rule $rule fired $n times over the fixtures, want >= 1"
done

# Findings carry positions, severities, and messages.
echo "$OUT" | jq -e 'all(.[].findings[]; .line > 0 and .severity == "warning" and (.message | length) > 0)' \
  >/dev/null || fail "malformed finding in -json output"

# The write-race and shared-loop-var findings carry related positions.
for rule in L005 L010; do
  echo "$OUT" | jq -e --arg r "$rule" \
    '[.[].findings[] | select(.rule == $r and (.related | length) > 0)] | length >= 1' \
    >/dev/null || fail "no $rule finding carries related positions"
done

# --- rule selection ---------------------------------------------------
# Frontend diagnostics (no rule code) stay in the report; the analyzer
# rule set must collapse to exactly L010.
ONLY="$("$VLINT" -json -rules L010 testdata/lint/races_alias.v)"
echo "$ONLY" | jq -e '[.[].findings[].rule | select(. != null)] | unique == ["L010"]' \
  >/dev/null || fail "-rules L010 did not restrict the rule set"

"$VLINT" -rules no-such-rule testdata/lint/comb_loop.v 2>/dev/null \
  && fail "unknown rule accepted" || [ $? -eq 2 ] || fail "unknown rule: wrong exit code"

"$VLINT" -rules list | grep -q '^L010  alias-hazard' || fail "-rules list missing L010"

# --- severity escalation drives the exit code -------------------------
if "$VLINT" -severity all=error testdata/lint/comb_loop.v >/dev/null; then
  fail "-severity all=error should exit nonzero on findings"
fi
"$VLINT" testdata/lint/comb_loop.v >/dev/null || fail "warnings alone should exit zero"

echo "vlint_smoke: OK"
