#!/usr/bin/env bash
# Server smoke test: start rtlfixerd on a random port with a durable
# -state-dir, drive /v1/fix and /v1/stats through loadgen, drain on
# SIGTERM — then restart over the same state directory and assert the
# warm daemon serves the replayed workload from cache with byte-identical
# responses, and finally that a corrupted journal tail recovers cleanly
# instead of crashing the process. Along the way it exercises the
# observability plane: /metrics must parse as Prometheus exposition with
# nonzero request counters, /v1/trace must return a span tree covering
# compile and sim for a served fix, and a pprof endpoint must answer.
# Run from the repo root (CI does; locally: scripts/server_smoke.sh).
set -euo pipefail

workdir=$(mktemp -d)
daemon=""
trap '{ [ -n "$daemon" ] && kill "$daemon" 2>/dev/null; } || true; rm -rf "$workdir"' EXIT

statedir="$workdir/state"
fixbody='{"source":"module top_module (\n input [99:0] in,\n output reg [99:0] out\n);\n always @(posedge clk) begin\n  for (int i = 0; i < 100; i = i + 1) begin\n   out[i] <= in[99 - i];\n  end\n end\nendmodule\n","seed":7}'

echo "== building rtlfixerd and loadgen"
go build -o "$workdir/rtlfixerd" ./cmd/rtlfixerd
go build -o "$workdir/loadgen" ./cmd/loadgen

start_daemon() { # $1: log suffix
    : >"$workdir/daemon.out"
    "$workdir/rtlfixerd" -addr 127.0.0.1:0 -state-dir "$statedir" -pprof \
        >"$workdir/daemon.out" 2>"$workdir/daemon.$1.err" &
    daemon=$!
    port=""
    for _ in $(seq 1 50); do
        port=$(sed -n 's/^rtlfixerd: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$workdir/daemon.out")
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "FAIL: daemon never reported its port" >&2
        cat "$workdir/daemon.$1.err" >&2
        kill "$daemon" 2>/dev/null || true
        exit 1
    fi
    echo "== daemon up on port $port (pid $daemon, state $statedir)"
}

stop_daemon() { # $1: log suffix
    kill -TERM "$daemon"
    status=0
    wait "$daemon" || status=$?
    daemon=""
    if [ "$status" -ne 0 ]; then
        echo "FAIL: daemon exited $status after SIGTERM" >&2
        cat "$workdir/daemon.$1.err" >&2
        exit 1
    fi
    grep -q "drained cleanly" "$workdir/daemon.$1.err" || {
        echo "FAIL: daemon log does not report a clean drain" >&2
        cat "$workdir/daemon.$1.err" >&2
        exit 1
    }
}

# canonical_fix captures one deterministic /v1/fix response with the
# timing/coalescing fields stripped (they legitimately vary run to run;
# everything else must be byte-identical across a warm restart).
canonical_fix() { # $1: output file
    curl -sf -X POST "http://127.0.0.1:$port/v1/fix" -d "$fixbody" \
        | jq -cS 'del(.elapsed_ms, .coalesced)' >"$1"
}

echo "== cold start: driving /v1/fix (coalescing herd) and /v1/stats via loadgen"
start_daemon cold
canonical_fix "$workdir/fix.cold.json"
"$workdir/loadgen" -addr "http://127.0.0.1:$port" -n 20 -concurrency 4 -distinct 1 \
    -show-stats | tee "$workdir/loadgen.out"

echo "== checking the stats the run produced"
grep -q '"agent_runs"' "$workdir/loadgen.out" || { echo "FAIL: stats missing agent_runs" >&2; exit 1; }
grep -q '"latency_fix_ms"' "$workdir/loadgen.out" || { echo "FAIL: stats missing latency histogram" >&2; exit 1; }
grep -q '"store"' "$workdir/loadgen.out" || { echo "FAIL: stats missing store section" >&2; exit 1; }

echo "== scraping /metrics (Prometheus exposition)"
curl -sf "http://127.0.0.1:$port/metrics" >"$workdir/metrics.prom"
types=$(grep -c '^# TYPE rtlfixer_' "$workdir/metrics.prom")
if [ "$types" -lt 10 ]; then
    echo "FAIL: only $types # TYPE lines in /metrics" >&2
    cat "$workdir/metrics.prom" >&2
    exit 1
fi
grep -Eq '^rtlfixer_fix_requests_total [1-9][0-9]*$' "$workdir/metrics.prom" || {
    echo "FAIL: fix_requests_total missing or zero after the load run" >&2
    grep fix_requests "$workdir/metrics.prom" >&2 || true
    exit 1
}
grep -q 'rtlfixer_stage_duration_ms_bucket{stage="compile",le="+Inf"}' "$workdir/metrics.prom" || {
    echo "FAIL: per-stage histogram missing the compile stage" >&2; exit 1; }
echo "== /metrics ok ($types families)"

echo "== fetching a request trace for a served fix"
# Coalesced followers' traces carry only admission+wait; the leader's
# trace (the one with the most spans) holds the shared run subtree.
fix_trace=$(curl -sf "http://127.0.0.1:$port/v1/trace" \
    | jq -r '.traces | map(select(.root == "fix")) | max_by(.spans) | .id')
if [ -z "$fix_trace" ] || [ "$fix_trace" = "null" ]; then
    echo "FAIL: no fix trace retained after the load run" >&2
    exit 1
fi
spans=$(curl -sf "http://127.0.0.1:$port/v1/trace/$fix_trace" \
    | jq -r '[.root | recurse(.children[]?) | .name] | join(" ")')
echo "== trace $fix_trace spans: $spans"
for stage in fix run agent compile sim; do
    case " $spans " in
    *" $stage "*) ;;
    *) echo "FAIL: trace $fix_trace missing a $stage span ($spans)" >&2; exit 1 ;;
    esac
done

echo "== hitting a pprof endpoint"
curl -sf "http://127.0.0.1:$port/debug/pprof/cmdline" >/dev/null || {
    echo "FAIL: pprof endpoint not serving" >&2; exit 1; }

echo "== sending SIGTERM and waiting for graceful drain + state flush"
stop_daemon cold
grep -q "state flushed" "$workdir/daemon.cold.err" || {
    echo "FAIL: daemon did not flush its state on drain" >&2
    cat "$workdir/daemon.cold.err" >&2
    exit 1
}
[ -s "$statedir/journal.log" ] || { echo "FAIL: no journal written" >&2; exit 1; }

echo "== warm restart over the same -state-dir"
start_daemon warm
# The FIRST request after restart must be served from the restored cache
# and answer byte-identically to the cold run.
canonical_fix "$workdir/fix.warm.json"
if ! cmp -s "$workdir/fix.cold.json" "$workdir/fix.warm.json"; then
    echo "FAIL: warm response differs from cold response" >&2
    diff "$workdir/fix.cold.json" "$workdir/fix.warm.json" >&2 || true
    exit 1
fi
stats=$(curl -sf "http://127.0.0.1:$port/v1/stats")
hits=$(echo "$stats" | jq '.cache.compile.hits')
misses=$(echo "$stats" | jq '.cache.compile.misses')
loaded=$(echo "$stats" | jq '.store.loaded_at_open')
if [ "$hits" -eq 0 ] || [ "$loaded" -eq 0 ]; then
    echo "FAIL: warm start ineffective (compile hits=$hits misses=$misses loaded_at_open=$loaded)" >&2
    exit 1
fi
echo "== warm first request: compile hits=$hits misses=$misses, $loaded records loaded at open"
# Replay the whole workload; the warm-start split line must appear.
"$workdir/loadgen" -addr "http://127.0.0.1:$port" -n 20 -concurrency 4 -distinct 1 \
    | tee "$workdir/loadgen.warm.out"
grep -q "first .* requests" "$workdir/loadgen.warm.out" || {
    echo "FAIL: loadgen warm-start split line missing" >&2; exit 1; }
stop_daemon warm

echo "== corrupting the journal tail (torn crash write) and restarting"
printf '\x04\xde\xad\xbe\xef' >>"$statedir/journal.log"
start_daemon corrupt
health=$(curl -sf "http://127.0.0.1:$port/v1/healthz" | jq -r '.status')
if [ "$health" != "ok" ]; then
    echo "FAIL: daemon unhealthy after journal corruption: $health" >&2
    exit 1
fi
grep -q "recovered journal" "$workdir/daemon.corrupt.err" || {
    echo "FAIL: recovery not reported after a torn journal tail" >&2
    cat "$workdir/daemon.corrupt.err" >&2
    exit 1
}
# The recovered daemon still serves the workload correctly.
canonical_fix "$workdir/fix.recovered.json"
cmp -s "$workdir/fix.cold.json" "$workdir/fix.recovered.json" || {
    echo "FAIL: post-recovery response differs" >&2; exit 1; }
stop_daemon corrupt

echo "== OK: cold serve, metrics+trace+pprof, clean drain, warm restart (hits=$hits, byte-identical responses), torn-tail recovery"
