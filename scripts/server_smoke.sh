#!/usr/bin/env bash
# Server smoke test: start rtlfixerd on a random port, drive /v1/fix and
# /v1/stats through loadgen, then assert the daemon drains cleanly on
# SIGTERM. Run from the repo root (CI does; locally: scripts/server_smoke.sh).
set -euo pipefail

workdir=$(mktemp -d)
daemon=""
trap '{ [ -n "$daemon" ] && kill "$daemon" 2>/dev/null; } || true; rm -rf "$workdir"' EXIT

echo "== building rtlfixerd and loadgen"
go build -o "$workdir/rtlfixerd" ./cmd/rtlfixerd
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== starting rtlfixerd on a random port"
"$workdir/rtlfixerd" -addr 127.0.0.1:0 >"$workdir/daemon.out" 2>"$workdir/daemon.err" &
daemon=$!

port=""
for _ in $(seq 1 50); do
    port=$(sed -n 's/^rtlfixerd: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$workdir/daemon.out")
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "FAIL: daemon never reported its port" >&2
    cat "$workdir/daemon.err" >&2
    kill "$daemon" 2>/dev/null || true
    exit 1
fi
echo "== daemon up on port $port (pid $daemon)"

echo "== driving /v1/fix (coalescing herd) and /v1/stats via loadgen"
"$workdir/loadgen" -addr "http://127.0.0.1:$port" -n 20 -concurrency 4 -distinct 1 \
    -show-stats | tee "$workdir/loadgen.out"

echo "== checking the stats the run produced"
grep -q '"agent_runs"' "$workdir/loadgen.out" || { echo "FAIL: stats missing agent_runs" >&2; exit 1; }
grep -q '"latency_fix_ms"' "$workdir/loadgen.out" || { echo "FAIL: stats missing latency histogram" >&2; exit 1; }

echo "== sending SIGTERM and waiting for graceful drain"
kill -TERM "$daemon"
status=0
wait "$daemon" || status=$?
if [ "$status" -ne 0 ]; then
    echo "FAIL: daemon exited $status after SIGTERM" >&2
    cat "$workdir/daemon.err" >&2
    exit 1
fi
grep -q "drained cleanly" "$workdir/daemon.err" || {
    echo "FAIL: daemon log does not report a clean drain" >&2
    cat "$workdir/daemon.err" >&2
    exit 1
}
echo "== OK: served $(grep -c '^loadgen' "$workdir/loadgen.out" || true) report lines, drained cleanly"
