#!/usr/bin/env bash
# Chaos smoke test: start rtlfixerd under a deterministic fault-injection
# profile (store I/O errors, transient + garbled LLM failures, periodic
# worker panics) and drive it with loadgen's chaos mode. The gate:
#
#   - the daemon never crashes — every request, malformed or not, gets a
#     well-formed JSON response;
#   - transient faults are retried and recovered above a floor, panics
#     are isolated into typed 500s and counted;
#   - a kill -9 mid-traffic restarts warm over the same state directory;
#   - the fault schedule is deterministic per seed (two daemons, same
#     seed, same single-threaded workload → identical fault counters);
#   - a zero-rate profile changes nothing (byte-identical fix response
#     against a no-fault daemon).
#
# Run from the repo root (CI does; locally: scripts/chaos_smoke.sh).
set -euo pipefail

workdir=$(mktemp -d)
daemon=""
daemon2=""
trap '{ [ -n "$daemon" ] && kill "$daemon" 2>/dev/null; [ -n "$daemon2" ] && kill "$daemon2" 2>/dev/null; } || true; rm -rf "$workdir"' EXIT

profile='store.write.error:0.05;store.read.error:0.05;llm.transient:0.2;llm.garbage:0.05;worker.panic:0.1'
fixbody='{"source":"module top_module (\n input [99:0] in,\n output reg [99:0] out\n);\n always @(posedge clk) begin\n  for (int i = 0; i < 100; i = i + 1) begin\n   out[i] <= in[99 - i];\n  end\n end\nendmodule\n","seed":7}'

echo "== building rtlfixerd and loadgen"
go build -o "$workdir/rtlfixerd" ./cmd/rtlfixerd
go build -o "$workdir/loadgen" ./cmd/loadgen

start_daemon() { # $1: log suffix, rest: extra daemon flags
    suffix=$1; shift
    : >"$workdir/daemon.$suffix.out"
    "$workdir/rtlfixerd" -addr 127.0.0.1:0 "$@" \
        >"$workdir/daemon.$suffix.out" 2>"$workdir/daemon.$suffix.err" &
    daemon=$!
    port=""
    for _ in $(seq 1 50); do
        port=$(sed -n 's/^rtlfixerd: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$workdir/daemon.$suffix.out")
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "FAIL: daemon never reported its port" >&2
        cat "$workdir/daemon.$suffix.err" >&2
        exit 1
    fi
    echo "== daemon up on port $port (pid $daemon, $suffix)"
}

stat_of() { # $1: port, $2: jq path
    curl -sf "http://127.0.0.1:$1/v1/stats" | jq -r "$2"
}

echo "== chaos run: daemon under fault profile, loadgen -chaos traffic"
start_daemon chaos -state-dir "$workdir/state" -coalesce=false \
    -fault-profile "$profile" -fault-seed 7
grep -q "fault injection ACTIVE" "$workdir/daemon.chaos.err" || {
    echo "FAIL: daemon did not log the active fault profile" >&2; exit 1; }

"$workdir/loadgen" -addr "http://127.0.0.1:$port" -n 120 -concurrency 6 -distinct 4 \
    -wait-ready 30s -chaos -max-error-rate 0.35 | tee "$workdir/loadgen.chaos.out"

kill -0 "$daemon" 2>/dev/null || { echo "FAIL: daemon died under chaos" >&2; exit 1; }

echo "== asserting the resilience ledger"
retried=$(stat_of "$port" '.resilience.llm_retried_runs')
recovered=$(stat_of "$port" '.resilience.llm_retry_recovered')
panics=$(stat_of "$port" '.resilience.panics_worker')
fired=$(stat_of "$port" '.faults["worker.panic"].fired')
[ "$retried" -gt 0 ] || { echo "FAIL: no LLM retries under llm.transient:0.2" >&2; exit 1; }
[ "$recovered" -gt 0 ] || { echo "FAIL: no retry-recovered runs (floor is 1)" >&2; exit 1; }
[ "$panics" -gt 0 ] || { echo "FAIL: no worker panics recorded under worker.panic:0.1" >&2; exit 1; }
[ "$panics" = "$fired" ] || { echo "FAIL: panics_worker=$panics != worker.panic fired=$fired" >&2; exit 1; }
echo "   retried=$retried recovered=$recovered worker_panics=$panics (all isolated)"

echo "== kill -9 mid-traffic, then warm restart over the same state dir"
"$workdir/loadgen" -addr "http://127.0.0.1:$port" -n 400 -concurrency 4 -distinct 2 \
    >"$workdir/loadgen.killed.out" 2>&1 &
loadpid=$!
sleep 1
kill -9 "$daemon"
daemon=""
wait "$loadpid" 2>/dev/null || true   # transport errors expected: the daemon was murdered
start_daemon restart -state-dir "$workdir/state" -fault-profile "$profile" -fault-seed 7
for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$port/v1/readyz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf -X POST "http://127.0.0.1:$port/v1/fix" -d "$fixbody" | jq -e '.success == true' >/dev/null || {
    echo "FAIL: restarted daemon cannot serve the canonical fix" >&2
    cat "$workdir/daemon.restart.err" >&2; exit 1; }
kill "$daemon"; wait "$daemon" 2>/dev/null || true; daemon=""
echo "   warm restart after kill -9 serves correctly"

echo "== determinism: same seed, same workload => identical fault counters"
start_daemon detA -fault-profile 'llm.transient:0.3;llm.garbage:0.1' -fault-seed 11
portA=$port
daemon2=$daemon # keep detA covered by the trap while detB reuses $daemon
start_daemon detB -fault-profile 'llm.transient:0.3;llm.garbage:0.1' -fault-seed 11
portB=$port
for p in "$portA" "$portB"; do
    "$workdir/loadgen" -addr "http://127.0.0.1:$p" -n 20 -concurrency 1 -distinct 4 \
        -wait-ready 30s >/dev/null
done
curl -sf "http://127.0.0.1:$portA/v1/stats" | jq -S '.faults' >"$workdir/faults.A.json"
curl -sf "http://127.0.0.1:$portB/v1/stats" | jq -S '.faults' >"$workdir/faults.B.json"
cmp "$workdir/faults.A.json" "$workdir/faults.B.json" || {
    echo "FAIL: fault schedules diverged between same-seed daemons" >&2
    diff "$workdir/faults.A.json" "$workdir/faults.B.json" >&2 || true
    exit 1; }
echo "   fault counters identical across same-seed daemons"
kill "$daemon" "$daemon2"
wait "$daemon" 2>/dev/null || true
wait "$daemon2" 2>/dev/null || true
daemon=""; daemon2=""

echo "== zero-rate profile is a no-op (byte-identical canonical response)"
start_daemon nofault
canonport=$port
curl -sf -X POST "http://127.0.0.1:$canonport/v1/fix" -d "$fixbody" \
    | jq -cS 'del(.elapsed_ms, .coalesced)' >"$workdir/fix.nofault.json"
kill "$daemon"; wait "$daemon" 2>/dev/null || true; daemon=""
start_daemon zerorate -fault-profile 'llm.transient:0' -fault-seed 3
curl -sf -X POST "http://127.0.0.1:$port/v1/fix" -d "$fixbody" \
    | jq -cS 'del(.elapsed_ms, .coalesced)' >"$workdir/fix.zerorate.json"
cmp "$workdir/fix.nofault.json" "$workdir/fix.zerorate.json" || {
    echo "FAIL: zero-rate profile perturbed the response" >&2; exit 1; }
kill "$daemon"; wait "$daemon" 2>/dev/null || true; daemon=""
echo "   zero-rate profile byte-identical to no profile"

echo "PASS: chaos smoke (no crashes, retries recovered, panics isolated, deterministic schedule)"
