// Dirty on purpose: y latches (L001), the event list misses b and sel
// (L002), and z reads y before the block assigns it (L008).
module latch_sensitivity(input sel, input a, input b, output reg y, output reg z);
	always @(a) begin
		z = y & b;
		if (sel) y = a;
	end
endmodule
