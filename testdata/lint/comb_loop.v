// Dirty on purpose: y -> w -> y is a combinational cycle (L006), the
// comb block assigns with <= (L003), and input spare is never read
// (L009).
module comb_loop(input a, input spare, output reg y);
	wire w;
	assign w = y | a;
	always @(*) y <= w ^ a;
endmodule
