// Dirty on purpose: two clocked blocks share the module-scope loop
// variable i as a nonblocking store index (L010), and scratch is
// written but never read (L009).
module shared_loop_var(input clk, input [7:0] d, output reg [7:0] q);
	integer i;
	reg [7:0] scratch;
	always @(posedge clk) begin
		for (i = 0; i < 4; i = i + 1) q[i] <= d[i];
		scratch <= d;
	end
	always @(posedge clk) begin
		for (i = 4; i < 8; i = i + 1) q[i] <= d[i];
	end
endmodule
