// Dirty on purpose: q is driven from two clocked blocks (L005), the
// clocked block uses blocking stores (L004), y truncates an 8-bit sum
// (L007), and q[4:1] = q is a self-aliasing slice store (L010).
module races_alias(input clk, input [7:0] a, input [7:0] b, output reg [3:0] y, output reg [7:0] q);
	always @(posedge clk) begin
		q = a;
		q[4:1] = q;
	end
	always @(posedge clk) q <= b;
	always @(*) y = a + b;
endmodule
