// Command vlint exposes the Verilog compiler frontend as a standalone
// lint tool: it parses and elaborates one or more source files, runs the
// semantic analysis rules (internal/analyze), and prints diagnostics in
// the chosen persona's log dialect (iverilog-style terse logs,
// Quartus-style coded logs, or the raw structured diagnostics).
//
// Usage:
//
//	vlint file.v [file2.v ...]        # quartus-style logs (default)
//	vlint -style iverilog file.v
//	vlint -style raw file.v           # structured category-tagged output
//	vlint -rules list                 # print the analyzer rule catalogue
//	vlint -rules L001,alias-hazard f.v  # run only the named rules
//	vlint -severity all=error f.v     # escalate findings (affects exit code)
//	vlint -json file.v                # machine-readable report
//	vlint -print file.v               # pretty-print the parsed AST back
//	vlint -coverage file.v            # also simulate; toggle coverage to stderr
//	vlint -vcd out.vcd file.v         # also simulate; write the waveform dump
//
// Exit status is non-zero when any file fails to compile or carries an
// error-severity finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analyze"
	"repro/internal/compiler"
	"repro/internal/diag"
	"repro/internal/sema"
	"repro/internal/sim"
	"repro/internal/verilog"
	"repro/internal/wave"
)

// jsonPos mirrors diag.Pos with stable lowercase keys.
type jsonPos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// jsonFinding is one diagnostic in -json output. Frontend diagnostics
// have an empty rule; analyzer findings carry their L-code.
type jsonFinding struct {
	Rule     string    `json:"rule,omitempty"`
	Severity string    `json:"severity"`
	Category string    `json:"category"`
	Line     int       `json:"line"`
	Col      int       `json:"col"`
	Symbol   string    `json:"symbol,omitempty"`
	Message  string    `json:"message"`
	Related  []jsonPos `json:"related,omitempty"`
}

// jsonReport is the per-file object in -json output.
type jsonReport struct {
	File     string        `json:"file"`
	Ok       bool          `json:"ok"`
	Findings []jsonFinding `json:"findings"`
}

func main() {
	style := flag.String("style", "quartus", "log dialect: quartus, iverilog, or raw")
	doPrint := flag.Bool("print", false, "pretty-print the parsed source instead of linting")
	rules := flag.String("rules", "", "comma-separated analyzer rules to run (codes or names; empty = all; 'list' prints the catalogue; 'none' disables the analyzer)")
	severity := flag.String("severity", "", "comma-separated severity overrides, e.g. 'all=error' or 'L001=error,unused-signal=warning'")
	asJSON := flag.Bool("json", false, "emit one JSON array of per-file reports (frontend diagnostics + analyzer findings)")
	coverage := flag.Bool("coverage", false, "simulate each elaborable file briefly and print its toggle-coverage summary to stderr")
	vcdOut := flag.String("vcd", "", "simulate each elaborable file briefly and write a VCD waveform dump to this path (multi-file runs append the file index)")
	flag.Parse()

	if *rules == "list" {
		for _, r := range analyze.Rules() {
			fmt.Printf("%s  %-24s %-8s %s\n", r.Code, r.Name, r.Severity, r.Doc)
		}
		return
	}

	opts, runAnalyzer, err := analyzerOptions(*rules, *severity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vlint: %v\n", err)
		os.Exit(2)
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vlint [-style quartus|iverilog|raw] [-rules ...] [-severity ...] [-json] [-print] file.v ...")
		os.Exit(2)
	}

	failed := false
	var reports []jsonReport
	for i, name := range flag.Args() {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vlint: %v\n", err)
			os.Exit(1)
		}
		src := string(data)

		if *doPrint {
			file, diags := verilog.Parse(src)
			if diags.HasErrors() {
				fmt.Fprintf(os.Stderr, "vlint: %s has parse errors; printing best-effort AST\n", name)
				failed = true
			}
			fmt.Print(verilog.Print(file))
			continue
		}

		file, design, diags := compiler.Frontend(src)
		var findings diag.List
		if runAnalyzer {
			findings = analyze.Run(file, design, opts)
		}
		if findings.HasErrors() {
			failed = true
		}
		if (*coverage || *vcdOut != "") && design != nil {
			observeRun(name, src, design, *coverage, vcdPath(*vcdOut, i, flag.NArg()))
		}

		if *asJSON {
			reports = append(reports, buildReport(name, design, diags, findings))
			if design == nil || diags.HasErrors() {
				failed = true
			}
			continue
		}

		switch *style {
		case "raw":
			all := append(append(diag.List{}, diags...), findings...)
			all.SortByPos()
			for _, d := range all {
				rule := ""
				if d.Rule != "" {
					rule = d.Rule + " "
				}
				fmt.Printf("%s:%s: %s[%s%s] %s\n", name, d.Pos, d.Severity, rule, d.Category, d.Message)
				for _, rp := range d.Related {
					fmt.Printf("%s:%s: note: related to the finding above\n", name, rp)
				}
			}
			if design == nil {
				failed = true
			} else if len(all) == 0 {
				fmt.Printf("%s: clean\n", name)
			}
		default:
			comp, ok := compiler.ByName(*style)
			if !ok {
				fmt.Fprintf(os.Stderr, "vlint: unknown style %q\n", *style)
				os.Exit(2)
			}
			res := comp.Compile(name, src)
			// Every persona now emits a non-empty log on success too, so
			// the log is the whole report.
			fmt.Print(res.Log)
			fmt.Print(analyze.RenderText(name, findings))
			if !res.Ok {
				failed = true
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "vlint: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// observeRun is the -coverage/-vcd dynamic pass: simulate the design
// for a few cycles through the differential path with wave observers
// attached. Best-effort — designs the sim frontend rejects are reported
// and skipped, never failing the lint.
func observeRun(name, src string, design *sema.Design, wantCov bool, vcdFile string) {
	var cov *wave.Coverage
	var rec *wave.Recorder
	if wantCov {
		cov = wave.NewCoverage()
	}
	if vcdFile != "" {
		rec = wave.NewRecorder(0) // unbounded: dump the whole run
	}
	if _, err := sim.DiffSource(src, sim.DiffConfig{
		Clock:    clockInput(design),
		Cycles:   8,
		Seed:     1,
		Coverage: cov,
		Recorder: rec,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "vlint: %s: simulation skipped: %v\n", name, err)
		return
	}
	if cov != nil {
		fmt.Fprintf(os.Stderr, "vlint: %s: %s\n", name, cov.Stats())
	}
	if rec != nil {
		if err := os.WriteFile(vcdFile, []byte(rec.VCD()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vlint: %v\n", err)
			os.Exit(1)
		}
	}
}

// clockInput finds the design's clock-looking input port, if any.
func clockInput(d *sema.Design) string {
	for _, in := range d.Inputs() {
		switch strings.ToLower(in.Name) {
		case "clk", "clock":
			return in.Name
		}
	}
	return ""
}

// vcdPath derives the per-file -vcd output path: the path as given for
// single-file runs, path with a .N index suffix before the extension
// for multi-file runs.
func vcdPath(out string, i, n int) string {
	if out == "" || n == 1 {
		return out
	}
	ext := ".vcd"
	base := strings.TrimSuffix(out, ext)
	if base == out {
		ext = ""
	}
	return fmt.Sprintf("%s.%d%s", base, i, ext)
}

// analyzerOptions validates -rules/-severity into analyze.Options.
// runAnalyzer is false when -rules is "none".
func analyzerOptions(rules, severity string) (opts analyze.Options, runAnalyzer bool, err error) {
	runAnalyzer = true
	if rules == "none" {
		return opts, false, nil
	}
	if rules != "" {
		names := splitList(rules)
		if _, err := analyze.ResolveRules(names); err != nil {
			return opts, false, err
		}
		opts.Rules = names
	}
	if severity != "" {
		opts.Severity = map[string]diag.Severity{}
		for _, kv := range splitList(severity) {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return opts, false, fmt.Errorf("bad -severity entry %q (want rule=level)", kv)
			}
			var sev diag.Severity
			switch val {
			case "warning":
				sev = diag.SeverityWarning
			case "error":
				sev = diag.SeverityError
			default:
				return opts, false, fmt.Errorf("bad severity level %q (want warning or error)", val)
			}
			if key != "all" {
				if _, ok := analyze.RuleByName(key); !ok {
					return opts, false, fmt.Errorf("unknown rule %q in -severity", key)
				}
			}
			opts.Severity[key] = sev
		}
	}
	return opts, runAnalyzer, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildReport merges frontend diagnostics and analyzer findings into the
// stable -json shape, sorted by position.
func buildReport(name string, design *sema.Design, diags, findings diag.List) jsonReport {
	all := append(append(diag.List{}, diags...), findings...)
	all.SortByPos()
	rep := jsonReport{
		File:     name,
		Ok:       design != nil && !diags.HasErrors(),
		Findings: []jsonFinding{},
	}
	for _, d := range all {
		f := jsonFinding{
			Rule:     d.Rule,
			Severity: d.Severity.String(),
			Category: d.Category.String(),
			Line:     d.Pos.Line,
			Col:      d.Pos.Col,
			Symbol:   d.Symbol,
			Message:  d.Message,
		}
		for _, rp := range d.Related {
			f.Related = append(f.Related, jsonPos{Line: rp.Line, Col: rp.Col})
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep
}
