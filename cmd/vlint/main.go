// Command vlint exposes the Verilog compiler frontend as a standalone
// lint tool: it parses and elaborates one or more source files and prints
// diagnostics in the chosen persona's log dialect (iverilog-style terse
// logs, Quartus-style coded logs, or the raw structured diagnostics).
//
// Usage:
//
//	vlint file.v [file2.v ...]        # quartus-style logs (default)
//	vlint -style iverilog file.v
//	vlint -style raw file.v           # structured category-tagged output
//	vlint -print file.v               # pretty-print the parsed AST back
//
// Exit status is non-zero when any file fails to compile.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compiler"
	"repro/internal/verilog"
)

func main() {
	style := flag.String("style", "quartus", "log dialect: quartus, iverilog, or raw")
	doPrint := flag.Bool("print", false, "pretty-print the parsed source instead of linting")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vlint [-style quartus|iverilog|raw] [-print] file.v ...")
		os.Exit(2)
	}

	failed := false
	for _, name := range flag.Args() {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vlint: %v\n", err)
			os.Exit(1)
		}
		src := string(data)

		if *doPrint {
			file, diags := verilog.Parse(src)
			if diags.HasErrors() {
				fmt.Fprintf(os.Stderr, "vlint: %s has parse errors; printing best-effort AST\n", name)
				failed = true
			}
			fmt.Print(verilog.Print(file))
			continue
		}

		switch *style {
		case "raw":
			_, design, diags := compiler.Frontend(src)
			for _, d := range diags {
				fmt.Printf("%s:%s: %s[%s] %s\n", name, d.Pos, d.Severity, d.Category, d.Message)
			}
			if design == nil {
				failed = true
			} else if len(diags) == 0 {
				fmt.Printf("%s: clean\n", name)
			}
		default:
			comp, ok := compiler.ByName(*style)
			if !ok {
				fmt.Fprintf(os.Stderr, "vlint: unknown style %q\n", *style)
				os.Exit(2)
			}
			res := comp.Compile(name, src)
			// Every persona now emits a non-empty log on success too, so
			// the log is the whole report.
			fmt.Print(res.Log)
			if !res.Ok {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
