// Command benchmark regenerates the paper's evaluation artifacts: Table 1
// (fix-rate ablation), Table 2 (pass@k before/after fixing), Table 3
// (RTLLM generalization), Figure 4 (outcome rings), and Figure 7 (ReAct
// iteration histogram).
//
// Usage:
//
//	benchmark -exp table1            # one experiment
//	benchmark -exp all               # everything (the default)
//	benchmark -exp table1 -repeats 3 # quicker, noisier
//	benchmark -workers 8             # size the evaluation pool
//	benchmark -cache=false           # disable the memoization layer
//	benchmark -exp table1 -json      # machine-readable results on stdout
//	benchmark -state-dir ./state             # journal per-job results
//	benchmark -state-dir ./state -resume     # skip completed jobs
//	benchmark -exp table1 -stages            # stage latency table on stderr
//
// With -state-dir, every completed agent job is journaled durably
// (internal/store); after a crash or kill, -resume restores those
// outcomes and re-runs only the unfinished jobs, producing final tables
// byte-identical to an uninterrupted run.
//
// The expensive agent runs are fanned out over a worker pool
// (internal/pipeline) and memoized through the sharded cache layer
// (internal/memo); output is byte-identical for any -workers value and
// for -cache on or off. Cache counters go to stderr, never stdout, so
// table output stays comparable across configurations.
//
// With -json, stdout carries exactly one JSON document — an object with
// "schema", "seed", and one entry per selected experiment under
// "experiments" — and the human tables plus timing lines move to stderr,
// so dashboards (e.g. ones fed by rtlfixerd's /v1/stats) can consume the
// results without scraping.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/curate"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/memo"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, table3, figure4, figure7, curation, ablation, simfeedback, analyzer, or all")
	seed := flag.Int64("seed", 2024, "random seed")
	repeats := flag.Int("repeats", 10, "table 1 repeats per sample (paper: 10)")
	samples := flag.Int("samples", 20, "table 2/3 samples per problem (paper: 20)")
	workers := flag.Int("workers", runtime.NumCPU(), "evaluation pool size (output is identical for any value)")
	cache := flag.Bool("cache", true, "enable the sharded memoization layer (output is identical either way)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON on stdout (tables move to stderr)")
	stateDir := flag.String("state-dir", "", "durable state directory: journal per-job results for -resume")
	resume := flag.Bool("resume", false, "skip jobs already completed in -state-dir's journal (tables stay byte-identical)")
	stages := flag.Bool("stages", false, "trace every agent job and print a per-stage latency table to stderr at exit")
	coverage := flag.Bool("coverage", false, "print a per-problem reference-design toggle-coverage table to stderr at exit")
	faultProfile := flag.String("fault-profile", "", `chaos testing: inject faults per "point:rate[:duration];..." (internal/fault); empty keeps output byte-identical`)
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
	flag.Parse()

	// Fault injection exercises the resilience plane under the offline
	// harness: with no profile nothing is installed and every hook is a
	// nil atomic load, so default output stays byte-identical.
	if *faultProfile != "" {
		reg, err := fault.Parse(*faultProfile, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: fault profile: %v\n", err)
			os.Exit(2)
		}
		fault.Install(reg)
		fmt.Fprintf(os.Stderr, "benchmark: fault injection ACTIVE (seed %d): %s\n", *faultSeed, *faultProfile)
	}

	// Stage attribution rides the same trace layer the daemon uses: a
	// collector on the bench pipeline seam, folded per span name. The
	// table goes to stderr with the cache counters — stdout tables stay
	// byte-identical with or without -stages.
	var stageAgg *trace.StageAgg
	if *stages {
		stageAgg = trace.NewStageAgg()
		tracer := trace.NewCollector(1, 0, 0)
		tracer.SetOnFinish(stageAgg.Observe)
		bench.SetTracer(tracer)
		defer func() {
			if table := trace.RenderStageTable(stageAgg.Snapshot()); table != "" {
				fmt.Fprint(os.Stderr, table)
			}
		}()
	}

	// The coverage table, like -stages, is stderr-only at exit: stdout
	// tables stay byte-identical with or without the flag.
	if *coverage {
		defer func() {
			fmt.Fprint(os.Stderr, bench.RenderCoverage(bench.CoverageReport(*seed)))
		}()
	}

	if *resume && *stateDir == "" {
		fmt.Fprintln(os.Stderr, "benchmark: -resume requires -state-dir")
		os.Exit(2)
	}
	// With -state-dir every completed agent job is journaled through the
	// pipeline's completion hook (write-behind; flushed at exit), and the
	// simulation oracle records the sources it compiles. With -resume the
	// journal is consulted first, so a killed run restarts and re-runs
	// only the unfinished jobs — final tables are byte-identical to an
	// uninterrupted run because the journal stores exactly the transcript
	// fields the tables consume, keyed by the full job identity.
	if *stateDir != "" {
		st, err := store.Open(*stateDir, store.Options{Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "benchmark: "+format+"\n", args...)
		}})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: state: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchmark: state flush: %v\n", err)
			}
		}()
		if *resume {
			bench.SetJournal(bench.NewStoreJournal(st))
			warmed := dataset.AttachStore(st, true)
			s := st.Stats()
			fmt.Fprintf(os.Stderr, "benchmark: resuming from %s (%d bench jobs journaled, %d oracle sources warmed)\n",
				*stateDir, s.ByKind["bench-job"], warmed)
		} else {
			// Record progress for a future -resume, but never consume
			// state a previous run left behind.
			bench.SetJournal(bench.RecordOnly(bench.NewStoreJournal(st)))
			dataset.AttachStore(st, false)
		}
	}

	// Under -json the human-readable stream moves wholesale to stderr so
	// stdout is exactly one JSON document.
	human := os.Stdout
	if *jsonOut {
		human = os.Stderr
	}
	experiments := map[string]any{}

	// run gates one experiment on -exp, times it, and (with -json)
	// collects its machine-readable form under name.
	run := func(name string, f func() any) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		before := memo.Totals()
		if v := f(); *jsonOut && v != nil {
			experiments[name] = v
		}
		fmt.Fprintf(human, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		if d := memo.Totals().Sub(before); *cache && d != (memo.Stats{}) {
			fmt.Fprintf(os.Stderr, "[%s cache: %d compile hits, %d misses, %d evictions, %d index lookups]\n",
				name, d.Hits, d.Misses, d.Evictions, d.Lookups)
		}
	}

	var t1 *bench.Table1Result
	table1 := func() *bench.Table1Result {
		if t1 == nil {
			t1 = bench.RunTable1(bench.Table1Config{Seed: *seed, Repeats: *repeats, Workers: *workers, Cache: *cache})
		}
		return t1
	}

	var t2 *bench.Table2Result
	table2 := func() *bench.Table2Result {
		if t2 == nil {
			t2 = bench.RunTable2(bench.Table2Config{Seed: *seed, SampleN: *samples, Workers: *workers, Cache: *cache})
		}
		return t2
	}

	run("curation", func() any {
		entries, stats := curate.Build(curate.Options{Seed: *seed})
		fmt.Fprintln(human, "VerilogEval-syntax curation pipeline:")
		fmt.Fprintf(human, "  sampled:          %d\n", stats.Sampled)
		fmt.Fprintf(human, "  compile-failing:  %d\n", stats.CompileFailing)
		fmt.Fprintf(human, "  after filtering:  %d\n", stats.Filtered)
		fmt.Fprintf(human, "  DBSCAN clusters:  %d\n", stats.Clusters)
		fmt.Fprintf(human, "  final dataset:    %d erroneous implementations\n", len(entries))
		return bench.CurationJSON{
			Sampled:        stats.Sampled,
			CompileFailing: stats.CompileFailing,
			Filtered:       stats.Filtered,
			Clusters:       stats.Clusters,
			Final:          len(entries),
		}
	})
	run("table1", func() any {
		fmt.Fprint(human, table1().Render())
		return table1().JSON()
	})
	run("figure7", func() any {
		fmt.Fprint(human, table1().RenderFigure7())
		return table1().JSON().IterationHist
	})
	run("table2", func() any {
		fmt.Fprint(human, table2().Render())
		return table2().JSON()
	})
	run("figure4", func() any {
		fmt.Fprint(human, table2().RenderFigure4())
		return table2().JSON().Figure4
	})
	run("table3", func() any {
		res := bench.RunTable3(bench.Table3Config{Seed: *seed, SampleN: *samples, Workers: *workers, Cache: *cache})
		fmt.Fprint(human, res.Render())
		return res.JSON()
	})
	run("ablation", func() any {
		entries, _ := curate.Build(curate.Options{Seed: *seed})
		retriever := bench.RunRetrieverAblation(*seed, 3, entries, *workers, *cache)
		budget := bench.RunIterationBudgetAblation(*seed, 3, 10, entries, *workers, *cache)
		guidance := bench.RunGuidanceSizeAblation(*seed, 3, entries, *workers, *cache)
		fmt.Fprint(human, bench.RenderAblation("Retriever ablation (ReAct+RAG+Quartus fix rate):", retriever))
		fmt.Fprint(human, bench.RenderAblation("Iteration-budget ablation:", budget))
		fmt.Fprint(human, bench.RenderAblation("Guidance-size ablation (Quartus DB truncated):", guidance))
		return map[string]any{
			"retriever":        bench.AblationsJSON(retriever),
			"iteration_budget": bench.AblationsJSON(budget),
			"guidance_size":    bench.AblationsJSON(guidance),
		}
	})
	run("simfeedback", func() any {
		res := bench.RunSimFeedback(*seed, *samples/2)
		fmt.Fprint(human, res.Render())
		return res.JSON()
	})
	run("analyzer", func() any {
		entries, _ := curate.Build(curate.Options{Seed: *seed})
		res := bench.RunAnalyzerAB(*seed, *repeats, entries, *workers, *cache)
		fmt.Fprint(human, res.Render())
		return res.JSON()
	})

	if *exp != "all" {
		switch *exp {
		case "table1", "table2", "table3", "figure4", "figure7", "curation",
			"ablation", "simfeedback", "analyzer":
		default:
			fmt.Fprintf(os.Stderr, "benchmark: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}

	if *jsonOut {
		doc := map[string]any{
			"schema":      "rtlfixer-bench/v1",
			"seed":        *seed,
			"experiments": experiments,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: encode: %v\n", err)
			os.Exit(1)
		}
	}
}
