// Command benchmark regenerates the paper's evaluation artifacts: Table 1
// (fix-rate ablation), Table 2 (pass@k before/after fixing), Table 3
// (RTLLM generalization), Figure 4 (outcome rings), and Figure 7 (ReAct
// iteration histogram).
//
// Usage:
//
//	benchmark -exp table1            # one experiment
//	benchmark -exp all               # everything (the default)
//	benchmark -exp table1 -repeats 3 # quicker, noisier
//	benchmark -workers 8             # size the evaluation pool
//	benchmark -cache=false           # disable the memoization layer
//
// The expensive agent runs are fanned out over a worker pool
// (internal/pipeline) and memoized through the sharded cache layer
// (internal/memo); output is byte-identical for any -workers value and
// for -cache on or off. Cache counters go to stderr, never stdout, so
// table output stays comparable across configurations.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/curate"
	"repro/internal/memo"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, table3, figure4, figure7, curation, ablation, simfeedback, or all")
	seed := flag.Int64("seed", 2024, "random seed")
	repeats := flag.Int("repeats", 10, "table 1 repeats per sample (paper: 10)")
	samples := flag.Int("samples", 20, "table 2/3 samples per problem (paper: 20)")
	workers := flag.Int("workers", runtime.NumCPU(), "evaluation pool size (output is identical for any value)")
	cache := flag.Bool("cache", true, "enable the sharded memoization layer (output is identical either way)")
	flag.Parse()

	run := func(name string, f func()) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		before := memo.Totals()
		f()
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		if d := memo.Totals().Sub(before); *cache && d != (memo.Stats{}) {
			fmt.Fprintf(os.Stderr, "[%s cache: %d compile hits, %d misses, %d evictions, %d index lookups]\n",
				name, d.Hits, d.Misses, d.Evictions, d.Lookups)
		}
	}

	var t1 *bench.Table1Result
	table1 := func() *bench.Table1Result {
		if t1 == nil {
			t1 = bench.RunTable1(bench.Table1Config{Seed: *seed, Repeats: *repeats, Workers: *workers, Cache: *cache})
		}
		return t1
	}

	var t2 *bench.Table2Result
	table2 := func() *bench.Table2Result {
		if t2 == nil {
			t2 = bench.RunTable2(bench.Table2Config{Seed: *seed, SampleN: *samples, Workers: *workers, Cache: *cache})
		}
		return t2
	}

	run("curation", func() {
		entries, stats := curate.Build(curate.Options{Seed: *seed})
		fmt.Println("VerilogEval-syntax curation pipeline:")
		fmt.Printf("  sampled:          %d\n", stats.Sampled)
		fmt.Printf("  compile-failing:  %d\n", stats.CompileFailing)
		fmt.Printf("  after filtering:  %d\n", stats.Filtered)
		fmt.Printf("  DBSCAN clusters:  %d\n", stats.Clusters)
		fmt.Printf("  final dataset:    %d erroneous implementations\n", len(entries))
	})
	run("table1", func() { fmt.Print(table1().Render()) })
	run("figure7", func() { fmt.Print(table1().RenderFigure7()) })
	run("table2", func() { fmt.Print(table2().Render()) })
	run("figure4", func() { fmt.Print(table2().RenderFigure4()) })
	run("table3", func() {
		res := bench.RunTable3(bench.Table3Config{Seed: *seed, SampleN: *samples, Workers: *workers, Cache: *cache})
		fmt.Print(res.Render())
	})
	run("ablation", func() {
		entries, _ := curate.Build(curate.Options{Seed: *seed})
		fmt.Print(bench.RenderAblation("Retriever ablation (ReAct+RAG+Quartus fix rate):",
			bench.RunRetrieverAblation(*seed, 3, entries, *workers, *cache)))
		fmt.Print(bench.RenderAblation("Iteration-budget ablation:",
			bench.RunIterationBudgetAblation(*seed, 3, 10, entries, *workers, *cache)))
		fmt.Print(bench.RenderAblation("Guidance-size ablation (Quartus DB truncated):",
			bench.RunGuidanceSizeAblation(*seed, 3, entries, *workers, *cache)))
	})
	run("simfeedback", func() {
		fmt.Print(bench.RunSimFeedback(*seed, *samples/2).Render())
	})

	if *exp != "all" {
		switch *exp {
		case "table1", "table2", "table3", "figure4", "figure7", "curation",
			"ablation", "simfeedback":
		default:
			fmt.Fprintf(os.Stderr, "benchmark: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
}
