// Command dataset inspects the benchmark corpora and runs the
// VerilogEval-syntax curation pipeline (§3.4: sampling → filtering →
// DBSCAN clustering → representative selection).
//
// Usage:
//
//	dataset -stats                 # suite sizes and difficulty splits
//	dataset -curate                # build VerilogEval-syntax, print stats
//	dataset -curate -dump DIR      # also write the .v files to DIR
//	dataset -curate -verify        # sanity-check the curated set (parallel)
//	dataset -show PROBLEM_ID       # print one problem's prompt + reference
//
// -verify recompiles every curated entry (each must still fail) and runs
// the full RTLFixer configuration over the set through the
// internal/pipeline worker pool (-workers), reporting the fix rate the
// reference agent achieves on it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/curate"
	"repro/internal/dataset"
	"repro/internal/pipeline"
)

func main() {
	stats := flag.Bool("stats", false, "print suite statistics")
	doCurate := flag.Bool("curate", false, "run the VerilogEval-syntax curation pipeline")
	dump := flag.String("dump", "", "directory to write curated .v files into")
	verify := flag.Bool("verify", false, "sanity-check the curated set with the reference agent")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel agent runs for -verify")
	cache := flag.Bool("cache", true, "enable the sharded memoization layer for -verify (output is identical either way)")
	show := flag.String("show", "", "print one problem (by ID, searched across suites)")
	seed := flag.Int64("seed", 2024, "random seed")
	flag.Parse()

	if *verify {
		*doCurate = true // -verify needs the curated set
	}
	if !*stats && !*doCurate && *show == "" {
		*stats = true
	}

	if *stats {
		fmt.Println("Benchmark suites:")
		for _, s := range []dataset.Suite{dataset.SuiteHuman, dataset.SuiteMachine, dataset.SuiteRTLLM} {
			st := dataset.SuiteStats(s)
			fmt.Printf("  %-8s %3d problems (%d easy, %d hard)\n", s, st.Total, st.Easy, st.Hard)
		}
	}

	if *show != "" {
		for _, s := range []dataset.Suite{dataset.SuiteHuman, dataset.SuiteMachine, dataset.SuiteRTLLM} {
			if p, ok := dataset.ByID(s, *show); ok {
				fmt.Printf("Problem %s (%s, %s)\n\nDescription:\n  %s\n\nReference:\n%s\n",
					p.ID, p.Suite, p.Difficulty, p.Description, p.RefSource)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "dataset: problem %q not found\n", *show)
		os.Exit(1)
	}

	if *doCurate {
		entries, st := curate.Build(curate.Options{Seed: *seed})
		fmt.Println("VerilogEval-syntax curation:")
		fmt.Printf("  sampled %d, compile-failing %d, filtered %d, clusters %d, final %d\n",
			st.Sampled, st.CompileFailing, st.Filtered, st.Clusters, st.Final)
		byMutator := map[string]int{}
		for _, e := range entries {
			for _, m := range e.Mutations {
				byMutator[m.Mutator]++
			}
		}
		fmt.Println("  error classes in the final set:")
		for name, n := range byMutator {
			fmt.Printf("    %-22s %d\n", name, n)
		}
		if *verify {
			// Every curated entry must still fail compilation (cheap,
			// sequential), and the reference configuration must be able
			// to fix a healthy share of them (expensive: through the
			// worker pool).
			stillFailing := 0
			for _, e := range entries {
				if _, design, _ := compiler.Frontend(e.Code); design == nil {
					stillFailing++
				}
			}
			fmt.Printf("  verify: %d/%d entries fail compilation as curated\n", stillFailing, len(entries))
			if stillFailing != len(entries) {
				fmt.Fprintln(os.Stderr, "dataset: curated entries that no longer fail compilation")
				os.Exit(1)
			}

			fixer, err := core.New(core.Options{
				CompilerName: "quartus", RAG: true, Mode: core.ModeReAct, Seed: *seed, Cache: *cache})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dataset: %v\n", err)
				os.Exit(1)
			}
			jobs := make([]pipeline.Job, len(entries))
			for i, e := range entries {
				jobs[i] = pipeline.Job{Group: i, Filename: "main.v", Code: e.Code, SampleSeed: e.SampleSeed}
			}
			start := time.Now()
			results, _ := pipeline.Run(context.Background(), pipeline.Config{Workers: *workers}, jobs,
				pipeline.FixWith(fixer))
			sum := pipeline.Summarize(results)
			fmt.Printf("  verify: reference agent (ReAct+RAG+Quartus) fixes %d/%d (rate %.3f) in %v on %d workers\n",
				sum.Succeeded, sum.Jobs, sum.FixRate, time.Since(start).Round(time.Millisecond), *workers)
		}
		if *dump != "" {
			if err := os.MkdirAll(*dump, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "dataset: %v\n", err)
				os.Exit(1)
			}
			for i, e := range entries {
				name := filepath.Join(*dump, fmt.Sprintf("%03d_%s.v", i, e.ProblemID))
				if err := os.WriteFile(name, []byte(e.Code), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "dataset: %v\n", err)
					os.Exit(1)
				}
			}
			fmt.Printf("  wrote %d files to %s\n", len(entries), *dump)
		}
	}
}
