// Command rtlfixerd is the long-running RTLFixer service: a JSON HTTP
// daemon (internal/server) that pools one fixer per configuration so the
// compile cache and retrieval index are shared across requests, with
// bounded admission, request coalescing, batched dispatch, per-request
// deadlines, live /v1/stats metrics, and graceful drain on SIGTERM.
//
// Usage:
//
//	rtlfixerd                            # serve on 127.0.0.1:8080
//	rtlfixerd -addr 127.0.0.1:0          # serve on a random free port
//	rtlfixerd -max-inflight 8 -queue 32  # size admission control
//	rtlfixerd -coalesce=false -cache=false   # A/B baseline for loadgen
//	rtlfixerd -state-dir ./state         # durable caches: warm restart
//	rtlfixerd -pprof -log-requests       # profiler + structured access log
//	rtlfixerd -trace=false               # disable request tracing
//
// Tracing is on by default: every request carries a span tree
// (admission → queue → run → agent iterations → compile/rag/llm → sim)
// retrievable at GET /v1/trace/{id}; GET /metrics serves Prometheus
// text exposition; -pprof mounts net/http/pprof under /debug/pprof/.
//
// With -state-dir, compile results and the retrieval index persist in a
// content-addressed store (internal/store): a restarted daemon loads them
// at boot and serves its first requests from cache; a SIGTERM drain
// flushes the unwritten tail; a crash costs at most the write-behind
// window, and a torn journal tail recovers at the next start.
//
// Resilience: /v1/readyz answers 503 until the default fixer is
// prewarmed (-prewarm, on by default) and again while draining or while
// the durable store is degraded; /v1/healthz is pure liveness. Panicking
// runs and handlers are isolated into typed 500s, per-configuration
// circuit breakers fail fast after repeated backend aborts, and
// -fault-profile installs a deterministic fault-injection schedule
// (internal/fault) for chaos testing — see scripts/chaos_smoke.sh.
//
// The daemon prints exactly one line to stdout — "rtlfixerd: listening on
// HOST:PORT" — so scripts can discover a randomly assigned port; all
// other logging goes to stderr. SIGTERM/SIGINT trigger a graceful drain:
// admission stops (readyz flips to 503), admitted requests finish, then
// the process exits 0. The -drain-timeout deadline aborts the drain and
// exits 1; a second signal kills the process immediately via the default
// signal disposition (terminated-by-signal status, not an exit code).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	seed := flag.Int64("seed", 1, "base seed for every pooled fixer")
	workers := flag.Int("workers", runtime.NumCPU(), "pipeline workers per dispatch batch")
	maxInFlight := flag.Int("max-inflight", 2*runtime.NumCPU(), "max concurrently running fix requests")
	queueDepth := flag.Int("queue", 64, "admitted-but-waiting requests beyond -max-inflight (0 = none)")
	maxBatch := flag.Int("max-batch", 0, "max requests per dispatch batch (0 = -max-inflight)")
	linger := flag.Duration("linger", 2*time.Millisecond, "batch fill window after the first queued request")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "deadline for requests without timeout_ms")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper clamp on request deadlines")
	coalesce := flag.Bool("coalesce", true, "coalesce identical concurrent requests into one run")
	cache := flag.Bool("cache", true, "enable the sharded memoization layer")
	stateDir := flag.String("state-dir", "", "durable state directory: caches persist across restarts (warm start)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain may take")
	tracing := flag.Bool("trace", true, "collect per-request span traces (GET /v1/trace)")
	traceRing := flag.Int("trace-ring", 0, "recent traces retained for /v1/trace (0 = default 256)")
	traceSlow := flag.Duration("trace-slow", 0, "retain traces slower than this past ring eviction (0 = default 500ms)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logRequests := flag.Bool("log-requests", false, "write one structured access-log line per request to stderr")
	simCheck := flag.Bool("sim-check", true, "simulate each fixed design for one clock cycle (stats + traces only)")
	simObserve := flag.Bool("sim-observe", true, "attach toggle-coverage and engine-profile observers to sim checks (stats 'sim' section, rtlfixer_sim_* metrics)")
	prewarm := flag.Bool("prewarm", true, "build the default fixer configuration before /v1/readyz turns ready")
	faultProfile := flag.String("fault-profile", "", `chaos testing: inject faults per "point:rate[:duration];..." (see internal/fault)`)
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
	flag.Parse()

	logger := log.New(os.Stderr, "rtlfixerd: ", log.LstdFlags)

	// Fault injection is strictly opt-in: with no profile no registry is
	// installed and every injection hook is one nil atomic load.
	if *faultProfile != "" {
		reg, err := fault.Parse(*faultProfile, *faultSeed)
		if err != nil {
			logger.Fatalf("fault profile: %v", err)
		}
		fault.Install(reg)
		logger.Printf("fault injection ACTIVE (seed %d): %s", *faultSeed, *faultProfile)
	}

	// The durable state layer: pooled fixers warm-start from it, fresh
	// results flush behind, and a SIGTERM drain flushes the tail before
	// exit. A corrupt journal tail from a crash recovers at Open.
	var st *store.Store
	if *stateDir != "" {
		var err error
		st, err = store.Open(*stateDir, store.Options{Logf: logger.Printf})
		if err != nil {
			logger.Fatalf("state: %v", err)
		}
	}

	qd := *queueDepth
	if qd == 0 {
		qd = -1 // server.Config: <0 means zero queue, 0 means default
	}
	var tracer *trace.Collector
	if *tracing {
		tracer = trace.NewCollector(*traceRing, 0, *traceSlow)
	}
	var accessLog *slog.Logger
	if *logRequests {
		accessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv := server.New(server.Config{
		Seed:              *seed,
		MaxInFlight:       *maxInFlight,
		QueueDepth:        qd,
		MaxBatch:          *maxBatch,
		BatchLinger:       *linger,
		Workers:           *workers,
		DefaultTimeout:    *defaultTimeout,
		MaxTimeout:        *maxTimeout,
		DisableCoalesce:   !*coalesce,
		DisableCache:      !*cache,
		DisableSimCheck:   !*simCheck,
		DisableSimObserve: !*simObserve,
		Store:             st,
		Logf:              logger.Printf,
		Tracing:           tracer,
		AccessLog:         accessLog,
		Prewarm:           *prewarm,
	})

	// The served handler is the server itself unless pprof is on, in
	// which case an outer mux mounts the profiler explicitly — pprof's
	// side-effect registration on http.DefaultServeMux is never served.
	var handler http.Handler = srv
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", srv)
		handler = outer
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	// The one stdout line: scripts parse the resolved port from it.
	fmt.Printf("rtlfixerd: listening on %s\n", ln.Addr())
	state := "none"
	if st != nil {
		state = fmt.Sprintf("%s (%d records)", st.Dir(), st.Stats().Records)
	}
	logger.Printf("serving (inflight=%d queue=%d batch<=%d linger=%v coalesce=%v cache=%v state=%s trace=%v pprof=%v)",
		*maxInFlight, *queueDepth, *maxBatch, *linger, *coalesce, *cache, state, *tracing, *pprofOn)

	httpSrv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	}
	stop() // a second signal kills the process the default way

	logger.Printf("signal received; draining (timeout %v)", *drainTimeout)
	srv.BeginDrain() // readyz flips to 503; new fix work is refused
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Shutdown stops accepting and waits for in-flight handlers, which in
	// turn wait for their flights; Drain then retires the dispatcher.
	httpErr := httpSrv.Shutdown(shutdownCtx)
	drainErr := srv.Drain(shutdownCtx)
	srv.Close()
	// The drain is over: every admitted request has written its results
	// behind, so Close's final flush makes the cache state durable.
	var stateErr error
	if st != nil {
		stateErr = st.Close()
		if stateErr != nil {
			logger.Printf("state flush: %v", stateErr)
		} else {
			logger.Printf("state flushed to %s", st.Dir())
		}
	}
	if httpErr != nil || drainErr != nil || stateErr != nil {
		logger.Printf("drain incomplete: http=%v dispatch=%v state=%v", httpErr, drainErr, stateErr)
		os.Exit(1)
	}
	logger.Printf("drained cleanly; bye")
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
}
