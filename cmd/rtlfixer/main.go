// Command rtlfixer runs the RTLFixer debugging agent on a single Verilog
// source file and prints the ReAct transcript (Thought / Action /
// Observation steps, paper Fig. 2c) plus the final code.
//
// Usage:
//
//	rtlfixer [flags] file.v          # fix a file
//	rtlfixer [flags] a.v b.v c.v     # fix a batch (parallel, ordered output)
//	rtlfixer -demo                   # fix the paper's Fig. 5 example
//
// Flags select the compiler persona (simple/iverilog/quartus), the LLM
// persona (gpt-3.5/gpt-4), the prompting mode (react/one-shot), and
// whether the retrieval database is consulted. With several input files
// the agent runs are fanned out over -workers goroutines
// (internal/pipeline); per-file output is printed in argument order, so
// it is identical for any worker count.
//
// Exit status reflects fix outcomes, so scripts and harnesses can detect
// failures: 0 when every input was fixed, 1 when any input could not be
// read, errored, or remained broken after the iteration budget, 2 on
// usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/pipeline"
	"repro/internal/wave"
)

// demoSource is the paper's Fig. 5 erroneous implementation (task
// vector100r): posedge clk with no clk port.
const demoSource = `module top_module (
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1) begin
			out[i] <= in[99 - i];
		end
	end
endmodule
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can assert on the exit
// code contract directly.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtlfixer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	compilerName := fs.String("compiler", "quartus", "feedback persona: simple, iverilog, or quartus")
	persona := fs.String("persona", "gpt-3.5", "LLM persona: gpt-3.5 or gpt-4")
	mode := fs.String("mode", "react", "prompting mode: react or one-shot")
	ragOn := fs.Bool("rag", true, "consult the retrieval database")
	iters := fs.Int("iters", 0, "max ReAct iterations (0 = paper default of 10)")
	seed := fs.Int64("seed", 1, "random seed")
	demo := fs.Bool("demo", false, "run on the paper's Fig. 5 example")
	quiet := fs.Bool("quiet", false, "print only the final code")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel agent runs when fixing several files")
	timeout := fs.Duration("timeout", 0, "per-file wall-clock budget (0 = none)")
	cache := fs.Bool("cache", true, "enable the sharded memoization layer (output is identical either way)")
	coverage := fs.Bool("coverage", false, "simulate each fixed design briefly and print its toggle coverage to stderr")
	vcdDir := fs.String("vcd", "", "directory to write a VCD waveform dump of each fixed design's check run")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var sources, names []string
	switch {
	case *demo:
		sources, names = []string{demoSource}, []string{"vector100r.sv"}
	case fs.NArg() >= 1:
		for _, name := range fs.Args() {
			data, err := os.ReadFile(name)
			if err != nil {
				fmt.Fprintf(stderr, "rtlfixer: %v\n", err)
				return 1
			}
			names = append(names, name)
			sources = append(sources, string(data))
		}
	default:
		fmt.Fprintln(stderr, "usage: rtlfixer [flags] file.v ...   (or rtlfixer -demo)")
		fs.PrintDefaults()
		return 2
	}

	m := core.ModeReAct
	if *mode == "one-shot" {
		m = core.ModeOneShot
	}
	fixer, err := core.New(core.Options{
		CompilerName:  *compilerName,
		PersonaName:   *persona,
		RAG:           *ragOn,
		Mode:          m,
		MaxIterations: *iters,
		Seed:          *seed,
		Cache:         *cache,
	})
	if err != nil {
		fmt.Fprintf(stderr, "rtlfixer: %v\n", err)
		return 1
	}

	jobs := make([]pipeline.Job, len(names))
	for i := range names {
		// Each file gets its own sample seed so a batch behaves like n
		// independent single-file invocations.
		jobs[i] = pipeline.Job{Filename: names[i], Code: sources[i], SampleSeed: *seed + int64(i)}
	}
	results, _ := pipeline.Run(context.Background(),
		pipeline.Config{Workers: *workers, JobTimeout: *timeout}, jobs,
		pipeline.FixWith(fixer))

	failed := false
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintf(stderr, "rtlfixer: %s: %v\n", names[i], r.Err)
			failed = true
			continue
		}
		tr := r.Transcript
		// In a batch the per-file header prints even under -quiet (else
		// the concatenated final codes are unattributable); the timing is
		// verbose-only so -quiet output stays byte-deterministic.
		if len(results) > 1 {
			if *quiet {
				fmt.Fprintf(stdout, "==> %s\n", names[i])
			} else {
				fmt.Fprintf(stdout, "==> %s (%v)\n", names[i], r.Elapsed.Round(time.Millisecond))
			}
		}
		if !*quiet {
			fmt.Fprintln(stdout, tr.Render())
			fmt.Fprintln(stdout, "Final code:")
		}
		fmt.Fprintln(stdout, tr.FinalCode)
		if !tr.Success {
			fmt.Fprintf(stderr, "rtlfixer: %s: syntax errors remain after the iteration budget\n", names[i])
			failed = true
		}
		// Observability rides on stderr / side files, so stdout stays
		// byte-identical with the flags off.
		if tr.Success && (*coverage || *vcdDir != "") {
			observeFixed(stderr, names[i], tr.FinalCode, *coverage, *vcdDir)
		}
	}
	// Cache counters go to stderr so stdout stays byte-deterministic.
	if s := fixer.CacheStats(); *cache && !*quiet {
		fmt.Fprintf(stderr, "rtlfixer: cache: %d compile hits, %d misses, %d evictions, %d index lookups\n",
			s.Hits, s.Misses, s.Evictions, s.Lookups)
	}
	if failed {
		return 1
	}
	return 0
}

// observeFixed runs one fixed design through the differential simulation
// path with the wave observers on: -coverage summarizes toggle coverage
// to stderr, -vcd writes a full waveform dump named after the input.
func observeFixed(stderr io.Writer, name, code string, wantCov bool, vcdDir string) {
	if wantCov {
		cov := wave.NewCoverage()
		if _, err := fuzz.CheckSourceCov(code, 8, 1, cov); err != nil {
			fmt.Fprintf(stderr, "rtlfixer: %s: coverage skipped: %v\n", name, err)
		} else {
			fmt.Fprintf(stderr, "rtlfixer: %s: %s\n", name, cov.Stats())
		}
	}
	if vcdDir == "" {
		return
	}
	if err := os.MkdirAll(vcdDir, 0o755); err != nil {
		fmt.Fprintf(stderr, "rtlfixer: %v\n", err)
		return
	}
	vcd, err := fuzz.CaptureVCD(code, 8, 1, 0)
	if err != nil {
		fmt.Fprintf(stderr, "rtlfixer: %s: vcd skipped: %v\n", name, err)
		return
	}
	base := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
	out := filepath.Join(vcdDir, base+".vcd")
	if err := os.WriteFile(out, []byte(vcd), 0o644); err != nil {
		fmt.Fprintf(stderr, "rtlfixer: %v\n", err)
	}
}
