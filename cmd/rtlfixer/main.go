// Command rtlfixer runs the RTLFixer debugging agent on a single Verilog
// source file and prints the ReAct transcript (Thought / Action /
// Observation steps, paper Fig. 2c) plus the final code.
//
// Usage:
//
//	rtlfixer [flags] file.v     # fix a file
//	rtlfixer -demo              # fix the paper's Fig. 5 example
//
// Flags select the compiler persona (simple/iverilog/quartus), the LLM
// persona (gpt-3.5/gpt-4), the prompting mode (react/one-shot), and
// whether the retrieval database is consulted.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

// demoSource is the paper's Fig. 5 erroneous implementation (task
// vector100r): posedge clk with no clk port.
const demoSource = `module top_module (
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1) begin
			out[i] <= in[99 - i];
		end
	end
endmodule
`

func main() {
	compilerName := flag.String("compiler", "quartus", "feedback persona: simple, iverilog, or quartus")
	persona := flag.String("persona", "gpt-3.5", "LLM persona: gpt-3.5 or gpt-4")
	mode := flag.String("mode", "react", "prompting mode: react or one-shot")
	ragOn := flag.Bool("rag", true, "consult the retrieval database")
	iters := flag.Int("iters", 0, "max ReAct iterations (0 = paper default of 10)")
	seed := flag.Int64("seed", 1, "random seed")
	demo := flag.Bool("demo", false, "run on the paper's Fig. 5 example")
	quiet := flag.Bool("quiet", false, "print only the final code")
	flag.Parse()

	var source, name string
	switch {
	case *demo:
		source, name = demoSource, "vector100r.sv"
	case flag.NArg() == 1:
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtlfixer: %v\n", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: rtlfixer [flags] file.v   (or rtlfixer -demo)")
		flag.PrintDefaults()
		os.Exit(2)
	}

	m := core.ModeReAct
	if *mode == "one-shot" {
		m = core.ModeOneShot
	}
	fixer, err := core.New(core.Options{
		CompilerName:  *compilerName,
		PersonaName:   *persona,
		RAG:           *ragOn,
		Mode:          m,
		MaxIterations: *iters,
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtlfixer: %v\n", err)
		os.Exit(1)
	}

	tr := fixer.Fix(name, source, *seed)
	if !*quiet {
		fmt.Println(tr.Render())
		fmt.Println("Final code:")
	}
	fmt.Println(tr.FinalCode)
	if !tr.Success {
		fmt.Fprintln(os.Stderr, "rtlfixer: syntax errors remain after the iteration budget")
		os.Exit(1)
	}
}
