package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run with captured output.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitZeroWhenFixed(t *testing.T) {
	code, stdout, stderr := runCLI("-demo", "-quiet")
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s), want 0 for a successful fix", code, stderr)
	}
	if !strings.Contains(stdout, "endmodule") {
		t.Fatalf("no final code on stdout: %q", stdout)
	}
}

// TestExitNonZeroWhenFixFails is the contract scripts and the loadgen
// harness rely on: an unfixed input must surface in the exit code.
func TestExitNonZeroWhenFixFails(t *testing.T) {
	// The simple persona's log carries no location information and one
	// iteration is not enough: this configuration deterministically
	// leaves the demo broken (seed 1).
	code, _, stderr := runCLI("-demo", "-quiet", "-compiler", "simple", "-rag=false", "-iters", "1")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 when the fix fails", code)
	}
	if !strings.Contains(stderr, "syntax errors remain") {
		t.Fatalf("failure not reported on stderr: %q", stderr)
	}
}

// TestExitNonZeroWhenAnyBatchFileFails: one bad apple fails the batch.
func TestExitNonZeroWhenAnyBatchFileFails(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.v")
	bad := filepath.Join(dir, "bad.v")
	if err := os.WriteFile(good, []byte("module m;\nendmodule\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(demoSource), 0o644); err != nil {
		t.Fatal(err)
	}
	// Same crippled configuration as above so bad.v stays broken.
	code, stdout, _ := runCLI("-quiet", "-compiler", "simple", "-rag=false", "-iters", "1", good, bad)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 when one of two files fails", code)
	}
	if !strings.Contains(stdout, "==> "+good) || !strings.Contains(stdout, "==> "+bad) {
		t.Fatalf("batch headers missing: %q", stdout)
	}
	// The all-good batch exits clean.
	if code, _, stderr := runCLI("-quiet", good); code != 0 {
		t.Fatalf("all-good batch exit = %d (stderr: %s), want 0", code, stderr)
	}
}

func TestExitCodesForBadInvocation(t *testing.T) {
	if code, _, _ := runCLI(); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	if code, _, _ := runCLI("-no-such-flag"); code != 2 {
		t.Fatalf("bad-flag exit = %d, want 2", code)
	}
	if code, _, stderr := runCLI(filepath.Join(t.TempDir(), "missing.v")); code != 1 || !strings.Contains(stderr, "missing.v") {
		t.Fatalf("missing-file exit = %d (stderr: %s), want 1", code, stderr)
	}
	if code, _, _ := runCLI("-demo", "-compiler", "vcs"); code != 1 {
		t.Fatalf("unknown-compiler exit = %d, want 1", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, stderr := runCLI("-h"); code != 0 {
		t.Fatalf("-h exit = %d (stderr: %s), want 0", code, stderr)
	}
	if code, _, _ := runCLI("--help"); code != 0 {
		t.Fatal("--help must exit 0")
	}
}
