// Command fuzz runs differential campaigns of generated Verilog
// modules through the compiled engine and the tree-walker oracle,
// minimizing any divergence to a ready-to-paste regression test.
//
// Usage:
//
//	fuzz -count 10000                # 10k-module campaign from seed 0
//	fuzz -seed 42 -count 1           # replay one module
//	fuzz -count 5000 -cycles 24      # longer input traces
//	fuzz -count 10000 -minimize      # shrink every find
//	fuzz -count 10000 -out repros/   # write finds to files
//	fuzz -seed 42 -count 1 -dump     # print the generated module
//
// The campaign is deterministic: module n uses seed -seed+n for both
// generation and its input trace, so CI failures replay exactly with
// the printed seed.
//
// Exit codes: 0 = no divergence, 1 = divergence found, 2 = bad usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fuzz"
)

func main() {
	var (
		seed      = flag.Int64("seed", 0, "first generator seed; module n uses seed+n")
		count     = flag.Int("count", 1000, "number of modules to generate and check")
		cycles    = flag.Int("cycles", 12, "input vectors per module")
		minimize  = flag.Bool("minimize", true, "delta-debug diverging modules to minimal repros")
		outDir    = flag.String("out", "", "directory to write minimized repros and test cases into")
		dump      = flag.Bool("dump", false, "print each generated module before checking it")
		quiet     = flag.Bool("quiet", false, "suppress progress lines")
		aliasBias = flag.Float64("alias-bias", 0, "fraction of non-hazard statement draws redirected into alias-hazard shapes (0 = unbiased, byte-identical to older campaigns)")
		coverage  = flag.Bool("coverage", false, "coverage-guided mode: track toggle/activation signatures, admit novelty into a corpus, log growth to stderr")
		vcdDir    = flag.String("vcd", "", "directory to write a VCD waveform (windowed around the divergence) for each find")
	)
	flag.Parse()
	if flag.NArg() > 0 || *count <= 0 || *cycles <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *aliasBias < 0 || *aliasBias > 1 {
		flag.Usage()
		os.Exit(2)
	}
	opts := fuzz.Options{
		Seed:     *seed,
		Count:    *count,
		Cycles:   *cycles,
		Minimize: *minimize,
		Coverage: *coverage,
		Gen:      fuzz.GenConfig{AliasBias: *aliasBias},
	}
	if *coverage && !*quiet {
		opts.CoverageLog = func(line string) {
			fmt.Fprintf(os.Stderr, "fuzz: %s\n", line)
		}
	}
	if !*quiet {
		opts.ProgressEvery = 2000
		opts.Progress = func(done int, stats fuzz.Stats) {
			fmt.Fprintf(os.Stderr, "fuzz: %d/%d %s\n", done, *count, stats)
		}
	}
	if *dump {
		for n := 0; n < *count; n++ {
			fmt.Printf("// seed %d\n%s\n", *seed+int64(n), fuzz.Generate(*seed+int64(n)))
		}
	}

	stats, finds := fuzz.Run(opts)
	fmt.Fprintf(os.Stderr, "fuzz: done: %s\n", stats)

	for _, d := range finds {
		fmt.Printf("=== divergence (priority %s, alias findings %d): seed %d: %s\n",
			d.Priority(), d.AliasFindings, d.Seed, d.Mismatch)
		fmt.Printf("--- minimized module (%d lines):\n%s\n", fuzz.LineCount(d.Minimized), d.Minimized)
		fmt.Printf("--- regression table entry (internal/sim/engine_regress_test.go):\n%s\n", d.TestCase)
		if *outDir != "" {
			if err := writeFind(*outDir, d); err != nil {
				fmt.Fprintf(os.Stderr, "fuzz: write repro: %v\n", err)
				os.Exit(2)
			}
		}
		if *vcdDir != "" {
			if err := writeVCD(*vcdDir, d); err != nil {
				fmt.Fprintf(os.Stderr, "fuzz: write vcd: %v\n", err)
				os.Exit(2)
			}
		}
	}
	if len(finds) > 0 {
		os.Exit(1)
	}
}

func writeFind(dir string, d fuzz.Divergence) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, fmt.Sprintf("repro_seed_%d", d.Seed))
	if err := os.WriteFile(base+".v", []byte(d.Minimized), 0o644); err != nil {
		return err
	}
	body := fmt.Sprintf("mismatch: %s\n\n%s\n", d.Mismatch, d.TestCase)
	return os.WriteFile(base+".txt", []byte(body), 0o644)
}

func writeVCD(dir string, d fuzz.Divergence) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	vcd, err := fuzz.CaptureVCD(d.Minimized, d.Cycles, d.Seed, 8)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, fmt.Sprintf("repro_seed_%d.vcd", d.Seed)), []byte(vcd), 0o644)
}
