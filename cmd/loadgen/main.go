// Command loadgen replays curated dataset problems against a running
// rtlfixerd at a target rate and reports throughput and latency
// percentiles — the synthetic-traffic half of the serving story, and the
// harness behind the coalescing/cache A-B comparison:
//
//	rtlfixerd -addr 127.0.0.1:0 &              # full service
//	loadgen -addr http://127.0.0.1:PORT -n 200 -distinct 1
//	rtlfixerd -coalesce=false -cache=false &   # stripped baseline
//	loadgen -addr http://127.0.0.1:PORT -n 200 -distinct 1
//
// With -distinct 1 every request carries the same source (a thundering
// herd); the coalescing + caching service should clear several times the
// baseline's request rate.
//
// -duration runs for a wall-clock window instead of a fixed count, and
// the report always splits out the first -split-first requests — on a
// cold daemon they pay the compile misses, on a warm restart
// (rtlfixerd -state-dir) they should match the steady state, so the
// split is the warm-start A/B measurement.
//
// The corpus is the paper's curated erroneous-implementation dataset
// (internal/curate), cycled round-robin over -distinct problems. Exit
// status is non-zero when any request fails at the transport level, no
// request succeeds, any response body is not valid JSON, a -chaos probe
// is not rejected 4xx, or the -max-error-rate budget is exceeded — so CI
// smoke and chaos jobs can assert on it.
//
// Resilience testing: -wait-ready polls /v1/readyz before traffic (a
// prewarming daemon answers 503 until its default fixer is built);
// -chaos replaces every 5th request with a deterministic malformed
// variant the daemon must reject 4xx; -max-error-rate bounds the
// non-2xx fraction of the real traffic — the knobs
// scripts/chaos_smoke.sh drives against a fault-injected daemon.
//
// -progress-interval prints an in-flight tally line to stderr while the
// run is hot; -stages fetches /v1/stats afterwards and renders the
// server's per-stage latency attribution table (requires the daemon to
// run with tracing on, its default).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/curate"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "rtlfixerd base URL")
	n := flag.Int("n", 100, "total requests to send")
	duration := flag.Duration("duration", 0, "wall-clock run length (overrides -n; send until the deadline)")
	splitFirst := flag.Int("split-first", 10, "report the first N requests' latency separately (cold-vs-warm start A/B)")
	qps := flag.Float64("qps", 0, "target request rate (0 = as fast as -concurrency allows)")
	concurrency := flag.Int("concurrency", 8, "concurrent in-flight requests")
	distinct := flag.Int("distinct", 1, "distinct problems cycled through (1 = repeated-source herd)")
	offset := flag.Int("offset", 0, "first corpus entry to replay (heavy 10-iteration problems live at higher indices)")
	seed := flag.Int64("seed", 2024, "corpus curation seed")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-request deadline sent to the server (0 = server default)")
	lint := flag.Bool("lint", false, "drive /v1/lint instead of /v1/fix")
	showStats := flag.Bool("show-stats", false, "fetch and print /v1/stats after the run")
	showStages := flag.Bool("stages", false, "fetch /v1/stats after the run and print the per-stage latency table (needs rtlfixerd -trace)")
	progressInterval := flag.Duration("progress-interval", 0, "print an in-flight progress line to stderr this often (0 = off)")
	chaos := flag.Bool("chaos", false, "replace every 5th request with a deterministic malformed variant; they must all be rejected 4xx")
	maxErrorRate := flag.Float64("max-error-rate", -1, "exit non-zero when (transport errors + non-2xx) / sent exceeds this (chaos requests excluded; <0 = off)")
	waitReady := flag.Duration("wait-ready", 0, "poll /v1/readyz for up to this long before sending traffic (0 = off)")
	flag.Parse()

	if (*n <= 0 && *duration <= 0) || *concurrency <= 0 || *distinct <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -n (or -duration), -concurrency and -distinct must be positive")
		os.Exit(2)
	}

	entries, _ := curate.Build(curate.Options{Seed: *seed})
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: empty corpus")
		os.Exit(1)
	}
	if *distinct > len(entries) {
		fmt.Fprintf(os.Stderr, "loadgen: corpus has %d problems; clamping -distinct\n", len(entries))
		*distinct = len(entries)
	}
	if *offset < 0 || *offset >= len(entries) {
		fmt.Fprintf(os.Stderr, "loadgen: -offset outside corpus [0, %d)\n", len(entries))
		os.Exit(2)
	}
	type req struct {
		body []byte
	}
	endpoint := "/v1/fix"
	if *lint {
		endpoint = "/v1/lint"
	}
	corpus := make([]req, *distinct)
	for i := range corpus {
		e := entries[(*offset+i)%len(entries)]
		body, err := json.Marshal(map[string]any{
			"source":     e.Code,
			"filename":   e.ProblemID + ".v",
			"seed":       int64(i) + 1,
			"timeout_ms": *timeoutMS,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		corpus[i] = req{body: body}
	}

	// Bound every request so a wedged daemon fails the run loudly
	// instead of hanging it (CI asserts on loadgen's exit code).
	clientTimeout := 2 * time.Minute
	if *timeoutMS > 0 {
		clientTimeout = time.Duration(*timeoutMS)*time.Millisecond + 30*time.Second
	}
	// Default transport keeps only 2 idle conns per host; at higher
	// concurrency that re-dials TCP per request and the measurement
	// becomes connection churn.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = *concurrency
	client := &http.Client{Timeout: clientTimeout, Transport: transport}

	// Gate on readiness, not liveness: a prewarming or store-degraded
	// daemon answers /v1/readyz 503 while /v1/healthz stays 200, and
	// measuring against a warming daemon skews every first-N split.
	if *waitReady > 0 {
		deadline := time.Now().Add(*waitReady)
		for {
			resp, err := client.Get(*addr + "/v1/readyz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				fmt.Fprintf(os.Stderr, "loadgen: daemon not ready after %v\n", *waitReady)
				os.Exit(1)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	hist := metrics.NewLatencyHistogram()
	// The first -split-first requests are histogrammed separately: on a
	// cold daemon they pay the compile misses, on a warm (-state-dir
	// restart) daemon they should match the steady state — the split is
	// the A/B signal for warm start.
	histFirst := metrics.NewLatencyHistogram()
	histRest := metrics.NewLatencyHistogram()

	// Pacing: the feeder hands out request indices, ticking at -qps when
	// set; it stops at -n requests, or at the -duration deadline.
	next := make(chan int)
	go func() {
		defer close(next)
		var deadline time.Time
		if *duration > 0 {
			deadline = time.Now().Add(*duration)
		}
		var tick *time.Ticker
		if *qps > 0 {
			tick = time.NewTicker(time.Duration(float64(time.Second) / *qps))
			defer tick.Stop()
		}
		for i := 0; ; i++ {
			if *duration > 0 {
				if !time.Now().Before(deadline) {
					return
				}
			} else if i >= *n {
				return
			}
			next <- i
			if tick != nil {
				<-tick.C
			}
		}
	}()

	// Aggregated under one mutex; a -duration run can send hundreds of
	// thousands of requests, so no per-request state is retained.
	var wg sync.WaitGroup
	var tallyMu sync.Mutex
	statusCounts := map[int]int{}
	sent, transportErrs, fixed := 0, 0, 0
	// Chaos and well-formedness tallies: chaos requests are tracked apart
	// from the real traffic (they must be rejected 4xx, and must never
	// pollute the error rate or latency report); malformed counts any
	// response body that is not valid JSON, chaos or not.
	chaosSent, chaosRejected, chaosUnexpected, malformed := 0, 0, 0, 0
	start := time.Now()

	// Periodic in-flight progress on stderr (stdout stays a parseable
	// report): sent/served/error tallies and the running served rate.
	progressDone := make(chan struct{})
	if *progressInterval > 0 {
		go func() {
			tick := time.NewTicker(*progressInterval)
			defer tick.Stop()
			for {
				select {
				case <-progressDone:
					return
				case <-tick.C:
					tallyMu.Lock()
					sentNow, servedNow, errsNow := sent, statusCounts[http.StatusOK], transportErrs
					tallyMu.Unlock()
					el := time.Since(start)
					fmt.Fprintf(os.Stderr, "loadgen: [%v] sent=%d served=%d errors=%d (%.1f served/s)\n",
						el.Round(time.Second), sentNow, servedNow, errsNow,
						float64(servedNow)/el.Seconds())
				}
			}
		}()
	}
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// Every 5th index becomes a malformed probe under -chaos:
				// deterministic in i, so two same-flag runs send the same
				// byte sequence regardless of concurrency or timing.
				if *chaos && i%5 == 4 {
					resp, err := client.Post(*addr+endpoint, "application/json",
						strings.NewReader(chaosBody(i)))
					ok4xx, bad := false, false
					if err == nil {
						data, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						ok4xx = resp.StatusCode >= 400 && resp.StatusCode < 500
						bad = len(data) > 0 && !json.Valid(data)
					}
					tallyMu.Lock()
					chaosSent++
					if ok4xx {
						chaosRejected++
					} else {
						chaosUnexpected++
					}
					if bad {
						malformed++
					}
					tallyMu.Unlock()
					continue
				}
				began := time.Now()
				resp, err := client.Post(*addr+endpoint, "application/json",
					bytes.NewReader(corpus[i%*distinct].body))
				ms := float64(time.Since(began)) / float64(time.Millisecond)
				status, success, bad := 0, false, false
				if err == nil {
					var body struct {
						Success bool `json:"success"`
						Ok      bool `json:"ok"`
					}
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					bad = len(data) > 0 && !json.Valid(data)
					_ = json.Unmarshal(data, &body)
					status = resp.StatusCode
					success = body.Success || body.Ok
					// Percentiles describe served requests only: fast
					// 429/503 rejections must not flatter the report.
					if status == http.StatusOK {
						hist.Observe(ms)
						if i < *splitFirst {
							histFirst.Observe(ms)
						} else {
							histRest.Observe(ms)
						}
					}
				}
				tallyMu.Lock()
				sent++
				if err != nil {
					transportErrs++
				} else {
					statusCounts[status]++
					if bad {
						malformed++
					}
					if status == http.StatusOK && success {
						fixed++
					}
				}
				tallyMu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(progressDone)
	elapsed := time.Since(start)

	// Throughput counts served (200) responses only: a daemon shedding
	// load with fast 429s must not report as fast serving.
	served := statusCounts[http.StatusOK]
	fmt.Printf("loadgen: %d requests to %s%s in %v (%.1f served/s, %.1f sent/s)\n", sent, *addr, endpoint,
		elapsed.Round(time.Millisecond),
		float64(served)/elapsed.Seconds(), float64(sent)/elapsed.Seconds())
	var codes []int
	for c := range statusCounts {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	var parts []string
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d×%d", c, statusCounts[c]))
	}
	if transportErrs > 0 {
		parts = append(parts, fmt.Sprintf("transport-error×%d", transportErrs))
	}
	fmt.Printf("loadgen: status %s; %d succeeded\n", strings.Join(parts, " "), fixed)
	if *chaos {
		fmt.Printf("loadgen: chaos %d sent, %d rejected 4xx, %d NOT rejected\n",
			chaosSent, chaosRejected, chaosUnexpected)
	}
	if malformed > 0 {
		fmt.Printf("loadgen: %d responses carried malformed JSON\n", malformed)
	}
	s := hist.Snapshot()
	if s.Count > 0 {
		fmt.Printf("loadgen: latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f\n", s.P50, s.P90, s.P99, s.Max)
	}
	// The cold-vs-warm split: mean latency of the first requests against
	// the steady state that follows them.
	if f, rest := histFirst.Snapshot(), histRest.Snapshot(); f.Count > 0 && rest.Count > 0 {
		fmt.Printf("loadgen: first %d requests mean=%.2fms p50=%.2f max=%.2f; remaining %d mean=%.2fms p50=%.2f max=%.2f (warm-start ratio %.1fx)\n",
			f.Count, f.Sum/float64(f.Count), f.P50, f.Max,
			rest.Count, rest.Sum/float64(rest.Count), rest.P50, rest.Max,
			(f.Sum/float64(f.Count))/(rest.Sum/float64(rest.Count)))
	}

	if *showStats || *showStages {
		resp, err := client.Get(*addr + "/v1/stats")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: stats: %v\n", err)
			os.Exit(1)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if *showStats {
			var pretty bytes.Buffer
			if json.Indent(&pretty, data, "", "  ") == nil {
				fmt.Printf("loadgen: /v1/stats:\n%s\n", pretty.Bytes())
			} else {
				fmt.Printf("loadgen: /v1/stats: %s\n", data)
			}
		}
		if *showStages {
			// The server-side stage attribution: span durations folded per
			// stage from finished request traces (rtlfixerd -trace).
			var wire struct {
				Stages map[string]metrics.HistogramSnapshot `json:"stages"`
			}
			if err := json.Unmarshal(data, &wire); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: stats decode: %v\n", err)
				os.Exit(1)
			}
			if table := trace.RenderStageTable(wire.Stages); table != "" {
				fmt.Print(table)
			} else {
				fmt.Fprintln(os.Stderr, "loadgen: no stage data (is rtlfixerd running with -trace?)")
			}
		}
	}

	if transportErrs > 0 || statusCounts[http.StatusOK] == 0 {
		os.Exit(1)
	}
	// Robustness gates: any non-JSON response or any malformed probe the
	// server failed to reject is a correctness bug, regardless of rate.
	if malformed > 0 || chaosUnexpected > 0 {
		os.Exit(1)
	}
	if *maxErrorRate >= 0 && sent > 0 {
		// Everything that is not a 200 — transport failures included —
		// counts against the budget; chaos probes are already excluded
		// from sent.
		rate := float64(sent-served) / float64(sent)
		if rate > *maxErrorRate {
			fmt.Fprintf(os.Stderr, "loadgen: error rate %.4f over -max-error-rate %.4f\n", rate, *maxErrorRate)
			os.Exit(1)
		}
	}
}

// chaosBody returns the malformed request variant for one chaos index.
// All five shapes must be rejected 4xx by a robust daemon: syntactically
// broken JSON, an unknown field, a missing source, an unknown mode, and
// a negative timeout.
func chaosBody(i int) string {
	switch (i / 5) % 5 {
	case 0:
		return `{"source": "module m; endmodule", ` // truncated JSON
	case 1:
		return `{"source": "module m;\nendmodule\n", "sourcecode": "dup"}`
	case 2:
		return `{"source": "   "}`
	case 3:
		return `{"source": "module m;\nendmodule\n", "mode": "zero-shot"}`
	default:
		return `{"source": "module m;\nendmodule\n", "timeout_ms": -1}`
	}
}
