// Command loadgen replays curated dataset problems against a running
// rtlfixerd at a target rate and reports throughput and latency
// percentiles — the synthetic-traffic half of the serving story, and the
// harness behind the coalescing/cache A-B comparison:
//
//	rtlfixerd -addr 127.0.0.1:0 &              # full service
//	loadgen -addr http://127.0.0.1:PORT -n 200 -distinct 1
//	rtlfixerd -coalesce=false -cache=false &   # stripped baseline
//	loadgen -addr http://127.0.0.1:PORT -n 200 -distinct 1
//
// With -distinct 1 every request carries the same source (a thundering
// herd); the coalescing + caching service should clear several times the
// baseline's request rate.
//
// The corpus is the paper's curated erroneous-implementation dataset
// (internal/curate), cycled round-robin over -distinct problems. Exit
// status is non-zero when any request fails at the transport level or no
// request succeeds — so CI smoke jobs can assert on it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/curate"
	"repro/internal/metrics"
)

type result struct {
	status  int
	success bool
	err     error
	ms      float64
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "rtlfixerd base URL")
	n := flag.Int("n", 100, "total requests to send")
	qps := flag.Float64("qps", 0, "target request rate (0 = as fast as -concurrency allows)")
	concurrency := flag.Int("concurrency", 8, "concurrent in-flight requests")
	distinct := flag.Int("distinct", 1, "distinct problems cycled through (1 = repeated-source herd)")
	offset := flag.Int("offset", 0, "first corpus entry to replay (heavy 10-iteration problems live at higher indices)")
	seed := flag.Int64("seed", 2024, "corpus curation seed")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-request deadline sent to the server (0 = server default)")
	lint := flag.Bool("lint", false, "drive /v1/lint instead of /v1/fix")
	showStats := flag.Bool("show-stats", false, "fetch and print /v1/stats after the run")
	flag.Parse()

	if *n <= 0 || *concurrency <= 0 || *distinct <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -n, -concurrency and -distinct must be positive")
		os.Exit(2)
	}

	entries, _ := curate.Build(curate.Options{Seed: *seed})
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: empty corpus")
		os.Exit(1)
	}
	if *distinct > len(entries) {
		fmt.Fprintf(os.Stderr, "loadgen: corpus has %d problems; clamping -distinct\n", len(entries))
		*distinct = len(entries)
	}
	if *offset < 0 || *offset >= len(entries) {
		fmt.Fprintf(os.Stderr, "loadgen: -offset outside corpus [0, %d)\n", len(entries))
		os.Exit(2)
	}
	type req struct {
		body []byte
	}
	endpoint := "/v1/fix"
	if *lint {
		endpoint = "/v1/lint"
	}
	corpus := make([]req, *distinct)
	for i := range corpus {
		e := entries[(*offset+i)%len(entries)]
		body, err := json.Marshal(map[string]any{
			"source":     e.Code,
			"filename":   e.ProblemID + ".v",
			"seed":       int64(i) + 1,
			"timeout_ms": *timeoutMS,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		corpus[i] = req{body: body}
	}

	// Bound every request so a wedged daemon fails the run loudly
	// instead of hanging it (CI asserts on loadgen's exit code).
	clientTimeout := 2 * time.Minute
	if *timeoutMS > 0 {
		clientTimeout = time.Duration(*timeoutMS)*time.Millisecond + 30*time.Second
	}
	// Default transport keeps only 2 idle conns per host; at higher
	// concurrency that re-dials TCP per request and the measurement
	// becomes connection churn.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = *concurrency
	client := &http.Client{Timeout: clientTimeout, Transport: transport}
	hist := metrics.NewLatencyHistogram()
	results := make([]result, *n)

	// Pacing: with -qps, a ticker feeds request slots; without, the
	// tokens channel is pre-filled so only -concurrency limits the rate.
	tokens := make(chan struct{}, *n)
	if *qps > 0 {
		interval := time.Duration(float64(time.Second) / *qps)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for i := 0; i < *n; i++ {
				tokens <- struct{}{}
				<-t.C
			}
			close(tokens)
		}()
	} else {
		for i := 0; i < *n; i++ {
			tokens <- struct{}{}
		}
		close(tokens)
	}

	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		i := 0
		for range tokens {
			next <- i
			i++
		}
		close(next)
	}()

	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := &results[i]
				began := time.Now()
				resp, err := client.Post(*addr+endpoint, "application/json",
					bytes.NewReader(corpus[i%*distinct].body))
				r.ms = float64(time.Since(began)) / float64(time.Millisecond)
				if err != nil {
					r.err = err
					continue
				}
				var body struct {
					Success bool `json:"success"`
					Ok      bool `json:"ok"`
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				_ = json.Unmarshal(data, &body)
				r.status = resp.StatusCode
				r.success = body.Success || body.Ok
				// Percentiles describe served requests only: fast 429/503
				// rejections must not flatter the latency report.
				if r.status == http.StatusOK {
					hist.Observe(r.ms)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	statusCounts := map[int]int{}
	transportErrs, fixed := 0, 0
	for _, r := range results {
		if r.err != nil {
			transportErrs++
			continue
		}
		statusCounts[r.status]++
		if r.status == http.StatusOK && r.success {
			fixed++
		}
	}

	// Throughput counts served (200) responses only: a daemon shedding
	// load with fast 429s must not report as fast serving.
	served := statusCounts[http.StatusOK]
	fmt.Printf("loadgen: %d requests to %s%s in %v (%.1f served/s, %.1f sent/s)\n", *n, *addr, endpoint,
		elapsed.Round(time.Millisecond),
		float64(served)/elapsed.Seconds(), float64(*n)/elapsed.Seconds())
	var codes []int
	for c := range statusCounts {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	var parts []string
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d×%d", c, statusCounts[c]))
	}
	if transportErrs > 0 {
		parts = append(parts, fmt.Sprintf("transport-error×%d", transportErrs))
	}
	fmt.Printf("loadgen: status %s; %d succeeded\n", strings.Join(parts, " "), fixed)
	s := hist.Snapshot()
	if s.Count > 0 {
		fmt.Printf("loadgen: latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f\n", s.P50, s.P90, s.P99, s.Max)
	}

	if *showStats {
		resp, err := client.Get(*addr + "/v1/stats")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: stats: %v\n", err)
			os.Exit(1)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var pretty bytes.Buffer
		if json.Indent(&pretty, data, "", "  ") == nil {
			fmt.Printf("loadgen: /v1/stats:\n%s\n", pretty.Bytes())
		} else {
			fmt.Printf("loadgen: /v1/stats: %s\n", data)
		}
	}

	if transportErrs > 0 || statusCounts[http.StatusOK] == 0 {
		os.Exit(1)
	}
}
