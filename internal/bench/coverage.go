package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sim"
	"repro/internal/wave"
)

// CoverageRow is one problem's toggle/activity coverage, measured by
// running the reference implementation through its own testbench with
// the wave coverage observer attached.
type CoverageRow struct {
	Suite  dataset.Suite
	ID     string
	Stats  wave.Stats
	Points int // signature points, for cross-problem comparison
	Err    string
}

// CoverageReport measures per-problem toggle coverage across every
// suite. seed feeds the stimulus generator, so the table is
// deterministic per seed.
func CoverageReport(seed int64) []CoverageRow {
	var rows []CoverageRow
	for _, suite := range []dataset.Suite{dataset.SuiteMachine, dataset.SuiteHuman, dataset.SuiteRTLLM} {
		for _, p := range dataset.Problems(suite) {
			row := CoverageRow{Suite: suite, ID: p.ID}
			cov := wave.NewCoverage()
			rng := rand.New(rand.NewSource(seed))
			if _, err := p.CheckObserved(p.RefSource, rng, sim.TBObserve{Coverage: cov}); err != nil {
				row.Err = err.Error()
			} else {
				row.Stats = cov.Stats()
				row.Points = cov.Signature().Count()
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderCoverage draws the per-problem coverage table plus per-suite
// aggregate lines.
func RenderCoverage(rows []CoverageRow) string {
	var b strings.Builder
	b.WriteString("Reference-design toggle coverage (coverage observer over the problem testbenches)\n")
	fmt.Fprintf(&b, "%-8s %-28s %9s %12s %10s %9s %8s\n",
		"Suite", "Problem", "Coverage", "TogglePts", "Procs", "Toggles", "SigPts")
	type agg struct {
		covered, total, points int
		n                      int
	}
	suites := map[dataset.Suite]*agg{}
	order := []dataset.Suite{}
	for _, r := range rows {
		if suites[r.Suite] == nil {
			suites[r.Suite] = &agg{}
			order = append(order, r.Suite)
		}
		a := suites[r.Suite]
		if r.Err != "" {
			fmt.Fprintf(&b, "%-8s %-28s %9s  error: %s\n", r.Suite, r.ID, "-", r.Err)
			continue
		}
		s := r.Stats
		fmt.Fprintf(&b, "%-8s %-28s %8.1f%% %6d/%-5d %4d/%-4d %9d %8d\n",
			r.Suite, r.ID, 100*s.Fraction(), s.PointsCovered, s.PointsTotal,
			s.ProcessesActive, s.Processes, s.Toggles, r.Points)
		a.covered += s.PointsCovered + s.ProcessesActive
		a.total += s.PointsTotal + s.Processes
		a.points += r.Points
		a.n++
	}
	for _, s := range order {
		a := suites[s]
		if a.n == 0 || a.total == 0 {
			continue
		}
		fmt.Fprintf(&b, "suite %-8s: %d problems, %.1f%% of %d coverage points, %d signature points\n",
			s, a.n, 100*float64(a.covered)/float64(a.total), a.total, a.points)
	}
	return b.String()
}
