package bench

import "testing"

// Ablations use the shared curated dataset with few repeats: enough for
// ordering assertions.

func TestAblationRetrievers(t *testing.T) {
	res := RunRetrieverAblation(7, 2, testEntries(t), 0, false)
	byName := map[string]float64{}
	for _, r := range res {
		byName[r.Name] = r.FixRate
	}
	// Every retriever must beat the no-RAG baseline.
	for _, name := range []string{"exact-tag", "fuzzy-jaccard", "keyword"} {
		if byName[name] <= byName["no-rag"] {
			t.Errorf("%s (%.3f) does not beat no-rag (%.3f)", name, byName[name], byName["no-rag"])
		}
	}
	t.Log("\n" + RenderAblation("retriever ablation", res))
}

func TestAblationIterationBudget(t *testing.T) {
	res := RunIterationBudgetAblation(7, 2, 6, testEntries(t), 0, false)
	// Fix rate must be monotone non-decreasing in the budget (small noise
	// tolerance) and the knee must be early: budget 2 captures most of
	// budget 6's value, per Figure 7.
	for i := 1; i < len(res); i++ {
		if res[i].FixRate < res[i-1].FixRate-0.02 {
			t.Errorf("fix rate decreased with budget: %s=%.3f after %s=%.3f",
				res[i].Name, res[i].FixRate, res[i-1].Name, res[i-1].FixRate)
		}
	}
	if res[1].FixRate < 0.85*res[len(res)-1].FixRate {
		t.Errorf("budget=2 (%.3f) should capture most of budget=%d (%.3f)",
			res[1].FixRate, len(res), res[len(res)-1].FixRate)
	}
	t.Log("\n" + RenderAblation("iteration-budget ablation", res))
}

func TestAblationGuidanceSize(t *testing.T) {
	res := RunGuidanceSizeAblation(7, 2, testEntries(t), 0, false)
	if len(res) < 3 {
		t.Fatal("expected at least 3 sizes")
	}
	first, last := res[0], res[len(res)-1]
	if last.FixRate <= first.FixRate {
		t.Errorf("full DB (%.3f) should beat no guidance (%.3f)", last.FixRate, first.FixRate)
	}
	t.Log("\n" + RenderAblation("guidance-size ablation", res))
}
