// Package bench regenerates every table and figure in the paper's
// evaluation section (§4): Table 1 (fix rate ablation), Table 2 (pass@k
// before/after fixing), Table 3 (RTLLM generalization), Figure 4 (outcome
// breakdown rings), and Figure 7 (ReAct iteration histogram).
package bench

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/agent"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/curate"
	"repro/internal/llm"
	"repro/internal/pipeline"
)

// Table1Config parameterizes the fix-rate experiment.
type Table1Config struct {
	// Seed drives dataset curation and all model randomness.
	Seed int64
	// Repeats is the paper's n=10: each sample is attempted this many
	// times and the fix rate is the expectation of c/n.
	Repeats int
	// MaxEntries truncates the curated dataset for quick runs (0 = all).
	MaxEntries int
	// Entries overrides the curated dataset (nil = build it).
	Entries []curate.Entry
	// Workers sizes the evaluation pool; <= 0 means runtime.NumCPU().
	// Results are identical for any worker count.
	Workers int
	// Cache enables the sharded memoization layer (internal/memo).
	// Table output is byte-identical with it on or off.
	Cache bool
}

func (c Table1Config) withDefaults() Table1Config {
	if c.Repeats == 0 {
		c.Repeats = 10
	}
	return c
}

// Table1Cell is one cell of Table 1.
type Table1Cell struct {
	Prompt   core.Mode
	RAG      bool
	Compiler string
	Persona  string
	// FixRate is NaN for undefined combinations (RAG needs a compiler
	// log, so Simple+RAG is "-" in the paper too).
	FixRate float64
}

// Defined reports whether the combination is meaningful.
func (c Table1Cell) Defined() bool { return !math.IsNaN(c.FixRate) }

// Table1Result holds the full grid plus the iteration histogram collected
// from the ReAct + RAG + Quartus runs (Figure 7's data) and the curation
// statistics.
type Table1Result struct {
	Cells []Table1Cell
	// IterationHist[i] counts samples whose successful fix needed i
	// revisions (index 0 unused; 1..10).
	IterationHist [agent.DefaultMaxIterations + 1]int
	DatasetSize   int
	CurationStats curate.Stats
}

// Cell finds a cell in the grid.
func (r *Table1Result) Cell(prompt core.Mode, ragOn bool, comp, persona string) (Table1Cell, bool) {
	for _, c := range r.Cells {
		if c.Prompt == prompt && c.RAG == ragOn && c.Compiler == comp && c.Persona == persona {
			return c, true
		}
	}
	return Table1Cell{}, false
}

// RunTable1 reproduces Table 1: fix rate for One-shot vs ReAct, with and
// without RAG, across the three feedback personas, for gpt-3.5, plus the
// gpt-4 ablation column on Quartus.
func RunTable1(cfg Table1Config) *Table1Result {
	cfg = cfg.withDefaults()
	entries := cfg.Entries
	var stats curate.Stats
	if entries == nil {
		entries, stats = curate.Build(curate.Options{Seed: cfg.Seed})
	}
	if cfg.MaxEntries > 0 && len(entries) > cfg.MaxEntries {
		entries = entries[:cfg.MaxEntries]
	}
	res := &Table1Result{DatasetSize: len(entries), CurationStats: stats}

	type combo struct {
		prompt  core.Mode
		rag     bool
		comp    string
		persona string
	}
	var combos []combo
	for _, prompt := range []core.Mode{core.ModeOneShot, core.ModeReAct} {
		for _, rag := range []bool{false, true} {
			for _, comp := range []string{"simple", "iverilog", "quartus"} {
				combos = append(combos, combo{prompt, rag, comp, "gpt-3.5"})
			}
			combos = append(combos, combo{prompt, rag, "quartus", "gpt-4"})
		}
	}

	for _, cb := range combos {
		cell := Table1Cell{Prompt: cb.prompt, RAG: cb.rag, Persona: cb.persona}
		comp, _ := compiler.ByName(cb.comp)
		cell.Compiler = comp.Name()
		if cb.rag && comp.InfoScore() == 0 {
			cell.FixRate = math.NaN() // the paper's "-": RAG needs a log
			res.Cells = append(res.Cells, cell)
			continue
		}
		fixer, err := core.New(core.Options{
			CompilerName: cb.comp,
			PersonaName:  cb.persona,
			RAG:          cb.rag,
			Mode:         cb.prompt,
			Seed:         cfg.Seed,
			Cache:        cfg.Cache,
		})
		if err != nil {
			panic(err) // combos are all valid by construction
		}
		collectHist := cb.prompt == core.ModeReAct && cb.rag &&
			cb.comp == "quartus" && cb.persona == "gpt-3.5"

		sum := runFixRateJobs("table1", fixer, entries, cfg.Repeats, cfg.Workers)
		if collectHist {
			res.IterationHist = sum.IterationHist
		}
		cell.FixRate = sum.FixRate
		res.Cells = append(res.Cells, cell)
	}
	return res
}

// runFixRateJobs fans all (entry, repeat) attempts for one fixer
// configuration out over the worker pool and aggregates them; shared by
// Table 1 and the ablations. Each entry is one job group, so the
// summary's FixRate is exactly metrics.FixRate over entries. The
// experiment label plus the fixer fingerprint scopes the resume journal
// (journal.go); repeats ride along because they shape the seed schedule.
func runFixRateJobs(label string, f *core.RTLFixer, entries []curate.Entry, repeats, workers int) *pipeline.Summary {
	jobs := make([]pipeline.Job, 0, len(entries)*repeats)
	for i, e := range entries {
		for rep := 0; rep < repeats; rep++ {
			jobs = append(jobs, pipeline.Job{
				Group:      i,
				Filename:   "main.v",
				Code:       e.Code,
				SampleSeed: e.SampleSeed + int64(rep)*7919,
			})
		}
	}
	label = fmt.Sprintf("%s/%s/repeats=%d", label, fixerLabel(f), repeats)
	results, err := runJobs(context.Background(), label, pipeline.Config{Workers: workers}, jobs, pipeline.FixWith(f))
	if err != nil {
		panic(err) // background context: cannot be canceled
	}
	sum := pipeline.Summarize(results)
	sum.Cache = f.CacheStats()
	return sum
}

// Render formats the grid in the paper's Table 1 layout.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Fix rate on VerilogEval-syntax (%d samples)\n", r.DatasetSize)
	fmt.Fprintf(&b, "%-10s %-5s %-8s %-10s %-8s %-8s\n", "Prompt", "RAG", "Simple", "iverilog", "Quartus", "GPT-4")
	for _, prompt := range []core.Mode{core.ModeOneShot, core.ModeReAct} {
		for _, rag := range []bool{false, true} {
			ragLabel := "w/o"
			if rag {
				ragLabel = "w/"
			}
			row := []string{}
			for _, comp := range []string{"Simple", "iverilog", "Quartus"} {
				c, ok := r.Cell(prompt, rag, comp, "gpt-3.5")
				row = append(row, fmtRate(c, ok))
			}
			g4, ok := r.Cell(prompt, rag, "Quartus", "gpt-4")
			row = append(row, fmtRate(g4, ok))
			name := "One-shot"
			if prompt == core.ModeReAct {
				name = "ReAct"
			}
			fmt.Fprintf(&b, "%-10s %-5s %-8s %-10s %-8s %-8s\n", name, ragLabel, row[0], row[1], row[2], row[3])
		}
	}
	return b.String()
}

func fmtRate(c Table1Cell, ok bool) string {
	if !ok || !c.Defined() {
		return "-"
	}
	return fmt.Sprintf("%.3f", c.FixRate)
}

// RenderFigure7 draws the iteration histogram (paper Fig. 7) as an ASCII
// log-scale bar chart.
func (r *Table1Result) RenderFigure7() string {
	var b strings.Builder
	b.WriteString("Figure 7: Distribution of iterations required by ReAct to fix syntax errors\n")
	b.WriteString("(ReAct + RAG + Quartus runs)\n")
	for i := 1; i < len(r.IterationHist); i++ {
		n := r.IterationHist[i]
		bar := ""
		if n > 0 {
			barLen := int(math.Round(8 * math.Log10(float64(n)+1)))
			bar = strings.Repeat("#", barLen)
		}
		fmt.Fprintf(&b, "%2d iterations | %-40s %d\n", i, bar, n)
	}
	return b.String()
}

// Persona shortcut used across bench files.
var _ = llm.GPT35
