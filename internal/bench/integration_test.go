package bench

import (
	"math/rand"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/inject"
	"repro/internal/verilog"
)

// TestEndToEndRepairRestoresBehaviour is the reproduction's strongest
// integration invariant: take a reference design, inject one syntax error,
// fix it with the strong persona, and verify by simulation that the fixed
// code behaves exactly like the reference. This closes the loop across
// inject → compile → agent → repair → simulate.
func TestEndToEndRepairRestoresBehaviour(t *testing.T) {
	fixer, err := core.New(core.Options{
		CompilerName: "quartus",
		PersonaName:  "gpt-4", // strong persona: failures here mean harness bugs
		RAG:          true,
		Mode:         core.ModeReAct,
		Seed:         99,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))

	// Behaviour-preserving mutators: the repair strategy inverts the
	// mutation exactly, so post-fix simulation must match the golden
	// model. (Mutators like index-overflow change which bit is referenced
	// and repair by clamping, which fixes syntax but not necessarily the
	// original behaviour — those are excluded here and covered by the fix
	// -rate tests instead.)
	invertible := []string{
		"drop-semicolon", "drop-endmodule", "drop-clock-port",
		"misspell-identifier", "reg-to-wire", "wire-to-reg",
		"c-style-increment", "c-style-compound", "misplaced-timescale",
		"duplicate-decl",
	}

	problems := dataset.Problems(dataset.SuiteHuman)
	checked := 0
	for i, p := range problems {
		if i%4 != 0 {
			continue // a quarter of the corpus keeps the test fast
		}
		mName := invertible[rng.Intn(len(invertible))]
		m, _ := inject.ByName(mName)
		broken, _, ok := inject.Inject(p.RefSource, m, rng)
		if !ok {
			continue
		}
		tr := fixer.Fix("main.v", broken, int64(i))
		if !tr.Success {
			// The strong persona may still roll a rare failure; what it
			// must never do is claim success on broken code.
			continue
		}
		res, err := p.Check(tr.FinalCode, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Errorf("%s (%s): fixed code does not simulate: %v\n%s", p.ID, mName, err, tr.FinalCode)
			continue
		}
		if !res.Passed() {
			t.Errorf("%s (%s): fixed code compiles but behaves differently: %s\n%s",
				p.ID, mName, res.FirstMismatch, tr.FinalCode)
			continue
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d end-to-end cases verified", checked)
	}
	t.Logf("verified %d inject→fix→simulate round trips", checked)
}

// TestPrinterRoundTripOverCorpus parses, prints, and re-elaborates every
// reference design: the printed form must compile cleanly and preserve the
// interface.
func TestPrinterRoundTripOverCorpus(t *testing.T) {
	for _, suite := range []dataset.Suite{dataset.SuiteHuman, dataset.SuiteRTLLM} {
		for _, p := range dataset.Problems(suite) {
			file, diags := verilog.Parse(p.RefSource)
			if diags.HasErrors() {
				t.Fatalf("%s: reference parse failed", p.ID)
			}
			printed := verilog.Print(file)
			_, design, diags2 := compiler.Frontend(printed)
			if design == nil {
				t.Errorf("%s: printed form does not compile: %s\n%s", p.ID, diags2.Summary(), printed)
				continue
			}
			// Interface preserved: same inputs and outputs.
			_, orig, _ := compiler.Frontend(p.RefSource)
			if len(orig.Inputs()) != len(design.Inputs()) || len(orig.Outputs()) != len(design.Outputs()) {
				t.Errorf("%s: printed form changed the interface", p.ID)
			}
		}
	}
}

// TestPrintedCorpusBehavesIdentically simulates the printed form of a
// sample of references against their golden models: printing must be
// behaviour-preserving, not just compile-preserving.
func TestPrintedCorpusBehavesIdentically(t *testing.T) {
	problems := dataset.Problems(dataset.SuiteHuman)
	for i, p := range problems {
		if i%6 != 0 {
			continue
		}
		file, _ := verilog.Parse(p.RefSource)
		printed := verilog.Print(file)
		res, err := p.Check(printed, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Errorf("%s: printed form fails testbench: %v", p.ID, err)
			continue
		}
		if !res.Passed() {
			t.Errorf("%s: printed form mismatches golden model: %s", p.ID, res.FirstMismatch)
		}
	}
}

// TestNoFalseSuccessClaims audits success reporting across a spread of
// configurations: whenever a transcript claims success, the final code
// must actually compile under the session's own persona.
func TestNoFalseSuccessClaims(t *testing.T) {
	entries := testEntries(t)[:60]
	for _, compName := range []string{"simple", "iverilog", "quartus"} {
		comp, _ := compiler.ByName(compName)
		for _, mode := range []core.Mode{core.ModeOneShot, core.ModeReAct} {
			f, err := core.New(core.Options{
				CompilerName: compName, RAG: compName != "simple",
				Mode: mode, Seed: 31})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				tr := f.Fix("main.v", e.Code, e.SampleSeed)
				got := comp.Compile("main.v", tr.FinalCode).Ok
				if tr.Success && !got {
					t.Fatalf("%s/%s: claimed success on non-compiling code", compName, mode)
				}
				if !tr.Success && got {
					t.Fatalf("%s/%s: claimed failure on compiling code", compName, mode)
				}
			}
		}
	}
}
