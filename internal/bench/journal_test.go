package bench

import (
	"testing"

	"repro/internal/curate"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// TestTable1ResumeByteIdentical runs a small Table 1 against a journaled
// store, then re-runs it from a reopened store (the killed-and-restarted
// shape) and asserts the rendered table is byte-identical while the agent
// work is served from the journal.
func TestTable1ResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	entries, _ := curate.Build(curate.Options{Seed: 11})
	if len(entries) > 4 {
		entries = entries[:4]
	}
	cfg := Table1Config{Seed: 11, Repeats: 2, Entries: entries, Workers: 4, Cache: true}

	st1, err := store.Open(dir, store.Options{NoFlusher: true})
	if err != nil {
		t.Fatal(err)
	}
	SetJournal(NewStoreJournal(st1))
	defer SetJournal(nil)
	cold := RunTable1(cfg).Render()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{NoFlusher: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Stats().LoadedAtOpen == 0 {
		t.Fatal("no journaled jobs survived the restart")
	}
	SetJournal(NewStoreJournal(st2))
	resumed := RunTable1(cfg).Render()
	if cold != resumed {
		t.Fatalf("resumed table differs:\ncold:\n%s\nresumed:\n%s", cold, resumed)
	}
	if s := st2.Stats(); s.LoadHits == 0 {
		t.Fatalf("resumed run never consulted the journal: %+v", s)
	}
}

// TestStoreJournalCollisionGuard plants a record at a job's key whose
// payload identifies a different job; Lookup must reject it.
func TestStoreJournalCollisionGuard(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoFlusher: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := NewStoreJournal(st)

	real := pipeline.Job{Filename: "main.v", Code: "module a; endmodule", SampleSeed: 1}
	forged := pipeline.Job{Filename: "main.v", Code: "module b; endmodule", SampleSeed: 2}
	// Record the forged job's outcome, then overwrite the real job's slot
	// with it (as an FNV collision would).
	j.Record("lbl", forged, pipeline.Outcome{Success: true, FinalCode: "forged"})
	data, ok := st.Get(store.KindBenchJob, pipeline.JobKey("lbl", forged))
	if !ok {
		t.Fatal("forged record not stored")
	}
	st.Put(store.KindBenchJob, pipeline.JobKey("lbl", real), data)

	if _, ok := j.Lookup("lbl", real); ok {
		t.Fatal("collision guard failed: foreign outcome restored")
	}
	if o, ok := j.Lookup("lbl", forged); !ok || o.FinalCode != "forged" {
		t.Fatal("genuine record must still round-trip")
	}
}

// TestStoreJournalRoundtripFields checks full outcome fidelity through
// the store codec, including nil-vs-empty rule slices.
func TestStoreJournalRoundtripFields(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoFlusher: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := NewStoreJournal(st)
	jb := pipeline.Job{Filename: "f.v", Code: "c", SampleSeed: -7}
	want := pipeline.Outcome{
		Success:    true,
		Iterations: 3,
		FinalCode:  "module ok; endmodule",
		FixerRules: []string{"strip-prose", "dup-endmodule"},
		ElapsedNS:  123456789,
	}
	j.Record("lbl", jb, want)
	got, ok := j.Lookup("lbl", jb)
	if !ok {
		t.Fatal("lookup missed")
	}
	if got.Success != want.Success || got.Iterations != want.Iterations ||
		got.FinalCode != want.FinalCode || got.ElapsedNS != want.ElapsedNS ||
		len(got.FixerRules) != 2 || got.FixerRules[0] != "strip-prose" {
		t.Fatalf("roundtrip = %+v, want %+v", got, want)
	}

	jb2 := pipeline.Job{Filename: "f.v", Code: "c2", SampleSeed: 0}
	j.Record("lbl", jb2, pipeline.Outcome{})
	got2, ok := j.Lookup("lbl", jb2)
	if !ok || got2.FixerRules != nil {
		t.Fatalf("nil rules must stay nil: %+v ok=%v", got2, ok)
	}
}
