package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fixer"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// Table2Config parameterizes the pass@k experiment.
type Table2Config struct {
	// Seed drives generation, fixing, and testbench vectors.
	Seed int64
	// SampleN is the paper's n=20 samples per problem.
	SampleN int
	// MaxProblems truncates each suite for quick runs (0 = all).
	MaxProblems int
	// Suites to evaluate; default Machine + Human.
	Suites []dataset.Suite
	// Workers sizes the fixing pool; <= 0 means runtime.NumCPU().
	// Results are identical for any worker count: sample generation stays
	// on one RNG stream, only the agent runs are parallel.
	Workers int
	// Cache enables the sharded memoization layer (internal/memo).
	// Table output is byte-identical with it on or off.
	Cache bool
}

func (c Table2Config) withDefaults() Table2Config {
	if c.SampleN == 0 {
		c.SampleN = 20
	}
	if len(c.Suites) == 0 {
		c.Suites = []dataset.Suite{dataset.SuiteHuman, dataset.SuiteMachine}
	}
	return c
}

// Table2Row is one row of Table 2: a (suite, subset) cell with original
// and fixed pass@1 / pass@5.
type Table2Row struct {
	Suite  dataset.Suite
	Subset string // "All", "easy", "hard"
	Orig1  float64
	Fixed1 float64
	Orig5  float64
	Fixed5 float64
}

// OutcomeShares are Figure 4's ring fractions, keyed by
// "{passed|compile-error|simulation-error}-{easy|hard}".
type OutcomeShares map[string]float64

// Table2Result carries the rows plus the Figure 4 data computed from the
// same run (inner ring = original, outer ring = after fixing).
type Table2Result struct {
	Rows []Table2Row
	Fig4 map[dataset.Suite]struct {
		Inner OutcomeShares
		Outer OutcomeShares
	}
	// SyntaxErrorShare is, per suite, the fraction of *failing* original
	// samples whose failure is a compile error — the paper's "55% of
	// errors are syntax" claim for Human.
	SyntaxErrorShare map[dataset.Suite]float64
}

// sampleOutcome classifies one sample against its problem.
type sampleOutcome int

const (
	outcomePassed sampleOutcome = iota
	outcomeCompileError
	outcomeSimError
)

func (o sampleOutcome) String() string {
	switch o {
	case outcomePassed:
		return "passed"
	case outcomeCompileError:
		return "compile-error"
	default:
		return "simulation-error"
	}
}

// evaluate compiles and simulates one candidate against its problem.
func evaluate(p *dataset.Problem, code string, vecSeed int64) sampleOutcome {
	clean := fixer.Fix(code).Code
	if _, design, _ := compiler.Frontend(clean); design == nil {
		return outcomeCompileError
	}
	res, err := p.Check(clean, rand.New(rand.NewSource(vecSeed)))
	if err != nil || !res.Passed() {
		return outcomeSimError
	}
	return outcomePassed
}

// RunTable2 reproduces Table 2 and Figure 4: generate n samples per
// problem, measure pass@k, then fix syntax errors with the full RTLFixer
// configuration (ReAct + RAG + Quartus) and measure again.
//
// The run is staged for determinism under parallelism: phase A walks the
// suite sequentially on the shared RNG stream (generation + original
// outcome + per-sample fix seeds), phase B fans the expensive agent runs
// out over the pipeline's worker pool, and phase C re-scores and tallies
// in the original sample order.
func RunTable2(cfg Table2Config) *Table2Result {
	cfg = cfg.withDefaults()
	res := &Table2Result{
		Fig4: map[dataset.Suite]struct {
			Inner OutcomeShares
			Outer OutcomeShares
		}{},
		SyntaxErrorShare: map[dataset.Suite]float64{},
	}

	rtlfixer, err := core.New(core.Options{
		CompilerName: "quartus",
		PersonaName:  "gpt-3.5",
		RAG:          true,
		Mode:         core.ModeReAct,
		Seed:         cfg.Seed,
		Cache:        cfg.Cache,
	})
	if err != nil {
		panic(err)
	}

	for _, suite := range cfg.Suites {
		problems := dataset.Problems(suite)
		if cfg.MaxProblems > 0 && len(problems) > cfg.MaxProblems {
			problems = problems[:cfg.MaxProblems]
		}
		rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(len(suite))))

		type problemTally struct {
			difficulty dataset.Difficulty
			origPass   int
			fixedPass  int
			n          int
		}
		tallies := make([]problemTally, len(problems))
		inner := OutcomeShares{}
		outer := OutcomeShares{}
		totalSamples := 0
		failingSamples := 0
		syntaxFailures := 0

		// Phase A: generate and score originals sequentially; queue a fix
		// job (with its seed drawn here, on the shared stream) for every
		// compile failure — the paper addresses syntax errors only.
		type sampleRec struct {
			pi      int
			vecSeed int64
			orig    sampleOutcome
			fixJob  int // index into jobs; -1 when the sample is untouched
		}
		var recs []sampleRec
		var jobs []pipeline.Job
		for pi, p := range problems {
			tallies[pi].difficulty = p.Difficulty
			rates := llm.SkewRates(llm.RatesFor(string(p.Suite), string(p.Difficulty)), p.ID)
			vecSeed := cfg.Seed ^ int64(pi)*104729
			for s := 0; s < cfg.SampleN; s++ {
				sample := llm.Generate(p.RefSource, rates, rng).Code
				totalSamples++
				tallies[pi].n++

				orig := evaluate(p, sample, vecSeed)
				inner[orig.String()+"-"+string(p.Difficulty)]++
				rec := sampleRec{pi: pi, vecSeed: vecSeed, orig: orig, fixJob: -1}
				if orig == outcomePassed {
					tallies[pi].origPass++
				} else {
					failingSamples++
					if orig == outcomeCompileError {
						syntaxFailures++
						rec.fixJob = len(jobs)
						jobs = append(jobs, pipeline.Job{
							Group:      pi,
							Filename:   "main.v",
							Code:       sample,
							SampleSeed: rng.Int63(),
						})
					}
				}
				recs = append(recs, rec)
			}
		}

		// Phase B: the agent runs, fanned out over the pool (journaled
		// when cmd/benchmark enabled -state-dir, so a resumed run skips
		// completed fixes).
		label := fmt.Sprintf("table2/%s/samples=%d/%s", suite, cfg.SampleN, fixerLabel(rtlfixer))
		fixResults, err := runJobs(context.Background(), label, pipeline.Config{Workers: cfg.Workers}, jobs,
			pipeline.FixWith(rtlfixer))
		if err != nil {
			panic(err) // background context: cannot be canceled
		}

		// Phase C: re-score in sample order. Untouched samples keep their
		// original outcome (evaluate is a pure function of code + seed).
		for _, rec := range recs {
			p := problems[rec.pi]
			fixed := rec.orig
			if rec.fixJob >= 0 {
				fixed = evaluate(p, fixResults[rec.fixJob].Transcript.FinalCode, rec.vecSeed)
			}
			outer[fixed.String()+"-"+string(p.Difficulty)]++
			if fixed == outcomePassed {
				tallies[rec.pi].fixedPass++
			}
		}

		normalize(inner, float64(totalSamples))
		normalize(outer, float64(totalSamples))
		entry := res.Fig4[suite]
		entry.Inner = inner
		entry.Outer = outer
		res.Fig4[suite] = entry
		if failingSamples > 0 {
			res.SyntaxErrorShare[suite] = float64(syntaxFailures) / float64(failingSamples)
		}

		for _, subset := range []string{"All", "easy", "hard"} {
			var ns, origs, fixeds []int
			for _, t := range tallies {
				if subset != "All" && string(t.difficulty) != subset {
					continue
				}
				ns = append(ns, t.n)
				origs = append(origs, t.origPass)
				fixeds = append(fixeds, t.fixedPass)
			}
			if len(ns) == 0 {
				continue
			}
			row := Table2Row{Suite: suite, Subset: subset}
			row.Orig1, _ = metrics.MeanPassAtK(ns, origs, 1)
			row.Fixed1, _ = metrics.MeanPassAtK(ns, fixeds, 1)
			row.Orig5, _ = metrics.MeanPassAtK(ns, origs, 5)
			row.Fixed5, _ = metrics.MeanPassAtK(ns, fixeds, 5)
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Row finds a row.
func (r *Table2Result) Row(suite dataset.Suite, subset string) (Table2Row, bool) {
	for _, row := range r.Rows {
		if row.Suite == suite && row.Subset == subset {
			return row, true
		}
	}
	return Table2Row{}, false
}

// Render formats the rows in the paper's Table 2 layout.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: pass@k on VerilogEval before (original) and after (fixed) syntax fixing\n")
	fmt.Fprintf(&b, "%-9s %-5s %-9s %-9s %-9s %-9s\n", "Dataset", "Set", "p@1 orig", "p@1 fix", "p@5 orig", "p@5 fix")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %-5s %-9.3f %-9.3f %-9.3f %-9.3f\n",
			row.Suite, row.Subset, row.Orig1, row.Fixed1, row.Orig5, row.Fixed5)
	}
	return b.String()
}

// RenderFigure4 prints the ring shares the paper plots as pie charts.
func (r *Table2Result) RenderFigure4() string {
	var b strings.Builder
	b.WriteString("Figure 4: outcome shares prior (inner) and post (outer) syntax fixing\n")
	keys := []string{
		"passed-easy", "passed-hard",
		"compile-error-easy", "compile-error-hard",
		"simulation-error-easy", "simulation-error-hard",
	}
	suites := make([]dataset.Suite, 0, len(r.Fig4))
	for suite := range r.Fig4 {
		suites = append(suites, suite)
	}
	sort.Slice(suites, func(i, j int) bool { return suites[i] < suites[j] })
	for _, suite := range suites {
		rings := r.Fig4[suite]
		fmt.Fprintf(&b, "\nVerilogEval-%s:\n", suite)
		fmt.Fprintf(&b, "  %-24s %-8s %-8s\n", "category", "inner", "outer")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-24s %6.1f%%  %6.1f%%\n", k, 100*rings.Inner[k], 100*rings.Outer[k])
		}
	}
	return b.String()
}

func normalize(m OutcomeShares, total float64) {
	if total == 0 {
		return
	}
	for k := range m {
		m[k] /= total
	}
}
