package bench

import "testing"

func TestAnalyzerAB(t *testing.T) {
	res := RunAnalyzerAB(7, 2, testEntries(t), 0, false)
	if !res.RatesEqual {
		t.Errorf("analyzer changed the fix rate: on=%.3f off=%.3f — the lint dialect leaked into log analysis",
			res.On.FixRate, res.Off.FixRate)
	}
	if res.Off.LintFindings != 0 {
		t.Errorf("off arm surfaced %d findings", res.Off.LintFindings)
	}
	if res.On.Jobs != res.Off.Jobs || res.On.Jobs == 0 {
		t.Errorf("arm job counts differ: on=%d off=%d", res.On.Jobs, res.Off.Jobs)
	}
	t.Log("\n" + res.Render())
}
