package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// Table3Config parameterizes the RTLLM generalization experiment.
type Table3Config struct {
	Seed    int64
	SampleN int // samples per problem (default 20)
	// Workers sizes the fixing pool; <= 0 means runtime.NumCPU().
	Workers int
	// Cache enables the sharded memoization layer (internal/memo).
	// Table output is byte-identical with it on or off.
	Cache bool
}

func (c Table3Config) withDefaults() Table3Config {
	if c.SampleN == 0 {
		c.SampleN = 20
	}
	return c
}

// Table3Result reproduces Table 3: syntax success rate and pass@1 on the
// RTLLM-style suite, before and after RTLFixer (ReAct + RAG + Quartus),
// with *no new guidance entries* added for the new benchmark — the
// generalization claim.
type Table3Result struct {
	OrigSyntaxRate  float64
	FixedSyntaxRate float64
	OrigPass1       float64
	FixedPass1      float64
	Problems        int
	Samples         int
}

// RunTable3 runs the experiment.
func RunTable3(cfg Table3Config) *Table3Result {
	cfg = cfg.withDefaults()
	problems := dataset.Problems(dataset.SuiteRTLLM)
	rng := rand.New(rand.NewSource(cfg.Seed*17 + 3))

	rtlfixer, err := core.New(core.Options{
		CompilerName: "quartus",
		PersonaName:  "gpt-3.5",
		RAG:          true, // the same curated DB as Table 1: nothing new
		Mode:         core.ModeReAct,
		Seed:         cfg.Seed,
		Cache:        cfg.Cache,
	})
	if err != nil {
		panic(err)
	}

	res := &Table3Result{Problems: len(problems)}
	origCompiles, fixedCompiles, total := 0, 0, 0

	// Phase A (sequential, shared RNG stream): generate, score originals,
	// queue fix jobs for compile failures. Phase B: parallel agent runs.
	// Phase C: re-score in sample order — same staging as RunTable2.
	type sampleRec struct {
		pi      int
		vecSeed int64
		orig    sampleOutcome
		fixJob  int
	}
	var recs []sampleRec
	var jobs []pipeline.Job
	ns := make([]int, len(problems))
	origPass := make([]int, len(problems))
	fixedPass := make([]int, len(problems))
	for pi, p := range problems {
		rates := llm.SkewRates(llm.RatesFor(string(p.Suite), string(p.Difficulty)), p.ID)
		vecSeed := cfg.Seed ^ int64(pi)*7919
		for s := 0; s < cfg.SampleN; s++ {
			sample := llm.Generate(p.RefSource, rates, rng).Code
			total++
			ns[pi]++

			orig := evaluate(p, sample, vecSeed)
			if orig != outcomeCompileError {
				origCompiles++
			}
			if orig == outcomePassed {
				origPass[pi]++
			}
			rec := sampleRec{pi: pi, vecSeed: vecSeed, orig: orig, fixJob: -1}
			if orig == outcomeCompileError {
				rec.fixJob = len(jobs)
				jobs = append(jobs, pipeline.Job{
					Group:      pi,
					Filename:   "main.v",
					Code:       sample,
					SampleSeed: rng.Int63(),
				})
			}
			recs = append(recs, rec)
		}
	}

	label := fmt.Sprintf("table3/samples=%d/%s", cfg.SampleN, fixerLabel(rtlfixer))
	fixResults, err := runJobs(context.Background(), label, pipeline.Config{Workers: cfg.Workers}, jobs,
		pipeline.FixWith(rtlfixer))
	if err != nil {
		panic(err) // background context: cannot be canceled
	}

	for _, rec := range recs {
		fixed := rec.orig
		if rec.fixJob >= 0 {
			fixed = evaluate(problems[rec.pi], fixResults[rec.fixJob].Transcript.FinalCode, rec.vecSeed)
		}
		if fixed != outcomeCompileError {
			fixedCompiles++
		}
		if fixed == outcomePassed {
			fixedPass[rec.pi]++
		}
	}

	res.Samples = total
	res.OrigSyntaxRate = float64(origCompiles) / float64(total)
	res.FixedSyntaxRate = float64(fixedCompiles) / float64(total)
	res.OrigPass1, _ = metrics.MeanPassAtK(ns, origPass, 1)
	res.FixedPass1, _ = metrics.MeanPassAtK(ns, fixedPass, 1)
	return res
}

// Render formats the result in the paper's Table 3 layout.
func (r *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: RTLLM generalization (%d problems, %d samples)\n", r.Problems, r.Samples)
	fmt.Fprintf(&b, "%-24s %-20s %-8s\n", "LLM", "Syntax Success Rate", "pass@1")
	fmt.Fprintf(&b, "%-24s %-20s %-8s\n", "GPT-3.5",
		fmt.Sprintf("%.0f%%", 100*r.OrigSyntaxRate), fmt.Sprintf("%.0f%%", 100*r.OrigPass1))
	fmt.Fprintf(&b, "%-24s %-20s %-8s\n", "GPT-3.5 + RTLFixer",
		fmt.Sprintf("%.0f%%", 100*r.FixedSyntaxRate), fmt.Sprintf("%.0f%%", 100*r.FixedPass1))
	return b.String()
}
