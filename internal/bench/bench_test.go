package bench

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/curate"
	"repro/internal/dataset"
)

// sharedEntries caches one curated dataset across tests: curation is the
// expensive common setup.
var (
	entriesOnce sync.Once
	sharedEnt   []curate.Entry
)

func testEntries(t *testing.T) []curate.Entry {
	t.Helper()
	entriesOnce.Do(func() {
		sharedEnt, _ = curate.Build(curate.Options{Seed: 7})
	})
	return sharedEnt
}

// quickTable1 runs a reduced Table 1 (3 repeats, full dataset) — enough
// signal for shape assertions while staying test-suite fast.
var (
	t1Once sync.Once
	t1Res  *Table1Result
)

func quickTable1(t *testing.T) *Table1Result {
	t.Helper()
	t1Once.Do(func() {
		t1Res = RunTable1(Table1Config{Seed: 7, Repeats: 3, Entries: testEntries(t)})
	})
	return t1Res
}

func cell(t *testing.T, r *Table1Result, prompt core.Mode, rag bool, comp, persona string) float64 {
	t.Helper()
	c, ok := r.Cell(prompt, rag, comp, persona)
	if !ok {
		t.Fatalf("missing cell %v/%v/%s/%s", prompt, rag, comp, persona)
	}
	return c.FixRate
}

// TestTable1FeedbackQualityOrdering asserts the paper's central ablation:
// fix rate rises with feedback quality (Simple < iverilog < Quartus) for
// both prompting modes without RAG.
func TestTable1FeedbackQualityOrdering(t *testing.T) {
	r := quickTable1(t)
	for _, prompt := range []core.Mode{core.ModeOneShot, core.ModeReAct} {
		s := cell(t, r, prompt, false, "Simple", "gpt-3.5")
		iv := cell(t, r, prompt, false, "iverilog", "gpt-3.5")
		q := cell(t, r, prompt, false, "Quartus", "gpt-3.5")
		if !(s < iv && iv < q) {
			t.Errorf("%v: feedback ordering violated: Simple=%.3f iverilog=%.3f Quartus=%.3f",
				prompt, s, iv, q)
		}
	}
}

// TestTable1ReActBeatsOneShot asserts the ReAct-vs-One-shot claim: a gain
// of roughly 20-30 points in every column (paper: +25.7/+26.4/+31.2).
func TestTable1ReActBeatsOneShot(t *testing.T) {
	r := quickTable1(t)
	for _, comp := range []string{"Simple", "iverilog", "Quartus"} {
		one := cell(t, r, core.ModeOneShot, false, comp, "gpt-3.5")
		react := cell(t, r, core.ModeReAct, false, comp, "gpt-3.5")
		gain := react - one
		if gain < 0.10 {
			t.Errorf("%s: ReAct gain %.3f too small (paper: 0.25+)", comp, gain)
		}
	}
}

// TestTable1RAGHelps asserts the RAG claim: substantial gains with both
// prompting modes (paper: +31.2 one-shot, +18.6 ReAct on Quartus).
func TestTable1RAGHelps(t *testing.T) {
	r := quickTable1(t)
	for _, prompt := range []core.Mode{core.ModeOneShot, core.ModeReAct} {
		for _, comp := range []string{"iverilog", "Quartus"} {
			without := cell(t, r, prompt, false, comp, "gpt-3.5")
			with := cell(t, r, prompt, true, comp, "gpt-3.5")
			if with-without < 0.05 {
				t.Errorf("%v/%s: RAG gain %.3f too small", prompt, comp, with-without)
			}
		}
	}
}

// TestTable1SimpleRAGUndefined asserts the "-" cells: RAG needs a compiler
// log to retrieve from, so Simple+RAG is undefined.
func TestTable1SimpleRAGUndefined(t *testing.T) {
	r := quickTable1(t)
	for _, prompt := range []core.Mode{core.ModeOneShot, core.ModeReAct} {
		c, ok := r.Cell(prompt, true, "Simple", "gpt-3.5")
		if !ok || c.Defined() {
			t.Errorf("%v: Simple+RAG should be undefined, got %+v", prompt, c)
		}
	}
}

// TestTable1BestCellIsReActRAGQuartus asserts the headline: the full
// RTLFixer configuration is the best gpt-3.5 cell and approaches the
// paper's 98.5%.
func TestTable1BestCellIsReActRAGQuartus(t *testing.T) {
	r := quickTable1(t)
	best := cell(t, r, core.ModeReAct, true, "Quartus", "gpt-3.5")
	if best < 0.90 {
		t.Errorf("ReAct+RAG+Quartus fix rate %.3f; paper reports 0.985", best)
	}
	for _, c := range r.Cells {
		if c.Persona != "gpt-3.5" || !c.Defined() {
			continue
		}
		if c.FixRate > best+1e-9 {
			t.Errorf("cell %+v beats the full configuration (%.3f > %.3f)", c, c.FixRate, best)
		}
	}
}

// TestTable1GPT4 asserts the model ablation: GPT-4 is strong everywhere
// and gains much less from ReAct than GPT-3.5 does (paper: ~1 point).
func TestTable1GPT4(t *testing.T) {
	r := quickTable1(t)
	oneShot := cell(t, r, core.ModeOneShot, true, "Quartus", "gpt-4")
	react := cell(t, r, core.ModeReAct, true, "Quartus", "gpt-4")
	if oneShot < 0.80 {
		t.Errorf("GPT-4 one-shot+RAG %.3f; paper reports 0.98", oneShot)
	}
	gpt4Gain := react - oneShot
	gpt35Gain := cell(t, r, core.ModeReAct, true, "Quartus", "gpt-3.5") -
		cell(t, r, core.ModeOneShot, true, "Quartus", "gpt-3.5")
	if gpt4Gain >= gpt35Gain {
		t.Errorf("GPT-4 ReAct gain (%.3f) should be smaller than GPT-3.5's (%.3f)",
			gpt4Gain, gpt35Gain)
	}
}

// TestFigure7MostFixesInOneIteration asserts the paper's Fig. 7 claim:
// about 90% of resolved samples need a single revision.
func TestFigure7MostFixesInOneIteration(t *testing.T) {
	r := quickTable1(t)
	total, first := 0, 0
	for i := 1; i < len(r.IterationHist); i++ {
		total += r.IterationHist[i]
		if i == 1 {
			first = r.IterationHist[i]
		}
	}
	if total == 0 {
		t.Fatal("no iteration data collected")
	}
	share := float64(first) / float64(total)
	if share < 0.70 || share > 0.99 {
		t.Errorf("single-iteration share = %.2f, want ~0.9", share)
	}
	// And a real tail must exist: some samples need > 1 iteration.
	if total == first {
		t.Error("iteration histogram has no tail")
	}
}

// TestTable2Shapes asserts Table 2's structure on a reduced run: fixing
// helps every subset, Machine gains much more than Human, and easy gains
// exceed hard gains on Human (paper: 14.5 vs 6.7 points).
func TestTable2Shapes(t *testing.T) {
	res := RunTable2(Table2Config{Seed: 7, SampleN: 6})
	for _, row := range res.Rows {
		if row.Fixed1 < row.Orig1 {
			t.Errorf("%s/%s: fixing reduced pass@1 (%.3f -> %.3f)",
				row.Suite, row.Subset, row.Orig1, row.Fixed1)
		}
		if row.Fixed5 < row.Orig5 {
			t.Errorf("%s/%s: fixing reduced pass@5", row.Suite, row.Subset)
		}
		if row.Orig5 < row.Orig1 {
			t.Errorf("%s/%s: pass@5 below pass@1", row.Suite, row.Subset)
		}
	}
	mAll, _ := res.Row(dataset.SuiteMachine, "All")
	hAll, _ := res.Row(dataset.SuiteHuman, "All")
	if (mAll.Fixed1 - mAll.Orig1) <= (hAll.Fixed1 - hAll.Orig1) {
		t.Errorf("Machine gain (%.3f) should exceed Human gain (%.3f)",
			mAll.Fixed1-mAll.Orig1, hAll.Fixed1-hAll.Orig1)
	}
	hEasy, _ := res.Row(dataset.SuiteHuman, "easy")
	hHard, _ := res.Row(dataset.SuiteHuman, "hard")
	if (hEasy.Fixed1 - hEasy.Orig1) <= (hHard.Fixed1 - hHard.Orig1) {
		t.Errorf("Human easy gain (%.3f) should exceed hard gain (%.3f)",
			hEasy.Fixed1-hEasy.Orig1, hHard.Fixed1-hHard.Orig1)
	}
	if hHard.Orig1 > 0.15 {
		t.Errorf("Human hard original pass@1 = %.3f; paper reports 0.053", hHard.Orig1)
	}
}

// TestFigure4CompileErrorsCollapse asserts Figure 4's visual claim: the
// compile-error share collapses to near zero after fixing, and the passed
// share grows.
func TestFigure4CompileErrorsCollapse(t *testing.T) {
	res := RunTable2(Table2Config{Seed: 11, SampleN: 4})
	for suite, rings := range res.Fig4 {
		innerCE := rings.Inner["compile-error-easy"] + rings.Inner["compile-error-hard"]
		outerCE := rings.Outer["compile-error-easy"] + rings.Outer["compile-error-hard"]
		if innerCE < 0.15 {
			t.Errorf("%s: original compile-error share %.3f suspiciously low", suite, innerCE)
		}
		if outerCE > 0.1*innerCE+0.02 {
			t.Errorf("%s: compile errors did not collapse (%.3f -> %.3f)", suite, innerCE, outerCE)
		}
		innerPass := rings.Inner["passed-easy"] + rings.Inner["passed-hard"]
		outerPass := rings.Outer["passed-easy"] + rings.Outer["passed-hard"]
		if outerPass <= innerPass {
			t.Errorf("%s: passed share did not grow (%.3f -> %.3f)", suite, innerPass, outerPass)
		}
		// Ring shares must sum to ~1.
		sumIn, sumOut := 0.0, 0.0
		for _, v := range rings.Inner {
			sumIn += v
		}
		for _, v := range rings.Outer {
			sumOut += v
		}
		if math.Abs(sumIn-1) > 1e-9 || math.Abs(sumOut-1) > 1e-9 {
			t.Errorf("%s: ring shares do not sum to 1 (%.4f, %.4f)", suite, sumIn, sumOut)
		}
	}
}

// TestSyntaxShareOfErrors asserts the paper's §1 statistic: roughly half
// of GPT-3.5's Verilog errors on Human are syntax errors (paper: 55%).
func TestSyntaxShareOfErrors(t *testing.T) {
	res := RunTable2(Table2Config{Seed: 13, SampleN: 6,
		Suites: []dataset.Suite{dataset.SuiteHuman}})
	share := res.SyntaxErrorShare[dataset.SuiteHuman]
	if share < 0.35 || share > 0.70 {
		t.Errorf("syntax share of Human errors = %.2f, paper reports 0.55", share)
	}
}

// TestTable3Generalization asserts Table 3: on the unseen RTLLM-style
// suite with the unchanged guidance DB, syntax success improves sharply
// (paper: 73% -> 93%) and pass@1 improves modestly (11% -> 16%).
func TestTable3Generalization(t *testing.T) {
	res := RunTable3(Table3Config{Seed: 7, SampleN: 10})
	if res.FixedSyntaxRate-res.OrigSyntaxRate < 0.08 {
		t.Errorf("syntax success gain too small: %.2f -> %.2f",
			res.OrigSyntaxRate, res.FixedSyntaxRate)
	}
	if res.FixedSyntaxRate < 0.90 {
		t.Errorf("fixed syntax success %.2f; paper reports 0.93", res.FixedSyntaxRate)
	}
	if res.FixedPass1 < res.OrigPass1 {
		t.Errorf("pass@1 regressed: %.3f -> %.3f", res.OrigPass1, res.FixedPass1)
	}
	if res.FixedPass1-res.OrigPass1 > 0.25 {
		t.Errorf("pass@1 gain %.3f implausibly large (paper: +0.05)",
			res.FixedPass1-res.OrigPass1)
	}
}

// TestCurationPipeline asserts the dataset construction invariants: the
// paper's 212 samples, every one failing compilation, with ground truth
// attached.
func TestCurationPipeline(t *testing.T) {
	entries := testEntries(t)
	if len(entries) != curate.TargetSize {
		t.Fatalf("curated %d entries, want %d", len(entries), curate.TargetSize)
	}
	problems := map[string]bool{}
	for _, e := range entries {
		problems[e.ProblemID] = true
	}
	if len(problems) < 50 {
		t.Errorf("only %d distinct problems represented; want diversity", len(problems))
	}
}

// TestTable1Render smoke-checks the report formatting.
func TestTable1Render(t *testing.T) {
	r := quickTable1(t)
	out := r.Render()
	for _, want := range []string{"One-shot", "ReAct", "Quartus", "GPT-4"} {
		if !containsStr(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if fig := r.RenderFigure7(); !containsStr(fig, "iterations") {
		t.Errorf("figure 7 render wrong:\n%s", fig)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
