package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/curate"
)

// This file is the analyzer A/B: the same curated dataset run through
// the same ReAct+RAG+Quartus fixer with the semantic lint engine
// (internal/analyze) on and off. The analyzer's findings ride along in
// every failing compile observation the model sees; because the
// simulated model's log analysis deliberately ignores the lint dialect
// (it keys on compiler-error shapes only), the measured fix rates must
// be identical — the table demonstrates the findings are surfaced at
// zero cost to the repair loop, and gives the harness a real LLM could
// be dropped into.

// AnalyzerABArm is one side of the A/B.
type AnalyzerABArm struct {
	// Analyzer is true for the findings-on arm.
	Analyzer bool
	// FixRate is metrics.FixRate over the curated entries.
	FixRate float64
	// LintFindings is the total count of analyzer findings surfaced to
	// the model across all transcripts (necessarily 0 for the off arm).
	LintFindings int
	Jobs         int
}

// AnalyzerABResult is the experiment output.
type AnalyzerABResult struct {
	On  AnalyzerABArm
	Off AnalyzerABArm
	// RatesEqual records the designed invariant: both arms measured the
	// same fix rate.
	RatesEqual bool
}

// RunAnalyzerAB measures both arms over the curated dataset.
func RunAnalyzerAB(seed int64, repeats int, entries []curate.Entry, workers int, cache bool) *AnalyzerABResult {
	if repeats <= 0 {
		repeats = 3
	}
	arm := func(disable bool) AnalyzerABArm {
		f, err := core.New(core.Options{
			CompilerName:    "quartus",
			RAG:             true,
			Mode:            core.ModeReAct,
			Seed:            seed,
			Cache:           cache,
			DisableAnalyzer: disable,
		})
		if err != nil {
			panic(err) // fixed configuration: always valid
		}
		sum := runFixRateJobs("analyzer-ab", f, entries, repeats, workers)
		return AnalyzerABArm{
			Analyzer:     !disable,
			FixRate:      sum.FixRate,
			LintFindings: sum.LintFindings,
			Jobs:         sum.Jobs,
		}
	}
	res := &AnalyzerABResult{On: arm(false), Off: arm(true)}
	res.RatesEqual = res.On.FixRate == res.Off.FixRate
	return res
}

// Render formats the A/B table.
func (r *AnalyzerABResult) Render() string {
	var b strings.Builder
	b.WriteString("Analyzer A/B (ReAct+RAG+Quartus, semantic lint findings in model feedback):\n")
	fmt.Fprintf(&b, "  %-14s %-10s %-18s %s\n", "analyzer", "fix rate", "findings surfaced", "jobs")
	row := func(a AnalyzerABArm) {
		on := "off"
		if a.Analyzer {
			on = "on"
		}
		fmt.Fprintf(&b, "  %-14s %-10.3f %-18d %d\n", on, a.FixRate, a.LintFindings, a.Jobs)
	}
	row(r.On)
	row(r.Off)
	if r.RatesEqual {
		b.WriteString("  fix rates identical: the lint dialect is invisible to the simulated\n")
		b.WriteString("  model's log analysis, so findings reach the prompt at zero cost.\n")
	} else {
		b.WriteString("  WARNING: fix rates differ — the lint lines leaked into log analysis.\n")
	}
	return b.String()
}

// AnalyzerABJSON is the marshal-safe form.
type AnalyzerABJSON struct {
	FixRateOn   float64 `json:"fix_rate_on"`
	FixRateOff  float64 `json:"fix_rate_off"`
	FindingsOn  int     `json:"findings_surfaced_on"`
	FindingsOff int     `json:"findings_surfaced_off"`
	Jobs        int     `json:"jobs"`
	RatesEqual  bool    `json:"rates_equal"`
}

// JSON returns the marshal-safe form.
func (r *AnalyzerABResult) JSON() AnalyzerABJSON {
	return AnalyzerABJSON{
		FixRateOn:   r.On.FixRate,
		FixRateOff:  r.Off.FixRate,
		FindingsOn:  r.On.LintFindings,
		FindingsOff: r.Off.LintFindings,
		Jobs:        r.On.Jobs,
		RatesEqual:  r.RatesEqual,
	}
}
