package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fixer"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/wave"
)

// This file reproduces the paper's §5 discussion ("Challenges in
// Debugging Simulation Errors") as a measurable experiment: after syntax
// fixing, feed simulation-mismatch feedback (output error counts and a
// first-mismatch excerpt, the same feedback style the authors tried) to
// the model and let it attempt logic repairs. The paper's finding is that
// improvements beyond syntax fixing are limited and concentrated on
// simple problems — this harness measures exactly that.

// SimFeedbackResult summarizes the experiment.
type SimFeedbackResult struct {
	// Pass1AfterSyntax is pass@1 after syntax fixing only (the Table 2
	// "fixed" column).
	Pass1AfterSyntax float64
	// Pass1AfterSimRepair adds the simulation-feedback repair loop.
	Pass1AfterSimRepair float64
	// EasyGain / HardGain split the improvement by problem difficulty:
	// the paper observes proficiency "only ... for simple problems".
	EasyGain float64
	HardGain float64
	Problems int
	Samples  int
}

// simRepairAttempts bounds the logic-repair loop, mirroring the syntax
// loop's iteration budget.
const simRepairAttempts = 5

// RunSimFeedback measures the gain from simulation-error feedback on the
// Human suite.
func RunSimFeedback(seed int64, sampleN int) *SimFeedbackResult {
	if sampleN == 0 {
		sampleN = 8
	}
	problems := dataset.Problems(dataset.SuiteHuman)
	rng := rand.New(rand.NewSource(seed*13 + 1))

	rtlfixer, err := core.New(core.Options{
		CompilerName: "quartus", RAG: true, Mode: core.ModeReAct, Seed: seed})
	if err != nil {
		panic(err)
	}
	persona := llm.GPT35()

	res := &SimFeedbackResult{Problems: len(problems)}
	var easySyntax, easySim, easyN float64
	var hardSyntax, hardSim, hardN float64

	for pi, p := range problems {
		rates := llm.SkewRates(llm.RatesFor(string(p.Suite), string(p.Difficulty)), p.ID)
		vecSeed := seed ^ int64(pi)*104729
		for s := 0; s < sampleN; s++ {
			sample := llm.Generate(p.RefSource, rates, rng).Code
			res.Samples++

			// Stage 1: syntax fixing (the paper's pipeline).
			code := fixer.Fix(sample).Code
			if _, design, _ := compiler.Frontend(code); design == nil {
				tr := rtlfixer.Fix("main.v", sample, rng.Int63())
				code = tr.FinalCode
			}
			syntaxPass := passes(p, code, vecSeed)

			// Stage 2: simulation-feedback repair for the samples that
			// compile but fail simulation.
			simPass := syntaxPass
			if !syntaxPass {
				if _, design, _ := compiler.Frontend(code); design != nil {
					repaired := simRepairLoop(p, code, persona, vecSeed, rng)
					simPass = passes(p, repaired, vecSeed)
				}
			}

			bucket := func(syntaxOK, simOK bool) {
				sv, mv := 0.0, 0.0
				if syntaxOK {
					sv = 1
				}
				if simOK {
					mv = 1
				}
				if p.Difficulty == dataset.Easy {
					easySyntax += sv
					easySim += mv
					easyN++
				} else {
					hardSyntax += sv
					hardSim += mv
					hardN++
				}
			}
			bucket(syntaxPass, simPass)
		}
	}

	total := easyN + hardN
	res.Pass1AfterSyntax = (easySyntax + hardSyntax) / total
	res.Pass1AfterSimRepair = (easySim + hardSim) / total
	if easyN > 0 {
		res.EasyGain = (easySim - easySyntax) / easyN
	}
	if hardN > 0 {
		res.HardGain = (hardSim - hardSyntax) / hardN
	}
	return res
}

// passes compiles and simulates a candidate.
func passes(p *dataset.Problem, code string, vecSeed int64) bool {
	clean := fixer.Fix(code).Code
	if _, design, _ := compiler.Frontend(clean); design == nil {
		return false
	}
	r, err := p.Check(clean, rand.New(rand.NewSource(vecSeed)))
	return err == nil && r.Passed()
}

// SimFeedbackText renders the paper-style simulation feedback for a
// failing candidate: the mismatch summary plus a bounded VCD excerpt
// windowed around the first mismatch — the text an agent iteration sees.
// It draws only from a vecSeed-derived generator, so callers inside a
// seeded experiment consume nothing from their campaign RNG. Empty when
// the candidate does not compile, errors out, or actually passes.
func SimFeedbackText(p *dataset.Problem, code string, vecSeed int64) string {
	clean := fixer.Fix(code).Code
	if _, design, _ := compiler.Frontend(clean); design == nil {
		return ""
	}
	rec := wave.NewRecorder(8)
	r, err := p.CheckObserved(clean, rand.New(rand.NewSource(vecSeed)), sim.TBObserve{Recorder: rec})
	if err != nil || r.Passed() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "simulation failed: %d mismatches over %d cycles; first: %s\n",
		r.Mismatches, r.Cycles, r.FirstMismatch)
	if r.Waveform != "" {
		b.WriteString("waveform excerpt around the first mismatch:\n")
		b.WriteString(r.Waveform)
	}
	return b.String()
}

// simRepairLoop models the paper's attempt: show the model the mismatch
// summary, let it revise, resimulate. Crucially the model does NOT get an
// oracle over candidate edits — the paper's observation is precisely that
// LLMs "had constrained capabilities to comprehend simulation feedback",
// so each revision is a best-guess local semantic edit applied blind;
// only the final result is scored. Success therefore requires the edit
// walk to land on behaviourally correct code, which happens mostly on
// short, simple modules whose defect is a single invertible operator.
func simRepairLoop(p *dataset.Problem, code string, persona llm.Persona, vecSeed int64, rng *rand.Rand) string {
	// Comprehension gate: the paper found the model "only exhibited
	// proficiency in fixing logic implementation errors for simple
	// problems but struggled with more complex questions". Whether the
	// model understands the waveform-style feedback at all is a
	// per-sample event whose probability collapses with difficulty.
	pComprehend := 0.35 * persona.DefaultCompetence / 0.55
	if p.Difficulty == dataset.Hard {
		pComprehend = 0.05 * persona.DefaultCompetence / 0.55
	}
	if rng.Float64() > pComprehend {
		return code
	}
	// The comprehending model is shown the mismatch summary plus a
	// waveform excerpt around the first failing cycle. The feedback is
	// built from the vecSeed stream only, so the campaign RNG (and with
	// it every published rate) is untouched by observability.
	if feedback := SimFeedbackText(p, code, vecSeed); feedback == "" {
		return code // errored rather than mismatched: nothing actionable
	}
	cur := code
	for attempt := 0; attempt < simRepairAttempts; attempt++ {
		candidate := llm.ProposeLogicEdit(cur, rng)
		if candidate == cur {
			continue
		}
		if _, design, _ := compiler.Frontend(candidate); design == nil {
			continue // broke the syntax: the model discards that draft
		}
		cur = candidate
		// The only signal the loop acts on is pass/fail of a full
		// resimulation between iterations.
		if passes(p, cur, vecSeed) {
			return cur
		}
	}
	return cur
}

// Render formats the result.
func (r *SimFeedbackResult) Render() string {
	var b strings.Builder
	b.WriteString("Simulation-feedback extension (paper §5):\n")
	fmt.Fprintf(&b, "  pass@1 after syntax fixing only:   %.3f\n", r.Pass1AfterSyntax)
	fmt.Fprintf(&b, "  pass@1 after +simulation feedback: %.3f\n", r.Pass1AfterSimRepair)
	fmt.Fprintf(&b, "  gain on easy problems: %+.3f\n", r.EasyGain)
	fmt.Fprintf(&b, "  gain on hard problems: %+.3f\n", r.HardGain)
	return b.String()
}
