package bench

import "testing"

// TestSimFeedbackLimitedGains reproduces §5's finding: simulation-error
// feedback yields only limited improvement beyond syntax fixing, and the
// improvement concentrates on easy problems.
func TestSimFeedbackLimitedGains(t *testing.T) {
	res := RunSimFeedback(7, 4)
	t.Log("\n" + res.Render())
	if res.Pass1AfterSimRepair < res.Pass1AfterSyntax {
		t.Fatalf("simulation repair regressed pass@1: %.3f -> %.3f",
			res.Pass1AfterSyntax, res.Pass1AfterSimRepair)
	}
	gain := res.Pass1AfterSimRepair - res.Pass1AfterSyntax
	if gain > 0.15 {
		t.Errorf("gain %.3f implausibly large; the paper reports limited improvements", gain)
	}
	if res.EasyGain < res.HardGain-0.02 {
		t.Errorf("gain should concentrate on easy problems: easy %+.3f vs hard %+.3f",
			res.EasyGain, res.HardGain)
	}
}
