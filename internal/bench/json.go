// Machine-readable forms of the benchmark results, for cmd/benchmark
// -json and for dashboards fed alongside the rtlfixerd /v1/stats
// pipeline. Each result type gets a JSON() method returning a
// marshal-safe mirror: encoding/json rejects NaN, so undefined cells
// (the paper's "-" entries) become null via *float64.
package bench

import (
	"math"

	"repro/internal/dataset"
)

// jsonRate maps a fix rate to a nullable JSON number (NaN → null).
func jsonRate(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// Table1CellJSON is one Table 1 cell; FixRate is null for undefined
// combinations (Simple+RAG has no log to retrieve on).
type Table1CellJSON struct {
	Prompt   string   `json:"prompt"`
	RAG      bool     `json:"rag"`
	Compiler string   `json:"compiler"`
	Persona  string   `json:"persona"`
	FixRate  *float64 `json:"fix_rate"`
}

// Table1JSON mirrors Table1Result (plus Figure 7's histogram).
type Table1JSON struct {
	DatasetSize   int              `json:"dataset_size"`
	Cells         []Table1CellJSON `json:"cells"`
	IterationHist []int            `json:"iteration_hist"`
	Curation      CurationJSON     `json:"curation"`
}

// CurationJSON mirrors curate.Stats.
type CurationJSON struct {
	Sampled        int `json:"sampled"`
	CompileFailing int `json:"compile_failing"`
	Filtered       int `json:"filtered"`
	Clusters       int `json:"clusters"`
	Final          int `json:"final"`
}

// JSON returns the marshal-safe form.
func (r *Table1Result) JSON() Table1JSON {
	out := Table1JSON{
		DatasetSize:   r.DatasetSize,
		IterationHist: r.IterationHist[:],
		Curation: CurationJSON{
			Sampled:        r.CurationStats.Sampled,
			CompileFailing: r.CurationStats.CompileFailing,
			Filtered:       r.CurationStats.Filtered,
			Clusters:       r.CurationStats.Clusters,
			Final:          r.CurationStats.Final,
		},
	}
	for _, c := range r.Cells {
		out.Cells = append(out.Cells, Table1CellJSON{
			Prompt:   string(c.Prompt),
			RAG:      c.RAG,
			Compiler: c.Compiler,
			Persona:  c.Persona,
			FixRate:  jsonRate(c.FixRate),
		})
	}
	return out
}

// Table2RowJSON is one pass@k row.
type Table2RowJSON struct {
	Suite  string  `json:"suite"`
	Subset string  `json:"subset"`
	Orig1  float64 `json:"orig_pass1"`
	Fixed1 float64 `json:"fixed_pass1"`
	Orig5  float64 `json:"orig_pass5"`
	Fixed5 float64 `json:"fixed_pass5"`
}

// Figure4JSON is one suite's outcome rings (inner = original samples,
// outer = after fixing), keyed by outcome-difficulty.
type Figure4JSON struct {
	Inner map[string]float64 `json:"inner"`
	Outer map[string]float64 `json:"outer"`
}

// Table2JSON mirrors Table2Result plus its Figure 4 data.
type Table2JSON struct {
	Rows             []Table2RowJSON        `json:"rows"`
	Figure4          map[string]Figure4JSON `json:"figure4"`
	SyntaxErrorShare map[string]float64     `json:"syntax_error_share"`
}

// JSON returns the marshal-safe form.
func (r *Table2Result) JSON() Table2JSON {
	out := Table2JSON{
		Figure4:          map[string]Figure4JSON{},
		SyntaxErrorShare: map[string]float64{},
	}
	for _, row := range r.Rows {
		out.Rows = append(out.Rows, Table2RowJSON{
			Suite:  string(row.Suite),
			Subset: row.Subset,
			Orig1:  row.Orig1,
			Fixed1: row.Fixed1,
			Orig5:  row.Orig5,
			Fixed5: row.Fixed5,
		})
	}
	for suite, rings := range r.Fig4 {
		out.Figure4[string(suite)] = Figure4JSON{Inner: rings.Inner, Outer: rings.Outer}
	}
	for suite, share := range r.SyntaxErrorShare {
		out.SyntaxErrorShare[string(suite)] = share
	}
	return out
}

// Table3JSON mirrors Table3Result.
type Table3JSON struct {
	Suite           string  `json:"suite"`
	Problems        int     `json:"problems"`
	Samples         int     `json:"samples"`
	OrigSyntaxRate  float64 `json:"orig_syntax_ok_rate"`
	FixedSyntaxRate float64 `json:"fixed_syntax_ok_rate"`
	OrigPass1       float64 `json:"orig_pass1"`
	FixedPass1      float64 `json:"fixed_pass1"`
}

// JSON returns the marshal-safe form.
func (r *Table3Result) JSON() Table3JSON {
	return Table3JSON{
		Suite:           string(dataset.SuiteRTLLM),
		Problems:        r.Problems,
		Samples:         r.Samples,
		OrigSyntaxRate:  r.OrigSyntaxRate,
		FixedSyntaxRate: r.FixedSyntaxRate,
		OrigPass1:       r.OrigPass1,
		FixedPass1:      r.FixedPass1,
	}
}

// AblationJSON is one ablation configuration.
type AblationJSON struct {
	Name    string   `json:"name"`
	FixRate *float64 `json:"fix_rate"`
}

// AblationsJSON converts a named ablation sweep.
func AblationsJSON(results []AblationResult) []AblationJSON {
	out := make([]AblationJSON, 0, len(results))
	for _, r := range results {
		out = append(out, AblationJSON{Name: r.Name, FixRate: jsonRate(r.FixRate)})
	}
	return out
}

// SimFeedbackJSON mirrors SimFeedbackResult.
type SimFeedbackJSON struct {
	Problems            int     `json:"problems"`
	Samples             int     `json:"samples"`
	Pass1AfterSyntax    float64 `json:"pass1_after_syntax"`
	Pass1AfterSimRepair float64 `json:"pass1_after_sim_repair"`
	EasyGain            float64 `json:"easy_gain"`
	HardGain            float64 `json:"hard_gain"`
}

// JSON returns the marshal-safe form.
func (r *SimFeedbackResult) JSON() SimFeedbackJSON {
	return SimFeedbackJSON{
		Problems:            r.Problems,
		Samples:             r.Samples,
		Pass1AfterSyntax:    r.Pass1AfterSyntax,
		Pass1AfterSimRepair: r.Pass1AfterSimRepair,
		EasyGain:            r.EasyGain,
		HardGain:            r.HardGain,
	}
}
