package bench

import (
	"encoding/json"
	"math"
	"testing"
)

// TestTable1JSONMarshalSafe: the JSON mirror must marshal (NaN cells
// would make encoding/json fail) and preserve every cell, with undefined
// combinations mapped to null.
func TestTable1JSONMarshalSafe(t *testing.T) {
	r := quickTable1(t)
	j := r.JSON()
	data, err := json.Marshal(j)
	if err != nil {
		t.Fatalf("Table1 JSON does not marshal: %v", err)
	}
	if len(j.Cells) != len(r.Cells) {
		t.Fatalf("JSON has %d cells, result has %d", len(j.Cells), len(r.Cells))
	}
	undef, def := 0, 0
	for i, c := range j.Cells {
		if math.IsNaN(r.Cells[i].FixRate) {
			if c.FixRate != nil {
				t.Fatalf("cell %d: undefined rate not mapped to null", i)
			}
			undef++
		} else {
			if c.FixRate == nil || *c.FixRate != r.Cells[i].FixRate {
				t.Fatalf("cell %d: defined rate lost in JSON", i)
			}
			def++
		}
	}
	if undef == 0 || def == 0 {
		t.Fatalf("expected both defined (%d) and undefined (%d) cells", def, undef)
	}
	// Round-trips cleanly.
	var back Table1JSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.DatasetSize != r.DatasetSize || len(back.IterationHist) != len(r.IterationHist) {
		t.Fatal("round-trip lost fields")
	}
}

func TestTable2And3JSON(t *testing.T) {
	r2 := RunTable2(Table2Config{Seed: 7, SampleN: 4})
	j2 := r2.JSON()
	if _, err := json.Marshal(j2); err != nil {
		t.Fatalf("Table2 JSON does not marshal: %v", err)
	}
	if len(j2.Rows) != len(r2.Rows) || len(j2.Figure4) != len(r2.Fig4) {
		t.Fatal("Table2 JSON dropped rows or rings")
	}
	for _, row := range j2.Rows {
		if row.Suite == "" || row.Subset == "" {
			t.Fatalf("row missing labels: %+v", row)
		}
	}

	r3 := RunTable3(Table3Config{Seed: 7, SampleN: 4})
	j3 := r3.JSON()
	if _, err := json.Marshal(j3); err != nil {
		t.Fatalf("Table3 JSON does not marshal: %v", err)
	}
	if j3.Suite != "rtllm" || j3.Problems != r3.Problems {
		t.Fatalf("Table3 JSON mislabeled: %+v", j3)
	}
}

func TestAblationAndSimFeedbackJSON(t *testing.T) {
	in := []AblationResult{
		{Name: "exact-tag", FixRate: 0.75},
		{Name: "undefined", FixRate: math.NaN()},
	}
	out := AblationsJSON(in)
	if len(out) != 2 || out[0].FixRate == nil || *out[0].FixRate != 0.75 || out[1].FixRate != nil {
		t.Fatalf("ablation JSON wrong: %+v", out)
	}
	if _, err := json.Marshal(out); err != nil {
		t.Fatalf("ablation JSON does not marshal: %v", err)
	}

	sf := &SimFeedbackResult{Pass1AfterSyntax: 0.3, Pass1AfterSimRepair: 0.4, Problems: 5, Samples: 10}
	if _, err := json.Marshal(sf.JSON()); err != nil {
		t.Fatalf("simfeedback JSON does not marshal: %v", err)
	}
}
