// Resumable benchmarks: a store-backed pipeline.Journal plus the label
// scheme that scopes journal entries to one exact experiment
// configuration.
//
// cmd/benchmark wires this up from -state-dir/-resume: every completed
// agent job is journaled through the pipeline's per-job completion hook,
// and a resumed run restores those outcomes instead of re-running the
// jobs. Because a journal entry is addressed by (label, filename, code,
// seed) and the label carries the full fixer configuration and
// experiment parameters, a restored run's tables are byte-identical to
// an uninterrupted one — and a run with any different flag simply shares
// nothing.
package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/trace"
)

// journal is the package-wide pipeline journal (nil = journaling off).
// Set once by SetJournal before any experiment runs.
var journal pipeline.Journal

// SetJournal installs the journal every bench experiment records to and
// resumes from. Pass nil to disable. Call before running experiments.
func SetJournal(j pipeline.Journal) { journal = j }

// tracer is the package-wide trace collector (nil = tracing off). Set
// once by SetTracer before any experiment runs.
var tracer *trace.Collector

// SetTracer installs a trace collector on every bench pipeline run, so
// each agent job records a stage-level span tree (cmd/benchmark's
// -stages breakdown). Pass nil to disable — the default, which keeps
// experiment hot paths allocation-free and table output untouched.
func SetTracer(c *trace.Collector) { tracer = c }

// runJobs funnels every bench pipeline run through the package journal
// and tracer.
func runJobs(ctx context.Context, label string, cfg pipeline.Config, jobs []pipeline.Job, fn pipeline.FixFunc) ([]pipeline.Result, error) {
	cfg.Tracer = tracer
	return pipeline.RunJournaled(ctx, cfg, label, jobs, fn, journal)
}

// fixerLabel fingerprints a fixer configuration for journal scoping:
// everything that selects agent behaviour beyond the job fields. The
// cache flag is deliberately absent — output is byte-identical with the
// cache on or off, so journaled outcomes are shared across that flag.
func fixerLabel(f *core.RTLFixer) string {
	o := f.Options()
	ret := "default"
	if o.Retriever != nil {
		ret = o.Retriever.Name()
	}
	return fmt.Sprintf("mode=%s,rag=%v,comp=%s,llm=%s,iters=%d,seed=%d,ret=%s,analyze=%v",
		o.Mode, o.RAG, o.CompilerName, o.PersonaName, o.MaxIterations, o.Seed, ret, !o.DisableAnalyzer)
}

// RecordOnly wraps a journal so lookups always miss: a fresh run records
// its progress for a future -resume without consuming state left by
// previous runs. (Only -resume opts into restoring outcomes.)
func RecordOnly(j pipeline.Journal) pipeline.Journal { return recordOnly{j} }

type recordOnly struct{ inner pipeline.Journal }

func (r recordOnly) Lookup(string, pipeline.Job) (pipeline.Outcome, bool) {
	return pipeline.Outcome{}, false
}

func (r recordOnly) Record(label string, jb pipeline.Job, o pipeline.Outcome) {
	r.inner.Record(label, jb, o)
}

// StoreJournal adapts a durable store.Backing to pipeline.Journal.
// Records are content-addressed by pipeline.JobKey and carry the full
// job identity, so an FNV collision (or a stale payload) degrades to a
// re-run, never a restored foreign outcome.
type StoreJournal struct {
	b store.Backing
}

// NewStoreJournal wraps a backing.
func NewStoreJournal(b store.Backing) *StoreJournal { return &StoreJournal{b: b} }

// benchPayloadV 2 added the outcome's LintFindings count; stale v1
// entries degrade to a re-run.
const benchPayloadV = 2

// Lookup implements pipeline.Journal.
func (j *StoreJournal) Lookup(label string, jb pipeline.Job) (pipeline.Outcome, bool) {
	data, ok := j.b.Get(store.KindBenchJob, pipeline.JobKey(label, jb))
	if !ok {
		return pipeline.Outcome{}, false
	}
	d := store.NewDecoder(data)
	if d.U8() != benchPayloadV {
		return pipeline.Outcome{}, false
	}
	if d.String() != label || d.String() != jb.Filename || d.String() != jb.Code || d.I64() != jb.SampleSeed {
		return pipeline.Outcome{}, false // key collision: re-run
	}
	var o pipeline.Outcome
	o.Success = d.Bool()
	o.Iterations = int(d.Varint())
	o.FinalCode = d.String()
	nilRules := d.Bool()
	n := d.Varint()
	if d.Err() != nil || n < 0 || n > 1<<16 {
		return pipeline.Outcome{}, false
	}
	if !nilRules {
		o.FixerRules = make([]string, 0, n)
	}
	for i := int64(0); i < n; i++ {
		o.FixerRules = append(o.FixerRules, d.String())
	}
	o.LintFindings = int(d.Varint())
	o.ElapsedNS = d.I64()
	if !d.Ok() {
		return pipeline.Outcome{}, false
	}
	return o, true
}

// Record implements pipeline.Journal.
func (j *StoreJournal) Record(label string, jb pipeline.Job, o pipeline.Outcome) {
	var e store.Encoder
	e.U8(benchPayloadV)
	e.String(label)
	e.String(jb.Filename)
	e.String(jb.Code)
	e.I64(jb.SampleSeed)
	e.Bool(o.Success)
	e.Varint(int64(o.Iterations))
	e.String(o.FinalCode)
	e.Bool(o.FixerRules == nil)
	e.Varint(int64(len(o.FixerRules)))
	for _, r := range o.FixerRules {
		e.String(r)
	}
	e.Varint(int64(o.LintFindings))
	e.I64(o.ElapsedNS)
	j.b.Put(store.KindBenchJob, pipeline.JobKey(label, jb), e.Bytes())
}
