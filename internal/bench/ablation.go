package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/curate"
	"repro/internal/rag"
)

// This file holds ablations beyond the paper's tables, probing the design
// choices DESIGN.md calls out:
//
//   - retriever choice (the paper mentions pattern-matching, fuzzy search,
//     and similarity search as alternatives to its exact-tag match);
//   - the ReAct iteration budget (the paper fixes n=10);
//   - the guidance-database size (how much of RAG's gain survives with
//     fewer curated entries).

// AblationResult is one named configuration's fix rate.
type AblationResult struct {
	Name    string
	FixRate float64
}

// runFixRate measures the ReAct fix rate over entries for a fully built
// fixer configuration, fanning the attempts out over the worker pool.
// label scopes the resume journal per experiment.
func runFixRate(label string, f *core.RTLFixer, entries []curate.Entry, repeats, workers int) float64 {
	return runFixRateJobs(label, f, entries, repeats, workers).FixRate
}

// RunRetrieverAblation compares retrieval strategies under the full
// configuration (ReAct + RAG + Quartus + gpt-3.5), plus the no-RAG
// baseline. workers sizes the evaluation pool (<= 0 = runtime.NumCPU());
// cache enables the memoization layer (output is identical either way —
// the exact-tag, fuzzy, and keyword strategies are served from the
// precompiled index, custom strategies fall back to the naive scan).
func RunRetrieverAblation(seed int64, repeats int, entries []curate.Entry, workers int, cache bool) []AblationResult {
	if entries == nil {
		entries, _ = curate.Build(curate.Options{Seed: seed})
	}
	if repeats == 0 {
		repeats = 3
	}
	configs := []struct {
		name      string
		retriever rag.Retriever
		ragOn     bool
	}{
		{"no-rag", nil, false},
		{"exact-tag", rag.ExactTag{}, true},
		{"fuzzy-jaccard", rag.Fuzzy{}, true},
		{"keyword", rag.Keyword{}, true},
	}
	var out []AblationResult
	for _, cfg := range configs {
		f, err := core.New(core.Options{
			CompilerName: "quartus",
			RAG:          cfg.ragOn,
			Retriever:    cfg.retriever,
			Mode:         core.ModeReAct,
			Seed:         seed,
			Cache:        cache,
		})
		if err != nil {
			panic(err)
		}
		out = append(out, AblationResult{Name: cfg.name,
			FixRate: runFixRate("ablation/retriever/"+cfg.name, f, entries, repeats, workers)})
	}
	return out
}

// RunIterationBudgetAblation sweeps the ReAct iteration budget 1..max,
// locating the knee implied by Figure 7.
func RunIterationBudgetAblation(seed int64, repeats, max int, entries []curate.Entry, workers int, cache bool) []AblationResult {
	if entries == nil {
		entries, _ = curate.Build(curate.Options{Seed: seed})
	}
	if repeats == 0 {
		repeats = 3
	}
	if max == 0 {
		max = 10
	}
	var out []AblationResult
	for budget := 1; budget <= max; budget++ {
		f, err := core.New(core.Options{
			CompilerName:  "quartus",
			RAG:           true,
			Mode:          core.ModeReAct,
			MaxIterations: budget,
			Seed:          seed,
			Cache:         cache,
		})
		if err != nil {
			panic(err)
		}
		out = append(out, AblationResult{
			Name:    fmt.Sprintf("budget=%d", budget),
			FixRate: runFixRate("ablation/budget", f, entries, repeats, workers),
		})
	}
	return out
}

// truncatedRetriever wraps a retriever over a truncated database: core
// builds its own curated DB, so the truncation happens at retrieval time.
type truncatedRetriever struct {
	inner rag.Retriever
	keep  int
}

// Name implements rag.Retriever.
func (t truncatedRetriever) Name() string { return fmt.Sprintf("exact-tag[first %d]", t.keep) }

// Retrieve implements rag.Retriever.
func (t truncatedRetriever) Retrieve(db *rag.Database, log string, k int) []rag.Entry {
	entries := db.Entries()
	if t.keep < len(entries) {
		entries = entries[:t.keep]
	}
	return t.inner.Retrieve(rag.NewDatabase(entries), log, k)
}

// RunGuidanceSizeAblation truncates the curated Quartus database to
// fractions of its 45 entries and measures the fix rate.
func RunGuidanceSizeAblation(seed int64, repeats int, entries []curate.Entry, workers int, cache bool) []AblationResult {
	if entries == nil {
		entries, _ = curate.Build(curate.Options{Seed: seed})
	}
	if repeats == 0 {
		repeats = 3
	}
	full := rag.QuartusDB().Len()
	var out []AblationResult
	for _, keep := range []int{0, full / 4, full / 2, full} {
		var f *core.RTLFixer
		var err error
		if keep == 0 {
			f, err = core.New(core.Options{
				CompilerName: "quartus", Mode: core.ModeReAct, Seed: seed, Cache: cache})
		} else {
			// The truncating retriever is a custom strategy, so core.New
			// skips building a retrieval index for it (memo.Indexable is
			// false) and it runs as a naive scan; the compile cache still
			// applies.
			f, err = core.New(core.Options{
				CompilerName: "quartus",
				RAG:          true,
				Retriever:    truncatedRetriever{inner: rag.ExactTag{}, keep: keep},
				Mode:         core.ModeReAct,
				Seed:         seed,
				Cache:        cache,
			})
		}
		if err != nil {
			panic(err)
		}
		out = append(out, AblationResult{
			Name:    fmt.Sprintf("entries=%d", keep),
			FixRate: runFixRate(fmt.Sprintf("ablation/guidance/entries=%d", keep), f, entries, repeats, workers),
		})
	}
	return out
}

// RenderAblation formats a result list.
func RenderAblation(title string, results []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range results {
		fmt.Fprintf(&b, "  %-24s %.3f\n", r.Name, r.FixRate)
	}
	return b.String()
}
