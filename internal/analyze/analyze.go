// Package analyze is a rule-based semantic lint engine over the
// elaborated design (verilog AST + sema.Design). It catches the classes
// of RTL bugs that parse and elaborate cleanly but misbehave in
// hardware: inferred latches, incomplete sensitivity lists, misused
// assignment operators, cross-always write races, combinational loops,
// silent width truncation, read-before-write (X-propagation) hazards,
// dead signals, and the static aliasing constructs behind the
// engine/walker divergences in TestEngineRegressions.
//
// Each rule carries a stable code (L001...), a diag.Category, and a
// default severity. Findings are ordinary diag.Diagnostics with the
// Rule field set, so every downstream consumer — cmd/vlint, the
// fixer's feedback loop, the serving tier, the differential fuzzer —
// handles them with the same machinery as frontend diagnostics.
//
// The engine runs on a best-effort design: sema errors do not stop it
// (rules nil-guard missing signals), only parse errors do. That is what
// lets analyzer findings ride along with elaboration errors in the
// fixer's feedback during a repair loop.
package analyze

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/diag"
	"repro/internal/sema"
	"repro/internal/verilog"
)

// Rule describes one lint pass.
type Rule struct {
	// Code is the stable per-rule code ("L001"), stamped into every
	// finding's Rule field.
	Code string
	// Name is the kebab-case rule name used by -rules selections.
	Name string
	// Category classifies the findings the rule emits.
	Category diag.Category
	// Severity is the default severity (overridable per run).
	Severity diag.Severity
	// Doc is a one-line description for listings.
	Doc string

	run func(*pass)
}

// registry lists every rule in code order. Codes are append-only: a
// retired rule's code is never reused.
var registry = []Rule{
	{Code: "L001", Name: "inferred-latch", Category: diag.CatInferredLatch, Severity: diag.SeverityWarning,
		Doc: "combinational always block does not assign a variable on every path", run: runInferredLatch},
	{Code: "L002", Name: "incomplete-sensitivity", Category: diag.CatIncompleteSensitivity, Severity: diag.SeverityWarning,
		Doc: "level-sensitive event list omits a signal the block reads", run: runIncompleteSensitivity},
	{Code: "L003", Name: "nonblocking-in-comb", Category: diag.CatAssignStyle, Severity: diag.SeverityWarning,
		Doc: "nonblocking assignment inside a combinational always block", run: runNonblockingInComb},
	{Code: "L004", Name: "blocking-in-seq", Category: diag.CatAssignStyle, Severity: diag.SeverityWarning,
		Doc: "blocking assignment to a register inside a clocked always block", run: runBlockingInSeq},
	{Code: "L005", Name: "write-race", Category: diag.CatMultipleDrivers, Severity: diag.SeverityWarning,
		Doc: "signal written from multiple always blocks or mixed with a continuous driver", run: runWriteRace},
	{Code: "L006", Name: "comb-loop", Category: diag.CatCombLoop, Severity: diag.SeverityWarning,
		Doc: "combinational feedback cycle with no register to break it", run: runCombLoop},
	{Code: "L007", Name: "width-trunc", Category: diag.CatWidthMismatch, Severity: diag.SeverityWarning,
		Doc: "expression width exceeds (or falls short of) the assignment target", run: runWidthTrunc},
	{Code: "L008", Name: "read-before-write", Category: diag.CatReadBeforeWrite, Severity: diag.SeverityWarning,
		Doc: "combinational block reads a variable before assigning it", run: runReadBeforeWrite},
	{Code: "L009", Name: "dead-signal", Category: diag.CatUnusedSignal, Severity: diag.SeverityWarning,
		Doc: "declared signal is never read (or never used at all)", run: runDeadSignal},
	{Code: "L010", Name: "alias-hazard", Category: diag.CatAliasHazard, Severity: diag.SeverityWarning,
		Doc: "part-select assigned from its own base signal, or loop variable shared across always blocks", run: runAliasHazard},
}

// Rules returns every registered rule, in stable code order.
func Rules() []Rule {
	out := make([]Rule, len(registry))
	copy(out, registry)
	return out
}

// RuleByName resolves a rule code or name.
func RuleByName(s string) (Rule, bool) {
	for _, r := range registry {
		if r.Code == s || r.Name == s {
			return r, true
		}
	}
	return Rule{}, false
}

// ResolveRules maps a list of codes/names to rules, rejecting unknowns.
// An empty list selects every rule.
func ResolveRules(names []string) ([]Rule, error) {
	if len(names) == 0 {
		return Rules(), nil
	}
	var out []Rule
	seen := map[string]bool{}
	for _, n := range names {
		r, ok := RuleByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (run with -rules list for the catalogue)", n)
		}
		if !seen[r.Code] {
			seen[r.Code] = true
			out = append(out, r)
		}
	}
	return out, nil
}

// Options configures one analyzer run.
type Options struct {
	// Rules selects rules by code or name; empty selects all. Unknown
	// names are ignored here — validate user input with ResolveRules.
	Rules []string
	// Severity overrides rule severities. Keys are rule codes, rule
	// names, or "all"; "all" applies first, specific keys win.
	Severity map[string]diag.Severity
}

func (o Options) severityFor(r Rule) diag.Severity {
	sev := r.Severity
	if s, ok := o.Severity["all"]; ok {
		sev = s
	}
	if s, ok := o.Severity[r.Code]; ok {
		sev = s
	}
	if s, ok := o.Severity[r.Name]; ok {
		sev = s
	}
	return sev
}

func (o Options) selected() []Rule {
	if len(o.Rules) == 0 {
		return Rules()
	}
	rules, err := ResolveRules(o.Rules)
	if err != nil {
		// Unknown names were already rejected by callers that care;
		// keep the known subset here.
		var out []Rule
		for _, n := range o.Rules {
			if r, ok := RuleByName(n); ok {
				out = append(out, r)
			}
		}
		return out
	}
	return rules
}

// pass is the per-rule execution context.
type pass struct {
	mod    *verilog.Module
	design *sema.Design
	rule   Rule
	sev    diag.Severity
	out    *diag.List
}

// signal resolves a module-level signal, nil-safe under sema errors.
func (p *pass) signal(name string) *sema.Signal {
	if p.design == nil || p.design.Signals == nil {
		return nil
	}
	return p.design.Signals[name]
}

// report appends one finding for the current rule.
func (p *pass) report(pos diag.Pos, related []diag.Pos, sym, format string, args ...any) {
	d := diag.Diagnostic{
		Severity: p.sev,
		Category: p.rule.Category,
		Pos:      pos,
		Symbol:   sym,
		Message:  fmt.Sprintf(format, args...),
		Rule:     p.rule.Code,
	}
	if len(related) > 0 {
		d.Related = append([]diag.Pos(nil), related...)
	}
	p.out.Add(d)
}

// Run executes the selected rules over an elaborated design and returns
// the findings sorted by position. The design may carry elaboration
// errors; rules degrade gracefully around missing symbols. A nil file
// or design yields no findings.
func Run(file *verilog.SourceFile, design *sema.Design, opts Options) diag.List {
	if file == nil || design == nil || design.Module == nil {
		return nil
	}
	var out diag.List
	for _, r := range opts.selected() {
		p := &pass{mod: design.Module, design: design, rule: r, sev: opts.severityFor(r), out: &out}
		r.run(p)
	}
	out = out.Dedupe()
	out.SortByPos()
	return out
}

// Source parses and elaborates src, then runs the analyzer. Sources
// with parse errors yield no findings (there is no tree to analyze);
// elaboration errors are tolerated. This is the entry point the fixer's
// repair loop uses on intermediate candidates.
func Source(src string, opts Options) diag.List {
	file, parseDiags := verilog.Parse(src)
	if parseDiags.HasErrors() {
		return nil
	}
	design, _ := sema.Elaborate(file)
	if design == nil {
		return nil
	}
	return Run(file, design, opts)
}

// RenderText renders findings as feedback lines for the fixer's LLM
// prompt, one per finding:
//
//	lint: main.v:12: warning [L001 inferred-latch] 'q' is not assigned ...
//
// The "lint:" prefix keeps the lines out of the compiler-log dialects
// the log analyzer parses (a location regex keyed on "file:line:" would
// otherwise swallow them as compile errors), so they inform the model
// without being mistaken for the error the loop must fix.
func RenderText(filename string, findings diag.List) string {
	if len(findings) == 0 {
		return ""
	}
	var b strings.Builder
	for _, d := range findings {
		name := d.Rule
		if r, ok := RuleByName(d.Rule); ok {
			name = r.Code + " " + r.Name
		}
		fmt.Fprintf(&b, "lint: %s:%d: %s [%s] %s\n", filename, d.Pos.Line, d.Severity, name, d.Message)
		for _, rp := range d.Related {
			fmt.Fprintf(&b, "lint: %s:%d: ... related to the finding above\n", filename, rp.Line)
		}
	}
	return b.String()
}

// sortedNames returns map keys in lexical order — every rule iterates
// its result sets through this so output is deterministic.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
