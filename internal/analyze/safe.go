package analyze

import (
	"repro/internal/diag"
	"repro/internal/fault"
	"repro/internal/resilience"
)

// SafeSource is Source behind a panic guard: per the degradation
// ladder, the semantic analyzer is a best-effort feature that must
// never be request-fatal, so a panicking rule (or the injected
// analyze.panic fault) yields an error and no findings instead of
// unwinding the caller. The agent and the /v1/lint path call this;
// vlint calls Source directly and lets a crash be loud.
func SafeSource(src string, opts Options) (out diag.List, err error) {
	err = resilience.Safe("analyze", func() {
		if fault.Hit(fault.AnalyzePanic) {
			panic("fault: injected analyzer panic")
		}
		out = Source(src, opts)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
