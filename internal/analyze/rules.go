package analyze

import (
	"sort"
	"strings"

	"repro/internal/diag"
	"repro/internal/sim"
	"repro/internal/verilog"
)

// combAlways reports whether the block is level-sensitive (always @(*)
// or an edge-free event list). Blocks with no event control at all are
// not combinational.
func combAlways(a *verilog.AlwaysBlock) bool {
	if a.Star {
		return true
	}
	return len(a.Events) > 0 && !a.IsClocked()
}

func quoteList(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = "'" + n + "'"
	}
	return strings.Join(quoted, ", ")
}

// ---------- L001 inferred-latch ----------

func runInferredLatch(p *pass) {
	for _, item := range p.mod.Items {
		a, ok := item.(*verilog.AlwaysBlock)
		if !ok || !combAlways(a) {
			continue
		}
		must, may := assignSets(a.Body)
		locals := localNames(a.Body)
		for _, name := range sortedNames(may) {
			if must[name] || locals[name] {
				continue
			}
			sig := p.signal(name)
			if sig == nil || !sig.IsVariable() {
				continue
			}
			p.report(a.Pos(), nil, name,
				"'%s' is not assigned on every path through this combinational always block; a latch is inferred to hold its previous value", name)
		}
	}
}

// ---------- L002 incomplete-sensitivity ----------

func runIncompleteSensitivity(p *pass) {
	for _, item := range p.mod.Items {
		a, ok := item.(*verilog.AlwaysBlock)
		if !ok || a.Star || !combAlways(a) {
			continue
		}
		listed := map[string]bool{}
		for _, ev := range a.Events {
			names := map[string]diag.Pos{}
			addReads(ev.Signal, names)
			for n := range names {
				listed[n] = true
			}
		}
		reads := blockReads(a.Body)
		writes := blockWrites(a.Body)
		locals := localNames(a.Body)
		var missing []string
		for _, name := range sortedNames(reads) {
			if listed[name] || locals[name] {
				continue
			}
			if _, written := writes[name]; written {
				continue // the block's own outputs need no sensitivity
			}
			if p.signal(name) == nil {
				continue // parameters and unknowns are constant or already reported
			}
			missing = append(missing, name)
		}
		if len(missing) > 0 {
			p.report(a.Pos(), nil, missing[0],
				"sensitivity list omits %s; the block reads them but will not wake when they change (use @(*) to be safe)", quoteList(missing))
		}
	}
}

// ---------- L003 nonblocking-in-comb / L004 blocking-in-seq ----------

func runNonblockingInComb(p *pass) {
	for _, item := range p.mod.Items {
		a, ok := item.(*verilog.AlwaysBlock)
		if !ok || !combAlways(a) {
			continue
		}
		verilog.WalkStmts(a.Body, func(s verilog.Stmt) {
			as, ok := s.(*verilog.AssignStmt)
			if !ok || as.Blocking {
				return
			}
			sym := ""
			if bases := lhsBases(as.LHS); len(bases) > 0 {
				sym = bases[0]
			}
			p.report(as.Pos(), nil, sym,
				"nonblocking assignment '<=' in a combinational always block; use '=' so the value settles within the same activation")
		})
	}
}

func runBlockingInSeq(p *pass) {
	for _, item := range p.mod.Items {
		a, ok := item.(*verilog.AlwaysBlock)
		if !ok || !a.IsClocked() {
			continue
		}
		locals := localNames(a.Body)
		verilog.WalkStmts(a.Body, func(s verilog.Stmt) {
			as, ok := s.(*verilog.AssignStmt)
			if !ok || !as.Blocking {
				return
			}
			for _, name := range lhsBases(as.LHS) {
				if locals[name] {
					continue
				}
				sig := p.signal(name)
				if sig == nil {
					continue
				}
				// Blocking updates of loop indices and scratch integers
				// inside clocked blocks are idiomatic.
				switch sig.Kind {
				case verilog.KindInteger, verilog.KindInt, verilog.KindGenvar:
					continue
				}
				p.report(as.Pos(), nil, name,
					"blocking assignment '=' to '%s' in a clocked always block; use '<=' so every register captures its pre-edge value", name)
				return
			}
		})
	}
}

// ---------- L005 write-race ----------

func runWriteRace(p *pass) {
	alwaysSites := map[string][]diag.Pos{}
	contSites := map[string][]diag.Pos{}
	for _, item := range p.mod.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			for _, name := range lhsBases(it.LHS) {
				contSites[name] = append(contSites[name], it.Pos())
			}
		case *verilog.Decl:
			for _, dn := range it.Names {
				if dn.Init != nil {
					contSites[dn.Name] = append(contSites[dn.Name], dn.NamePos)
				}
			}
		case *verilog.AlwaysBlock:
			locals := localNames(it.Body)
			for _, name := range sortedNames(blockWrites(it.Body)) {
				if locals[name] {
					continue
				}
				alwaysSites[name] = append(alwaysSites[name], blockWrites(it.Body)[name])
			}
		}
	}
	for _, name := range sortedNames(alwaysSites) {
		if p.signal(name) == nil {
			continue
		}
		sites := alwaysSites[name]
		if len(sites) > 1 {
			p.report(sites[0], sites[1:], name,
				"'%s' is written from %d different always blocks; the writes race and last-writer-wins order is a simulation artifact", name, len(sites))
		}
		if cs := contSites[name]; len(cs) > 0 {
			related := append(append([]diag.Pos(nil), sites[1:]...), cs...)
			p.report(sites[0], related, name,
				"'%s' is written by both procedural and continuous assignments; the two drivers fight", name)
		}
	}
}

// ---------- L006 comb-loop ----------

func runCombLoop(p *pass) {
	if p.design.Signals == nil {
		return
	}
	names := sortedNames(p.design.Signals)
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	edges := make([]map[int]bool, len(names))
	addEdge := func(src, dst string) {
		si, ok1 := idx[src]
		di, ok2 := idx[dst]
		if !ok1 || !ok2 {
			return
		}
		if edges[si] == nil {
			edges[si] = map[int]bool{}
		}
		edges[si][di] = true
	}
	contDrive := func(lhs, rhs verilog.Expr) {
		srcs := map[string]diag.Pos{}
		addReads(rhs, srcs)
		lhsReads(lhs, srcs)
		for _, t := range lhsBases(lhs) {
			for _, s := range sortedNames(srcs) {
				addEdge(s, t)
			}
		}
	}
	for _, item := range p.mod.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			contDrive(it.LHS, it.RHS)
		case *verilog.Decl:
			for _, dn := range it.Names {
				if dn.Init != nil {
					contDrive(&verilog.Ident{Name: dn.Name, NamePos: dn.NamePos}, dn.Init)
				}
			}
		case *verilog.AlwaysBlock:
			if !combAlways(it) {
				continue
			}
			flow := analyzeCombFlow(it.Body)
			for _, t := range sortedNames(flow.sources) {
				for _, s := range sortedNames(flow.sources[t]) {
					addEdge(s, t)
				}
			}
		}
	}
	adj := make([][]int, len(names))
	for i, es := range edges {
		for _, d := range sortedInts(es) {
			adj[i] = append(adj[i], d)
		}
	}
	for _, scc := range sim.Tarjan(adj) {
		selfLoop := len(scc) == 1 && edges[scc[0]] != nil && edges[scc[0]][scc[0]]
		if len(scc) < 2 && !selfLoop {
			continue
		}
		cycle := make([]string, len(scc))
		for i, n := range scc {
			cycle[i] = names[n]
		}
		sort.Strings(cycle)
		first := p.signal(cycle[0])
		pos := diag.Pos{Line: 1}
		if first != nil {
			pos = first.Pos
		}
		var related []diag.Pos
		for _, n := range cycle[1:] {
			if sig := p.signal(n); sig != nil {
				related = append(related, sig.Pos)
			}
		}
		p.report(pos, related, cycle[0],
			"combinational loop through %s; no register breaks the cycle, so the value oscillates or locks up", quoteList(cycle))
	}
}

func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ---------- L007 width-trunc ----------

func runWidthTrunc(p *pass) {
	check := func(lhs, rhs verilog.Expr, pos diag.Pos) {
		lw, okL := p.widthOf(lhs)
		rw, okR := p.widthOf(rhs)
		if !okL || !okR || lw == rw {
			return
		}
		// sema's own width checker handles the cases it can compute;
		// this rule covers only what sema deliberately leaves unknown
		// (operator results, sized literals, mixed shapes).
		if _, semaL := p.semaWidth(lhs); semaL {
			if _, semaR := p.semaWidth(rhs); semaR {
				return
			}
		}
		sym := ""
		if bases := lhsBases(lhs); len(bases) > 0 {
			sym = bases[0]
		}
		if rw > lw {
			if num, ok := rhs.(*verilog.Number); ok && !literalNeedsBits(num, lw) {
				return // wide literal whose value still fits the target
			}
			p.report(pos, nil, sym,
				"expression produces %d bits but the assignment target is %d bits wide; the upper %d bits are silently dropped", rw, lw, rw-lw)
			return
		}
		// Extension is only worth flagging when the RHS shape was built
		// by hand to a specific width (concatenation or replication).
		switch rhs.(type) {
		case *verilog.Concat, *verilog.Repl:
			p.report(pos, nil, sym,
				"expression produces %d bits but the assignment target is %d bits wide; the upper %d bits are zero-filled", rw, lw, lw-rw)
		}
	}
	for _, item := range p.mod.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			check(it.LHS, it.RHS, it.Pos())
		case *verilog.Decl:
			for _, dn := range it.Names {
				if dn.Init != nil {
					check(&verilog.Ident{Name: dn.Name, NamePos: dn.NamePos}, dn.Init, dn.NamePos)
				}
			}
		case *verilog.AlwaysBlock:
			verilog.WalkStmts(it.Body, func(s verilog.Stmt) {
				if as, ok := s.(*verilog.AssignStmt); ok {
					check(as.LHS, as.RHS, as.Pos())
				}
			})
		}
	}
}

// literalNeedsBits reports whether the literal's value has significant
// bits at or above position w.
func literalNeedsBits(n *verilog.Number, w int) bool {
	v, err := n.Value()
	if err != nil {
		return false
	}
	for i := w; i < v.Width(); i++ {
		if v.Bit(i) {
			return true
		}
	}
	return false
}

// ---------- L008 read-before-write ----------

func runReadBeforeWrite(p *pass) {
	for _, item := range p.mod.Items {
		a, ok := item.(*verilog.AlwaysBlock)
		if !ok || !combAlways(a) {
			continue
		}
		flow := analyzeCombFlow(a.Body)
		for _, name := range sortedNames(flow.readBeforeWrite) {
			sig := p.signal(name)
			if sig == nil || !sig.IsVariable() {
				continue
			}
			p.report(flow.readBeforeWrite[name], nil, name,
				"'%s' is read before this combinational block assigns it; the read returns the previous activation's value (an X risk in 4-state simulation)", name)
		}
	}
}

// ---------- L009 dead-signal ----------

func runDeadSignal(p *pass) {
	reads := map[string]diag.Pos{}
	writes := map[string]diag.Pos{}
	noteWrites := func(lhs verilog.Expr, pos diag.Pos) {
		for _, n := range lhsBases(lhs) {
			if _, ok := writes[n]; !ok {
				writes[n] = pos
			}
		}
	}
	for _, item := range p.mod.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			addReads(it.RHS, reads)
			lhsReads(it.LHS, reads)
			noteWrites(it.LHS, it.Pos())
		case *verilog.Decl:
			for _, dn := range it.Names {
				if dn.Init != nil {
					addReads(dn.Init, reads)
					writes[dn.Name] = dn.NamePos
				}
			}
		case *verilog.AlwaysBlock:
			for _, ev := range it.Events {
				addReads(ev.Signal, reads)
			}
			for n, pos := range blockReads(it.Body) {
				if _, ok := reads[n]; !ok {
					reads[n] = pos
				}
			}
			for n, pos := range blockWrites(it.Body) {
				if _, ok := writes[n]; !ok {
					writes[n] = pos
				}
			}
		case *verilog.InitialBlock:
			for n, pos := range blockReads(it.Body) {
				if _, ok := reads[n]; !ok {
					reads[n] = pos
				}
			}
			for n, pos := range blockWrites(it.Body) {
				if _, ok := writes[n]; !ok {
					writes[n] = pos
				}
			}
		}
	}
	for _, name := range signalDeclOrder(p.mod) {
		sig := p.signal(name)
		if sig == nil {
			continue
		}
		_, read := reads[name]
		_, written := writes[name]
		switch sig.Dir {
		case verilog.DirOutput, verilog.DirInout:
			continue // read externally by the instantiating context
		case verilog.DirInput:
			if !read {
				p.report(sig.Pos, nil, name, "input '%s' is never read by the module", name)
			}
			continue
		}
		switch {
		case !read && !written:
			p.report(sig.Pos, nil, name, "'%s' is declared but never used", name)
		case !read:
			p.report(sig.Pos, nil, name, "'%s' is written but never read; the logic feeding it is dead", name)
		}
	}
}

// signalDeclOrder lists module-level signal names in declaration order
// (ports first, then body declarations), deduplicated.
func signalDeclOrder(m *verilog.Module) []string {
	var out []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, pd := range m.Ports {
		add(pd.Name)
	}
	for _, item := range m.Items {
		switch it := item.(type) {
		case *verilog.PortItem:
			add(it.Name)
		case *verilog.Decl:
			for _, dn := range it.Names {
				add(dn.Name)
			}
		}
	}
	return out
}

// ---------- L010 alias-hazard ----------

func runAliasHazard(p *pass) {
	// Pattern A: a part-select store whose right-hand side (or index
	// expressions) reads the same base signal — the exact shape behind
	// the alias_slice_store / dynamic_self_slice engine regressions.
	for _, item := range p.mod.Items {
		a, ok := item.(*verilog.AlwaysBlock)
		if !ok {
			continue
		}
		verilog.WalkStmts(a.Body, func(s verilog.Stmt) {
			as, ok := s.(*verilog.AssignStmt)
			if !ok {
				return
			}
			partials := lhsPartialBases(as.LHS)
			if len(partials) == 0 {
				return
			}
			reads := map[string]diag.Pos{}
			addReads(as.RHS, reads)
			lhsReads(as.LHS, reads)
			reported := map[string]bool{}
			for _, base := range partials {
				if reported[base] || p.signal(base) == nil {
					continue
				}
				if _, selfRead := reads[base]; !selfRead {
					continue
				}
				reported[base] = true
				p.report(as.Pos(), nil, base,
					"part-select of '%s' is assigned from '%s' itself; the overlapping read and write alias the same storage and the result depends on evaluation order", base, base)
			}
		})
	}

	// Pattern B: a module-scope loop variable shared as a for index
	// across several always blocks while indexing nonblocking updates —
	// the shared_loop_var_nba regression. Commits re-evaluate the index
	// at the end of the time step, reading whichever loop finished last.
	type varUse struct {
		forSites []diag.Pos
		blocks   map[int]bool
		nbaIndex bool
	}
	uses := map[string]*varUse{}
	blockNo := 0
	for _, item := range p.mod.Items {
		a, ok := item.(*verilog.AlwaysBlock)
		if !ok {
			continue
		}
		blockNo++
		locals := localNames(a.Body)
		verilog.WalkStmts(a.Body, func(s verilog.Stmt) {
			f, ok := s.(*verilog.ForStmt)
			if !ok || f.Init == nil {
				return
			}
			id, ok := f.Init.LHS.(*verilog.Ident)
			if !ok || locals[id.Name] || p.signal(id.Name) == nil {
				return
			}
			u := uses[id.Name]
			if u == nil {
				u = &varUse{blocks: map[int]bool{}}
				uses[id.Name] = u
			}
			if !u.blocks[blockNo] {
				u.blocks[blockNo] = true
				u.forSites = append(u.forSites, f.Pos())
			}
		})
	}
	// Second sweep: an NBA index read in any block marks the variable,
	// regardless of which block declared its loops.
	for _, item := range p.mod.Items {
		a, ok := item.(*verilog.AlwaysBlock)
		if !ok {
			continue
		}
		verilog.WalkStmts(a.Body, func(s verilog.Stmt) {
			as, ok := s.(*verilog.AssignStmt)
			if !ok || as.Blocking {
				return
			}
			idxReads := map[string]diag.Pos{}
			lhsReads(as.LHS, idxReads)
			for n := range idxReads {
				if u := uses[n]; u != nil {
					u.nbaIndex = true
				}
			}
		})
	}
	for _, name := range sortedNames(uses) {
		u := uses[name]
		if len(u.blocks) < 2 || !u.nbaIndex {
			continue
		}
		p.report(u.forSites[0], u.forSites[1:], name,
			"loop variable '%s' is shared by %d always blocks and indexes nonblocking assignments; the deferred updates read whatever value '%s' holds after all loops finish", name, len(u.blocks), name)
	}
}
