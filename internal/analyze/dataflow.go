package analyze

import (
	"repro/internal/diag"
	"repro/internal/verilog"
)

// ---------- read/write collection ----------

// addReads records every identifier an expression reads into dst,
// keeping the first position seen per name.
func addReads(e verilog.Expr, dst map[string]diag.Pos) {
	verilog.WalkExprs(e, func(x verilog.Expr) {
		if id, ok := x.(*verilog.Ident); ok {
			if _, seen := dst[id.Name]; !seen {
				dst[id.Name] = id.Pos()
			}
		}
	})
}

// lhsReads records the reads embedded in an l-value: index expressions
// and part-select bounds (the base being written is not a read).
func lhsReads(lhs verilog.Expr, dst map[string]diag.Pos) {
	switch x := lhs.(type) {
	case *verilog.Index:
		lhsReads(x.X, dst)
		addReads(x.Idx, dst)
	case *verilog.Slice:
		lhsReads(x.X, dst)
		addReads(x.Hi, dst)
		addReads(x.Lo, dst)
	case *verilog.Concat:
		for _, el := range x.Elems {
			lhsReads(el, dst)
		}
	}
}

// lhsBases lists the root names an l-value writes, in syntactic order.
func lhsBases(lhs verilog.Expr) []string {
	switch x := lhs.(type) {
	case *verilog.Ident:
		return []string{x.Name}
	case *verilog.Index:
		return lhsBases(x.X)
	case *verilog.Slice:
		return lhsBases(x.X)
	case *verilog.Concat:
		var out []string
		for _, el := range x.Elems {
			out = append(out, lhsBases(el)...)
		}
		return out
	}
	return nil
}

// lhsPartialBases lists the root names written through a bit- or
// part-select (not whole-signal writes).
func lhsPartialBases(lhs verilog.Expr) []string {
	switch x := lhs.(type) {
	case *verilog.Index:
		return lhsBases(x.X)
	case *verilog.Slice:
		return lhsBases(x.X)
	case *verilog.Concat:
		var out []string
		for _, el := range x.Elems {
			out = append(out, lhsPartialBases(el)...)
		}
		return out
	}
	return nil
}

// localNames collects names scoped to the block body: begin/end block
// declarations and SV-style inline for-loop variables. They shadow (or
// simply are not) module signals, so rules exclude them.
func localNames(body verilog.Stmt) map[string]bool {
	locals := map[string]bool{}
	verilog.WalkStmts(body, func(s verilog.Stmt) {
		switch x := s.(type) {
		case *verilog.BlockStmt:
			for _, d := range x.Decls {
				for _, n := range d.Names {
					locals[n.Name] = true
				}
			}
		case *verilog.ForStmt:
			if x.LoopVar != "" {
				locals[x.LoopVar] = true
			}
		}
	})
	return locals
}

// blockWrites returns the first write position per base name assigned
// anywhere in the body (locals included; callers filter).
func blockWrites(body verilog.Stmt) map[string]diag.Pos {
	writes := map[string]diag.Pos{}
	verilog.WalkStmts(body, func(s verilog.Stmt) {
		as, ok := s.(*verilog.AssignStmt)
		if !ok {
			return
		}
		for _, name := range lhsBases(as.LHS) {
			if _, seen := writes[name]; !seen {
				writes[name] = as.Pos()
			}
		}
	})
	return writes
}

// blockReads returns the first read position per name read anywhere in
// the body (RHS values, conditions, case subjects and labels, loop
// bounds, and l-value index expressions).
func blockReads(body verilog.Stmt) map[string]diag.Pos {
	reads := map[string]diag.Pos{}
	verilog.WalkStmts(body, func(s verilog.Stmt) {
		switch x := s.(type) {
		case *verilog.AssignStmt:
			addReads(x.RHS, reads)
			lhsReads(x.LHS, reads)
		case *verilog.IfStmt:
			addReads(x.Cond, reads)
		case *verilog.CaseStmt:
			addReads(x.Subject, reads)
			for _, item := range x.Items {
				for _, l := range item.Labels {
					addReads(l, reads)
				}
			}
		case *verilog.ForStmt:
			// Init/Step are assignments not visited by WalkStmts.
			if x.Init != nil {
				addReads(x.Init.RHS, reads)
				lhsReads(x.Init.LHS, reads)
			}
			addReads(x.Cond, reads)
			if x.Step != nil {
				addReads(x.Step.RHS, reads)
				lhsReads(x.Step.LHS, reads)
			}
		}
	})
	return reads
}

// ---------- definite assignment ----------

// assignSets computes the base names definitely assigned on every path
// through s (must) and on at least one path (may). The analysis is
// optimistic where it keeps false latches down: a partial (bit/part-
// select) write counts as assigning the name, and for-loop bodies are
// assumed to execute.
func assignSets(s verilog.Stmt) (must, may map[string]bool) {
	must, may = map[string]bool{}, map[string]bool{}
	switch x := s.(type) {
	case nil:
	case *verilog.AssignStmt:
		for _, n := range lhsBases(x.LHS) {
			must[n], may[n] = true, true
		}
	case *verilog.BlockStmt:
		for _, sub := range x.Stmts {
			m, a := assignSets(sub)
			union(must, m)
			union(may, a)
		}
	case *verilog.IfStmt:
		m1, a1 := assignSets(x.Then)
		union(may, a1)
		if x.Else == nil {
			return
		}
		m2, a2 := assignSets(x.Else)
		union(may, a2)
		union(must, intersect(m1, m2))
	case *verilog.CaseStmt:
		var armMusts []map[string]bool
		hasDefault := false
		for _, item := range x.Items {
			m, a := assignSets(item.Body)
			union(may, a)
			armMusts = append(armMusts, m)
			if item.Labels == nil {
				hasDefault = true
			}
		}
		// Without a default arm some activation may skip every arm, so
		// nothing is definitely assigned.
		if !hasDefault || len(armMusts) == 0 {
			return
		}
		acc := armMusts[0]
		for _, m := range armMusts[1:] {
			acc = intersect(acc, m)
		}
		union(must, acc)
	case *verilog.ForStmt:
		if x.Init != nil {
			m, a := assignSets(x.Init)
			union(must, m)
			union(may, a)
		}
		m, a := assignSets(x.Body)
		union(must, m)
		union(may, a)
		if x.Step != nil {
			m, a := assignSets(x.Step)
			union(must, m)
			union(may, a)
		}
	}
	return
}

func union(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// ---------- combinational value flow ----------

// combFlow is the result of symbolically executing one combinational
// always block in statement order.
type combFlow struct {
	// sources[t] holds the module-level signals whose current-activation
	// values can reach the value assigned to t, through data dependences
	// (right-hand sides, indices) and control dependences (enclosing
	// conditions). Reads of a name after the block itself assigned it
	// propagate that assignment's sources instead of the name — so an
	// initialise-then-accumulate loop does not count as self-dependence.
	sources map[string]map[string]bool
	// readBeforeWrite records, per name the block writes, the first
	// position where the block reads it while it is not yet definitely
	// assigned on the current path. Such a read sees the value left over
	// from the previous activation.
	readBeforeWrite map[string]diag.Pos
	// writes is the first write position per module-level name assigned
	// anywhere in the block.
	writes map[string]diag.Pos
}

// flowState is the per-path state of the symbolic walk.
type flowState struct {
	must map[string]bool            // definitely assigned so far on this path
	may  map[string]bool            // possibly assigned so far
	val  map[string]map[string]bool // value sources of assigned names
}

func newFlowState() *flowState {
	return &flowState{must: map[string]bool{}, may: map[string]bool{}, val: map[string]map[string]bool{}}
}

func (st *flowState) clone() *flowState {
	c := newFlowState()
	union(c.must, st.must)
	union(c.may, st.may)
	for k, v := range st.val {
		s := map[string]bool{}
		union(s, v)
		c.val[k] = s
	}
	return c
}

// merge joins another path into st: assigned-on-both stays definite,
// value sources accumulate.
func (st *flowState) merge(o *flowState) {
	st.must = intersect(st.must, o.must)
	union(st.may, o.may)
	for k, v := range o.val {
		if st.val[k] == nil {
			st.val[k] = map[string]bool{}
		}
		union(st.val[k], v)
	}
}

// flowWalker executes a block body symbolically.
type flowWalker struct {
	flow   *combFlow
	locals map[string]bool
}

// analyzeCombFlow runs the symbolic walk over one always-block body.
func analyzeCombFlow(body verilog.Stmt) *combFlow {
	fw := &flowWalker{
		flow: &combFlow{
			sources:         map[string]map[string]bool{},
			readBeforeWrite: map[string]diag.Pos{},
			writes:          map[string]diag.Pos{},
		},
		locals: localNames(body),
	}
	allWrites := blockWrites(body)
	for name, pos := range allWrites {
		if !fw.locals[name] {
			fw.flow.writes[name] = pos
		}
	}
	fw.walk(body, newFlowState(), map[string]bool{})
	return fw.flow
}

// exprSources resolves an expression's reads against the current path
// state: a read of a name the path has assigned propagates that value's
// sources; an unassigned (external) read contributes the name itself —
// and, when the block writes the name later, records a
// read-before-write.
func (fw *flowWalker) exprSources(e verilog.Expr, st *flowState) map[string]bool {
	srcs := map[string]bool{}
	reads := map[string]diag.Pos{}
	addReads(e, reads)
	for _, name := range sortedNames(reads) {
		local := fw.locals[name]
		if st.may[name] {
			union(srcs, st.val[name])
			if !st.must[name] && !local {
				srcs[name] = true
				fw.noteStaleRead(name, reads[name])
			}
			continue
		}
		if local {
			continue // uninitialised local: nothing external flows in
		}
		srcs[name] = true
		fw.noteStaleRead(name, reads[name])
	}
	return srcs
}

// noteStaleRead records a read of a block-written name before its
// (definite) write.
func (fw *flowWalker) noteStaleRead(name string, pos diag.Pos) {
	if _, writes := fw.flow.writes[name]; !writes {
		return
	}
	if _, seen := fw.flow.readBeforeWrite[name]; !seen {
		fw.flow.readBeforeWrite[name] = pos
	}
}

// assign applies one procedural assignment to the path state.
func (fw *flowWalker) assign(as *verilog.AssignStmt, st *flowState, ctrl map[string]bool) {
	srcs := map[string]bool{}
	union(srcs, ctrl)
	union(srcs, fw.exprSources(as.RHS, st))
	// Index/part-select bounds on the l-value are reads too.
	idxReads := map[string]diag.Pos{}
	lhsReads(as.LHS, idxReads)
	for _, name := range sortedNames(idxReads) {
		var tmp verilog.Expr = &verilog.Ident{Name: name, NamePos: idxReads[name]}
		union(srcs, fw.exprSources(tmp, st))
	}
	bases := lhsBases(as.LHS)
	partial := map[string]bool{}
	for _, n := range lhsPartialBases(as.LHS) {
		partial[n] = true
	}
	for _, t := range bases {
		newVal := map[string]bool{}
		union(newVal, srcs)
		if partial[t] && st.may[t] {
			// A partial write keeps the sources already folded into the
			// name this activation. Bits never written this activation
			// retain the previous value — that is latch-like retention
			// (L001's concern), not a combinational read, so it does
			// not become a loop edge here.
			union(newVal, st.val[t])
		}
		st.val[t] = newVal
		st.must[t], st.may[t] = true, true
		if !fw.locals[t] {
			if fw.flow.sources[t] == nil {
				fw.flow.sources[t] = map[string]bool{}
			}
		}
	}
}

// walk executes s on the path state st under control sources ctrl.
func (fw *flowWalker) walk(s verilog.Stmt, st *flowState, ctrl map[string]bool) {
	switch x := s.(type) {
	case nil:
	case *verilog.AssignStmt:
		fw.assign(x, st, ctrl)
	case *verilog.BlockStmt:
		for _, sub := range x.Stmts {
			fw.walk(sub, st, ctrl)
		}
	case *verilog.IfStmt:
		cs := map[string]bool{}
		union(cs, ctrl)
		union(cs, fw.exprSources(x.Cond, st))
		thenSt := st.clone()
		fw.walk(x.Then, thenSt, cs)
		elseSt := st.clone()
		fw.walk(x.Else, elseSt, cs)
		*st = *thenSt
		st.merge(elseSt)
	case *verilog.CaseStmt:
		cs := map[string]bool{}
		union(cs, ctrl)
		union(cs, fw.exprSources(x.Subject, st))
		hasDefault := false
		var states []*flowState
		for _, item := range x.Items {
			acs := map[string]bool{}
			union(acs, cs)
			for _, l := range item.Labels {
				union(acs, fw.exprSources(l, st))
			}
			if item.Labels == nil {
				hasDefault = true
			}
			armSt := st.clone()
			fw.walk(item.Body, armSt, acs)
			states = append(states, armSt)
		}
		if !hasDefault {
			states = append(states, st.clone()) // the fall-through path
		}
		if len(states) > 0 {
			first := states[0]
			for _, o := range states[1:] {
				first.merge(o)
			}
			*st = *first
		}
	case *verilog.ForStmt:
		if x.Init != nil {
			fw.assign(x.Init, st, ctrl)
		}
		cs := map[string]bool{}
		union(cs, ctrl)
		union(cs, fw.exprSources(x.Cond, st))
		// Two passes approximate loop-carried dependences: the second
		// iteration reads values the first produced.
		for i := 0; i < 2; i++ {
			fw.walk(x.Body, st, cs)
			if x.Step != nil {
				fw.assign(x.Step, st, cs)
			}
		}
	}
	// Record accumulated sources after every statement so nested
	// assignments are captured at their final per-path values.
	fw.commitSources(st)
}

// commitSources folds the path state's value sources into the flow
// summary (union across paths and program points).
func (fw *flowWalker) commitSources(st *flowState) {
	for t, srcs := range st.val {
		if fw.locals[t] {
			continue
		}
		if fw.flow.sources[t] == nil {
			fw.flow.sources[t] = map[string]bool{}
		}
		union(fw.flow.sources[t], srcs)
	}
}
