package analyze

import (
	"strings"

	"repro/internal/verilog"
)

// constInt folds a constant expression to an int: sized/unsized numeric
// literals, parameter references, and the arithmetic the corpus uses in
// range bounds (WIDTH-1 and friends).
func (p *pass) constInt(e verilog.Expr) (int, bool) {
	switch n := e.(type) {
	case *verilog.Number:
		v, err := n.Value()
		if err != nil {
			return 0, false
		}
		u := v.Uint64()
		if v.Width() == 32 && u > 0x7FFFFFFF {
			return int(int32(uint32(u))), true
		}
		if u > 1<<31 {
			return 0, false
		}
		return int(u), true
	case *verilog.Ident:
		if p.design.Params != nil {
			if v, ok := p.design.Params[n.Name]; ok {
				u := v.Uint64()
				if v.Width() == 32 && u > 0x7FFFFFFF {
					return int(int32(uint32(u))), true
				}
				if u > 1<<31 {
					return 0, false
				}
				return int(u), true
			}
		}
	case *verilog.Unary:
		if x, ok := p.constInt(n.X); ok {
			switch n.Op {
			case "-":
				return -x, true
			case "+":
				return x, true
			}
		}
	case *verilog.Binary:
		x, okX := p.constInt(n.X)
		y, okY := p.constInt(n.Y)
		if okX && okY {
			switch n.Op {
			case "+":
				return x + y, true
			case "-":
				return x - y, true
			case "*":
				return x * y, true
			case "/":
				if y != 0 {
					return x / y, true
				}
			}
		}
	}
	return 0, false
}

// widthOf computes a static bit width with full operator support — the
// superset of sema's deliberately conservative exprWidth. The second
// return is false when the width is genuinely context-dependent
// (unsized literals, parameters, unknown names).
func (p *pass) widthOf(e verilog.Expr) (int, bool) {
	switch n := e.(type) {
	case *verilog.Ident:
		if sig := p.signal(n.Name); sig != nil {
			return sig.Width(), true
		}
	case *verilog.Number:
		if strings.IndexByte(n.Text, '\'') > 0 {
			// Only explicitly sized literals carry a width; unsized ones
			// stretch to context.
			if v, err := n.Value(); err == nil {
				return v.Width(), true
			}
		}
	case *verilog.Index:
		return 1, true
	case *verilog.Slice:
		switch n.Kind {
		case verilog.SelectConst:
			hi, okH := p.constInt(n.Hi)
			lo, okL := p.constInt(n.Lo)
			if okH && okL {
				d := hi - lo
				if d < 0 {
					d = -d
				}
				return d + 1, true
			}
		case verilog.SelectPlus, verilog.SelectMinus:
			if w, ok := p.constInt(n.Lo); ok {
				return w, true
			}
		}
	case *verilog.Unary:
		switch n.Op {
		case "&", "|", "^", "~&", "~|", "~^", "^~", "!":
			return 1, true
		default: // ~ - +
			return p.widthOf(n.X)
		}
	case *verilog.Binary:
		switch n.Op {
		case "&&", "||", "==", "!=", "===", "!==", "<", "<=", ">", ">=":
			return 1, true
		case "<<", ">>", "<<<", ">>>":
			return p.widthOf(n.X)
		default: // arithmetic and bitwise take the wider operand
			xw, okX := p.widthOf(n.X)
			yw, okY := p.widthOf(n.Y)
			if okX && okY {
				if yw > xw {
					xw = yw
				}
				return xw, true
			}
		}
	case *verilog.Ternary:
		tw, okT := p.widthOf(n.Then)
		ew, okE := p.widthOf(n.Else)
		if okT && okE {
			if ew > tw {
				tw = ew
			}
			return tw, true
		}
	case *verilog.Concat:
		total := 0
		for _, el := range n.Elems {
			w, ok := p.widthOf(el)
			if !ok {
				return 0, false
			}
			total += w
		}
		return total, true
	case *verilog.Repl:
		cnt, okC := p.constInt(n.Count)
		w, okW := p.widthOf(n.Value)
		if okC && okW && cnt >= 0 {
			return cnt * w, true
		}
	case *verilog.Call:
		switch n.Name {
		case "$signed", "$unsigned":
			if len(n.Args) == 1 {
				return p.widthOf(n.Args[0])
			}
		}
	}
	return 0, false
}

// semaWidth mirrors sema's exprWidth shape-for-shape: when it returns
// true, the frontend's own width checker already had the information to
// warn, and L007 stays silent to avoid double-reporting.
func (p *pass) semaWidth(e verilog.Expr) (int, bool) {
	switch n := e.(type) {
	case *verilog.Ident:
		if sig := p.signal(n.Name); sig != nil {
			return sig.Width(), true
		}
		if p.design.Params != nil {
			if v, ok := p.design.Params[n.Name]; ok {
				return v.Width(), true
			}
		}
	case *verilog.Index:
		return 1, true
	case *verilog.Slice:
		switch n.Kind {
		case verilog.SelectConst:
			hi, okH := p.constInt(n.Hi)
			lo, okL := p.constInt(n.Lo)
			if okH && okL {
				d := hi - lo
				if d < 0 {
					d = -d
				}
				return d + 1, true
			}
		case verilog.SelectPlus, verilog.SelectMinus:
			if w, ok := p.constInt(n.Lo); ok {
				return w, true
			}
		}
	case *verilog.Concat:
		total := 0
		for _, el := range n.Elems {
			w, ok := p.semaWidth(el)
			if !ok {
				return 0, false
			}
			total += w
		}
		return total, true
	case *verilog.Repl:
		cnt, okC := p.constInt(n.Count)
		w, okW := p.semaWidth(n.Value)
		if okC && okW {
			return cnt * w, true
		}
	}
	return 0, false
}
