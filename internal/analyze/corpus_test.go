package analyze

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/diag"
)

// TestCorpusSweep runs every rule over all curated reference solutions
// and snapshots findings-by-rule counts. The references are handwritten
// known-good RTL, so the golden is zero findings per rule: any nonzero
// count is a rule false positive (or an accidental severity/category
// drift) introduced by a change to the analyzer or the frontend.
func TestCorpusSweep(t *testing.T) {
	golden := map[string]int{
		"L001": 0, "L002": 0, "L003": 0, "L004": 0, "L005": 0,
		"L006": 0, "L007": 0, "L008": 0, "L009": 0, "L010": 0,
	}
	counts := map[string]int{}
	total := 0
	for _, suite := range []dataset.Suite{dataset.SuiteMachine, dataset.SuiteHuman, dataset.SuiteRTLLM} {
		for _, p := range dataset.Problems(suite) {
			total++
			for _, d := range Source(p.RefSource, Options{}) {
				counts[d.Rule]++
				if counts[d.Rule] <= 3 {
					t.Logf("%s/%s [%s] line %d: %s", suite, p.ID, d.Rule, d.Pos.Line, d.Message)
				}
				if d.Severity != diag.SeverityWarning {
					t.Errorf("%s/%s: severity drift: %s is %s", suite, p.ID, d.Rule, d.Severity)
				}
			}
		}
	}
	if total != 314 {
		t.Fatalf("curated corpus changed size: %d problems (sweep expects 314)", total)
	}
	for _, r := range Rules() {
		if _, ok := golden[r.Code]; !ok {
			t.Errorf("rule %s missing from the golden snapshot; update it deliberately", r.Code)
		}
		if counts[r.Code] != golden[r.Code] {
			t.Errorf("rule %s: %d findings over the corpus, golden says %d", r.Code, counts[r.Code], golden[r.Code])
		}
	}
}

// TestDirtyFixtureSweep pins nonzero findings-by-rule counts on a fixed
// set of deliberately dirty modules — the complement of the clean-corpus
// gate: a rule that silently stops firing shows up here.
func TestDirtyFixtureSweep(t *testing.T) {
	fixtures := []string{
		// latch + incomplete sensitivity + stale read
		`module d1(input sel, input a, input b, output reg y, output reg z);
	always @(a) begin
		z = y & b;
		if (sel) y = a;
	end
endmodule`,
		// comb loop + nonblocking-in-comb + dead input
		`module d2(input a, input spare, output reg y);
	wire w;
	assign w = y | a;
	always @(*) y <= w ^ a;
endmodule`,
		// races + blocking-in-seq + width truncation + alias store
		`module d3(input clk, input [7:0] a, input [7:0] b, output reg [3:0] y, output reg [7:0] q);
	always @(posedge clk) begin
		q = a;
		q[4:1] = q;
	end
	always @(posedge clk) q <= b;
	always @(*) y = a + b;
endmodule`,
		// shared loop variable NBA + written-never-read scratch
		`module d4(input clk, input [7:0] d, output reg [7:0] q);
	integer i;
	reg [7:0] scratch;
	always @(posedge clk) begin
		for (i = 0; i < 4; i = i + 1) q[i] <= d[i];
		scratch <= d;
	end
	always @(posedge clk) begin
		for (i = 4; i < 8; i = i + 1) q[i] <= d[i];
	end
endmodule`,
	}
	want := map[string]int{
		"L001": 1, // d1: y latch
		"L002": 1, // d1: @(a) misses b (y is written, sel... also sel missing) — one finding per block
		"L003": 1, // d2: y <= in comb
		"L004": 1, // d3: q = a blocking in clocked block (one per stmt-chain)
		"L005": 1, // d3: q written from two always blocks
		"L006": 1, // d2: y -> w -> y
		"L007": 1, // d3: a+b (8 bits) into y[3:0]
		"L008": 1, // d1: z reads y before assignment
		"L009": 2, // d2: spare unread input; d4: scratch written never read
		"L010": 2, // d3: q[4:1] = q; d4: shared i
	}
	counts := map[string]int{}
	for i, src := range fixtures {
		fs := Source(src, Options{})
		if len(fs) == 0 {
			t.Errorf("fixture %d produced no findings", i+1)
		}
		for _, d := range fs {
			counts[d.Rule]++
		}
	}
	for code, n := range want {
		if counts[code] < n {
			t.Errorf("rule %s: %d findings over fixtures, want at least %d", code, counts[code], n)
		}
	}
}
