package analyze

import (
	"strings"
	"testing"

	"repro/internal/diag"
)

// findingsFor runs one rule over a source and returns its findings.
func findingsFor(t *testing.T, rule, src string) diag.List {
	t.Helper()
	return Source(src, Options{Rules: []string{rule}})
}

// fires asserts the rule reports (or stays silent on) the source, and
// returns the findings for further checks.
func fires(t *testing.T, rule, src string, want bool) diag.List {
	t.Helper()
	got := findingsFor(t, rule, src)
	if (len(got) > 0) != want {
		t.Fatalf("rule %s: want fire=%v, got %d findings: %v", rule, want, len(got), got)
	}
	return got
}

func TestInferredLatch(t *testing.T) {
	pos := `module m(input sel, input a, output reg y);
	always @(*) begin
		if (sel) y = a;
	end
endmodule`
	got := fires(t, "inferred-latch", pos, true)
	if got[0].Symbol != "y" || got[0].Rule != "L001" {
		t.Fatalf("bad finding: %+v", got[0])
	}
	neg := `module m(input sel, input a, input b, output reg y);
	always @(*) begin
		if (sel) y = a; else y = b;
	end
endmodule`
	fires(t, "inferred-latch", neg, false)
	// A case with a default arm assigns on every path.
	negCase := `module m(input [1:0] s, input a, output reg y);
	always @(*) begin
		case (s)
			2'd0: y = a;
			default: y = 1'b0;
		endcase
	end
endmodule`
	fires(t, "inferred-latch", negCase, false)
	posCase := `module m(input [1:0] s, input a, output reg y);
	always @(*) begin
		case (s)
			2'd0: y = a;
			2'd1: y = 1'b1;
		endcase
	end
endmodule`
	fires(t, "inferred-latch", posCase, true)
	// A default-value-first block assigns on every path.
	negDefault := `module m(input sel, input a, output reg y);
	always @(*) begin
		y = 1'b0;
		if (sel) y = a;
	end
endmodule`
	fires(t, "inferred-latch", negDefault, false)
}

func TestIncompleteSensitivity(t *testing.T) {
	pos := `module m(input a, input b, output reg y);
	always @(a) begin
		y = a & b;
	end
endmodule`
	got := fires(t, "incomplete-sensitivity", pos, true)
	if !strings.Contains(got[0].Message, "'b'") {
		t.Fatalf("missing signal not named: %s", got[0].Message)
	}
	neg := `module m(input a, input b, output reg y);
	always @(a or b) begin
		y = a & b;
	end
endmodule`
	fires(t, "incomplete-sensitivity", neg, false)
	// @(*) blocks and clocked blocks are exempt.
	fires(t, "incomplete-sensitivity", `module m(input a, input b, output reg y);
	always @(*) y = a & b;
endmodule`, false)
	fires(t, "incomplete-sensitivity", `module m(input clk, input d, output reg q);
	always @(posedge clk) q <= d;
endmodule`, false)
}

func TestNonblockingInComb(t *testing.T) {
	pos := `module m(input a, output reg y);
	always @(*) begin
		y <= a;
	end
endmodule`
	got := fires(t, "nonblocking-in-comb", pos, true)
	if got[0].Category != diag.CatAssignStyle {
		t.Fatalf("category = %v", got[0].Category)
	}
	neg := `module m(input a, output reg y);
	always @(*) y = a;
endmodule`
	fires(t, "nonblocking-in-comb", neg, false)
}

func TestBlockingInSeq(t *testing.T) {
	pos := `module m(input clk, input d, output reg q);
	always @(posedge clk) begin
		q = d;
	end
endmodule`
	fires(t, "blocking-in-seq", pos, true)
	neg := `module m(input clk, input d, output reg q);
	always @(posedge clk) q <= d;
endmodule`
	fires(t, "blocking-in-seq", neg, false)
	// Scratch integers updated with '=' inside clocked blocks are idiomatic.
	negInt := `module m(input clk, input [3:0] d, output reg [3:0] q);
	integer i;
	always @(posedge clk) begin
		for (i = 0; i < 4; i = i + 1) q[i] <= d[i];
	end
endmodule`
	fires(t, "blocking-in-seq", negInt, false)
}

func TestWriteRace(t *testing.T) {
	pos := `module m(input clk, input a, input b, output reg q);
	always @(posedge clk) q <= a;
	always @(posedge clk) q <= b;
endmodule`
	got := fires(t, "write-race", pos, true)
	if len(got[0].Related) != 1 {
		t.Fatalf("want the second drive site in Related, got %+v", got[0])
	}
	if !got[0].Pos.Before(got[0].Related[0]) {
		t.Fatalf("primary site should precede related site: %+v", got[0])
	}
	neg := `module m(input clk, input a, output reg q, output reg r);
	always @(posedge clk) q <= a;
	always @(posedge clk) r <= a;
endmodule`
	fires(t, "write-race", neg, false)
	// Procedural vs continuous drivers fight too.
	posMixed := `module m(input a, output reg q);
	wire w = a;
	always @(*) q = a;
	assign q = w;
endmodule`
	fires(t, "write-race", posMixed, true)
}

func TestCombLoop(t *testing.T) {
	pos := `module m(input a, output y);
	wire b;
	assign b = y & a;
	assign y = b | a;
endmodule`
	got := fires(t, "comb-loop", pos, true)
	if !strings.Contains(got[0].Message, "'b'") || !strings.Contains(got[0].Message, "'y'") {
		t.Fatalf("cycle members not listed: %s", got[0].Message)
	}
	neg := `module m(input a, output y);
	wire b;
	assign b = a;
	assign y = b | a;
endmodule`
	fires(t, "comb-loop", neg, false)
	// A register breaks the cycle.
	negReg := `module m(input clk, input a, output reg q);
	wire d = q ^ a;
	always @(posedge clk) q <= d;
endmodule`
	fires(t, "comb-loop", negReg, false)
	// Initialise-then-accumulate is not a loop: the self-read sees the
	// value this activation already computed.
	negAccum := `module m(input [3:0] in, output reg p);
	integer i;
	always @(*) begin
		p = 1'b0;
		for (i = 0; i < 4; i = i + 1) p = p ^ in[i];
	end
endmodule`
	fires(t, "comb-loop", negAccum, false)
	// Self-dependence within one comb always is a loop.
	posSelf := `module m(input a, output reg y);
	always @(*) y = y ^ a;
endmodule`
	fires(t, "comb-loop", posSelf, true)
}

func TestWidthTrunc(t *testing.T) {
	pos := `module m(input [7:0] a, input [7:0] b, output [3:0] y);
	assign y = a + b;
endmodule`
	got := fires(t, "width-trunc", pos, true)
	if !strings.Contains(got[0].Message, "8 bits") {
		t.Fatalf("width not reported: %s", got[0].Message)
	}
	neg := `module m(input [3:0] a, input [3:0] b, output [3:0] y);
	assign y = a + b;
endmodule`
	fires(t, "width-trunc", neg, false)
	// sema's own checker covers ident-to-ident mismatches; L007 must
	// not double-report them.
	semaCovered := `module m(input [7:0] a, output [3:0] y);
	assign y = a;
endmodule`
	fires(t, "width-trunc", semaCovered, false)
	// A sized literal whose significant bits fit is fine...
	fires(t, "width-trunc", `module m(output [3:0] y);
	assign y = 8'h0F;
endmodule`, false)
	// ...but dropped significant bits are not.
	fires(t, "width-trunc", `module m(output [3:0] y);
	assign y = 8'hF0;
endmodule`, true)
}

func TestReadBeforeWrite(t *testing.T) {
	pos := `module m(input en, input a, output reg y, output reg z);
	always @(*) begin
		z = y & a;
		y = en ? a : 1'b0;
	end
endmodule`
	got := fires(t, "read-before-write", pos, true)
	if got[0].Symbol != "y" {
		t.Fatalf("symbol = %q", got[0].Symbol)
	}
	neg := `module m(input en, input a, output reg y, output reg z);
	always @(*) begin
		y = en ? a : 1'b0;
		z = y & a;
	end
endmodule`
	fires(t, "read-before-write", neg, false)
	// Clocked blocks read pre-edge values by design.
	negClk := `module m(input clk, output reg [3:0] q);
	always @(posedge clk) q <= q + 1'b1;
endmodule`
	fires(t, "read-before-write", negClk, false)
}

func TestDeadSignal(t *testing.T) {
	pos := `module m(input a, output y);
	wire scratch;
	assign scratch = a;
	assign y = a;
endmodule`
	got := fires(t, "dead-signal", pos, true)
	if got[0].Symbol != "scratch" {
		t.Fatalf("symbol = %q", got[0].Symbol)
	}
	neg := `module m(input a, output y);
	wire scratch;
	assign scratch = a;
	assign y = scratch;
endmodule`
	fires(t, "dead-signal", neg, false)
	// Unread inputs are reported; read-by-sensitivity counts as a read.
	posInput := `module m(input a, input unused, output y);
	assign y = a;
endmodule`
	got = fires(t, "dead-signal", posInput, true)
	if got[0].Symbol != "unused" {
		t.Fatalf("symbol = %q", got[0].Symbol)
	}
	negClk := `module m(input clk, input d, output reg q);
	always @(posedge clk) q <= d;
endmodule`
	fires(t, "dead-signal", negClk, false)
}

func TestAliasHazard(t *testing.T) {
	// The two TestEngineRegressions constructs, verbatim shapes.
	aliasSliceStore := `module m(input clk, input [7:0] d, output reg [7:0] q);
	always @(posedge clk) begin
		q = d;
		q[4:1] = q;
	end
endmodule`
	got := fires(t, "alias-hazard", aliasSliceStore, true)
	if got[0].Symbol != "q" || got[0].Category != diag.CatAliasHazard {
		t.Fatalf("bad finding: %+v", got[0])
	}
	sharedLoopVar := `module m(input clk, input [7:0] d, output reg [7:0] q);
	integer i;
	always @(posedge clk) begin
		for (i = 0; i < 4; i = i + 1) q[i] <= d[i];
	end
	always @(posedge clk) begin
		for (i = 4; i < 8; i = i + 1) q[i] <= d[i];
	end
endmodule`
	got = fires(t, "alias-hazard", sharedLoopVar, true)
	if got[0].Symbol != "i" || len(got[0].Related) != 1 {
		t.Fatalf("bad finding: %+v", got[0])
	}
	// Dynamic self-slice (the dynamic_self_slice regression shape).
	dynSelf := `module m(input [7:0] d, input [2:0] pos, output reg [15:0] w);
	always @(*) begin
		w = {d, d};
		w[pos +: 8] = w[7:0];
	end
endmodule`
	fires(t, "alias-hazard", dynSelf, true)
	// Negatives: disjoint part-select stores and per-block loop vars.
	neg := `module m(input clk, input [7:0] d, output reg [7:0] q);
	always @(posedge clk) begin
		q[4:1] <= d[3:0];
	end
endmodule`
	fires(t, "alias-hazard", neg, false)
	negLoop := `module m(input clk, input [7:0] d, output reg [7:0] q);
	integer i;
	always @(posedge clk) begin
		for (i = 0; i < 8; i = i + 1) q[i] <= d[i];
	end
endmodule`
	fires(t, "alias-hazard", negLoop, false)
}

func TestOptionsSeverityAndSelection(t *testing.T) {
	src := `module m(input sel, input a, output reg y);
	always @(*) if (sel) y = a;
endmodule`
	all := Source(src, Options{})
	if len(all) == 0 {
		t.Fatal("expected findings with all rules enabled")
	}
	only := Source(src, Options{Rules: []string{"dead-signal"}})
	for _, d := range only {
		if d.Rule != "L009" {
			t.Fatalf("rule filter leaked: %+v", d)
		}
	}
	esc := Source(src, Options{
		Rules:    []string{"inferred-latch"},
		Severity: map[string]diag.Severity{"all": diag.SeverityError},
	})
	if len(esc) == 0 || esc[0].Severity != diag.SeverityError {
		t.Fatalf("severity override ignored: %+v", esc)
	}
	if _, err := ResolveRules([]string{"no-such-rule"}); err == nil {
		t.Fatal("unknown rule accepted")
	}
	if rs, err := ResolveRules(nil); err != nil || len(rs) != len(Rules()) {
		t.Fatalf("empty selection should mean all rules: %v %d", err, len(rs))
	}
}

func TestSourceToleratesBrokenInput(t *testing.T) {
	// Parse errors: no tree, no findings, no panic.
	if got := Source("module m(; endmodule", Options{}); len(got) != 0 {
		t.Fatalf("findings on unparsable source: %v", got)
	}
	// Elaboration errors (undeclared identifier) must not stop the
	// analyzer: this is the fixer's mid-repair case.
	src := `module m(input a, output reg y);
	always @(*) begin
		if (undeclared_enable) y = a;
	end
endmodule`
	got := Source(src, Options{Rules: []string{"inferred-latch"}})
	if len(got) == 0 {
		t.Fatal("analyzer silent on sema-error source")
	}
}

func TestRenderText(t *testing.T) {
	src := `module m(input sel, input a, output reg y);
	always @(*) if (sel) y = a;
endmodule`
	findings := Source(src, Options{Rules: []string{"inferred-latch"}})
	text := RenderText("main.v", findings)
	if !strings.Contains(text, "lint: main.v:2: warning [L001 inferred-latch]") {
		t.Fatalf("unexpected render:\n%s", text)
	}
	// Must never look like a compiler-log location line ("file:line:").
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if !strings.HasPrefix(line, "lint: ") {
			t.Fatalf("line without lint prefix: %q", line)
		}
	}
	if RenderText("main.v", nil) != "" {
		t.Fatal("empty findings should render empty")
	}
}

func TestRegistryStable(t *testing.T) {
	seenCode := map[string]bool{}
	seenName := map[string]bool{}
	for _, r := range Rules() {
		if seenCode[r.Code] || seenName[r.Name] {
			t.Fatalf("duplicate rule identity: %s %s", r.Code, r.Name)
		}
		seenCode[r.Code], seenName[r.Name] = true, true
		if r.Doc == "" {
			t.Fatalf("rule %s has no doc", r.Code)
		}
	}
	if len(Rules()) < 8 {
		t.Fatalf("fewer than 8 rules registered: %d", len(Rules()))
	}
}
