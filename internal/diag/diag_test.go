package diag

import (
	"sort"
	"testing"
)

func TestCategoryStringsUniqueAndStable(t *testing.T) {
	seen := map[string]Category{}
	for _, c := range Categories() {
		s := c.String()
		if s == "" || s == "none" {
			t.Errorf("category %d has bad name %q", c, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("categories %d and %d share the name %q", prev, c, s)
		}
		seen[s] = c
	}
}

func TestCategoryByNameRoundTrip(t *testing.T) {
	for _, c := range Categories() {
		got, ok := CategoryByName(c.String())
		if !ok || got != c {
			t.Errorf("CategoryByName(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := CategoryByName("no-such-tag"); ok {
		t.Error("unknown tag must not resolve")
	}
}

func TestPosOrdering(t *testing.T) {
	a := Pos{Line: 3, Col: 1}
	b := Pos{Line: 3, Col: 9}
	c := Pos{Line: 5, Col: 1}
	if !a.Before(b) || !b.Before(c) || c.Before(a) {
		t.Error("Pos.Before ordering wrong")
	}
	if (Pos{}).IsValid() {
		t.Error("zero Pos must be invalid")
	}
}

func TestListQueries(t *testing.T) {
	var l List
	l.Add(Warningf(CatWidthMismatch, Pos{Line: 2}, "w"))
	l.Add(Errorf(CatUndeclaredIdent, Pos{Line: 5}, "e1"))
	l.Add(Errorf(CatIndexOutOfRange, Pos{Line: 3}, "e2"))

	if !l.HasErrors() {
		t.Fatal("HasErrors")
	}
	if len(l.Errors()) != 2 || len(l.Warnings()) != 1 {
		t.Fatalf("errors=%d warnings=%d", len(l.Errors()), len(l.Warnings()))
	}
	first, ok := l.First()
	if !ok || first.Message != "e1" {
		t.Fatalf("First = %+v", first)
	}
	l.SortByPos()
	if l[0].Pos.Line != 2 || l[2].Pos.Line != 5 {
		t.Fatalf("SortByPos wrong: %s", l.Summary())
	}
	cats := l.Categories()
	if !sort.SliceIsSorted(cats, func(i, j int) bool { return cats[i] < cats[j] }) {
		t.Error("Categories must be sorted")
	}
	if len(cats) != 3 {
		t.Errorf("got %d categories, want 3", len(cats))
	}
}

func TestDiagnosticError(t *testing.T) {
	d := Errorf(CatUndeclaredIdent, Pos{Line: 5, Col: 2}, "object %q is not declared", "clk")
	if got := d.Error(); got != `5:2: error: object "clk" is not declared` {
		t.Fatalf("Error() = %q", got)
	}
}

func TestEmptyListSummary(t *testing.T) {
	var l List
	if l.Summary() != "no diagnostics" {
		t.Fatal(l.Summary())
	}
	if _, ok := l.First(); ok {
		t.Fatal("First on empty list")
	}
}
