// Package diag defines the structured diagnostics shared by the Verilog
// frontend (lexer, parser, elaborator) and the compiler personas.
//
// Every error the toolchain can emit carries a stable Category. Categories
// are the pivot of the whole reproduction: the error-injection engine tags
// mutations with the category it expects the compiler to report, the RAG
// database keys human guidance by category, and the simulated LLM keys its
// repair strategies by category.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies how serious a diagnostic is.
type Severity int

const (
	// SeverityWarning does not prevent compilation from succeeding.
	SeverityWarning Severity = iota
	// SeverityError prevents compilation from succeeding.
	SeverityError
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// Category is a stable classification of a syntax or elaboration error.
// The enum mirrors the error taxonomy RTLFixer's retrieval database is
// organized around (error-number tags in Quartus logs, message families in
// iverilog logs).
type Category int

const (
	// CatNone marks a diagnostic with no specific category.
	CatNone Category = iota
	// CatUnexpectedToken is a generic parse error: the parser saw a token
	// it could not use in the current production.
	CatUnexpectedToken
	// CatMissingSemicolon is a statement or declaration missing its ';'.
	CatMissingSemicolon
	// CatUnmatchedBeginEnd is a begin without end (or vice versa).
	CatUnmatchedBeginEnd
	// CatMissingEndmodule is a module body that ends without 'endmodule'.
	CatMissingEndmodule
	// CatUndeclaredIdent is a use of an identifier with no declaration in
	// scope (the paper's canonical example: 'clk' not in the port list).
	CatUndeclaredIdent
	// CatIndexOutOfRange is a constant bit-select or part-select outside
	// the declared range of a vector (paper Fig. 6 failure case).
	CatIndexOutOfRange
	// CatInvalidLValue is a procedural assignment whose target is a net
	// (wire) rather than a variable (reg) — iverilog's
	// "x is not a valid l-value" family.
	CatInvalidLValue
	// CatAssignToReg is a continuous assignment driving a reg.
	CatAssignToReg
	// CatPortMismatch is a port in the header list that is never declared,
	// a declaration that names no port, or a width/direction conflict.
	CatPortMismatch
	// CatDuplicateDecl is the same name declared twice in one scope.
	CatDuplicateDecl
	// CatWidthMismatch is an assignment whose operand widths disagree
	// (warning-level in both reference compilers).
	CatWidthMismatch
	// CatCStyleSyntax is a C/C++ idiom that is not legal Verilog-2001:
	// '++', '--', '+=', braces used as blocks, 'int' declarations inside
	// a non-SystemVerilog source, and so on. The paper notes LLMs are
	// "confident in incorrect syntax, possibly due to it being accepted
	// in C/C++".
	CatCStyleSyntax
	// CatMisplacedDirective is a compiler directive (e.g. `timescale)
	// appearing where it is not allowed, such as inside a module body.
	// The paper's simple rule-based fixer exists largely for this class.
	CatMisplacedDirective
	// CatNonConstantExpr is a non-constant expression where a constant is
	// required (range bounds, parameter values, replication counts).
	CatNonConstantExpr
	// CatKeywordAsIdent is a reserved word used as an identifier.
	CatKeywordAsIdent
	// CatMalformedLiteral is an unparsable number, e.g. 8'hXYZ or 4'd1F.
	CatMalformedLiteral
	// CatSensitivityList is a malformed or missing event control on an
	// always block (e.g. 'always begin' with no '@').
	CatSensitivityList
	// CatModuleStructure is a structural problem with the module itself:
	// missing module header, code outside any module, duplicate
	// endmodule.
	CatModuleStructure
	// CatBadConcat is a malformed concatenation/replication, e.g. an
	// unsized literal inside a concatenation.
	CatBadConcat
	// CatGiveUp is iverilog's famous catch-all: the compiler hit an
	// internal limit and produced an uninformative "I give up." log.
	CatGiveUp
	// CatMultipleDrivers is a signal driven from more than one place
	// (two continuous assignments, or an assignment and an always block).
	// Warning-level: two-state simulation resolves it by last-writer-wins,
	// but it is almost always a bug.
	CatMultipleDrivers

	// The categories below are emitted only by the semantic lint engine
	// (internal/analyze), never by the frontend. They classify code that
	// elaborates cleanly but is likely to misbehave in hardware.

	// CatInferredLatch is a combinational always block that does not assign
	// a variable on every control path, so synthesis infers a level-
	// sensitive latch to hold the old value.
	CatInferredLatch
	// CatIncompleteSensitivity is a level-sensitive always block whose
	// explicit event list omits a signal the body reads — simulation and
	// synthesis disagree about when the block wakes.
	CatIncompleteSensitivity
	// CatAssignStyle is a procedural assignment using the wrong operator
	// for its context: blocking '=' inside a clocked block, or
	// nonblocking '<=' inside a combinational block.
	CatAssignStyle
	// CatCombLoop is a cycle through combinational logic (continuous
	// assignments and level-sensitive always blocks) with no register to
	// break it.
	CatCombLoop
	// CatReadBeforeWrite is a combinational block that reads a variable it
	// also assigns before any path has assigned it — the read sees the
	// stale value from the previous activation (an X in 4-state sim).
	CatReadBeforeWrite
	// CatUnusedSignal is a declared signal that nothing reads (or nothing
	// reads nor writes).
	CatUnusedSignal
	// CatAliasHazard is a statically detectable aliasing construct: a
	// part-select store whose right-hand side reads the same underlying
	// signal, or a module-scope loop variable shared as a nonblocking
	// index across always blocks. These are exactly the shapes behind the
	// engine/walker divergences in TestEngineRegressions.
	CatAliasHazard

	numCategories
)

var categoryNames = map[Category]string{
	CatNone:               "none",
	CatUnexpectedToken:    "unexpected-token",
	CatMissingSemicolon:   "missing-semicolon",
	CatUnmatchedBeginEnd:  "unmatched-begin-end",
	CatMissingEndmodule:   "missing-endmodule",
	CatUndeclaredIdent:    "undeclared-identifier",
	CatIndexOutOfRange:    "index-out-of-range",
	CatInvalidLValue:      "invalid-lvalue",
	CatAssignToReg:        "assign-to-reg",
	CatPortMismatch:       "port-mismatch",
	CatDuplicateDecl:      "duplicate-declaration",
	CatWidthMismatch:      "width-mismatch",
	CatCStyleSyntax:       "c-style-syntax",
	CatMisplacedDirective: "misplaced-directive",
	CatNonConstantExpr:    "non-constant-expression",
	CatKeywordAsIdent:     "keyword-as-identifier",
	CatMalformedLiteral:   "malformed-literal",
	CatSensitivityList:    "sensitivity-list",
	CatModuleStructure:    "module-structure",
	CatBadConcat:          "bad-concatenation",
	CatGiveUp:             "give-up",
	CatMultipleDrivers:    "multiple-drivers",

	CatInferredLatch:         "inferred-latch",
	CatIncompleteSensitivity: "incomplete-sensitivity",
	CatAssignStyle:           "assignment-style",
	CatCombLoop:              "combinational-loop",
	CatReadBeforeWrite:       "read-before-write",
	CatUnusedSignal:          "unused-signal",
	CatAliasHazard:           "alias-hazard",
}

// String returns the stable kebab-case tag for the category. These tags are
// what the RAG database keys on.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Categories returns every defined category except CatNone, in a stable
// order. Useful for exhaustive tables in tests and the RAG database.
func Categories() []Category {
	out := make([]Category, 0, int(numCategories)-1)
	for c := CatUnexpectedToken; c < numCategories; c++ {
		out = append(out, c)
	}
	return out
}

// CategoryByName resolves a kebab-case tag back to its Category. The second
// return is false for unknown tags.
func CategoryByName(name string) (Category, bool) {
	for c, s := range categoryNames {
		if s == name {
			return c, true
		}
	}
	return CatNone, false
}

// Pos is a position in a source file, 1-based like every compiler the paper
// quotes ("main.v:5: error: ...").
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String formats the position as "line:col" (or "line" when the column is
// unknown).
func (p Pos) String() string {
	if p.Col > 0 {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%d", p.Line)
}

// Before reports whether p occurs strictly before q in the file.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Diagnostic is one message from the toolchain. Personas format it into
// their own log dialects; the structured fields survive so that tests and
// the agent's oracle can inspect ground truth.
type Diagnostic struct {
	Severity Severity
	Category Category
	Pos      Pos
	// Symbol is the identifier the diagnostic is about, when there is one
	// ("clk", "out", ...). Personas interpolate it into messages and the
	// exact-match RAG retriever uses it for context.
	Symbol string
	// Message is the persona-neutral description of the problem.
	Message string
	// Suggestion is an optional hint about how to fix the problem. Only
	// the high-quality persona (Quartus-style) surfaces it.
	Suggestion string
	// Rule is the stable per-rule code ("L001", ...) when the diagnostic
	// came from the semantic lint engine; empty for frontend diagnostics.
	Rule string
	// Related holds additional positions involved in the problem — e.g.
	// every conflicting drive site of a multiply-driven signal. Pos is the
	// primary site; Related lists the others, in source order.
	Related []Pos
}

// Error makes Diagnostic usable as an error value.
func (d Diagnostic) Error() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
}

// Errorf builds an error-severity diagnostic.
func Errorf(cat Category, pos Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Severity: SeverityError,
		Category: cat,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	}
}

// Warningf builds a warning-severity diagnostic.
func Warningf(cat Category, pos Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Severity: SeverityWarning,
		Category: cat,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	}
}

// List is an ordered collection of diagnostics with convenience queries.
type List []Diagnostic

// Add appends a diagnostic.
func (l *List) Add(d Diagnostic) { *l = append(*l, d) }

// HasErrors reports whether any diagnostic is error-severity.
func (l List) HasErrors() bool {
	for _, d := range l {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity diagnostics.
func (l List) Errors() List {
	var out List
	for _, d := range l {
		if d.Severity == SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// Warnings returns only the warning-severity diagnostics.
func (l List) Warnings() List {
	var out List
	for _, d := range l {
		if d.Severity == SeverityWarning {
			out = append(out, d)
		}
	}
	return out
}

// Categories returns the distinct categories present, sorted by enum value.
func (l List) Categories() []Category {
	seen := map[Category]bool{}
	for _, d := range l {
		seen[d.Category] = true
	}
	out := make([]Category, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// First returns the first error-severity diagnostic, mirroring a compiler
// that stops at the first hard error. The second return is false when the
// list holds no errors.
func (l List) First() (Diagnostic, bool) {
	for _, d := range l {
		if d.Severity == SeverityError {
			return d, true
		}
	}
	return Diagnostic{}, false
}

// SortByPos orders diagnostics by source position (stable for equal
// positions).
func (l List) SortByPos() {
	sort.SliceStable(l, func(i, j int) bool { return l[i].Pos.Before(l[j].Pos) })
}

// Dedupe removes diagnostics that repeat an earlier one exactly (same
// severity, category, position, symbol, and message), preserving order.
// Repeated elaboration of unrolled constructs can report the same
// problem several times; rendering each copy only spams the fixer
// prompt. Returns the deduplicated list (the receiver is not modified;
// a list with no duplicates is returned as-is, allocation-free).
func (l List) Dedupe() List {
	type key struct {
		sev  Severity
		cat  Category
		pos  Pos
		sym  string
		msg  string
		rule string
	}
	seen := make(map[key]bool, len(l))
	dup := false
	for _, d := range l {
		k := key{d.Severity, d.Category, d.Pos, d.Symbol, d.Message, d.Rule}
		if seen[k] {
			dup = true
			break
		}
		seen[k] = true
	}
	if !dup {
		return l
	}
	out := make(List, 0, len(l))
	clear(seen)
	for _, d := range l {
		k := key{d.Severity, d.Category, d.Pos, d.Symbol, d.Message, d.Rule}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	return out
}

// Summary renders a compact single-line summary, mostly for logs and tests.
func (l List) Summary() string {
	if len(l) == 0 {
		return "no diagnostics"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d error(s), %d warning(s):", len(l.Errors()), len(l.Warnings()))
	for _, d := range l {
		fmt.Fprintf(&b, " [%s@%s]", d.Category, d.Pos)
	}
	return b.String()
}
