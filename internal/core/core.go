// Package core is the public face of the RTLFixer reproduction: it wires
// the rule-based pre-fixer, a compiler persona, the retrieval database,
// and the simulated-LLM agent into the feedback loop of the paper's
// Fig. 1. Downstream code (CLI, examples, benchmarks) talks to this
// package only.
package core

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/compiler"
	"repro/internal/llm"
	"repro/internal/rag"
)

// Mode selects the prompting scheme.
type Mode string

// Prompting modes.
const (
	// ModeOneShot is the baseline: a single feedback turn.
	ModeOneShot Mode = "one-shot"
	// ModeReAct is the full iterative Thought/Action/Observation loop.
	ModeReAct Mode = "react"
)

// Options configures a fixer instance.
type Options struct {
	// CompilerName selects the feedback persona: "simple", "iverilog",
	// or "quartus". Default "quartus".
	CompilerName string
	// PersonaName selects the simulated LLM: "gpt-3.5" or "gpt-4".
	// Default "gpt-3.5".
	PersonaName string
	// RAG enables the retrieval database (curated per compiler persona).
	RAG bool
	// Retriever overrides the retrieval strategy; nil uses exact-tag.
	Retriever rag.Retriever
	// Mode selects one-shot or ReAct; default ReAct.
	Mode Mode
	// MaxIterations bounds ReAct revisions; 0 means the paper's 10.
	MaxIterations int
	// Seed makes runs reproducible.
	Seed int64
}

// RTLFixer is a configured debugging agent.
type RTLFixer struct {
	opts     Options
	compiler compiler.Compiler
	persona  llm.Persona
	db       *rag.Database
}

// New validates options and builds a fixer.
func New(opts Options) (*RTLFixer, error) {
	if opts.CompilerName == "" {
		opts.CompilerName = "quartus"
	}
	if opts.PersonaName == "" {
		opts.PersonaName = "gpt-3.5"
	}
	if opts.Mode == "" {
		opts.Mode = ModeReAct
	}
	comp, ok := compiler.ByName(opts.CompilerName)
	if !ok {
		return nil, fmt.Errorf("core: unknown compiler persona %q", opts.CompilerName)
	}
	persona, ok := llm.PersonaByName(opts.PersonaName)
	if !ok {
		return nil, fmt.Errorf("core: unknown LLM persona %q", opts.PersonaName)
	}
	f := &RTLFixer{opts: opts, compiler: comp, persona: persona}
	if opts.RAG {
		f.db = rag.ForCompiler(comp.Name())
	}
	return f, nil
}

// Compiler exposes the configured persona (for examples and tests).
func (f *RTLFixer) Compiler() compiler.Compiler { return f.compiler }

// Database returns the retrieval database, nil when RAG is off.
func (f *RTLFixer) Database() *rag.Database { return f.db }

// Fix runs the configured debugging loop on one erroneous source file.
// sampleSeed distinguishes problem instances: the simulated model's
// capability rolls are deterministic per (sample, error category), so the
// same instance behaves consistently across retries, as a real model's
// systematic weaknesses do.
func (f *RTLFixer) Fix(filename, code string, sampleSeed int64) *agent.Transcript {
	cfg := agent.Config{
		Compiler:      f.compiler,
		Model:         llm.NewModel(f.persona, f.opts.Seed^sampleSeed),
		DB:            f.db,
		Retriever:     f.opts.Retriever,
		MaxIterations: f.opts.MaxIterations,
		Filename:      filename,
		SampleSeed:    sampleSeed,
	}
	if f.opts.Mode == ModeOneShot {
		return agent.RunOneShot(cfg, code)
	}
	return agent.RunReAct(cfg, code)
}
