// Package core is the public face of the RTLFixer reproduction: it wires
// the rule-based pre-fixer, a compiler persona, the retrieval database,
// and the simulated-LLM agent into the feedback loop of the paper's
// Fig. 1. Downstream code (CLI, examples, benchmarks) talks to this
// package only.
package core

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/analyze"
	"repro/internal/compiler"
	"repro/internal/diag"
	"repro/internal/llm"
	"repro/internal/memo"
	"repro/internal/rag"
	"repro/internal/store"
	"repro/internal/trace"
)

// Mode selects the prompting scheme.
type Mode string

// Prompting modes.
const (
	// ModeOneShot is the baseline: a single feedback turn.
	ModeOneShot Mode = "one-shot"
	// ModeReAct is the full iterative Thought/Action/Observation loop.
	ModeReAct Mode = "react"
)

// Options configures a fixer instance.
type Options struct {
	// CompilerName selects the feedback persona: "simple", "iverilog",
	// or "quartus". Default "quartus".
	CompilerName string
	// PersonaName selects the simulated LLM: "gpt-3.5" or "gpt-4".
	// Default "gpt-3.5".
	PersonaName string
	// RAG enables the retrieval database (curated per compiler persona).
	RAG bool
	// Retriever overrides the retrieval strategy; nil uses exact-tag.
	Retriever rag.Retriever
	// Mode selects one-shot or ReAct; default ReAct.
	Mode Mode
	// MaxIterations bounds ReAct revisions; 0 means the paper's 10.
	MaxIterations int
	// Seed makes runs reproducible.
	Seed int64
	// Cache enables the sharded memoization layer (internal/memo): a
	// content-addressed compile cache in front of the persona and, with
	// RAG on, a precompiled retrieval index over the guidance database.
	// Transparent: transcripts and table output are byte-identical with
	// the cache on or off.
	Cache bool
	// CacheCapacity bounds the compile cache (entries); 0 = default.
	CacheCapacity int
	// DisableAnalyzer turns off the semantic lint engine
	// (internal/analyze). With the analyzer on — the default — Lint
	// appends its findings to the persona diagnostics and the agent's
	// compile observations carry the rendered findings as extra model
	// feedback.
	DisableAnalyzer bool
	// Store, with Cache on, is the durable backing under the memo layer
	// (internal/store): the compile cache warm-starts from it and writes
	// behind, and the retrieval index is restored from its persisted
	// image instead of rebuilt. Persistence is as transparent as the
	// cache itself — restored state serves the same bytes a cold compute
	// would.
	Store store.Backing
}

// RTLFixer is a configured debugging agent.
type RTLFixer struct {
	opts     Options
	compiler compiler.Compiler
	persona  llm.Persona
	db       *rag.Database
	// retriever is the effective retrieval strategy: Options.Retriever,
	// possibly wrapped by the memo index when caching is on.
	retriever rag.Retriever
	// compileCache and index are non-nil only when Options.Cache is set.
	compileCache *memo.CompileCache
	index        *memo.RetrievalIndex
}

// New validates options and builds a fixer.
func New(opts Options) (*RTLFixer, error) {
	if opts.CompilerName == "" {
		opts.CompilerName = "quartus"
	}
	if opts.PersonaName == "" {
		opts.PersonaName = "gpt-3.5"
	}
	if opts.Mode == "" {
		opts.Mode = ModeReAct
	}
	comp, ok := compiler.ByName(opts.CompilerName)
	if !ok {
		return nil, fmt.Errorf("core: unknown compiler persona %q", opts.CompilerName)
	}
	persona, ok := llm.PersonaByName(opts.PersonaName)
	if !ok {
		return nil, fmt.Errorf("core: unknown LLM persona %q", opts.PersonaName)
	}
	f := &RTLFixer{opts: opts, compiler: comp, persona: persona, retriever: opts.Retriever}
	if opts.Cache {
		f.compileCache = memo.NewCompileCache(opts.CacheCapacity)
		if opts.Store != nil {
			// Warm start: this persona's persisted compile results load
			// into memory now, misses consult the store before
			// recomputing, and fresh results are written behind.
			f.compileCache.AttachStore(opts.Store, comp.Name())
		}
		f.compiler = f.compileCache.Cached(comp)
	}
	if opts.RAG {
		f.db = rag.ForCompiler(comp.Name())
		if opts.Cache && memo.Indexable(opts.Retriever) {
			// Precompile the retrieval index once; every worker then
			// shares the read-only inverted index and shingle sets.
			// Custom strategies skip the build — the index could not
			// serve them, so it would be constructed and never consulted.
			// With a store attached the index image is restored from disk
			// when its database hash matches, skipping the build.
			if opts.Store != nil {
				f.index = memo.NewPersistedRetrievalIndex(f.db, opts.Store)
			} else {
				f.index = memo.NewRetrievalIndex(f.db)
			}
			f.retriever = f.index.Wrap(opts.Retriever)
		}
	}
	return f, nil
}

// CacheStats snapshots the memoization-layer counters (zero when
// Options.Cache is off).
func (f *RTLFixer) CacheStats() memo.Stats {
	var s memo.Stats
	if f.compileCache != nil {
		s = s.Add(f.compileCache.Stats())
	}
	if f.index != nil {
		s = s.Add(f.index.Stats())
	}
	return s
}

// Compiler exposes the configured persona (for examples and tests).
func (f *RTLFixer) Compiler() compiler.Compiler { return f.compiler }

// Options returns the validated configuration this fixer was built with
// (defaults filled in), so callers that pool fixers per configuration can
// label them.
func (f *RTLFixer) Options() Options { return f.opts }

// Lint compiles the source through the configured persona without running
// the agent — the cheap diagnostic path (served from the compile cache
// when Options.Cache is on). The returned Result carries the persona log
// and the structured diagnostics; with the analyzer on, semantic-lint
// findings are appended to a copy of the diagnostics (the cached slice is
// never mutated).
func (f *RTLFixer) Lint(filename, code string) compiler.Result {
	res := f.compiler.Compile(filename, code)
	if f.opts.DisableAnalyzer {
		return res
	}
	findings := f.Analyze(code)
	if len(findings) == 0 {
		return res
	}
	diags := make(diag.List, 0, len(res.Diags)+len(findings))
	diags = append(diags, res.Diags...)
	diags = append(diags, findings...)
	res.Diags = diags
	return res
}

// Analyze runs the semantic lint engine alone over the source and returns
// its findings (nil when the source does not parse, or when the analyzer
// is disabled). Unlike Lint it never consults the compiler persona.
func (f *RTLFixer) Analyze(code string) diag.List {
	if f.opts.DisableAnalyzer {
		return nil
	}
	return analyze.Source(code, analyze.Options{})
}

// Database returns the retrieval database, nil when RAG is off.
func (f *RTLFixer) Database() *rag.Database { return f.db }

// Fix runs the configured debugging loop on one erroneous source file.
// sampleSeed distinguishes problem instances: the simulated model's
// capability rolls are deterministic per (sample, error category), so the
// same instance behaves consistently across retries, as a real model's
// systematic weaknesses do.
func (f *RTLFixer) Fix(filename, code string, sampleSeed int64) *agent.Transcript {
	return f.FixTraced(filename, code, sampleSeed, nil)
}

// FixTraced is Fix with a parent trace span: the loop's stage children
// (iteration, compile, rag, llm) attach under sp. A nil sp is exactly
// Fix — the no-op span chain adds no allocations — and the transcript
// is byte-identical either way.
func (f *RTLFixer) FixTraced(filename, code string, sampleSeed int64, sp *trace.Span) *agent.Transcript {
	cfg := agent.Config{
		Compiler:        f.compiler,
		Model:           llm.NewModel(f.persona, f.opts.Seed^sampleSeed),
		DB:              f.db,
		Retriever:       f.retriever,
		MaxIterations:   f.opts.MaxIterations,
		Filename:        filename,
		SampleSeed:      sampleSeed,
		DisableAnalyzer: f.opts.DisableAnalyzer,
		Span:            sp,
	}
	if f.opts.Mode == ModeOneShot {
		return agent.RunOneShot(cfg, code)
	}
	return agent.RunReAct(cfg, code)
}
