package core

import (
	"strings"
	"testing"

	"repro/internal/memo"
)

const paperClkExample = `module top_module (
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1) begin
			out[i] <= in[99 - i];
		end
	end
endmodule
`

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(Options{CompilerName: "vcs"}); err == nil {
		t.Fatal("unknown compiler must be rejected")
	}
	if _, err := New(Options{PersonaName: "llama"}); err == nil {
		t.Fatal("unknown persona must be rejected")
	}
	f, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Compiler().Name() != "Quartus" {
		t.Fatalf("default compiler = %s", f.Compiler().Name())
	}
	if f.Database() != nil {
		t.Fatal("RAG must be off by default")
	}
}

func TestFixPaperExampleReActRAG(t *testing.T) {
	f, err := New(Options{CompilerName: "quartus", RAG: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// The clk case is a high-competence category with guidance; across a
	// handful of seeds at least most runs must fix it.
	fixed := 0
	for seed := int64(0); seed < 10; seed++ {
		tr := f.Fix("vector100r.sv", paperClkExample, seed)
		if tr.Success {
			fixed++
			if res := f.Compiler().Compile("x.sv", tr.FinalCode); !res.Ok {
				t.Fatalf("transcript claims success but code does not compile:\n%s", tr.FinalCode)
			}
		}
	}
	if fixed < 7 {
		t.Fatalf("ReAct+RAG fixed only %d/10 runs of the paper's canonical example", fixed)
	}
}

func TestFixTranscriptShape(t *testing.T) {
	f, err := New(Options{CompilerName: "quartus", RAG: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := f.Fix("main.v", paperClkExample, 7)
	r := tr.Render()
	for _, want := range []string{"Thought 1:", "Action", "Observation"} {
		if !strings.Contains(r, want) {
			t.Fatalf("transcript missing %q:\n%s", want, r)
		}
	}
	if tr.Iterations < 1 {
		t.Fatal("at least one revision must be recorded")
	}
}

func TestFixOneShotRunsSingleIteration(t *testing.T) {
	f, err := New(Options{CompilerName: "quartus", Mode: ModeOneShot, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := f.Fix("main.v", paperClkExample, 11)
	if tr.Iterations != 1 {
		t.Fatalf("one-shot made %d iterations", tr.Iterations)
	}
}

func TestFixCleanCodeIsImmediateSuccess(t *testing.T) {
	clean := "module m(input a, output y);\n\tassign y = ~a;\nendmodule\n"
	f, err := New(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr := f.Fix("main.v", clean, 1)
	if !tr.Success || tr.Iterations != 0 {
		t.Fatalf("clean code: success=%v iterations=%d", tr.Success, tr.Iterations)
	}
}

func TestFixMarkdownWrappedCode(t *testing.T) {
	wrapped := "Sure! Here is the corrected module:\n```verilog\nmodule m(input a, output y);\n\tassign y = a;\nendmodule\n```\nHope this helps!"
	f, err := New(Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr := f.Fix("main.v", wrapped, 2)
	if !tr.Success {
		t.Fatalf("fixer should strip markdown and pass: rules=%v", tr.FixerRules)
	}
	if len(tr.FixerRules) == 0 {
		t.Fatal("fixer rules should have fired")
	}
}

func TestCacheIsTransparent(t *testing.T) {
	// The memo layer must not change a single transcript byte: run the
	// same sessions through a cached and an uncached fixer and compare.
	mk := func(cache bool) *RTLFixer {
		f, err := New(Options{CompilerName: "quartus", RAG: true, Seed: 42, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	plain, cached := mk(false), mk(true)
	for seed := int64(0); seed < 6; seed++ {
		a := plain.Fix("vector100r.sv", paperClkExample, seed)
		b := cached.Fix("vector100r.sv", paperClkExample, seed)
		if a.Render() != b.Render() || a.FinalCode != b.FinalCode {
			t.Fatalf("seed %d: cached transcript diverges:\n%s\nvs\n%s", seed, a.Render(), b.Render())
		}
	}
	s := cached.CacheStats()
	if s.Hits == 0 {
		t.Fatalf("repeated sessions produced no compile-cache hits: %+v", s)
	}
	if s.Lookups == 0 {
		t.Fatalf("RAG retrievals were not served by the index: %+v", s)
	}
	if z := plain.CacheStats(); z != (memo.Stats{}) {
		t.Fatalf("uncached fixer reports stats: %+v", z)
	}
}

func TestCacheStatsZeroWhenOff(t *testing.T) {
	f, err := New(Options{CompilerName: "quartus", RAG: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Fix("main.v", paperClkExample, 3)
	if s := f.CacheStats(); s != (memo.Stats{}) {
		t.Fatalf("cache off but stats non-zero: %+v", s)
	}
}

func TestLintAndOptions(t *testing.T) {
	f, err := New(Options{Seed: 1, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := f.Options()
	if opts.CompilerName != "quartus" || opts.PersonaName != "gpt-3.5" || opts.Mode != ModeReAct {
		t.Fatalf("Options() missing defaults: %+v", opts)
	}
	if res := f.Lint("main.v", paperClkExample); res.Ok {
		t.Fatal("Lint reported the paper's broken example as clean")
	} else if res.Log == "" {
		t.Fatal("Lint returned no log for a failing compile")
	}
	if res := f.Lint("main.v", "module m;\nendmodule\n"); !res.Ok {
		t.Fatalf("Lint rejected a clean module: %s", res.Log)
	}
	// Lint goes through the compile cache: a repeat is a hit.
	before := f.CacheStats()
	f.Lint("main.v", paperClkExample)
	if after := f.CacheStats(); after.Hits <= before.Hits {
		t.Fatalf("repeated Lint did not hit the compile cache: %+v -> %+v", before, after)
	}
}
