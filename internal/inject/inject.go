// Package inject mutates syntactically correct Verilog into erroneous
// implementations with known ground truth. It stands in for the paper's
// sampling step ("Code samples were selected from VerilogEval problems
// using One-shot and ReAct prompting with gpt-3.5-turbo, retaining only
// error-inducing samples", §3.4): instead of sampling a live LLM, each
// mutator reproduces one class of syntax error that LLM-generated Verilog
// exhibits, tagged with the diagnostic category the compiler is expected
// to report and a difficulty score the simulated LLM's repair model
// consumes.
//
// The difficulty calibration mirrors the paper's observations: mechanical
// defects (missing semicolons, misplaced directives) are near-trivial,
// declaration-kind defects (reg/wire confusion) are easy once feedback
// names the signal, and index-arithmetic defects (§5 Fig. 6) are hard
// enough that even RAG-assisted agents fail on a fraction of them.
package inject

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"repro/internal/diag"
)

// Mutation records one injected error: the ground truth the benchmark
// keeps about an erroneous sample.
type Mutation struct {
	// Mutator is the name of the rule that produced the error.
	Mutator string
	// Category is the diagnostic category the compiler is expected to
	// report for this error.
	Category diag.Category
	// Difficulty in [0,1] scales how hard the error is to repair for the
	// simulated LLM: 0 = mechanical, 1 = requires reasoning the paper
	// found LLMs incapable of.
	Difficulty float64
	// Line is the approximate 1-based source line of the defect.
	Line int
}

// Mutator is one error-injection rule.
type Mutator struct {
	Name       string
	Category   diag.Category
	Difficulty float64
	// Apply attempts the mutation. ok is false when the source has no
	// applicable site.
	Apply func(src string, rng *rand.Rand) (out string, line int, ok bool)
}

// All returns every mutator, in a stable order.
func All() []Mutator {
	return []Mutator{
		{Name: "drop-semicolon", Category: diag.CatMissingSemicolon, Difficulty: 0.08, Apply: dropSemicolon},
		{Name: "drop-end", Category: diag.CatUnmatchedBeginEnd, Difficulty: 0.30, Apply: dropEnd},
		{Name: "drop-endmodule", Category: diag.CatMissingEndmodule, Difficulty: 0.08, Apply: dropEndmodule},
		{Name: "drop-clock-port", Category: diag.CatUndeclaredIdent, Difficulty: 0.28, Apply: dropClockPort},
		{Name: "misspell-identifier", Category: diag.CatUndeclaredIdent, Difficulty: 0.22, Apply: misspellIdent},
		{Name: "index-overflow", Category: diag.CatIndexOutOfRange, Difficulty: 0.42, Apply: indexOverflow},
		{Name: "index-arithmetic", Category: diag.CatIndexOutOfRange, Difficulty: 0.93, Apply: indexArithmetic},
		{Name: "reg-to-wire", Category: diag.CatInvalidLValue, Difficulty: 0.20, Apply: regToWire},
		{Name: "wire-to-reg", Category: diag.CatAssignToReg, Difficulty: 0.20, Apply: wireToReg},
		{Name: "c-style-increment", Category: diag.CatCStyleSyntax, Difficulty: 0.14, Apply: cStyleIncrement},
		{Name: "c-style-compound", Category: diag.CatCStyleSyntax, Difficulty: 0.16, Apply: cStyleCompound},
		{Name: "c-style-braces", Category: diag.CatCStyleSyntax, Difficulty: 0.38, Apply: cStyleBraces},
		{Name: "misplaced-timescale", Category: diag.CatMisplacedDirective, Difficulty: 0.04, Apply: misplacedTimescale},
		{Name: "keyword-as-ident", Category: diag.CatKeywordAsIdent, Difficulty: 0.24, Apply: keywordAsIdent},
		{Name: "malformed-literal", Category: diag.CatMalformedLiteral, Difficulty: 0.15, Apply: malformedLiteral},
		{Name: "duplicate-decl", Category: diag.CatDuplicateDecl, Difficulty: 0.10, Apply: duplicateDecl},
		{Name: "drop-sensitivity", Category: diag.CatSensitivityList, Difficulty: 0.20, Apply: dropSensitivity},
		{Name: "slice-overflow", Category: diag.CatIndexOutOfRange, Difficulty: 0.55, Apply: sliceOverflow},
	}
}

// ByName returns the named mutator.
func ByName(name string) (Mutator, bool) {
	for _, m := range All() {
		if m.Name == name {
			return m, true
		}
	}
	return Mutator{}, false
}

// Inject applies the given mutator to src. ok is false when the mutator
// found no applicable site.
func Inject(src string, m Mutator, rng *rand.Rand) (string, Mutation, bool) {
	out, line, ok := m.Apply(src, rng)
	if !ok {
		return src, Mutation{}, false
	}
	return out, Mutation{
		Mutator:    m.Name,
		Category:   m.Category,
		Difficulty: m.Difficulty,
		Line:       line,
	}, true
}

// InjectRandom applies up to k distinct random mutators, producing
// multi-error samples (the cascades that reward iterative debugging).
// It returns the mutated source and the mutations actually applied.
func InjectRandom(src string, k int, rng *rand.Rand) (string, []Mutation) {
	muts := All()
	rng.Shuffle(len(muts), func(i, j int) { muts[i], muts[j] = muts[j], muts[i] })
	out := src
	var applied []Mutation
	for _, m := range muts {
		if len(applied) >= k {
			break
		}
		next, mut, ok := Inject(out, m, rng)
		if !ok {
			continue
		}
		out = next
		applied = append(applied, mut)
	}
	return out, applied
}

// ---------- helpers ----------

type linePred func(trimmed string) bool

// pickLine returns a random line index satisfying pred, or -1.
func pickLine(lines []string, rng *rand.Rand, pred linePred) int {
	var candidates []int
	for i, l := range lines {
		if pred(strings.TrimSpace(l)) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rng.Intn(len(candidates))]
}

func joinLines(lines []string) string { return strings.Join(lines, "\n") }

// ---------- mutators ----------

func dropSemicolon(src string, rng *rand.Rand) (string, int, bool) {
	lines := strings.Split(src, "\n")
	idx := pickLine(lines, rng, func(t string) bool {
		return strings.HasSuffix(t, ";") &&
			(strings.HasPrefix(t, "assign") || strings.Contains(t, "<=") ||
				strings.HasPrefix(t, "wire") || strings.HasPrefix(t, "reg") ||
				strings.HasPrefix(t, "integer"))
	})
	if idx < 0 {
		return src, 0, false
	}
	lines[idx] = strings.TrimSuffix(strings.TrimRight(lines[idx], " \t"), ";")
	return joinLines(lines), idx + 1, true
}

func dropEnd(src string, rng *rand.Rand) (string, int, bool) {
	lines := strings.Split(src, "\n")
	idx := pickLine(lines, rng, func(t string) bool { return t == "end" })
	if idx < 0 {
		return src, 0, false
	}
	lines = append(lines[:idx], lines[idx+1:]...)
	return joinLines(lines), idx + 1, true
}

func dropEndmodule(src string, _ *rand.Rand) (string, int, bool) {
	idx := strings.LastIndex(src, "endmodule")
	if idx < 0 {
		return src, 0, false
	}
	line := strings.Count(src[:idx], "\n") + 1
	return src[:idx] + src[idx+len("endmodule"):], line, true
}

// dropClockPort removes 'clk' (or another single-bit control input) from
// the port list while the body keeps using it — the paper's canonical
// undeclared-object case (Fig. 5).
var clockPortRe = regexp.MustCompile(`(?m)^\s*input\s+(clk|clock|rst|reset|areset|en|ena)\s*,?\s*$`)

func dropClockPort(src string, _ *rand.Rand) (string, int, bool) {
	loc := clockPortRe.FindStringIndex(src)
	if loc == nil {
		return src, 0, false
	}
	name := strings.TrimSpace(src[loc[0]:loc[1]])
	name = strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(name, "input")), ",")
	// The body must actually use it, and it must not be the only port
	// mention that keeps the list parseable.
	body := src[loc[1]:]
	if !strings.Contains(body, name) {
		return src, 0, false
	}
	line := strings.Count(src[:loc[0]], "\n") + 1
	out := src[:loc[0]] + src[loc[1]:]
	return out, line, true
}

// identUseRe matches identifier uses; the leading group excludes based
// literals (8'hff would otherwise offer "hff" as an identifier).
var identUseRe = regexp.MustCompile(`(^|[^'A-Za-z0-9_])([a-z][a-z0-9_]{2,})\b`)

// misspellIdent renames one use (not the declaration) of a signal.
func misspellIdent(src string, rng *rand.Rand) (string, int, bool) {
	lines := strings.Split(src, "\n")
	// Only mutate inside expressions on assign/always body lines.
	idx := pickLine(lines, rng, func(t string) bool {
		return (strings.HasPrefix(t, "assign") || strings.Contains(t, "<=") ||
			(strings.Contains(t, "=") && !strings.Contains(t, "=="))) &&
			!strings.Contains(t, "parameter")
	})
	if idx < 0 {
		return src, 0, false
	}
	line := lines[idx]
	eq := strings.Index(line, "=")
	if eq < 0 {
		return src, 0, false
	}
	rhs := line[eq:]
	m := identUseRe.FindAllStringSubmatchIndex(rhs, -1)
	var usable [][]int
	for _, span := range m {
		word := rhs[span[4]:span[5]]
		if isReserved(word) {
			continue
		}
		usable = append(usable, []int{span[4], span[5]})
	}
	if len(usable) == 0 {
		return src, 0, false
	}
	span := usable[rng.Intn(len(usable))]
	word := rhs[span[0]:span[1]]
	misspelled := word + "_r"
	if strings.HasSuffix(word, "_r") {
		misspelled = strings.TrimSuffix(word, "_r")
	}
	lines[idx] = line[:eq] + rhs[:span[0]] + misspelled + rhs[span[1]:]
	return joinLines(lines), idx + 1, true
}

func isReserved(w string) bool {
	switch w {
	case "assign", "always", "begin", "end", "posedge", "negedge", "input",
		"output", "wire", "reg", "integer", "module", "endmodule", "case",
		"endcase", "default", "else", "for", "int", "localparam",
		"parameter", "signed", "logic", "genvar", "casez", "casex", "initial":
		return true
	}
	return false
}

var rangeDeclRe = regexp.MustCompile(`\[(\d+):0\]\s*([a-zA-Z_][a-zA-Z0-9_]*)`)
var constIndexRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)\[(\d+)\]`)

// indexOverflow bumps a constant index to one past the declared MSB, the
// paper's Fig. 2a error (out[8] on [7:0]).
func indexOverflow(src string, rng *rand.Rand) (string, int, bool) {
	widths := map[string]int{}
	for _, m := range rangeDeclRe.FindAllStringSubmatch(src, -1) {
		var msb int
		fmt.Sscanf(m[1], "%d", &msb)
		widths[m[2]] = msb
	}
	if len(widths) == 0 {
		return src, 0, false
	}
	idxs := constIndexRe.FindAllStringSubmatchIndex(src, -1)
	var usable [][]int
	for _, span := range idxs {
		name := src[span[2]:span[3]]
		var val int
		fmt.Sscanf(src[span[4]:span[5]], "%d", &val)
		if msb, ok := widths[name]; ok && val == msb {
			usable = append(usable, span)
		}
	}
	if len(usable) == 0 {
		return src, 0, false
	}
	span := usable[rng.Intn(len(usable))]
	var msb int
	fmt.Sscanf(src[span[4]:span[5]], "%d", &msb)
	out := src[:span[4]] + fmt.Sprintf("%d", msb+1) + src[span[5]:]
	line := strings.Count(src[:span[0]], "\n") + 1
	return out, line, true
}

// indexArithmetic replaces a simple loop-bounded index with arithmetic
// that folds to a negative constant — the paper's Fig. 6 failure case,
// which requires arithmetic reasoning to repair.
func indexArithmetic(src string, rng *rand.Rand) (string, int, bool) {
	widths := map[string]int{}
	for _, m := range rangeDeclRe.FindAllStringSubmatch(src, -1) {
		var msb int
		fmt.Sscanf(m[1], "%d", &msb)
		widths[m[2]] = msb
	}
	idxs := constIndexRe.FindAllStringSubmatchIndex(src, -1)
	var usable [][]int
	for _, span := range idxs {
		name := src[span[2]:span[3]]
		if _, ok := widths[name]; ok {
			usable = append(usable, span)
		}
	}
	if len(usable) == 0 {
		return src, 0, false
	}
	span := usable[rng.Intn(len(usable))]
	name := src[span[2]:span[3]]
	msb := widths[name]
	// (0-1)*K + old : folds negative regardless of old value.
	k := 1 + rng.Intn(15)
	old := src[span[4]:span[5]]
	out := src[:span[4]] + fmt.Sprintf("(0-1)*%d + %s", k, old) + src[span[5]:]
	_ = msb
	line := strings.Count(src[:span[0]], "\n") + 1
	return out, line, true
}

var outputRegRe = regexp.MustCompile(`output\s+reg\b`)

// regToWire strips 'reg' from an 'output reg' port that an always block
// drives — iverilog's "not a valid l-value".
func regToWire(src string, _ *rand.Rand) (string, int, bool) {
	if !strings.Contains(src, "always") {
		return src, 0, false
	}
	loc := outputRegRe.FindStringIndex(src)
	if loc == nil {
		return src, 0, false
	}
	line := strings.Count(src[:loc[0]], "\n") + 1
	out := src[:loc[0]] + "output" + src[loc[1]:]
	return out, line, true
}

var assignTargetRe = regexp.MustCompile(`(?m)^\s*assign\s+([a-zA-Z_][a-zA-Z0-9_]*)`)

// wireToReg turns an assign-driven output into a reg.
func wireToReg(src string, _ *rand.Rand) (string, int, bool) {
	m := assignTargetRe.FindStringSubmatch(src)
	if m == nil {
		return src, 0, false
	}
	target := m[1]
	// Find its declaration in the header: "output [..] target" or
	// "output target".
	declRe := regexp.MustCompile(`output\s+(\[[^\]]+\]\s*)?` + regexp.QuoteMeta(target) + `\b`)
	loc := declRe.FindStringIndex(src)
	if loc == nil {
		return src, 0, false
	}
	seg := src[loc[0]:loc[1]]
	if strings.Contains(seg, "reg") {
		return src, 0, false
	}
	out := src[:loc[0]] + strings.Replace(seg, "output", "output reg", 1) + src[loc[1]:]
	line := strings.Count(src[:loc[0]], "\n") + 1
	return out, line, true
}

var incrementRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*\+\s*1\b`)

// cStyleIncrement turns 'i = i + 1' into 'i++'.
func cStyleIncrement(src string, _ *rand.Rand) (string, int, bool) {
	for _, m := range incrementRe.FindAllStringSubmatchIndex(src, -1) {
		a := src[m[2]:m[3]]
		b := src[m[4]:m[5]]
		if a != b {
			continue
		}
		out := src[:m[0]] + a + "++" + src[m[1]:]
		line := strings.Count(src[:m[0]], "\n") + 1
		return out, line, true
	}
	return src, 0, false
}

var compoundRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)\s*(<=|=)\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*([+\-|&^])\s*`)

// cStyleCompound turns 'x = x + y' into 'x += y' (and the <= variant).
func cStyleCompound(src string, _ *rand.Rand) (string, int, bool) {
	for _, m := range compoundRe.FindAllStringSubmatchIndex(src, -1) {
		lhs := src[m[2]:m[3]]
		rhs := src[m[6]:m[7]]
		if lhs != rhs {
			continue
		}
		op := src[m[8]:m[9]]
		out := src[:m[0]] + lhs + " " + op + "= " + src[m[1]:]
		line := strings.Count(src[:m[0]], "\n") + 1
		return out, line, true
	}
	return src, 0, false
}

// cStyleBraces replaces one begin/end pair with C braces.
func cStyleBraces(src string, rng *rand.Rand) (string, int, bool) {
	lines := strings.Split(src, "\n")
	beginIdx := pickLine(lines, rng, func(t string) bool {
		return strings.HasSuffix(t, "begin") && !strings.HasPrefix(t, "module")
	})
	if beginIdx < 0 {
		return src, 0, false
	}
	depth := 0
	endIdx := -1
	for i := beginIdx; i < len(lines); i++ {
		t := strings.TrimSpace(lines[i])
		depth += strings.Count(t, "begin")
		if t == "end" || strings.HasPrefix(t, "end ") || strings.HasSuffix(t, " end") {
			depth--
			if depth == 0 {
				endIdx = i
				break
			}
		}
	}
	if endIdx < 0 {
		return src, 0, false
	}
	lines[beginIdx] = strings.Replace(lines[beginIdx], "begin", "{", 1)
	lines[endIdx] = strings.Replace(lines[endIdx], "end", "}", 1)
	return joinLines(lines), beginIdx + 1, true
}

// misplacedTimescale inserts a `timescale directive inside the module.
func misplacedTimescale(src string, rng *rand.Rand) (string, int, bool) {
	lines := strings.Split(src, "\n")
	idx := pickLine(lines, rng, func(t string) bool {
		return strings.HasPrefix(t, "assign") || strings.HasPrefix(t, "always")
	})
	if idx < 0 {
		return src, 0, false
	}
	out := append(lines[:idx:idx], append([]string{"`timescale 1ns/1ps"}, lines[idx:]...)...)
	return joinLines(out), idx + 1, true
}

// keywordAsIdent declares an internal wire named after a reserved word.
func keywordAsIdent(src string, rng *rand.Rand) (string, int, bool) {
	lines := strings.Split(src, "\n")
	idx := pickLine(lines, rng, func(t string) bool {
		return strings.HasPrefix(t, "assign") || strings.HasPrefix(t, "always") ||
			strings.HasPrefix(t, "wire") || strings.HasPrefix(t, "reg")
	})
	if idx < 0 {
		return src, 0, false
	}
	kw := []string{"case", "begin", "wire", "reg"}[rng.Intn(4)]
	out := append(lines[:idx:idx], append([]string{"\twire " + kw + ";"}, lines[idx:]...)...)
	return joinLines(out), idx + 1, true
}

var literalRe = regexp.MustCompile(`(\d+)'([bh])([0-9a-fA-F_]+)`)

// malformedLiteral corrupts one sized literal's digits.
func malformedLiteral(src string, rng *rand.Rand) (string, int, bool) {
	m := literalRe.FindAllStringSubmatchIndex(src, -1)
	if len(m) == 0 {
		return src, 0, false
	}
	span := m[rng.Intn(len(m))]
	base := src[span[4]:span[5]]
	var badDigit string
	if base == "b" {
		badDigit = "2"
	} else {
		badDigit = "g"
	}
	out := src[:span[6]] + badDigit + src[span[6]:]
	line := strings.Count(src[:span[0]], "\n") + 1
	return out, line, true
}

var wireDeclLineRe = regexp.MustCompile(`(?m)^\s*(wire|reg)\s+(\[[^\]]+\]\s*)?[a-zA-Z_][a-zA-Z0-9_]*\s*;\s*$`)

// duplicateDecl duplicates an internal declaration line.
func duplicateDecl(src string, _ *rand.Rand) (string, int, bool) {
	loc := wireDeclLineRe.FindStringIndex(src)
	if loc == nil {
		return src, 0, false
	}
	decl := src[loc[0]:loc[1]]
	out := src[:loc[1]] + "\n" + decl + src[loc[1]:]
	line := strings.Count(src[:loc[0]], "\n") + 2
	return out, line, true
}

var sensitivityRe = regexp.MustCompile(`always\s*@\s*(\(\s*[^)]*\)|\*)`)

// dropSensitivity deletes the event control from an always block.
func dropSensitivity(src string, _ *rand.Rand) (string, int, bool) {
	loc := sensitivityRe.FindStringIndex(src)
	if loc == nil {
		return src, 0, false
	}
	line := strings.Count(src[:loc[0]], "\n") + 1
	out := src[:loc[0]] + "always" + src[loc[1]:]
	return out, line, true
}

var sliceRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)\[(\d+):(\d+)\]`)

// sliceOverflow shifts a part-select past the declared MSB.
func sliceOverflow(src string, rng *rand.Rand) (string, int, bool) {
	widths := map[string]int{}
	for _, m := range rangeDeclRe.FindAllStringSubmatch(src, -1) {
		var msb int
		fmt.Sscanf(m[1], "%d", &msb)
		widths[m[2]] = msb
	}
	spans := sliceRe.FindAllStringSubmatchIndex(src, -1)
	var usable [][]int
	for _, span := range spans {
		name := src[span[2]:span[3]]
		var hi int
		fmt.Sscanf(src[span[4]:span[5]], "%d", &hi)
		if msb, ok := widths[name]; ok && hi == msb && msb > 0 {
			// skip the declaration itself: it matches "name[msb:0]" only
			// when written as a select, and declarations use "[msb:0] name"
			usable = append(usable, span)
		}
	}
	if len(usable) == 0 {
		return src, 0, false
	}
	span := usable[rng.Intn(len(usable))]
	var hi, lo int
	fmt.Sscanf(src[span[4]:span[5]], "%d", &hi)
	fmt.Sscanf(src[span[6]:span[7]], "%d", &lo)
	out := src[:span[4]] + fmt.Sprintf("%d:%d", hi+1, lo+1) + src[span[5]:]
	// The replacement covers "hi" through before "]"; rebuild precisely:
	out = src[:span[4]] + fmt.Sprintf("%d", hi+1) + src[span[5]:span[6]] + fmt.Sprintf("%d", lo+1) + src[span[7]:]
	line := strings.Count(src[:span[0]], "\n") + 1
	return out, line, true
}
