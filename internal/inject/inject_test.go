package inject

import (
	"math/rand"
	"testing"

	"repro/internal/compiler"
	"repro/internal/dataset"
	"repro/internal/diag"
)

// fixtures with enough structure for every mutator to find a site.
const richFixture = `module top_module (
	input clk,
	input reset,
	input [7:0] in,
	output reg [7:0] out,
	output [7:0] inv
);
	wire [7:0] tmp;
	assign tmp = in ^ 8'hff;
	assign inv = tmp;
	always @(posedge clk) begin
		if (reset)
			out <= 0;
		else begin
			for (int i = 0; i < 8; i = i + 1)
				out[i] <= in[7 - i];
		end
	end
endmodule
`

func TestEveryMutatorHasDistinctName(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range All() {
		if seen[m.Name] {
			t.Errorf("duplicate mutator name %s", m.Name)
		}
		seen[m.Name] = true
		if m.Difficulty <= 0 || m.Difficulty >= 1 {
			t.Errorf("%s: difficulty %.2f out of (0,1)", m.Name, m.Difficulty)
		}
		if m.Category == diag.CatNone {
			t.Errorf("%s: no category", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("drop-semicolon"); !ok {
		t.Fatal("drop-semicolon missing")
	}
	if _, ok := ByName("no-such"); ok {
		t.Fatal("unknown mutator resolved")
	}
}

// TestMutatorsBreakCompilation is the injector's core contract: applying a
// mutator to compiling code must produce non-compiling code (checked on
// the rich fixture for every applicable mutator).
func TestMutatorsBreakCompilation(t *testing.T) {
	if _, design, diags := compiler.Frontend(richFixture); design == nil {
		t.Fatalf("fixture broken: %s", diags.Summary())
	}
	rng := rand.New(rand.NewSource(42))
	applicable := 0
	for _, m := range All() {
		out, mut, ok := Inject(richFixture, m, rng)
		if !ok {
			continue
		}
		applicable++
		if out == richFixture {
			t.Errorf("%s: claimed applied but output unchanged", m.Name)
			continue
		}
		if mut.Line <= 0 {
			t.Errorf("%s: mutation has no line", m.Name)
		}
		_, design, _ := compiler.Frontend(out)
		// misplaced-timescale is special: the rule-based fixer repairs it
		// pre-compile, but the raw injection must still fail the frontend.
		if design != nil {
			t.Errorf("%s: mutated code still compiles:\n%s", m.Name, out)
		}
	}
	if applicable < 12 {
		t.Errorf("only %d mutators applicable to the rich fixture", applicable)
	}
}

// TestMutationCategoryMatchesDiagnostic checks that the compiler reports
// the category each mutator promises (on the first error), for the
// mutators with precise category contracts.
func TestMutationCategoryMatchesDiagnostic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Categories where recovery or masking can legitimately shift the
	// first reported error are exempted.
	exempt := map[string]bool{
		"drop-end": true, "c-style-braces": true, "drop-sensitivity": true,
		"keyword-as-ident": true,
	}
	for _, m := range All() {
		if exempt[m.Name] {
			continue
		}
		out, mut, ok := Inject(richFixture, m, rng)
		if !ok {
			continue
		}
		_, _, diags := compiler.Frontend(out)
		found := false
		for _, d := range diags.Errors() {
			if d.Category == mut.Category {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: expected category %s in diagnostics, got %s\ncode:\n%s",
				m.Name, mut.Category, diags.Summary(), out)
		}
	}
}

// TestInjectRandomAppliesRequestedCount verifies multi-error injection.
func TestInjectRandomAppliesRequestedCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := map[int]int{}
	for i := 0; i < 50; i++ {
		_, muts := InjectRandom(richFixture, 2, rng)
		counts[len(muts)]++
	}
	if counts[2] == 0 {
		t.Error("two-error injection never succeeded")
	}
	if counts[0] > 0 {
		t.Error("injection failed entirely on the rich fixture")
	}
}

// TestMutatorsOverDatasetCorpus is the integration property test: across
// the benchmark corpus, injection must (a) usually apply, and (b) always
// break compilation when it claims to have applied.
func TestMutatorsOverDatasetCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	applied, broke := 0, 0
	for _, p := range dataset.Problems(dataset.SuiteHuman) {
		out, muts := InjectRandom(p.RefSource, 1, rng)
		if len(muts) == 0 {
			continue
		}
		applied++
		if _, design, _ := compiler.Frontend(out); design == nil {
			broke++
		}
	}
	if applied < 140 {
		t.Errorf("injection applied to only %d/156 problems", applied)
	}
	if float64(broke)/float64(applied) < 0.95 {
		t.Errorf("only %d/%d injections broke compilation", broke, applied)
	}
}

func TestInjectInapplicableReturnsFalse(t *testing.T) {
	tiny := "module m; endmodule"
	m, _ := ByName("c-style-increment")
	if _, _, ok := Inject(tiny, m, rand.New(rand.NewSource(1))); ok {
		t.Fatal("c-style-increment cannot apply to an empty module")
	}
}

func TestDropClockPortReproducesPaperCase(t *testing.T) {
	src := `module top_module (
	input clk,
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1)
			out[i] <= in[99 - i];
	end
endmodule
`
	m, _ := ByName("drop-clock-port")
	out, mut, ok := Inject(src, m, rand.New(rand.NewSource(1)))
	if !ok {
		t.Fatal("drop-clock-port did not apply")
	}
	if mut.Category != diag.CatUndeclaredIdent {
		t.Fatalf("category = %s", mut.Category)
	}
	_, _, diags := compiler.Frontend(out)
	first, okf := diags.First()
	if !okf || first.Symbol != "clk" {
		t.Fatalf("expected undeclared clk, got %s", diags.Summary())
	}
}
