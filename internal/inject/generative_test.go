package inject

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"repro/internal/compiler"
)

// hazardFixture has a site for every hazard mutator: a whole-reg
// blocking store, a non-blocking store, a for loop over a module-level
// integer, a posedge clock, and constant part-selects.
const hazardFixture = `module m(input clk, input [7:0] d, output reg [7:0] q, output reg [7:0] r);
	integer i;
	always @(posedge clk) begin
		q = d;
		q[3:0] = d[7:4];
	end
	always @(posedge clk) begin
		for (i = 0; i < 4; i = i + 1)
			r[i] <= d[i];
	end
endmodule
`

// combFixture exercises the mutators on an @(*) block.
const combFixture = `module m(input [7:0] a, input [7:0] b, output reg [7:0] y);
	always @(*) begin
		y = a;
		y[6:2] = b[4:0];
	end
endmodule
`

func TestHazardNamesAndLookup(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Hazards() {
		if !strings.HasPrefix(m.Name, "hazard-") {
			t.Errorf("%s: hazard mutators must carry the hazard- prefix", m.Name)
		}
		if seen[m.Name] {
			t.Errorf("duplicate hazard name %s", m.Name)
		}
		seen[m.Name] = true
		if m.Difficulty <= 0 || m.Difficulty > 1 {
			t.Errorf("%s: difficulty %.2f out of (0,1]", m.Name, m.Difficulty)
		}
		got, ok := HazardByName(m.Name)
		if !ok || got.Name != m.Name {
			t.Errorf("HazardByName(%s) failed", m.Name)
		}
	}
	if _, ok := HazardByName("no-such-hazard"); ok {
		t.Error("unknown hazard resolved")
	}
	// The error injectors and the hazard mutators are separate registries.
	if _, ok := ByName("hazard-alias-slice-store"); ok {
		t.Error("hazard mutator leaked into All()")
	}
}

// TestHazardsPreserveValidity is the hazard contract, the dual of
// TestMutatorsBreakCompilation: applying a hazard mutator to valid
// Verilog must yield Verilog that still parses and elaborates cleanly.
func TestHazardsPreserveValidity(t *testing.T) {
	for _, fixture := range []string{hazardFixture, combFixture} {
		if _, design, diags := compiler.Frontend(fixture); design == nil || diags.HasErrors() {
			t.Fatalf("fixture broken: %s", diags.Summary())
		}
		for _, m := range Hazards() {
			applied := 0
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				out, line, ok := m.Apply(fixture, rng)
				if !ok {
					if out != fixture {
						t.Fatalf("%s: inapplicable but modified source", m.Name)
					}
					continue
				}
				applied++
				if line <= 0 {
					t.Errorf("%s: applied without a site line", m.Name)
				}
				if _, design, diags := compiler.Frontend(out); design == nil || diags.HasErrors() {
					t.Errorf("%s (seed %d): output no longer compiles: %s\n%s",
						m.Name, seed, diags.Summary(), out)
				}
			}
			if fixture == hazardFixture && applied == 0 {
				t.Errorf("%s: never applicable on the rich fixture", m.Name)
			}
		}
	}
}

// TestHazardDeterminism pins the replay contract the fuzz campaigns
// depend on: the same (source, seed) always yields the same mutation.
func TestHazardDeterminism(t *testing.T) {
	for _, m := range Hazards() {
		var first []string
		for run := 0; run < 2; run++ {
			var outs []string
			for seed := int64(0); seed < 10; seed++ {
				out, _, _ := m.Apply(hazardFixture, rand.New(rand.NewSource(seed)))
				outs = append(outs, out)
			}
			if run == 0 {
				first = outs
				continue
			}
			for i := range outs {
				if outs[i] != first[i] {
					t.Fatalf("%s: seed %d not deterministic", m.Name, i)
				}
			}
		}
		// Distinct seeds should explore distinct sites at least once.
		distinct := map[string]bool{}
		for _, o := range first {
			distinct[o] = true
		}
		if len(distinct) < 2 && m.Name != "hazard-duplicate-always" {
			t.Logf("%s: all 10 seeds chose the same site (fixture may have one)", m.Name)
		}
	}
}

// TestAliasSliceStoreShape checks the inserted statement is the exact
// copy-on-alias construct: a sub-range store reading the target itself.
func TestAliasSliceStoreShape(t *testing.T) {
	m, _ := HazardByName("hazard-alias-slice-store")
	out, _, ok := m.Apply(hazardFixture, rand.New(rand.NewSource(3)))
	if !ok {
		t.Fatal("inapplicable on fixture")
	}
	re := regexp.MustCompile(`(\w+)\[(\d+):(\d+)\] = (\w+);`)
	for _, match := range re.FindAllStringSubmatch(out, -1) {
		if match[1] == match[4] {
			return // found name[h:l] = name;
		}
	}
	t.Fatalf("no self-aliasing slice store inserted:\n%s", out)
}

// TestSharedLoopVarShape checks the appended block reuses the existing
// loop variable on a fresh target.
func TestSharedLoopVarShape(t *testing.T) {
	m, _ := HazardByName("hazard-shared-loopvar")
	out, _, ok := m.Apply(hazardFixture, rand.New(rand.NewSource(1)))
	if !ok {
		t.Fatal("inapplicable on fixture")
	}
	if !strings.Contains(out, "zz_dup") || strings.Count(out, "for (i = 0;") != 2 {
		t.Fatalf("appended block must reuse loop var i on zz_dup:\n%s", out)
	}
	if strings.Count(out, "always @(posedge clk)") != 3 {
		t.Fatalf("expected a third same-edge block:\n%s", out)
	}
}
