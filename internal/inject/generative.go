package inject

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strings"
)

// Hazard mutators perturb *valid* Verilog toward the walker-vs-engine
// divergence space, reusing the same Mutator plumbing the error
// injectors use. Unlike the injectors in inject.go, these are
// validity-preserving: the output must still parse and elaborate (the
// fuzz harness re-validates and skips the rare miss). internal/fuzz
// layers them on top of its generated modules so every campaign also
// explores mutated shapes, not just template instantiations.

// Hazards returns the validity-preserving hazard mutators, in a stable
// order. Category is left zero and Difficulty encodes how often the
// mutator historically produced a divergence-class construct.
func Hazards() []Mutator {
	return []Mutator{
		{Name: "hazard-alias-slice-store", Difficulty: 0.9, Apply: aliasSliceStore},
		{Name: "hazard-blocking-swap", Difficulty: 0.7, Apply: blockingSwap},
		{Name: "hazard-shared-loopvar", Difficulty: 0.8, Apply: sharedLoopVar},
		{Name: "hazard-duplicate-always", Difficulty: 0.6, Apply: duplicateAlways},
		{Name: "hazard-slice-to-indexed", Difficulty: 0.5, Apply: sliceToIndexed},
	}
}

// HazardByName returns the named hazard mutator.
func HazardByName(name string) (Mutator, bool) {
	for _, m := range Hazards() {
		if m.Name == name {
			return m, true
		}
	}
	return Mutator{}, false
}

// procAssignRe matches a whole-reg blocking assignment line inside a
// process body: "name = expr;" (not ==, <=, >=, assign, for, decl).
var procAssignRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)\s*=[^=]`)

// aliasSliceStore finds a blocking whole-reg store "q = expr;" on a reg
// with a known [msb:0] range and appends "q[h:l] = q;" right after it —
// the copy-on-alias construct of the first shipped engine bug.
func aliasSliceStore(src string, rng *rand.Rand) (string, int, bool) {
	widths := declaredWidths(src)
	lines := strings.Split(src, "\n")
	idx := pickLine(lines, rng, func(t string) bool {
		m := procAssignRe.FindStringSubmatch(t)
		if m == nil || strings.HasPrefix(t, "assign") || strings.HasPrefix(t, "for") ||
			strings.HasPrefix(t, "wire") || strings.HasPrefix(t, "reg") ||
			strings.HasPrefix(t, "integer") || strings.HasPrefix(t, "localparam") ||
			strings.HasPrefix(t, "parameter") || !strings.HasSuffix(t, ";") {
			return false
		}
		msb, ok := widths[m[1]]
		return ok && msb >= 2
	})
	if idx < 0 {
		return src, 0, false
	}
	name := procAssignRe.FindStringSubmatch(strings.TrimSpace(lines[idx]))[1]
	msb := widths[name]
	// Random sub-range shifted off zero so source and destination bits
	// genuinely overlap-and-move.
	lo := 1 + rng.Intn(msb-1)
	hi := lo + rng.Intn(msb-lo)
	indent := lines[idx][:len(lines[idx])-len(strings.TrimLeft(lines[idx], " \t"))]
	store := fmt.Sprintf("%s%s[%d:%d] = %s;", indent, name, hi, lo, name)
	out := append(lines[:idx+1:idx+1], append([]string{store}, lines[idx+1:]...)...)
	return joinLines(out), idx + 2, true
}

// nbaLineRe matches a non-blocking assignment "target <= expr;" where
// target may carry an index or slice.
var nbaLineRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*(\[[^\]]+\])?)\s*<=\s*[^;]+;$`)

// blockingSwap flips one non-blocking assignment to blocking (or the
// reverse), perturbing the intra-block ordering the two backends must
// agree on.
func blockingSwap(src string, rng *rand.Rand) (string, int, bool) {
	lines := strings.Split(src, "\n")
	idx := pickLine(lines, rng, func(t string) bool {
		return nbaLineRe.MatchString(t)
	})
	if idx >= 0 && rng.Intn(2) == 0 {
		lines[idx] = strings.Replace(lines[idx], "<=", "=", 1)
		return joinLines(lines), idx + 1, true
	}
	// Reverse direction: promote a procedural blocking store to NBA.
	widths := declaredWidths(src)
	idx = pickLine(lines, rng, func(t string) bool {
		m := procAssignRe.FindStringSubmatch(t)
		if m == nil || strings.HasPrefix(t, "assign") || strings.HasPrefix(t, "for") ||
			!strings.HasSuffix(t, ";") {
			return false
		}
		_, ok := widths[m[1]]
		return ok
	})
	if idx < 0 {
		return src, 0, false
	}
	lines[idx] = strings.Replace(lines[idx], "=", "<=", 1)
	return joinLines(lines), idx + 1, true
}

var forLoopRe = regexp.MustCompile(`for\s*\(\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=`)
var posedgeRe = regexp.MustCompile(`posedge\s+([a-zA-Z_][a-zA-Z0-9_]*)`)

// sharedLoopVar appends a second same-edge always block that reuses an
// existing loop variable name on a fresh target reg — the per-block
// scoping construct of the second shipped engine bug.
func sharedLoopVar(src string, rng *rand.Rand) (string, int, bool) {
	loopVar := forLoopRe.FindStringSubmatch(src)
	clock := posedgeRe.FindStringSubmatch(src)
	if loopVar == nil || clock == nil || !strings.Contains(src, "integer "+loopVar[1]) {
		return src, 0, false
	}
	widths := declaredWidths(src)
	// Pick any ranged signal as the data source.
	var srcs []string
	for name, msb := range widths {
		if msb >= 2 {
			srcs = append(srcs, name)
		}
	}
	if len(srcs) == 0 {
		return src, 0, false
	}
	sort.Strings(srcs)
	data := srcs[rng.Intn(len(srcs))]
	bound := 2 + rng.Intn(widths[data])
	if bound > widths[data]+1 {
		bound = widths[data] + 1
	}
	i := loopVar[1]
	block := fmt.Sprintf(
		"\treg [%d:0] zz_dup;\n\talways @(posedge %s) begin\n\t\tfor (%s = 0; %s < %d; %s = %s + 1)\n\t\t\tzz_dup[%s] <= %s[%s];\n\tend\n",
		bound-1, clock[1], i, i, bound, i, i, i, data, i)
	idx := strings.LastIndex(src, "endmodule")
	if idx < 0 || strings.Contains(src, "zz_dup") {
		return src, 0, false
	}
	line := strings.Count(src[:idx], "\n") + 1
	return src[:idx] + block + src[idx:], line, true
}

// duplicateAlways duplicates one always block verbatim. The targets
// become multi-driven (warning-level), so both backends must agree on
// block-order semantics: walker fires blocks in declaration order and
// the engine merges its queues the same way.
func duplicateAlways(src string, rng *rand.Rand) (string, int, bool) {
	lines := strings.Split(src, "\n")
	starts := []int{}
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "always") {
			starts = append(starts, i)
		}
	}
	if len(starts) == 0 {
		return src, 0, false
	}
	start := starts[rng.Intn(len(starts))]
	end := alwaysEnd(lines, start)
	if end < 0 {
		return src, 0, false
	}
	block := append([]string{}, lines[start:end+1]...)
	out := append(lines[:end+1:end+1], append(block, lines[end+1:]...)...)
	return joinLines(out), end + 2, true
}

// alwaysEnd finds the last line of the always block starting at start:
// either the matching "end" for its begin, or the first statement line.
func alwaysEnd(lines []string, start int) int {
	depth := 0
	seenBegin := false
	for i := start; i < len(lines); i++ {
		t := strings.TrimSpace(lines[i])
		depth += strings.Count(t, "begin")
		if strings.Count(t, "begin") > 0 {
			seenBegin = true
		}
		if t == "end" || strings.HasPrefix(t, "end ") {
			depth--
			if seenBegin && depth == 0 {
				return i
			}
		}
		if !seenBegin && i > start && strings.HasSuffix(t, ";") {
			return i
		}
	}
	return -1
}

// sliceToIndexed rewrites one constant part-select x[h:l] into the
// equivalent indexed form x[l +: w], steering compilation down the
// dynamic-select path.
func sliceToIndexed(src string, rng *rand.Rand) (string, int, bool) {
	spans := sliceRe.FindAllStringSubmatchIndex(src, -1)
	var usable [][]int
	for _, span := range spans {
		// Skip declaration ranges: they are preceded by '[' at a decl
		// position only when the match starts a "[h:l] name" — the
		// regex requires a leading identifier, so decls never match.
		var hi, lo int
		fmt.Sscanf(src[span[4]:span[5]], "%d", &hi)
		fmt.Sscanf(src[span[6]:span[7]], "%d", &lo)
		if hi >= lo {
			usable = append(usable, span)
		}
	}
	if len(usable) == 0 {
		return src, 0, false
	}
	span := usable[rng.Intn(len(usable))]
	var hi, lo int
	fmt.Sscanf(src[span[4]:span[5]], "%d", &hi)
	fmt.Sscanf(src[span[6]:span[7]], "%d", &lo)
	out := src[:span[4]] + fmt.Sprintf("%d +: %d", lo, hi-lo+1) + src[span[7]:]
	line := strings.Count(src[:span[0]], "\n") + 1
	return out, line, true
}

// declaredWidths maps every "[msb:0] name" declaration to its MSB.
func declaredWidths(src string) map[string]int {
	widths := map[string]int{}
	for _, m := range rangeDeclRe.FindAllStringSubmatch(src, -1) {
		var msb int
		fmt.Sscanf(m[1], "%d", &msb)
		widths[m[2]] = msb
	}
	return widths
}
