// Live serving metrics for the fix service: a lock-free counter, a gauge,
// and a fixed-bucket exponential histogram for latency percentiles. These
// complement the paper-evaluation metrics in metrics.go: those score a
// finished batch, these observe a running server. Everything here is
// standard-library only (the repo's no-new-dependencies rule) and safe for
// concurrent use.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, in-flight runs). It may
// go up and down but never below zero in correct use.
type Gauge struct{ v atomic.Int64 }

// Inc raises the level by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set forces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Max raises the level to n when n exceeds it — a lock-free running
// maximum (dispatch batch-size high-water marks, store flush-lag peaks).
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed exponential buckets and
// answers quantile queries by linear interpolation within the bucket that
// crosses the requested rank. The bucket layout is fixed at construction,
// so Observe is O(log buckets) and never allocates.
type Histogram struct {
	mu sync.Mutex
	// bounds[i] is the inclusive upper edge of bucket i; a final implicit
	// overflow bucket catches everything above bounds[len-1].
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram with n exponential buckets: the first
// upper edge is start, each subsequent edge is factor times the previous,
// plus an overflow bucket. Panics on nonsensical shapes so misconfiguration
// fails at startup, not at query time.
func NewHistogram(start, factor float64, n int) *Histogram {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("metrics: histogram needs n > 0, start > 0, factor > 1")
	}
	h := &Histogram{bounds: make([]float64, n), counts: make([]uint64, n+1)}
	edge := start
	for i := 0; i < n; i++ {
		h.bounds[i] = edge
		edge *= factor
	}
	return h
}

// NewLatencyHistogram is the serving default: millisecond observations
// from 0.25 ms to ~131 s (0.25 × 2^19) in doubling buckets plus
// overflow — fine enough at the fast end for cache hits, and the last
// finite edge sits just above the server's 2-minute deadline clamp.
func NewLatencyHistogram() *Histogram { return NewHistogram(0.25, 2, 20) }

// Observe records one value. Negative and NaN observations clamp to
// zero rather than poisoning the aggregate: a clock step backwards (NTP
// slew mid-request) or an arithmetic slip upstream should read as "a
// very fast event", not skew sum/min or vanish silently — the count
// must keep matching the number of events that actually happened.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	i := h.bucketFor(v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// bucketFor finds the first bucket whose upper edge is >= v (binary
// search; the overflow bucket is len(bounds)).
func (h *Histogram) bucketFor(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Quantile estimates the q-quantile (q in [0,1]) by walking the
// cumulative counts and interpolating linearly inside the crossing
// bucket. Exact min/max clamp the estimate, so Quantile(0) and
// Quantile(1) are exact. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo < h.min {
			lo = h.min
		}
		if hi < lo {
			hi = lo
		}
		est := lo + (hi-lo)*(rank-prev)/float64(c)
		return est
	}
	return h.max
}

// Bucket is one non-empty histogram cell in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper edge in the observed
	// unit; +Inf for the overflow bucket.
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the overflow bucket's +Inf edge as the Prometheus
// convention "+Inf" (encoding/json rejects infinities as numbers).
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperBound, 1) {
		return []byte(fmt.Sprintf(`{"le":"+Inf","count":%d}`, b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%g,"count":%d}`, b.UpperBound, b.Count)), nil
}

// UnmarshalJSON is MarshalJSON's inverse, accepting both the numeric
// edges and the "+Inf" overflow spelling — so snapshot consumers
// (loadgen's stage-breakdown table reads them from /v1/stats) can decode
// what the server serves.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var wire struct {
		LE    any    `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	b.Count = wire.Count
	switch le := wire.LE.(type) {
	case float64:
		b.UpperBound = le
	case string:
		if le == "+Inf" {
			b.UpperBound = math.Inf(1)
			return nil
		}
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("metrics: bucket edge %q: %w", le, err)
		}
		b.UpperBound = v
	default:
		return fmt.Errorf("metrics: bucket edge has type %T", wire.LE)
	}
	return nil
}

// HistogramSnapshot is a consistent point-in-time copy, shaped for JSON
// stats endpoints.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Buckets lists only non-empty cells, smallest edge first.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state and precomputes the standard
// serving percentiles. An empty histogram snapshots to all zeros (not
// NaN) so the result always marshals to valid JSON.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	if h.count == 0 {
		return s
	}
	s.Min, s.Max = h.min, h.max
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: c})
	}
	return s
}
