// Prometheus text-format exposition (version 0.0.4) over the live
// serving metrics: counters, gauges, and the fixed-bucket histograms,
// rendered family-at-a-time with # HELP/# TYPE headers, escaped labels,
// and cumulative histogram buckets ending at +Inf. Standard-library
// only, like everything else here — the scrape surface is a writer, not
// a client dependency.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type a /metrics handler should serve.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromLabel is one label pair on a sample.
type PromLabel struct {
	Name, Value string
}

// PromSample is one labeled sample of a counter or gauge family.
type PromSample struct {
	Labels []PromLabel
	Value  float64
}

// PromHistSeries is one labeled histogram series within a family.
type PromHistSeries struct {
	Labels []PromLabel
	Snap   HistogramSnapshot
}

// PromWriter renders metric families to w. Errors are sticky: the first
// write failure is retained and later calls are no-ops, so callers check
// Err once at the end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the # HELP / # TYPE preamble for one family.
func (p *PromWriter) header(name, typ, help string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// sample emits one "name{labels} value" line.
func (p *PromWriter) sample(name string, labels []PromLabel, value float64) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatValue(value))
}

// Counter emits a single-sample counter family.
func (p *PromWriter) Counter(name, help string, v uint64) {
	p.header(name, "counter", help)
	p.sample(name, nil, float64(v))
}

// CounterVec emits a counter family with one sample per label set.
// Empty families still emit their headers, so scrapers see the full
// metric surface from the first scrape.
func (p *PromWriter) CounterVec(name, help string, samples []PromSample) {
	p.header(name, "counter", help)
	for _, s := range samples {
		p.sample(name, s.Labels, s.Value)
	}
}

// Gauge emits a single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.header(name, "gauge", help)
	p.sample(name, nil, v)
}

// GaugeVec emits a gauge family with one sample per label set.
func (p *PromWriter) GaugeVec(name, help string, samples []PromSample) {
	p.header(name, "gauge", help)
	for _, s := range samples {
		p.sample(name, s.Labels, s.Value)
	}
}

// Histogram emits one unlabeled histogram family from a snapshot.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot) {
	p.HistogramVec(name, help, []PromHistSeries{{Snap: s}})
}

// HistogramVec emits a histogram family with one bucket/sum/count series
// per label set. Buckets are cumulative and always end with le="+Inf"
// equal to the series count — including for an empty histogram, which
// renders a lone zero +Inf bucket, zero sum, zero count (the shape
// Prometheus clients expect, not an absent family).
func (p *PromWriter) HistogramVec(name, help string, series []PromHistSeries) {
	p.header(name, "histogram", help)
	for _, hs := range series {
		cum := uint64(0)
		sawInf := false
		for _, b := range hs.Snap.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatValue(b.UpperBound)
			} else {
				sawInf = true
			}
			p.sample(name+"_bucket", withLE(hs.Labels, le), float64(cum))
		}
		if !sawInf {
			// Snapshot buckets omit empty cells; the +Inf bucket is
			// mandatory and its cumulative count is the total count.
			p.sample(name+"_bucket", withLE(hs.Labels, "+Inf"), float64(hs.Snap.Count))
		}
		p.sample(name+"_sum", hs.Labels, hs.Snap.Sum)
		p.sample(name+"_count", hs.Labels, float64(hs.Snap.Count))
	}
}

// withLE appends the bucket boundary label, after the series labels as
// convention has it.
func withLE(labels []PromLabel, le string) []PromLabel {
	out := make([]PromLabel, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, PromLabel{Name: "le", Value: le})
}

func renderLabels(labels []PromLabel) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: integers without an exponent or
// trailing zeros, everything else in Go's shortest round-trip form, and
// infinities in the +Inf/-Inf spelling the format requires.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeLabelValue applies the exposition-format label escapes:
// backslash, double quote, and line feed.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-text escapes: backslash and line feed
// (quotes are legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
