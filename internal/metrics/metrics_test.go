package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFixRate(t *testing.T) {
	rate, err := FixRate([]int{10, 5, 0}, []int{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rate, 0.5) {
		t.Fatalf("rate = %f, want 0.5", rate)
	}
}

func TestFixRateValidation(t *testing.T) {
	if _, err := FixRate([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := FixRate(nil, nil); err == nil {
		t.Error("empty input must error")
	}
	if _, err := FixRate([]int{5}, []int{0}); err == nil {
		t.Error("zero attempts must error")
	}
	if _, err := FixRate([]int{11}, []int{10}); err == nil {
		t.Error("fixed > total must error")
	}
}

func TestPassAtKEdgeCases(t *testing.T) {
	if got := PassAtK(20, 0, 1); got != 0 {
		t.Errorf("c=0 should give 0, got %f", got)
	}
	if got := PassAtK(20, 20, 1); !almost(got, 1) {
		t.Errorf("all passing should give 1, got %f", got)
	}
	if got := PassAtK(20, 16, 5); !almost(got, 1) {
		t.Errorf("n-c < k must give 1, got %f", got)
	}
	if got := PassAtK(0, 0, 1); got != 0 {
		t.Errorf("n=0 gives 0, got %f", got)
	}
	if got := PassAtK(10, 12, 1); !almost(got, 1) {
		t.Errorf("c clamped to n, got %f", got)
	}
}

func TestPassAt1IsProportion(t *testing.T) {
	// pass@1 with the unbiased estimator equals c/n exactly.
	for _, c := range []int{0, 1, 7, 13, 20} {
		got := PassAtK(20, c, 1)
		want := float64(c) / 20
		if !almost(got, want) {
			t.Errorf("PassAtK(20,%d,1) = %f, want %f", c, got, want)
		}
	}
}

func TestPassAtKKnownValue(t *testing.T) {
	// n=4, c=2, k=2: 1 - C(2,2)/C(4,2) = 1 - 1/6.
	got := PassAtK(4, 2, 2)
	if !almost(got, 1-1.0/6) {
		t.Fatalf("got %f, want %f", got, 1-1.0/6)
	}
}

// TestPassAtKMonotonicInK: more attempts can only help.
func TestPassAtKMonotonicInK(t *testing.T) {
	f := func(n8, c8, k8 uint8) bool {
		n := int(n8%30) + 2
		c := int(c8) % (n + 1)
		k := int(k8%uint8(n)) + 1
		if k >= n {
			return true
		}
		return PassAtK(n, c, k) <= PassAtK(n, c, k+1)+1e-12
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPassAtKMonotonicInC: more passing samples can only help.
func TestPassAtKMonotonicInC(t *testing.T) {
	f := func(n8, c8, k8 uint8) bool {
		n := int(n8%30) + 2
		c := int(c8) % n
		k := int(k8%uint8(n)) + 1
		return PassAtK(n, c, k) <= PassAtK(n, c+1, k)+1e-12
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPassAtKUnbiased verifies the estimator against a direct Monte-Carlo
// simulation of "draw k samples from n, any of the c passing wins".
func TestPassAtKUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, c, k := 20, 7, 5
	est := PassAtK(n, c, k)
	hits := 0
	trials := 200000
	for i := 0; i < trials; i++ {
		perm := rng.Perm(n)
		win := false
		for _, idx := range perm[:k] {
			if idx < c {
				win = true
				break
			}
		}
		if win {
			hits++
		}
	}
	mc := float64(hits) / float64(trials)
	if math.Abs(mc-est) > 0.01 {
		t.Fatalf("estimator %f vs monte-carlo %f", est, mc)
	}
}

func TestMeanPassAtK(t *testing.T) {
	got, err := MeanPassAtK([]int{10, 10}, []int{10, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.5) {
		t.Fatalf("got %f, want 0.5", got)
	}
	if _, err := MeanPassAtK([]int{1}, []int{1, 2}, 1); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Mean(xs), 2.5) {
		t.Errorf("mean = %f", Mean(xs))
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if !almost(StdDev(xs), want) {
		t.Errorf("stddev = %f, want %f", StdDev(xs), want)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty must be NaN")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("stddev of one sample is 0")
	}
}
