// Package metrics implements the paper's two evaluation metrics: the
// compile fix rate (eq. 1) and the unbiased pass@k estimator (eq. 2) from
// Chen et al., as used by VerilogEval.
package metrics

import (
	"fmt"
	"math"
)

// FixRate is the expectation over problems of c/n, where c of n attempts
// fixed the sample (paper eq. 1). Each element of fixed/total is one
// problem; total[i] must be > 0.
func FixRate(fixed, total []int) (float64, error) {
	if len(fixed) != len(total) {
		return 0, fmt.Errorf("metrics: fixed and total length mismatch (%d vs %d)", len(fixed), len(total))
	}
	if len(fixed) == 0 {
		return 0, fmt.Errorf("metrics: no problems")
	}
	sum := 0.0
	for i := range fixed {
		if total[i] <= 0 {
			return 0, fmt.Errorf("metrics: problem %d has no attempts", i)
		}
		if fixed[i] < 0 || fixed[i] > total[i] {
			return 0, fmt.Errorf("metrics: problem %d has %d fixed of %d", i, fixed[i], total[i])
		}
		sum += float64(fixed[i]) / float64(total[i])
	}
	return sum / float64(len(fixed)), nil
}

// PassAtK is the unbiased estimator 1 - C(n-c, k)/C(n, k) for a single
// problem with n samples of which c passed (paper eq. 2).
func PassAtK(n, c, k int) float64 {
	if k <= 0 || n <= 0 {
		return 0
	}
	if c < 0 {
		c = 0
	}
	if c > n {
		c = n
	}
	if n-c < k {
		return 1
	}
	// Compute 1 - prod_{i=n-c+1..n} (1 - k/i) in a numerically stable way.
	prod := 1.0
	for i := n - c + 1; i <= n; i++ {
		prod *= 1 - float64(k)/float64(i)
	}
	return 1 - prod
}

// MeanPassAtK averages PassAtK over problems; passed[i] of samples[i]
// passed for problem i.
func MeanPassAtK(samples, passed []int, k int) (float64, error) {
	if len(samples) != len(passed) {
		return 0, fmt.Errorf("metrics: samples and passed length mismatch")
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("metrics: no problems")
	}
	sum := 0.0
	for i := range samples {
		sum += PassAtK(samples[i], passed[i], k)
	}
	return sum / float64(len(samples)), nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}
