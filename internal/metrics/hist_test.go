package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge after Set = %d, want -3", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestHistogramBucketFor(t *testing.T) {
	h := NewHistogram(1, 2, 4) // edges 1, 2, 4, 8 + overflow
	cases := []struct {
		v    float64
		want int
	}{
		{0.5, 0}, {1, 0}, {1.5, 1}, {2, 1}, {3, 2}, {8, 3}, {9, 4}, {1e9, 4},
	}
	for _, c := range cases {
		if got := h.bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	// 1..1000 ms uniformly: quantiles should land near q*1000 despite
	// the exponential buckets (interpolation within buckets).
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want exact min 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("q1 = %v, want exact max 1000", got)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := q * 1000
		// Doubling buckets bound the relative error by the bucket width.
		if got < want/2 || got > want*2 {
			t.Errorf("q%v = %v, want within [%v, %v]", q, got, want/2, want*2)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %v, want NaN", got)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty snapshot does not marshal: %v", err)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 3, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Sum != 106.5 {
		t.Fatalf("sum = %v, want 106.5", s.Sum)
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v, want 0.5/100", s.Min, s.Max)
	}
	// Buckets: edge 1 → one obs, edge 4 → two, overflow → one.
	if len(s.Buckets) != 3 {
		t.Fatalf("buckets = %+v, want 3 non-empty", s.Buckets)
	}
	if s.Buckets[0].UpperBound != 1 || s.Buckets[0].Count != 1 {
		t.Errorf("bucket 0 = %+v", s.Buckets[0])
	}
	if s.Buckets[1].UpperBound != 4 || s.Buckets[1].Count != 2 {
		t.Errorf("bucket 1 = %+v", s.Buckets[1])
	}
	if !math.IsInf(s.Buckets[2].UpperBound, 1) || s.Buckets[2].Count != 1 {
		t.Errorf("overflow bucket = %+v", s.Buckets[2])
	}
	// The overflow bucket's +Inf edge must still marshal (as "+Inf").
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("snapshot with overflow bucket does not marshal: %v", err)
	}
	if !strings.Contains(string(data), `"+Inf"`) {
		t.Errorf("marshaled snapshot missing +Inf edge: %s", data)
	}
	if s.P50 < s.Min || s.P50 > s.Max {
		t.Errorf("p50 = %v outside [min, max]", s.P50)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(w*500 + i + 1))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 2000 {
		t.Fatalf("count = %d, want 2000", got)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { NewHistogram(0, 2, 4) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad histogram shape did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramObserveClampsInvalid(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(-5)
	h.Observe(math.NaN())
	h.Observe(2)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3 (invalid observations must still count)", s.Count)
	}
	if s.Min != 0 {
		t.Fatalf("min = %v, want 0 (clamped)", s.Min)
	}
	if s.Sum != 2 {
		t.Fatalf("sum = %v, want 2 (clamped values contribute zero)", s.Sum)
	}
	if s.Max != 2 {
		t.Fatalf("max = %v, want 2", s.Max)
	}
	if math.IsNaN(s.P50) || math.IsNaN(s.P99) {
		t.Fatalf("quantiles poisoned by NaN observation: p50=%v p99=%v", s.P50, s.P99)
	}
}
