package metrics

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// parseProm is a minimal exposition-format parser for round-trip
// assertions: it returns sample values keyed by "name{labels}" (labels
// sorted), plus the TYPE declared for each family. It understands the
// subset PromWriter emits and fails the test on anything malformed.
func parseProm(t *testing.T, text string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = map[string]float64{}
	types = map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if len(strings.Fields(line)) < 4 {
				t.Fatalf("malformed HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		switch valStr {
		case "+Inf":
			val = math.Inf(1)
		case "-Inf":
			val = math.Inf(-1)
		default:
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			val = v
		}
		samples[normalizeKey(t, key)] = val
	}
	return samples, types
}

// normalizeKey sorts the label pairs inside name{...} so lookups are
// order-independent, respecting escapes inside quoted values.
func normalizeKey(t *testing.T, key string) string {
	t.Helper()
	open := strings.IndexByte(key, '{')
	if open < 0 {
		return key
	}
	if !strings.HasSuffix(key, "}") {
		t.Fatalf("unterminated label set: %q", key)
	}
	body := key[open+1 : len(key)-1]
	var labels []string
	for i := 0; i < len(body); {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 || i+eq+1 >= len(body) || body[i+eq+1] != '"' {
			t.Fatalf("malformed labels: %q", body)
		}
		j := i + eq + 2 // first char inside the quotes
		for j < len(body) && body[j] != '"' {
			if body[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(body) {
			t.Fatalf("unterminated label value: %q", body)
		}
		labels = append(labels, body[i:j+1])
		i = j + 1
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	sort.Strings(labels)
	return key[:open] + "{" + strings.Join(labels, ",") + "}"
}

func TestPromCountersAndGauges(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("fix_requests_total", "Fix requests received.", 42)
	p.CounterVec("http_responses_total", "Responses by status.", []PromSample{
		{Labels: []PromLabel{{Name: "code", Value: "200"}}, Value: 40},
		{Labels: []PromLabel{{Name: "code", Value: "429"}}, Value: 2},
	})
	p.Gauge("queue_depth", "Admitted, waiting.", 3)
	p.GaugeVec("cache_events_total", "By layer.", nil) // empty family: headers only
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, b.String())
	if types["fix_requests_total"] != "counter" || types["queue_depth"] != "gauge" {
		t.Fatalf("types = %v", types)
	}
	if types["cache_events_total"] != "gauge" {
		t.Fatal("empty family did not emit its TYPE header")
	}
	if samples["fix_requests_total"] != 42 {
		t.Fatalf("counter = %v", samples["fix_requests_total"])
	}
	if samples[`http_responses_total{code="200"}`] != 40 || samples[`http_responses_total{code="429"}`] != 2 {
		t.Fatalf("labeled counters: %v", samples)
	}
	if samples["queue_depth"] != 3 {
		t.Fatalf("gauge = %v", samples["queue_depth"])
	}
}

// TestPromEmptyHistogram: an empty histogram must still expose the
// mandatory +Inf bucket with a zero cumulative count, zero sum, zero
// count — not vanish from the scrape.
func TestPromEmptyHistogram(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Histogram("fix_latency_ms", "Fix latency.", NewLatencyHistogram().Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, b.String())
	if types["fix_latency_ms"] != "histogram" {
		t.Fatalf("types = %v", types)
	}
	if got := samples[`fix_latency_ms_bucket{le="+Inf"}`]; got != 0 {
		t.Fatalf("+Inf bucket = %v, want 0", got)
	}
	if samples["fix_latency_ms_sum"] != 0 || samples["fix_latency_ms_count"] != 0 {
		t.Fatalf("sum/count: %v", samples)
	}
}

// TestPromHistogramCumulative: buckets must be cumulative, and the +Inf
// bucket's cumulative count must equal the total observation count even
// when the overflow cell itself is empty.
func TestPromHistogramCumulative(t *testing.T) {
	h := NewHistogram(1, 2, 3) // edges 1, 2, 4, +Inf
	for _, v := range []float64{0.5, 0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Histogram("lat_ms", "latencies", h.Snapshot())
	samples, _ := parseProm(t, b.String())
	if got := samples[`lat_ms_bucket{le="1"}`]; got != 2 {
		t.Fatalf("le=1 cumulative = %v, want 2", got)
	}
	if got := samples[`lat_ms_bucket{le="2"}`]; got != 3 {
		t.Fatalf("le=2 cumulative = %v, want 3", got)
	}
	if got := samples[`lat_ms_bucket{le="4"}`]; got != 4 {
		t.Fatalf("le=4 cumulative = %v, want 4", got)
	}
	if got := samples[`lat_ms_bucket{le="+Inf"}`]; got != 5 {
		t.Fatalf("+Inf cumulative = %v, want 5 (total count)", got)
	}
	if samples["lat_ms_count"] != 5 || samples["lat_ms_sum"] != 105.5 {
		t.Fatalf("sum/count: %v", samples)
	}

	// All values under the last finite edge: the overflow bucket is
	// empty, but +Inf must still appear with the total.
	h2 := NewHistogram(1, 2, 3)
	h2.Observe(0.5)
	b.Reset()
	p2 := NewPromWriter(&b)
	p2.Histogram("lat2_ms", "latencies", h2.Snapshot())
	samples2, _ := parseProm(t, b.String())
	if got := samples2[`lat2_ms_bucket{le="+Inf"}`]; got != 1 {
		t.Fatalf("+Inf with empty overflow = %v, want 1", got)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	hairy := "a\\b\"c\nd"
	p.CounterVec("findings_total", "By rule; help with \\ and\nnewline.", []PromSample{
		{Labels: []PromLabel{{Name: "rule", Value: hairy}}, Value: 7},
	})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if strings.Count(text, "\n") != 3 {
		t.Fatalf("escapes leaked a raw newline:\n%q", text)
	}
	if !strings.Contains(text, `rule="a\\b\"c\nd"`) {
		t.Fatalf("label not escaped: %q", text)
	}
	if !strings.Contains(text, `# HELP findings_total By rule; help with \\ and\nnewline.`) {
		t.Fatalf("help not escaped: %q", text)
	}
	samples, _ := parseProm(t, text)
	if got := samples[`findings_total{rule="a\\b\"c\nd"}`]; got != 7 {
		t.Fatalf("escaped sample lost: %v", samples)
	}
}

// TestPromScrapeRoundTrip builds a realistic multi-family scrape,
// parses it back, and asserts every value survives — the
// scrape-then-parse gate the satellite task names.
func TestPromScrapeRoundTrip(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("fix_requests_total", "Fix requests.", 123)
	p.CounterVec("cache_events_total", "Cache events by layer and kind.", []PromSample{
		{Labels: []PromLabel{{Name: "layer", Value: "compile"}, {Name: "event", Value: "hit"}}, Value: 50},
		{Labels: []PromLabel{{Name: "layer", Value: "compile"}, {Name: "event", Value: "miss"}}, Value: 5},
	})
	p.Gauge("in_flight", "Running now.", 2)
	p.HistogramVec("stage_duration_ms", "Per-stage span durations.", []PromHistSeries{
		{Labels: []PromLabel{{Name: "stage", Value: "compile"}}, Snap: h.Snapshot()},
		{Labels: []PromLabel{{Name: "stage", Value: "sim"}}, Snap: NewLatencyHistogram().Snapshot()},
	})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, b.String())

	wantTypes := map[string]string{
		"fix_requests_total": "counter", "cache_events_total": "counter",
		"in_flight": "gauge", "stage_duration_ms": "histogram",
	}
	for name, typ := range wantTypes {
		if types[name] != typ {
			t.Fatalf("TYPE %s = %q, want %q", name, types[name], typ)
		}
	}
	if samples["fix_requests_total"] != 123 || samples["in_flight"] != 2 {
		t.Fatalf("scalar samples: %v", samples)
	}
	if samples[`cache_events_total{event="hit",layer="compile"}`] != 50 {
		t.Fatalf("labeled counter lost: %v", samples)
	}
	if got := samples[`stage_duration_ms_bucket{le="+Inf",stage="compile"}`]; got != 100 {
		t.Fatalf("compile +Inf = %v, want 100", got)
	}
	if got := samples[`stage_duration_ms_count{stage="compile"}`]; got != 100 {
		t.Fatalf("compile count = %v", got)
	}
	if got := samples[`stage_duration_ms_sum{stage="compile"}`]; got != 4950 {
		t.Fatalf("compile sum = %v, want 4950", got)
	}
	if got := samples[`stage_duration_ms_bucket{le="+Inf",stage="sim"}`]; got != 0 {
		t.Fatalf("empty sim series +Inf = %v, want 0", got)
	}

	// Cumulative monotonicity across every bucket family in the scrape.
	byFamily := map[string][]struct {
		le  float64
		cum float64
	}{}
	for key, val := range samples {
		if !strings.Contains(key, "_bucket{") {
			continue
		}
		leStart := strings.Index(key, `le="`)
		leEnd := strings.Index(key[leStart+4:], `"`)
		leStr := key[leStart+4 : leStart+4+leEnd]
		le := math.Inf(1)
		if leStr != "+Inf" {
			v, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bucket le %q: %v", leStr, err)
			}
			le = v
		}
		fam := key[:strings.IndexByte(key, '{')] + stripLE(key)
		byFamily[fam] = append(byFamily[fam], struct{ le, cum float64 }{le, val})
	}
	for fam, buckets := range byFamily {
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
		for i := 1; i < len(buckets); i++ {
			if buckets[i].cum < buckets[i-1].cum {
				t.Fatalf("%s: cumulative count decreases at le=%v", fam, buckets[i].le)
			}
		}
	}
}

// stripLE isolates the non-le labels of a bucket key so buckets group
// into series.
func stripLE(key string) string {
	open := strings.IndexByte(key, '{')
	body := key[open+1 : len(key)-1]
	var keep []string
	for _, part := range strings.Split(body, ",") {
		if !strings.HasPrefix(part, `le="`) {
			keep = append(keep, part)
		}
	}
	return "{" + strings.Join(keep, ",") + "}"
}

func TestBucketJSONRoundTrip(t *testing.T) {
	h := NewHistogram(1, 2, 2)
	h.Observe(0.5)
	h.Observe(100)
	snap := h.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Buckets) != len(snap.Buckets) {
		t.Fatalf("buckets = %d, want %d", len(back.Buckets), len(snap.Buckets))
	}
	for i := range snap.Buckets {
		w, g := snap.Buckets[i], back.Buckets[i]
		if w.Count != g.Count {
			t.Fatalf("bucket %d count %d != %d", i, g.Count, w.Count)
		}
		if math.IsInf(w.UpperBound, 1) != math.IsInf(g.UpperBound, 1) {
			t.Fatalf("bucket %d infinity mismatch", i)
		}
		if !math.IsInf(w.UpperBound, 1) && w.UpperBound != g.UpperBound {
			t.Fatalf("bucket %d edge %v != %v", i, g.UpperBound, w.UpperBound)
		}
	}
}
