package verilog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/diag"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks := Lex("module top (input a); endmodule")
	want := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "module"},
		{TokIdent, "top"},
		{TokOp, "("},
		{TokKeyword, "input"},
		{TokIdent, "a"},
		{TokOp, ")"},
		{TokOp, ";"},
		{TokKeyword, "endmodule"},
		{TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), kinds(toks))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"42", "42"},
		{"8'hFF", "8'hFF"},
		{"4'b10_10", "4'b10_10"},
		{"3'o7", "3'o7"},
		{"16'd1234", "16'd1234"},
		{"8'sd4", "8'sd4"},
		{"'b1010", "'b1010"},
	}
	for _, c := range cases {
		toks := Lex(c.src)
		if toks[0].Kind != TokNumber {
			t.Errorf("Lex(%q)[0].Kind = %v, want number (text %q)", c.src, toks[0].Kind, toks[0].Text)
			continue
		}
	}
}

func TestLexMalformedLiterals(t *testing.T) {
	cases := []string{"8'hXYZW", "4'd1F", "8'", "8'q77"}
	for _, src := range cases {
		toks := Lex(src)
		found := false
		for _, tok := range toks {
			if tok.Kind == TokError && tok.Cat == diag.CatMalformedLiteral {
				found = true
			}
		}
		if !found {
			t.Errorf("Lex(%q) produced no malformed-literal error: %+v", src, toks)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
module /* block
comment */ top;
endmodule`
	toks := Lex(src)
	if toks[0].Kind != TokKeyword || toks[0].Text != "module" {
		t.Fatalf("first token = %+v, want 'module'", toks[0])
	}
	if toks[0].Pos.Line != 3 {
		t.Errorf("module token at line %d, want 3", toks[0].Pos.Line)
	}
}

func TestLexDirectiveSwallowsLine(t *testing.T) {
	toks := Lex("`timescale 1ns/1ps\nmodule top; endmodule")
	if toks[0].Kind != TokDirective || toks[0].Text != "timescale" {
		t.Fatalf("first token = %+v, want timescale directive", toks[0])
	}
	if toks[1].Kind != TokKeyword || toks[1].Text != "module" {
		t.Fatalf("second token = %+v, want 'module'", toks[1])
	}
}

func TestLexOperatorsGreedy(t *testing.T) {
	cases := map[string]string{
		"a<=b":  "<=",
		"a<<2":  "<<",
		"a<<<2": "<<<",
		"a==b":  "==",
		"a===b": "===",
		"a&&b":  "&&",
		"i++":   "++",
		"i+=1":  "+=",
	}
	for src, wantOp := range cases {
		toks := Lex(src)
		if len(toks) < 2 || toks[1].Kind != TokOp || toks[1].Text != wantOp {
			t.Errorf("Lex(%q)[1] = %+v, want operator %q", src, toks[1], wantOp)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks := Lex(`"hello world"`)
	if toks[0].Kind != TokString || toks[0].Text != "hello world" {
		t.Fatalf("string token = %+v", toks[0])
	}
	toks = Lex("\"unterminated\nmodule")
	if toks[0].Kind != TokError {
		t.Fatalf("unterminated string should be an error token, got %+v", toks[0])
	}
}

func TestLexPositionsMonotonic(t *testing.T) {
	src := "module top(input [7:0] a, output [7:0] b);\nassign b = ~a;\nendmodule\n"
	toks := Lex(src)
	prev := diag.Pos{}
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		if tok.Pos.Before(prev) {
			t.Fatalf("token %q at %v comes before previous %v", tok.Text, tok.Pos, prev)
		}
		prev = tok.Pos
	}
}

// TestLexNeverPanics is a property test: the lexer must terminate without
// panicking on arbitrary byte soup and always end with EOF.
func TestLexNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		toks := Lex(string(data))
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLexRoundTripIdents is a property test: identifier-safe strings lex
// back to the same identifier.
func TestLexRoundTripIdents(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz_"
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(12)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(letters[rng.Intn(len(letters))])
		}
		name := b.String()
		if IsKeyword(name) {
			continue
		}
		toks := Lex(name)
		if toks[0].Kind != TokIdent || toks[0].Text != name {
			t.Fatalf("Lex(%q)[0] = %+v, want identifier round-trip", name, toks[0])
		}
	}
}

func TestLexUppercaseBaseLetters(t *testing.T) {
	// The ASCII fast path must keep normalizing base letters: 8'HFF and
	// 8'hFF lex to the same canonical token text.
	for _, src := range []string{"8'HFF", "8'hFF", "4'B1010", "8'O17", "8'D42", "8'SD4"} {
		toks := Lex(src)
		if toks[0].Kind != TokNumber {
			t.Fatalf("Lex(%q)[0] = %+v, want number", src, toks[0])
		}
	}
	if got := Lex("8'HFF")[0].Text; got != "8'hFF" {
		t.Fatalf("base letter not normalized: %q", got)
	}
	// invalid digits still rejected per base
	if toks := Lex("8'b012"); toks[0].Kind != TokError {
		t.Fatalf("8'b012 must be a malformed literal, got %+v", toks[0])
	}
	if toks := Lex("8'dff"); toks[0].Kind != TokError {
		t.Fatalf("8'dff must be a malformed literal, got %+v", toks[0])
	}
	// wildcard digits stay valid where the old table allowed them
	for _, src := range []string{"4'b1?z0", "8'hx_Z?", "8'o1?7"} {
		if toks := Lex(src); toks[0].Kind != TokError && toks[0].Kind != TokNumber {
			t.Fatalf("Lex(%q) = %+v", src, toks[0])
		}
		if toks := Lex(src); toks[0].Kind == TokError {
			t.Fatalf("Lex(%q) rejected wildcard digits: %+v", src, toks[0])
		}
	}
}

// BenchmarkLex measures whole-file tokenization — the cache-miss compile
// path lexes every candidate before anything else runs.
func BenchmarkLex(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, `
module m%d(input clk, input [31:0] a, output reg [31:0] q);
	wire [31:0] t = a ^ 32'hDEAD_BEEF;
	always @(posedge clk)
		q <= t + 8'HFF + q;
endmodule
`, i)
	}
	src := sb.String()
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Lex(src)
	}
}
