// Package verilog implements a lexer, AST, and recursive-descent parser for
// the synthesizable Verilog-2001 subset (plus the handful of SystemVerilog
// conveniences — 'int' loop variables, always_ff-free .sv style — that
// VerilogEval-class problems use). It is the compiler frontend both
// "compiler personas" (iverilog-style and Quartus-style) share.
package verilog

import "repro/internal/diag"

// TokKind identifies the lexical class of a token.
type TokKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokKind = iota
	// TokIdent is an identifier.
	TokIdent
	// TokNumber is an integer literal, sized or unsized.
	TokNumber
	// TokString is a double-quoted string literal.
	TokString
	// TokKeyword is a reserved word.
	TokKeyword
	// TokOp is an operator or punctuation.
	TokOp
	// TokDirective is a backtick compiler directive (`timescale, `define).
	TokDirective
	// TokError is a lexical error; the Text holds a description.
	TokError
)

// String names the token kind.
func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokOp:
		return "operator"
	case TokDirective:
		return "directive"
	case TokError:
		return "lex-error"
	}
	return "unknown"
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  diag.Pos
	// Cat is set only for TokError and classifies the lexical problem.
	Cat diag.Category
}

// Is reports whether the token is the given keyword or operator text.
func (t Token) Is(text string) bool {
	return (t.Kind == TokKeyword || t.Kind == TokOp) && t.Text == text
}

// keywords is the reserved-word set for the supported subset. 'int' and
// 'logic' are included so SV-flavoured sources lex cleanly; the parser
// decides whether they are legal in context.
var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "logic": true, "integer": true,
	"int": true, "genvar": true, "parameter": true, "localparam": true,
	"assign": true, "always": true, "initial": true, "begin": true,
	"end": true, "if": true, "else": true, "case": true, "casez": true,
	"casex": true, "endcase": true, "default": true, "for": true,
	"while": true, "posedge": true, "negedge": true, "or": true,
	"signed": true, "function": true, "endfunction": true, "generate": true,
	"endgenerate": true, "repeat": true, "forever": true, "wait": true,
	"task": true, "endtask": true,
}

// IsKeyword reports whether s is a reserved word in the supported subset.
func IsKeyword(s string) bool { return keywords[s] }

// multi-character operators, longest first so the lexer can greedy-match.
var operators = []string{
	"<<<", ">>>", "===", "!==",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "~&", "~|", "~^", "^~",
	"++", "--", "+=", "-=", "*=", "/=", "&=", "|=", "^=", "->", "+:", "-:",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "[", "]", "{", "}", ";", ",", ":", ".", "?", "@", "#", "$",
}

// cStyleOps are operators that exist in C/C++ but not in Verilog-2001
// expressions. The lexer emits them as ordinary TokOp; the parser flags
// them with diag.CatCStyleSyntax, reproducing the paper's observation that
// LLMs import C idioms into Verilog.
var cStyleOps = map[string]bool{
	"++": true, "--": true, "+=": true, "-=": true, "*=": true, "/=": true,
	"&=": true, "|=": true, "^=": true,
}

// IsCStyleOp reports whether op is a C-only operator.
func IsCStyleOp(op string) bool { return cStyleOps[op] }
