package verilog

import (
	"strings"

	"repro/internal/diag"
)

// Lexer turns Verilog source into tokens. It never fails hard: lexical
// problems become TokError tokens carrying a diagnostic category, so the
// parser and the compiler personas can report them the way a real compiler
// would.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, appending a final TokEOF. The token
// slice is pre-sized from the source length — Verilog averages well over
// four bytes per token, so one allocation covers the whole file and the
// cache-miss compile path stops growing the slice log₂(n) times.
func Lex(src string) []Token {
	lx := NewLexer(src)
	toks := make([]Token, 0, len(src)/4+8)
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() diag.Pos { return diag.Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}
	}
	c := lx.peek()
	switch {
	case c == '`':
		return lx.lexDirective(pos)
	case c == '"':
		return lx.lexString(pos)
	case isIdentStart(c):
		return lx.lexIdent(pos)
	case isDigit(c):
		return lx.lexNumber(pos)
	case c == '\'':
		// unsized based literal like 'b1010 or '0
		return lx.lexBasedLiteral(pos, "")
	default:
		return lx.lexOp(pos)
	}
}

func (lx *Lexer) lexDirective(pos diag.Pos) Token {
	lx.advance() // consume `
	start := lx.off
	for lx.off < len(lx.src) && isIdentChar(lx.peek()) {
		lx.advance()
	}
	name := lx.src[start:lx.off]
	// Directives swallow the rest of their line: `timescale 1ns/1ps etc.
	for lx.off < len(lx.src) && lx.peek() != '\n' {
		lx.advance()
	}
	return Token{Kind: TokDirective, Text: name, Pos: pos}
}

func (lx *Lexer) lexString(pos diag.Pos) Token {
	lx.advance() // consume "
	start := lx.off
	for lx.off < len(lx.src) && lx.peek() != '"' && lx.peek() != '\n' {
		if lx.peek() == '\\' {
			lx.advance()
		}
		if lx.off < len(lx.src) {
			lx.advance()
		}
	}
	text := lx.src[start:lx.off]
	if lx.off < len(lx.src) && lx.peek() == '"' {
		lx.advance()
		return Token{Kind: TokString, Text: text, Pos: pos}
	}
	return Token{Kind: TokError, Text: "unterminated string", Pos: pos, Cat: diag.CatUnexpectedToken}
}

func (lx *Lexer) lexIdent(pos diag.Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentChar(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if keywords[text] {
		return Token{Kind: TokKeyword, Text: text, Pos: pos}
	}
	return Token{Kind: TokIdent, Text: text, Pos: pos}
}

// lexNumber handles plain decimals (42), sized based literals (8'hFF,
// 4'b10_10) and malformed variants, which become TokError with
// CatMalformedLiteral.
func (lx *Lexer) lexNumber(pos diag.Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && (isDigit(lx.peek()) || lx.peek() == '_') {
		lx.advance()
	}
	sizeText := lx.src[start:lx.off]
	if lx.peek() == '\'' {
		return lx.lexBasedLiteral(pos, sizeText)
	}
	return Token{Kind: TokNumber, Text: sizeText, Pos: pos}
}

func (lx *Lexer) lexBasedLiteral(pos diag.Pos, sizeText string) Token {
	lx.advance() // consume '
	if lx.off >= len(lx.src) {
		return Token{Kind: TokError, Text: "truncated based literal", Pos: pos, Cat: diag.CatMalformedLiteral}
	}
	base := lx.advance()
	if base == 's' || base == 'S' { // signed marker: 8'sd4
		if lx.off >= len(lx.src) {
			return Token{Kind: TokError, Text: "truncated based literal", Pos: pos, Cat: diag.CatMalformedLiteral}
		}
		base = lx.advance()
	}
	baseLower := lowerASCII(base)
	if baseLower != 'b' && baseLower != 'o' && baseLower != 'd' && baseLower != 'h' {
		return Token{
			Kind: TokError,
			Text: "invalid base '" + string(base) + "' in literal",
			Pos:  pos, Cat: diag.CatMalformedLiteral,
		}
	}
	digStart := lx.off
	for lx.off < len(lx.src) && (isIdentChar(lx.peek()) || lx.peek() == '?') {
		lx.advance()
	}
	digits := lx.src[digStart:lx.off]
	if digits == "" {
		return Token{Kind: TokError, Text: "based literal has no digits", Pos: pos, Cat: diag.CatMalformedLiteral}
	}
	for i := 0; i < len(digits); i++ {
		if !validBaseDigit(baseLower, digits[i]) {
			return Token{
				Kind: TokError,
				Text: "digit '" + string(digits[i]) + "' is invalid for base '" + string(baseLower) + "'",
				Pos:  pos, Cat: diag.CatMalformedLiteral,
			}
		}
	}
	return Token{Kind: TokNumber, Text: sizeText + "'" + string(baseLower) + digits, Pos: pos}
}

// lowerASCII lowercases a single ASCII letter. Verilog source is ASCII;
// this avoids the unicode table lookup on the literal-heavy lexing path.
func lowerASCII(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// validBaseDigit reports whether c may appear in a literal of the given
// (lowercased) base, replacing the per-digit substring scan.
func validBaseDigit(base, c byte) bool {
	if c == '_' {
		return true
	}
	wild := c == 'x' || c == 'z' || c == 'X' || c == 'Z' || c == '?'
	switch base {
	case 'b':
		return c == '0' || c == '1' || wild
	case 'o':
		return (c >= '0' && c <= '7') || wild
	case 'd':
		return c >= '0' && c <= '9'
	case 'h':
		return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || wild
	}
	return false
}

func (lx *Lexer) lexOp(pos diag.Pos) Token {
	rest := lx.src[lx.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op) {
			for range op {
				lx.advance()
			}
			return Token{Kind: TokOp, Text: op, Pos: pos}
		}
	}
	c := lx.advance()
	return Token{
		Kind: TokError,
		Text: "unexpected character '" + string(c) + "'",
		Pos:  pos, Cat: diag.CatUnexpectedToken,
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '\\' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || isDigit(c) || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
