package verilog

import "testing"

// TestFormatRoundTrip checks the printer's core contract: Format output
// re-parses cleanly, and printing the re-parsed AST reproduces the same
// text (fixed point after one canonicalization pass).
func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		`module m(input clk, input [7:0] d, output reg [7:0] q);
	always @(posedge clk) begin
		q = d;
		q[4:1] = q;
	end
endmodule`,
		`module m(input [7:0] a, input [7:0] b, output [7:0] y, output c);
	wire [8:0] s = a + b;
	assign y = s[7:0];
	assign c = s[8];
endmodule`,
		`module m(input clk, input rst, input in, output reg out);
	reg [1:0] state;
	always @(posedge clk or posedge rst) begin
		if (rst)
			state <= 2'b00;
		else
			case (state)
				2'b00: state <= in ? 2'b01 : 2'b00;
				2'b01, 2'b10: state <= 2'b10;
				default: state <= 2'b00;
			endcase
	end
	always @(*) out = state == 2'b10;
endmodule`,
		`module m(input clk, input [7:0] d, output reg [7:0] q);
	integer i;
	always @(posedge clk)
		for (i = 0; i < 8; i = i + 1)
			q[i] <= d[7 - i];
endmodule`,
		`module m(input [15:0] in, input [3:0] base, output [3:0] lo, output [3:0] hi);
	assign lo = in[base +: 4];
	assign hi = in[base -: 4];
endmodule`,
		`module m(input [3:0] a, output [15:0] y);
	parameter W = 4;
	localparam D = W * 2;
	assign y = {D{a[0]}} | {a, a, a, a};
endmodule`,
		`module m(input [7:0] a, output signed [8:0] y);
	assign y = $signed(a) + $signed(4'b1010);
endmodule`,
		`module m(input clk, input [7:0] d, output reg [7:0] q);
	always @(posedge clk) begin : blk
		integer i;
		for (i = 0; i < 4; i = i + 1)
			q[i] <= d[i] & ~d[i + 4];
	end
endmodule`,
	}
	for i, src := range srcs {
		file, diags := Parse(src)
		if diags.HasErrors() {
			t.Fatalf("case %d: seed source does not parse: %s", i, diags.Summary())
		}
		once := Format(file)
		file2, diags := Parse(once)
		if diags.HasErrors() {
			t.Fatalf("case %d: formatted output does not re-parse: %s\n%s", i, diags.Summary(), once)
		}
		twice := Format(file2)
		if once != twice {
			t.Fatalf("case %d: printer is not a fixed point.\nfirst:\n%s\nsecond:\n%s", i, once, twice)
		}
	}
}
