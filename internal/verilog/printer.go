package verilog

import (
	"fmt"
	"strings"
)

// Print renders a parsed source file back to Verilog text. The output is
// canonically formatted (tab indentation, one item per line) and is
// guaranteed to re-parse to an equivalent AST — the round-trip property
// the printer tests assert. The agent does not use the printer for its
// edits (those are deliberately textual, like a chat model's), but
// tooling built on the frontend does.
func Print(file *SourceFile) string {
	var p printer
	for _, d := range file.Directives {
		p.linef("`%s", d.Name)
	}
	for i, m := range file.Modules {
		if i > 0 || len(file.Directives) > 0 {
			p.linef("")
		}
		p.printModule(m)
	}
	return p.String()
}

// PrintModule renders a single module.
func PrintModule(m *Module) string {
	var p printer
	p.printModule(m)
	return p.String()
}

// ExprString renders one expression.
func ExprString(e Expr) string { return exprString(e) }

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) String() string { return p.b.String() }

func (p *printer) linef(format string, args ...any) {
	for i := 0; i < p.indent; i++ {
		p.b.WriteByte('\t')
	}
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) printModule(m *Module) {
	if len(m.Ports) == 0 {
		p.linef("module %s;", m.Name)
	} else {
		p.linef("module %s (", m.Name)
		p.indent++
		for i, port := range m.Ports {
			sep := ","
			if i == len(m.Ports)-1 {
				sep = ""
			}
			p.linef("%s%s", portDeclString(port), sep)
		}
		p.indent--
		p.linef(");")
	}
	p.indent++
	for _, item := range m.Items {
		p.printItem(item)
	}
	p.indent--
	p.linef("endmodule")
}

func portDeclString(pd *PortDecl) string {
	var parts []string
	if pd.Dir != DirNone {
		parts = append(parts, pd.Dir.String())
	}
	if pd.Kind != KindNone {
		parts = append(parts, pd.Kind.String())
	}
	if pd.Signed {
		parts = append(parts, "signed")
	}
	if pd.VRange != nil {
		parts = append(parts, rangeString(pd.VRange))
	}
	parts = append(parts, pd.Name)
	return strings.Join(parts, " ")
}

func rangeString(r *Range) string {
	return "[" + exprString(r.MSB) + ":" + exprString(r.LSB) + "]"
}

func (p *printer) printItem(item Item) {
	switch it := item.(type) {
	case *PortItem:
		p.linef("%s;", portDeclString(&it.PortDecl))
	case *Decl:
		var parts []string
		parts = append(parts, it.Kind.String())
		if it.Signed {
			parts = append(parts, "signed")
		}
		if it.VRange != nil {
			parts = append(parts, rangeString(it.VRange))
		}
		var names []string
		for _, dn := range it.Names {
			if dn.Init != nil {
				names = append(names, dn.Name+" = "+exprString(dn.Init))
			} else {
				names = append(names, dn.Name)
			}
		}
		p.linef("%s %s;", strings.Join(parts, " "), strings.Join(names, ", "))
	case *ParamDecl:
		kw := "parameter"
		if it.Local {
			kw = "localparam"
		}
		var names []string
		for _, dn := range it.Names {
			names = append(names, dn.Name+" = "+exprString(dn.Init))
		}
		rng := ""
		if it.VRange != nil {
			rng = " " + rangeString(it.VRange)
		}
		p.linef("%s%s %s;", kw, rng, strings.Join(names, ", "))
	case *AssignItem:
		p.linef("assign %s = %s;", exprString(it.LHS), exprString(it.RHS))
	case *AlwaysBlock:
		p.linef("always %s", eventControlString(it))
		p.printStmtIndented(it.Body)
	case *InitialBlock:
		p.linef("initial")
		p.printStmtIndented(it.Body)
	}
}

func eventControlString(a *AlwaysBlock) string {
	if a.Star {
		return "@(*)"
	}
	var evs []string
	for _, ev := range a.Events {
		if ev.Edge != EdgeNone {
			evs = append(evs, ev.Edge.String()+" "+exprString(ev.Signal))
		} else {
			evs = append(evs, exprString(ev.Signal))
		}
	}
	return "@(" + strings.Join(evs, " or ") + ")"
}

// printStmtIndented prints a statement one level deeper unless it is a
// block (begin/end reads better at the same level).
func (p *printer) printStmtIndented(s Stmt) {
	if _, isBlock := s.(*BlockStmt); isBlock {
		p.printStmt(s)
		return
	}
	p.indent++
	p.printStmt(s)
	p.indent--
}

func (p *printer) printStmt(s Stmt) {
	switch st := s.(type) {
	case nil:
		p.linef(";")
	case *NullStmt:
		p.linef(";")
	case *BlockStmt:
		if st.Label != "" {
			p.linef("begin : %s", st.Label)
		} else {
			p.linef("begin")
		}
		p.indent++
		for _, d := range st.Decls {
			var names []string
			for _, dn := range d.Names {
				names = append(names, dn.Name)
			}
			rng := ""
			if d.VRange != nil {
				rng = " " + rangeString(d.VRange)
			}
			p.linef("%s%s %s;", d.Kind, rng, strings.Join(names, ", "))
		}
		for _, sub := range st.Stmts {
			p.printStmt(sub)
		}
		p.indent--
		p.linef("end")
	case *AssignStmt:
		op := "="
		if !st.Blocking {
			op = "<="
		}
		p.linef("%s %s %s;", exprString(st.LHS), op, exprString(st.RHS))
	case *IfStmt:
		p.linef("if (%s)", exprString(st.Cond))
		p.printStmtIndented(st.Then)
		if st.Else != nil {
			p.linef("else")
			p.printStmtIndented(st.Else)
		}
	case *CaseStmt:
		p.linef("%s (%s)", st.Kind, exprString(st.Subject))
		p.indent++
		for _, item := range st.Items {
			if item.Labels == nil {
				p.linef("default:")
			} else {
				var labels []string
				for _, l := range item.Labels {
					labels = append(labels, exprString(l))
				}
				p.linef("%s:", strings.Join(labels, ", "))
			}
			p.printStmtIndented(item.Body)
		}
		p.indent--
		p.linef("endcase")
	case *ForStmt:
		init := ""
		if st.Init != nil {
			prefix := ""
			if st.LoopVar != "" {
				prefix = "int "
			}
			init = prefix + exprString(st.Init.LHS) + " = " + exprString(st.Init.RHS)
		}
		step := ""
		if st.Step != nil {
			step = exprString(st.Step.LHS) + " = " + exprString(st.Step.RHS)
		}
		p.linef("for (%s; %s; %s)", init, exprString(st.Cond), step)
		p.printStmtIndented(st.Body)
	}
}

// exprString renders expressions fully parenthesized for binary and
// ternary operators, which keeps the round-trip AST association-exact
// without precedence bookkeeping.
func exprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Ident:
		return x.Name
	case *Number:
		return x.Text
	case *Unary:
		return x.Op + exprString(x.X)
	case *Binary:
		return "(" + exprString(x.X) + " " + x.Op + " " + exprString(x.Y) + ")"
	case *Ternary:
		return "(" + exprString(x.Cond) + " ? " + exprString(x.Then) + " : " + exprString(x.Else) + ")"
	case *Concat:
		var elems []string
		for _, el := range x.Elems {
			elems = append(elems, exprString(el))
		}
		return "{" + strings.Join(elems, ", ") + "}"
	case *Repl:
		return "{" + exprString(x.Count) + "{" + exprString(x.Value) + "}}"
	case *Index:
		return exprString(x.X) + "[" + exprString(x.Idx) + "]"
	case *Slice:
		switch x.Kind {
		case SelectPlus:
			return exprString(x.X) + "[" + exprString(x.Hi) + " +: " + exprString(x.Lo) + "]"
		case SelectMinus:
			return exprString(x.X) + "[" + exprString(x.Hi) + " -: " + exprString(x.Lo) + "]"
		default:
			return exprString(x.X) + "[" + exprString(x.Hi) + ":" + exprString(x.Lo) + "]"
		}
	case *Call:
		var args []string
		for _, a := range x.Args {
			args = append(args, exprString(a))
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	}
	return "/*?*/"
}
