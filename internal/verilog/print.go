package verilog

import (
	"fmt"
	"strings"
)

// This printer turns an AST back into parseable source. The fuzz
// minimizer depends on the round-trip: it mutates a cloned AST, prints
// it, and re-runs the full frontend, so the output must stay inside the
// grammar the parser accepts. Formatting is canonical (tabs, one
// statement per line), not source-preserving.

// Format prints a whole source file.
func Format(f *SourceFile) string {
	var b strings.Builder
	for _, d := range f.Directives {
		b.WriteString("`")
		b.WriteString(d.Name)
		b.WriteString("\n")
	}
	for i, m := range f.Modules {
		if i > 0 {
			b.WriteString("\n")
		}
		FormatModule(&b, m)
	}
	return b.String()
}

// FormatModule prints one module.
func FormatModule(b *strings.Builder, m *Module) {
	b.WriteString("module ")
	b.WriteString(m.Name)
	b.WriteString("(")
	for i, p := range m.Ports {
		if i > 0 {
			b.WriteString(", ")
		}
		writePortDecl(b, p)
	}
	b.WriteString(");\n")
	for _, item := range m.Items {
		writeItem(b, item)
	}
	b.WriteString("endmodule\n")
}

func writePortDecl(b *strings.Builder, p *PortDecl) {
	if p.Dir == DirNone {
		// Non-ANSI header: name only, body items carry the rest.
		b.WriteString(p.Name)
		return
	}
	b.WriteString(p.Dir.String())
	if p.Kind != KindNone {
		b.WriteString(" ")
		b.WriteString(p.Kind.String())
	}
	if p.Signed {
		b.WriteString(" signed")
	}
	writeRange(b, p.VRange)
	b.WriteString(" ")
	b.WriteString(p.Name)
}

func writeRange(b *strings.Builder, r *Range) {
	if r == nil {
		return
	}
	b.WriteString(" [")
	b.WriteString(FormatExpr(r.MSB))
	b.WriteString(":")
	b.WriteString(FormatExpr(r.LSB))
	b.WriteString("]")
}

func writeItem(b *strings.Builder, item Item) {
	switch it := item.(type) {
	case *Decl:
		b.WriteString("\t")
		writeDecl(b, it)
		b.WriteString(";\n")
	case *PortItem:
		b.WriteString("\t")
		writePortDecl(b, &it.PortDecl)
		b.WriteString(";\n")
	case *ParamDecl:
		b.WriteString("\t")
		if it.Local {
			b.WriteString("localparam")
		} else {
			b.WriteString("parameter")
		}
		writeRange(b, it.VRange)
		for i, n := range it.Names {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(" ")
			b.WriteString(n.Name)
			if n.Init != nil {
				b.WriteString(" = ")
				b.WriteString(FormatExpr(n.Init))
			}
		}
		b.WriteString(";\n")
	case *AssignItem:
		b.WriteString("\tassign ")
		b.WriteString(FormatExpr(it.LHS))
		b.WriteString(" = ")
		b.WriteString(FormatExpr(it.RHS))
		b.WriteString(";\n")
	case *AlwaysBlock:
		b.WriteString("\talways @(")
		if it.Star {
			b.WriteString("*")
		} else {
			for i, ev := range it.Events {
				if i > 0 {
					b.WriteString(" or ")
				}
				if ev.Edge != EdgeNone {
					b.WriteString(ev.Edge.String())
					b.WriteString(" ")
				}
				b.WriteString(FormatExpr(ev.Signal))
			}
		}
		b.WriteString(")\n")
		writeStmt(b, it.Body, 2)
	case *InitialBlock:
		b.WriteString("\tinitial\n")
		writeStmt(b, it.Body, 2)
	default:
		b.WriteString(fmt.Sprintf("\t// unprintable item %T\n", item))
	}
}

func writeDecl(b *strings.Builder, d *Decl) {
	b.WriteString(d.Kind.String())
	if d.Signed {
		b.WriteString(" signed")
	}
	writeRange(b, d.VRange)
	for i, n := range d.Names {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(" ")
		b.WriteString(n.Name)
		if n.Init != nil {
			b.WriteString(" = ")
			b.WriteString(FormatExpr(n.Init))
		}
	}
}

// FormatStmt prints one statement at the given indent depth.
func FormatStmt(s Stmt) string {
	var b strings.Builder
	writeStmt(&b, s, 0)
	return b.String()
}

func writeStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("\t", depth)
	switch st := s.(type) {
	case nil:
		b.WriteString(ind)
		b.WriteString(";\n")
	case *BlockStmt:
		b.WriteString(ind)
		b.WriteString("begin")
		if st.Label != "" {
			b.WriteString(" : ")
			b.WriteString(st.Label)
		}
		b.WriteString("\n")
		for _, d := range st.Decls {
			b.WriteString(ind)
			b.WriteString("\t")
			writeDecl(b, d)
			b.WriteString(";\n")
		}
		for _, sub := range st.Stmts {
			writeStmt(b, sub, depth+1)
		}
		b.WriteString(ind)
		b.WriteString("end\n")
	case *AssignStmt:
		b.WriteString(ind)
		writeAssign(b, st)
		b.WriteString(";\n")
	case *IfStmt:
		b.WriteString(ind)
		b.WriteString("if (")
		b.WriteString(FormatExpr(st.Cond))
		b.WriteString(")\n")
		writeStmt(b, st.Then, depth+1)
		if st.Else != nil {
			b.WriteString(ind)
			b.WriteString("else\n")
			writeStmt(b, st.Else, depth+1)
		}
	case *CaseStmt:
		b.WriteString(ind)
		b.WriteString(st.Kind.String())
		b.WriteString(" (")
		b.WriteString(FormatExpr(st.Subject))
		b.WriteString(")\n")
		for _, item := range st.Items {
			b.WriteString(ind)
			b.WriteString("\t")
			if item.Labels == nil {
				b.WriteString("default")
			} else {
				for i, l := range item.Labels {
					if i > 0 {
						b.WriteString(", ")
					}
					b.WriteString(FormatExpr(l))
				}
			}
			b.WriteString(":\n")
			writeStmt(b, item.Body, depth+2)
		}
		b.WriteString(ind)
		b.WriteString("endcase\n")
	case *ForStmt:
		b.WriteString(ind)
		b.WriteString("for (")
		if st.LoopVar != "" {
			b.WriteString("int ")
		}
		if st.Init != nil {
			writeAssign(b, st.Init)
		}
		b.WriteString("; ")
		b.WriteString(FormatExpr(st.Cond))
		b.WriteString("; ")
		if st.Step != nil {
			writeAssign(b, st.Step)
		}
		b.WriteString(")\n")
		writeStmt(b, st.Body, depth+1)
	case *NullStmt:
		b.WriteString(ind)
		b.WriteString(";\n")
	default:
		b.WriteString(ind)
		b.WriteString(fmt.Sprintf("// unprintable stmt %T\n", s))
	}
}

func writeAssign(b *strings.Builder, a *AssignStmt) {
	b.WriteString(FormatExpr(a.LHS))
	if a.Blocking {
		b.WriteString(" = ")
	} else {
		b.WriteString(" <= ")
	}
	b.WriteString(FormatExpr(a.RHS))
}

// FormatExpr prints one expression. Sub-expressions are parenthesized
// unconditionally, which keeps the printer precedence-free and the
// output unambiguous.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Ident:
		return x.Name
	case *Number:
		return x.Text
	case *Unary:
		return x.Op + "(" + FormatExpr(x.X) + ")"
	case *Binary:
		return "(" + FormatExpr(x.X) + " " + x.Op + " " + FormatExpr(x.Y) + ")"
	case *Ternary:
		return "(" + FormatExpr(x.Cond) + " ? " + FormatExpr(x.Then) + " : " + FormatExpr(x.Else) + ")"
	case *Concat:
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			parts[i] = FormatExpr(el)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Repl:
		return "{" + FormatExpr(x.Count) + "{" + FormatExpr(x.Value) + "}}"
	case *Index:
		return FormatExpr(x.X) + "[" + FormatExpr(x.Idx) + "]"
	case *Slice:
		switch x.Kind {
		case SelectPlus:
			return FormatExpr(x.X) + "[" + FormatExpr(x.Hi) + " +: " + FormatExpr(x.Lo) + "]"
		case SelectMinus:
			return FormatExpr(x.X) + "[" + FormatExpr(x.Hi) + " -: " + FormatExpr(x.Lo) + "]"
		}
		return FormatExpr(x.X) + "[" + FormatExpr(x.Hi) + ":" + FormatExpr(x.Lo) + "]"
	case *Call:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = FormatExpr(a)
		}
		return x.Name + "(" + strings.Join(parts, ", ") + ")"
	}
	return fmt.Sprintf("/* unprintable expr %T */", e)
}
