package verilog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/diag"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() diag.Pos
}

// SourceFile is a parsed Verilog source file.
type SourceFile struct {
	// Directives holds top-of-file compiler directives (`timescale ...),
	// which are legal there. Directives inside a module body are parse
	// errors and never reach the AST.
	Directives []Directive
	Modules    []*Module
}

// Directive is a backtick compiler directive.
type Directive struct {
	Name   string
	DirPos diag.Pos
}

// Pos returns the directive's position.
func (d Directive) Pos() diag.Pos { return d.DirPos }

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	DirNone PortDir = iota
	DirInput
	DirOutput
	DirInout
)

// String names the direction keyword.
func (d PortDir) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	}
	return "none"
}

// NetKind is the data kind of a declaration.
type NetKind int

// Net kinds.
const (
	KindNone NetKind = iota
	KindWire
	KindReg
	KindLogic
	KindInteger
	KindInt
	KindGenvar
)

// String names the kind keyword.
func (k NetKind) String() string {
	switch k {
	case KindWire:
		return "wire"
	case KindReg:
		return "reg"
	case KindLogic:
		return "logic"
	case KindInteger:
		return "integer"
	case KindInt:
		return "int"
	case KindGenvar:
		return "genvar"
	}
	return "none"
}

// IsVariable reports whether the kind is a variable (legal procedural
// assignment target). logic counts as a variable in the SV-flavoured mode.
func (k NetKind) IsVariable() bool {
	switch k {
	case KindReg, KindLogic, KindInteger, KindInt, KindGenvar:
		return true
	}
	return false
}

// Range is a vector range [MSB:LSB]. Both bounds must elaborate to
// constants.
type Range struct {
	MSB, LSB Expr
	RPos     diag.Pos
}

// Pos returns the range's position.
func (r *Range) Pos() diag.Pos { return r.RPos }

// Module is one module definition.
type Module struct {
	Name    string
	NamePos diag.Pos
	// Ports holds the header port declarations. For ANSI headers these
	// carry full direction/kind/range information; for non-ANSI headers
	// they carry only names (DirNone) and the body declarations fill in
	// the rest.
	Ports []*PortDecl
	Items []Item
	// Complete is false when the parser had to synthesize the module end
	// (missing endmodule).
	Complete bool
}

// Pos returns the module's position.
func (m *Module) Pos() diag.Pos { return m.NamePos }

// PortDecl is a port declaration, in the header or the body.
type PortDecl struct {
	Dir     PortDir
	Kind    NetKind // KindNone means plain wire
	Signed  bool
	VRange  *Range
	Name    string
	DeclPos diag.Pos
}

// Pos returns the declaration's position.
func (p *PortDecl) Pos() diag.Pos { return p.DeclPos }

// Item is a module-body item.
type Item interface {
	Node
	item()
}

// Decl declares nets or variables inside a module body.
type Decl struct {
	Kind    NetKind
	Signed  bool
	VRange  *Range
	Names   []DeclName
	DeclPos diag.Pos
}

// DeclName is one declared name with an optional initializer
// (wire x = a & b).
type DeclName struct {
	Name    string
	NamePos diag.Pos
	Init    Expr
}

func (d *Decl) item() {}

// Pos returns the declaration's position.
func (d *Decl) Pos() diag.Pos { return d.DeclPos }

// PortItem is a port declaration appearing in the module body (non-ANSI
// style).
type PortItem struct {
	PortDecl
}

func (p *PortItem) item() {}

// ParamDecl declares parameters or localparams.
type ParamDecl struct {
	Local   bool
	VRange  *Range
	Names   []DeclName
	DeclPos diag.Pos
}

func (p *ParamDecl) item() {}

// Pos returns the declaration's position.
func (p *ParamDecl) Pos() diag.Pos { return p.DeclPos }

// AssignItem is a continuous assignment.
type AssignItem struct {
	LHS       Expr
	RHS       Expr
	AssignPos diag.Pos
}

func (a *AssignItem) item() {}

// Pos returns the assignment's position.
func (a *AssignItem) Pos() diag.Pos { return a.AssignPos }

// EventEdge is an edge specifier in a sensitivity list.
type EventEdge int

// Edge specifiers.
const (
	EdgeNone EventEdge = iota // level-sensitive (combinational)
	EdgePos
	EdgeNeg
)

// String names the edge keyword.
func (e EventEdge) String() string {
	switch e {
	case EdgePos:
		return "posedge"
	case EdgeNeg:
		return "negedge"
	}
	return ""
}

// EventExpr is one entry in a sensitivity list.
type EventExpr struct {
	Edge   EventEdge
	Signal Expr
}

// AlwaysBlock is an always process. Star is true for always @(*) or
// always @* forms.
type AlwaysBlock struct {
	Star      bool
	Events    []EventExpr
	Body      Stmt
	AlwaysPos diag.Pos
}

func (a *AlwaysBlock) item() {}

// Pos returns the block's position.
func (a *AlwaysBlock) Pos() diag.Pos { return a.AlwaysPos }

// IsClocked reports whether any sensitivity entry has an edge.
func (a *AlwaysBlock) IsClocked() bool {
	for _, e := range a.Events {
		if e.Edge != EdgeNone {
			return true
		}
	}
	return false
}

// InitialBlock is an initial process (accepted, ignored in synthesis-style
// simulation except for constant reg initialization).
type InitialBlock struct {
	Body    Stmt
	InitPos diag.Pos
}

func (i *InitialBlock) item() {}

// Pos returns the block's position.
func (i *InitialBlock) Pos() diag.Pos { return i.InitPos }

// Stmt is a procedural statement.
type Stmt interface {
	Node
	stmt()
}

// BlockStmt is begin ... end, optionally named, optionally declaring local
// variables (begin : name integer i; ... end).
type BlockStmt struct {
	Label    string
	Decls    []*Decl
	Stmts    []Stmt
	BeginPos diag.Pos
}

func (b *BlockStmt) stmt() {}

// Pos returns the block's position.
func (b *BlockStmt) Pos() diag.Pos { return b.BeginPos }

// AssignStmt is a procedural assignment, blocking (=) or non-blocking (<=).
type AssignStmt struct {
	LHS      Expr
	RHS      Expr
	Blocking bool
	StmtPos  diag.Pos
}

func (a *AssignStmt) stmt() {}

// Pos returns the statement's position.
func (a *AssignStmt) Pos() diag.Pos { return a.StmtPos }

// IfStmt is if/else.
type IfStmt struct {
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
	IfPos diag.Pos
}

func (i *IfStmt) stmt() {}

// Pos returns the statement's position.
func (i *IfStmt) Pos() diag.Pos { return i.IfPos }

// CaseKind distinguishes case/casez/casex.
type CaseKind int

// Case kinds.
const (
	CasePlain CaseKind = iota
	CaseZ
	CaseX
)

// String names the case keyword.
func (k CaseKind) String() string {
	switch k {
	case CaseZ:
		return "casez"
	case CaseX:
		return "casex"
	}
	return "case"
}

// CaseItem is one arm of a case statement. A nil Labels slice marks the
// default arm.
type CaseItem struct {
	Labels []Expr
	Body   Stmt
	ArmPos diag.Pos
}

// CaseStmt is a case statement.
type CaseStmt struct {
	Kind    CaseKind
	Subject Expr
	Items   []CaseItem
	CasePos diag.Pos
}

func (c *CaseStmt) stmt() {}

// Pos returns the statement's position.
func (c *CaseStmt) Pos() diag.Pos { return c.CasePos }

// ForStmt is a for loop. LoopVar is non-empty when the init clause declares
// its variable inline (for (int i = 0; ...)), SV style.
type ForStmt struct {
	LoopVar    string // "" when init assigns an existing variable
	LoopVarPos diag.Pos
	Init       *AssignStmt
	Cond       Expr
	Step       *AssignStmt
	Body       Stmt
	ForPos     diag.Pos
}

func (f *ForStmt) stmt() {}

// Pos returns the statement's position.
func (f *ForStmt) Pos() diag.Pos { return f.ForPos }

// NullStmt is a lone semicolon.
type NullStmt struct {
	StmtPos diag.Pos
}

func (n *NullStmt) stmt() {}

// Pos returns the statement's position.
func (n *NullStmt) Pos() diag.Pos { return n.StmtPos }

// Expr is an expression.
type Expr interface {
	Node
	expr()
}

// Ident is an identifier reference.
type Ident struct {
	Name    string
	NamePos diag.Pos
}

func (i *Ident) expr() {}

// Pos returns the identifier's position.
func (i *Ident) Pos() diag.Pos { return i.NamePos }

// Number is an integer literal. Text preserves the source spelling
// (normalized to lowercase base letter).
type Number struct {
	Text   string
	NumPos diag.Pos
}

func (n *Number) expr() {}

// Pos returns the literal's position.
func (n *Number) Pos() diag.Pos { return n.NumPos }

// Value decodes the literal into a bit vector. Unsized literals get width
// 32, per the Verilog LRM's minimum integer width. x/z/? digits decode as 0
// in this two-state evaluator.
func (n *Number) Value() (bitvec.Vec, error) {
	text := strings.ReplaceAll(n.Text, "_", "")
	tick := strings.IndexByte(text, '\'')
	if tick < 0 {
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return bitvec.Vec{}, fmt.Errorf("bad decimal literal %q", n.Text)
		}
		return bitvec.FromUint64(32, v), nil
	}
	width := 32
	if tick > 0 {
		w, err := strconv.Atoi(text[:tick])
		if err != nil || w <= 0 {
			return bitvec.Vec{}, fmt.Errorf("bad literal size in %q", n.Text)
		}
		width = w
	}
	rest := text[tick+1:]
	if rest == "" {
		return bitvec.Vec{}, fmt.Errorf("bad literal %q", n.Text)
	}
	base := rest[0]
	digits := rest[1:]
	var bitsPerDigit int
	switch base {
	case 'b':
		bitsPerDigit = 1
	case 'o':
		bitsPerDigit = 3
	case 'h':
		bitsPerDigit = 4
	case 'd':
		v, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return bitvec.Vec{}, fmt.Errorf("bad decimal digits in %q", n.Text)
		}
		return bitvec.FromUint64(width, v), nil
	default:
		return bitvec.Vec{}, fmt.Errorf("bad base %q in %q", string(base), n.Text)
	}
	out := bitvec.New(width)
	for i := 0; i < len(digits); i++ {
		c := digits[len(digits)-1-i]
		var dv uint64
		switch {
		case c >= '0' && c <= '9':
			dv = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			dv = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			dv = uint64(c-'A') + 10
		case c == 'x' || c == 'z' || c == 'X' || c == 'Z' || c == '?':
			dv = 0
		default:
			return bitvec.Vec{}, fmt.Errorf("bad digit %q in %q", string(c), n.Text)
		}
		for b := 0; b < bitsPerDigit; b++ {
			if dv>>b&1 == 1 {
				idx := i*bitsPerDigit + b
				if idx < width {
					out = out.SetBit(idx, true)
				}
			}
		}
	}
	return out, nil
}

// WildcardMask decodes the literal and additionally returns a care mask:
// bit i of the mask is 0 when the source digit at that position was z or ?
// (and x too, when includeX is set) — the don't-care positions of
// casez/casex label matching. For literals without wildcards the mask is
// all ones.
func (n *Number) WildcardMask(includeX bool) (val, care bitvec.Vec, err error) {
	val, err = n.Value()
	if err != nil {
		return bitvec.Vec{}, bitvec.Vec{}, err
	}
	care = bitvec.New(val.Width()).Not() // all ones
	text := strings.ReplaceAll(n.Text, "_", "")
	tick := strings.IndexByte(text, '\'')
	if tick < 0 {
		return val, care, nil
	}
	rest := text[tick+1:]
	if rest == "" {
		return val, care, nil
	}
	base := rest[0]
	digits := rest[1:]
	var bitsPerDigit int
	switch base {
	case 'b':
		bitsPerDigit = 1
	case 'o':
		bitsPerDigit = 3
	case 'h':
		bitsPerDigit = 4
	default:
		return val, care, nil // decimal literals carry no wildcards
	}
	for i := 0; i < len(digits); i++ {
		c := digits[len(digits)-1-i]
		wild := c == 'z' || c == 'Z' || c == '?'
		if includeX && (c == 'x' || c == 'X') {
			wild = true
		}
		if !wild {
			continue
		}
		for b := 0; b < bitsPerDigit; b++ {
			idx := i*bitsPerDigit + b
			if idx < care.Width() {
				care = care.SetBit(idx, false)
			}
		}
	}
	return val, care, nil
}

// Unary is a unary operation: ~ ! - + & | ^ ~& ~| ~^.
type Unary struct {
	Op    string
	X     Expr
	OpPos diag.Pos
}

func (u *Unary) expr() {}

// Pos returns the operator's position.
func (u *Unary) Pos() diag.Pos { return u.OpPos }

// Binary is a binary operation.
type Binary struct {
	Op    string
	X, Y  Expr
	OpPos diag.Pos
}

func (b *Binary) expr() {}

// Pos returns the operator's position.
func (b *Binary) Pos() diag.Pos { return b.OpPos }

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
	QPos             diag.Pos
}

func (t *Ternary) expr() {}

// Pos returns the '?' position.
func (t *Ternary) Pos() diag.Pos { return t.QPos }

// Concat is {a, b, c}.
type Concat struct {
	Elems    []Expr
	BracePos diag.Pos
}

func (c *Concat) expr() {}

// Pos returns the opening brace's position.
func (c *Concat) Pos() diag.Pos { return c.BracePos }

// Repl is a replication {N{expr}}.
type Repl struct {
	Count    Expr
	Value    Expr
	BracePos diag.Pos
}

func (r *Repl) expr() {}

// Pos returns the opening brace's position.
func (r *Repl) Pos() diag.Pos { return r.BracePos }

// Index is a bit-select x[i].
type Index struct {
	X     Expr
	Idx   Expr
	LbPos diag.Pos
}

func (i *Index) expr() {}

// Pos returns the '[' position.
func (i *Index) Pos() diag.Pos { return i.LbPos }

// PartSelectKind distinguishes constant ([h:l]) and indexed (+:/-:) part
// selects.
type PartSelectKind int

// Part-select kinds.
const (
	SelectConst PartSelectKind = iota
	SelectPlus                 // [base +: width]
	SelectMinus                // [base -: width]
)

// Slice is a part-select x[hi:lo], x[base +: w], or x[base -: w].
type Slice struct {
	X      Expr
	Kind   PartSelectKind
	Hi, Lo Expr // for SelectConst; for indexed selects Hi=base, Lo=width
	LbPos  diag.Pos
}

func (s *Slice) expr() {}

// Pos returns the '[' position.
func (s *Slice) Pos() diag.Pos { return s.LbPos }

// Call is a system-function call such as $signed(x) or $clog2(n).
type Call struct {
	Name    string
	Args    []Expr
	CallPos diag.Pos
}

func (c *Call) expr() {}

// Pos returns the call's position.
func (c *Call) Pos() diag.Pos { return c.CallPos }

// WalkExprs calls fn for e and every sub-expression, pre-order.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Unary:
		WalkExprs(x.X, fn)
	case *Binary:
		WalkExprs(x.X, fn)
		WalkExprs(x.Y, fn)
	case *Ternary:
		WalkExprs(x.Cond, fn)
		WalkExprs(x.Then, fn)
		WalkExprs(x.Else, fn)
	case *Concat:
		for _, el := range x.Elems {
			WalkExprs(el, fn)
		}
	case *Repl:
		WalkExprs(x.Count, fn)
		WalkExprs(x.Value, fn)
	case *Index:
		WalkExprs(x.X, fn)
		WalkExprs(x.Idx, fn)
	case *Slice:
		WalkExprs(x.X, fn)
		WalkExprs(x.Hi, fn)
		WalkExprs(x.Lo, fn)
	case *Call:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	}
}

// WalkStmts calls fn for s and every sub-statement, pre-order.
func WalkStmts(s Stmt, fn func(Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch x := s.(type) {
	case *BlockStmt:
		for _, sub := range x.Stmts {
			WalkStmts(sub, fn)
		}
	case *IfStmt:
		WalkStmts(x.Then, fn)
		WalkStmts(x.Else, fn)
	case *CaseStmt:
		for _, item := range x.Items {
			WalkStmts(item.Body, fn)
		}
	case *ForStmt:
		WalkStmts(x.Body, fn)
	}
}
