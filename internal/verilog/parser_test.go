package verilog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/diag"
)

func mustParse(t *testing.T, src string) *SourceFile {
	t.Helper()
	file, diags := Parse(src)
	if diags.HasErrors() {
		t.Fatalf("unexpected parse errors: %s\nsource:\n%s", diags.Summary(), src)
	}
	return file
}

func parseErrors(t *testing.T, src string) diag.List {
	t.Helper()
	_, diags := Parse(src)
	if !diags.HasErrors() {
		t.Fatalf("expected parse errors, got none\nsource:\n%s", src)
	}
	return diags
}

func hasCategory(diags diag.List, cat diag.Category) bool {
	for _, d := range diags {
		if d.Category == cat {
			return true
		}
	}
	return false
}

func TestParseMinimalModule(t *testing.T) {
	file := mustParse(t, "module top; endmodule")
	if len(file.Modules) != 1 || file.Modules[0].Name != "top" {
		t.Fatalf("bad module: %+v", file.Modules)
	}
	if !file.Modules[0].Complete {
		t.Error("module should be complete")
	}
}

func TestParseANSIPorts(t *testing.T) {
	file := mustParse(t, `
module top_module (
	input [7:0] in,
	input clk, rst,
	output reg [7:0] out,
	output wire done
);
endmodule`)
	m := file.Modules[0]
	if len(m.Ports) != 5 {
		t.Fatalf("got %d ports, want 5", len(m.Ports))
	}
	checks := []struct {
		name string
		dir  PortDir
		kind NetKind
	}{
		{"in", DirInput, KindNone},
		{"clk", DirInput, KindNone},
		{"rst", DirInput, KindNone},
		{"out", DirOutput, KindReg},
		{"done", DirOutput, KindWire},
	}
	for i, c := range checks {
		p := m.Ports[i]
		if p.Name != c.name || p.Dir != c.dir || p.Kind != c.kind {
			t.Errorf("port %d = {%s %v %v}, want {%s %v %v}",
				i, p.Name, p.Dir, p.Kind, c.name, c.dir, c.kind)
		}
	}
	if m.Ports[0].VRange == nil {
		t.Error("port 'in' should have a range")
	}
	if m.Ports[1].VRange != nil {
		t.Error("port 'clk' should not have a range")
	}
}

func TestParseNonANSIPorts(t *testing.T) {
	file := mustParse(t, `
module top(a, b, y);
	input a, b;
	output y;
	assign y = a & b;
endmodule`)
	m := file.Modules[0]
	if len(m.Ports) != 3 {
		t.Fatalf("got %d header ports, want 3", len(m.Ports))
	}
	// body port items: input a, input b (split), output y
	portItems := 0
	for _, item := range m.Items {
		if _, ok := item.(*PortItem); ok {
			portItems++
		}
	}
	if portItems != 3 {
		t.Errorf("got %d body port items, want 3", portItems)
	}
}

func TestParseParameterHeader(t *testing.T) {
	file := mustParse(t, `
module counter #(parameter WIDTH = 8, parameter MAX = 255) (
	input clk,
	output reg [WIDTH-1:0] count
);
endmodule`)
	m := file.Modules[0]
	params := 0
	for _, item := range m.Items {
		if _, ok := item.(*ParamDecl); ok {
			params++
		}
	}
	if params != 2 {
		t.Errorf("got %d param decls, want 2", params)
	}
}

func TestParseAlwaysVariants(t *testing.T) {
	srcs := []string{
		"module t(input clk, output reg q); always @(posedge clk) q <= 1; endmodule",
		"module t(input clk, input rst, output reg q); always @(posedge clk or negedge rst) q <= 1; endmodule",
		"module t(input a, output reg q); always @(*) q = a; endmodule",
		"module t(input a, output reg q); always @* q = a; endmodule",
		"module t(input a, input b, output reg q); always @(a or b) q = a & b; endmodule",
		"module t(input a, input b, output reg q); always @(a, b) q = a | b; endmodule",
	}
	for _, src := range srcs {
		file := mustParse(t, src)
		found := false
		for _, item := range file.Modules[0].Items {
			if _, ok := item.(*AlwaysBlock); ok {
				found = true
			}
		}
		if !found {
			t.Errorf("no always block parsed from: %s", src)
		}
	}
}

func TestParseStatements(t *testing.T) {
	src := `
module fsm(input clk, input rst, input in, output reg out);
	reg [1:0] state, next;
	always @(posedge clk) begin
		if (rst)
			state <= 2'b00;
		else
			state <= next;
	end
	always @(*) begin
		case (state)
			2'b00: next = in ? 2'b01 : 2'b00;
			2'b01, 2'b10: next = 2'b10;
			default: next = 2'b00;
		endcase
		out = state == 2'b10;
	end
endmodule`
	file := mustParse(t, src)
	m := file.Modules[0]
	always := 0
	for _, item := range m.Items {
		if _, ok := item.(*AlwaysBlock); ok {
			always++
		}
	}
	if always != 2 {
		t.Fatalf("got %d always blocks, want 2", always)
	}
}

func TestParseForLoop(t *testing.T) {
	src := `
module rev(input [7:0] in, output reg [7:0] out);
	integer i;
	always @(*) begin
		for (i = 0; i < 8; i = i + 1)
			out[i] = in[7 - i];
	end
endmodule`
	mustParse(t, src)
}

func TestParseSVForLoop(t *testing.T) {
	src := `
module rev(input [99:0] in, output reg [99:0] out);
	always @(*) begin
		for (int i = 0; i < 100; i = i + 1)
			out[i] = in[99 - i];
	end
endmodule`
	file := mustParse(t, src)
	var forStmt *ForStmt
	for _, item := range file.Modules[0].Items {
		if ab, ok := item.(*AlwaysBlock); ok {
			WalkStmts(ab.Body, func(s Stmt) {
				if f, ok := s.(*ForStmt); ok {
					forStmt = f
				}
			})
		}
	}
	if forStmt == nil || forStmt.LoopVar != "i" {
		t.Fatalf("SV for loop with inline declaration not parsed: %+v", forStmt)
	}
}

func TestParseConcatAndReplication(t *testing.T) {
	src := `
module c(input [3:0] a, input [3:0] b, output [7:0] y, output [15:0] z);
	assign y = {a, b};
	assign z = {4{a}};
endmodule`
	file := mustParse(t, src)
	var concat, repl bool
	for _, item := range file.Modules[0].Items {
		if as, ok := item.(*AssignItem); ok {
			switch as.RHS.(type) {
			case *Concat:
				concat = true
			case *Repl:
				repl = true
			}
		}
	}
	if !concat || !repl {
		t.Fatalf("concat=%v repl=%v, want both", concat, repl)
	}
}

func TestParseConcatLHS(t *testing.T) {
	src := `
module add(input [7:0] a, input [7:0] b, output [7:0] sum, output co);
	assign {co, sum} = a + b;
endmodule`
	file := mustParse(t, src)
	as := file.Modules[0].Items[0].(*AssignItem)
	if _, ok := as.LHS.(*Concat); !ok {
		t.Fatalf("LHS is %T, want *Concat", as.LHS)
	}
}

func TestParsePartSelects(t *testing.T) {
	src := `
module s(input [31:0] in, input [4:0] sel, output [7:0] a, output [7:0] b, output [7:0] c);
	assign a = in[15:8];
	assign b = in[sel +: 8];
	assign c = in[sel -: 8];
endmodule`
	mustParse(t, src)
}

func TestParseTernaryPrecedence(t *testing.T) {
	src := "module m(input a, input b, input c, output y); assign y = a ? b : c; endmodule"
	file := mustParse(t, src)
	as := file.Modules[0].Items[0].(*AssignItem)
	if _, ok := as.RHS.(*Ternary); !ok {
		t.Fatalf("RHS is %T, want *Ternary", as.RHS)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	// a | b & c must parse as a | (b & c)
	src := "module m(input a, input b, input c, output y); assign y = a | b & c; endmodule"
	file := mustParse(t, src)
	as := file.Modules[0].Items[0].(*AssignItem)
	or, ok := as.RHS.(*Binary)
	if !ok || or.Op != "|" {
		t.Fatalf("top op = %+v, want |", as.RHS)
	}
	and, ok := or.Y.(*Binary)
	if !ok || and.Op != "&" {
		t.Fatalf("rhs of | = %+v, want &-expression", or.Y)
	}
}

func TestParseCommaChainedAssign(t *testing.T) {
	src := "module m(input a, output x, output y); assign x = a, y = ~a; endmodule"
	file := mustParse(t, src)
	count := 0
	for _, item := range file.Modules[0].Items {
		if _, ok := item.(*AssignItem); ok {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("got %d assigns, want 2", count)
	}
}

// ---------- error categories ----------

func TestParseErrMissingSemicolon(t *testing.T) {
	diags := parseErrors(t, `
module m(input a, output reg y);
	always @(*) begin
		y = a
	end
endmodule`)
	if !hasCategory(diags, diag.CatMissingSemicolon) {
		t.Fatalf("want missing-semicolon, got %s", diags.Summary())
	}
}

func TestParseErrUnmatchedBegin(t *testing.T) {
	diags := parseErrors(t, `
module m(input a, output reg y);
	always @(*) begin
		y = a;
endmodule`)
	if !hasCategory(diags, diag.CatUnmatchedBeginEnd) {
		t.Fatalf("want unmatched-begin-end, got %s", diags.Summary())
	}
}

func TestParseErrMissingEndmodule(t *testing.T) {
	diags := parseErrors(t, `
module m(input a, output y);
	assign y = a;`)
	if !hasCategory(diags, diag.CatMissingEndmodule) {
		t.Fatalf("want missing-endmodule, got %s", diags.Summary())
	}
}

func TestParseErrStrayEndmodule(t *testing.T) {
	diags := parseErrors(t, "module m; endmodule\nendmodule")
	if !hasCategory(diags, diag.CatModuleStructure) {
		t.Fatalf("want module-structure, got %s", diags.Summary())
	}
}

func TestParseErrCStyleIncrement(t *testing.T) {
	diags := parseErrors(t, `
module m(input [7:0] in, output reg [7:0] out);
	integer i;
	always @(*) begin
		for (i = 0; i < 8; i++)
			out[i] = in[i];
	end
endmodule`)
	if !hasCategory(diags, diag.CatCStyleSyntax) {
		t.Fatalf("want c-style-syntax, got %s", diags.Summary())
	}
}

func TestParseErrCStyleBraces(t *testing.T) {
	diags := parseErrors(t, `
module m(input a, output reg y);
	always @(*) begin
		if (a) {
			y = 1;
		}
	end
endmodule`)
	if !hasCategory(diags, diag.CatCStyleSyntax) {
		t.Fatalf("want c-style-syntax, got %s", diags.Summary())
	}
}

func TestParseErrCStylePlusEquals(t *testing.T) {
	diags := parseErrors(t, `
module m(input clk, output reg [7:0] cnt);
	always @(posedge clk)
		cnt += 1;
endmodule`)
	if !hasCategory(diags, diag.CatCStyleSyntax) {
		t.Fatalf("want c-style-syntax, got %s", diags.Summary())
	}
}

func TestParseErrMisplacedDirective(t *testing.T) {
	diags := parseErrors(t, "module m(input a, output y);\n`timescale 1ns/1ps\nassign y = a;\nendmodule")
	if !hasCategory(diags, diag.CatMisplacedDirective) {
		t.Fatalf("want misplaced-directive, got %s", diags.Summary())
	}
}

func TestParseErrKeywordAsIdent(t *testing.T) {
	diags := parseErrors(t, "module m(input wire, output y); assign y = 0; endmodule")
	// 'wire' consumed as net kind, then ',' where name expected
	if !diags.HasErrors() {
		t.Fatal("expected errors")
	}
	diags = parseErrors(t, "module m(input a, output reg); assign reg = a; endmodule")
	if !hasCategory(diags, diag.CatKeywordAsIdent) {
		t.Fatalf("want keyword-as-identifier, got %s", diags.Summary())
	}
}

func TestParseErrSensitivityList(t *testing.T) {
	diags := parseErrors(t, `
module m(input a, output reg y);
	always begin
		y = a;
	end
endmodule`)
	if !hasCategory(diags, diag.CatSensitivityList) {
		t.Fatalf("want sensitivity-list, got %s", diags.Summary())
	}
}

func TestParseErrMalformedLiteral(t *testing.T) {
	diags := parseErrors(t, "module m(output [7:0] y); assign y = 8'hXYZW; endmodule")
	if !hasCategory(diags, diag.CatMalformedLiteral) {
		t.Fatalf("want malformed-literal, got %s", diags.Summary())
	}
}

func TestParseErrEmptyConcat(t *testing.T) {
	diags := parseErrors(t, "module m(output y); assign y = {}; endmodule")
	if !hasCategory(diags, diag.CatBadConcat) {
		t.Fatalf("want bad-concatenation, got %s", diags.Summary())
	}
}

func TestParseErrCodeOutsideModule(t *testing.T) {
	diags := parseErrors(t, "assign y = a;\nmodule m; endmodule")
	if !hasCategory(diags, diag.CatModuleStructure) {
		t.Fatalf("want module-structure, got %s", diags.Summary())
	}
}

func TestParseRecoveryProducesPartialAST(t *testing.T) {
	// Even with an error mid-module the parser should deliver the module
	// and subsequent items.
	src := `
module m(input a, input b, output y, output z);
	assign y = a &&& b;
	assign z = a | b;
endmodule`
	file, diags := Parse(src)
	if !diags.HasErrors() {
		t.Skip("&&& happens to parse; adjust the fixture")
	}
	if len(file.Modules) != 1 {
		t.Fatalf("partial AST lost the module")
	}
}

func TestParseErrorsBounded(t *testing.T) {
	// Error recovery must not loop forever or flood diagnostics.
	src := "module m(input a);\n"
	for i := 0; i < 200; i++ {
		src += "assign = = = ;\n"
	}
	src += "endmodule"
	_, diags := Parse(src)
	if len(diags.Errors()) > maxParseErrors+2 {
		t.Fatalf("got %d errors, want at most ~%d", len(diags.Errors()), maxParseErrors)
	}
}

// TestParseNeverPanics fuzzes the parser with arbitrary strings: it must
// terminate and never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		file, _ := Parse(string(data))
		return file != nil
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsOnTokenSoup fuzzes with syntactically plausible
// token sequences, which reach deeper parser paths than byte soup.
func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	vocab := []string{
		"module", "endmodule", "input", "output", "reg", "wire", "assign",
		"always", "begin", "end", "if", "else", "case", "endcase", "for",
		"posedge", "clk", "a", "b", "y", "[7:0]", "[", "]", "(", ")", ";",
		",", "=", "<=", "@", "*", "{", "}", "8'hff", "4'b1010", "1", "0",
		"+", "-", "&", "|", "^", "~", "?", ":", "`timescale", "default",
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		n := rng.Intn(60)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = vocab[rng.Intn(len(vocab))]
		}
		src := "module m(input a, output y);\n"
		for _, p := range parts {
			src += p + " "
		}
		src += "\nendmodule"
		file, _ := Parse(src) // must not panic
		if file == nil {
			t.Fatal("nil file")
		}
	}
}

func TestNumberValues(t *testing.T) {
	cases := []struct {
		text  string
		width int
		val   uint64
	}{
		{"42", 32, 42},
		{"8'hff", 8, 255},
		{"8'hFF", 8, 255},
		{"4'b1010", 4, 10},
		{"3'o7", 3, 7},
		{"16'd1234", 16, 1234},
		{"4'b10_10", 4, 10},
		{"2'b11", 2, 3},
		{"8'bxxxxxxxx", 8, 0}, // x decodes as 0 in two-state
	}
	for _, c := range cases {
		n := &Number{Text: c.text}
		v, err := n.Value()
		if err != nil {
			t.Errorf("Value(%q) error: %v", c.text, err)
			continue
		}
		if v.Width() != c.width || v.Uint64() != c.val {
			t.Errorf("Value(%q) = width %d val %d, want width %d val %d",
				c.text, v.Width(), v.Uint64(), c.width, c.val)
		}
	}
}

func TestParseConcatLHSInAlways(t *testing.T) {
	// A '{' can legally open a statement when it is a concatenation
	// assignment target; it must not be mistaken for a C-style block.
	src := `
module add(input [3:0] a, input [3:0] b, output reg [3:0] sum, output reg carry);
	always @(*) begin
		{carry, sum} = a + b;
	end
endmodule`
	file := mustParse(t, src)
	var found bool
	for _, item := range file.Modules[0].Items {
		ab, ok := item.(*AlwaysBlock)
		if !ok {
			continue
		}
		WalkStmts(ab.Body, func(s Stmt) {
			if as, ok := s.(*AssignStmt); ok {
				if _, isConcat := as.LHS.(*Concat); isConcat {
					found = true
				}
			}
		})
	}
	if !found {
		t.Fatal("concat-LHS assignment statement not parsed")
	}
}

func TestParseConcatLHSNonBlocking(t *testing.T) {
	mustParse(t, `
module m(input clk, input [7:0] d, output reg [3:0] hi, output reg [3:0] lo);
	always @(posedge clk)
		{hi, lo} <= d;
endmodule`)
}
