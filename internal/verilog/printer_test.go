package verilog

import (
	"strings"
	"testing"
)

func TestPrintMinimal(t *testing.T) {
	file := mustParse(t, "module top; endmodule")
	out := Print(file)
	if !strings.Contains(out, "module top;") || !strings.Contains(out, "endmodule") {
		t.Fatalf("bad print:\n%s", out)
	}
}

func TestPrintRoundTripReparses(t *testing.T) {
	srcs := []string{
		`module m(input [7:0] a, input [7:0] b, output [7:0] y);
	assign y = a ^ b;
endmodule`,
		`module fsm(input clk, input rst, input in, output reg out);
	reg [1:0] state, next;
	always @(posedge clk) begin
		if (rst)
			state <= 2'b00;
		else
			state <= next;
	end
	always @(*) begin
		case (state)
			2'b00: next = in ? 2'b01 : 2'b00;
			2'b01, 2'b10: next = 2'b10;
			default: next = 2'b00;
		endcase
		out = state == 2'b10;
	end
endmodule`,
		`module rev(input [99:0] in, output reg [99:0] out);
	always @(*) begin
		for (int i = 0; i < 100; i = i + 1)
			out[i] = in[99 - i];
	end
endmodule`,
		`module ps(input [31:0] in, input [4:0] sel, output [7:0] y, output [7:0] z);
	assign y = in[sel +: 8];
	assign z = {4{in[1:0]}};
endmodule`,
		"`timescale 1ns/1ps\nmodule t(input a, output y);\n\tassign y = ~a;\nendmodule",
	}
	for _, src := range srcs {
		file := mustParse(t, src)
		printed := Print(file)
		reparsed, diags := Parse(printed)
		if diags.HasErrors() {
			t.Fatalf("printed source does not re-parse: %s\nprinted:\n%s", diags.Summary(), printed)
		}
		// Second print must be a fixpoint: print(parse(print(x))) == print(x).
		again := Print(reparsed)
		if again != printed {
			t.Fatalf("printer not idempotent:\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	}
}

func TestPrintPreservesModuleShape(t *testing.T) {
	src := `module m #(parameter W = 8) (
	input clk,
	input [W-1:0] d,
	output reg [W-1:0] q
);
	localparam HALF = W / 2;
	always @(posedge clk)
		q <= d;
endmodule`
	file := mustParse(t, src)
	printed := Print(file)
	reparsed, diags := Parse(printed)
	if diags.HasErrors() {
		t.Fatalf("re-parse failed: %s\n%s", diags.Summary(), printed)
	}
	orig, re := file.Modules[0], reparsed.Modules[0]
	if orig.Name != re.Name {
		t.Fatalf("module name lost")
	}
	if len(orig.Ports) != len(re.Ports) {
		t.Fatalf("ports %d -> %d", len(orig.Ports), len(re.Ports))
	}
	for i := range orig.Ports {
		if orig.Ports[i].Name != re.Ports[i].Name || orig.Ports[i].Dir != re.Ports[i].Dir {
			t.Fatalf("port %d changed: %+v vs %+v", i, orig.Ports[i], re.Ports[i])
		}
	}
}

func TestExprStringForms(t *testing.T) {
	cases := map[string]string{
		"a + b * c":  "(a + (b * c))",
		"a ? b : c":  "(a ? b : c)",
		"{a, b}":     "{a, b}",
		"{3{a}}":     "{3{a}}",
		"x[7:0]":     "x[7:0]",
		"x[i +: 8]":  "x[i +: 8]",
		"~&x":        "~&x",
		"$signed(a)": "$signed(a)",
		"in[99 - i]": "in[(99 - i)]",
	}
	for src, want := range cases {
		full := "module m(input a, output y); assign y = " + src + "; endmodule"
		file, diags := Parse(full)
		if diags.HasErrors() {
			t.Fatalf("fixture %q: %s", src, diags.Summary())
		}
		as := file.Modules[0].Items[0].(*AssignItem)
		if got := ExprString(as.RHS); got != want {
			t.Errorf("ExprString(%q) = %q, want %q", src, got, want)
		}
	}
}
