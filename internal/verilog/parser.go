package verilog

import (
	"repro/internal/diag"
)

// maxParseErrors bounds error recovery: real compilers stop flooding the
// log after a handful of cascading errors, and the agent only ever reads
// the first few anyway.
const maxParseErrors = 10

// Parser is a recursive-descent parser with error recovery. Parse errors
// are collected as category-tagged diagnostics; the parser synchronizes at
// statement boundaries and keeps going so that multi-error files produce
// multi-error logs, as both reference compilers do.
type Parser struct {
	toks  []Token
	pos   int
	diags diag.List
	// pendingItems buffers extra items produced by multi-name
	// declarations and comma-chained assigns; parseModule drains it after
	// each parseItem call.
	pendingItems []Item
}

// Parse parses src and returns the AST plus all diagnostics. The AST is
// always non-nil, though it may be partial when errors occurred.
func Parse(src string) (*SourceFile, diag.List) {
	p := &Parser{toks: Lex(src)}
	file := p.parseFile()
	return file, p.diags
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *Parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *Parser) at(text string) bool { return p.cur().Is(text) }

func (p *Parser) accept(text string) bool {
	if p.at(text) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) errorf(cat diag.Category, pos diag.Pos, format string, args ...any) {
	if len(p.diags.Errors()) >= maxParseErrors {
		return
	}
	p.diags.Add(diag.Errorf(cat, pos, format, args...))
}

// expect consumes the given operator/keyword or records an error. The
// category lets callers classify what a missing token means (a missing ';'
// is CatMissingSemicolon, a missing 'end' is CatUnmatchedBeginEnd, ...).
func (p *Parser) expect(text string, cat diag.Category) bool {
	if p.accept(text) {
		return true
	}
	t := p.cur()
	p.errorf(cat, t.Pos, "expected '%s' but found '%s'", text, tokenDesc(t))
	return false
}

func tokenDesc(t Token) string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokError:
		return t.Text
	default:
		return t.Text
	}
}

// expectIdent consumes an identifier or records an error. A keyword in an
// identifier slot gets the dedicated keyword-as-identifier category.
func (p *Parser) expectIdent(what string) (Token, bool) {
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		p.advance()
		return t, true
	case TokKeyword:
		p.errorf(diag.CatKeywordAsIdent, t.Pos,
			"'%s' is a reserved word and cannot be used as %s", t.Text, what)
		p.advance()
		return t, false
	default:
		p.errorf(diag.CatUnexpectedToken, t.Pos, "expected %s but found '%s'", what, tokenDesc(t))
		return t, false
	}
}

// syncTo skips tokens until one of the stop texts, EOF, or 'endmodule'.
func (p *Parser) syncTo(stops ...string) {
	for {
		t := p.cur()
		if t.Kind == TokEOF {
			return
		}
		for _, s := range stops {
			if t.Is(s) {
				return
			}
		}
		if t.Is("endmodule") || t.Is("module") {
			return
		}
		p.advance()
	}
}

// ---------- file & module ----------

func (p *Parser) parseFile() *SourceFile {
	file := &SourceFile{}
	for {
		t := p.cur()
		switch {
		case t.Kind == TokEOF:
			return file
		case t.Kind == TokDirective:
			file.Directives = append(file.Directives, Directive{Name: t.Text, DirPos: t.Pos})
			p.advance()
		case t.Is("module"):
			file.Modules = append(file.Modules, p.parseModule())
		case t.Is("endmodule"):
			p.errorf(diag.CatModuleStructure, t.Pos, "'endmodule' without a matching 'module'")
			p.advance()
		case t.Kind == TokError:
			p.errorf(t.Cat, t.Pos, "%s", t.Text)
			p.advance()
		default:
			p.errorf(diag.CatModuleStructure, t.Pos,
				"'%s' found outside of any module; expected 'module'", tokenDesc(t))
			p.syncTo()
			if !p.cur().Is("module") && p.cur().Kind != TokEOF {
				p.advance()
			}
		}
	}
}

func (p *Parser) parseModule() *Module {
	p.expect("module", diag.CatModuleStructure)
	nameTok, _ := p.expectIdent("a module name")
	m := &Module{Name: nameTok.Text, NamePos: nameTok.Pos}

	if p.at("#") { // parameter port list: #(parameter W = 8, ...)
		p.advance()
		if p.expect("(", diag.CatUnexpectedToken) {
			p.parseHeaderParams(m)
			p.expect(")", diag.CatUnexpectedToken)
		}
	}
	if p.accept("(") {
		p.parsePortList(m)
		p.expect(")", diag.CatPortMismatch)
	}
	p.expect(";", diag.CatMissingSemicolon)

	for {
		t := p.cur()
		switch {
		case t.Kind == TokEOF:
			p.errorf(diag.CatMissingEndmodule, t.Pos,
				"reached end of file while inside module '%s'; missing 'endmodule'", m.Name)
			return m
		case t.Is("endmodule"):
			p.advance()
			m.Complete = true
			return m
		case t.Is("module"):
			p.errorf(diag.CatMissingEndmodule, t.Pos,
				"'module' found inside module '%s'; missing 'endmodule'", m.Name)
			return m
		default:
			if item := p.parseItem(m); item != nil {
				m.Items = append(m.Items, item)
			}
			if len(p.pendingItems) > 0 {
				m.Items = append(m.Items, p.pendingItems...)
				p.pendingItems = nil
			}
		}
	}
}

func (p *Parser) parseHeaderParams(m *Module) {
	for {
		p.accept("parameter")
		var rng *Range
		if p.at("[") {
			rng = p.parseRange()
		}
		nameTok, ok := p.expectIdent("a parameter name")
		if !ok {
			p.syncTo(",", ")")
		} else {
			dn := DeclName{Name: nameTok.Text, NamePos: nameTok.Pos}
			if p.accept("=") {
				dn.Init = p.parseExpr()
			}
			m.Items = append(m.Items, &ParamDecl{
				VRange: rng, Names: []DeclName{dn}, DeclPos: nameTok.Pos,
			})
		}
		if !p.accept(",") {
			return
		}
	}
}

// parsePortList handles both ANSI (input [7:0] a, output reg b) and
// non-ANSI (a, b, c) header styles, including mixtures.
func (p *Parser) parsePortList(m *Module) {
	if p.at(")") {
		return
	}
	// Carry direction/kind/range forward for "input [7:0] a, b" style lists.
	var cur PortDecl
	for {
		t := p.cur()
		switch {
		case t.Is("input") || t.Is("output") || t.Is("inout"):
			cur = PortDecl{DeclPos: t.Pos}
			switch t.Text {
			case "input":
				cur.Dir = DirInput
			case "output":
				cur.Dir = DirOutput
			default:
				cur.Dir = DirInout
			}
			p.advance()
			cur.Kind = p.parseOptionalKind()
			if p.accept("signed") {
				cur.Signed = true
			}
			if p.at("[") {
				cur.VRange = p.parseRange()
			}
		case t.Is("wire") || t.Is("reg") || t.Is("logic"):
			// kind refinement without a new direction, e.g. "output reg a, wire b"
			cur.Kind = p.parseOptionalKind()
			if p.at("[") {
				cur.VRange = p.parseRange()
			}
		}
		nameTok, ok := p.expectIdent("a port name")
		if !ok {
			p.syncTo(",", ")")
			if !p.accept(",") {
				return
			}
			continue
		}
		pd := cur
		pd.Name = nameTok.Text
		if pd.DeclPos.Line == 0 {
			pd.DeclPos = nameTok.Pos
		}
		m.Ports = append(m.Ports, &pd)
		if !p.accept(",") {
			return
		}
	}
}

func (p *Parser) parseOptionalKind() NetKind {
	switch {
	case p.accept("wire"):
		return KindWire
	case p.accept("reg"):
		return KindReg
	case p.accept("logic"):
		return KindLogic
	case p.accept("integer"):
		return KindInteger
	case p.accept("int"):
		return KindInt
	case p.accept("genvar"):
		return KindGenvar
	}
	return KindNone
}

func (p *Parser) parseRange() *Range {
	lb := p.cur()
	p.expect("[", diag.CatUnexpectedToken)
	msb := p.parseExpr()
	r := &Range{MSB: msb, RPos: lb.Pos}
	if p.expect(":", diag.CatUnexpectedToken) {
		r.LSB = p.parseExpr()
	} else {
		r.LSB = msb
		p.syncTo("]", ";", ",")
	}
	p.expect("]", diag.CatUnexpectedToken)
	return r
}

// ---------- module items ----------

func (p *Parser) parseItem(m *Module) Item {
	t := p.cur()
	switch {
	case t.Kind == TokDirective:
		p.errorf(diag.CatMisplacedDirective, t.Pos,
			"compiler directive `%s is not allowed inside a module body", t.Text)
		p.advance()
		return nil
	case t.Kind == TokError:
		p.errorf(t.Cat, t.Pos, "%s", t.Text)
		p.advance()
		return nil
	case t.Is("input") || t.Is("output") || t.Is("inout"):
		return p.parseBodyPortDecl()
	case t.Is("wire") || t.Is("reg") || t.Is("logic") || t.Is("integer") ||
		t.Is("int") || t.Is("genvar"):
		return p.parseDecl()
	case t.Is("parameter") || t.Is("localparam"):
		return p.parseParamDecl()
	case t.Is("assign"):
		return p.parseAssignItem()
	case t.Is("always"):
		return p.parseAlways()
	case t.Is("initial"):
		p.advance()
		body := p.parseStmt()
		return &InitialBlock{Body: body, InitPos: t.Pos}
	case t.Is(";"):
		p.advance()
		return nil
	case t.Is("end"):
		p.errorf(diag.CatUnmatchedBeginEnd, t.Pos, "'end' without a matching 'begin'")
		p.advance()
		return nil
	case t.Kind == TokIdent:
		// A bare identifier at item level is most often a statement that
		// escaped its always block, or a lost assignment.
		p.errorf(diag.CatUnexpectedToken, t.Pos,
			"unexpected identifier '%s' at module level; statements must be inside an always or initial block", t.Text)
		p.syncTo(";")
		p.accept(";")
		return nil
	default:
		p.errorf(diag.CatUnexpectedToken, t.Pos, "unexpected '%s' in module body", tokenDesc(t))
		p.advance()
		p.syncTo(";")
		p.accept(";")
		return nil
	}
}

func (p *Parser) parseBodyPortDecl() Item {
	t := p.next()
	pd := PortDecl{DeclPos: t.Pos}
	switch t.Text {
	case "input":
		pd.Dir = DirInput
	case "output":
		pd.Dir = DirOutput
	default:
		pd.Dir = DirInout
	}
	pd.Kind = p.parseOptionalKind()
	if p.accept("signed") {
		pd.Signed = true
	}
	if p.at("[") {
		pd.VRange = p.parseRange()
	}
	nameTok, ok := p.expectIdent("a port name")
	if !ok {
		p.syncTo(";")
		p.accept(";")
		return nil
	}
	pd.Name = nameTok.Text
	item := &PortItem{PortDecl: pd}
	// Additional names share the direction/range; sema only needs one
	// PortItem per name, so the extras go through pendingItems.
	for p.accept(",") {
		extraTok, ok := p.expectIdent("a port name")
		if !ok {
			break
		}
		extra := pd
		extra.Name = extraTok.Text
		extra.DeclPos = extraTok.Pos
		p.pendingItems = append(p.pendingItems, &PortItem{PortDecl: extra})
	}
	p.expect(";", diag.CatMissingSemicolon)
	return item
}

func (p *Parser) parseDecl() Item {
	t := p.next()
	d := &Decl{DeclPos: t.Pos}
	switch t.Text {
	case "wire":
		d.Kind = KindWire
	case "reg":
		d.Kind = KindReg
	case "logic":
		d.Kind = KindLogic
	case "integer":
		d.Kind = KindInteger
	case "int":
		d.Kind = KindInt
	case "genvar":
		d.Kind = KindGenvar
	}
	if p.accept("signed") {
		d.Signed = true
	}
	if p.at("[") {
		d.VRange = p.parseRange()
	}
	for {
		nameTok, ok := p.expectIdent("a signal name")
		if !ok {
			p.syncTo(";")
			break
		}
		dn := DeclName{Name: nameTok.Text, NamePos: nameTok.Pos}
		if p.accept("=") {
			dn.Init = p.parseExpr()
		}
		d.Names = append(d.Names, dn)
		if !p.accept(",") {
			break
		}
	}
	p.expect(";", diag.CatMissingSemicolon)
	return d
}

func (p *Parser) parseParamDecl() Item {
	t := p.next()
	pd := &ParamDecl{Local: t.Text == "localparam", DeclPos: t.Pos}
	if p.at("[") {
		pd.VRange = p.parseRange()
	}
	for {
		nameTok, ok := p.expectIdent("a parameter name")
		if !ok {
			p.syncTo(";")
			break
		}
		dn := DeclName{Name: nameTok.Text, NamePos: nameTok.Pos}
		if p.expect("=", diag.CatUnexpectedToken) {
			dn.Init = p.parseExpr()
		}
		pd.Names = append(pd.Names, dn)
		if !p.accept(",") {
			break
		}
	}
	p.expect(";", diag.CatMissingSemicolon)
	return pd
}

func (p *Parser) parseAssignItem() Item {
	t := p.next() // 'assign'
	lhs := p.parseLValue()
	if !p.expect("=", diag.CatUnexpectedToken) {
		p.syncTo(";")
		p.accept(";")
		return nil
	}
	rhs := p.parseExpr()
	item := &AssignItem{LHS: lhs, RHS: rhs, AssignPos: t.Pos}
	for p.accept(",") { // assign a = b, c = d;
		lhs2 := p.parseLValue()
		if !p.expect("=", diag.CatUnexpectedToken) {
			break
		}
		rhs2 := p.parseExpr()
		p.pendingItems = append(p.pendingItems,
			&AssignItem{LHS: lhs2, RHS: rhs2, AssignPos: lhs2.Pos()})
	}
	p.expect(";", diag.CatMissingSemicolon)
	return item
}

func (p *Parser) parseAlways() Item {
	t := p.next() // 'always'
	blk := &AlwaysBlock{AlwaysPos: t.Pos}
	switch {
	case p.accept("@"):
		switch {
		case p.accept("*"):
			blk.Star = true
		case p.accept("("):
			if p.accept("*") {
				blk.Star = true
			} else {
				for {
					ev := EventExpr{}
					if p.accept("posedge") {
						ev.Edge = EdgePos
					} else if p.accept("negedge") {
						ev.Edge = EdgeNeg
					}
					ev.Signal = p.parseExpr()
					blk.Events = append(blk.Events, ev)
					if p.accept("or") || p.accept(",") {
						continue
					}
					break
				}
			}
			p.expect(")", diag.CatSensitivityList)
		default:
			p.errorf(diag.CatSensitivityList, p.cur().Pos,
				"expected '(' or '*' after '@' in always block")
			p.syncTo("begin", ";")
		}
	default:
		p.errorf(diag.CatSensitivityList, p.cur().Pos,
			"always block requires an event control '@(...)'")
	}
	blk.Body = p.parseStmt()
	return blk
}

// ---------- statements ----------

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	switch {
	case t.Kind == TokError:
		p.errorf(t.Cat, t.Pos, "%s", t.Text)
		p.advance()
		return &NullStmt{StmtPos: t.Pos}
	case t.Is("begin"):
		return p.parseBlock()
	case t.Is("{"):
		// A '{' in statement position is legal when it opens a
		// concatenation l-value ({carry, sum} = ...). Only when the
		// matching '}' is not followed by an assignment operator is this
		// the C block idiom.
		if p.braceStartsAssignment() {
			return p.parseAssignStmt()
		}
		p.errorf(diag.CatCStyleSyntax, t.Pos,
			"'{' cannot start a statement; Verilog uses 'begin'/'end' for blocks, not braces")
		p.advance()
		p.skipBraceBlock()
		return &NullStmt{StmtPos: t.Pos}
	case t.Is("if"):
		return p.parseIf()
	case t.Is("case") || t.Is("casez") || t.Is("casex"):
		return p.parseCase()
	case t.Is("for"):
		return p.parseFor()
	case t.Is(";"):
		p.advance()
		return &NullStmt{StmtPos: t.Pos}
	case t.Is("end"):
		p.errorf(diag.CatUnmatchedBeginEnd, t.Pos, "'end' without a matching 'begin'")
		p.advance()
		return &NullStmt{StmtPos: t.Pos}
	case t.Kind == TokDirective:
		p.errorf(diag.CatMisplacedDirective, t.Pos,
			"compiler directive `%s is not allowed inside an always block", t.Text)
		p.advance()
		return &NullStmt{StmtPos: t.Pos}
	default:
		return p.parseAssignStmt()
	}
}

// braceStartsAssignment looks ahead from a '{' at statement position and
// reports whether its matching '}' is directly followed by '=' or '<=',
// i.e. the brace opens a concatenation assignment target.
func (p *Parser) braceStartsAssignment() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		t := p.toks[i]
		switch {
		case t.Is("{"):
			depth++
		case t.Is("}"):
			depth--
			if depth == 0 {
				if i+1 < len(p.toks) {
					next := p.toks[i+1]
					return next.Is("=") || next.Is("<=")
				}
				return false
			}
		case t.Kind == TokEOF, t.Is("endmodule"), t.Is(";"):
			return false
		}
	}
	return false
}

// skipBraceBlock consumes a balanced {...} region after a C-style block
// error so recovery resumes at a sane point.
func (p *Parser) skipBraceBlock() {
	depth := 1
	for depth > 0 {
		t := p.cur()
		if t.Kind == TokEOF || t.Is("endmodule") {
			return
		}
		if t.Is("{") {
			depth++
		}
		if t.Is("}") {
			depth--
		}
		p.advance()
	}
}

func (p *Parser) parseBlock() Stmt {
	t := p.next() // 'begin'
	blk := &BlockStmt{BeginPos: t.Pos}
	if p.accept(":") {
		nameTok, _ := p.expectIdent("a block label")
		blk.Label = nameTok.Text
	}
	for {
		c := p.cur()
		switch {
		case c.Is("end"):
			p.advance()
			return blk
		case c.Kind == TokEOF:
			p.errorf(diag.CatUnmatchedBeginEnd, t.Pos,
				"'begin' at line %d has no matching 'end'", t.Pos.Line)
			return blk
		case c.Is("endmodule") || c.Is("module"):
			p.errorf(diag.CatUnmatchedBeginEnd, c.Pos,
				"'%s' reached while a 'begin' (line %d) is still open; missing 'end'",
				c.Text, t.Pos.Line)
			return blk
		case c.Is("integer") || c.Is("reg") || c.Is("int"):
			if d, ok := p.parseDecl().(*Decl); ok {
				blk.Decls = append(blk.Decls, d)
			}
		default:
			blk.Stmts = append(blk.Stmts, p.parseStmt())
		}
	}
}

func (p *Parser) parseIf() Stmt {
	t := p.next() // 'if'
	st := &IfStmt{IfPos: t.Pos}
	p.expect("(", diag.CatUnexpectedToken)
	st.Cond = p.parseExpr()
	p.expect(")", diag.CatUnexpectedToken)
	st.Then = p.parseStmt()
	if p.accept("else") {
		st.Else = p.parseStmt()
	}
	return st
}

func (p *Parser) parseCase() Stmt {
	t := p.next()
	st := &CaseStmt{CasePos: t.Pos}
	switch t.Text {
	case "casez":
		st.Kind = CaseZ
	case "casex":
		st.Kind = CaseX
	}
	p.expect("(", diag.CatUnexpectedToken)
	st.Subject = p.parseExpr()
	p.expect(")", diag.CatUnexpectedToken)
	for {
		c := p.cur()
		switch {
		case c.Is("endcase"):
			p.advance()
			return st
		case c.Kind == TokEOF || c.Is("endmodule"):
			p.errorf(diag.CatUnmatchedBeginEnd, t.Pos,
				"'case' at line %d has no matching 'endcase'", t.Pos.Line)
			return st
		case c.Is("default"):
			p.advance()
			p.accept(":")
			body := p.parseStmt()
			st.Items = append(st.Items, CaseItem{Body: body, ArmPos: c.Pos})
		default:
			item := CaseItem{ArmPos: c.Pos}
			for {
				item.Labels = append(item.Labels, p.parseExpr())
				if !p.accept(",") {
					break
				}
			}
			p.expect(":", diag.CatUnexpectedToken)
			item.Body = p.parseStmt()
			st.Items = append(st.Items, item)
		}
	}
}

func (p *Parser) parseFor() Stmt {
	t := p.next() // 'for'
	st := &ForStmt{ForPos: t.Pos}
	p.expect("(", diag.CatUnexpectedToken)

	// init: "i = 0" or "int i = 0" / "integer i = 0"
	if p.at("int") || p.at("integer") || p.at("genvar") {
		kw := p.next()
		nameTok, ok := p.expectIdent("a loop variable name")
		if ok {
			st.LoopVar = nameTok.Text
			st.LoopVarPos = kw.Pos
		}
		if p.expect("=", diag.CatUnexpectedToken) {
			init := p.parseExpr()
			st.Init = &AssignStmt{
				LHS:      &Ident{Name: st.LoopVar, NamePos: nameTok.Pos},
				RHS:      init,
				Blocking: true,
				StmtPos:  kw.Pos,
			}
		}
	} else {
		lhs := p.parseLValue()
		if p.expect("=", diag.CatUnexpectedToken) {
			st.Init = &AssignStmt{LHS: lhs, RHS: p.parseExpr(), Blocking: true, StmtPos: lhs.Pos()}
		}
	}
	p.expect(";", diag.CatMissingSemicolon)
	st.Cond = p.parseExpr()
	p.expect(";", diag.CatMissingSemicolon)

	// step: "i = i + 1", or the C idioms "i++" / "i += 1" which are
	// syntax errors in Verilog-2001.
	stepLHS := p.parseLValue()
	stepTok := p.cur()
	switch {
	case stepTok.Is("="):
		p.advance()
		st.Step = &AssignStmt{LHS: stepLHS, RHS: p.parseExpr(), Blocking: true, StmtPos: stepLHS.Pos()}
	case stepTok.Kind == TokOp && IsCStyleOp(stepTok.Text):
		p.errorf(diag.CatCStyleSyntax, stepTok.Pos,
			"'%s' is not a Verilog operator; use 'i = i + 1' style increments", stepTok.Text)
		p.advance()
		if !p.at(")") { // consume the operand of '+=' style forms
			p.parseExpr()
		}
		st.Step = &AssignStmt{
			LHS:      stepLHS,
			RHS:      &Binary{Op: "+", X: stepLHS, Y: &Number{Text: "1", NumPos: stepTok.Pos}, OpPos: stepTok.Pos},
			Blocking: true, StmtPos: stepLHS.Pos(),
		}
	default:
		p.errorf(diag.CatUnexpectedToken, stepTok.Pos,
			"expected assignment in for-loop step but found '%s'", tokenDesc(stepTok))
	}
	p.expect(")", diag.CatUnexpectedToken)
	st.Body = p.parseStmt()
	return st
}

func (p *Parser) parseAssignStmt() Stmt {
	lhs := p.parseLValue()
	t := p.cur()
	switch {
	case t.Is("="):
		p.advance()
		rhs := p.parseExpr()
		p.expect(";", diag.CatMissingSemicolon)
		return &AssignStmt{LHS: lhs, RHS: rhs, Blocking: true, StmtPos: lhs.Pos()}
	case t.Is("<="):
		p.advance()
		rhs := p.parseExpr()
		p.expect(";", diag.CatMissingSemicolon)
		return &AssignStmt{LHS: lhs, RHS: rhs, Blocking: false, StmtPos: lhs.Pos()}
	case t.Kind == TokOp && IsCStyleOp(t.Text):
		p.errorf(diag.CatCStyleSyntax, t.Pos,
			"'%s' is not a Verilog operator; expand it to a full assignment", t.Text)
		p.advance()
		var rhs Expr = &Number{Text: "1", NumPos: t.Pos}
		if !p.at(";") {
			rhs = p.parseExpr()
		}
		p.accept(";")
		op := "+"
		if t.Text == "--" || t.Text == "-=" {
			op = "-"
		}
		return &AssignStmt{
			LHS: lhs, RHS: &Binary{Op: op, X: lhs, Y: rhs, OpPos: t.Pos},
			Blocking: true, StmtPos: lhs.Pos(),
		}
	default:
		p.errorf(diag.CatUnexpectedToken, t.Pos,
			"expected '=' or '<=' after l-value but found '%s'", tokenDesc(t))
		p.syncTo(";", "end")
		p.accept(";")
		return &NullStmt{StmtPos: t.Pos}
	}
}

// parseLValue parses an assignment target: an identifier with optional
// bit/part selects, or a concatenation of such. It deliberately does not
// parse binary operators, so 'out <= in' is never misread as a comparison.
func (p *Parser) parseLValue() Expr {
	t := p.cur()
	if t.Is("{") {
		p.advance()
		c := &Concat{BracePos: t.Pos}
		for {
			c.Elems = append(c.Elems, p.parseLValue())
			if !p.accept(",") {
				break
			}
		}
		p.expect("}", diag.CatBadConcat)
		return c
	}
	nameTok, ok := p.expectIdent("an assignment target")
	if !ok {
		p.syncTo(";", "=", "end")
		return &Ident{Name: nameTok.Text, NamePos: nameTok.Pos}
	}
	return p.parseSelectSuffix(&Ident{Name: nameTok.Text, NamePos: nameTok.Pos})
}

// ---------- expressions ----------

// binaryPrec returns the precedence of op, higher binds tighter, 0 = not a
// binary operator.
func binaryPrec(op string) int {
	switch op {
	case "*", "/", "%":
		return 10
	case "+", "-":
		return 9
	case "<<", ">>", "<<<", ">>>":
		return 8
	case "<", "<=", ">", ">=":
		return 7
	case "==", "!=", "===", "!==":
		return 6
	case "&":
		return 5
	case "^", "~^", "^~":
		return 4
	case "|":
		return 3
	case "&&":
		return 2
	case "||":
		return 1
	}
	return 0
}

func (p *Parser) parseExpr() Expr { return p.parseTernary() }

func (p *Parser) parseTernary() Expr {
	cond := p.parseBinary(1)
	if p.at("?") {
		q := p.next()
		then := p.parseExpr()
		p.expect(":", diag.CatUnexpectedToken)
		els := p.parseExpr()
		return &Ternary{Cond: cond, Then: then, Else: els, QPos: q.Pos}
	}
	return cond
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		t := p.cur()
		if t.Kind != TokOp {
			return lhs
		}
		prec := binaryPrec(t.Text)
		if prec == 0 || prec < minPrec {
			return lhs
		}
		p.advance()
		rhs := p.parseBinary(prec + 1)
		lhs = &Binary{Op: t.Text, X: lhs, Y: rhs, OpPos: t.Pos}
	}
}

func (p *Parser) parseUnary() Expr {
	t := p.cur()
	if t.Kind == TokOp {
		switch t.Text {
		case "~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^":
			p.advance()
			x := p.parseUnary()
			return &Unary{Op: t.Text, X: x, OpPos: t.Pos}
		case "++", "--":
			p.errorf(diag.CatCStyleSyntax, t.Pos,
				"'%s' is not a Verilog operator", t.Text)
			p.advance()
			return p.parseUnary()
		}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		return &Number{Text: t.Text, NumPos: t.Pos}
	case t.Kind == TokIdent:
		p.advance()
		return p.parseSelectSuffix(&Ident{Name: t.Text, NamePos: t.Pos})
	case t.Is("("):
		p.advance()
		e := p.parseExpr()
		p.expect(")", diag.CatUnexpectedToken)
		return p.parseSelectSuffix(e)
	case t.Is("{"):
		return p.parseConcat()
	case t.Is("$"):
		return p.parseSystemCall()
	case t.Kind == TokError:
		p.errorf(t.Cat, t.Pos, "%s", t.Text)
		p.advance()
		return &Number{Text: "0", NumPos: t.Pos}
	case t.Kind == TokKeyword:
		p.errorf(diag.CatKeywordAsIdent, t.Pos,
			"'%s' is a reserved word and cannot be used in an expression", t.Text)
		p.advance()
		return &Ident{Name: t.Text, NamePos: t.Pos}
	default:
		p.errorf(diag.CatUnexpectedToken, t.Pos,
			"expected an expression but found '%s'", tokenDesc(t))
		p.advance()
		return &Number{Text: "0", NumPos: t.Pos}
	}
}

func (p *Parser) parseSelectSuffix(base Expr) Expr {
	for p.at("[") {
		lb := p.next()
		first := p.parseExpr()
		switch {
		case p.accept(":"):
			lo := p.parseExpr()
			p.expect("]", diag.CatUnexpectedToken)
			base = &Slice{X: base, Kind: SelectConst, Hi: first, Lo: lo, LbPos: lb.Pos}
		case p.accept("+:"):
			w := p.parseExpr()
			p.expect("]", diag.CatUnexpectedToken)
			base = &Slice{X: base, Kind: SelectPlus, Hi: first, Lo: w, LbPos: lb.Pos}
		case p.accept("-:"):
			w := p.parseExpr()
			p.expect("]", diag.CatUnexpectedToken)
			base = &Slice{X: base, Kind: SelectMinus, Hi: first, Lo: w, LbPos: lb.Pos}
		default:
			p.expect("]", diag.CatUnexpectedToken)
			base = &Index{X: base, Idx: first, LbPos: lb.Pos}
		}
	}
	return base
}

func (p *Parser) parseConcat() Expr {
	lb := p.next() // '{'
	if p.at("}") {
		p.errorf(diag.CatBadConcat, lb.Pos, "empty concatenation '{}'")
		p.advance()
		return &Concat{BracePos: lb.Pos}
	}
	first := p.parseExpr()
	// Replication: {N{expr}}
	if p.at("{") {
		p.advance()
		val := p.parseExpr()
		// multi-element replication body: {N{a, b}} is legal
		body := []Expr{val}
		for p.accept(",") {
			body = append(body, p.parseExpr())
		}
		p.expect("}", diag.CatBadConcat)
		p.expect("}", diag.CatBadConcat)
		var value Expr = body[0]
		if len(body) > 1 {
			value = &Concat{Elems: body, BracePos: lb.Pos}
		}
		return &Repl{Count: first, Value: value, BracePos: lb.Pos}
	}
	c := &Concat{Elems: []Expr{first}, BracePos: lb.Pos}
	for p.accept(",") {
		c.Elems = append(c.Elems, p.parseExpr())
	}
	p.expect("}", diag.CatBadConcat)
	return c
}

func (p *Parser) parseSystemCall() Expr {
	d := p.next() // '$'
	// System-function names may collide with reserved words ($signed).
	var nameTok Token
	if t := p.cur(); t.Kind == TokIdent || t.Kind == TokKeyword {
		nameTok = t
		p.advance()
	} else {
		nameTok, _ = p.expectIdent("a system function name")
	}
	call := &Call{Name: "$" + nameTok.Text, CallPos: d.Pos}
	if p.accept("(") {
		if !p.at(")") {
			for {
				call.Args = append(call.Args, p.parseExpr())
				if !p.accept(",") {
					break
				}
			}
		}
		p.expect(")", diag.CatUnexpectedToken)
	}
	return call
}
