package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/sema"
	"repro/internal/verilog"
)

func buildDesign(t *testing.T, src string) *sema.Design {
	t.Helper()
	file, pd := verilog.Parse(src)
	if pd.HasErrors() {
		t.Fatalf("parse errors: %s", pd.Summary())
	}
	d, ed := sema.Elaborate(file)
	if ed.HasErrors() {
		t.Fatalf("elab errors: %s", ed.Summary())
	}
	return d
}

func newSim(t *testing.T, src string) *Simulator {
	t.Helper()
	s, err := New(buildDesign(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimAssignNot(t *testing.T) {
	s := newSim(t, `
module m(input [7:0] in, output [7:0] out);
	assign out = ~in;
endmodule`)
	if err := s.SetInputUint("in", 0xA5); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("out").Uint64(); got != 0x5A {
		t.Fatalf("~0xA5 = %#x, want 0x5a", got)
	}
}

func TestSimAdderWithCarry(t *testing.T) {
	s := newSim(t, `
module add(input [7:0] a, input [7:0] b, input cin, output [7:0] sum, output cout);
	assign {cout, sum} = a + b + cin;
endmodule`)
	s.SetInputUint("a", 200)
	s.SetInputUint("b", 100)
	s.SetInputUint("cin", 1)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("sum").Uint64(); got != (301 & 0xFF) {
		t.Fatalf("sum = %d, want %d", got, 301&0xFF)
	}
	if got := s.Get("cout").Uint64(); got != 1 {
		t.Fatalf("cout = %d, want 1", got)
	}
}

func TestSimMux(t *testing.T) {
	s := newSim(t, `
module mux(input [7:0] a, input [7:0] b, input sel, output [7:0] y);
	assign y = sel ? b : a;
endmodule`)
	s.SetInputUint("a", 11)
	s.SetInputUint("b", 22)
	s.SetInputUint("sel", 0)
	s.Settle()
	if got := s.Get("y").Uint64(); got != 11 {
		t.Fatalf("y = %d, want 11", got)
	}
	s.SetInputUint("sel", 1)
	s.Settle()
	if got := s.Get("y").Uint64(); got != 22 {
		t.Fatalf("y = %d, want 22", got)
	}
}

func TestSimBitReverseForLoop(t *testing.T) {
	// The paper's running example: reverse bit order with a for loop.
	s := newSim(t, `
module top_module(input [7:0] in, output reg [7:0] out);
	integer i;
	always @(*) begin
		for (i = 0; i < 8; i = i + 1)
			out[i] = in[7 - i];
	end
endmodule`)
	s.SetInputUint("in", 0b1101_0010)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("out").Uint64(); got != 0b0100_1011 {
		t.Fatalf("out = %08b, want 01001011", got)
	}
}

func TestSimWide100BitReverse(t *testing.T) {
	s := newSim(t, `
module top_module(input [99:0] in, output reg [99:0] out);
	always @(*) begin
		for (int i = 0; i < 100; i = i + 1)
			out[i] = in[99 - i];
	end
endmodule`)
	in := bitvec.New(100).SetBit(0, true).SetBit(42, true)
	if err := s.SetInput("in", in); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	out := s.Get("out")
	if !out.Bit(99) || !out.Bit(57) || out.PopCount() != 2 {
		t.Fatalf("100-bit reverse wrong: %s", out.Hex())
	}
}

func TestSimDFF(t *testing.T) {
	s := newSim(t, `
module dff(input clk, input d, output reg q);
	always @(posedge clk) q <= d;
endmodule`)
	s.SetInputUint("d", 1)
	s.Settle()
	if got := s.Get("q").Uint64(); got != 0 {
		t.Fatal("q must not change before the clock edge")
	}
	if err := s.ClockPulse("clk"); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("q").Uint64(); got != 1 {
		t.Fatalf("q = %d after posedge, want 1", got)
	}
}

func TestSimCounterSyncReset(t *testing.T) {
	s := newSim(t, `
module counter(input clk, input reset, output reg [3:0] q);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else
			q <= q + 1;
	end
endmodule`)
	s.SetInputUint("reset", 1)
	s.ClockPulse("clk")
	if got := s.Get("q").Uint64(); got != 0 {
		t.Fatalf("q = %d after reset, want 0", got)
	}
	s.SetInputUint("reset", 0)
	for i := 0; i < 5; i++ {
		s.ClockPulse("clk")
	}
	if got := s.Get("q").Uint64(); got != 5 {
		t.Fatalf("q = %d after 5 clocks, want 5", got)
	}
	// wraparound
	for i := 0; i < 12; i++ {
		s.ClockPulse("clk")
	}
	if got := s.Get("q").Uint64(); got != 1 {
		t.Fatalf("q = %d after 17 clocks, want 1 (4-bit wrap)", got)
	}
}

func TestSimAsyncReset(t *testing.T) {
	s := newSim(t, `
module areg(input clk, input areset, input d, output reg q);
	always @(posedge clk or posedge areset) begin
		if (areset)
			q <= 0;
		else
			q <= d;
	end
endmodule`)
	s.SetInputUint("d", 1)
	s.ClockPulse("clk")
	if got := s.Get("q").Uint64(); got != 1 {
		t.Fatalf("q = %d, want 1", got)
	}
	// async reset without a clock edge
	s.SetInputUint("areset", 1)
	if got := s.Get("q").Uint64(); got != 0 {
		t.Fatalf("q = %d after async reset, want 0", got)
	}
}

func TestSimNonBlockingSwap(t *testing.T) {
	// The classic NBA test: two registers swap through <= without a race.
	s := newSim(t, `
module swap(input clk, input load, input [3:0] ain, input [3:0] bin,
            output reg [3:0] a, output reg [3:0] b);
	always @(posedge clk) begin
		if (load) begin
			a <= ain;
			b <= bin;
		end else begin
			a <= b;
			b <= a;
		end
	end
endmodule`)
	s.SetInputUint("load", 1)
	s.SetInputUint("ain", 3)
	s.SetInputUint("bin", 9)
	s.ClockPulse("clk")
	s.SetInputUint("load", 0)
	s.ClockPulse("clk")
	if a, b := s.Get("a").Uint64(), s.Get("b").Uint64(); a != 9 || b != 3 {
		t.Fatalf("after swap a=%d b=%d, want 9 3", a, b)
	}
}

func TestSimFSMTwoAlways(t *testing.T) {
	s := newSim(t, `
module fsm(input clk, input rst, input in, output out);
	reg [1:0] state, next;
	always @(posedge clk) begin
		if (rst) state <= 2'b00;
		else state <= next;
	end
	always @(*) begin
		case (state)
			2'b00: next = in ? 2'b01 : 2'b00;
			2'b01: next = in ? 2'b01 : 2'b10;
			2'b10: next = in ? 2'b01 : 2'b00;
			default: next = 2'b00;
		endcase
	end
	assign out = state == 2'b10;
endmodule`)
	s.SetInputUint("rst", 1)
	s.ClockPulse("clk")
	s.SetInputUint("rst", 0)
	// in=1 -> S1, in=0 -> S2 (out high)
	s.SetInputUint("in", 1)
	s.ClockPulse("clk")
	s.SetInputUint("in", 0)
	s.ClockPulse("clk")
	if got := s.Get("out").Uint64(); got != 1 {
		t.Fatalf("FSM out = %d, want 1", got)
	}
}

func TestSimCasez(t *testing.T) {
	s := newSim(t, `
module pri(input [3:0] in, output reg [1:0] pos);
	always @(*) begin
		casez (in)
			4'b0001: pos = 0;
			4'b0010: pos = 1;
			4'b0100: pos = 2;
			4'b1000: pos = 3;
			default: pos = 0;
		endcase
	end
endmodule`)
	s.SetInputUint("in", 4)
	s.Settle()
	if got := s.Get("pos").Uint64(); got != 2 {
		t.Fatalf("pos = %d, want 2", got)
	}
}

func TestSimPartSelectWrite(t *testing.T) {
	s := newSim(t, `
module ps(input [7:0] lo, input [7:0] hi, output reg [15:0] word);
	always @(*) begin
		word[7:0] = lo;
		word[15:8] = hi;
	end
endmodule`)
	s.SetInputUint("lo", 0xCD)
	s.SetInputUint("hi", 0xAB)
	s.Settle()
	if got := s.Get("word").Uint64(); got != 0xABCD {
		t.Fatalf("word = %#x, want 0xabcd", got)
	}
}

func TestSimIndexedPartSelect(t *testing.T) {
	s := newSim(t, `
module ips(input [31:0] in, input [4:0] sel, output [7:0] y);
	assign y = in[sel +: 8];
endmodule`)
	s.SetInput("in", bitvec.FromUint64(32, 0xDEADBEEF))
	s.SetInputUint("sel", 8)
	s.Settle()
	if got := s.Get("y").Uint64(); got != 0xBE {
		t.Fatalf("y = %#x, want 0xbe", got)
	}
}

func TestSimReductionOps(t *testing.T) {
	s := newSim(t, `
module red(input [3:0] in, output pand, output por, output pxor);
	assign pand = &in;
	assign por = |in;
	assign pxor = ^in;
endmodule`)
	s.SetInputUint("in", 0b0111)
	s.Settle()
	if s.Get("pand").Uint64() != 0 || s.Get("por").Uint64() != 1 || s.Get("pxor").Uint64() != 1 {
		t.Fatalf("reductions wrong: and=%d or=%d xor=%d",
			s.Get("pand").Uint64(), s.Get("por").Uint64(), s.Get("pxor").Uint64())
	}
}

func TestSimCombinationalLoopDetected(t *testing.T) {
	s := newSim(t, `
module osc(input en, output y);
	wire a;
	assign a = en & ~y;
	assign y = a;
endmodule`)
	s.SetInputUint("en", 1)
	if err := s.Settle(); err == nil {
		t.Fatal("oscillating loop must be reported")
	}
}

func TestSimShiftRegister(t *testing.T) {
	s := newSim(t, `
module sr(input clk, input in, output reg [3:0] q);
	always @(posedge clk)
		q <= {q[2:0], in};
endmodule`)
	bits := []uint64{1, 0, 1, 1}
	for _, b := range bits {
		s.SetInputUint("in", b)
		s.ClockPulse("clk")
	}
	if got := s.Get("q").Uint64(); got != 0b1011 {
		t.Fatalf("q = %04b, want 1011", got)
	}
}

func TestSimDeclInit(t *testing.T) {
	s := newSim(t, `
module di(input a, output y);
	wire inv = ~a;
	assign y = inv;
endmodule`)
	s.SetInputUint("a", 0)
	s.Settle()
	if got := s.Get("y").Uint64(); got != 1 {
		t.Fatalf("y = %d, want 1", got)
	}
}

func TestSimRuntimeOOBReadsZero(t *testing.T) {
	s := newSim(t, `
module oob(input [7:0] in, input [3:0] sel, output y);
	assign y = in[sel];
endmodule`)
	s.SetInputUint("in", 0xFF)
	s.SetInputUint("sel", 12) // beyond [7:0]
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("y").Uint64(); got != 0 {
		t.Fatalf("out-of-range read = %d, want 0", got)
	}
}

// ---------- testbench runner ----------

type counterModel struct{ q uint64 }

func (m *counterModel) Reset() { m.q = 0 }
func (m *counterModel) Step(in map[string]bitvec.Vec) map[string]bitvec.Vec {
	if v, ok := in["reset"]; ok && v.Bool() {
		m.q = 0
	} else {
		m.q = (m.q + 1) & 0xF
	}
	return map[string]bitvec.Vec{"q": bitvec.FromUint64(4, m.q)}
}

func TestRunTestbenchCounter(t *testing.T) {
	d := buildDesign(t, `
module counter(input clk, input reset, output reg [3:0] q);
	always @(posedge clk) begin
		if (reset) q <= 0;
		else q <= q + 1;
	end
endmodule`)
	var vectors []Vector
	vectors = append(vectors, Vector{Inputs: map[string]bitvec.Vec{"reset": bitvec.FromUint64(1, 1)}})
	for i := 0; i < 20; i++ {
		vectors = append(vectors, Vector{Inputs: map[string]bitvec.Vec{"reset": bitvec.FromUint64(1, 0)}})
	}
	res, err := RunTestbench(d, "clk", vectors, &counterModel{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("counter failed testbench: %+v", res)
	}
}

func TestRunTestbenchDetectsWrongLogic(t *testing.T) {
	// A decrementing counter must fail the incrementing model.
	d := buildDesign(t, `
module counter(input clk, input reset, output reg [3:0] q);
	always @(posedge clk) begin
		if (reset) q <= 0;
		else q <= q - 1;
	end
endmodule`)
	vectors := []Vector{
		{Inputs: map[string]bitvec.Vec{"reset": bitvec.FromUint64(1, 1)}},
		{Inputs: map[string]bitvec.Vec{"reset": bitvec.FromUint64(1, 0)}},
		{Inputs: map[string]bitvec.Vec{"reset": bitvec.FromUint64(1, 0)}},
	}
	res, err := RunTestbench(d, "clk", vectors, &counterModel{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("wrong logic must produce mismatches")
	}
	if res.FirstMismatch == "" {
		t.Fatal("first mismatch must be described")
	}
}

func TestRunTestbenchCombinational(t *testing.T) {
	d := buildDesign(t, `
module xorm(input [7:0] a, input [7:0] b, output [7:0] y);
	assign y = a ^ b;
endmodule`)
	golden := GoldenFunc(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
		return map[string]bitvec.Vec{"y": in["a"].Xor(in["b"])}
	})
	rng := rand.New(rand.NewSource(5))
	var vectors []Vector
	for i := 0; i < 50; i++ {
		vectors = append(vectors, Vector{Inputs: map[string]bitvec.Vec{
			"a": bitvec.FromUint64(8, uint64(rng.Intn(256))),
			"b": bitvec.FromUint64(8, uint64(rng.Intn(256))),
		}})
	}
	res, err := RunTestbench(d, "", vectors, golden)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("xor failed: %+v", res)
	}
}

// TestSimEquivalenceRandomExprs is a property test: randomly generated
// combinational expressions must evaluate identically in the simulator and
// in a direct Go evaluation.
func TestSimEquivalenceRandomExprs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := []struct {
		verilog string
		eval    func(a, b uint64) uint64
	}{
		{"&", func(a, b uint64) uint64 { return a & b }},
		{"|", func(a, b uint64) uint64 { return a | b }},
		{"^", func(a, b uint64) uint64 { return a ^ b }},
		{"+", func(a, b uint64) uint64 { return (a + b) & 0xFF }},
		{"-", func(a, b uint64) uint64 { return (a - b) & 0xFF }},
	}
	for i := 0; i < 40; i++ {
		op := ops[rng.Intn(len(ops))]
		src := `
module expr(input [7:0] a, input [7:0] b, output [7:0] y);
	assign y = a ` + op.verilog + ` b;
endmodule`
		s := newSim(t, src)
		for j := 0; j < 20; j++ {
			a, b := uint64(rng.Intn(256)), uint64(rng.Intn(256))
			s.SetInputUint("a", a)
			s.SetInputUint("b", b)
			if err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			want := op.eval(a, b)
			if got := s.Get("y").Uint64(); got != want {
				t.Fatalf("a%sb with a=%d b=%d: got %d want %d", op.verilog, a, b, got, want)
			}
		}
	}
}

func TestSimCasezWildcards(t *testing.T) {
	// A real priority encoder with casez don't-cares: the z digits mask
	// the low bits, so 4'b01?? must match any input with bit 2 as the
	// highest set bit.
	s := newSim(t, `
module pri(input [3:0] in, output reg [1:0] pos, output reg valid);
	always @(*) begin
		valid = 1;
		casez (in)
			4'b1???: pos = 3;
			4'b01??: pos = 2;
			4'b001?: pos = 1;
			4'b0001: pos = 0;
			default: begin pos = 0; valid = 0; end
		endcase
	end
endmodule`)
	cases := []struct{ in, pos, valid uint64 }{
		{0b1010, 3, 1}, {0b0110, 2, 1}, {0b0011, 1, 1}, {0b0001, 0, 1}, {0b0000, 0, 0},
	}
	for _, c := range cases {
		s.SetInputUint("in", c.in)
		if err := s.Settle(); err != nil {
			t.Fatal(err)
		}
		if got := s.Get("pos").Uint64(); got != c.pos {
			t.Errorf("in=%04b: pos=%d want %d", c.in, got, c.pos)
		}
		if got := s.Get("valid").Uint64(); got != c.valid {
			t.Errorf("in=%04b: valid=%d want %d", c.in, got, c.valid)
		}
	}
}

func TestSimCasexWildcardsIncludeX(t *testing.T) {
	s := newSim(t, `
module cx(input [3:0] in, output reg hit);
	always @(*) begin
		casex (in)
			4'b1xx1: hit = 1;
			default: hit = 0;
		endcase
	end
endmodule`)
	s.SetInputUint("in", 0b1011)
	s.Settle()
	if s.Get("hit").Uint64() != 1 {
		t.Fatal("casex x-digits must be don't-care")
	}
	s.SetInputUint("in", 0b1010)
	s.Settle()
	if s.Get("hit").Uint64() != 0 {
		t.Fatal("non-wildcard bits must still be compared")
	}
}

func TestSimPlainCaseNoWildcards(t *testing.T) {
	// In a plain case statement, z/? digits decode as 0 and match
	// literally — no wildcard semantics.
	s := newSim(t, `
module pc(input [3:0] in, output reg hit);
	always @(*) begin
		case (in)
			4'b10?0: hit = 1;
			default: hit = 0;
		endcase
	end
endmodule`)
	s.SetInputUint("in", 0b1010)
	s.Settle()
	if s.Get("hit").Uint64() != 0 {
		t.Fatal("plain case must not treat ? as wildcard")
	}
	s.SetInputUint("in", 0b1000)
	s.Settle()
	if s.Get("hit").Uint64() != 1 {
		t.Fatal("? decodes as 0 in plain case")
	}
}

func TestSimAllBinaryOperators(t *testing.T) {
	// Exhaustive operator matrix against direct Go evaluation at 8 bits.
	ops := []struct {
		op   string
		eval func(a, b uint64) uint64
	}{
		{"+", func(a, b uint64) uint64 { return (a + b) & 0xFF }},
		{"-", func(a, b uint64) uint64 { return (a - b) & 0xFF }},
		{"*", func(a, b uint64) uint64 { return (a * b) & 0xFF }},
		{"/", func(a, b uint64) uint64 {
			if b == 0 {
				return 0
			}
			return a / b
		}},
		{"%", func(a, b uint64) uint64 {
			if b == 0 {
				return 0
			}
			return a % b
		}},
		{"&", func(a, b uint64) uint64 { return a & b }},
		{"|", func(a, b uint64) uint64 { return a | b }},
		{"^", func(a, b uint64) uint64 { return a ^ b }},
		{"~^", func(a, b uint64) uint64 { return ^(a ^ b) & 0xFF }},
		{"==", func(a, b uint64) uint64 { return b2u(a == b) }},
		{"!=", func(a, b uint64) uint64 { return b2u(a != b) }},
		{"<", func(a, b uint64) uint64 { return b2u(a < b) }},
		{">", func(a, b uint64) uint64 { return b2u(a > b) }},
		{"<=", func(a, b uint64) uint64 { return b2u(a <= b) }},
		{">=", func(a, b uint64) uint64 { return b2u(a >= b) }},
		{"&&", func(a, b uint64) uint64 { return b2u(a != 0 && b != 0) }},
		{"||", func(a, b uint64) uint64 { return b2u(a != 0 || b != 0) }},
	}
	vectors := []struct{ a, b uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {255, 255}, {170, 85}, {7, 3}, {200, 100},
	}
	for _, op := range ops {
		width := "[7:0] "
		if op.op == "==" || op.op == "!=" || op.op == "<" || op.op == ">" ||
			op.op == "<=" || op.op == ">=" || op.op == "&&" || op.op == "||" {
			width = ""
		}
		src := "module e(input [7:0] a, input [7:0] b, output " + width + "y);\n" +
			"\tassign y = a " + op.op + " b;\nendmodule"
		s := newSim(t, src)
		for _, v := range vectors {
			s.SetInputUint("a", v.a)
			s.SetInputUint("b", v.b)
			if err := s.Settle(); err != nil {
				t.Fatalf("%s: %v", op.op, err)
			}
			want := op.eval(v.a, v.b)
			if width == "" {
				want &= 1
			}
			if got := s.Get("y").Uint64(); got != want {
				t.Errorf("a %s b with a=%d b=%d: got %d want %d", op.op, v.a, v.b, got, want)
			}
		}
	}
}

func b2u(c bool) uint64 {
	if c {
		return 1
	}
	return 0
}

func TestSimAllUnaryOperators(t *testing.T) {
	ops := []struct {
		op   string
		eval func(a uint64) uint64
	}{
		{"~", func(a uint64) uint64 { return ^a & 0xF }},
		{"-", func(a uint64) uint64 { return (-a) & 0xF }},
		{"!", func(a uint64) uint64 { return b2u(a == 0) }},
		{"&", func(a uint64) uint64 { return b2u(a == 0xF) }},
		{"|", func(a uint64) uint64 { return b2u(a != 0) }},
		{"^", func(a uint64) uint64 { return uint64(popcount4(a) & 1) }},
		{"~&", func(a uint64) uint64 { return b2u(a != 0xF) }},
		{"~|", func(a uint64) uint64 { return b2u(a == 0) }},
		{"~^", func(a uint64) uint64 { return uint64(popcount4(a)&1) ^ 1 }},
	}
	for _, op := range ops {
		width := "[3:0] "
		if op.op != "~" && op.op != "-" {
			width = ""
		}
		src := "module u(input [3:0] a, output " + width + "y);\n\tassign y = " + op.op + "a;\nendmodule"
		s := newSim(t, src)
		for a := uint64(0); a < 16; a++ {
			s.SetInputUint("a", a)
			if err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			if got := s.Get("y").Uint64(); got != op.eval(a) {
				t.Errorf("%sa with a=%d: got %d want %d", op.op, a, got, op.eval(a))
			}
		}
	}
}

func popcount4(a uint64) int {
	n := 0
	for i := 0; i < 4; i++ {
		if a>>i&1 == 1 {
			n++
		}
	}
	return n
}

func TestSimShiftOperators(t *testing.T) {
	s := newSim(t, `
module sh(input [7:0] a, input [2:0] n, output [7:0] l, output [7:0] r, output [7:0] al);
	assign l = a << n;
	assign r = a >> n;
	assign al = a <<< n;
endmodule`)
	s.SetInputUint("a", 0b1001_0110)
	s.SetInputUint("n", 3)
	s.Settle()
	if got := s.Get("l").Uint64(); got != (0b1001_0110<<3)&0xFF {
		t.Errorf("<<: %08b", got)
	}
	if got := s.Get("r").Uint64(); got != 0b1001_0110>>3 {
		t.Errorf(">>: %08b", got)
	}
	if got := s.Get("al").Uint64(); got != (0b1001_0110<<3)&0xFF {
		t.Errorf("<<<: %08b", got)
	}
}

func TestSimSystemFunctions(t *testing.T) {
	s := newSim(t, `
module sf(input [7:0] a, output [7:0] s, output [7:0] u, output [5:0] ones);
	assign s = $signed(a);
	assign u = $unsigned(a);
	assign ones = $countones(a);
endmodule`)
	s.SetInputUint("a", 0b1011_0101)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if s.Get("s").Uint64() != 0b1011_0101 || s.Get("u").Uint64() != 0b1011_0101 {
		t.Error("$signed/$unsigned must pass through in two-state mode")
	}
	if got := s.Get("ones").Uint64(); got != 5 {
		t.Errorf("$countones = %d, want 5", got)
	}
}

func TestSimReset(t *testing.T) {
	s := newSim(t, `
module r(input clk, output reg [3:0] q);
	always @(posedge clk) q <= q + 1;
endmodule`)
	for i := 0; i < 5; i++ {
		s.ClockPulse("clk")
	}
	if s.Get("q").Uint64() != 5 {
		t.Fatalf("q = %d", s.Get("q").Uint64())
	}
	s.Reset()
	if s.Get("q").Uint64() != 0 {
		t.Fatal("Reset must zero state")
	}
	// clk was also reset to 0, so pulses keep working
	s.ClockPulse("clk")
	if s.Get("q").Uint64() != 1 {
		t.Fatal("post-reset clocking broken")
	}
}

func TestSimTernaryChain(t *testing.T) {
	s := newSim(t, `
module tc(input [1:0] sel, output [3:0] y);
	assign y = sel == 0 ? 4'd1 : sel == 1 ? 4'd5 : sel == 2 ? 4'd9 : 4'd15;
endmodule`)
	want := []uint64{1, 5, 9, 15}
	for sel := uint64(0); sel < 4; sel++ {
		s.SetInputUint("sel", sel)
		s.Settle()
		if got := s.Get("y").Uint64(); got != want[sel] {
			t.Errorf("sel=%d: y=%d want %d", sel, got, want[sel])
		}
	}
}

func TestSimReplicationInExpression(t *testing.T) {
	s := newSim(t, `
module rep(input b, output [7:0] y);
	assign y = {8{b}};
endmodule`)
	s.SetInputUint("b", 1)
	s.Settle()
	if s.Get("y").Uint64() != 0xFF {
		t.Fatal("replication broadcast failed")
	}
}

func TestSimConcatLHSStatement(t *testing.T) {
	s := newSim(t, `
module cl(input [3:0] a, input [3:0] b, output reg [3:0] sum, output reg carry);
	always @(*)
		{carry, sum} = a + b;
endmodule`)
	s.SetInputUint("a", 9)
	s.SetInputUint("b", 8)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if s.Get("sum").Uint64() != 1 || s.Get("carry").Uint64() != 1 {
		t.Fatalf("sum=%d carry=%d", s.Get("sum").Uint64(), s.Get("carry").Uint64())
	}
}

func TestSimMinusIndexedPartSelect(t *testing.T) {
	s := newSim(t, `
module mps(input [15:0] in, input [3:0] base, output [3:0] y);
	assign y = in[base -: 4];
endmodule`)
	s.SetInputUint("in", 0xABCD)
	s.SetInputUint("base", 11) // bits 11..8 -> 0xB
	s.Settle()
	if got := s.Get("y").Uint64(); got != 0xB {
		t.Fatalf("y = %#x, want 0xb", got)
	}
}
