package sim

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/resilience"
	"repro/internal/sema"
	"repro/internal/verilog"
)

func buildSim(t *testing.T, eng Engine) *Simulator {
	t.Helper()
	src := `module top_module(input clk, input [3:0] in, output reg [3:0] out);
  wire [3:0] next = in ^ 4'b0101;
  always @(posedge clk) out <= next;
endmodule
`
	mod, diags := verilog.Parse(src)
	if mod == nil {
		t.Fatalf("parse: %v", diags)
	}
	d, derr := sema.Elaborate(mod)
	if d == nil {
		t.Fatalf("elaborate: %v", derr)
	}
	sm, err := NewWith(d, eng)
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// TestWatchdogStepBudget: each Settle (and each of ClockPulse's three
// internal settles) consumes a step; exceeding the budget cancels the
// run with a typed watchdog error on both backends.
func TestWatchdogStepBudget(t *testing.T) {
	for _, eng := range []Engine{EngineCompiled, EngineWalker} {
		sm := buildSim(t, eng)
		sm.SetWatchdog(resilience.NewWatchdog(0, 4))
		if err := sm.ClockPulse("clk"); err != nil { // 3 steps
			t.Fatalf("engine %v: first pulse: %v", eng, err)
		}
		err := sm.ClockPulse("clk") // steps 4, 5: trips mid-pulse
		if err == nil || !resilience.IsWatchdog(err) {
			t.Fatalf("engine %v: over-budget pulse err = %v", eng, err)
		}
		sm.SetWatchdog(nil) // disarmed: runs freely again
		if err := sm.ClockPulse("clk"); err != nil {
			t.Fatalf("engine %v: disarmed pulse: %v", eng, err)
		}
	}
}

// TestWatchdogWallClockUnderStall: an injected sim.stall plus a small
// wall budget cancels the simulation instead of letting it run away.
func TestWatchdogWallClockUnderStall(t *testing.T) {
	fault.Install(fault.MustParse("sim.stall:1:20ms", 1))
	defer fault.Uninstall()
	sm := buildSim(t, EngineAuto)
	sm.SetWatchdog(resilience.NewWatchdog(5*time.Millisecond, 0))
	var err error
	for i := 0; i < 3 && err == nil; i++ {
		err = sm.Settle()
	}
	if err == nil || !resilience.IsWatchdog(err) {
		t.Fatalf("stalled sim not canceled: %v", err)
	}
}
