package sim

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/sema"
	"repro/internal/wave"
)

// Vector is one testbench step: the input values to drive. For clocked
// designs a vector corresponds to one clock cycle (inputs are applied,
// logic settles, then the clock pulses); for combinational designs it is
// just an input assignment.
type Vector struct {
	Inputs map[string]bitvec.Vec
}

// Golden is a cycle-accurate reference model implemented in Go. Step is
// called once per vector with the driven inputs and must return the
// expected value of every output port after the cycle completes.
type Golden interface {
	// Reset returns the model to its power-on state.
	Reset()
	// Step advances one cycle (or evaluates once, for combinational
	// models) and returns expected outputs.
	Step(inputs map[string]bitvec.Vec) map[string]bitvec.Vec
}

// GoldenFunc adapts a stateless function to the Golden interface, for
// combinational circuits.
type GoldenFunc func(inputs map[string]bitvec.Vec) map[string]bitvec.Vec

// Reset implements Golden.
func (GoldenFunc) Reset() {}

// Step implements Golden.
func (f GoldenFunc) Step(inputs map[string]bitvec.Vec) map[string]bitvec.Vec { return f(inputs) }

// TBResult summarizes a testbench run.
type TBResult struct {
	Cycles     int
	Mismatches int
	// FirstMismatch describes the first failing sample, for debug logs
	// and the (future-work) simulation-feedback experiments.
	FirstMismatch string
	// Waveform holds a VCD excerpt around the first mismatch when the
	// run was observed with a recorder and failed; empty otherwise.
	Waveform string
	// Profile is the engine execution profile when the run was observed
	// with TBObserve.Profile on a compiled simulator; nil otherwise.
	Profile *wave.EngineProfile
}

// Passed reports whether the run completed with zero mismatches.
func (r TBResult) Passed() bool { return r.Mismatches == 0 }

// RunTestbench drives vectors through the design and compares every output
// port against the golden model. clock names the clock input for
// sequential designs, or is empty for combinational ones. A simulator
// runtime error (combinational loop, runaway for-loop) is returned as err
// and counts as a failed run.
func RunTestbench(design *sema.Design, clock string, vectors []Vector, golden Golden) (TBResult, error) {
	s, err := New(design)
	if err != nil {
		return TBResult{}, err
	}
	return RunTestbenchSim(s, clock, vectors, golden)
}

// RunTestbenchSim is RunTestbench over an existing simulator instance —
// the entry point for callers that amortize compilation through a cached
// Program (sim.NewFromProgram). The simulator is reset before the run.
func RunTestbenchSim(s *Simulator, clock string, vectors []Vector, golden Golden) (TBResult, error) {
	return RunTestbenchObserved(s, clock, vectors, golden, TBObserve{})
}

// TBObserve bundles the optional observability for one testbench run.
// The zero value observes nothing and adds no overhead.
type TBObserve struct {
	// Recorder, when non-nil, captures a waveform; it is marked at the
	// first mismatch so a bounded recorder yields the window around it,
	// and the excerpt is attached to TBResult.Waveform on failure.
	Recorder *wave.Recorder
	// Coverage, when non-nil, accumulates toggle/activity coverage over
	// the run (activation counts are folded in when the run ends).
	Coverage *wave.Coverage
	// Profile requests an engine execution profile in TBResult.Profile
	// (compiled backend only).
	Profile bool
}

// RunTestbenchObserved is RunTestbenchSim with observability attached
// for the duration of the run. Observers are detached before returning,
// so a cached simulator goes back to its zero-overhead configuration.
func RunTestbenchObserved(s *Simulator, clock string, vectors []Vector, golden Golden, o TBObserve) (TBResult, error) {
	var parts []wave.Observer
	if o.Recorder != nil {
		parts = append(parts, o.Recorder)
	}
	if o.Coverage != nil {
		parts = append(parts, o.Coverage)
	}
	if obs := wave.Multi(parts...); obs != nil {
		s.Observe(obs)
		defer s.Observe(nil)
	}
	if o.Profile {
		s.EnableProfile()
	} else if o.Coverage != nil {
		s.EnableActivations()
	}
	res, err := runTestbench(s, clock, vectors, golden, o.Recorder)
	if o.Coverage != nil {
		o.Coverage.AddActivations(s.Activations())
	}
	if o.Profile {
		res.Profile = s.Profile()
	}
	if o.Recorder != nil && res.Mismatches > 0 {
		res.Waveform = o.Recorder.VCD()
	}
	return res, err
}

func runTestbench(s *Simulator, clock string, vectors []Vector, golden Golden, rec *wave.Recorder) (TBResult, error) {
	design := s.Design()
	s.Reset()
	golden.Reset()
	res := TBResult{}

	outputs := design.Outputs()
	outNames := make([]string, 0, len(outputs))
	for _, o := range outputs {
		outNames = append(outNames, o.Name)
	}
	sort.Strings(outNames)

	for cyc, vec := range vectors {
		for name, v := range vec.Inputs {
			if name == clock {
				continue // the runner owns the clock
			}
			if design.Signal(name) == nil {
				return res, fmt.Errorf("testbench drives unknown input %q", name)
			}
			if err := s.SetInput(name, v); err != nil {
				return res, err
			}
		}
		if err := s.Settle(); err != nil {
			return res, err
		}
		if clock != "" {
			if err := s.ClockPulse(clock); err != nil {
				return res, err
			}
		}
		want := golden.Step(vec.Inputs)
		res.Cycles++
		for _, name := range outNames {
			wantV, ok := want[name]
			if !ok {
				continue // model does not constrain this output
			}
			gotV := s.Get(name)
			if !gotV.Eq(wantV) {
				res.Mismatches++
				if res.FirstMismatch == "" {
					res.FirstMismatch = fmt.Sprintf(
						"cycle %d: output %s = %s, expected %s", cyc, name, gotV.Hex(), wantV.Resize(gotV.Width()).Hex())
					if rec != nil {
						rec.Mark()
					}
				}
			}
		}
	}
	return res, nil
}
