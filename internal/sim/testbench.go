package sim

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/sema"
)

// Vector is one testbench step: the input values to drive. For clocked
// designs a vector corresponds to one clock cycle (inputs are applied,
// logic settles, then the clock pulses); for combinational designs it is
// just an input assignment.
type Vector struct {
	Inputs map[string]bitvec.Vec
}

// Golden is a cycle-accurate reference model implemented in Go. Step is
// called once per vector with the driven inputs and must return the
// expected value of every output port after the cycle completes.
type Golden interface {
	// Reset returns the model to its power-on state.
	Reset()
	// Step advances one cycle (or evaluates once, for combinational
	// models) and returns expected outputs.
	Step(inputs map[string]bitvec.Vec) map[string]bitvec.Vec
}

// GoldenFunc adapts a stateless function to the Golden interface, for
// combinational circuits.
type GoldenFunc func(inputs map[string]bitvec.Vec) map[string]bitvec.Vec

// Reset implements Golden.
func (GoldenFunc) Reset() {}

// Step implements Golden.
func (f GoldenFunc) Step(inputs map[string]bitvec.Vec) map[string]bitvec.Vec { return f(inputs) }

// TBResult summarizes a testbench run.
type TBResult struct {
	Cycles     int
	Mismatches int
	// FirstMismatch describes the first failing sample, for debug logs
	// and the (future-work) simulation-feedback experiments.
	FirstMismatch string
}

// Passed reports whether the run completed with zero mismatches.
func (r TBResult) Passed() bool { return r.Mismatches == 0 }

// RunTestbench drives vectors through the design and compares every output
// port against the golden model. clock names the clock input for
// sequential designs, or is empty for combinational ones. A simulator
// runtime error (combinational loop, runaway for-loop) is returned as err
// and counts as a failed run.
func RunTestbench(design *sema.Design, clock string, vectors []Vector, golden Golden) (TBResult, error) {
	s, err := New(design)
	if err != nil {
		return TBResult{}, err
	}
	return RunTestbenchSim(s, clock, vectors, golden)
}

// RunTestbenchSim is RunTestbench over an existing simulator instance —
// the entry point for callers that amortize compilation through a cached
// Program (sim.NewFromProgram). The simulator is reset before the run.
func RunTestbenchSim(s *Simulator, clock string, vectors []Vector, golden Golden) (TBResult, error) {
	design := s.Design()
	s.Reset()
	golden.Reset()
	res := TBResult{}

	outputs := design.Outputs()
	outNames := make([]string, 0, len(outputs))
	for _, o := range outputs {
		outNames = append(outNames, o.Name)
	}
	sort.Strings(outNames)

	for cyc, vec := range vectors {
		for name, v := range vec.Inputs {
			if name == clock {
				continue // the runner owns the clock
			}
			if design.Signal(name) == nil {
				return res, fmt.Errorf("testbench drives unknown input %q", name)
			}
			if err := s.SetInput(name, v); err != nil {
				return res, err
			}
		}
		if err := s.Settle(); err != nil {
			return res, err
		}
		if clock != "" {
			if err := s.ClockPulse(clock); err != nil {
				return res, err
			}
		}
		want := golden.Step(vec.Inputs)
		res.Cycles++
		for _, name := range outNames {
			wantV, ok := want[name]
			if !ok {
				continue // model does not constrain this output
			}
			gotV := s.Get(name)
			if !gotV.Eq(wantV) {
				res.Mismatches++
				if res.FirstMismatch == "" {
					res.FirstMismatch = fmt.Sprintf(
						"cycle %d: output %s = %s, expected %s", cyc, name, gotV.Hex(), wantV.Resize(gotV.Width()).Hex())
				}
			}
		}
	}
	return res, nil
}
