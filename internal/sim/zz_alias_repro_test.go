package sim

import "testing"

// Repro 1: blocking part-select self-assignment — RHS register aliases the
// store target.
func TestReproAliasSliceStore(t *testing.T) {
	src := `
module m(input clk, input [7:0] d, output reg [7:0] q);
always @(posedge clk) begin
  q = d;
  q[4:1] = q;
end
endmodule`
	diffBoth(t, src, "clk", 16, 5)
}

// Repro 2: two clocked blocks on the same edge, each with a block-local
// loop variable of the same name, NBA-indexed targets.
func TestReproSharedLoopVarNBA(t *testing.T) {
	src := `
module m(input clk, input [7:0] d, output reg [7:0] q, output reg [7:0] r);
always @(posedge clk) begin
  integer i;
  for (i = 0; i < 4; i = i + 1) q[i] <= d[i];
end
always @(posedge clk) begin
  integer i;
  for (i = 0; i < 6; i = i + 1) r[i] <= d[i];
end
endmodule`
	diffBoth(t, src, "clk", 16, 7)
}
