// Direct unit tests for testbench.go: vector construction, golden-model
// adaptation, cycle accounting, and mismatch reporting. (sim_test.go
// covers RunTestbench end-to-end on counters; these tests pin down the
// testbench contract itself.)
package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bitvec"
)

// fixedGolden returns constant outputs, making mismatch positions fully
// predictable.
type fixedGolden struct {
	out    map[string]bitvec.Vec
	resets int
	steps  int
}

func (g *fixedGolden) Reset() { g.resets++ }
func (g *fixedGolden) Step(map[string]bitvec.Vec) map[string]bitvec.Vec {
	g.steps++
	return g.out
}

const wireSrc = `
module wires(input [3:0] a, output [3:0] y, output [3:0] z);
	assign y = a;
	assign z = ~a;
endmodule`

func vec4(v uint64) bitvec.Vec { return bitvec.FromUint64(4, v) }

func TestTestbenchResetsGoldenAndCountsCycles(t *testing.T) {
	d := buildDesign(t, wireSrc)
	g := &fixedGolden{out: map[string]bitvec.Vec{}} // constrains nothing
	vectors := []Vector{
		{Inputs: map[string]bitvec.Vec{"a": vec4(1)}},
		{Inputs: map[string]bitvec.Vec{"a": vec4(2)}},
		{Inputs: map[string]bitvec.Vec{"a": vec4(3)}},
	}
	res, err := RunTestbench(d, "", vectors, g)
	if err != nil {
		t.Fatal(err)
	}
	if g.resets != 1 {
		t.Fatalf("golden reset %d times, want exactly 1 (power-on)", g.resets)
	}
	if g.steps != len(vectors) {
		t.Fatalf("golden stepped %d times, want %d", g.steps, len(vectors))
	}
	if res.Cycles != len(vectors) {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, len(vectors))
	}
	// A model that constrains no outputs can never mismatch.
	if !res.Passed() || res.Mismatches != 0 || res.FirstMismatch != "" {
		t.Fatalf("unconstrained model produced mismatches: %+v", res)
	}
}

func TestTestbenchMismatchCountingAndFirstReport(t *testing.T) {
	d := buildDesign(t, wireSrc)
	// The design drives y = a, z = ~a; the golden insists y == 0 and
	// z == 15 always — true only when a == 0.
	g := &fixedGolden{out: map[string]bitvec.Vec{"y": vec4(0), "z": vec4(15)}}
	vectors := []Vector{
		{Inputs: map[string]bitvec.Vec{"a": vec4(0)}}, // matches
		{Inputs: map[string]bitvec.Vec{"a": vec4(5)}}, // y and z both wrong
		{Inputs: map[string]bitvec.Vec{"a": vec4(1)}}, // y and z both wrong
	}
	res, err := RunTestbench(d, "", vectors, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("mismatching run reported as passed")
	}
	// Two wrong outputs in each of two failing cycles: every (cycle,
	// output) pair counts.
	if res.Mismatches != 4 {
		t.Fatalf("Mismatches = %d, want 4", res.Mismatches)
	}
	// The first failing sample is cycle 1; outputs are compared in
	// sorted name order, so y reports before z.
	want := fmt.Sprintf("cycle 1: output y = %s, expected %s", vec4(5).Hex(), vec4(0).Hex())
	if res.FirstMismatch != want {
		t.Fatalf("FirstMismatch = %q, want %q", res.FirstMismatch, want)
	}
}

func TestTestbenchFirstMismatchSticksToEarliest(t *testing.T) {
	d := buildDesign(t, wireSrc)
	g := &fixedGolden{out: map[string]bitvec.Vec{"y": vec4(7)}}
	vectors := []Vector{
		{Inputs: map[string]bitvec.Vec{"a": vec4(1)}},
		{Inputs: map[string]bitvec.Vec{"a": vec4(2)}},
	}
	res, err := RunTestbench(d, "", vectors, g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.FirstMismatch, "cycle 0:") {
		t.Fatalf("FirstMismatch %q does not describe the earliest failure", res.FirstMismatch)
	}
}

func TestTestbenchRejectsUnknownInput(t *testing.T) {
	d := buildDesign(t, wireSrc)
	vectors := []Vector{{Inputs: map[string]bitvec.Vec{"bogus": vec4(1)}}}
	_, err := RunTestbench(d, "", vectors, GoldenFunc(func(map[string]bitvec.Vec) map[string]bitvec.Vec {
		return nil
	}))
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("driving an unknown input returned %v, want a naming error", err)
	}
}

func TestTestbenchClockIsRunnerOwned(t *testing.T) {
	d := buildDesign(t, `
module dff(input clk, input [3:0] din, output reg [3:0] q);
	always @(posedge clk) q <= din;
endmodule`)
	// Driving the clock from a vector must be ignored (the runner owns
	// it): a vector naming clk is not an unknown-input error, and the
	// flop still advances exactly once per vector.
	var got []uint64
	golden := GoldenFunc(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
		return map[string]bitvec.Vec{"q": in["din"]}
	})
	vectors := []Vector{
		{Inputs: map[string]bitvec.Vec{"din": vec4(9), "clk": bitvec.FromUint64(1, 1)}},
		{Inputs: map[string]bitvec.Vec{"din": vec4(4)}},
	}
	res, err := RunTestbench(d, "clk", vectors, golden)
	if err != nil {
		t.Fatalf("vector naming the clock errored: %v (q trace %v)", err, got)
	}
	if !res.Passed() || res.Cycles != 2 {
		t.Fatalf("clocked run failed: %+v", res)
	}
}

func TestTestbenchGoldenFuncAdapter(t *testing.T) {
	calls := 0
	f := GoldenFunc(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
		calls++
		return map[string]bitvec.Vec{"y": in["a"]}
	})
	f.Reset() // must be a no-op, not a panic
	out := f.Step(map[string]bitvec.Vec{"a": vec4(3)})
	if calls != 1 || !out["y"].Eq(vec4(3)) {
		t.Fatalf("GoldenFunc adapter broken: calls=%d out=%v", calls, out)
	}
}

func TestTestbenchExpectedValueResizedInReport(t *testing.T) {
	d := buildDesign(t, wireSrc)
	// Golden returns a wider expectation than the port: the report must
	// render it at the port's width (Resize in testbench.go).
	g := &fixedGolden{out: map[string]bitvec.Vec{"y": bitvec.FromUint64(8, 0x12)}}
	vectors := []Vector{{Inputs: map[string]bitvec.Vec{"a": vec4(0)}}}
	res, err := RunTestbench(d, "", vectors, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("width-mismatched expectation passed")
	}
	wantSuffix := fmt.Sprintf("expected %s", bitvec.FromUint64(8, 0x12).Resize(4).Hex())
	if !strings.HasSuffix(res.FirstMismatch, wantSuffix) {
		t.Fatalf("FirstMismatch = %q, want suffix %q", res.FirstMismatch, wantSuffix)
	}
}
