package sim

// This file is the legacy tree-walking evaluator: a direct interpreter
// over the AST with map-keyed signal storage and immutable bitvec
// operations. It is retained verbatim as the reference oracle — the
// compiled engine (compile.go / engine.go) must produce bit-identical
// outputs, which the differential corpus tests assert — and as the
// automatic fallback for designs the compiler cannot lower. Select it
// explicitly with NewWith(design, EngineWalker).

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/resilience"
	"repro/internal/sema"
	"repro/internal/verilog"
)

// walkerSim holds the mutable state of one design instance.
type walkerSim struct {
	design *sema.Design
	values map[string]bitvec.Vec
	// prev holds the value each signal had before the last SetInput
	// batch, for edge detection on asynchronous controls.
	prev map[string]bitvec.Vec

	assigns    []*verilog.AssignItem
	combAlways []*verilog.AlwaysBlock
	seqAlways  []*verilog.AlwaysBlock

	// wd, when armed via Simulator.SetWatchdog, is checked inside the
	// settle fixpoint so a runaway settle is canceled mid-iteration.
	wd *resilience.Watchdog

	// actCounts, nil unless enabled via the facade, counts per-process
	// executions: assigns, then comb always, then seq always blocks.
	actCounts []uint64
}

func (s *walkerSim) setWatchdog(wd *resilience.Watchdog) { s.wd = wd }

// enableActivations (re)arms per-process activation counting; counters
// are zeroed so each run reads as its own delta.
func (s *walkerSim) enableActivations() {
	n := len(s.assigns) + len(s.combAlways) + len(s.seqAlways)
	if len(s.actCounts) != n {
		s.actCounts = make([]uint64, n)
		return
	}
	for i := range s.actCounts {
		s.actCounts[i] = 0
	}
}

func (s *walkerSim) activationCounts() []uint64 { return s.actCounts }

// New builds a simulator over an elaborated design. It fails when the
// design uses constructs the simulator does not support.
func newWalkerSim(design *sema.Design) (*walkerSim, error) {
	if design == nil {
		return nil, fmt.Errorf("sim: nil design")
	}
	s := &walkerSim{
		design: design,
		values: map[string]bitvec.Vec{},
		prev:   map[string]bitvec.Vec{},
	}
	for name, sig := range design.Signals {
		s.values[name] = bitvec.New(sig.Width())
	}
	for _, item := range design.Module.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			s.assigns = append(s.assigns, it)
		case *verilog.AlwaysBlock:
			if it.IsClocked() {
				s.seqAlways = append(s.seqAlways, it)
			} else {
				s.combAlways = append(s.combAlways, it)
			}
		case *verilog.Decl:
			// A net-kind initializer (wire x = expr) is continuous
			// assignment shorthand per the LRM, so it joins the settle
			// loop as a synthesized assign at its declaration position.
			// Variable initializers stay one-shot (applyDeclInits).
			for _, dn := range it.Names {
				sig := design.Signal(dn.Name)
				if dn.Init == nil || sig == nil || sig.Init != dn.Init || sig.Kind.IsVariable() {
					continue
				}
				s.assigns = append(s.assigns, &verilog.AssignItem{
					LHS:       &verilog.Ident{Name: dn.Name, NamePos: dn.NamePos},
					RHS:       dn.Init,
					AssignPos: dn.NamePos,
				})
			}
		}
	}
	s.applyDeclInits()
	return s, nil
}

// Reset zeroes every signal and re-applies declaration initializers. The
// values and prev maps (and the word storage behind each value) are
// reused rather than reallocated — testbench runners call Reset once per
// run, and the old per-run map churn showed up in the oracle's profile.
// Vectors previously returned by Get observe the zeroing, matching the
// contract that Get's result is only valid until the next mutation.
func (s *walkerSim) Reset() {
	for name, sig := range s.design.Signals {
		if v, ok := s.values[name]; ok && v.Width() == sig.Width() {
			v.Zero()
			continue
		}
		s.values[name] = bitvec.New(sig.Width())
	}
	for name := range s.prev {
		delete(s.prev, name)
	}
	s.applyDeclInits()
}

// applyDeclInits applies variable declaration initializers (reg r = 0,
// integer i = 5) once, in declaration order — map order here once made
// init-to-init references nondeterministic, which the differential
// fuzzer caught as an intermittent walker-vs-engine divergence. Net
// initializers are continuous assigns and are handled in Settle.
func (s *walkerSim) applyDeclInits() {
	for _, item := range s.design.Module.Items {
		decl, ok := item.(*verilog.Decl)
		if !ok {
			continue
		}
		for _, dn := range decl.Names {
			sig := s.design.Signal(dn.Name)
			if dn.Init == nil || sig == nil || sig.Init != dn.Init || !sig.Kind.IsVariable() {
				continue
			}
			env := newEnv(s)
			if v, err := env.eval(dn.Init); err == nil {
				s.values[dn.Name] = v.Resize(sig.Width())
			}
		}
	}
}

// Get returns the current value of a signal (zero vector for unknown
// names, so probing never panics mid-benchmark).
func (s *walkerSim) Get(name string) bitvec.Vec {
	if v, ok := s.values[name]; ok {
		return v
	}
	return bitvec.New(1)
}

// SetInput drives an input port. Edges produced by the change trigger
// edge-sensitive always blocks whose sensitivity list mentions the signal
// (asynchronous resets).
func (s *walkerSim) SetInput(name string, v bitvec.Vec) error {
	sig := s.design.Signal(name)
	if sig == nil {
		return fmt.Errorf("sim: no signal %q", name)
	}
	old := s.values[name]
	s.values[name] = v.Resize(sig.Width())
	oldBit, newBit := old.Bit(0), s.values[name].Bit(0)
	if oldBit == newBit {
		return nil
	}
	edge := verilog.EdgeNeg
	if !oldBit && newBit {
		edge = verilog.EdgePos
	}
	return s.fireEdge(name, edge)
}

// SetInputUint drives an input port from a uint64.
func (s *walkerSim) SetInputUint(name string, v uint64) error {
	sig := s.design.Signal(name)
	if sig == nil {
		return fmt.Errorf("sim: no signal %q", name)
	}
	return s.SetInput(name, bitvec.FromUint64(sig.Width(), v))
}

// fireEdge runs every clocked always block sensitive to the given edge of
// the given signal, with non-blocking semantics across blocks.
func (s *walkerSim) fireEdge(name string, edge verilog.EventEdge) error {
	var fired []*verilog.AlwaysBlock
	for bi, blk := range s.seqAlways {
		for _, ev := range blk.Events {
			id, ok := ev.Signal.(*verilog.Ident)
			if !ok || id.Name != name {
				continue
			}
			if ev.Edge == edge {
				fired = append(fired, blk)
				if s.actCounts != nil {
					s.actCounts[len(s.assigns)+len(s.combAlways)+bi]++
				}
				break
			}
		}
	}
	if len(fired) == 0 {
		return nil
	}
	// Each block executes in its own env: block locals (loop variables,
	// integers declared in the body) are scoped to their block, so two
	// blocks declaring the same name get distinct storage — the compiled
	// engine interns one register per block-local per block, and NBA
	// targets re-evaluated at commit must observe the owning block's
	// final loop-variable values, not a later block's. Commits run after
	// every block has executed, in block order, which is exactly the
	// engine's single merged queue order.
	envs := make([]*env, len(fired))
	for i, blk := range fired {
		envs[i] = newEnv(s)
		if err := envs[i].exec(blk.Body); err != nil {
			return err
		}
	}
	for _, env := range envs {
		env.commitNBA()
	}
	return nil
}

// Settle evaluates continuous assigns and combinational always blocks to a
// fixpoint.
func (s *walkerSim) Settle() error {
	for iter := 0; iter < settleLimit; iter++ {
		if err := s.wd.Check(); err != nil {
			return err
		}
		changed := false
		for ai, a := range s.assigns {
			if s.actCounts != nil {
				s.actCounts[ai]++
			}
			env := newEnv(s)
			v, err := env.evalCtx(a.RHS, env.lvalueWidth(a.LHS))
			if err != nil {
				return err
			}
			if env.assignTo(a.LHS, v, true) {
				changed = true
			}
		}
		for bi, blk := range s.combAlways {
			if s.actCounts != nil {
				s.actCounts[len(s.assigns)+bi]++
			}
			env := newEnv(s)
			before := snapshotTargets(s, blk)
			if err := env.exec(blk.Body); err != nil {
				return err
			}
			env.commitNBA()
			if !equalSnapshot(s, before) {
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("sim: combinational logic did not settle (possible feedback loop)")
}

// snapshotTargets captures the current values of every signal the block
// assigns, for change detection.
func snapshotTargets(s *walkerSim, blk *verilog.AlwaysBlock) map[string]bitvec.Vec {
	out := map[string]bitvec.Vec{}
	verilog.WalkStmts(blk.Body, func(st verilog.Stmt) {
		a, ok := st.(*verilog.AssignStmt)
		if !ok {
			return
		}
		for _, name := range lhsNames(a.LHS) {
			if v, ok := s.values[name]; ok {
				out[name] = v
			}
		}
	})
	return out
}

func equalSnapshot(s *walkerSim, snap map[string]bitvec.Vec) bool {
	for name, v := range snap {
		if !s.values[name].Eq(v) {
			return false
		}
	}
	return true
}

func lhsNames(e verilog.Expr) []string {
	switch x := e.(type) {
	case *verilog.Ident:
		return []string{x.Name}
	case *verilog.Index:
		return lhsNames(x.X)
	case *verilog.Slice:
		return lhsNames(x.X)
	case *verilog.Concat:
		var out []string
		for _, el := range x.Elems {
			out = append(out, lhsNames(el)...)
		}
		return out
	}
	return nil
}

// ---------- evaluation environment ----------

// env is one procedural execution context: module signals plus block-local
// variables, with a non-blocking-assignment queue.
type env struct {
	sim    *walkerSim
	locals map[string]bitvec.Vec
	nba    []nbaWrite
}

type nbaWrite struct {
	target verilog.Expr
	value  bitvec.Vec
}

func newEnv(s *walkerSim) *env {
	return &env{sim: s, locals: map[string]bitvec.Vec{}}
}

func (e *env) commitNBA() {
	for _, w := range e.nba {
		e.assignTo(w.target, w.value, true)
	}
	e.nba = nil
}

func (e *env) read(name string) (bitvec.Vec, bool) {
	if v, ok := e.locals[name]; ok {
		return v, true
	}
	if v, ok := e.sim.design.Params[name]; ok {
		return v, true
	}
	if v, ok := e.sim.values[name]; ok {
		return v, true
	}
	return bitvec.Vec{}, false
}

func (e *env) write(name string, v bitvec.Vec) bool {
	if old, ok := e.locals[name]; ok {
		nv := v.Resize(widthOf(old, v))
		changed := !old.Eq(nv)
		e.locals[name] = nv
		return changed
	}
	sig := e.sim.design.Signal(name)
	if sig == nil {
		// Block-scoped variable first seen here (declared in a begin
		// block): adopt it as a 32-bit local.
		e.locals[name] = v.Resize(32)
		return true
	}
	nv := v.Resize(sig.Width())
	changed := !e.sim.values[name].Eq(nv)
	e.sim.values[name] = nv
	return changed
}

func widthOf(old, v bitvec.Vec) int {
	if old.Width() > 0 {
		return old.Width()
	}
	return v.Width()
}

// declLocal introduces a block-local variable.
func (e *env) declLocal(name string, width int) {
	e.locals[name] = bitvec.New(width)
}

// ---------- statement execution ----------

func (e *env) exec(s verilog.Stmt) error {
	switch st := s.(type) {
	case nil, *verilog.NullStmt:
		return nil
	case *verilog.BlockStmt:
		for _, d := range st.Decls {
			w := 32
			if d.VRange != nil {
				// Ranges on block locals are rare in the corpus; a fixed
				// 32-bit width is sufficient for loop indices.
				w = 32
			}
			for _, dn := range d.Names {
				e.declLocal(dn.Name, w)
			}
		}
		for _, sub := range st.Stmts {
			if err := e.exec(sub); err != nil {
				return err
			}
		}
		return nil
	case *verilog.AssignStmt:
		v, err := e.evalCtx(st.RHS, e.lvalueWidth(st.LHS))
		if err != nil {
			return err
		}
		if st.Blocking {
			e.assignTo(st.LHS, v, true)
		} else {
			e.nba = append(e.nba, nbaWrite{target: st.LHS, value: v})
		}
		return nil
	case *verilog.IfStmt:
		c, err := e.eval(st.Cond)
		if err != nil {
			return err
		}
		if c.Bool() {
			return e.exec(st.Then)
		}
		return e.exec(st.Else)
	case *verilog.CaseStmt:
		subj, err := e.eval(st.Subject)
		if err != nil {
			return err
		}
		var deflt verilog.Stmt
		for _, item := range st.Items {
			if item.Labels == nil {
				deflt = item.Body
				continue
			}
			for _, l := range item.Labels {
				match, err := e.caseLabelMatches(st.Kind, subj, l)
				if err != nil {
					return err
				}
				if match {
					return e.exec(item.Body)
				}
			}
		}
		return e.exec(deflt)
	case *verilog.ForStmt:
		if st.LoopVar != "" {
			e.declLocal(st.LoopVar, 32)
		}
		if st.Init != nil {
			if err := e.exec(st.Init); err != nil {
				return err
			}
		}
		for trip := 0; ; trip++ {
			if trip >= loopLimit {
				return fmt.Errorf("sim: for loop at line %d exceeded %d iterations", st.Pos().Line, loopLimit)
			}
			c, err := e.eval(st.Cond)
			if err != nil {
				return err
			}
			if !c.Bool() {
				return nil
			}
			if err := e.exec(st.Body); err != nil {
				return err
			}
			if st.Step != nil {
				if err := e.exec(st.Step); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("sim: unsupported statement at line %d", s.Pos().Line)
	}
}

// caseLabelMatches compares one case label against the subject. For
// casez, z/? digits in a literal label are don't-cares; casex extends the
// wildcard set with x digits, per the LRM's wildcard-matching semantics.
func (e *env) caseLabelMatches(kind verilog.CaseKind, subj bitvec.Vec, label verilog.Expr) (bool, error) {
	if kind != verilog.CasePlain {
		if num, ok := label.(*verilog.Number); ok {
			val, care, err := num.WildcardMask(kind == verilog.CaseX)
			if err != nil {
				return false, err
			}
			care = care.Resize(subj.Width())
			return subj.And(care).Eq(val.Resize(subj.Width()).And(care)), nil
		}
	}
	lv, err := e.eval(label)
	if err != nil {
		return false, err
	}
	return lv.Resize(subj.Width()).Eq(subj), nil
}

// assignTo writes v into an l-value expression. It reports whether any
// stored value changed.
func (e *env) assignTo(lhs verilog.Expr, v bitvec.Vec, resize bool) bool {
	switch x := lhs.(type) {
	case *verilog.Ident:
		return e.write(x.Name, v)
	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return false
		}
		idxV, err := e.eval(x.Idx)
		if err != nil {
			return false
		}
		cur, ok := e.read(id.Name)
		if !ok {
			return false
		}
		bitIdx := e.normalizeIndex(id.Name, int(int32(uint32(idxV.Uint64()))))
		if bitIdx < 0 || bitIdx >= cur.Width() {
			return false // dynamic out-of-range write: dropped, like X
		}
		nv := cur.SetBit(bitIdx, v.Bit(0))
		return e.write(id.Name, nv)
	case *verilog.Slice:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return false
		}
		lo, width, ok := e.sliceBounds(id.Name, x)
		if !ok {
			return false
		}
		cur, okr := e.read(id.Name)
		if !okr {
			return false
		}
		nv := cur
		for i := 0; i < width; i++ {
			if lo+i >= 0 && lo+i < cur.Width() {
				nv = nv.SetBit(lo+i, v.Bit(i))
			}
		}
		return e.write(id.Name, nv)
	case *verilog.Concat:
		// {a, b} = v assigns the low bits to the rightmost element.
		changed := false
		offset := 0
		for i := len(x.Elems) - 1; i >= 0; i-- {
			el := x.Elems[i]
			w := e.lvalueWidth(el)
			part := v.Shr(offset).Resize(w)
			if e.assignTo(el, part, false) {
				changed = true
			}
			offset += w
		}
		return changed
	}
	return false
}

func (e *env) lvalueWidth(lhs verilog.Expr) int {
	switch x := lhs.(type) {
	case *verilog.Ident:
		if sig := e.sim.design.Signal(x.Name); sig != nil {
			return sig.Width()
		}
		if v, ok := e.locals[x.Name]; ok {
			return v.Width()
		}
	case *verilog.Index:
		return 1
	case *verilog.Slice:
		if id, ok := x.X.(*verilog.Ident); ok {
			if _, w, ok := e.sliceBounds(id.Name, x); ok {
				return w
			}
		}
	case *verilog.Concat:
		total := 0
		for _, el := range x.Elems {
			total += e.lvalueWidth(el)
		}
		return total
	}
	return 1
}

// normalizeIndex converts a declared-range index to a zero-based bit
// offset, honouring non-zero LSBs and ascending ranges.
func (e *env) normalizeIndex(name string, idx int) int {
	sig := e.sim.design.Signal(name)
	if sig == nil {
		return idx
	}
	if sig.MSB >= sig.LSB {
		return idx - sig.LSB
	}
	// ascending range [0:7]: bit 0 is the MSB
	return sig.LSB - idx
}

// sliceBounds resolves a part-select into (low bit offset, width).
func (e *env) sliceBounds(name string, sl *verilog.Slice) (lo, width int, ok bool) {
	evalInt := func(x verilog.Expr) (int, bool) {
		v, err := e.eval(x)
		if err != nil {
			return 0, false
		}
		return int(int32(uint32(v.Uint64()))), true
	}
	switch sl.Kind {
	case verilog.SelectConst:
		hi, okH := evalInt(sl.Hi)
		l, okL := evalInt(sl.Lo)
		if !okH || !okL {
			return 0, 0, false
		}
		hiN := e.normalizeIndex(name, hi)
		loN := e.normalizeIndex(name, l)
		if hiN < loN {
			hiN, loN = loN, hiN
		}
		return loN, hiN - loN + 1, true
	case verilog.SelectPlus:
		base, okB := evalInt(sl.Hi)
		w, okW := evalInt(sl.Lo)
		if !okB || !okW || w <= 0 {
			return 0, 0, false
		}
		return e.normalizeIndex(name, base), w, true
	case verilog.SelectMinus:
		base, okB := evalInt(sl.Hi)
		w, okW := evalInt(sl.Lo)
		if !okB || !okW || w <= 0 {
			return 0, 0, false
		}
		return e.normalizeIndex(name, base) - w + 1, w, true
	}
	return 0, 0, false
}

// ---------- expression evaluation ----------

// evalCtx evaluates x in an assignment context of the given width,
// implementing Verilog's context-determined width rule: operands of
// arithmetic and bitwise operators are extended to the assignment width
// before the operation, so '{cout, sum} = a + b + cin' keeps its carry.
// Self-determined contexts (comparisons, reductions, concatenation
// elements, index expressions) fall back to eval.
func (e *env) evalCtx(x verilog.Expr, width int) (bitvec.Vec, error) {
	switch n := x.(type) {
	case *verilog.Number:
		v, err := n.Value()
		if err != nil {
			return bitvec.Vec{}, err
		}
		if v.Width() < width {
			v = v.Resize(width)
		}
		return v, nil
	case *verilog.Ident:
		v, err := e.eval(n)
		if err != nil {
			return bitvec.Vec{}, err
		}
		if v.Width() < width {
			v = v.Resize(width)
		}
		return v, nil
	case *verilog.Unary:
		switch n.Op {
		case "~", "-", "+":
			v, err := e.evalCtx(n.X, width)
			if err != nil {
				return bitvec.Vec{}, err
			}
			return evalUnary(n.Op, v)
		}
		return e.eval(x)
	case *verilog.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			a, err := e.evalCtx(n.X, width)
			if err != nil {
				return bitvec.Vec{}, err
			}
			b, err := e.evalCtx(n.Y, width)
			if err != nil {
				return bitvec.Vec{}, err
			}
			return evalBinary(n.Op, a, b)
		case "<<", ">>", "<<<", ">>>":
			a, err := e.evalCtx(n.X, width)
			if err != nil {
				return bitvec.Vec{}, err
			}
			b, err := e.eval(n.Y) // shift amount is self-determined
			if err != nil {
				return bitvec.Vec{}, err
			}
			return evalBinary(n.Op, a, b)
		}
		return e.eval(x)
	case *verilog.Ternary:
		c, err := e.eval(n.Cond)
		if err != nil {
			return bitvec.Vec{}, err
		}
		if c.Bool() {
			return e.evalCtx(n.Then, width)
		}
		return e.evalCtx(n.Else, width)
	default:
		return e.eval(x)
	}
}

func (e *env) eval(x verilog.Expr) (bitvec.Vec, error) {
	switch n := x.(type) {
	case *verilog.Number:
		v, err := n.Value()
		if err != nil {
			return bitvec.Vec{}, err
		}
		return v, nil
	case *verilog.Ident:
		v, ok := e.read(n.Name)
		if !ok {
			return bitvec.Vec{}, fmt.Errorf("sim: read of unknown signal %q at line %d", n.Name, n.Pos().Line)
		}
		return v, nil
	case *verilog.Unary:
		v, err := e.eval(n.X)
		if err != nil {
			return bitvec.Vec{}, err
		}
		return evalUnary(n.Op, v)
	case *verilog.Binary:
		a, err := e.eval(n.X)
		if err != nil {
			return bitvec.Vec{}, err
		}
		b, err := e.eval(n.Y)
		if err != nil {
			return bitvec.Vec{}, err
		}
		return evalBinary(n.Op, a, b)
	case *verilog.Ternary:
		c, err := e.eval(n.Cond)
		if err != nil {
			return bitvec.Vec{}, err
		}
		if c.Bool() {
			return e.eval(n.Then)
		}
		return e.eval(n.Else)
	case *verilog.Concat:
		out := bitvec.New(0)
		for _, el := range n.Elems {
			v, err := e.eval(el)
			if err != nil {
				return bitvec.Vec{}, err
			}
			out = out.Concat(v)
		}
		return out, nil
	case *verilog.Repl:
		cnt, err := e.eval(n.Count)
		if err != nil {
			return bitvec.Vec{}, err
		}
		v, err := e.eval(n.Value)
		if err != nil {
			return bitvec.Vec{}, err
		}
		c := int(cnt.Uint64())
		if c < 0 || c > 4096 {
			return bitvec.Vec{}, fmt.Errorf("sim: replication count %d out of bounds at line %d", c, n.Pos().Line)
		}
		return v.Repeat(c), nil
	case *verilog.Index:
		base, err := e.eval(n.X)
		if err != nil {
			return bitvec.Vec{}, err
		}
		idxV, err := e.eval(n.Idx)
		if err != nil {
			return bitvec.Vec{}, err
		}
		idx := int(int32(uint32(idxV.Uint64())))
		if id, ok := n.X.(*verilog.Ident); ok {
			idx = e.normalizeIndex(id.Name, idx)
		}
		if idx < 0 || idx >= base.Width() {
			return bitvec.FromUint64(1, 0), nil // out-of-range read: 0
		}
		if base.Bit(idx) {
			return bitvec.FromUint64(1, 1), nil
		}
		return bitvec.FromUint64(1, 0), nil
	case *verilog.Slice:
		id, isIdent := n.X.(*verilog.Ident)
		base, err := e.eval(n.X)
		if err != nil {
			return bitvec.Vec{}, err
		}
		name := ""
		if isIdent {
			name = id.Name
		}
		lo, w, ok := e.sliceBounds(name, n)
		if !ok {
			return bitvec.Vec{}, fmt.Errorf("sim: unresolvable part-select at line %d", n.Pos().Line)
		}
		if lo < 0 {
			return bitvec.New(w), nil
		}
		return base.Shr(lo).Resize(w), nil
	case *verilog.Call:
		return e.evalCall(n)
	}
	return bitvec.Vec{}, fmt.Errorf("sim: unsupported expression at line %d", x.Pos().Line)
}

func (e *env) evalCall(n *verilog.Call) (bitvec.Vec, error) {
	switch n.Name {
	case "$signed", "$unsigned":
		if len(n.Args) == 1 {
			return e.eval(n.Args[0])
		}
	case "$clog2":
		if len(n.Args) == 1 {
			v, err := e.eval(n.Args[0])
			if err != nil {
				return bitvec.Vec{}, err
			}
			u := v.Uint64()
			r := 0
			for (uint64(1) << r) < u {
				r++
			}
			return bitvec.FromUint64(32, uint64(r)), nil
		}
	case "$countones":
		if len(n.Args) == 1 {
			v, err := e.eval(n.Args[0])
			if err != nil {
				return bitvec.Vec{}, err
			}
			return bitvec.FromUint64(32, uint64(v.PopCount())), nil
		}
	}
	return bitvec.Vec{}, fmt.Errorf("sim: unsupported system function %s at line %d", n.Name, n.Pos().Line)
}

func evalUnary(op string, v bitvec.Vec) (bitvec.Vec, error) {
	switch op {
	case "~":
		return v.Not(), nil
	case "!":
		if v.Bool() {
			return bitvec.FromUint64(1, 0), nil
		}
		return bitvec.FromUint64(1, 1), nil
	case "-":
		return bitvec.New(v.Width()).Sub(v), nil
	case "+":
		return v, nil
	case "&":
		return v.ReduceAnd(), nil
	case "|":
		return v.ReduceOr(), nil
	case "^":
		return v.ReduceXor(), nil
	case "~&":
		return v.ReduceAnd().Not(), nil
	case "~|":
		return v.ReduceOr().Not(), nil
	case "~^":
		return v.ReduceXor().Not(), nil
	}
	return bitvec.Vec{}, fmt.Errorf("sim: unsupported unary operator %q", op)
}

func evalBinary(op string, a, b bitvec.Vec) (bitvec.Vec, error) {
	boolVec := func(c bool) bitvec.Vec {
		if c {
			return bitvec.FromUint64(1, 1)
		}
		return bitvec.FromUint64(1, 0)
	}
	switch op {
	case "+":
		return a.Add(b), nil
	case "-":
		return a.Sub(b), nil
	case "*":
		return a.Mul(b), nil
	case "/":
		if b.IsZero() {
			return bitvec.New(a.Width()), nil
		}
		return bitvec.FromUint64(a.Width(), a.Uint64()/b.Uint64()), nil
	case "%":
		if b.IsZero() {
			return bitvec.New(a.Width()), nil
		}
		return bitvec.FromUint64(a.Width(), a.Uint64()%b.Uint64()), nil
	case "&":
		return a.And(b), nil
	case "|":
		return a.Or(b), nil
	case "^":
		return a.Xor(b), nil
	case "~^", "^~":
		return a.Xor(b).Not(), nil
	case "<<", "<<<":
		return a.Shl(int(b.Uint64())), nil
	case ">>", ">>>":
		return a.Shr(int(b.Uint64())), nil
	case "==", "===":
		return boolVec(a.Eq(b)), nil
	case "!=", "!==":
		return boolVec(!a.Eq(b)), nil
	case "<":
		return boolVec(a.Ult(b)), nil
	case ">":
		return boolVec(b.Ult(a)), nil
	case "<=":
		return boolVec(!b.Ult(a)), nil
	case ">=":
		return boolVec(!a.Ult(b)), nil
	case "&&":
		return boolVec(a.Bool() && b.Bool()), nil
	case "||":
		return boolVec(a.Bool() || b.Bool()), nil
	}
	return bitvec.Vec{}, fmt.Errorf("sim: unsupported binary operator %q", op)
}
