package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/sema"
	"repro/internal/verilog"
	"repro/internal/wave"
)

// This file is the single walker-vs-engine comparison path shared by the
// unit tests, the generative fuzz harness (internal/fuzz), and the
// delta-debugging minimizer. All three must agree on what "diverges"
// means, so none of them roll their own loop.

// DiffConfig controls one differential run.
type DiffConfig struct {
	// Clock names the clock input, pulsed once per cycle after inputs
	// settle. Empty means purely combinational: settle only.
	Clock string
	// Cycles is the number of input vectors to drive. Zero defaults
	// to 16.
	Cycles int
	// Seed feeds the deterministic input-trace generator.
	Seed int64
	// MaxMismatches bounds how many mismatches are recorded before the
	// run stops. Zero defaults to 1 (stop at first divergence).
	MaxMismatches int
	// Coverage, when non-nil, accumulates toggle/activity coverage from
	// the engine side of the run — the signal the coverage-guided fuzzer
	// feeds on.
	Coverage *wave.Coverage
	// Recorder, when non-nil, captures an engine-side waveform; it is
	// marked at the first divergence, so a bounded recorder yields the
	// window around it.
	Recorder *wave.Recorder
}

// Mismatch is one signal disagreement between the two backends.
type Mismatch struct {
	Cycle  int
	Signal string
	Engine string // hex value from the compiled engine
	Walker string // hex value from the tree-walker
	Final  bool   // found during the final full-state sweep
}

func (m Mismatch) String() string {
	where := fmt.Sprintf("cycle %d", m.Cycle)
	if m.Final {
		where = "final state"
	}
	return fmt.Sprintf("%s: %s: engine=%s walker=%s", where, m.Signal, m.Engine, m.Walker)
}

// DiffReport accumulates the outcome of a differential run.
type DiffReport struct {
	Cycles     int // cycles actually driven
	Compared   int // signal comparisons performed
	Mismatches []Mismatch
	// Halted is set when both backends agreed to fail (settle limit,
	// loop limit); the run stops early but is not a divergence.
	Halted bool
}

// Diverged reports whether the two backends disagreed anywhere.
func (r *DiffReport) Diverged() bool { return len(r.Mismatches) > 0 }

// First returns the first recorded mismatch, or a zero Mismatch.
func (r *DiffReport) First() Mismatch {
	if len(r.Mismatches) == 0 {
		return Mismatch{}
	}
	return r.Mismatches[0]
}

// DiffSource parses, elaborates, and differentially runs src. Frontend
// or compile rejection returns an error (callers treat that as "skip",
// not as a divergence).
func DiffSource(src string, cfg DiffConfig) (*DiffReport, error) {
	file, diags := verilog.Parse(src)
	if diags.HasErrors() {
		return nil, fmt.Errorf("parse: %s", diags.Summary())
	}
	design, diags := sema.Elaborate(file)
	if diags.HasErrors() {
		return nil, fmt.Errorf("elaborate: %s", diags.Summary())
	}
	return DiffDesign(design, cfg)
}

// DiffDesign runs design through the compiled engine and the
// tree-walker, driving Cycles random input vectors from Seed, comparing
// every signal after each settle/clock step and the full state at the
// end. A non-nil error means the design could not be built or the
// backends disagreed about halting; divergences are reported via the
// DiffReport, not the error.
func DiffDesign(design *sema.Design, cfg DiffConfig) (*DiffReport, error) {
	if cfg.Cycles <= 0 {
		cfg.Cycles = 16
	}
	if cfg.MaxMismatches <= 0 {
		cfg.MaxMismatches = 1
	}
	prog, err := Compile(design)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	eng := NewFromProgram(prog)
	wlk, err := NewWith(design, EngineWalker)
	if err != nil {
		return nil, fmt.Errorf("walker: %w", err)
	}
	var parts []wave.Observer
	if cfg.Recorder != nil {
		parts = append(parts, cfg.Recorder)
	}
	if cfg.Coverage != nil {
		parts = append(parts, cfg.Coverage)
	}
	if obs := wave.Multi(parts...); obs != nil {
		eng.Observe(obs)
	}
	if cfg.Coverage != nil {
		eng.EnableActivations()
		defer func() { cfg.Coverage.AddActivations(eng.Activations()) }()
	}

	// Sorted signal order keeps mismatch reporting deterministic
	// across runs — essential for the minimizer's re-check loop.
	names := make([]string, 0, len(design.Signals))
	for name := range design.Signals {
		names = append(names, name)
	}
	sort.Strings(names)

	rep := &DiffReport{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inputs := design.Inputs()
	for cyc := 0; cyc < cfg.Cycles; cyc++ {
		for _, in := range inputs {
			if in.Name == cfg.Clock {
				continue
			}
			v := bitvec.New(in.Width())
			for b := 0; b < in.Width(); b++ {
				if rng.Intn(2) == 1 {
					v.SetBitInPlace(b, true)
				}
			}
			if err := eng.SetInput(in.Name, v); err != nil {
				return nil, err
			}
			if err := wlk.SetInput(in.Name, v); err != nil {
				return nil, err
			}
		}
		errE, errW := eng.Settle(), wlk.Settle()
		if (errE == nil) != (errW == nil) {
			return rep, fmt.Errorf("cycle %d: settle disagreement: engine=%v walker=%v", cyc, errE, errW)
		}
		if errE != nil {
			// Both hit the settle limit: agreed halt, not a bug.
			rep.Halted = true
			return rep, nil
		}
		if cfg.Clock != "" {
			if errE, errW = eng.ClockPulse(cfg.Clock), wlk.ClockPulse(cfg.Clock); (errE == nil) != (errW == nil) {
				return rep, fmt.Errorf("cycle %d: clock disagreement: engine=%v walker=%v", cyc, errE, errW)
			}
			if errE != nil {
				rep.Halted = true
				return rep, nil
			}
		}
		rep.Cycles++
		for _, name := range names {
			ev, wv := eng.Get(name), wlk.Get(name)
			rep.Compared++
			if !ev.Eq(wv) {
				rep.Mismatches = append(rep.Mismatches, Mismatch{
					Cycle: cyc, Signal: name, Engine: ev.Hex(), Walker: wv.Hex(),
				})
				if cfg.Recorder != nil {
					cfg.Recorder.Mark()
				}
				if len(rep.Mismatches) >= cfg.MaxMismatches {
					return rep, nil
				}
			}
		}
	}
	// Final full-state sweep: catches divergence in state that the
	// per-cycle loop already covered, but keeps the contract explicit
	// ("outputs per cycle + final state").
	for _, name := range names {
		ev, wv := eng.Get(name), wlk.Get(name)
		rep.Compared++
		if !ev.Eq(wv) {
			rep.Mismatches = append(rep.Mismatches, Mismatch{
				Cycle: rep.Cycles, Signal: name, Engine: ev.Hex(), Walker: wv.Hex(), Final: true,
			})
			if cfg.Recorder != nil {
				cfg.Recorder.Mark()
			}
			if len(rep.Mismatches) >= cfg.MaxMismatches {
				return rep, nil
			}
		}
	}
	return rep, nil
}
