package sim_test

// External test package: internal/fuzz imports internal/sim (for the
// shared differential path), so the native fuzz target lives outside
// package sim to keep the import graph acyclic.

import (
	"strconv"
	"testing"

	"repro/internal/fuzz"
)

// FuzzDifferential is the native-fuzzing entry point: each input seed
// deterministically generates one hazard-biased module and drives it
// through both backends via the shared diff path. Run long campaigns
// with `go test -fuzz=FuzzDifferential ./internal/sim/`; the seed
// corpus alone runs under plain `go test -run Differential` (CI does,
// with -race). Any divergence is auto-minimized and printed as a
// ready-to-paste engine_regress_test.go entry.
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 32; seed++ {
		f.Add(seed)
	}
	const cycles = 10
	f.Fuzz(func(t *testing.T, seed int64) {
		src := fuzz.Generate(seed)
		rep, err := fuzz.CheckSource(src, cycles, seed)
		if err != nil {
			// Generator miss: the frontend rejected the module. Not a
			// finding — the compile-rate test bounds how often this
			// may happen.
			t.Skip(err)
		}
		if rep.Diverged() {
			min := fuzz.Minimize(src, cycles, seed)
			t.Fatalf("walker-vs-engine divergence (seed %d): %s\nminimized repro:\n%s\nregression entry:\n%s",
				seed, rep.First(), min,
				fuzz.TestCase("fuzz_seed_"+strconv.FormatInt(seed, 10), min, cycles, seed))
		}
	})
}
