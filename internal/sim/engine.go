package sim

// engine interprets a compiled Program. All value storage — one
// preallocated bitvec register per slot, constant, and temporary — is
// owned by the engine instance, so steady-state cycles (SetInput, Settle,
// ClockPulse) perform zero heap allocations; the bitvec in-place
// operations keep even multi-word vectors allocation-free, and ≤64-bit
// designs stay on the single-word fast paths throughout.

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/resilience"
	"repro/internal/verilog"
	"repro/internal/wave"
)

type engine struct {
	p      *Program
	regs   []bitvec.Vec
	nSlots int
	// nba is the pending non-blocking-assignment queue: fragment ids
	// paired with value snapshots. Both slices retain capacity across
	// commits; nbaVals entries grow monotonically to the widest value
	// ever queued in their position.
	nba     []int32
	nbaVals []bitvec.Vec
	curNBA  bitvec.Vec // value being applied by the running fragment
	trips   []int
	// Fixpoint change detection. Continuous assigns track incrementally
	// (trackStores gates the store ops' reporting); comb always blocks
	// compare their tracked slots against the shadow copies taken before
	// the run, reproducing the walker's snapshot semantics.
	changed     bool
	trackStores bool
	shadow      []bitvec.Vec
	// wd, when armed via Simulator.SetWatchdog, is checked inside the
	// settle fixpoint so a runaway group is canceled mid-settle.
	wd *resilience.Watchdog
	// Profiling counters, nil unless enabled via the facade. Every hot-path
	// touch is behind a nil check so the disabled engine stays at zero
	// allocations and near-zero overhead per cycle.
	opCounts  []uint64 // per-opcode executed-instruction histogram
	actCounts []uint64 // per-process activations: nodes then seq blocks
	fixIters  []uint64 // per sched item: fixpoint iterations run
	settles   uint64   // Settle calls while profiling
}

func (e *engine) setWatchdog(wd *resilience.Watchdog) { e.wd = wd }

// enableActivations (re)arms per-process activation counting; counters
// are zeroed so each run reads as its own delta.
func (e *engine) enableActivations() {
	n := len(e.p.nodes) + len(e.p.seq)
	if len(e.actCounts) != n {
		e.actCounts = make([]uint64, n)
		return
	}
	for i := range e.actCounts {
		e.actCounts[i] = 0
	}
}

func (e *engine) activationCounts() []uint64 { return e.actCounts }

// enableProfile (re)arms full execution profiling: opcode histogram,
// fixpoint iteration counts, and activation counters.
func (e *engine) enableProfile() {
	if len(e.opCounts) != len(opNames) {
		e.opCounts = make([]uint64, len(opNames))
	} else {
		for i := range e.opCounts {
			e.opCounts[i] = 0
		}
	}
	if len(e.fixIters) != len(e.p.sched) {
		e.fixIters = make([]uint64, len(e.p.sched))
	} else {
		for i := range e.fixIters {
			e.fixIters[i] = 0
		}
	}
	e.settles = 0
	e.enableActivations()
}

// profileSnapshot renders the counters; nil when profiling is off.
func (e *engine) profileSnapshot() *wave.EngineProfile {
	if e.opCounts == nil {
		return nil
	}
	prof := &wave.EngineProfile{Settles: e.settles}
	for op, n := range e.opCounts {
		if n > 0 {
			prof.Instructions += n
			prof.Ops = append(prof.Ops, wave.OpCount{Op: opNames[op], Count: n})
		}
	}
	for si := range e.p.sched {
		if !e.p.sched[si].fixpoint || e.fixIters[si] == 0 {
			continue
		}
		prof.FixpointGroups++
		prof.FixpointIters += e.fixIters[si]
		if e.fixIters[si] > prof.MaxGroupIters {
			prof.MaxGroupIters = e.fixIters[si]
		}
	}
	for i, pm := range e.p.procs {
		var acts uint64
		if i < len(e.actCounts) {
			acts = e.actCounts[i]
		}
		prof.Processes = append(prof.Processes, wave.ProcessStat{
			Kind: pm.kind, Line: pm.line, Activations: acts,
		})
	}
	prof.Sort()
	return prof
}

func newEngine(p *Program) *engine {
	e := &engine{
		p:      p,
		regs:   make([]bitvec.Vec, len(p.regWidth)),
		nSlots: len(p.slots),
		trips:  make([]int, len(p.loops)),
	}
	isConst := make([]bool, len(p.regWidth))
	for _, ce := range p.consts {
		isConst[ce.reg] = true
		// Constant registers share the program's vectors: the compiler
		// never emits a write to them.
		e.regs[ce.reg] = ce.val
	}
	for i, w := range p.regWidth {
		if !isConst[i] {
			e.regs[i] = bitvec.New(w)
		}
	}
	e.shadow = make([]bitvec.Vec, e.nSlots)
	for i := range e.shadow {
		e.shadow[i] = bitvec.New(p.slots[i].width)
	}
	e.runInit()
	return e
}

func (e *engine) runInit() {
	// Initializer code cannot fault: every construct that could (bad
	// literals, unbounded loops) is rejected at compile time.
	_ = e.exec(e.p.initCode)
}

// Reset zeroes every signal in place and re-applies declaration
// initializers, reusing all backing storage.
func (e *engine) Reset() {
	for i := 0; i < e.nSlots; i++ {
		e.regs[i].Zero()
	}
	e.nba = e.nba[:0]
	e.runInit()
}

// Get returns the live value of a signal. The vector is valid until the
// next simulator mutation.
func (e *engine) Get(name string) bitvec.Vec {
	if slot, ok := e.p.slotOf[name]; ok {
		return e.regs[slot]
	}
	return bitvec.New(1)
}

// SetInput drives a signal and fires any edge-sensitive blocks the change
// triggers.
func (e *engine) SetInput(name string, v bitvec.Vec) error {
	slot, ok := e.p.slotOf[name]
	if !ok {
		return fmt.Errorf("sim: no signal %q", name)
	}
	old := e.regs[slot].Bit(0)
	e.regs[slot].CopyResize(v)
	return e.afterDrive(slot, old)
}

// SetInputUint drives a signal from a uint64 without allocating.
func (e *engine) SetInputUint(name string, v uint64) error {
	slot, ok := e.p.slotOf[name]
	if !ok {
		return fmt.Errorf("sim: no signal %q", name)
	}
	old := e.regs[slot].Bit(0)
	e.regs[slot].SetUint64(v)
	return e.afterDrive(slot, old)
}

func (e *engine) afterDrive(slot int32, oldBit bool) error {
	newBit := e.regs[slot].Bit(0)
	if oldBit == newBit {
		return nil
	}
	edge := verilog.EdgeNeg
	if newBit {
		edge = verilog.EdgePos
	}
	blocks := e.p.edges[edgeKey{slot: slot, edge: edge}]
	if len(blocks) == 0 {
		return nil
	}
	for _, bi := range blocks {
		if e.actCounts != nil {
			e.actCounts[len(e.p.nodes)+int(bi)]++
		}
		if err := e.exec(e.p.seq[bi]); err != nil {
			return err
		}
	}
	return e.commitNBA()
}

// Settle runs the compiled schedule: topologically-ordered processes once
// each, strongly-connected groups to a bounded fixpoint.
func (e *engine) Settle() error {
	if e.opCounts != nil {
		e.settles++
	}
	for si := range e.p.sched {
		item := &e.p.sched[si]
		if !item.fixpoint {
			for _, ni := range item.nodes {
				if err := e.runNode(ni); err != nil {
					return err
				}
			}
			continue
		}
		settled := false
		for iter := 0; iter < settleLimit; iter++ {
			if err := e.wd.Check(); err != nil {
				return err
			}
			if e.fixIters != nil {
				e.fixIters[si]++
			}
			e.changed = false
			for _, ni := range item.nodes {
				if err := e.runNodeTracked(ni); err != nil {
					return err
				}
			}
			if !e.changed {
				settled = true
				break
			}
		}
		if !settled {
			return fmt.Errorf("sim: combinational logic did not settle (possible feedback loop)")
		}
	}
	return nil
}

func (e *engine) runNode(ni int32) error {
	if e.actCounts != nil {
		e.actCounts[ni]++
	}
	if err := e.exec(e.p.nodes[ni]); err != nil {
		return err
	}
	return e.commitNBA()
}

// runNodeTracked runs a node inside a fixpoint group with the walker's
// change-detection semantics for its kind.
func (e *engine) runNodeTracked(ni int32) error {
	tracked := e.p.tracked[ni]
	if tracked == nil {
		// continuous assign: every effective slot store is a change
		e.trackStores = true
		err := e.runNode(ni)
		e.trackStores = false
		return err
	}
	for _, s := range tracked {
		e.shadow[s].CopyResize(e.regs[s])
	}
	if err := e.runNode(ni); err != nil {
		return err
	}
	for _, s := range tracked {
		if !e.regs[s].Eq(e.shadow[s]) {
			e.changed = true
			break
		}
	}
	return nil
}

func (e *engine) commitNBA() error {
	for qi := 0; qi < len(e.nba); qi++ {
		e.curNBA = e.nbaVals[qi]
		if err := e.exec(e.p.frags[e.nba[qi]]); err != nil {
			return err
		}
	}
	e.nba = e.nba[:0]
	return nil
}

// dynIdx reproduces the walker's index arithmetic: the raw value wraps to
// signed 32-bit, then the declared range maps it to a zero-based offset.
func dynIdx(raw uint64, mode uint8, lsb int32) int {
	idx := int(int32(uint32(raw)))
	switch mode & normMask {
	case normDesc:
		return idx - int(lsb)
	case normAsc:
		return int(lsb) - idx
	}
	return idx
}

// exec interprets one instruction sequence.
func (e *engine) exec(code []instr) error {
	regs := e.regs
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		if e.opCounts != nil {
			e.opCounts[in.op]++
		}
		switch in.op {
		case opCopy:
			regs[in.dst].CopyResize(regs[in.a])
		case opZeroReg:
			regs[in.dst].Zero()
		case opAnd:
			regs[in.dst].AndOf(regs[in.a], regs[in.b])
		case opOr:
			regs[in.dst].OrOf(regs[in.a], regs[in.b])
		case opXor:
			regs[in.dst].XorOf(regs[in.a], regs[in.b])
		case opXnor:
			regs[in.dst].XnorOf(regs[in.a], regs[in.b])
		case opNot:
			regs[in.dst].NotOf(regs[in.a])
		case opNeg:
			regs[in.dst].NegOf(regs[in.a])
		case opAdd:
			regs[in.dst].AddOf(regs[in.a], regs[in.b])
		case opSub:
			regs[in.dst].SubOf(regs[in.a], regs[in.b])
		case opMul:
			regs[in.dst].MulOf(regs[in.a], regs[in.b])
		case opDiv:
			regs[in.dst].DivLowOf(regs[in.a], regs[in.b])
		case opMod:
			regs[in.dst].ModLowOf(regs[in.a], regs[in.b])
		case opShl:
			regs[in.dst].ShlOf(regs[in.a], int(regs[in.b].Uint64()))
		case opShr:
			regs[in.dst].ShrOf(regs[in.a], int(regs[in.b].Uint64()))
		case opEq:
			regs[in.dst].SetBool(regs[in.a].Eq(regs[in.b]))
		case opNe:
			regs[in.dst].SetBool(!regs[in.a].Eq(regs[in.b]))
		case opLt:
			regs[in.dst].SetBool(regs[in.a].Ult(regs[in.b]))
		case opGt:
			regs[in.dst].SetBool(regs[in.b].Ult(regs[in.a]))
		case opLe:
			regs[in.dst].SetBool(!regs[in.b].Ult(regs[in.a]))
		case opGe:
			regs[in.dst].SetBool(!regs[in.a].Ult(regs[in.b]))
		case opLAnd:
			regs[in.dst].SetBool(regs[in.a].Bool() && regs[in.b].Bool())
		case opLOr:
			regs[in.dst].SetBool(regs[in.a].Bool() || regs[in.b].Bool())
		case opLNot:
			regs[in.dst].SetBool(!regs[in.a].Bool())
		case opRedAnd:
			regs[in.dst].SetBool(regs[in.a].AllOnes())
		case opRedOr:
			regs[in.dst].SetBool(regs[in.a].Bool())
		case opRedXor:
			regs[in.dst].SetBool(regs[in.a].PopCount()&1 == 1)
		case opRedNand:
			regs[in.dst].SetBool(!regs[in.a].AllOnes())
		case opRedNor:
			regs[in.dst].SetBool(!regs[in.a].Bool())
		case opRedXnor:
			regs[in.dst].SetBool(regs[in.a].PopCount()&1 == 0)
		case opPopCnt:
			regs[in.dst].SetUint64(uint64(regs[in.a].PopCount()))
		case opClog2:
			u := regs[in.a].Uint64()
			r := 0
			for r < 64 && uint64(1)<<r < u {
				r++
			}
			regs[in.dst].SetUint64(uint64(r))
		case opConcat:
			regs[in.dst].ConcatOf(regs[in.a], regs[in.b])
		case opRepeatC:
			regs[in.dst].RepeatOf(regs[in.a], int(in.imm))
		case opBitGetC:
			regs[in.dst].SetBool(regs[in.a].Bit(int(in.imm)))
		case opBitGet:
			idx := dynIdx(regs[in.b].Uint64(), in.mode, in.imm)
			regs[in.dst].SetBool(regs[in.a].Bit(idx))
		case opSliceC:
			regs[in.dst].ShrOf(regs[in.a], int(in.imm))
		case opSliceDyn:
			lo := dynIdx(regs[in.b].Uint64(), in.mode, in.imm)
			if in.mode&minusFlag != 0 {
				lo = lo - regs[in.dst].Width() + 1
			}
			if lo < 0 {
				regs[in.dst].Zero()
			} else {
				regs[in.dst].ShrOf(regs[in.a], lo)
			}
		case opStore:
			dst := &regs[in.dst]
			if !dst.EqResized(regs[in.a]) {
				dst.CopyResize(regs[in.a])
				if e.trackStores && int(in.dst) < e.nSlots {
					e.changed = true
				}
			}
		case opStoreBitC:
			dst := &regs[in.dst]
			nb := regs[in.a].Bit(0)
			if dst.Bit(int(in.imm)) != nb {
				dst.SetBitInPlace(int(in.imm), nb)
				if e.trackStores && int(in.dst) < e.nSlots {
					e.changed = true
				}
			}
		case opStoreBit:
			idx := dynIdx(regs[in.b].Uint64(), in.mode, in.imm)
			dst := &regs[in.dst]
			if idx < 0 || idx >= dst.Width() {
				break // dynamic out-of-range write: dropped, like X
			}
			nb := regs[in.a].Bit(0)
			if dst.Bit(idx) != nb {
				dst.SetBitInPlace(idx, nb)
				if e.trackStores && int(in.dst) < e.nSlots {
					e.changed = true
				}
			}
		case opStoreSliceC:
			if regs[in.dst].StoreSliceOf(regs[in.a], int(in.imm), int(in.aux)) &&
				e.trackStores && int(in.dst) < e.nSlots {
				e.changed = true
			}
		case opStoreSliceDyn:
			lo := dynIdx(regs[in.b].Uint64(), in.mode, in.imm)
			if in.mode&minusFlag != 0 {
				lo = lo - int(in.aux) + 1
			}
			if regs[in.dst].StoreSliceOf(regs[in.a], lo, int(in.aux)) &&
				e.trackStores && int(in.dst) < e.nSlots {
				e.changed = true
			}
		case opNbaQueue:
			e.enqueueNBA(in.imm, regs[in.a])
		case opNbaVal:
			regs[in.dst].CopyResize(e.curNBA)
		case opJump:
			pc = int(in.imm) - 1
		case opJumpIfZ:
			if regs[in.a].IsZero() {
				pc = int(in.imm) - 1
			}
		case opJumpIfNZ:
			if !regs[in.a].IsZero() {
				pc = int(in.imm) - 1
			}
		case opLoopInit:
			e.trips[in.imm] = 0
		case opLoopGuard:
			if e.trips[in.imm] >= loopLimit {
				return fmt.Errorf("sim: for loop at line %d exceeded %d iterations",
					e.p.loops[in.imm].line, loopLimit)
			}
			e.trips[in.imm]++
		}
	}
	return nil
}

// enqueueNBA snapshots a value into the queue, reusing storage from
// earlier cycles. A position's vector is regrown only when a wider value
// arrives, so steady-state operation does not allocate.
func (e *engine) enqueueNBA(frag int32, v bitvec.Vec) {
	n := len(e.nba)
	e.nba = append(e.nba, frag)
	if n < len(e.nbaVals) {
		if e.nbaVals[n].Width() < v.Width() {
			e.nbaVals[n] = bitvec.New(v.Width())
		}
		e.nbaVals[n].CopyResize(v)
		return
	}
	fresh := bitvec.New(v.Width())
	fresh.CopyResize(v)
	e.nbaVals = append(e.nbaVals, fresh)
}
