package sim

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/wave"
)

const obsCtrSrc = `
module ctr(input clk, input rst, output reg [3:0] q);
	always @(posedge clk) begin
		if (rst) q <= 0;
		else q <= q + 1;
	end
endmodule`

// TestObserveDetachedZeroAllocs: attaching and then detaching an
// observer must leave the engine on its zero-allocation steady state —
// the nil check in Settle is the entire residual cost.
func TestObserveDetachedZeroAllocs(t *testing.T) {
	s, err := NewWith(buildDesign(t, obsCtrSrc), EngineCompiled)
	if err != nil {
		t.Fatal(err)
	}
	cov := wave.NewCoverage()
	s.Observe(cov)
	step := func() {
		if err := s.SetInputUint("rst", 0); err != nil {
			t.Fatal(err)
		}
		if err := s.ClockPulse("clk"); err != nil {
			t.Fatal(err)
		}
	}
	step()
	s.Observe(nil)
	step() // re-reach steady state with observation off
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("detached cycle allocated %.2f/op, want 0", allocs)
	}
	if st := cov.Stats(); st.Toggles == 0 {
		t.Fatal("coverage observed nothing while attached")
	}
}

// TestObserveCoverageBothBackends: the facade hook lives above the
// backend split, so the walker is observable too and both backends see
// the same toggles on the same design.
func TestObserveCoverageBothBackends(t *testing.T) {
	for _, eng := range []Engine{EngineCompiled, EngineWalker} {
		s, err := NewWith(buildDesign(t, obsCtrSrc), eng)
		if err != nil {
			t.Fatal(err)
		}
		cov := wave.NewCoverage()
		s.Observe(cov)
		s.EnableActivations()
		s.SetInputUint("rst", 0)
		for i := 0; i < 8; i++ {
			if err := s.ClockPulse("clk"); err != nil {
				t.Fatal(err)
			}
		}
		cov.AddActivations(s.Activations())
		st := cov.Stats()
		// clk toggles every cycle and q counts 1..8: bits 0..3 all rise.
		if st.BitsToggled < 4 {
			t.Errorf("engine %v: BitsToggled = %d, want >= 4", eng, st.BitsToggled)
		}
		if st.ProcessesActive != 1 || st.Processes != 1 {
			t.Errorf("engine %v: processes %d/%d, want 1/1", eng, st.ProcessesActive, st.Processes)
		}
		if cov.Signature().Empty() {
			t.Errorf("engine %v: empty signature", eng)
		}
	}
}

// failGolden expects q to lag one count behind reality, forcing a
// mismatch from the second counted cycle on.
type failGolden struct{ n uint64 }

func (g *failGolden) Reset() { g.n = 0 }
func (g *failGolden) Step(in map[string]bitvec.Vec) map[string]bitvec.Vec {
	if in["rst"].Bool() {
		g.n = 0
	} else if g.n++; g.n > 2 {
		g.n++ // diverge from the design after two good cycles
	}
	return map[string]bitvec.Vec{"q": bitvec.FromUint64(4, g.n%16)}
}

// TestTestbenchWaveformOnFailure: a failing observed run attaches a
// parseable VCD excerpt windowed around the first mismatch.
func TestTestbenchWaveformOnFailure(t *testing.T) {
	s, err := New(buildDesign(t, obsCtrSrc))
	if err != nil {
		t.Fatal(err)
	}
	vectors := make([]Vector, 8)
	for i := range vectors {
		vectors[i] = Vector{Inputs: map[string]bitvec.Vec{"rst": bitvec.FromUint64(1, 0)}}
	}
	o := TBObserve{Recorder: wave.NewRecorder(8), Coverage: wave.NewCoverage(), Profile: true}
	res, err := RunTestbenchObserved(s, "clk", vectors, &failGolden{}, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() || res.FirstMismatch == "" {
		t.Fatalf("run should fail with a first mismatch, got %+v", res)
	}
	if res.Waveform == "" {
		t.Fatal("failing observed run must attach a waveform")
	}
	for _, want := range []string{
		"$timescale", "$scope module ctr $end", "$var wire 1", "$var wire 4",
		"$enddefinitions $end", "$dumpvars", "$comment window around",
	} {
		if !strings.Contains(res.Waveform, want) {
			t.Errorf("VCD excerpt missing %q:\n%s", want, res.Waveform)
		}
	}
	if !o.Recorder.Marked() {
		t.Error("recorder should be marked at the first mismatch")
	}
	if cs := o.Coverage.Stats(); cs.Toggles == 0 || cs.ProcessesActive == 0 {
		t.Errorf("coverage empty after observed run: %+v", cs)
	}
	if res.Profile == nil || res.Profile.Instructions == 0 {
		t.Fatalf("profile missing: %+v", res.Profile)
	}
	if h := res.Profile.Hottest(); h.Kind != "seq" || h.Activations == 0 {
		t.Errorf("hottest process = %+v, want active seq block", h)
	}
}

// TestEngineProfileCounts sanity-checks the opcode histogram and settle
// accounting against a deterministic run.
func TestEngineProfileCounts(t *testing.T) {
	s, err := NewWith(buildDesign(t, `
module m(input clk, input [3:0] a, output [3:0] y, output reg [3:0] r);
	assign y = a + 1;
	always @(posedge clk) r <= y;
endmodule`), EngineCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if !s.EnableProfile() {
		t.Fatal("compiled backend must support profiling")
	}
	s.SetInputUint("a", 3)
	for i := 0; i < 4; i++ {
		if err := s.ClockPulse("clk"); err != nil {
			t.Fatal(err)
		}
	}
	p := s.Profile()
	if p == nil || p.Instructions == 0 {
		t.Fatalf("empty profile: %+v", p)
	}
	if p.Settles != 12 { // 3 settles per ClockPulse
		t.Errorf("settles = %d, want 12", p.Settles)
	}
	ops := map[string]uint64{}
	for _, oc := range p.Ops {
		ops[oc.Op] = oc.Count
	}
	if ops["add"] == 0 {
		t.Errorf("add missing from opcode histogram: %v", ops)
	}
	if len(p.Processes) != 2 {
		t.Fatalf("processes = %+v, want assign + seq", p.Processes)
	}
	// Re-arming zeroes the counters.
	s.EnableProfile()
	if p2 := s.Profile(); p2.Instructions != 0 || p2.Settles != 0 {
		t.Errorf("re-arm did not zero counters: %+v", p2)
	}
}

// TestDiffCoverageAndRecorder: the differential path feeds the engine
// side into coverage, and walker-only simulators still count
// activations.
func TestDiffCoverageAndRecorder(t *testing.T) {
	cov := wave.NewCoverage()
	rep, err := DiffSource(obsCtrSrc, DiffConfig{Clock: "clk", Cycles: 8, Coverage: cov, Recorder: wave.NewRecorder(4)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged() {
		t.Fatalf("backends diverged: %+v", rep.Mismatches)
	}
	if cov.Signature().Empty() {
		t.Fatal("differential run produced no coverage")
	}
	st := cov.Stats()
	if st.Processes == 0 || st.ProcessesActive == 0 {
		t.Errorf("activations not folded: %+v", st)
	}
}
