package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/sema"
	"repro/internal/verilog"
)

// narrowBenchSrc is a ≤64-bit sequential design with comb logic, a case
// mux, and a shift — the shape of a typical curated problem.
const narrowBenchSrc = `
module alu(input clk, input rst, input [31:0] a, input [31:0] b, input [1:0] op,
           output reg [31:0] acc, output [31:0] comb, output zero);
	wire [31:0] sum = a + b;
	assign comb = op[0] ? (a & b) : sum ^ b;
	assign zero = acc == 0;
	always @(posedge clk) begin
		if (rst) acc <= 0;
		else begin
			case (op)
				2'b00: acc <= acc + a;
				2'b01: acc <= acc - b;
				2'b10: acc <= acc ^ sum;
				default: acc <= {acc[15:0], a[15:0]};
			endcase
		end
	end
endmodule`

// wideBenchSrc exercises the multi-word path: a [254:0] datapath with a
// bit-reverse for loop (255 dynamic bit stores per settle), a rotate
// concat, and a wide accumulator.
const wideBenchSrc = `
module wide(input clk, input [254:0] in, output reg [254:0] acc, output [254:0] rev);
	reg [254:0] r;
	integer i;
	always @(*) begin
		for (i = 0; i < 255; i = i + 1)
			r[i] = in[254 - i];
	end
	assign rev = r ^ {in[253:0], in[254]};
	always @(posedge clk)
		acc <= acc + rev;
endmodule`

func benchDesign(b *testing.B, src string) *sema.Design {
	b.Helper()
	file, pd := verilog.Parse(src)
	if pd.HasErrors() {
		b.Fatalf("parse: %s", pd.Summary())
	}
	d, ed := sema.Elaborate(file)
	if ed.HasErrors() {
		b.Fatalf("elab: %s", ed.Summary())
	}
	return d
}

// BenchmarkSimCompile measures the one-time lowering cost the program
// cache amortizes away.
func BenchmarkSimCompile(b *testing.B) {
	for _, bc := range []struct {
		name, src string
	}{
		{"narrow", narrowBenchSrc},
		{"wide", wideBenchSrc},
	} {
		design := benchDesign(b, bc.src)
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compile(design); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimCycle measures one steady-state cycle — drive inputs,
// settle, clock pulse — on both backends. The compiled/narrow case is
// the allocation-free hot path the acceptance criteria pin at 0
// allocs/op and ≥5x over the walker.
func BenchmarkSimCycle(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	widevec := bitvec.New(255)
	for i := 0; i < 255; i++ {
		if rng.Intn(2) == 1 {
			widevec.SetBitInPlace(i, true)
		}
	}
	cases := []struct {
		name   string
		src    string
		engine Engine
		drive  func(b *testing.B, s *Simulator)
	}{
		{"narrow/compiled", narrowBenchSrc, EngineCompiled, driveNarrow},
		{"narrow/walker", narrowBenchSrc, EngineWalker, driveNarrow},
		{"wide/compiled", wideBenchSrc, EngineCompiled, nil},
		{"wide/walker", wideBenchSrc, EngineWalker, nil},
	}
	for _, bc := range cases {
		design := benchDesign(b, bc.src)
		s, err := NewWith(design, bc.engine)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if bc.drive != nil {
					bc.drive(b, s)
					continue
				}
				if err := s.SetInput("in", widevec); err != nil {
					b.Fatal(err)
				}
				if err := s.Settle(); err != nil {
					b.Fatal(err)
				}
				if err := s.ClockPulse("clk"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var benchA = bitvec.FromUint64(32, 0xDEADBEEF)
var benchB = bitvec.FromUint64(32, 0x12345678)

func driveNarrow(b *testing.B, s *Simulator) {
	if err := s.SetInput("a", benchA); err != nil {
		b.Fatal(err)
	}
	if err := s.SetInput("b", benchB); err != nil {
		b.Fatal(err)
	}
	if err := s.SetInputUint("op", 2); err != nil {
		b.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		b.Fatal(err)
	}
	if err := s.ClockPulse("clk"); err != nil {
		b.Fatal(err)
	}
}
