package sim

// This file is the facade's observability surface: attaching a
// wave.Observer samples every signal after each successful Settle, and
// the profiling/activation hooks expose the backends' nil-guarded
// counters. Everything here is strictly opt-in — with nothing attached
// the hot path pays one nil check per settle and allocates nothing,
// which the engine's steady-state AllocsPerRun tests pin.

import (
	"sort"

	"repro/internal/bitvec"
	"repro/internal/wave"
)

// profiler is implemented by backends with full execution profiling
// (the compiled engine).
type profiler interface {
	enableProfile()
	profileSnapshot() *wave.EngineProfile
}

// activationCountable is implemented by backends that can count
// per-process executions (both backends).
type activationCountable interface {
	enableActivations()
	activationCounts() []uint64
}

// Observe attaches an observer (nil detaches). The observer's Init is
// called immediately with the design's signals in sorted-name order;
// from then on every successful Settle — including the three inside
// ClockPulse — delivers one Sample whose values alias live simulator
// storage. Use wave.Multi to attach several observers at once.
func (s *Simulator) Observe(o wave.Observer) {
	if o == nil {
		s.obs = nil
		s.obsNames = nil
		s.obsVals = nil
		return
	}
	names := make([]string, 0, len(s.design.Signals))
	for name := range s.design.Signals {
		names = append(names, name)
	}
	sort.Strings(names)
	sigs := make([]wave.Signal, len(names))
	for i, name := range names {
		sigs[i] = wave.Signal{Name: name, Width: s.design.Signals[name].Width()}
	}
	o.Init(s.design.Module.Name, sigs)
	s.obs = o
	s.obsNames = names
	s.obsVals = make([]bitvec.Vec, len(names))
	s.obsTime = 0
}

// sample delivers one post-settle snapshot to the attached observer.
func (s *Simulator) sample() {
	for i, name := range s.obsNames {
		s.obsVals[i] = s.b.Get(name)
	}
	s.obs.Sample(s.obsTime, s.obsVals)
	s.obsTime++
}

// EnableActivations (re)arms per-process activation counting on the
// backend; counters start at zero. Supported by both backends.
func (s *Simulator) EnableActivations() {
	if ac, ok := s.b.(activationCountable); ok {
		ac.enableActivations()
	}
}

// Activations returns the per-process activation counts accumulated
// since EnableActivations, or nil when counting is off. Process order is
// the compiled program's: continuous assigns, then combinational always
// blocks, then clocked always blocks (the walker counts in the same
// order).
func (s *Simulator) Activations() []uint64 {
	if ac, ok := s.b.(activationCountable); ok {
		return ac.activationCounts()
	}
	return nil
}

// EnableProfile (re)arms full execution profiling — opcode histogram,
// fixpoint iteration counts, per-process activations — and reports
// whether the backend supports it (only the compiled engine does).
func (s *Simulator) EnableProfile() bool {
	if p, ok := s.b.(profiler); ok {
		p.enableProfile()
		return true
	}
	return false
}

// Profile snapshots the execution profile accumulated since
// EnableProfile, or nil when profiling is off or unsupported.
func (s *Simulator) Profile() *wave.EngineProfile {
	if p, ok := s.b.(profiler); ok {
		return p.profileSnapshot()
	}
	return nil
}
