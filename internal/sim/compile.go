package sim

// Compile lowers an elaborated design into a Program: a flat, slot-indexed
// instruction form the engine (engine.go) interprets with zero steady-state
// allocations. The lowering mirrors the tree-walker's evaluation rules
// exactly — every width computation, truncation, index normalization, and
// out-of-range behaviour below is a static transcription of the
// corresponding dynamic path in walker.go, and the differential corpus
// tests hold the two to bit-identical outputs.
//
// Pipeline:
//
//  1. Slot interning — every module-level signal gets a dense register
//     index; parameters and literals become preloaded constant registers;
//     block locals become per-process temporaries.
//  2. Lowering — continuous assigns and always bodies compile to a
//     register machine (binary ops at statically-computed widths, jumps
//     for if/case/for control flow, store ops with change detection,
//     non-blocking assigns as queue ops whose apply fragments re-evaluate
//     their target indices at commit time, as the walker does).
//  3. Scheduling — a dependency graph over combinational processes
//     (writer → reader on slots; partial-bit writers also read their
//     target) is condensed with Tarjan's SCC algorithm. Acyclic processes
//     run exactly once per Settle in topological order; strongly-connected
//     groups — genuine feedback, or slots with multiple drivers — iterate
//     to a bounded fixpoint in original program order, preserving the
//     walker's oscillation detection.
//
// Constructs with dynamically-sized results (non-constant replication
// counts, mismatched ternary branch widths, non-constant part-select
// bounds) cannot be assigned a static register width; Compile rejects them
// with an error and NewWith(EngineAuto) falls back to the walker.

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/sema"
	"repro/internal/verilog"
)

// opcode enumerates the engine's instruction set.
type opcode uint8

// Instruction opcodes. Naming: *C suffixed forms take a compile-time
// immediate where the base form reads a register.
const (
	opCopy    opcode = iota // dst = a resized to dst's width
	opZeroReg               // dst = 0
	opAnd                   // dst = a & b
	opOr
	opXor
	opXnor
	opNot // dst = ~a
	opNeg // dst = -a
	opAdd
	opSub
	opMul
	opDiv // low-64 quotient at a's width, 0 on division by zero
	opMod
	opShl // dst = a << int(b.Uint64()) at a's width
	opShr
	opEq // 1-bit comparison results
	opNe
	opLt
	opGt
	opLe
	opGe
	opLAnd // logical: both operands already evaluated (no short-circuit)
	opLOr
	opLNot
	opRedAnd
	opRedOr
	opRedXor
	opRedNand
	opRedNor
	opRedXnor
	opPopCnt // dst(32) = $countones(a)
	opClog2  // dst(32) = $clog2(a)
	opConcat // dst = {a, b}, a in the high bits
	opRepeatC
	opBitGetC   // dst(1) = a.Bit(imm); imm pre-normalized
	opBitGet    // dst(1) = a.Bit(norm(int32(b))); mode/imm carry normalization
	opSliceC    // dst = (a >> imm) resized to dst width; imm >= 0
	opSliceDyn  // dst = (a >> norm(int32(b))) or zero when the offset is negative
	opStore     // target dst = a resized; slot stores set the changed flag
	opStoreBitC // target dst bit imm = a.Bit(0); imm pre-normalized and in range
	opStoreBit  // dynamic-index bit store; out-of-range writes dropped
	opStoreSliceC
	opStoreSliceDyn
	opNbaQueue // enqueue value a for apply fragment imm at commit
	opNbaVal   // dst = pending NBA value resized to dst width
	opJump     // pc = imm
	opJumpIfZ  // if a == 0: pc = imm
	opJumpIfNZ
	opLoopInit  // trips[imm] = 0
	opLoopGuard // error when trips[imm] reaches loopLimit, else trips[imm]++
)

// normalization modes carried in instr.mode for dynamic index/slice ops.
const (
	normNone  uint8 = 0 // locals, params, non-ident bases: index used as-is
	normDesc  uint8 = 1 // [msb:lsb] with msb >= lsb: bit = idx - lsb
	normAsc   uint8 = 2 // ascending [0:7]: bit = lsb - idx
	normMask  uint8 = 3
	minusFlag uint8 = 4 // indexed part-select [base -: w]: lo = norm(base)-w+1
)

// instr is one register-machine instruction.
type instr struct {
	op   opcode
	dst  int32
	a, b int32
	imm  int32 // shift count / bit index / jump target / fragment id
	aux  int32 // secondary immediate: store-slice width, norm LSB
	mode uint8
}

type slotMeta struct {
	name  string
	width int
}

type constEntry struct {
	reg int32
	val bitvec.Vec
}

type loopMeta struct{ line int }

// procMeta attributes one compiled process (a nodes or seq entry) back to
// the design for profiling: kind is "assign", "comb", or "seq"; line is
// the source line the process starts on. Processes index nodes first,
// then seq blocks — the same order the engine's activation counters use.
type procMeta struct {
	kind string
	line int
}

// opNames maps opcodes to the short names profiling histograms report.
// Indexed by opcode, so the array length is also the opcode count.
var opNames = [...]string{
	opCopy: "copy", opZeroReg: "zero", opAnd: "and", opOr: "or",
	opXor: "xor", opXnor: "xnor", opNot: "not", opNeg: "neg",
	opAdd: "add", opSub: "sub", opMul: "mul", opDiv: "div", opMod: "mod",
	opShl: "shl", opShr: "shr", opEq: "eq", opNe: "ne", opLt: "lt",
	opGt: "gt", opLe: "le", opGe: "ge", opLAnd: "land", opLOr: "lor",
	opLNot: "lnot", opRedAnd: "redand", opRedOr: "redor",
	opRedXor: "redxor", opRedNand: "rednand", opRedNor: "rednor",
	opRedXnor: "redxnor", opPopCnt: "popcnt", opClog2: "clog2",
	opConcat: "concat", opRepeatC: "repeat", opBitGetC: "bitgetc",
	opBitGet: "bitget", opSliceC: "slicec", opSliceDyn: "slicedyn",
	opStore: "store", opStoreBitC: "storebitc", opStoreBit: "storebit",
	opStoreSliceC: "storeslicec", opStoreSliceDyn: "storeslicedyn",
	opNbaQueue: "nbaqueue", opNbaVal: "nbaval", opJump: "jump",
	opJumpIfZ: "jumpifz", opJumpIfNZ: "jumpifnz",
	opLoopInit: "loopinit", opLoopGuard: "loopguard",
}

type edgeKey struct {
	slot int32
	edge verilog.EventEdge
}

// schedItem is one step of the Settle schedule: a single acyclic process,
// or a strongly-connected group iterated to a bounded fixpoint.
type schedItem struct {
	nodes    []int32
	fixpoint bool
}

// Program is a compiled design: immutable, safe to share across
// goroutines, instantiated per run with NewFromProgram.
type Program struct {
	design   *sema.Design
	slots    []slotMeta
	slotOf   map[string]int32
	regWidth []int
	consts   []constEntry
	initCode []instr
	nodes    [][]instr // combinational processes, original program order
	// tracked lists, per node, the slots whose before/after comparison
	// drives fixpoint change detection. nil means incremental store
	// tracking (continuous assigns, where every write is a tracked
	// write). Comb always blocks get the walker's snapshot semantics:
	// only targets of AssignStmts in the body count — for-loop
	// init/step variables are excluded, and a transient write that
	// restores the old value is no change.
	tracked [][]int32
	sched   []schedItem
	seq     [][]instr // clocked always blocks, declaration order
	edges   map[edgeKey][]int32
	frags   [][]instr // NBA apply fragments
	loops   []loopMeta
	// procs attributes processes for profiling: one entry per nodes
	// element followed by one per seq element.
	procs []procMeta
}

// Design returns the elaborated design the program was compiled from.
func (p *Program) Design() *sema.Design { return p.design }

// Slots returns the number of interned signals (for tests and stats).
func (p *Program) Slots() int { return len(p.slots) }

// compileBail carries a compilation rejection up to Compile's recover.
type compileBail struct{ err error }

// Compile lowers the design. A non-nil error means the design uses a
// construct the compiler cannot express with static register widths; the
// walker remains available for those.
func Compile(design *sema.Design) (*Program, error) {
	if design == nil {
		return nil, fmt.Errorf("sim: nil design")
	}
	c := &compiler{
		design:   design,
		prog:     &Program{design: design, slotOf: map[string]int32{}, edges: map[edgeKey][]int32{}},
		constIdx: map[string]int32{},
	}
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if b, ok := r.(compileBail); ok {
					err = b.err
					return
				}
				panic(r)
			}
		}()
		c.run()
	}()
	if err != nil {
		return nil, err
	}
	return c.prog, nil
}

type compiler struct {
	design   *sema.Design
	prog     *Program
	constIdx map[string]int32
	code     []instr          // current emission buffer
	locals   map[string]int32 // flat per-process scope, as the walker's env
}

func (c *compiler) failf(format string, args ...any) {
	panic(compileBail{fmt.Errorf("sim: compile: "+format, args...)})
}

// ---------- registers ----------

func (c *compiler) newTemp(width int) int32 {
	if width < 0 {
		c.failf("negative register width %d", width)
	}
	r := int32(len(c.prog.regWidth))
	c.prog.regWidth = append(c.prog.regWidth, width)
	return r
}

func (c *compiler) regW(r int32) int { return c.prog.regWidth[r] }

// constReg interns a constant value as a preloaded read-only register.
func (c *compiler) constReg(v bitvec.Vec) int32 {
	key := v.Hex()
	if r, ok := c.constIdx[key]; ok {
		return r
	}
	r := c.newTemp(v.Width())
	c.constIdx[key] = r
	c.prog.consts = append(c.prog.consts, constEntry{reg: r, val: v})
	return r
}

func (c *compiler) emit(i instr) int {
	c.code = append(c.code, i)
	return len(c.code) - 1
}

// take finishes the current emission buffer.
func (c *compiler) take() []instr {
	out := c.code
	c.code = nil
	return out
}

// sigNorm returns the index-normalization parameters for a named base, the
// static form of the walker's normalizeIndex.
func (c *compiler) sigNorm(name string) (mode uint8, lsb int32) {
	sig := c.design.Signal(name)
	if sig == nil {
		return normNone, 0
	}
	if sig.MSB >= sig.LSB {
		return normDesc, int32(sig.LSB)
	}
	return normAsc, int32(sig.LSB)
}

// normConst applies sigNorm to a compile-time index.
func normConst(mode uint8, lsb int32, idx int) int {
	switch mode {
	case normDesc:
		return idx - int(lsb)
	case normAsc:
		return int(lsb) - idx
	}
	return idx
}

// ---------- top level ----------

func (c *compiler) run() {
	p := c.prog
	// Slot interning: deterministic order (sorted names).
	names := make([]string, 0, len(c.design.Signals))
	for name := range c.design.Signals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sig := c.design.Signals[name]
		r := c.newTemp(sig.Width())
		p.slots = append(p.slots, slotMeta{name: name, width: sig.Width()})
		p.slotOf[name] = r
	}

	// Variable declaration initializers (reg r = 0), in declaration
	// order, run once at reset. Net initializers (wire x = expr) are
	// continuous-assign shorthand and are lowered into the settle
	// schedule below instead — the walker mirrors both rules, so the
	// backends agree on init-to-init references too.
	c.locals = map[string]int32{}
	for _, item := range c.design.Module.Items {
		decl, ok := item.(*verilog.Decl)
		if !ok {
			continue
		}
		for _, dn := range decl.Names {
			if dn.Init == nil {
				continue
			}
			sig := c.design.Signal(dn.Name)
			if sig == nil || sig.Init != dn.Init {
				continue // duplicate declaration lost the merge
			}
			if !sig.Kind.IsVariable() {
				continue // net init: continuous assign, not reset code
			}
			v := c.compileExpr(dn.Init)
			c.emit(instr{op: opStore, dst: p.slotOf[dn.Name], a: v})
		}
	}
	p.initCode = c.take()

	// Collect processes in the walker's order: assigns as encountered,
	// then combinational and clocked always blocks.
	var assigns []*verilog.AssignItem
	var comb, seqB []*verilog.AlwaysBlock
	for _, item := range c.design.Module.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			assigns = append(assigns, it)
		case *verilog.AlwaysBlock:
			if it.IsClocked() {
				seqB = append(seqB, it)
			} else {
				comb = append(comb, it)
			}
		case *verilog.Decl:
			// Net initializers join the settle schedule at their
			// declaration position (same rule as the walker).
			for _, dn := range it.Names {
				sig := c.design.Signal(dn.Name)
				if dn.Init == nil || sig == nil || sig.Init != dn.Init || sig.Kind.IsVariable() {
					continue
				}
				assigns = append(assigns, &verilog.AssignItem{
					LHS:       &verilog.Ident{Name: dn.Name, NamePos: dn.NamePos},
					RHS:       dn.Init,
					AssignPos: dn.NamePos,
				})
			}
		}
	}

	for _, a := range assigns {
		c.locals = map[string]int32{}
		v := c.compileAssignRHS(a.RHS, c.lvalueWidth(a.LHS))
		c.compileAssignTo(a.LHS, v)
		p.nodes = append(p.nodes, c.take())
		p.tracked = append(p.tracked, nil)
		p.procs = append(p.procs, procMeta{kind: "assign", line: a.Pos().Line})
	}
	for _, blk := range comb {
		c.locals = map[string]int32{}
		c.compileStmt(blk.Body)
		p.nodes = append(p.nodes, c.take())
		p.tracked = append(p.tracked, c.snapshotSlots(blk))
		p.procs = append(p.procs, procMeta{kind: "comb", line: blk.Pos().Line})
	}
	for bi, blk := range seqB {
		c.locals = map[string]int32{}
		c.compileStmt(blk.Body)
		p.seq = append(p.seq, c.take())
		p.procs = append(p.procs, procMeta{kind: "seq", line: blk.Pos().Line})
		for _, ev := range blk.Events {
			id, ok := ev.Signal.(*verilog.Ident)
			if !ok || ev.Edge == verilog.EdgeNone {
				continue
			}
			slot, ok := p.slotOf[id.Name]
			if !ok {
				continue // walker ignores events on unknown names too
			}
			k := edgeKey{slot: slot, edge: ev.Edge}
			// one firing per block per edge, as the walker's break gives
			if l := p.edges[k]; len(l) == 0 || l[len(l)-1] != int32(bi) {
				p.edges[k] = append(p.edges[k], int32(bi))
			}
		}
	}

	c.schedule()
}

// declLocal mirrors the walker's flat, unscoped env map: redeclaring a
// name (a nested for loop reusing the same loop variable, a block
// redeclaring an integer) binds the SAME storage, zeroed at the
// declaration site — the walker has no shadowing, so neither does the
// compiled form. All walker locals are 32-bit.
func (c *compiler) declLocal(name string) int32 {
	if r, ok := c.locals[name]; ok {
		return r
	}
	r := c.newTemp(32)
	c.locals[name] = r
	return r
}

// snapshotSlots computes the walker's snapshotTargets set for a comb
// always block: the module signals assigned by AssignStmts reachable in
// the body (for-loop init/step assignments are not statements of the
// body and do not count).
func (c *compiler) snapshotSlots(blk *verilog.AlwaysBlock) []int32 {
	seen := map[int32]bool{}
	out := []int32{} // non-nil: empty means "no tracked targets", not "incremental"
	verilog.WalkStmts(blk.Body, func(st verilog.Stmt) {
		a, ok := st.(*verilog.AssignStmt)
		if !ok {
			return
		}
		for _, name := range lhsNames(a.LHS) {
			if slot, ok := c.prog.slotOf[name]; ok && !seen[slot] {
				seen[slot] = true
				out = append(out, slot)
			}
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------- dependency scheduling ----------

// instrReads reports which of an instruction's a/b fields are register
// reads — the unused fields are zero-initialized and must not be
// mistaken for references to slot 0.
func instrReads(op opcode) (ra, rb bool) {
	switch op {
	case opZeroReg, opJump, opLoopInit, opLoopGuard, opNbaVal:
		return false, false
	case opCopy, opNot, opNeg, opLNot,
		opRedAnd, opRedOr, opRedXor, opRedNand, opRedNor, opRedXnor,
		opPopCnt, opClog2, opRepeatC, opBitGetC, opSliceC,
		opStore, opStoreBitC, opStoreSliceC, opNbaQueue,
		opJumpIfZ, opJumpIfNZ:
		return true, false
	default: // binary ops, comparisons, dynamic index/slice/store forms
		return true, true
	}
}

// nodeDeps extracts the slots a process reads and writes by scanning its
// instructions (and any NBA fragments it queues). Partial-bit writers
// count their target as a read: the unwritten bits flow from the previous
// value, which is real feedback the fixpoint handling must see.
func (c *compiler) nodeDeps(code []instr) (reads, writes map[int32]bool) {
	nSlots := int32(len(c.prog.slots))
	reads, writes = map[int32]bool{}, map[int32]bool{}
	var scan func(code []instr)
	scan = func(code []instr) {
		for _, in := range code {
			ra, rb := instrReads(in.op)
			if ra && in.a < nSlots {
				reads[in.a] = true
			}
			if rb && in.b < nSlots {
				reads[in.b] = true
			}
			switch in.op {
			case opStore:
				if in.dst < nSlots {
					writes[in.dst] = true
				}
			case opStoreBitC, opStoreBit, opStoreSliceC, opStoreSliceDyn:
				if in.dst < nSlots {
					writes[in.dst] = true
					reads[in.dst] = true
				}
			case opNbaQueue:
				scan(c.prog.frags[in.imm])
			}
		}
	}
	scan(code)
	return reads, writes
}

// schedule builds the Settle schedule: Tarjan SCCs over the writer→reader
// graph, emitted in topological order.
func (c *compiler) schedule() {
	p := c.prog
	n := len(p.nodes)
	if n == 0 {
		return
	}
	readsOf := make([]map[int32]bool, n)
	selfFeed := make([]bool, n)
	writersOf := map[int32][]int{}
	for i, code := range p.nodes {
		reads, writes := c.nodeDeps(code)
		readsOf[i] = reads
		for s := range writes {
			writersOf[s] = append(writersOf[s], i)
			if reads[s] {
				selfFeed[i] = true
			}
		}
	}
	// adjacency: writer → reader; multiple writers of one slot are tied
	// into a cycle so they land in one fixpoint group and replicate the
	// walker's last-writer-per-round (and oscillation) behaviour.
	adj := make([][]int, n)
	addEdge := func(from, to int) { adj[from] = append(adj[from], to) }
	slotList := make([]int32, 0, len(writersOf))
	for s := range writersOf {
		slotList = append(slotList, s)
	}
	sort.Slice(slotList, func(i, j int) bool { return slotList[i] < slotList[j] })
	for _, s := range slotList {
		ws := writersOf[s]
		for i := 0; i < n; i++ {
			if readsOf[i][s] {
				for _, w := range ws {
					if w != i {
						addEdge(w, i)
					}
				}
			}
		}
		if len(ws) > 1 {
			for _, a := range ws {
				for _, b := range ws {
					if a != b {
						addEdge(a, b)
					}
				}
			}
		}
	}

	sccs := Tarjan(adj)
	// Tarjan pops callees first: reverse for writers-before-readers order.
	for i := len(sccs) - 1; i >= 0; i-- {
		scc := sccs[i]
		sort.Ints(scc) // walker round order within a group
		item := schedItem{fixpoint: len(scc) > 1}
		for _, ni := range scc {
			if selfFeed[ni] {
				item.fixpoint = true
			}
			item.nodes = append(item.nodes, int32(ni))
		}
		p.sched = append(p.sched, item)
	}
}

// Tarjan returns the strongly connected components of the adjacency
// list adj (node i's successors are adj[i]), in reverse topological
// order: a component is emitted only after every component it reaches.
// The engine scheduler uses it for writers-before-readers process
// ordering; the semantic lint engine (internal/analyze) reuses it for
// combinational-loop detection.
func Tarjan(adj [][]int) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0
	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] < 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strong(v)
		}
	}
	return sccs
}

// ---------- statements ----------

func (c *compiler) compileStmt(s verilog.Stmt) {
	switch st := s.(type) {
	case nil, *verilog.NullStmt:
	case *verilog.BlockStmt:
		for _, d := range st.Decls {
			for _, dn := range d.Names {
				// Block locals are fixed 32-bit in the walker regardless
				// of any declared range; zeroed at every block entry.
				c.emit(instr{op: opZeroReg, dst: c.declLocal(dn.Name)})
			}
		}
		for _, sub := range st.Stmts {
			c.compileStmt(sub)
		}
	case *verilog.AssignStmt:
		v := c.compileAssignRHS(st.RHS, c.lvalueWidth(st.LHS))
		if st.Blocking {
			c.compileAssignTo(st.LHS, v)
		} else {
			frag := c.compileNbaFragment(st.LHS, c.regW(v))
			c.emit(instr{op: opNbaQueue, a: v, imm: frag})
		}
	case *verilog.IfStmt:
		cond := c.compileExpr(st.Cond)
		jz := c.emit(instr{op: opJumpIfZ, a: cond})
		c.compileStmt(st.Then)
		if st.Else == nil {
			c.code[jz].imm = int32(len(c.code))
			return
		}
		jmp := c.emit(instr{op: opJump})
		c.code[jz].imm = int32(len(c.code))
		c.compileStmt(st.Else)
		c.code[jmp].imm = int32(len(c.code))
	case *verilog.CaseStmt:
		c.compileCase(st)
	case *verilog.ForStmt:
		if st.LoopVar != "" {
			c.emit(instr{op: opZeroReg, dst: c.declLocal(st.LoopVar)})
		}
		if st.Init != nil {
			c.compileStmt(st.Init)
		}
		loopID := int32(len(c.prog.loops))
		c.prog.loops = append(c.prog.loops, loopMeta{line: st.Pos().Line})
		c.emit(instr{op: opLoopInit, imm: loopID})
		top := int32(len(c.code))
		c.emit(instr{op: opLoopGuard, imm: loopID})
		if st.Cond == nil {
			c.failf("for loop without condition at line %d", st.Pos().Line)
		}
		cond := c.compileExpr(st.Cond)
		jz := c.emit(instr{op: opJumpIfZ, a: cond})
		c.compileStmt(st.Body)
		if st.Step != nil {
			c.compileStmt(st.Step)
		}
		c.emit(instr{op: opJump, imm: top})
		c.code[jz].imm = int32(len(c.code))
	default:
		c.failf("unsupported statement at line %d", s.Pos().Line)
	}
}

// compileCase lowers case/casez/casex: labels tested in declaration
// order, first match jumps to its body, the (last) default runs when
// nothing matches.
func (c *compiler) compileCase(st *verilog.CaseStmt) {
	subj := c.compileExpr(st.Subject)
	subjW := c.regW(subj)
	type arm struct {
		item  verilog.CaseItem
		jumps []int // test-site indices to patch to the arm's body
	}
	var arms []arm
	var deflt verilog.Stmt
	hasDefault := false
	for _, item := range st.Items {
		if item.Labels == nil {
			deflt = item.Body
			hasDefault = true
			continue
		}
		a := arm{item: item}
		for _, l := range item.Labels {
			t := c.compileCaseTest(st.Kind, subj, subjW, l)
			a.jumps = append(a.jumps, c.emit(instr{op: opJumpIfNZ, a: t}))
		}
		arms = append(arms, a)
	}
	var endJumps []int
	if hasDefault {
		c.compileStmt(deflt)
	}
	endJumps = append(endJumps, c.emit(instr{op: opJump}))
	for _, a := range arms {
		body := int32(len(c.code))
		for _, j := range a.jumps {
			c.code[j].imm = body
		}
		c.compileStmt(a.item.Body)
		endJumps = append(endJumps, c.emit(instr{op: opJump}))
	}
	end := int32(len(c.code))
	for _, j := range endJumps {
		c.code[j].imm = end
	}
}

// compileCaseTest emits a 1-bit register holding "label matches subject".
func (c *compiler) compileCaseTest(kind verilog.CaseKind, subj int32, subjW int, label verilog.Expr) int32 {
	if kind != verilog.CasePlain {
		if num, ok := label.(*verilog.Number); ok {
			val, care, err := num.WildcardMask(kind == verilog.CaseX)
			if err != nil {
				c.failf("bad case label at line %d: %v", label.Pos().Line, err)
			}
			careR := care.Resize(subjW)
			valR := val.Resize(subjW).And(careR)
			masked := c.newTemp(subjW)
			c.emit(instr{op: opAnd, dst: masked, a: subj, b: c.constReg(careR)})
			dst := c.newTemp(1)
			c.emit(instr{op: opEq, dst: dst, a: masked, b: c.constReg(valR)})
			return dst
		}
	}
	lv := c.compileExpr(label)
	if c.regW(lv) > subjW {
		// the walker truncates the label to the subject's width before
		// comparing; Eq zero-extends, so only truncation needs a copy
		t := c.newTemp(subjW)
		c.emit(instr{op: opCopy, dst: t, a: lv})
		lv = t
	}
	dst := c.newTemp(1)
	c.emit(instr{op: opEq, dst: dst, a: lv, b: subj})
	return dst
}

// ---------- l-values ----------

// lvalueWidth mirrors the walker's assignment-context width rule.
func (c *compiler) lvalueWidth(lhs verilog.Expr) int {
	switch x := lhs.(type) {
	case *verilog.Ident:
		if sig := c.design.Signal(x.Name); sig != nil {
			return sig.Width()
		}
		if r, ok := c.locals[x.Name]; ok {
			return c.regW(r)
		}
	case *verilog.Index:
		return 1
	case *verilog.Slice:
		if id, ok := x.X.(*verilog.Ident); ok {
			if _, w, ok := c.staticSliceBounds(id.Name, x); ok {
				return w
			}
			// An indexed part-select's width is static even when its
			// base is dynamic — the walker's runtime sliceBounds returns
			// the same w for any base value, and the RHS context width
			// must keep the carry: q[sel +: 8] = a + b.
			if x.Kind == verilog.SelectPlus || x.Kind == verilog.SelectMinus {
				if wv, ok := c.constEval(x.Lo); ok {
					if w := constInt(wv); w > 0 {
						return w
					}
				}
			}
		}
	case *verilog.Concat:
		total := 0
		for _, el := range x.Elems {
			total += c.lvalueWidth(el)
		}
		return total
	}
	return 1
}

// targetReg resolves an assignment target name the way the walker's write
// does: local first, then module signal. The bool reports a slot (change
// detection applies) versus a local.
func (c *compiler) targetReg(name string, pos int) int32 {
	if r, ok := c.locals[name]; ok {
		return r
	}
	if r, ok := c.prog.slotOf[name]; ok {
		return r
	}
	// The walker would adopt an undeclared target as a fresh local and
	// report "changed" forever; such designs never pass sema, so reject.
	c.failf("assignment to undeclared %q at line %d", name, pos)
	return 0
}

// compileAssignTo emits the stores for a blocking assignment of src into
// lhs, mirroring the walker's assignTo.
func (c *compiler) compileAssignTo(lhs verilog.Expr, src int32) {
	switch x := lhs.(type) {
	case *verilog.Ident:
		tr := c.targetReg(x.Name, lhs.Pos().Line)
		c.emit(instr{op: opStore, dst: tr, a: src})
	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return // walker drops writes through non-ident bases
		}
		tr := c.targetReg(id.Name, lhs.Pos().Line)
		mode, lsb := c.sigNorm(id.Name)
		if iv, ok := c.constEval(x.Idx); ok {
			idx := normConst(mode, lsb, constInt(iv))
			if idx < 0 || idx >= c.regW(tr) {
				return // static out-of-range write: dropped, like X
			}
			c.emit(instr{op: opStoreBitC, dst: tr, a: src, imm: int32(idx)})
			return
		}
		idxR := c.compileExpr(x.Idx)
		c.emit(instr{op: opStoreBit, dst: tr, a: src, b: idxR, imm: lsb, mode: mode})
	case *verilog.Slice:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return
		}
		tr := c.targetReg(id.Name, lhs.Pos().Line)
		c.compileSliceStore(id.Name, tr, x, src)
	case *verilog.Concat:
		// {a, b} = v assigns the low bits to the rightmost element.
		offset := 0
		for i := len(x.Elems) - 1; i >= 0; i-- {
			el := x.Elems[i]
			w := c.lvalueWidth(el)
			part := c.newTemp(w)
			c.emit(instr{op: opSliceC, dst: part, a: src, imm: int32(offset)})
			c.compileAssignTo(el, part)
			offset += w
		}
	}
}

// compileSliceStore emits a part-select store. Only indexed selects may
// have a dynamic base; constant selects must fold (sema guarantees it for
// designs that reach simulation).
//
// When the RHS register IS the store target (q[4:1] = q reaches here with
// src == tr, because compileExprCtx returns wide-enough idents without a
// copy), the multi-bit store would read source bits it already overwrote.
// The walker snapshots the RHS before writing, so the compiled form copies
// the aliased source into a temporary first. Single-bit stores read their
// one source bit before writing and need no copy.
func (c *compiler) compileSliceStore(name string, tr int32, sl *verilog.Slice, src int32) {
	if src == tr {
		t := c.newTemp(c.regW(src))
		c.emit(instr{op: opCopy, dst: t, a: src})
		src = t
	}
	mode, lsb := c.sigNorm(name)
	switch sl.Kind {
	case verilog.SelectConst:
		hi, okH := c.constEval(sl.Hi)
		lo, okL := c.constEval(sl.Lo)
		if !okH || !okL {
			c.failf("non-constant part-select bounds at line %d", sl.Pos().Line)
		}
		hiN := normConst(mode, lsb, constInt(hi))
		loN := normConst(mode, lsb, constInt(lo))
		if hiN < loN {
			hiN, loN = loN, hiN
		}
		c.emit(instr{op: opStoreSliceC, dst: tr, a: src, imm: int32(loN), aux: int32(hiN - loN + 1)})
	case verilog.SelectPlus, verilog.SelectMinus:
		wv, ok := c.constEval(sl.Lo)
		if !ok {
			c.failf("non-constant part-select width at line %d", sl.Pos().Line)
		}
		w := constInt(wv)
		if w <= 0 {
			return // walker: unresolvable bounds, write dropped
		}
		m := mode
		if sl.Kind == verilog.SelectMinus {
			m |= minusFlag
		}
		if bv, ok := c.constEval(sl.Hi); ok {
			lo := normConst(mode, lsb, constInt(bv))
			if sl.Kind == verilog.SelectMinus {
				lo = lo - w + 1
			}
			c.emit(instr{op: opStoreSliceC, dst: tr, a: src, imm: int32(lo), aux: int32(w)})
			return
		}
		base := c.compileExpr(sl.Hi)
		c.emit(instr{op: opStoreSliceDyn, dst: tr, a: src, b: base, imm: lsb, aux: int32(w), mode: m})
	}
}

// compileNbaFragment builds the commit-time apply code for a non-blocking
// assignment. The fragment re-evaluates target indices at commit, exactly
// as the walker's commitNBA does (its queue stores the target expression,
// not resolved offsets), so loop-variable indices observe their final
// values.
func (c *compiler) compileNbaFragment(lhs verilog.Expr, valWidth int) int32 {
	saved := c.code
	c.code = nil
	val := c.newTemp(valWidth)
	c.emit(instr{op: opNbaVal, dst: val})
	c.compileAssignTo(lhs, val)
	frag := c.take()
	c.code = saved
	id := int32(len(c.prog.frags))
	c.prog.frags = append(c.prog.frags, frag)
	return id
}

// ---------- expressions ----------

// constInt converts a folded constant to the walker's int interpretation
// (wrap to signed 32-bit).
func constInt(v bitvec.Vec) int {
	return int(int32(uint32(v.Uint64())))
}

// constEval folds expressions whose leaves are literals and parameters,
// mirroring the walker's runtime evaluation of the same nodes. The false
// return means "not a compile-time constant", not an error; malformed
// literals the walker would fault on at runtime abort compilation so the
// walker can reproduce the fault.
func (c *compiler) constEval(x verilog.Expr) (bitvec.Vec, bool) {
	switch n := x.(type) {
	case *verilog.Number:
		v, err := n.Value()
		if err != nil {
			c.failf("bad literal at line %d: %v", n.Pos().Line, err)
		}
		return v, true
	case *verilog.Ident:
		if _, shadowed := c.locals[n.Name]; shadowed {
			return bitvec.Vec{}, false
		}
		if v, ok := c.design.Params[n.Name]; ok {
			return v, true
		}
		return bitvec.Vec{}, false
	case *verilog.Unary:
		v, ok := c.constEval(n.X)
		if !ok {
			return bitvec.Vec{}, false
		}
		out, err := evalUnary(n.Op, v)
		if err != nil {
			return bitvec.Vec{}, false
		}
		return out, true
	case *verilog.Binary:
		a, okA := c.constEval(n.X)
		b, okB := c.constEval(n.Y)
		if !okA || !okB {
			return bitvec.Vec{}, false
		}
		out, err := evalBinary(n.Op, a, b)
		if err != nil {
			return bitvec.Vec{}, false
		}
		return out, true
	case *verilog.Ternary:
		cv, ok := c.constEval(n.Cond)
		if !ok {
			return bitvec.Vec{}, false
		}
		if cv.Bool() {
			return c.constEval(n.Then)
		}
		return c.constEval(n.Else)
	}
	return bitvec.Vec{}, false
}

// resolveRead mirrors the walker's env.read order: locals, parameters,
// module signals.
func (c *compiler) resolveRead(n *verilog.Ident) int32 {
	if r, ok := c.locals[n.Name]; ok {
		return r
	}
	if v, ok := c.design.Params[n.Name]; ok {
		return c.constReg(v)
	}
	if r, ok := c.prog.slotOf[n.Name]; ok {
		return r
	}
	c.failf("read of unknown signal %q at line %d", n.Name, n.Pos().Line)
	return 0
}

// compileExprCtx compiles x in an assignment context of the given width
// (the walker's evalCtx): operands of arithmetic and bitwise operators
// are extended to the assignment width before the operation.
func (c *compiler) compileExprCtx(x verilog.Expr, width int) int32 {
	switch n := x.(type) {
	case *verilog.Number:
		v, err := n.Value()
		if err != nil {
			c.failf("bad literal at line %d: %v", n.Pos().Line, err)
		}
		if v.Width() < width {
			v = v.Resize(width)
		}
		return c.constReg(v)
	case *verilog.Ident:
		r := c.resolveRead(n)
		if c.regW(r) < width {
			t := c.newTemp(width)
			c.emit(instr{op: opCopy, dst: t, a: r})
			return t
		}
		return r
	case *verilog.Unary:
		switch n.Op {
		case "~", "-", "+":
			return c.emitUnary(n.Op, c.compileExprCtx(n.X, width))
		}
		return c.compileExpr(x)
	case *verilog.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			a := c.compileExprCtx(n.X, width)
			b := c.compileExprCtx(n.Y, width)
			return c.emitBinary(n.Op, a, b)
		case "<<", ">>", "<<<", ">>>":
			a := c.compileExprCtx(n.X, width)
			b := c.compileExpr(n.Y) // shift amount is self-determined
			return c.emitBinary(n.Op, a, b)
		}
		return c.compileExpr(x)
	case *verilog.Ternary:
		return c.compileTernary(n, width)
	default:
		return c.compileExpr(x)
	}
}

// compileAssignRHS compiles the right-hand side of an assignment in its
// l-value context. It differs from compileExprCtx in one way: a ternary
// here feeds a store that resizes the result, so branches of different
// widths may be safely unified by zero-extension to the wider width (the
// walker's per-branch result, resized by the store, is bit-identical to
// the widened value resized by the store). Nested ternaries inside other
// operators keep the strict width check, where widening would be
// observable through width-sensitive operators.
func (c *compiler) compileAssignRHS(x verilog.Expr, width int) int32 {
	if n, ok := x.(*verilog.Ternary); ok {
		return c.compileTernaryWiden(n, width)
	}
	return c.compileExprCtx(x, width)
}

func (c *compiler) compileTernaryWiden(n *verilog.Ternary, ctxWidth int) int32 {
	return c.lowerTernary(n, ctxWidth, true)
}

// compileTernary lowers cond ? a : b with both branches writing one
// destination register. ctxWidth < 0 means self-determined. The walker's
// result width is whichever branch was taken; outside assignment
// contexts a static register cannot express branches of different
// widths, so those designs fall back.
func (c *compiler) compileTernary(n *verilog.Ternary, ctxWidth int) int32 {
	return c.lowerTernary(n, ctxWidth, false)
}

func (c *compiler) lowerTernary(n *verilog.Ternary, ctxWidth int, widen bool) int32 {
	branch := func(x verilog.Expr) int32 {
		if widen {
			if t, ok := x.(*verilog.Ternary); ok {
				// a chained ternary in branch position is consumed by
				// the same resizing store, so widening stays safe
				return c.compileTernaryWiden(t, ctxWidth)
			}
		}
		if ctxWidth >= 0 {
			return c.compileExprCtx(x, ctxWidth)
		}
		return c.compileExpr(x)
	}
	cond := c.compileExpr(n.Cond)
	jz := c.emit(instr{op: opJumpIfZ, a: cond})
	rt := branch(n.Then)
	dst := c.newTemp(c.regW(rt))
	c.emit(instr{op: opCopy, dst: dst, a: rt})
	jmp := c.emit(instr{op: opJump})
	c.code[jz].imm = int32(len(c.code))
	re := branch(n.Else)
	if c.regW(re) != c.regW(dst) {
		if !widen {
			c.failf("ternary branches have different widths (%d vs %d) at line %d — result width is value-dependent",
				c.regW(dst), c.regW(re), n.Pos().Line)
		}
		// dst is fresh and unread: retroactively widen it so both copies
		// zero-extend into the common width.
		if c.regW(re) > c.regW(dst) {
			c.prog.regWidth[dst] = c.regW(re)
		}
	}
	c.emit(instr{op: opCopy, dst: dst, a: re})
	c.code[jmp].imm = int32(len(c.code))
	return dst
}

// compileExpr compiles x self-determined (the walker's eval).
func (c *compiler) compileExpr(x verilog.Expr) int32 {
	switch n := x.(type) {
	case *verilog.Number:
		v, err := n.Value()
		if err != nil {
			c.failf("bad literal at line %d: %v", n.Pos().Line, err)
		}
		return c.constReg(v)
	case *verilog.Ident:
		return c.resolveRead(n)
	case *verilog.Unary:
		return c.emitUnary(n.Op, c.compileExpr(n.X))
	case *verilog.Binary:
		a := c.compileExpr(n.X)
		b := c.compileExpr(n.Y)
		return c.emitBinary(n.Op, a, b)
	case *verilog.Ternary:
		return c.compileTernary(n, -1)
	case *verilog.Concat:
		var cur int32 = -1
		for _, el := range n.Elems {
			v := c.compileExpr(el)
			if cur < 0 {
				cur = v
				continue
			}
			t := c.newTemp(c.regW(cur) + c.regW(v))
			c.emit(instr{op: opConcat, dst: t, a: cur, b: v})
			cur = t
		}
		if cur < 0 {
			return c.constReg(bitvec.New(0))
		}
		return cur
	case *verilog.Repl:
		cv, ok := c.constEval(n.Count)
		if !ok {
			c.failf("non-constant replication count at line %d", n.Pos().Line)
		}
		cnt := int(cv.Uint64())
		if cnt < 0 || cnt > 4096 {
			c.failf("replication count %d out of bounds at line %d", cnt, n.Pos().Line)
		}
		v := c.compileExpr(n.Value)
		dst := c.newTemp(cnt * c.regW(v))
		c.emit(instr{op: opRepeatC, dst: dst, a: v, imm: int32(cnt)})
		return dst
	case *verilog.Index:
		base := c.compileExpr(n.X)
		var mode uint8
		var lsb int32
		if id, ok := n.X.(*verilog.Ident); ok {
			mode, lsb = c.sigNorm(id.Name)
		}
		if iv, ok := c.constEval(n.Idx); ok {
			idx := normConst(mode, lsb, constInt(iv))
			if idx < 0 || idx >= c.regW(base) {
				return c.constReg(bitvec.FromUint64(1, 0)) // out-of-range read: 0
			}
			dst := c.newTemp(1)
			c.emit(instr{op: opBitGetC, dst: dst, a: base, imm: int32(idx)})
			return dst
		}
		idxR := c.compileExpr(n.Idx)
		dst := c.newTemp(1)
		c.emit(instr{op: opBitGet, dst: dst, a: base, b: idxR, imm: lsb, mode: mode})
		return dst
	case *verilog.Slice:
		return c.compileSliceRead(n)
	case *verilog.Call:
		return c.compileCall(n)
	}
	c.failf("unsupported expression at line %d", x.Pos().Line)
	return 0
}

// staticSliceBounds resolves a part-select to (lo, width) when every
// bound folds, mirroring the walker's sliceBounds.
func (c *compiler) staticSliceBounds(name string, sl *verilog.Slice) (lo, width int, ok bool) {
	mode, lsb := c.sigNorm(name)
	switch sl.Kind {
	case verilog.SelectConst:
		hv, okH := c.constEval(sl.Hi)
		lv, okL := c.constEval(sl.Lo)
		if !okH || !okL {
			return 0, 0, false
		}
		hiN := normConst(mode, lsb, constInt(hv))
		loN := normConst(mode, lsb, constInt(lv))
		if hiN < loN {
			hiN, loN = loN, hiN
		}
		return loN, hiN - loN + 1, true
	case verilog.SelectPlus, verilog.SelectMinus:
		wv, okW := c.constEval(sl.Lo)
		if !okW {
			return 0, 0, false
		}
		w := constInt(wv)
		if w <= 0 {
			return 0, 0, false
		}
		bv, okB := c.constEval(sl.Hi)
		if !okB {
			return 0, 0, false
		}
		l := normConst(mode, lsb, constInt(bv))
		if sl.Kind == verilog.SelectMinus {
			l = l - w + 1
		}
		return l, w, true
	}
	return 0, 0, false
}

func (c *compiler) compileSliceRead(n *verilog.Slice) int32 {
	base := c.compileExpr(n.X)
	name := ""
	if id, ok := n.X.(*verilog.Ident); ok {
		name = id.Name
	}
	mode, lsb := c.sigNorm(name)
	if lo, w, ok := c.staticSliceBounds(name, n); ok {
		if lo < 0 {
			return c.constReg(bitvec.New(w))
		}
		dst := c.newTemp(w)
		c.emit(instr{op: opSliceC, dst: dst, a: base, imm: int32(lo)})
		return dst
	}
	// dynamic base: width must still be static
	if n.Kind == verilog.SelectConst {
		c.failf("non-constant part-select bounds at line %d", n.Pos().Line)
	}
	wv, ok := c.constEval(n.Lo)
	if !ok {
		c.failf("non-constant part-select width at line %d", n.Pos().Line)
	}
	w := constInt(wv)
	if w <= 0 {
		c.failf("unresolvable part-select at line %d", n.Pos().Line)
	}
	m := mode
	if n.Kind == verilog.SelectMinus {
		m |= minusFlag
	}
	baseR := c.compileExpr(n.Hi)
	dst := c.newTemp(w)
	c.emit(instr{op: opSliceDyn, dst: dst, a: base, b: baseR, imm: lsb, mode: m})
	return dst
}

func (c *compiler) compileCall(n *verilog.Call) int32 {
	switch n.Name {
	case "$signed", "$unsigned":
		if len(n.Args) == 1 {
			return c.compileExpr(n.Args[0])
		}
	case "$clog2":
		if len(n.Args) == 1 {
			v := c.compileExpr(n.Args[0])
			dst := c.newTemp(32)
			c.emit(instr{op: opClog2, dst: dst, a: v})
			return dst
		}
	case "$countones":
		if len(n.Args) == 1 {
			v := c.compileExpr(n.Args[0])
			dst := c.newTemp(32)
			c.emit(instr{op: opPopCnt, dst: dst, a: v})
			return dst
		}
	}
	c.failf("unsupported system function %s at line %d", n.Name, n.Pos().Line)
	return 0
}

// emitUnary mirrors evalUnary's result widths.
func (c *compiler) emitUnary(op string, a int32) int32 {
	w := c.regW(a)
	emit1 := func(o opcode, dw int) int32 {
		dst := c.newTemp(dw)
		c.emit(instr{op: o, dst: dst, a: a})
		return dst
	}
	switch op {
	case "~":
		return emit1(opNot, w)
	case "-":
		return emit1(opNeg, w)
	case "+":
		return a
	case "!":
		return emit1(opLNot, 1)
	case "&":
		return emit1(opRedAnd, 1)
	case "|":
		return emit1(opRedOr, 1)
	case "^":
		return emit1(opRedXor, 1)
	case "~&":
		return emit1(opRedNand, 1)
	case "~|":
		return emit1(opRedNor, 1)
	case "~^":
		return emit1(opRedXnor, 1)
	}
	c.failf("unsupported unary operator %q", op)
	return 0
}

// emitBinary mirrors evalBinary's result widths: arithmetic and bitwise
// ops at the wider operand width, division at the left operand's width,
// shifts at the left operand's width, comparisons at one bit.
func (c *compiler) emitBinary(op string, a, b int32) int32 {
	wa, wb := c.regW(a), c.regW(b)
	wmax := wa
	if wb > wmax {
		wmax = wb
	}
	emit2 := func(o opcode, dw int) int32 {
		dst := c.newTemp(dw)
		c.emit(instr{op: o, dst: dst, a: a, b: b})
		return dst
	}
	switch op {
	case "+":
		return emit2(opAdd, wmax)
	case "-":
		return emit2(opSub, wmax)
	case "*":
		return emit2(opMul, wmax)
	case "/":
		return emit2(opDiv, wa)
	case "%":
		return emit2(opMod, wa)
	case "&":
		return emit2(opAnd, wmax)
	case "|":
		return emit2(opOr, wmax)
	case "^":
		return emit2(opXor, wmax)
	case "~^", "^~":
		return emit2(opXnor, wmax)
	case "<<", "<<<":
		return emit2(opShl, wa)
	case ">>", ">>>":
		return emit2(opShr, wa)
	case "==", "===":
		return emit2(opEq, 1)
	case "!=", "!==":
		return emit2(opNe, 1)
	case "<":
		return emit2(opLt, 1)
	case ">":
		return emit2(opGt, 1)
	case "<=":
		return emit2(opLe, 1)
	case ">=":
		return emit2(opGe, 1)
	case "&&":
		return emit2(opLAnd, 1)
	case "||":
		return emit2(opLOr, 1)
	}
	c.failf("unsupported binary operator %q", op)
	return 0
}
