package sim

import "testing"

// TestEngineRegressions is the permanent home for every minimized
// walker-vs-engine divergence. Each entry started life as a fuzzer or
// field find, was shrunk by the internal/fuzz minimizer (or by hand),
// and must stay bit-identical across both backends forever. Add new
// finds here; never delete entries.
func TestEngineRegressions(t *testing.T) {
	cases := []struct {
		name   string
		clock  string
		cycles int
		seed   int64
		src    string
	}{
		{
			// The compiled engine stored q[4:1] from q's own slot
			// register: the bit-copy loop read source bits it had
			// already overwritten. Fixed by copy-on-alias in
			// compileSliceStore and an alias-safe
			// bitvec.StoreSliceOf.
			name: "alias_slice_store", clock: "clk", cycles: 16, seed: 5,
			src: `
module m(input clk, input [7:0] d, output reg [7:0] q);
	always @(posedge clk) begin
		q = d;
		q[4:1] = q;
	end
endmodule`,
		},
		{
			// Two same-edge blocks each declaring 'integer i':
			// the walker ran both in one shared env, so block 1's
			// queued NBA targets were re-evaluated at commit time
			// with block 2's final i. Fixed by per-block envs in
			// walker fireEdge; the engine already gave each block
			// its own local slots.
			name: "shared_loop_var_nba", clock: "clk", cycles: 16, seed: 7,
			src: `
module m(input clk, input [7:0] d, output reg [7:0] q, output reg [7:0] r);
	integer i;
	always @(posedge clk) begin
		for (i = 0; i < 4; i = i + 1)
			q[i] <= d[i];
	end
	always @(posedge clk) begin
		for (i = 0; i < 6; i = i + 1)
			r[i] <= d[i];
	end
endmodule`,
		},
		{
			// Blocking self-alias through a full-width slice: the
			// RHS ident resolves to the destination's slot.
			name: "full_width_self_slice", clock: "", cycles: 16, seed: 11,
			src: `
module m(input [7:0] d, output reg [7:0] q);
	always @(*) begin
		q = d;
		q[7:0] = q;
	end
endmodule`,
		},
		{
			// Found by the generative fuzzer (seed 11 of the first
			// campaign): both backends once applied wire initializers
			// one-shot at reset — the walker in map iteration order —
			// so an init reading another initialized wire diverged
			// intermittently. Net inits are continuous assigns now,
			// recomputed every settle in both backends.
			name: "wire_init_chain", clock: "clk", cycles: 16, seed: 11,
			src: `
module m(input clk, input [3:0] d, output reg [7:0] q);
	wire [7:0] t0 = 8'h2e + (d << 3);
	wire [6:0] t1 = t0;
	always @(posedge clk)
		q <= t1;
endmodule`,
		},
		{
			// Dynamic-base self-aliasing part-select store: the
			// indexed store path must also snapshot the source.
			name: "dynamic_self_slice", clock: "", cycles: 16, seed: 13,
			src: `
module m(input [7:0] d, input [2:0] pos, output reg [15:0] w);
	always @(*) begin
		w = {d, d};
		w[pos +: 8] = w[7:0];
	end
endmodule`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diffBoth(t, tc.src, tc.clock, tc.cycles, tc.seed)
		})
	}
}
