package sim

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
)

// diffBoth runs src through the shared differential path (diff.go) and
// fails on any walker-vs-engine disagreement.
func diffBoth(t *testing.T, src, clock string, count int, seed int64) {
	t.Helper()
	rep, err := DiffSource(src, DiffConfig{Clock: clock, Cycles: count, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged() {
		t.Fatalf("divergence: %s", rep.First())
	}
}

func TestEngineMicroDifferential(t *testing.T) {
	cases := []struct {
		name  string
		clock string
		src   string
	}{
		{"ascending_range", "", `
module ar(input [0:7] in, input [2:0] sel, output out, output [0:3] hi);
	assign out = in[sel];
	assign hi = in[0:3];
endmodule`},
		{"nonzero_lsb", "", `
module nz(input [11:4] in, input [3:0] sel, output bit7, output dynbit, output [3:0] mid);
	assign bit7 = in[7];
	assign dynbit = in[sel];
	assign mid = in[11:8];
endmodule`},
		{"nba_loop_index", "clk", `
module nl(input clk, input [7:0] d, output reg [7:0] q);
	integer i;
	always @(posedge clk)
		for (i = 0; i < 8; i = i + 1)
			q[i] <= d[7 - i];
endmodule`},
		{"dynamic_minus_select", "", `
module dm(input [15:0] in, input [3:0] base, output [3:0] y);
	assign y = in[base -: 4];
endmodule`},
		{"dynamic_slice_store", "", `
module ds(input [7:0] d, input [2:0] pos, output reg [15:0] word);
	always @(*) begin
		word = 0;
		word[pos +: 8] = d;
	end
endmodule`},
		{"chained_comb_blocks", "", `
module cc(input [7:0] a, output [7:0] y);
	wire [7:0] t1, t2;
	assign t2 = t1 ^ 8'h0F;
	assign t1 = a + 1;
	assign y = t2 | t1;
endmodule`},
		{"two_always_fsm", "clk", `
module fsm(input clk, input rst, input in, output out);
	reg [1:0] state, next;
	always @(posedge clk) begin
		if (rst) state <= 2'b00;
		else state <= next;
	end
	always @(*) begin
		case (state)
			2'b00: next = in ? 2'b01 : 2'b00;
			2'b01: next = in ? 2'b01 : 2'b10;
			default: next = 2'b00;
		endcase
	end
	assign out = state == 2'b10;
endmodule`},
		{"params_and_widths", "", `
module pw(input [7:0] a, output [7:0] y, output [3:0] z);
	parameter W = 4;
	localparam MASK = (1 << W) - 1;
	assign y = (a >> W) + MASK;
	assign z = a[W +: 4];
endmodule`},
		{"blocking_chain_in_always", "", `
module bc(input [7:0] a, output reg [7:0] y);
	reg [7:0] t;
	always @(*) begin
		t = a ^ 8'hAA;
		t = t + 1;
		y = t;
	end
endmodule`},
		{"mixed_width_ternary_assign", "", `
module mt(input [7:0] in, output [7:0] out);
	assign out = in[7] ? (~in + 1) : in;
endmodule`},
		{"concat_lhs_nba", "clk", `
module cn(input clk, input [7:0] a, input [7:0] b,
          output reg [7:0] hi, output reg [7:0] lo);
	always @(posedge clk)
		{hi, lo} <= {a, b} + 16'h0101;
endmodule`},
		{"signed_marker_literals", "", `
module sl(input [7:0] a, output [7:0] y);
	assign y = a + 8'sd4;
endmodule`},
		{"replication_nested", "", `
module rn(input [1:0] p, output [11:0] y);
	assign y = {3{p, 2'b01}};
endmodule`},
		{"async_and_sync_reset", "clk", `
module ar2(input clk, input areset, input d, output reg q, output reg r);
	always @(posedge clk or posedge areset) begin
		if (areset) q <= 0;
		else q <= d;
	end
	always @(posedge clk) r <= q;
endmodule`},
		{"dyn_base_slice_store_carry", "clk", `
module dc(input clk, input [3:0] a, input [3:0] b, input [2:0] sel,
          output reg [15:0] q);
	always @(posedge clk)
		q[sel +: 8] = a + b;
endmodule`},
		{"nested_loops_shared_var", "", `
module nv(input [15:0] in, output reg [4:0] out);
	always @(*) begin
		out = 0;
		for (int i = 0; i < 16; i = i + 1)
		for (int i = 0; i < 16; i = i + 1)
			out = out + in[i];
	end
endmodule`},
		{"redeclared_block_local", "", `
module rb(input [7:0] in, output reg [7:0] a, output reg [7:0] b);
	always @(*) begin : outer
		integer i;
		i = in[3:0];
		a = i + 1;
		begin : inner
			integer i;
			b = i + in[7:4];
		end
	end
endmodule`},
		{"division_and_mod", "", `
module dv(input [7:0] a, input [7:0] b, output [7:0] q, output [7:0] r);
	assign q = a / b;
	assign r = a % b;
endmodule`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			diffBoth(t, tc.src, tc.clock, 50, 31+int64(len(tc.name)))
		})
	}
}

// TestEngineOscillationMatchesWalker: genuine combinational feedback must
// fail to settle on both backends.
func TestEngineOscillationMatchesWalker(t *testing.T) {
	src := `
module osc(input en, output y);
	wire a;
	assign a = en & ~y;
	assign y = a;
endmodule`
	design := buildDesign(t, src)
	for _, eng := range []Engine{EngineCompiled, EngineWalker} {
		s, err := NewWith(design, eng)
		if err != nil {
			t.Fatalf("engine %d: %v", eng, err)
		}
		s.SetInputUint("en", 1)
		if err := s.Settle(); err == nil {
			t.Fatalf("engine %d: oscillation must be detected", eng)
		}
	}
}

// TestEngineTopoOrderSingleRun: an acyclic design settles in one pass
// regardless of declaration order — the compiled engine's whole point.
// The walker needs multiple rounds for the reversed chain; the engine's
// schedule must still produce the identical result.
func TestEngineTopoOrderSingleRun(t *testing.T) {
	src := `
module chain(input [7:0] a, output [7:0] y);
	wire [7:0] s1, s2, s3;
	assign y  = s3 + 1;
	assign s3 = s2 + 1;
	assign s2 = s1 + 1;
	assign s1 = a + 1;
endmodule`
	diffBoth(t, src, "", 30, 5)
}

// TestEngineAcyclicScheduleRunsOnce: an acyclic design must schedule
// every process as a run-once item — no spurious fixpoint groups from
// misread instruction operands (slot 0 is the alphabetically-first
// signal, so a regression here shows up as sched[i].fixpoint).
func TestEngineAcyclicScheduleRunsOnce(t *testing.T) {
	design := buildDesign(t, `
module ac(input [7:0] b, output [7:0] a, output [7:0] c, output [7:0] d);
	assign a = b + 1;
	assign c = a ^ b;
	assign d = ~c;
endmodule`)
	prog, err := Compile(design)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.sched) != 3 {
		t.Fatalf("want 3 schedule items, got %d", len(prog.sched))
	}
	for i, item := range prog.sched {
		if item.fixpoint {
			t.Errorf("sched[%d] is a fixpoint group; acyclic processes must run once", i)
		}
		if len(item.nodes) != 1 {
			t.Errorf("sched[%d] groups %d nodes", i, len(item.nodes))
		}
	}
}

// TestEngineFallback: constructs the compiler rejects still simulate
// through the walker under EngineAuto, and EngineCompiled reports the
// error.
func TestEngineFallback(t *testing.T) {
	// dynamic replication count: result width is value-dependent
	src := `
module dr(input [3:0] n, output [7:0] y);
	wire [3:0] w;
	assign w = n;
	assign y = {w{1'b1}};
endmodule`
	design := buildDesign(t, src)
	if _, err := Compile(design); err == nil {
		t.Fatal("dynamic replication must be rejected by the compiler")
	}
	if _, err := NewWith(design, EngineCompiled); err == nil {
		t.Fatal("EngineCompiled must surface the compile error")
	}
	s, err := New(design) // EngineAuto
	if err != nil {
		t.Fatalf("auto fallback failed: %v", err)
	}
	if s.Compiled() {
		t.Fatal("fallback simulator must report Compiled() == false")
	}
	s.SetInputUint("n", 3)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("y").Uint64(); got != 0b111 {
		t.Fatalf("walker fallback y = %#x, want 0x7", got)
	}
}

// TestResetPreservesWidthsAndInits: the satellite contract — Reset reuses
// storage but keeps declared widths and re-applies declaration
// initializers, on both backends, across repeated resets.
func TestResetPreservesWidthsAndInits(t *testing.T) {
	src := `
module ri(input clk, input [7:0] d, output reg [7:0] q, output [99:0] wide, output y);
	wire inv = ~d[0];
	reg [99:0] acc;
	assign wide = acc;
	assign y = inv;
	always @(posedge clk) begin
		q <= q + d;
		acc <= acc + 1;
	end
endmodule`
	design := buildDesign(t, src)
	for _, eng := range []Engine{EngineCompiled, EngineWalker} {
		s, err := NewWith(design, eng)
		if err != nil {
			t.Fatalf("engine %d: %v", eng, err)
		}
		for round := 0; round < 3; round++ {
			s.SetInputUint("d", 3)
			for i := 0; i < 4; i++ {
				if err := s.ClockPulse("clk"); err != nil {
					t.Fatal(err)
				}
			}
			if got := s.Get("q").Uint64(); got != 12 {
				t.Fatalf("engine %d round %d: q = %d, want 12", eng, round, got)
			}
			if got := s.Get("acc"); got.Width() != 100 || got.Uint64() != 4 {
				t.Fatalf("engine %d round %d: acc = %s", eng, round, got.Hex())
			}
			s.Reset()
			if got := s.Get("q"); got.Width() != 8 || !got.IsZero() {
				t.Fatalf("engine %d round %d: q after reset = %s", eng, round, got.Hex())
			}
			if got := s.Get("acc"); got.Width() != 100 || !got.IsZero() {
				t.Fatalf("engine %d round %d: acc width %d after reset", eng, round, got.Width())
			}
			// A net init (wire inv = ~d[0]) is a continuous assign:
			// the first settle after reset recomputes it (d zeroed,
			// so inv = 1).
			if err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			if got := s.Get("inv").Uint64(); got != 1 {
				t.Fatalf("engine %d round %d: net init not recomputed, inv = %d", eng, round, got)
			}
		}
	}
}

// TestEngineSteadyStateZeroAllocs is the allocation regression guard the
// CI smoke run executes: a steady-state cycle (drive inputs, settle,
// clock) on a ≤64-bit design must not allocate.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	src := `
module alu(input clk, input rst, input [31:0] a, input [31:0] b, input [1:0] op,
           output reg [31:0] acc, output [31:0] comb, output zero);
	wire [31:0] sum = a + b;
	assign comb = op[0] ? (a & b) : sum ^ b;
	assign zero = acc == 0;
	always @(posedge clk) begin
		if (rst) acc <= 0;
		else begin
			case (op)
				2'b00: acc <= acc + a;
				2'b01: acc <= acc - b;
				2'b10: acc <= acc ^ sum;
				default: acc <= {acc[15:0], a[15:0]};
			endcase
		end
	end
endmodule`
	design := buildDesign(t, src)
	s, err := NewWith(design, EngineCompiled)
	if err != nil {
		t.Fatal(err)
	}
	av := bitvec.FromUint64(32, 0xDEADBEEF)
	bv := bitvec.FromUint64(32, 0x12345678)
	step := func() {
		if err := s.SetInput("a", av); err != nil {
			t.Fatal(err)
		}
		if err := s.SetInput("b", bv); err != nil {
			t.Fatal(err)
		}
		if err := s.SetInputUint("op", 2); err != nil {
			t.Fatal(err)
		}
		if err := s.Settle(); err != nil {
			t.Fatal(err)
		}
		if err := s.ClockPulse("clk"); err != nil {
			t.Fatal(err)
		}
	}
	step() // reach steady state (NBA pools sized)
	allocs := testing.AllocsPerRun(200, step)
	if allocs != 0 {
		t.Fatalf("steady-state cycle allocated %.2f/op, want 0", allocs)
	}
}

// TestEngineWideSteadyStateAllocs: wide (multi-word) designs also run
// allocation-free once warm.
func TestEngineWideSteadyStateAllocs(t *testing.T) {
	design := buildDesign(t, wideBenchSrc)
	s, err := NewWith(design, EngineCompiled)
	if err != nil {
		t.Fatal(err)
	}
	in := bitvec.New(255)
	for i := 0; i < 255; i += 3 {
		in.SetBitInPlace(i, true)
	}
	step := func() {
		if err := s.SetInput("in", in); err != nil {
			t.Fatal(err)
		}
		if err := s.Settle(); err != nil {
			t.Fatal(err)
		}
		if err := s.ClockPulse("clk"); err != nil {
			t.Fatal(err)
		}
	}
	step()
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("wide steady-state cycle allocated %.2f/op, want 0", allocs)
	}
}

// TestProgramSharedAcrossEngines: one Program, many engines, independent
// state.
func TestProgramSharedAcrossEngines(t *testing.T) {
	design := buildDesign(t, `
module ctr(input clk, output reg [7:0] q);
	always @(posedge clk) q <= q + 1;
endmodule`)
	prog, err := Compile(design)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewFromProgram(prog), NewFromProgram(prog)
	for i := 0; i < 5; i++ {
		a.ClockPulse("clk")
	}
	b.ClockPulse("clk")
	if av, bv := a.Get("q").Uint64(), b.Get("q").Uint64(); av != 5 || bv != 1 {
		t.Fatalf("engines share state: a=%d b=%d", av, bv)
	}
	if prog.Slots() == 0 {
		t.Fatal("program must report interned slots")
	}
}

// TestCompileRejectsUnsupported enumerates constructs that must route to
// the walker rather than miscompile.
func TestCompileRejectsUnsupported(t *testing.T) {
	cases := []string{
		// unsupported system function
		`module m(input [7:0] a, output [7:0] y); assign y = $random(a); endmodule`,
	}
	for _, src := range cases {
		design := buildDesign(t, src)
		if _, err := Compile(design); err == nil {
			t.Errorf("must reject: %s", strings.TrimSpace(src))
		}
	}
}
