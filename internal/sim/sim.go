// Package sim is a two-phase cycle simulator for elaborated Verilog
// designs: combinational settling to a fixpoint plus clocked updates with
// non-blocking-assignment semantics. It is the functional-correctness
// oracle behind the paper's pass@k measurements — a problem's testbench
// drives input vectors through the design and compares outputs against the
// problem's reference model.
//
// The simulator is two-state (no X/Z). Registers reset to zero, which the
// benchmark's testbenches account for by driving a reset sequence first.
//
// Two execution backends share one public API:
//
//   - The compiled engine (the default): Compile lowers the elaborated
//     design once — every signal interned into a dense slot index, every
//     assign and always block flattened into an instruction sequence over
//     those slots, combinational processes scheduled in dependency
//     (topological) order with bounded fixpoint iteration reserved for
//     genuine cycles. Steady-state cycles run with zero heap allocations
//     on designs up to 64 bits wide. Compiled Programs are immutable and
//     shareable; NewFromProgram makes the per-run instantiation cheap.
//   - The legacy tree-walker: the original AST interpreter, kept as the
//     reference oracle (differential tests assert bit-identical outputs)
//     and as the automatic fallback for the rare construct the compiler
//     rejects.
//
// DiffSource and DiffDesign are the shared differential path holding the
// two backends to agreement: both instantiated on one design, driven
// with identical seeded random inputs, every signal compared every cycle
// plus the full state at the end. The unit tests, the permanent
// regression table (engine_regress_test.go), the native
// FuzzDifferential target, and the internal/fuzz campaign runner and
// minimizer all funnel through it.
//
// The facade is also the observability hook point: Observe attaches a
// wave.Observer that receives one full-signal snapshot after every
// successful Settle (waveform capture, toggle coverage), and
// EnableProfile/EnableActivations expose the compiled engine's opcode
// histogram, fixpoint iteration counts, and per-process activation
// counters. All of it is opt-in and nil-guarded: with nothing attached
// the hot path pays a single nil check per settle, and the engine's
// steady-state zero-allocation guarantee is unchanged (pinned by
// AllocsPerRun tests).
package sim

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/resilience"
	"repro/internal/sema"
	"repro/internal/wave"
)

// settleLimit bounds combinational fixpoint iteration; exceeding it means a
// combinational loop (oscillation).
const settleLimit = 64

// loopLimit bounds procedural for-loop trip counts so a runaway loop in
// generated code cannot hang the benchmark harness.
const loopLimit = 1 << 16

// Engine selects a simulation backend.
type Engine int

// Backend choices.
const (
	// EngineAuto compiles the design and falls back to the walker when
	// compilation rejects a construct. This is the default.
	EngineAuto Engine = iota
	// EngineCompiled requires the compiled backend; New fails when the
	// design cannot be compiled.
	EngineCompiled
	// EngineWalker forces the legacy tree-walking interpreter — the
	// reference oracle for differential testing.
	EngineWalker
)

// backend is the contract both evaluators implement. ClockPulse is built
// on top of these in the facade so both backends share identical clocking
// semantics.
type backend interface {
	Reset()
	Get(name string) bitvec.Vec
	SetInput(name string, v bitvec.Vec) error
	SetInputUint(name string, v uint64) error
	Settle() error
}

// Simulator is one design instance. It delegates to whichever backend New
// selected; the API and observable behaviour are identical either way.
type Simulator struct {
	design   *sema.Design
	b        backend
	compiled bool
	wd       *resilience.Watchdog

	// Observation state (observe.go). obs is nil unless an observer is
	// attached; obsNames/obsVals are the preallocated snapshot carriers
	// so sampling itself does not allocate.
	obs      wave.Observer
	obsNames []string
	obsVals  []bitvec.Vec
	obsTime  uint64
}

// watchdogSettable is implemented by backends that check the watchdog
// inside their settle fixpoint loops, so a runaway settle is canceled
// mid-iteration, not merely at the next cycle boundary.
type watchdogSettable interface {
	setWatchdog(*resilience.Watchdog)
}

// SetWatchdog arms (or, with nil, disarms) a wall-clock/cycle budget on
// this simulator. Every Settle — including the three inside ClockPulse —
// consumes one watchdog step, and both backends check the budget inside
// their fixpoint loops. A nil watchdog costs nothing on the hot path.
func (s *Simulator) SetWatchdog(wd *resilience.Watchdog) {
	s.wd = wd
	if ws, ok := s.b.(watchdogSettable); ok {
		ws.setWatchdog(wd)
	}
}

// New builds a simulator over an elaborated design using the default
// backend policy (EngineAuto). It fails when the design is nil or uses
// constructs neither backend supports.
func New(design *sema.Design) (*Simulator, error) {
	return NewWith(design, EngineAuto)
}

// NewWith builds a simulator with an explicit backend choice.
func NewWith(design *sema.Design, eng Engine) (*Simulator, error) {
	if design == nil {
		return nil, fmt.Errorf("sim: nil design")
	}
	if eng != EngineWalker {
		prog, err := Compile(design)
		if err == nil {
			return &Simulator{design: design, b: newEngine(prog), compiled: true}, nil
		}
		if eng == EngineCompiled {
			return nil, err
		}
	}
	w, err := newWalkerSim(design)
	if err != nil {
		return nil, err
	}
	return &Simulator{design: design, b: w}, nil
}

// NewFromProgram instantiates a simulator over an already-compiled
// program. The program is immutable and may be shared across goroutines;
// each call returns independent mutable state, so a cached Program turns
// the per-testbench-run cost into a single allocation pass.
func NewFromProgram(p *Program) *Simulator {
	return &Simulator{design: p.design, b: newEngine(p), compiled: true}
}

// Compiled reports whether the compiled engine backs this simulator.
func (s *Simulator) Compiled() bool { return s.compiled }

// Design returns the elaborated design the simulator runs.
func (s *Simulator) Design() *sema.Design { return s.design }

// Reset zeroes every signal and re-applies declaration initializers.
func (s *Simulator) Reset() { s.b.Reset() }

// Get returns the current value of a signal (zero vector for unknown
// names, so probing never panics mid-benchmark). The returned vector is
// valid until the next simulator mutation; callers that retain values
// across cycles must copy them.
func (s *Simulator) Get(name string) bitvec.Vec { return s.b.Get(name) }

// SetInput drives an input port. Edges produced by the change trigger
// edge-sensitive always blocks whose sensitivity list mentions the signal
// (asynchronous resets).
func (s *Simulator) SetInput(name string, v bitvec.Vec) error { return s.b.SetInput(name, v) }

// SetInputUint drives an input port from a uint64.
func (s *Simulator) SetInputUint(name string, v uint64) error { return s.b.SetInputUint(name, v) }

// Settle evaluates continuous assigns and combinational always blocks to a
// fixpoint. With a watchdog armed it consumes one step and enforces the
// budget; the sim.stall fault point can inject a stall here.
func (s *Simulator) Settle() error {
	fault.Delay(fault.SimStall)
	if err := s.wd.Step(1); err != nil {
		return err
	}
	if err := s.b.Settle(); err != nil {
		return err
	}
	if s.obs != nil {
		s.sample()
	}
	return nil
}

// ClockPulse produces a full 0→1→0 pulse on the named signal. Combinational
// logic settles before the rising edge (so next-state logic sees the inputs
// driven since the last cycle), and again after each edge.
func (s *Simulator) ClockPulse(name string) error {
	if err := s.Settle(); err != nil {
		return err
	}
	if err := s.b.SetInputUint(name, 1); err != nil {
		return err
	}
	if err := s.Settle(); err != nil {
		return err
	}
	if err := s.b.SetInputUint(name, 0); err != nil {
		return err
	}
	return s.Settle()
}
