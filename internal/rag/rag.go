// Package rag implements the retrieval-augmented-generation database of
// RTLFixer: a curated, persistent, non-parametric memory of compiler-log
// patterns paired with human expert guidance and demonstrations (§3.3).
//
// The database is keyed by error category, mirroring the paper's curation
// ("we categorize various syntax errors into groups using error number
// tags provided by compilers"). Retrieval happens over raw compiler-log
// text: the exact-tag retriever — the paper's choice — matches Quartus
// error numbers and iverilog message stems; pattern and fuzzy retrievers
// are provided as the alternatives the paper mentions (pattern matching,
// fuzzy search, similarity search).
package rag

import (
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/diag"
)

// Entry is one guidance record in the retrieval database.
type Entry struct {
	// ID is a stable identifier, unique within a database.
	ID string
	// Category is the error class this guidance addresses.
	Category diag.Category
	// Compiler is the persona whose logs the patterns target
	// ("iverilog", "quartus").
	Compiler string
	// Patterns are the log substrings (error-number tags or message
	// stems) that the exact-tag retriever matches against.
	Patterns []string
	// LogExample is a demonstration compiler log for this error class,
	// used by the fuzzy retriever and shown in transcripts.
	LogExample string
	// Guidance is the human expert instruction (paper Fig. 3).
	Guidance string
	// Demonstration optionally shows a before/after code fragment.
	Demonstration string
}

// Database is an ordered collection of entries.
type Database struct {
	entries []Entry
}

// NewDatabase builds a database from entries.
func NewDatabase(entries []Entry) *Database {
	return &Database{entries: entries}
}

// Entries returns all entries.
func (db *Database) Entries() []Entry { return db.entries }

// Add appends an entry (the paper's "store" arrow: new compiler logs and
// guidance are stored for future retrieval).
func (db *Database) Add(e Entry) { db.entries = append(db.entries, e) }

// Len returns the number of entries.
func (db *Database) Len() int { return len(db.entries) }

// CategoryCount returns the number of distinct diagnostic categories
// covered.
func (db *Database) CategoryCount() int {
	seen := map[diag.Category]bool{}
	for _, e := range db.entries {
		seen[e.Category] = true
	}
	return len(seen)
}

// GroupCount returns the number of curated error groups — the paper's
// "common error categories" counted by compiler error-number family (7 for
// iverilog, 11 for Quartus). Groups are encoded as the entry-ID prefix
// before the trailing index ("q-undecl-3" → "q-undecl").
func (db *Database) GroupCount() int {
	seen := map[string]bool{}
	for _, e := range db.entries {
		id := e.ID
		if i := strings.LastIndex(id, "-"); i > 0 {
			id = id[:i]
		}
		seen[id] = true
	}
	return len(seen)
}

// Retriever selects guidance entries for a compiler log.
type Retriever interface {
	// Name identifies the retrieval strategy.
	Name() string
	// Retrieve returns up to k entries relevant to the log, best first.
	Retrieve(db *Database, log string, k int) []Entry
}

// ---------- exact-tag retrieval (the paper's choice) ----------

// ExactTag matches entry patterns as substrings of the log, ranking by
// pattern length (longer, more specific tags first). "In our experiments,
// we opted for an exact match to error tags for simplicity."
type ExactTag struct{}

// Name implements Retriever.
func (ExactTag) Name() string { return "exact-tag" }

// Retrieve implements Retriever.
func (ExactTag) Retrieve(db *Database, log string, k int) []Entry {
	var hits []ScoredEntry
	for _, e := range db.entries {
		best := 0
		for _, p := range e.Patterns {
			if p != "" && strings.Contains(log, p) && len(p) > best {
				best = len(p)
			}
		}
		if best > 0 {
			hits = append(hits, ScoredEntry{e, best})
		}
	}
	return SelectByScore(hits, k)
}

// ScoredEntry pairs an entry with its integer retrieval score. Exported so
// index-backed retrievers (internal/memo) can feed precomputed scores
// through the exact selection logic the naive scans use.
type ScoredEntry struct {
	Entry Entry
	Score int
}

// SelectByScore ranks hits by score (stable sort, descending — entries tie
// in database order) and keeps at most k, capping two per category so
// multi-error logs still get coverage for every error class present. It is
// the shared tail of ExactTag and Keyword retrieval; byte-identical
// results between the naive and indexed paths depend on both going
// through it.
func SelectByScore(hits []ScoredEntry, k int) []Entry {
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].Score > hits[j].Score })
	var out []Entry
	seen := map[diag.Category]int{}
	for _, h := range hits {
		if len(out) >= k {
			break
		}
		if seen[h.Entry.Category] >= 2 {
			continue
		}
		seen[h.Entry.Category]++
		out = append(out, h.Entry)
	}
	return out
}

// ---------- fuzzy retrieval ----------

// Fuzzy ranks entries by Jaccard similarity between the log and each
// entry's LogExample, over token shingles.
type Fuzzy struct {
	// ShingleK is the shingle size; 0 means 3.
	ShingleK int
	// MinSimilarity filters out weak matches; 0 means 0.05.
	MinSimilarity float64
}

// Name implements Retriever.
func (Fuzzy) Name() string { return "fuzzy-jaccard" }

// Params resolves the effective shingle size and similarity floor,
// applying the zero-value defaults. Index-backed retrieval (internal/memo)
// uses it so both paths agree on the parameters.
func (f Fuzzy) Params() (shingleK int, minSim float64) {
	shingleK = f.ShingleK
	if shingleK == 0 {
		shingleK = 3
	}
	minSim = f.MinSimilarity
	if minSim == 0 {
		minSim = 0.05
	}
	return shingleK, minSim
}

// Retrieve implements Retriever.
func (f Fuzzy) Retrieve(db *Database, log string, k int) []Entry {
	shingleK, minSim := f.Params()
	logSet := cluster.Shingles(log, shingleK)
	type scored struct {
		e   Entry
		sim float64
	}
	var hits []scored
	for _, e := range db.entries {
		sim := cluster.Jaccard(logSet, cluster.Shingles(e.LogExample, shingleK))
		if sim >= minSim {
			hits = append(hits, scored{e, sim})
		}
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].sim > hits[j].sim })
	var out []Entry
	for _, h := range hits {
		if len(out) >= k {
			break
		}
		out = append(out, h.e)
	}
	return out
}

// ---------- pattern retrieval ----------

// Keyword matches case-insensitively on whole guidance keywords extracted
// from the log — the "pattern-matching" alternative the paper mentions.
type Keyword struct{}

// Name implements Retriever.
func (Keyword) Name() string { return "keyword" }

// Retrieve implements Retriever.
func (Keyword) Retrieve(db *Database, log string, k int) []Entry {
	lower := strings.ToLower(log)
	var hits []ScoredEntry
	for _, e := range db.entries {
		score := 0
		for _, p := range e.Patterns {
			for _, word := range strings.Fields(strings.ToLower(p)) {
				if len(word) >= 4 && strings.Contains(lower, word) {
					score++
				}
			}
		}
		if score > 0 {
			hits = append(hits, ScoredEntry{e, score})
		}
	}
	return SelectByScore(hits, k)
}

// Render formats retrieved entries the way the agent's observation shows
// them: guidance first, then the demonstration if present.
func Render(entries []Entry) string {
	if len(entries) == 0 {
		return "No relevant guidance found in the database."
	}
	var b strings.Builder
	for i, e := range entries {
		if i > 0 {
			b.WriteString("\n---\n")
		}
		b.WriteString("Expert guidance [")
		b.WriteString(e.ID)
		b.WriteString("]: ")
		b.WriteString(e.Guidance)
		if e.Demonstration != "" {
			b.WriteString("\nDemonstration:\n")
			b.WriteString(e.Demonstration)
		}
	}
	return b.String()
}
