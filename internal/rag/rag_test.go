package rag

import (
	"strings"
	"testing"

	"repro/internal/diag"
)

func TestCuratedDatabaseSizesMatchPaper(t *testing.T) {
	q := QuartusDB()
	if q.Len() != 45 {
		t.Errorf("Quartus DB has %d entries, paper reports 45", q.Len())
	}
	if got := q.GroupCount(); got != 11 {
		t.Errorf("Quartus DB has %d error groups, paper reports 11", got)
	}
	iv := IVerilogDB()
	if iv.Len() != 30 {
		t.Errorf("iverilog DB has %d entries, paper reports 30", iv.Len())
	}
	if got := iv.GroupCount(); got != 7 {
		t.Errorf("iverilog DB has %d error groups, paper reports 7", got)
	}
}

func TestEntriesWellFormed(t *testing.T) {
	for _, db := range []*Database{QuartusDB(), IVerilogDB()} {
		seen := map[string]bool{}
		for _, e := range db.Entries() {
			if e.ID == "" || seen[e.ID] {
				t.Errorf("bad/duplicate ID %q", e.ID)
			}
			seen[e.ID] = true
			if e.Guidance == "" {
				t.Errorf("%s: empty guidance", e.ID)
			}
			if len(e.Patterns) == 0 {
				t.Errorf("%s: no patterns", e.ID)
			}
			if e.LogExample == "" {
				t.Errorf("%s: no log example", e.ID)
			}
			if e.Category == diag.CatNone {
				t.Errorf("%s: no category", e.ID)
			}
		}
	}
}

func TestForCompiler(t *testing.T) {
	if ForCompiler("Quartus").Len() != 45 {
		t.Error("Quartus lookup failed")
	}
	if ForCompiler("iverilog").Len() != 30 {
		t.Error("iverilog lookup failed")
	}
	if ForCompiler("Simple").Len() != 0 {
		t.Error("Simple has no log dialect, DB must be empty")
	}
}

const quartusClkLog = `Error (10161): Verilog HDL error at top.sv(5): object "clk" is not declared. Verify the object name is correct. If the name is correct, declare the object. File: /tmp/top.sv Line: 5
Error: Quartus Prime Analysis & Synthesis was unsuccessful. 1 error(s), 0 warning(s)`

func TestExactTagRetrievesByErrorCode(t *testing.T) {
	got := ExactTag{}.Retrieve(QuartusDB(), quartusClkLog, 3)
	if len(got) == 0 {
		t.Fatal("nothing retrieved")
	}
	for _, e := range got {
		if e.Category != diag.CatUndeclaredIdent {
			t.Errorf("retrieved off-category entry %s (%s)", e.ID, e.Category)
		}
	}
}

func TestExactTagMultiErrorLogCoversCategories(t *testing.T) {
	log := quartusClkLog + "\nError (10232): Verilog HDL error at top.sv(9): index 8 cannot fall outside the declared range [7:0] for vector \"out\". File: x Line: 9"
	got := ExactTag{}.Retrieve(QuartusDB(), log, 4)
	cats := map[diag.Category]bool{}
	for _, e := range got {
		cats[e.Category] = true
	}
	if !cats[diag.CatUndeclaredIdent] || !cats[diag.CatIndexOutOfRange] {
		t.Fatalf("multi-error log should retrieve both categories, got %v", cats)
	}
}

func TestExactTagNoMatchReturnsEmpty(t *testing.T) {
	if got := (ExactTag{}).Retrieve(QuartusDB(), "nothing relevant here", 3); len(got) != 0 {
		t.Fatalf("spurious retrieval: %v", got)
	}
}

func TestExactTagIVerilogPatterns(t *testing.T) {
	log := "top.sv:15: error: out is not a valid l-value in top_module.\n1 error(s) during elaboration."
	got := ExactTag{}.Retrieve(IVerilogDB(), log, 3)
	if len(got) == 0 {
		t.Fatal("nothing retrieved for l-value log")
	}
	if got[0].Category != diag.CatInvalidLValue {
		t.Fatalf("top entry category = %s", got[0].Category)
	}
}

func TestFuzzyRetrieval(t *testing.T) {
	got := Fuzzy{}.Retrieve(QuartusDB(), quartusClkLog, 3)
	if len(got) == 0 {
		t.Fatal("fuzzy retrieval found nothing")
	}
	if got[0].Category != diag.CatUndeclaredIdent {
		t.Errorf("fuzzy top hit = %s (%s)", got[0].ID, got[0].Category)
	}
}

func TestKeywordRetrieval(t *testing.T) {
	got := Keyword{}.Retrieve(QuartusDB(), "something about declared objects and names", 3)
	if len(got) == 0 {
		t.Fatal("keyword retrieval found nothing")
	}
}

func TestRetrieverNames(t *testing.T) {
	for _, r := range []Retriever{ExactTag{}, Fuzzy{}, Keyword{}} {
		if r.Name() == "" {
			t.Error("empty retriever name")
		}
	}
}

func TestRenderGuidance(t *testing.T) {
	entries := ExactTag{}.Retrieve(QuartusDB(), quartusClkLog, 2)
	out := Render(entries)
	if !strings.Contains(out, "Expert guidance") {
		t.Fatalf("render missing header: %q", out)
	}
	if Render(nil) != "No relevant guidance found in the database." {
		t.Fatal("empty render wrong")
	}
}

func TestDatabaseAdd(t *testing.T) {
	db := NewDatabase(nil)
	db.Add(Entry{ID: "x-1", Category: diag.CatGiveUp, Patterns: []string{"zzz"}, Guidance: "g"})
	if db.Len() != 1 {
		t.Fatal("add failed")
	}
	got := ExactTag{}.Retrieve(db, "log with zzz inside", 1)
	if len(got) != 1 || got[0].ID != "x-1" {
		t.Fatalf("stored entry not retrievable: %v", got)
	}
}

func TestPaperFig3GuidanceExamplesPresent(t *testing.T) {
	// The two guidance texts the paper quotes in Fig. 3 must exist.
	var hasClk, hasIndex bool
	for _, e := range QuartusDB().Entries() {
		if strings.Contains(e.Guidance, "replace 'posedge clk' with '*'") {
			hasClk = true
		}
		if strings.Contains(e.Guidance, "binary strings for performing the indexing") {
			hasIndex = true
		}
	}
	if !hasClk || !hasIndex {
		t.Fatalf("paper Fig. 3 guidance missing: clk=%v index=%v", hasClk, hasIndex)
	}
}
