package rag

import "repro/internal/diag"

// QuartusDB returns the curated human-guidance database for the Quartus
// persona: 11 error categories, 45 entries, matching the counts the paper
// reports ("11 common error categories with 45 entries for Quartus").
// Patterns are the stable error-number tags the exact-match retriever keys
// on, plus characteristic message stems.
func QuartusDB() *Database {
	return NewDatabase(quartusEntries)
}

// IVerilogDB returns the curated database for the iverilog persona: 7
// error categories, 30 entries ("7 common error categories with 30
// entries for iverilog").
func IVerilogDB() *Database {
	return NewDatabase(iverilogEntries)
}

// ForCompiler returns the curated database matching a persona name, or an
// empty database for personas without one (Simple gives no log to match).
func ForCompiler(name string) *Database {
	switch name {
	case "Quartus", "quartus":
		return QuartusDB()
	case "iverilog", "IVerilog":
		return IVerilogDB()
	}
	return NewDatabase(nil)
}

var quartusEntries = []Entry{
	// --- undeclared object (10161): 5 entries ---
	{
		ID: "q-undecl-1", Category: diag.CatUndeclaredIdent, Compiler: "quartus",
		Patterns:   []string{"Error (10161)", "is not declared"},
		LogExample: `Error (10161): Verilog HDL error at top.sv(5): object "clk" is not declared. Verify the object name is correct. If the name is correct, declare the object.`,
		Guidance:   "Check if 'clk' is an input. If not, and if 'clk' is used within the module, make sure the name is correct. If it's meant to trigger an 'always' block, replace 'posedge clk' with '*'.",
		Demonstration: "// before: always @(posedge clk) begin ... end   (no clk port)\n" +
			"// after:  always @(*) begin ... end",
	},
	{
		ID: "q-undecl-2", Category: diag.CatUndeclaredIdent, Compiler: "quartus",
		Patterns:   []string{"Error (10161)"},
		LogExample: `Error (10161): Verilog HDL error at top.sv(9): object "result_r" is not declared.`,
		Guidance:   "Compare the undeclared name against the declared signals; it is usually a misspelling of an existing wire, reg, or port. Rename the use to the declared signal rather than declaring a new one.",
	},
	{
		ID: "q-undecl-3", Category: diag.CatUndeclaredIdent, Compiler: "quartus",
		Patterns:   []string{"Error (10161)"},
		LogExample: `Error (10161): Verilog HDL error at top.sv(3): object "reset" is not declared.`,
		Guidance:   "If the undeclared object is a control signal (reset, enable), the port list is probably missing it. Add it to the module header as an input rather than declaring a floating wire.",
	},
	{
		ID: "q-undecl-4", Category: diag.CatUndeclaredIdent, Compiler: "quartus",
		Patterns:   []string{"Error (10161)"},
		LogExample: `Error (10161): Verilog HDL error at top.sv(12): object "i" is not declared.`,
		Guidance:   "Loop indices must be declared. Either declare 'integer i;' before the always block, or declare the index inline with 'for (int i = 0; ...)'.",
	},
	{
		ID: "q-undecl-5", Category: diag.CatUndeclaredIdent, Compiler: "quartus",
		Patterns:   []string{"Error (10161)"},
		LogExample: `Error (10161): Verilog HDL error at top.sv(7): object "tmp" is not declared.`,
		Guidance:   "Intermediate signals used on the left of 'assign' or inside always blocks need a declaration: 'wire' for assign targets, 'reg' for always-block targets, sized to the data they carry.",
	},

	// --- index out of range (10232): 5 entries ---
	{
		ID: "q-index-1", Category: diag.CatIndexOutOfRange, Compiler: "quartus",
		Patterns:   []string{"Error (10232)", "cannot fall outside the declared range"},
		LogExample: `Error (10232): Verilog HDL error at top.sv(5): index 8 cannot fall outside the declared range [7:0] for vector "out"`,
		Guidance:   "Carefully examine the index values to prevent encountering 'index out of bound' errors in your code. When utilizing parameters for indexing, try to use binary strings for performing the indexing operation instead.",
	},
	{
		ID: "q-index-2", Category: diag.CatIndexOutOfRange, Compiler: "quartus",
		Patterns:   []string{"Error (10232)"},
		LogExample: `Error (10232): Verilog HDL error at top.sv(9): index -17 cannot fall outside the declared range [255:0] for vector "q"`,
		Guidance:   "A negative index means the index arithmetic underflows at a loop boundary. Recompute the expression at the smallest loop values; guard the boundary cases or wrap the arithmetic with a modulo of the vector size.",
		Demonstration: "// before: q[(i-1)*16 + (j-1)]    // i==0, j==0 -> -17\n" +
			"// after:  q[((i+15)%16)*16 + ((j+15)%16)]",
	},
	{
		ID: "q-index-3", Category: diag.CatIndexOutOfRange, Compiler: "quartus",
		Patterns:   []string{"Error (10232)"},
		LogExample: `Error (10232): Verilog HDL error at top.sv(4): part-select [8:1] is outside the declared range [7:0] for vector "in"`,
		Guidance:   "Part-select bounds must both lie inside the declared range. Shift the select window back inside the declaration, or widen the declaration if the extra bit is intended.",
	},
	{
		ID: "q-index-4", Category: diag.CatIndexOutOfRange, Compiler: "quartus",
		Patterns:   []string{"Error (10232)"},
		LogExample: `Error (10232): Verilog HDL error at top.sv(6): index 16 cannot fall outside the declared range [15:0] for vector "data"`,
		Guidance:   "Remember Verilog ranges are inclusive: a vector declared [N-1:0] has valid indices 0 through N-1. An index equal to the width is always one past the end.",
	},
	{
		ID: "q-index-5", Category: diag.CatIndexOutOfRange, Compiler: "quartus",
		Patterns:   []string{"Error (10232)", "reversed with respect to the declaration"},
		LogExample: `Error (10232): Verilog HDL error at top.sv(4): part-select [0:3] is reversed with respect to the declaration [7:0] of "in"`,
		Guidance:   "Match the part-select direction to the declaration: a descending vector [7:0] takes selects written [high:low]. Swap the bounds instead of re-declaring the vector.",
	},

	// --- invalid l-value (10137): 4 entries ---
	{
		ID: "q-lvalue-1", Category: diag.CatInvalidLValue, Compiler: "quartus",
		Patterns:   []string{"Error (10137)", "is not a valid l-value"},
		LogExample: `Error (10137): Verilog HDL error at top.sv(15): "out" is not a valid l-value; procedural assignments require a variable (reg), not a net`,
		Guidance:   "Use assign statements instead of always block if possible. Otherwise change the declaration of the assigned signal from wire to reg (declare the output as 'output reg').",
		Demonstration: "// before: output out;        always @(*) out = a & b;\n" +
			"// after:  output reg out;    always @(*) out = a & b;",
	},
	{
		ID: "q-lvalue-2", Category: diag.CatInvalidLValue, Compiler: "quartus",
		Patterns:   []string{"Error (10137)"},
		LogExample: `Error (10137): Verilog HDL error at top.sv(8): input port "a" cannot be assigned inside the module`,
		Guidance:   "Input ports are read-only inside the module. If the assignment is intentional, the port direction is wrong — change it to output; otherwise assign to an internal signal instead.",
	},
	{
		ID: "q-lvalue-3", Category: diag.CatInvalidLValue, Compiler: "quartus",
		Patterns:   []string{"Error (10137)"},
		LogExample: `Error (10137): Verilog HDL error at top.sv(11): "next_state" is not a valid l-value`,
		Guidance:   "Every signal written inside an always block must be declared as reg (or logic). Audit each assignment target in the block, not just the one in the error message — fixing one often reveals the next.",
	},
	{
		ID: "q-lvalue-4", Category: diag.CatInvalidLValue, Compiler: "quartus",
		Patterns:   []string{"Error (10137)", "parameter"},
		LogExample: `Error (10137): Verilog HDL error at top.sv(6): parameter "WIDTH" cannot be an assignment target`,
		Guidance:   "Parameters are compile-time constants. To compute a runtime value, declare a wire or reg with the same width and assign to that instead.",
	},

	// --- continuous assign to reg (10219): 4 entries ---
	{
		ID: "q-areg-1", Category: diag.CatAssignToReg, Compiler: "quartus",
		Patterns:   []string{"Error (10219)", "continuous assignment to variable"},
		LogExample: `Error (10219): Verilog HDL error at top.sv(7): continuous assignment to variable "out"; 'assign' targets must be nets`,
		Guidance:   "An 'assign' statement drives nets, not regs. Either drop the 'reg' from the declaration, or move the assignment into an 'always @(*)' block.",
		Demonstration: "// before: output reg y;  assign y = a ^ b;\n" +
			"// after:  output y;      assign y = a ^ b;",
	},
	{
		ID: "q-areg-2", Category: diag.CatAssignToReg, Compiler: "quartus",
		Patterns:   []string{"Error (10219)"},
		LogExample: `Error (10219): Verilog HDL error at top.sv(9): continuous assignment to variable "state"`,
		Guidance:   "If the signal is also written by an always block, keep it a reg and delete the conflicting assign statement — a signal must have exactly one driving style.",
	},
	{
		ID: "q-areg-3", Category: diag.CatAssignToReg, Compiler: "quartus",
		Patterns:   []string{"Error (10219)"},
		LogExample: `Error (10219): Verilog HDL error at top.sv(4): continuous assignment to variable "sum"`,
		Guidance:   "Decide the driving style first: combinational results via 'assign' need wire declarations; registered results via always blocks need reg declarations. Make the declaration match the driver.",
	},
	{
		ID: "q-areg-4", Category: diag.CatAssignToReg, Compiler: "quartus",
		Patterns:   []string{"Error (10219)"},
		LogExample: `Error (10219): Verilog HDL error at top.sv(10): continuous assignment to variable "q"`,
		Guidance:   "When converting an always block to assign statements, remember to also change the target declarations from reg back to wire.",
	},

	// --- generic syntax (10170): 5 entries ---
	{
		ID: "q-syntax-1", Category: diag.CatMissingSemicolon, Compiler: "quartus",
		Patterns:   []string{"Error (10170)", "expected ';'"},
		LogExample: `Error (10170): Verilog HDL error at top.sv(6): expected ';' but found 'end'`,
		Guidance:   "The statement on the previous line is missing its terminating semicolon. Add ';' at the end of the statement before the token named in the error.",
	},
	{
		ID: "q-syntax-2", Category: diag.CatMissingSemicolon, Compiler: "quartus",
		Patterns:   []string{"Error (10170)"},
		LogExample: `Error (10170): Verilog HDL error at top.sv(3): expected ';' but found 'assign'`,
		Guidance:   "When the parser reports an unexpected keyword at the start of a new construct, the error is almost always at the end of the previous line — usually a missing semicolon or bracket.",
	},
	{
		ID: "q-syntax-3", Category: diag.CatUnexpectedToken, Compiler: "quartus",
		Patterns:   []string{"Error (10170)", "unexpected"},
		LogExample: `Error (10170): Verilog HDL error at top.sv(8): expected an expression but found ')'`,
		Guidance:   "An operator is missing its operand. Check for doubled operators, trailing commas in port lists, and empty parentheses.",
	},
	{
		ID: "q-syntax-4", Category: diag.CatUnexpectedToken, Compiler: "quartus",
		Patterns:   []string{"Error (10170)"},
		LogExample: `Error (10170): Verilog HDL error at top.sv(2): expected 'module'`,
		Guidance:   "Code outside a module is illegal. Make sure the file starts with a module header and that every statement lies between 'module ...;' and 'endmodule'.",
	},
	{
		ID: "q-syntax-5", Category: diag.CatMalformedLiteral, Compiler: "quartus",
		Patterns:   []string{"Error (10120)", "invalid for base"},
		LogExample: `Error (10120): Verilog HDL error at top.sv(5): digit 'g' is invalid for base 'h'`,
		Guidance:   "Sized literals must use digits legal for their base: 'b takes 0/1, 'o takes 0-7, 'd takes decimal, 'h takes 0-9a-f. Fix the digit or switch the base prefix.",
	},

	// --- begin/end structure (10171): 4 entries ---
	{
		ID: "q-beginend-1", Category: diag.CatUnmatchedBeginEnd, Compiler: "quartus",
		Patterns:   []string{"Error (10171)", "still open"},
		LogExample: `Error (10171): Verilog HDL error at top.sv(14): 'endmodule' reached while a 'begin' (line 6) is still open; missing 'end'`,
		Guidance:   "Count begin/end pairs from the line the error names. Every 'begin' needs a matching 'end'; nested if/else and for bodies are the usual culprits. Indent consistently and add the missing 'end' at the right nesting depth.",
	},
	{
		ID: "q-beginend-2", Category: diag.CatUnmatchedBeginEnd, Compiler: "quartus",
		Patterns:   []string{"Error (10171)"},
		LogExample: `Error (10171): Verilog HDL error at top.sv(12): 'end' without a matching 'begin'`,
		Guidance:   "A surplus 'end' usually means an earlier 'begin' was deleted during editing. Either restore the begin or delete this end; verify case statements close with 'endcase', not 'end'.",
	},
	{
		ID: "q-beginend-3", Category: diag.CatMissingEndmodule, Compiler: "quartus",
		Patterns:   []string{"Error (10171)", "missing 'endmodule'"},
		LogExample: `Error (10171): Verilog HDL error at top.sv(20): reached end of file while inside module 'top'; missing 'endmodule'`,
		Guidance:   "Append 'endmodule' at the end of the module body. If an 'endmodule' exists but the error persists, an unclosed begin/end block before it is swallowing it.",
	},
	{
		ID: "q-beginend-4", Category: diag.CatUnmatchedBeginEnd, Compiler: "quartus",
		Patterns:   []string{"Error (10171)", "endcase"},
		LogExample: `Error (10171): Verilog HDL error at top.sv(18): 'case' at line 9 has no matching 'endcase'`,
		Guidance:   "Close every case/casez/casex with 'endcase'. When a case arm needs multiple statements, wrap them in begin/end inside the arm.",
	},

	// --- C-style syntax (10663): 4 entries ---
	{
		ID: "q-cstyle-1", Category: diag.CatCStyleSyntax, Compiler: "quartus",
		Patterns:   []string{"Error (10663)", "not a Verilog operator"},
		LogExample: `Error (10663): Verilog HDL error at top.sv(7): '++' is not a Verilog operator; use 'i = i + 1' style increments`,
		Guidance:   "Verilog-2001 has no ++/--/+= operators. Expand compound assignments: 'i++' becomes 'i = i + 1', 'x += y' becomes 'x = x + y'.",
		Demonstration: "// before: for (i = 0; i < 8; i++)\n" +
			"// after:  for (i = 0; i < 8; i = i + 1)",
	},
	{
		ID: "q-cstyle-2", Category: diag.CatCStyleSyntax, Compiler: "quartus",
		Patterns:   []string{"Error (10663)", "cannot start a statement"},
		LogExample: `Error (10663): Verilog HDL error at top.sv(9): '{' cannot start a statement; Verilog uses 'begin'/'end' for blocks, not braces`,
		Guidance:   "Braces delimit concatenations in Verilog, not blocks. Replace '{' with 'begin' and '}' with 'end' around statement groups.",
	},
	{
		ID: "q-cstyle-3", Category: diag.CatCStyleSyntax, Compiler: "quartus",
		Patterns:   []string{"Error (10663)"},
		LogExample: `Error (10663): Verilog HDL error at top.sv(11): '+=' is not a Verilog operator`,
		Guidance:   "This construct is C, not Verilog. Rewrite it with explicit Verilog syntax, keeping the same semantics; check the rest of the file for sibling C idioms, they travel in groups.",
	},
	{
		ID: "q-cstyle-4", Category: diag.CatCStyleSyntax, Compiler: "quartus",
		Patterns:   []string{"Error (10663)"},
		LogExample: `Error (10663): Verilog HDL error at top.sv(4): '--' is not a Verilog operator`,
		Guidance:   "Decrement with explicit subtraction: 'i = i - 1'. In non-blocking contexts use 'i <= i - 1'.",
	},

	// --- misplaced directive (10190): 3 entries ---
	{
		ID: "q-directive-1", Category: diag.CatMisplacedDirective, Compiler: "quartus",
		Patterns:   []string{"Error (10190)", "not allowed inside a module"},
		LogExample: "Error (10190): Verilog HDL error at top.sv(5): compiler directive `timescale is not allowed inside a module body",
		Guidance:   "Compiler directives such as `timescale belong at the top of the file, before the module header. Move the directive above 'module' or delete it — synthesis ignores timescale anyway.",
	},
	{
		ID: "q-directive-2", Category: diag.CatMisplacedDirective, Compiler: "quartus",
		Patterns:   []string{"Error (10190)"},
		LogExample: "Error (10190): Verilog HDL error at top.sv(8): compiler directive `define is not allowed inside an always block",
		Guidance:   "Macros must be defined at file scope. For values computed per-module, use 'localparam' instead of `define.",
	},
	{
		ID: "q-directive-3", Category: diag.CatMisplacedDirective, Compiler: "quartus",
		Patterns:   []string{"Error (10190)"},
		LogExample: "Error (10190): Verilog HDL error at top.sv(2): compiler directive `include is not allowed inside a module body",
		Guidance:   "Move the directive to the first lines of the file. If the directive was pasted in by mistake, remove it entirely.",
	},

	// --- duplicate declaration (10028): 4 entries ---
	{
		ID: "q-dup-1", Category: diag.CatDuplicateDecl, Compiler: "quartus",
		Patterns:   []string{"Error (10028)", "already declared"},
		LogExample: `Error (10028): Verilog HDL error at top.sv(8): 'tmp' is already declared at line 7`,
		Guidance:   "Remove or rename one of the declarations. If the two declarations differ in width, keep the one the uses require.",
	},
	{
		ID: "q-dup-2", Category: diag.CatDuplicateDecl, Compiler: "quartus",
		Patterns:   []string{"Error (10028)"},
		LogExample: `Error (10028): Verilog HDL error at top.sv(4): 'out' is already declared at line 2`,
		Guidance:   "ANSI port headers already declare the signal: 'output reg [7:0] out' in the header makes a later 'reg [7:0] out;' in the body redundant — delete the body declaration.",
	},
	{
		ID: "q-dup-3", Category: diag.CatDuplicateDecl, Compiler: "quartus",
		Patterns:   []string{"Error (10028)"},
		LogExample: `Error (10028): Verilog HDL error at top.sv(12): parameter 'N' is already declared`,
		Guidance:   "A parameter defined in the #(...) header cannot be redefined in the body. Keep the header definition and delete the body one.",
	},
	{
		ID: "q-dup-4", Category: diag.CatDuplicateDecl, Compiler: "quartus",
		Patterns:   []string{"Error (10028)"},
		LogExample: `Error (10028): Verilog HDL error at top.sv(9): 'i' is already declared at line 3`,
		Guidance:   "Declare each loop index once per scope. Two always blocks can share a module-level 'integer i;', or each can declare its own inside its begin/end block.",
	},

	// --- port mismatch (10112): 4 entries ---
	{
		ID: "q-port-1", Category: diag.CatPortMismatch, Compiler: "quartus",
		Patterns:   []string{"Error (10112)", "port list"},
		LogExample: `Error (10112): Verilog HDL error at top.sv(3): port 'y' appears in the port list but has no direction declaration`,
		Guidance:   "Every name in a non-ANSI port list needs a direction declaration in the body: add 'input y;' or 'output y;' as intended.",
	},
	{
		ID: "q-port-2", Category: diag.CatPortMismatch, Compiler: "quartus",
		Patterns:   []string{"Error (10112)"},
		LogExample: `Error (10112): Verilog HDL error at top.sv(5): 'en' is declared as a port but does not appear in the module port list`,
		Guidance:   "Add the signal to the module's port list, or demote the declaration to an internal wire/reg if it is not meant to be a port.",
	},
	{
		ID: "q-port-3", Category: diag.CatPortMismatch, Compiler: "quartus",
		Patterns:   []string{"Error (10112)"},
		LogExample: `Error (10112): Verilog HDL error at top.sv(2): declaration of 'data' as [15:0] conflicts with port range [7:0]`,
		Guidance:   "Make the port and net declarations use the same range. Pick the width the module logic actually needs and update both places.",
	},
	{
		ID: "q-port-4", Category: diag.CatPortMismatch, Compiler: "quartus",
		Patterns:   []string{"Error (10112)"},
		LogExample: `Error (10112): Verilog HDL error at top.sv(1): expected ')' in port list`,
		Guidance:   "Check the port list punctuation: ports separate with commas, the list closes with ');', and there is no comma after the final port.",
	},

	// --- non-constant expression (10110): 3 entries ---
	{
		ID: "q-const-1", Category: diag.CatNonConstantExpr, Compiler: "quartus",
		Patterns:   []string{"Error (10110)", "must be constant"},
		LogExample: `Error (10110): Verilog HDL error at top.sv(4): vector range bounds must be constant`,
		Guidance:   "Range bounds may only use literals, parameters, and localparams. Replace the runtime signal in the range with a parameter, or restructure to use an indexed part-select.",
	},
	{
		ID: "q-const-2", Category: diag.CatNonConstantExpr, Compiler: "quartus",
		Patterns:   []string{"Error (10110)", "part-select"},
		LogExample: `Error (10110): Verilog HDL error at top.sv(7): part-select bounds of "data" must be constant`,
		Guidance:   "Variable part-selects need the indexed form: 'data[base +: WIDTH]' where WIDTH is constant and base may vary.",
		Demonstration: "// before: data[i*8+7 : i*8]\n" +
			"// after:  data[i*8 +: 8]",
	},
	{
		ID: "q-const-3", Category: diag.CatNonConstantExpr, Compiler: "quartus",
		Patterns:   []string{"Error (10110)", "replication"},
		LogExample: `Error (10110): Verilog HDL error at top.sv(6): replication count must be constant`,
		Guidance:   "Replication counts {N{...}} must be elaboration-time constants. Use a parameter for N, or rewrite the expression with shifts and masks.",
	},
}

var iverilogEntries = []Entry{
	// --- unable to bind (undeclared): 5 entries ---
	{
		ID: "iv-undecl-1", Category: diag.CatUndeclaredIdent, Compiler: "iverilog",
		Patterns:   []string{"Unable to bind wire/reg/memory"},
		LogExample: "top.sv:5: error: Unable to bind wire/reg/memory `clk' in `top_module'",
		Guidance:   "The named signal has no declaration. If it appears in an event control like 'posedge clk' and the module has no clock port, either add 'input clk' to the port list or make the block combinational with 'always @(*)'.",
	},
	{
		ID: "iv-undecl-2", Category: diag.CatUndeclaredIdent, Compiler: "iverilog",
		Patterns:   []string{"Unable to bind"},
		LogExample: "top.sv:9: error: Unable to bind wire/reg/memory `result_r' in `top_module'",
		Guidance:   "Check spelling against declared names; iverilog reports the exact identifier it could not resolve inside the backquotes.",
	},
	{
		ID: "iv-undecl-3", Category: diag.CatUndeclaredIdent, Compiler: "iverilog",
		Patterns:   []string{"Failed to evaluate event expression"},
		LogExample: "top.sv:5: error: Failed to evaluate event expression 'posedge clk'.",
		Guidance:   "This secondary error follows an unresolved signal in the sensitivity list; fix the binding error above it and this one disappears.",
	},
	{
		ID: "iv-undecl-4", Category: diag.CatUndeclaredIdent, Compiler: "iverilog",
		Patterns:   []string{"Unable to bind"},
		LogExample: "top.sv:12: error: Unable to bind wire/reg/memory `i' in `top_module'",
		Guidance:   "Loop indices need an 'integer i;' declaration before the always block (or an inline 'int i' in SystemVerilog mode).",
	},
	{
		ID: "iv-undecl-5", Category: diag.CatUndeclaredIdent, Compiler: "iverilog",
		Patterns:   []string{"Unable to bind"},
		LogExample: "top.sv:7: error: Unable to bind wire/reg/memory `tmp' in `top_module'",
		Guidance:   "Declare intermediate nets before use: 'wire [W-1:0] tmp;' for assign targets, 'reg' for procedural ones.",
	},

	// --- not a valid l-value: 5 entries ---
	{
		ID: "iv-lvalue-1", Category: diag.CatInvalidLValue, Compiler: "iverilog",
		Patterns:   []string{"is not a valid l-value"},
		LogExample: "top.sv:15: error: out is not a valid l-value in top_module.",
		Guidance:   "Use assign statements instead of always block if possible. Otherwise declare the target as 'reg' — typically by changing 'output out' to 'output reg out'.",
	},
	{
		ID: "iv-lvalue-2", Category: diag.CatInvalidLValue, Compiler: "iverilog",
		Patterns:   []string{"is not a valid l-value"},
		LogExample: "top.sv:8: error: a is not a valid l-value in top_module.",
		Guidance:   "If the reported signal is an input port, the assignment direction is backwards — swap the sides or fix the port direction.",
	},
	{
		ID: "iv-lvalue-3", Category: diag.CatInvalidLValue, Compiler: "iverilog",
		Patterns:   []string{"is not a valid l-value"},
		LogExample: "top.sv:11: error: next_state is not a valid l-value in top_module.",
		Guidance:   "Audit every assignment target in the always block and declare each as reg; the compiler reports them one at a time.",
	},
	{
		ID: "iv-lvalue-4", Category: diag.CatAssignToReg, Compiler: "iverilog",
		Patterns:   []string{"cannot be driven by primitives or continuous assignment"},
		LogExample: "top.sv:7: error: reg out; cannot be driven by primitives or continuous assignment.",
		Guidance:   "An assign statement cannot drive a reg. Remove 'reg' from the declaration or convert the assign into an always block.",
	},
	{
		ID: "iv-lvalue-5", Category: diag.CatAssignToReg, Compiler: "iverilog",
		Patterns:   []string{"cannot be driven"},
		LogExample: "top.sv:9: error: reg q; cannot be driven by primitives or continuous assignment.",
		Guidance:   "Pick one driving style per signal: 'assign' with wire, or always block with reg. Mixing both on the same signal is never legal.",
	},

	// --- index out of range: 4 entries ---
	{
		ID: "iv-index-1", Category: diag.CatIndexOutOfRange, Compiler: "iverilog",
		Patterns:   []string{"is out of range"},
		LogExample: "top.sv:5: error: Index out[8] is out of range.",
		Guidance:   "Indices on [N-1:0] vectors run 0..N-1. Re-derive the index bound from the declaration, not from the element count.",
	},
	{
		ID: "iv-index-2", Category: diag.CatIndexOutOfRange, Compiler: "iverilog",
		Patterns:   []string{"is out of range"},
		LogExample: "top.sv:9: error: Index q[-17] is out of range.",
		Guidance:   "Negative indices come from loop-boundary arithmetic. Evaluate the index expression at the first and last loop iterations and add wrapping or clamping.",
	},
	{
		ID: "iv-index-3", Category: diag.CatIndexOutOfRange, Compiler: "iverilog",
		Patterns:   []string{"is out of range"},
		LogExample: "top.sv:4: error: Part select in[8:1] is out of range.",
		Guidance:   "Both bounds of a part-select must be inside the declared range; slide the window or resize the vector.",
	},
	{
		ID: "iv-index-4", Category: diag.CatIndexOutOfRange, Compiler: "iverilog",
		Patterns:   []string{"is out of range"},
		LogExample: "top.sv:6: error: Index data[16] is out of range.",
		Guidance:   "When a parameter defines the width, index with 'param-1' for the top element; indexing with the parameter itself is one past the end.",
	},

	// --- generic syntax error: 5 entries ---
	{
		ID: "iv-syntax-1", Category: diag.CatMissingSemicolon, Compiler: "iverilog",
		Patterns:   []string{"syntax error"},
		LogExample: "top.sv:6: syntax error",
		Guidance:   "iverilog reports bare 'syntax error' with only a line number. Check that line and the one before it for a missing semicolon, unbalanced parentheses, or a stray character.",
	},
	{
		ID: "iv-syntax-2", Category: diag.CatUnexpectedToken, Compiler: "iverilog",
		Patterns:   []string{"syntax error", "Malformed statement"},
		LogExample: "top.sv:8: syntax error\ntop.sv:8: error: Malformed statement",
		Guidance:   "'Malformed statement' follows the syntax error with the same line: the statement shape itself is wrong. Compare against a known-good statement of the same kind and rebuild it.",
	},
	{
		ID: "iv-syntax-3", Category: diag.CatCStyleSyntax, Compiler: "iverilog",
		Patterns:   []string{"syntax error"},
		LogExample: "top.sv:7: syntax error",
		Guidance:   "If the flagged line uses ++, --, +=, or braces as blocks, those are C idioms: expand increments to 'i = i + 1' and replace braces with begin/end.",
	},
	{
		ID: "iv-syntax-4", Category: diag.CatMalformedLiteral, Compiler: "iverilog",
		Patterns:   []string{"Malformed statement", "syntax error"},
		LogExample: "top.sv:5: error: Malformed statement",
		Guidance:   "Check numeric literals on the flagged line: every digit must be legal for the base ('b: 0-1, 'h: 0-9a-f) and the size prefix must be a plain decimal.",
	},
	{
		ID: "iv-syntax-5", Category: diag.CatSensitivityList, Compiler: "iverilog",
		Patterns:   []string{"Error in event expression"},
		LogExample: "top.sv:5: error: Error in event expression.",
		Guidance:   "The always block's @(...) list is malformed. For combinational logic write 'always @(*)'; for clocked logic 'always @(posedge clk)'. An 'always' with no '@' at all is also illegal in synthesizable code.",
	},

	// --- statement block errors: 4 entries ---
	{
		ID: "iv-block-1", Category: diag.CatUnmatchedBeginEnd, Compiler: "iverilog",
		Patterns:   []string{"Errors in statement block"},
		LogExample: "top.sv:14: syntax error\ntop.sv:14: error: Errors in statement block.",
		Guidance:   "Count begin/end pairs inside the always block; the error line is where the imbalance became fatal, the missing 'end' is usually several lines earlier at the deepest nesting level.",
	},
	{
		ID: "iv-block-2", Category: diag.CatUnmatchedBeginEnd, Compiler: "iverilog",
		Patterns:   []string{"Errors in statement block"},
		LogExample: "top.sv:12: error: Errors in statement block.",
		Guidance:   "If the block uses a case statement, confirm it closes with 'endcase'; an 'end' in its place breaks the whole block.",
	},
	{
		ID: "iv-block-3", Category: diag.CatMissingEndmodule, Compiler: "iverilog",
		Patterns:   []string{"syntax error"},
		LogExample: "top.sv:20: syntax error",
		Guidance:   "A syntax error on the last line of the file usually means a missing 'endmodule' or an unclosed begin block swallowing it. Append the missing terminator.",
	},
	{
		ID: "iv-block-4", Category: diag.CatUnmatchedBeginEnd, Compiler: "iverilog",
		Patterns:   []string{"'end' without a matching"},
		LogExample: "top.sv:12: error: 'end' without a matching 'begin'",
		Guidance:   "Delete the surplus 'end' or restore the 'begin' it used to match; re-indent the block to expose the structure before deciding which.",
	},

	// --- misplaced directive: 3 entries ---
	{
		ID: "iv-directive-1", Category: diag.CatMisplacedDirective, Compiler: "iverilog",
		Patterns:   []string{"macro names cannot be directive keywords"},
		LogExample: "top.sv:5: error: macro names cannot be directive keywords",
		Guidance:   "A backtick directive sits where code is expected. Move `timescale/`define to the top of the file, before the module header.",
	},
	{
		ID: "iv-directive-2", Category: diag.CatMisplacedDirective, Compiler: "iverilog",
		Patterns:   []string{"macro names"},
		LogExample: "top.sv:8: error: macro names cannot be directive keywords",
		Guidance:   "Directives inside always blocks are never legal; delete them — simulation timescale has no effect on synthesizable logic.",
	},
	{
		ID: "iv-directive-3", Category: diag.CatMisplacedDirective, Compiler: "iverilog",
		Patterns:   []string{"macro names"},
		LogExample: "top.sv:2: error: macro names cannot be directive keywords",
		Guidance:   "Keep exactly one `timescale at file top if the testbench needs it; duplicates inside the design must go.",
	},

	// --- give-up degradation: 4 entries ---
	{
		ID: "iv-giveup-1", Category: diag.CatGiveUp, Compiler: "iverilog",
		Patterns:   []string{"I give up."},
		LogExample: "top.sv:3: syntax error\ntop.sv:5: syntax error\nI give up.",
		Guidance:   "The compiler hit too many cascading errors to report usefully. Fix the FIRST flagged line only, recompile, and iterate — later messages are unreliable after the first error.",
	},
	{
		ID: "iv-giveup-2", Category: diag.CatGiveUp, Compiler: "iverilog",
		Patterns:   []string{"I give up."},
		LogExample: "I give up.",
		Guidance:   "With no usable log, fall back to structural review: check module header punctuation, begin/end balance, and statement terminators, in that order — they cause most cascades.",
	},
	{
		ID: "iv-giveup-3", Category: diag.CatGiveUp, Compiler: "iverilog",
		Patterns:   []string{"I give up."},
		LogExample: "top.sv:2: syntax error\nI give up.",
		Guidance:   "An early give-up (first lines of the file) points at the module header itself: verify 'module name (ports);' is wellformed before anything else.",
	},
	{
		ID: "iv-giveup-4", Category: diag.CatGiveUp, Compiler: "iverilog",
		Patterns:   []string{"I give up."},
		LogExample: "top.sv:9: syntax error\nI give up.",
		Guidance:   "Try commenting out half the module body and recompiling to bisect the offending construct when the log carries no detail.",
	},
}
