package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// testOptions disables the background flusher so tests control flush
// timing deterministically.
func testOptions() Options { return Options{NoFlusher: true} }

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	s.Put(KindCompile, 42, []byte("hello"))

	// Visible before any flush (write-behind, in-memory-first).
	if d, ok := s.Get(KindCompile, 42); !ok || string(d) != "hello" {
		t.Fatalf("pending Get = %q, %v", d, ok)
	}
	// A different kind with the same key is a distinct record.
	if _, ok := s.Get(KindSimSource, 42); ok {
		t.Fatal("kind must namespace keys")
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if d, ok := s.Get(KindCompile, 42); !ok || string(d) != "hello" {
		t.Fatalf("journal Get = %q, %v", d, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the journal replays.
	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	if d, ok := s2.Get(KindCompile, 42); !ok || string(d) != "hello" {
		t.Fatalf("reopened Get = %q, %v", d, ok)
	}
	if st := s2.Stats(); st.LoadedAtOpen != 1 {
		t.Fatalf("LoadedAtOpen = %d, want 1", st.LoadedAtOpen)
	}
}

func TestLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	s.Put(KindCompile, 7, []byte("old"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put(KindCompile, 7, []byte("new"))
	if d, _ := s.Get(KindCompile, 7); string(d) != "new" {
		t.Fatalf("pending overwrite not visible: %q", d)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	if d, _ := s2.Get(KindCompile, 7); string(d) != "new" {
		t.Fatalf("replay kept %q, want newest", d)
	}
}

func TestTruncatedJournalTailRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	for i := uint64(0); i < 10; i++ {
		s.Put(KindBenchJob, i, []byte(fmt.Sprintf("record-%d", i)))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: garbage (a torn partial frame) lands
	// on the journal tail.
	path := filepath.Join(dir, "journal.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x04, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	st := s2.Stats()
	if st.RecoveredTailBytes == 0 {
		t.Fatal("expected a recovered torn tail")
	}
	for i := uint64(0); i < 10; i++ {
		if d, ok := s2.Get(KindBenchJob, i); !ok || string(d) != fmt.Sprintf("record-%d", i) {
			t.Fatalf("record %d lost after recovery: %q, %v", i, d, ok)
		}
	}
	// The recovered journal accepts appends again.
	s2.Put(KindBenchJob, 99, []byte("after-recovery"))
	if err := s2.Flush(); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestCorruptedRecordBodyStopsReplayAtLastGood(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	s.Put(KindCompile, 1, []byte("first"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put(KindCompile, 2, []byte("second"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a byte inside the second record's payload: its CRC fails, so
	// replay must keep the first record and truncate from the second.
	path := filepath.Join(dir, "journal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.LastIndex(data, []byte("second"))
	if idx < 0 {
		t.Fatal("payload not found in journal")
	}
	data[idx] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	if _, ok := s2.Get(KindCompile, 1); !ok {
		t.Fatal("record before the corruption must survive")
	}
	if _, ok := s2.Get(KindCompile, 2); ok {
		t.Fatal("corrupt record must not be served")
	}
}

func TestStaleJournalSchemaRotatedAside(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	s.Put(KindCompile, 5, []byte("v1-data"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Pretend a future version wrote this journal.
	path := filepath.Join(dir, "journal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 0xff // version field
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	if _, ok := s2.Get(KindCompile, 5); ok {
		t.Fatal("a stale-schema journal must be ignored, not parsed")
	}
	if _, err := os.Stat(path + ".stale"); err != nil {
		t.Fatalf("stale journal should be rotated aside: %v", err)
	}
	// And the fresh journal works.
	s2.Put(KindCompile, 6, []byte("fresh"))
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionMovesRecordsToCAS(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	s := openTest(t, dir, opts)
	for i := uint64(0); i < 50; i++ {
		s.Put(KindCompile, i, bytes.Repeat([]byte{byte(i)}, 100))
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.CASFiles != 50 || st.JournalRecords != 0 || st.JournalBytes != 0 {
		t.Fatalf("after compact: %+v", st)
	}
	for i := uint64(0); i < 50; i++ {
		if d, ok := s.Get(KindCompile, i); !ok || len(d) != 100 || d[0] != byte(i) {
			t.Fatalf("record %d unreadable from CAS", i)
		}
	}
	s.Close()

	// Reopen: everything loads from CAS files.
	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	if st := s2.Stats(); st.LoadedAtOpen != 50 || st.CASFiles != 50 {
		t.Fatalf("reopen after compaction: %+v", st)
	}
	if d, ok := s2.Get(KindCompile, 13); !ok || d[0] != 13 {
		t.Fatal("CAS record lost across reopen")
	}
}

func TestAutoCompactionOnBudget(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.CompactBytes = 512
	s := openTest(t, dir, opts)
	for i := uint64(0); i < 40; i++ {
		s.Put(KindSimSource, i, bytes.Repeat([]byte("x"), 64))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("journal over budget must compact: %+v", st)
	}
	if st.JournalBytes > 512 {
		t.Fatalf("journal not truncated: %+v", st)
	}
	s.Close()
}

func TestCorruptCASFileDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	s.Put(KindCompile, 77, []byte("precious"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	path := s.casPath(recID{KindCompile, 77})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindCompile, 77); ok {
		t.Fatal("corrupt CAS record must miss, not serve garbage")
	}
	// The miss evicted the bad index entry; a rewrite repairs it.
	s.Put(KindCompile, 77, []byte("rewritten"))
	if d, ok := s.Get(KindCompile, 77); !ok || string(d) != "rewritten" {
		t.Fatalf("rewrite after corruption: %q, %v", d, ok)
	}
	s.Close()
}

func TestLoadStreamsAllTiers(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	s.Put(KindBenchJob, 1, []byte("cas"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Put(KindBenchJob, 2, []byte("journal"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put(KindBenchJob, 3, []byte("pending"))
	s.Put(KindCompile, 4, []byte("other-kind"))

	got := map[uint64]string{}
	s.Load(KindBenchJob, func(key uint64, data []byte) { got[key] = string(data) })
	want := map[uint64]string{1: "cas", 2: "journal", 3: "pending"}
	if len(got) != len(want) {
		t.Fatalf("Load = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Load[%d] = %q, want %q", k, got[k], v)
		}
	}
	s.Close()
}

func TestConcurrentPutGetFlush(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.CompactBytes = 2048 // force compactions mid-churn
	s := openTest(t, dir, opts)
	defer s.Close()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := uint64(w*1000 + i%50)
				s.Put(KindCompile, key, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if d, ok := s.Get(KindCompile, key); !ok || len(d) == 0 {
					t.Errorf("lost own write for key %d", key)
					return
				}
				if i%40 == 0 {
					_ = s.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if st := s.Stats(); st.IOErrors != 0 {
		t.Fatalf("io errors under churn: %+v", st)
	}
}

// TestSingleWriterLock: a second process (here: a second Open) on one
// state dir must be refused — concurrent journal appenders would
// interleave frames and the next replay would discard the overlap.
func TestSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	if _, err := Open(dir, testOptions()); err == nil {
		t.Fatal("second Open on a live state dir must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock dies with its owner: reopen succeeds.
	s2 := openTest(t, dir, testOptions())
	s2.Close()
}

// TestOversizedPutRejected: a record too large to replay must never
// reach the journal, where it would read as a torn tail at the next
// Open and take every later record with it.
func TestOversizedPutRejected(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	s.Put(KindCompile, 1, make([]byte, maxFrame+1))
	s.Put(KindCompile, 2, []byte("normal"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindCompile, 1); ok {
		t.Fatal("oversized record must be dropped")
	}
	if st := s.Stats(); st.IOErrors == 0 {
		t.Fatalf("drop must be visible in stats: %+v", st)
	}
	s.Close()

	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	if _, ok := s2.Get(KindCompile, 2); !ok {
		t.Fatal("records after the rejected one must survive the reopen")
	}
}

func TestEncoderDecoderRoundtrip(t *testing.T) {
	var e Encoder
	e.U8(3)
	e.Bool(true)
	e.String("hello\x00world")
	e.Varint(-12345)
	e.U64(1<<63 + 5)
	e.I64(-9)
	e.U32(77)
	e.String("")

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 3 {
		t.Fatalf("U8 = %d", v)
	}
	if !d.Bool() {
		t.Fatal("Bool")
	}
	if v := d.String(); v != "hello\x00world" {
		t.Fatalf("String = %q", v)
	}
	if v := d.Varint(); v != -12345 {
		t.Fatalf("Varint = %d", v)
	}
	if v := d.U64(); v != 1<<63+5 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.I64(); v != -9 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.U32(); v != 77 {
		t.Fatalf("U32 = %d", v)
	}
	if v := d.String(); v != "" {
		t.Fatalf("empty String = %q", v)
	}
	if !d.Ok() {
		t.Fatalf("decoder not Ok: %v", d.Err())
	}
	// Truncation is an error, not a panic.
	d2 := NewDecoder(e.Bytes()[:3])
	_ = d2.U8()
	_ = d2.String()
	if d2.Err() == nil {
		t.Fatal("truncated payload must error")
	}
}

func TestFlushLagAndCounters(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	defer s.Close()
	s.Put(KindCompile, 1, []byte("x"))
	st := s.Stats()
	if st.Pending != 1 || st.Stores != 1 {
		t.Fatalf("stats after put: %+v", st)
	}
	if st.FlushLagMS < 0 {
		t.Fatalf("negative flush lag: %v", st.FlushLagMS)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Pending != 0 || st.FlushLagMS != 0 || st.Flushes == 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	s.Get(KindCompile, 1)
	s.Get(KindCompile, 2)
	st = s.Stats()
	if st.Loads != 2 || st.LoadHits != 1 {
		t.Fatalf("load counters: %+v", st)
	}
	if st.ByKind["compile"] != 1 {
		t.Fatalf("by-kind counters: %+v", st.ByKind)
	}
	// Re-putting a durable key must not double-count it, and must
	// restart the flush-lag clock.
	s.Put(KindCompile, 1, []byte("y"))
	st = s.Stats()
	if st.Records != 1 || st.ByKind["compile"] != 1 {
		t.Fatalf("re-put double-counted: %+v", st)
	}
	if st.Pending != 1 || st.FlushLagMS < 0 {
		t.Fatalf("re-put lag accounting: %+v", st)
	}
}
