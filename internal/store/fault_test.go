package store

import (
	"fmt"
	"testing"

	"repro/internal/fault"
)

// putN writes n distinct compile records and returns a checker that
// asserts all n are readable from the given store.
func putN(s *Store, n int) func(t *testing.T, s *Store, phase string) {
	for i := 0; i < n; i++ {
		s.Put(KindCompile, uint64(1000+i), []byte(fmt.Sprintf("record-%d", i)))
	}
	return func(t *testing.T, s *Store, phase string) {
		t.Helper()
		for i := 0; i < n; i++ {
			d, ok := s.Get(KindCompile, uint64(1000+i))
			if !ok || string(d) != fmt.Sprintf("record-%d", i) {
				t.Fatalf("%s: record %d = %q, %v", phase, i, d, ok)
			}
		}
	}
}

// TestWriteFaultFlushRetryRecovers: a transient write fault mid-append
// is absorbed by the in-flush retry — the flush succeeds, nothing is
// lost, and the retry is counted.
func TestWriteFaultFlushRetryRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	check := putN(s, 20)

	r := fault.MustParse("store.write.error:1", 3)
	if err := r.SetLimit(StoreWriteFault, 1); err != nil {
		t.Fatal(err)
	}
	fault.Install(r)
	err := s.Flush()
	fault.Uninstall()
	if err != nil {
		t.Fatalf("flush with one transient write fault should retry through: %v", err)
	}
	st := s.Stats()
	if st.FlushRetries == 0 || st.Degraded {
		t.Fatalf("stats = retries %d degraded %v", st.FlushRetries, st.Degraded)
	}
	check(t, s, "after retried flush")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	check(t, s2, "after reopen")
}

// TestPersistentWriteFaultKeepsRecords: when every append attempt fails
// the flush errors but the batch stays pending; once the fault clears,
// the next flush lands everything and a reopen sees every record.
func TestPersistentWriteFaultKeepsRecords(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	check := putN(s, 20)

	fault.Install(fault.MustParse("store.write.error:1", 3))
	if err := s.Flush(); err == nil {
		t.Fatal("flush under a persistent write fault should fail")
	}
	check(t, s, "mid-outage (served from pending)")
	fault.Uninstall()

	if err := s.Flush(); err != nil {
		t.Fatalf("post-outage flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	check(t, s2, "after reopen")
}

// TestTornWriteMidAppendRecovers: an append that lands half the batch
// then dies (the fsync-less crash shape) must leave the store
// reopenable with no record loss — the retry overwrites the torn bytes
// at the same offset; even closing during the outage only risks the
// never-acknowledged tail, and Open truncates the torn frames cleanly.
func TestTornWriteMidAppendRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	check := putN(s, 20)

	// One torn write, then clean: the in-flush retry rewrites in place.
	r := fault.MustParse("store.write.torn:1", 5)
	if err := r.SetLimit(StoreTornFault, 1); err != nil {
		t.Fatal(err)
	}
	fault.Install(r)
	err := s.Flush()
	fault.Uninstall()
	if err != nil {
		t.Fatalf("flush with one torn write should retry through: %v", err)
	}
	check(t, s, "after torn-then-retried flush")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, testOptions())
	check(t, s2, "after reopen")
	if st := s2.Stats(); st.RecoveredTailBytes != 0 {
		t.Fatalf("clean journal reported %d torn bytes", st.RecoveredTailBytes)
	}
	s2.Close()

	// Persistently torn: every flush fails, the journal tail is garbage.
	// Reopen must truncate it and keep every earlier durable record.
	s3 := openTest(t, dir, testOptions())
	s3.Put(KindCompile, 7777, []byte("late-unflushed"))
	fault.Install(fault.MustParse("store.write.torn:1", 5))
	if err := s3.Flush(); err == nil {
		t.Fatal("flush under persistent torn writes should fail")
	}
	fault.Uninstall()
	// Simulate the crash: no clean close path; reopen over the dirty dir.
	s3.journal.Close()
	s3.lock.Close()

	s4 := openTest(t, dir, testOptions())
	defer s4.Close()
	check(t, s4, "after crash with torn tail")
	if st := s4.Stats(); st.RecoveredTailBytes == 0 {
		t.Fatal("torn tail not reported as recovered")
	}
}

// TestFsyncFaultMidAppend: fsync failures behave like write failures —
// retried, and never lose acknowledged records.
func TestFsyncFaultMidAppend(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	check := putN(s, 10)

	fault.Install(fault.MustParse("store.fsync.error:1", 9))
	if err := s.Flush(); err == nil {
		t.Fatal("flush under persistent fsync faults should fail")
	}
	fault.Uninstall()
	if err := s.Flush(); err != nil {
		t.Fatalf("recovered flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	check(t, s2, "after reopen")
}

// TestCASFaultMidCompaction: a CAS write failure aborts compaction, but
// the journal is untouched (durable-before-truncate), so every record
// survives — both live and across a reopen — and a later compaction
// succeeds.
func TestCASFaultMidCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	check := putN(s, 20)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	fault.Install(fault.MustParse("store.cas.error:1", 2))
	if err := s.Compact(); err == nil {
		t.Fatal("compaction under CAS faults should fail")
	}
	fault.Uninstall()
	check(t, s, "after aborted compaction")

	if err := s.Compact(); err != nil {
		t.Fatalf("post-outage compaction: %v", err)
	}
	st := s.Stats()
	if st.CASFiles != 20 || st.JournalRecords != 0 {
		t.Fatalf("post-compaction layout: %+v", st)
	}
	check(t, s, "after successful compaction")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	check(t, s2, "after reopen from CAS")
}

// TestReadFaultDoesNotEvict: a single transient read fault must not
// evict a live durable record — eviction needs two consecutive failures
// at the same location.
func TestReadFaultDoesNotEvict(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	defer s.Close()
	s.Put(KindCompile, 500, []byte("precious"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Drop the in-memory copies so Get must hit the journal.
	s.mu.Lock()
	s.pending = map[recID][]byte{}
	s.pendingOrder = nil
	s.inflight = map[recID][]byte{}
	s.mu.Unlock()

	r := fault.MustParse("store.read.error:1", 4)
	if err := r.SetLimit(StoreReadFault, 1); err != nil {
		t.Fatal(err)
	}
	fault.Install(r)
	d, ok := s.Get(KindCompile, 500)
	fault.Uninstall()
	if !ok || string(d) != "precious" {
		t.Fatalf("one transient read fault lost the record: %q, %v", d, ok)
	}
	if st := s.Stats(); st.Records != 1 {
		t.Fatalf("record evicted: %+v", st)
	}
}

// TestDegradedModeShedsAndRecovers: DegradeAfter consecutive failed
// flushes flip the store into degraded mode — Puts past the cap are
// shed and counted, Brief/Stats carry the flag — and one good flush
// recovers it with the retained pending records intact on disk.
func TestDegradedModeShedsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{NoFlusher: true, DegradeAfter: 2, FlushBatch: 4})
	defer s.Close()
	check := putN(s, 8)

	fault.Install(fault.MustParse("store.write.error:1", 6))
	for i := 0; i < 2; i++ {
		if err := s.Flush(); err == nil {
			t.Fatal("flush should fail under the fault")
		}
	}
	if !s.Degraded() || !s.Brief().Degraded {
		t.Fatal("store not degraded after DegradeAfter failures")
	}
	// Pending is at 8 < cap (4*4=16): these still land.
	for i := 0; i < 8; i++ {
		s.Put(KindCompile, uint64(2000+i), []byte("kept"))
	}
	// Now at the cap: new identities are shed, and served misses.
	s.Put(KindCompile, 9999, []byte("shed"))
	if _, ok := s.Get(KindCompile, 9999); ok {
		t.Fatal("shed put should not be visible")
	}
	st := s.Stats()
	if !st.Degraded || st.DroppedPuts != 1 {
		t.Fatalf("degraded stats: %+v", st)
	}
	fault.Uninstall()

	if err := s.Flush(); err != nil {
		t.Fatalf("recovery flush: %v", err)
	}
	if s.Degraded() {
		t.Fatal("store still degraded after a successful flush")
	}
	check(t, s, "after recovery")
	if d, ok := s.Get(KindCompile, 2000); !ok || string(d) != "kept" {
		t.Fatalf("degraded-window put lost: %q, %v", d, ok)
	}
}

// The fault package's point names, aliased so the SetLimit calls above
// read clearly (and fail to compile if the catalog drifts).
const (
	StoreWriteFault = fault.StoreWrite
	StoreTornFault  = fault.StoreTorn
	StoreReadFault  = fault.StoreRead
)
