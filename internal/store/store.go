// Package store is the durable, content-addressed state layer under the
// memoization caches and the benchmark runner: an on-disk CAS plus an
// append-only journal, built so every byte read back is either verified
// or ignored — never misread.
//
// Layout of a state directory:
//
//	state/
//	  journal.log          append-only record log (write-behind target)
//	  cas/<xx>/<kk>-<key>.rec   one compacted record per file
//
// Records are content-addressed by a 64-bit FNV-64a key chosen by the
// consumer (the same hash family the memo layer uses), namespaced by a
// one-byte Kind. The store guarantees integrity, not uniqueness: a CRC32
// guards every record, and consumers keep enough of the original content
// inside the payload to detect an FNV collision and degrade it to a miss.
//
// Durability model (the DAQ journal-and-compact pattern from PAPERS.md):
//
//   - Put is write-behind: records accumulate in memory and a background
//     flusher appends them to the journal in batches (fsync per flush),
//     so the serving hot path never waits on disk.
//   - The journal grows until CompactBytes, then compaction rewrites each
//     journal-resident record as its own CAS file (temp file + rename,
//     both fsynced) and truncates the journal — the snapshot.
//   - Open replays CAS files then the journal (journal wins). A torn or
//     corrupt journal tail — the normal result of a crash mid-append — is
//     detected by CRC/short-read and truncated back to the last good
//     record; the process recovers instead of failing.
//   - Both the journal and CAS files carry a versioned schema header.
//     A header from a different version is ignored wholesale (the
//     journal is rotated aside, the CAS file skipped), never parsed.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/resilience"
)

// Kind namespaces records: each persistence adapter owns one. The byte is
// part of every record's identity on disk, so adapters never collide.
type Kind uint8

// Registered record kinds. New adapters claim the next free value; a kind
// is a schema commitment, so values are never reused.
const (
	// KindCompile is a compiler persona result (internal/memo CompileCache).
	KindCompile Kind = 1
	// KindSimSource is a simulation-oracle source text (memo SimCache):
	// replay-style persistence, the record is the input to recompile.
	KindSimSource Kind = 2
	// KindRetrieval is a precompiled retrieval index image (memo).
	KindRetrieval Kind = 3
	// KindBenchJob is one completed benchmark job outcome (internal/bench).
	KindBenchJob Kind = 4
)

// KindName names a kind for stats output.
func KindName(k Kind) string {
	switch k {
	case KindCompile:
		return "compile"
	case KindSimSource:
		return "sim-source"
	case KindRetrieval:
		return "retrieval"
	case KindBenchJob:
		return "bench-job"
	}
	return fmt.Sprintf("kind-%d", k)
}

// Backing is the slice of Store the persistence adapters consume. It is
// an interface so tests can substitute an in-memory fake, and so packages
// above the adapters (core, bench) can accept "some durable backing"
// without committing to the on-disk implementation.
type Backing interface {
	// Get returns the stored payload for (kind, key), or false. The
	// payload has already passed the CRC check; collision detection
	// against the original content is the caller's job.
	Get(kind Kind, key uint64) ([]byte, bool)
	// Put schedules a payload for durable storage (write-behind: it is
	// immediately visible to Get, durable after the next flush).
	Put(kind Kind, key uint64, data []byte)
	// Load streams every live record of one kind, in unspecified order.
	Load(kind Kind, fn func(key uint64, data []byte))
	// Flush forces pending writes to durable storage.
	Flush() error
}

// Options tunes a Store. The zero value is serving-sensible.
type Options struct {
	// FlushInterval is the write-behind cadence; <= 0 means 200ms.
	FlushInterval time.Duration
	// FlushBatch is the pending-record count that triggers an immediate
	// flush ahead of the interval; <= 0 means 256.
	FlushBatch int
	// CompactBytes is the journal size that triggers compaction into CAS
	// files; <= 0 means 8 MiB.
	CompactBytes int64
	// NoFlusher disables the background flusher; callers drive Flush
	// themselves (tests, one-shot CLIs that flush at exit).
	NoFlusher bool
	// DegradeAfter is how many consecutive failed flushes (each already
	// retried internally) put the store into degraded, in-memory-only
	// mode; <= 0 means 3. A later successful flush recovers it.
	DegradeAfter int
	// Logf, when non-nil, receives one line per lifecycle event (open,
	// recovery, compaction) — never one per record.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FlushInterval <= 0 {
		o.FlushInterval = 200 * time.Millisecond
	}
	if o.FlushBatch <= 0 {
		o.FlushBatch = 256
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 8 << 20
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 3
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// recID is a record's identity: kind plus content address.
type recID struct {
	kind Kind
	key  uint64
}

// loc says where a live record's durable copy is.
type loc struct {
	// journal is true when the record lives in the journal at [off, off+n);
	// false means a CAS file (path derived from the id).
	journal bool
	off     int64
	n       int
}

// Stats is a point-in-time snapshot of the store, JSON-ready for
// /v1/stats embedding.
type Stats struct {
	Dir            string `json:"dir"`
	Records        int    `json:"records"`
	CASFiles       int    `json:"cas_files"`
	JournalRecords int    `json:"journal_records"`
	JournalBytes   int64  `json:"journal_bytes"`
	Pending        int    `json:"pending"`
	// FlushLagMS is the age of the oldest unflushed Put (0 when clean):
	// the window of work a crash right now would lose.
	FlushLagMS float64 `json:"flush_lag_ms"`
	// LoadedAtOpen counts records the last Open found on disk.
	LoadedAtOpen int `json:"loaded_at_open"`
	// RecoveredTailBytes is how much torn journal tail Open truncated.
	RecoveredTailBytes int64 `json:"recovered_tail_bytes"`
	// ByKind counts live records per kind name.
	ByKind map[string]int `json:"by_kind"`

	Loads       uint64 `json:"loads"`
	LoadHits    uint64 `json:"load_hits"`
	Stores      uint64 `json:"stores"`
	Flushes     uint64 `json:"flushes"`
	Compactions uint64 `json:"compactions"`
	IOErrors    uint64 `json:"io_errors"`

	// FlushRetries counts journal appends that needed an internal retry;
	// Degraded and DroppedPuts describe the degradation ladder's bottom
	// rung (consecutive flush failures → serve from memory, shed writes
	// beyond a cap instead of growing without bound).
	FlushRetries uint64 `json:"flush_retries"`
	Degraded     bool   `json:"degraded"`
	DroppedPuts  uint64 `json:"dropped_puts"`
}

// Store is the on-disk implementation of Backing. All methods are safe
// for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu sync.Mutex
	// pending holds written-behind records not yet handed to the flusher;
	// inflight holds the batch currently being written. Get consults
	// both before the durable index, so a Put is immediately visible.
	pending      map[recID][]byte
	pendingOrder []recID
	inflight     map[recID][]byte
	firstPending time.Time
	index        map[recID]loc
	journalSize  int64

	journal *os.File
	// lock holds the state directory's flock for the store's lifetime
	// (released by Close, or by the OS when the process dies).
	lock *os.File

	// flushMu serializes Flush/compaction (single journal writer).
	flushMu sync.Mutex

	kick      chan struct{}
	closeOnce sync.Once
	stop      chan struct{}
	flusherWG sync.WaitGroup

	// counters (guarded by mu; reads via Stats take mu too).
	loads, loadHits, stores uint64
	flushes, compactions    uint64
	ioErrors                uint64
	loadedAtOpen            int
	recoveredTail           int64

	// Degradation ladder state (guarded by mu). consecFlushFails counts
	// back-to-back failed flushes; at opts.DegradeAfter the store goes
	// degraded: serving continues from memory, but pending stops growing
	// past degradedPendingCap (excess Puts are dropped and counted). The
	// next successful flush recovers.
	consecFlushFails int
	degraded         bool
	flushRetries     uint64
	droppedPuts      uint64
}

// degradedPendingCap bounds pending growth while degraded, as a multiple
// of the flush batch.
const degradedPendingCap = 4

// Open opens (or initializes) the state directory and replays its
// contents into the in-memory index. A corrupt journal tail is truncated
// to the last good record; a journal with an unknown schema version is
// rotated aside untouched and a fresh one started.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, casDir), 0o777); err != nil {
		return nil, fmt.Errorf("store: init %s: %w", dir, err)
	}
	// Single-writer exclusivity: two processes appending to one journal
	// would interleave frames at clashing offsets and the next replay
	// would discard everything past the first overlap as a torn tail.
	// flock (not a lock file) so a crashed owner's lock dies with it and
	// recovery is never blocked by stale state.
	lockFile, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, fmt.Errorf("store: open lock: %w", err)
	}
	if err := syscall.Flock(int(lockFile.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lockFile.Close()
		return nil, fmt.Errorf("store: %s is in use by another process (flock: %w)", dir, err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		lock:     lockFile,
		pending:  map[recID][]byte{},
		inflight: map[recID][]byte{},
		index:    map[recID]loc{},
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	if err := s.scanCAS(); err != nil {
		lockFile.Close()
		return nil, err
	}
	if err := s.openJournal(); err != nil {
		lockFile.Close()
		return nil, err
	}
	s.loadedAtOpen = len(s.index)
	opts.logf("store: opened %s (%d records, %d journal bytes, recovered %d tail bytes)",
		dir, len(s.index), s.journalSize-journalHeaderSize, s.recoveredTail)
	if !opts.NoFlusher {
		s.flusherWG.Add(1)
		go s.flusher()
	}
	return s, nil
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// scanCAS indexes every readable CAS file. Unreadable or stale-format
// files are skipped (ignored, not misread); they are overwritten by the
// next compaction of a record with the same identity.
func (s *Store) scanCAS() error {
	root := filepath.Join(s.dir, casDir)
	fanouts, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", root, err)
	}
	n := 0
	for _, fan := range fanouts {
		if !fan.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, fan.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			id, ok := parseCASName(f.Name())
			if !ok {
				continue
			}
			// Header check only at scan time; payload CRC is verified
			// lazily on Get/Load, where a bad record degrades to a miss.
			if !casHeaderOK(filepath.Join(root, fan.Name(), f.Name())) {
				continue
			}
			s.index[id] = loc{journal: false}
			n++
		}
	}
	return nil
}

// openJournal opens, validates, and replays the journal. Records replayed
// from the journal override CAS entries with the same identity (they are
// newer by construction: compaction truncates the journal).
func (s *Store) openJournal() error {
	path := s.journalPath()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return fmt.Errorf("store: open journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat journal: %w", err)
	}
	switch {
	case st.Size() == 0:
		if err := writeJournalHeader(f); err != nil {
			f.Close()
			return err
		}
		s.journal, s.journalSize = f, journalHeaderSize
		return nil
	case st.Size() < journalHeaderSize || !journalHeaderOK(f):
		// Unknown schema (or a file too short to even carry one): rotate
		// the old journal aside rather than parse or destroy it.
		f.Close()
		stale := path + ".stale"
		_ = os.Remove(stale)
		if err := os.Rename(path, stale); err != nil {
			return fmt.Errorf("store: rotate stale journal: %w", err)
		}
		s.opts.logf("store: journal schema unknown; rotated to %s", stale)
		return s.openJournal()
	}

	// Replay: read frames until the tail stops verifying, then truncate
	// there — the crash-recovery invariant.
	good, ids, err := replayJournal(f, func(id recID, off int64, n int) {
		s.index[id] = loc{journal: true, off: off, n: n}
	})
	if err != nil {
		f.Close()
		return err
	}
	if good < st.Size() {
		s.recoveredTail = st.Size() - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate torn journal tail: %w", err)
		}
		s.opts.logf("store: recovered journal: truncated %d torn tail bytes after %d good records",
			s.recoveredTail, ids)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: seek journal: %w", err)
	}
	s.journal, s.journalSize = f, good
	return nil
}

// Get implements Backing.
func (s *Store) Get(kind Kind, key uint64) ([]byte, bool) {
	id := recID{kind, key}
	s.mu.Lock()
	s.loads++
	if d, ok := s.pending[id]; ok {
		s.loadHits++
		s.mu.Unlock()
		return d, true
	}
	if d, ok := s.inflight[id]; ok {
		s.loadHits++
		s.mu.Unlock()
		return d, true
	}
	s.mu.Unlock()
	d, ok := s.getDurable(id)
	if ok {
		s.mu.Lock()
		s.loadHits++
		s.mu.Unlock()
	}
	return d, ok
}

// getDurable reads the durable copy of a record without holding the
// store mutex across disk I/O (Put and concurrent Gets must never stall
// on a file read). The loc snapshot can go stale while we read — a
// compaction may move the record from journal to CAS — so a failed read
// retries once against the current index entry and only evicts the
// record when the entry we read is still the live one.
func (s *Store) getDurable(id recID) ([]byte, bool) {
	s.mu.Lock()
	l, ok := s.index[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	sameLocFails := 0
	for attempt := 0; attempt < 3; attempt++ {
		d, err := s.readRecord(id, l)
		if err == nil {
			return d, true
		}
		s.mu.Lock()
		cur, ok := s.index[id]
		switch {
		case !ok:
			s.mu.Unlock()
			return nil, false
		case cur == l:
			// Evict only after two consecutive failures at the same loc:
			// real corruption fails deterministically (the second read
			// confirms it, and the consumer recomputes and rewrites),
			// while a transient I/O blip — or an injected store.read
			// fault — must not cost a live record.
			sameLocFails++
			if sameLocFails >= 2 {
				delete(s.index, id)
				s.ioErrors++
				s.mu.Unlock()
				return nil, false
			}
		default:
			l = cur // moved by a concurrent compaction; retry there
			sameLocFails = 0
		}
		s.mu.Unlock()
	}
	return nil, false
}

// readRecord fetches and verifies one durable record. Safe without the
// store mutex: the journal handle is fixed for the store's lifetime,
// ReadAt carries no file-position state, and CAS files only ever appear
// whole via rename — a stale loc fails verification, it cannot misread.
func (s *Store) readRecord(id recID, l loc) ([]byte, error) {
	fault.Delay(fault.StoreSlow)
	if err := fault.Err(fault.StoreRead); err != nil {
		return nil, err
	}
	if l.journal {
		buf := make([]byte, l.n)
		if _, err := s.journal.ReadAt(buf, l.off); err != nil {
			return nil, err
		}
		gotID, data, ok := decodeFrame(buf)
		if !ok || gotID != id {
			return nil, fmt.Errorf("store: journal record %x corrupt", id.key)
		}
		return data, nil
	}
	return readCASFile(s.casPath(id), id)
}

// Put implements Backing. It never blocks on disk; durability follows at
// the next flush (background, or explicit Flush/Close).
func (s *Store) Put(kind Kind, key uint64, data []byte) {
	if len(data) > maxFrame-frameHeaderSize {
		// An oversized frame must never reach the journal: replay rejects
		// frames above maxFrame, so one would read as a torn tail at the
		// next Open and take every later record down with it.
		s.mu.Lock()
		s.ioErrors++
		s.mu.Unlock()
		s.opts.logf("store: dropping oversized %s record %016x (%d bytes)", KindName(kind), key, len(data))
		return
	}
	id := recID{kind, key}
	d := append([]byte(nil), data...) // callers may reuse their buffer
	s.mu.Lock()
	if s.degraded && len(s.pending) >= degradedPendingCap*s.opts.FlushBatch {
		// Degraded mode: the disk is refusing writes, so pending would
		// grow without bound. Shed the write — the caller's in-memory
		// cache still holds the result; only durability is lost.
		s.droppedPuts++
		s.mu.Unlock()
		return
	}
	if _, dup := s.pending[id]; !dup {
		s.pendingOrder = append(s.pendingOrder, id)
	}
	if len(s.pending) == 0 {
		s.firstPending = time.Now()
	}
	s.pending[id] = d
	s.stores++
	full := len(s.pending) >= s.opts.FlushBatch
	s.mu.Unlock()
	if full {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

// Load implements Backing.
func (s *Store) Load(kind Kind, fn func(key uint64, data []byte)) {
	// Snapshot identities under the lock, read durable payloads outside
	// it (a warm load must not freeze every concurrent Put/Get), then
	// deliver so fn may take its own locks freely.
	type rec struct {
		key  uint64
		data []byte
	}
	var out []rec
	var durable []recID
	s.mu.Lock()
	seen := map[uint64]bool{}
	for id, d := range s.pending {
		if id.kind == kind {
			out = append(out, rec{id.key, d})
			seen[id.key] = true
		}
	}
	for id, d := range s.inflight {
		if id.kind == kind && !seen[id.key] {
			out = append(out, rec{id.key, d})
			seen[id.key] = true
		}
	}
	for id := range s.index {
		if id.kind == kind && !seen[id.key] {
			durable = append(durable, id)
		}
	}
	s.mu.Unlock()
	for _, id := range durable {
		if d, ok := s.getDurable(id); ok {
			out = append(out, rec{id.key, d})
		}
	}
	// Deterministic delivery order makes warm-start behaviour (e.g. which
	// entries survive a capacity-bounded load) reproducible.
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	for _, r := range out {
		fn(r.key, r.data)
	}
}

// Flush implements Backing: drain pending records to the journal and
// fsync. Compaction follows when the journal has outgrown its budget.
func (s *Store) Flush() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		return s.maybeCompact()
	}
	batch := s.pending
	order := s.pendingOrder
	s.inflight = batch
	s.pending = map[recID][]byte{}
	s.pendingOrder = nil
	base := s.journalSize
	s.mu.Unlock()

	// Encode the whole batch into one buffer, append, one fsync.
	var buf []byte
	offs := make(map[recID]loc, len(batch))
	at := base
	for _, id := range order {
		frame := encodeFrame(id, batch[id])
		offs[id] = loc{journal: true, off: at, n: len(frame)}
		at += int64(len(frame))
		buf = append(buf, frame...)
	}
	// Append with a short bounded retry: disk hiccups (and injected
	// write/fsync faults) are usually transient, and a rewrite at the
	// same base offset is idempotent — a torn first attempt is simply
	// overwritten by the retry before anything references it.
	stats, werr := flushRetryPolicy.Do(func() error {
		return resilience.MarkTransient(s.appendBatch(buf, base))
	})

	s.mu.Lock()
	s.flushRetries += uint64(stats.Retries)
	if werr != nil {
		// Keep the batch pending so nothing is silently lost; merge it
		// under any newer puts (newer wins).
		for _, id := range order {
			if _, dup := s.pending[id]; !dup {
				s.pendingOrder = append(s.pendingOrder, id)
				s.pending[id] = batch[id]
			}
		}
		s.inflight = map[recID][]byte{}
		s.ioErrors++
		s.noteFlushFailureLocked()
		s.mu.Unlock()
		return fmt.Errorf("store: journal append: %w", werr)
	}
	s.noteFlushSuccessLocked()
	for id, l := range offs {
		s.index[id] = l
	}
	s.journalSize = at
	s.inflight = map[recID][]byte{}
	// Puts that raced the disk write restarted the lag clock themselves
	// (pending was empty at swap time); only a truly clean store resets.
	if len(s.pending) == 0 {
		s.firstPending = time.Time{}
	}
	s.flushes++
	s.mu.Unlock()
	return s.maybeCompact()
}

// flushRetryPolicy bounds the in-flush append retry. Short delays: the
// flusher itself retries on its cadence, this only rides out blips.
var flushRetryPolicy = resilience.RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   time.Millisecond,
	MaxDelay:    10 * time.Millisecond,
}

// appendBatch writes one encoded batch at base and fsyncs. The
// store.write.*, store.fsync and store.slow fault points live here:
// torn writes land half the batch then fail, exactly the shape a crash
// mid-append leaves on disk.
func (s *Store) appendBatch(buf []byte, base int64) error {
	fault.Delay(fault.StoreSlow)
	if fault.Hit(fault.StoreTorn) {
		_, _ = s.journal.WriteAt(buf[:len(buf)/2], base)
		return &fault.Error{Point: fault.StoreTorn}
	}
	if err := fault.Err(fault.StoreWrite); err != nil {
		return err
	}
	if _, err := s.journal.WriteAt(buf, base); err != nil {
		return err
	}
	if err := fault.Err(fault.StoreFsync); err != nil {
		return err
	}
	return s.journal.Sync()
}

// noteFlushFailureLocked / noteFlushSuccessLocked drive the degradation
// ladder's bottom rung. Callers hold s.mu.
func (s *Store) noteFlushFailureLocked() {
	s.consecFlushFails++
	if !s.degraded && s.consecFlushFails >= s.opts.DegradeAfter {
		s.degraded = true
		s.opts.logf("store: DEGRADED after %d consecutive flush failures; serving from memory, capping pending at %d records",
			s.consecFlushFails, degradedPendingCap*s.opts.FlushBatch)
	}
}

func (s *Store) noteFlushSuccessLocked() {
	s.consecFlushFails = 0
	if s.degraded {
		s.degraded = false
		s.opts.logf("store: recovered from degraded mode; flushes succeeding again")
	}
}

// Degraded reports whether the store is in degraded, in-memory-only
// mode (consecutive flush failures; see Options.DegradeAfter). Reads
// keep working; writes beyond the pending cap are shed.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// maybeCompact runs compaction when the journal exceeds its budget.
// Caller holds flushMu.
func (s *Store) maybeCompact() error {
	s.mu.Lock()
	over := s.journalSize-journalHeaderSize > s.opts.CompactBytes
	s.mu.Unlock()
	if !over {
		return nil
	}
	return s.compactLocked()
}

// Compact forces a compaction: every journal-resident record becomes its
// own CAS file and the journal is truncated back to its header.
func (s *Store) Compact() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	// Collect journal-resident records.
	s.mu.Lock()
	var ids []recID
	for id, l := range s.index {
		if l.journal {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].kind != ids[j].kind {
			return ids[i].kind < ids[j].kind
		}
		return ids[i].key < ids[j].key
	})
	locs := make([]loc, len(ids))
	for i, id := range ids {
		locs[i] = s.index[id]
	}
	s.mu.Unlock()

	// Journal reads can proceed without the store mutex: compaction runs
	// under flushMu, so no concurrent flush or truncate moves them.
	payloads := make([][]byte, len(ids))
	for i, id := range ids {
		d, err := s.readRecord(id, locs[i])
		if err != nil {
			payloads[i] = nil // dropped: CRC said it never safely existed
			continue
		}
		payloads[i] = d
	}

	// Write every CAS file durably BEFORE touching the journal: a crash
	// in between leaves duplicates (journal wins on replay), never loss.
	dirs := map[string]bool{}
	written := 0
	for i, id := range ids {
		if payloads[i] == nil {
			continue
		}
		path := s.casPath(id)
		err := fault.Err(fault.StoreCAS)
		if err == nil {
			err = writeCASFile(path, id, payloads[i])
		}
		if err != nil {
			s.mu.Lock()
			s.ioErrors++
			s.mu.Unlock()
			return fmt.Errorf("store: compact %s: %w", path, err)
		}
		dirs[filepath.Dir(path)] = true
		written++
	}
	for d := range dirs {
		syncDir(d)
	}
	syncDir(filepath.Join(s.dir, casDir))

	// Re-point the index BEFORE truncating: a concurrent Get that
	// snapshotted a journal loc and loses the race reads the CAS copy on
	// its retry instead of mistaking the truncation for corruption and
	// evicting a live record. Crash-wise the order is free — until the
	// truncate lands, replay restores the same records from the journal.
	s.mu.Lock()
	for i, id := range ids {
		if payloads[i] == nil {
			delete(s.index, id)
			continue
		}
		s.index[id] = loc{journal: false}
	}
	s.mu.Unlock()

	if err := s.journal.Truncate(journalHeaderSize); err != nil {
		return fmt.Errorf("store: truncate journal: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("store: sync journal: %w", err)
	}

	s.mu.Lock()
	s.journalSize = journalHeaderSize
	s.compactions++
	s.mu.Unlock()
	s.opts.logf("store: compacted %d records into CAS", written)
	return nil
}

// flusher is the write-behind loop: flush on a cadence, or sooner when a
// batch fills up.
func (s *Store) flusher() {
	defer s.flusherWG.Done()
	t := time.NewTicker(s.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		case <-s.kick:
		}
		if err := s.Flush(); err != nil {
			s.opts.logf("store: background flush: %v", err)
		}
	}
}

// Close flushes pending records and releases the journal. Further Puts
// are lost; callers stop producing before closing (rtlfixerd drains
// first).
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stop)
		s.flusherWG.Wait()
		err = s.Flush()
		if cerr := s.journal.Close(); err == nil {
			err = cerr
		}
		_ = s.lock.Close() // releases the flock
	})
	return err
}

// BriefStats is the cheap health view of the store.
type BriefStats struct {
	Records    int     `json:"records"`
	Pending    int     `json:"pending"`
	FlushLagMS float64 `json:"flush_lag_ms"`
	Degraded   bool    `json:"degraded"`
}

// Brief returns the health-check essentials at O(pending) cost —
// pending is bounded by the flush batch, while the full Stats walks the
// whole index (unbounded on a long-lived daemon) under the same mutex
// the serving path needs. Pollers (healthz) use this; the full Stats is
// for operator-initiated /v1/stats reads.
func (s *Store) Brief() BriefStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := BriefStats{Records: len(s.index), Degraded: s.degraded}
	for id := range s.pending {
		b.Pending++
		if _, durable := s.index[id]; !durable {
			b.Records++
		}
	}
	for id := range s.inflight {
		if _, dup := s.pending[id]; dup {
			continue
		}
		b.Pending++
		if _, durable := s.index[id]; !durable {
			b.Records++
		}
	}
	if !s.firstPending.IsZero() && b.Pending > 0 {
		b.FlushLagMS = float64(time.Since(s.firstPending)) / float64(time.Millisecond)
	}
	return b
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:                s.dir,
		JournalBytes:       s.journalSize - journalHeaderSize,
		LoadedAtOpen:       s.loadedAtOpen,
		RecoveredTailBytes: s.recoveredTail,
		ByKind:             map[string]int{},
		Loads:              s.loads,
		LoadHits:           s.loadHits,
		Stores:             s.stores,
		Flushes:            s.flushes,
		Compactions:        s.compactions,
		IOErrors:           s.ioErrors,
		FlushRetries:       s.flushRetries,
		Degraded:           s.degraded,
		DroppedPuts:        s.droppedPuts,
	}
	// Records and ByKind count each live identity once, even when a key
	// is both durable and re-Put (pending shadows the durable copy).
	count := func(id recID) {
		st.Records++
		st.ByKind[KindName(id.kind)]++
	}
	seen := map[recID]bool{}
	for id := range s.index {
		if l := s.index[id]; !l.journal {
			st.CASFiles++
		} else {
			st.JournalRecords++
		}
		count(id)
		seen[id] = true
	}
	for id := range s.pending {
		st.Pending++
		if !seen[id] {
			count(id)
			seen[id] = true
		}
	}
	for id := range s.inflight {
		if _, dup := s.pending[id]; !dup {
			st.Pending++
		}
		if !seen[id] {
			count(id)
		}
	}
	if !s.firstPending.IsZero() && st.Pending > 0 {
		st.FlushLagMS = float64(time.Since(s.firstPending)) / float64(time.Millisecond)
	}
	return st
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, "journal.log") }

const casDir = "cas"

func (s *Store) casPath(id recID) string {
	return filepath.Join(s.dir, casDir,
		fmt.Sprintf("%02x", byte(id.key)),
		fmt.Sprintf("%02x-%016x.rec", byte(id.kind), id.key))
}

// parseCASName recovers a record identity from its file name.
func parseCASName(name string) (recID, bool) {
	var kind uint8
	var key uint64
	n, err := fmt.Sscanf(name, "%02x-%016x.rec", &kind, &key)
	if err != nil || n != 2 {
		return recID{}, false
	}
	return recID{Kind(kind), key}, true
}

// syncDir fsyncs a directory so renames within it are durable. Errors are
// ignored: the worst case is re-doing work after a crash, never misreading.
func syncDir(path string) {
	d, err := os.Open(path)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
