// Record framing and payload codec for the store.
//
// One frame (shared by the journal and CAS files):
//
//	kind  u8
//	key   u64 LE
//	len   u32 LE        payload length
//	crc   u32 LE        CRC-32 (IEEE) over kind | key | payload
//	data  [len]byte
//
// The journal is a fixed 8-byte header ("RSJL" + u16 version + u16
// reserved) followed by frames; a CAS file is an 8-byte header ("RSCS" +
// u16 version + u16 reserved) followed by exactly one frame. Any header
// whose magic or version does not match is ignored wholesale.
//
// Payload contents are the adapters' business; Encoder/Decoder below give
// them a shared, allocation-light binary form (every adapter payload
// starts with its own one-byte schema version).
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
)

const (
	journalMagic      = "RSJL"
	casMagic          = "RSCS"
	schemaVersion     = 1
	journalHeaderSize = 8
	casHeaderSize     = 8
	frameHeaderSize   = 1 + 8 + 4 + 4
	// maxFrame bounds a single record so a corrupt length field cannot
	// drive a giant allocation during replay.
	maxFrame = 64 << 20
)

// encodeFrame renders one record frame.
func encodeFrame(id recID, data []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(data))
	buf[0] = byte(id.kind)
	binary.LittleEndian.PutUint64(buf[1:9], id.key)
	binary.LittleEndian.PutUint32(buf[9:13], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[13:17], frameCRC(id, data))
	copy(buf[frameHeaderSize:], data)
	return buf
}

// decodeFrame parses and verifies one complete frame.
func decodeFrame(buf []byte) (recID, []byte, bool) {
	if len(buf) < frameHeaderSize {
		return recID{}, nil, false
	}
	id := recID{Kind(buf[0]), binary.LittleEndian.Uint64(buf[1:9])}
	n := binary.LittleEndian.Uint32(buf[9:13])
	if uint64(n) > maxFrame || len(buf) != frameHeaderSize+int(n) {
		return recID{}, nil, false
	}
	data := buf[frameHeaderSize:]
	if binary.LittleEndian.Uint32(buf[13:17]) != frameCRC(id, data) {
		return recID{}, nil, false
	}
	return id, data, true
}

func frameCRC(id recID, data []byte) uint32 {
	h := crc32.NewIEEE()
	var hdr [9]byte
	hdr[0] = byte(id.kind)
	binary.LittleEndian.PutUint64(hdr[1:], id.key)
	h.Write(hdr[:])
	h.Write(data)
	return h.Sum32()
}

func header(magic string) []byte {
	h := make([]byte, 8)
	copy(h, magic)
	binary.LittleEndian.PutUint16(h[4:6], schemaVersion)
	return h
}

func headerOK(buf []byte, magic string) bool {
	return len(buf) >= 8 && string(buf[:4]) == magic &&
		binary.LittleEndian.Uint16(buf[4:6]) == schemaVersion
}

func writeJournalHeader(f *os.File) error {
	if _, err := f.WriteAt(header(journalMagic), 0); err != nil {
		return fmt.Errorf("store: write journal header: %w", err)
	}
	return f.Sync()
}

func journalHeaderOK(f *os.File) bool {
	buf := make([]byte, journalHeaderSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return false
	}
	return headerOK(buf, journalMagic)
}

// replayJournal walks the journal's frames, reporting each verified
// record's location, and returns the offset after the last good record —
// everything beyond it is torn tail to truncate. Only genuine I/O errors
// (not corruption) are returned as err.
func replayJournal(f *os.File, visit func(id recID, off int64, n int)) (good int64, records int, err error) {
	off := int64(journalHeaderSize)
	hdr := make([]byte, frameHeaderSize)
	for {
		if _, rerr := f.ReadAt(hdr, off); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return off, records, nil
			}
			return 0, 0, fmt.Errorf("store: replay journal: %w", rerr)
		}
		n := binary.LittleEndian.Uint32(hdr[9:13])
		if uint64(n) > maxFrame {
			return off, records, nil // corrupt length: stop here
		}
		frame := make([]byte, frameHeaderSize+int(n))
		if _, rerr := f.ReadAt(frame, off); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return off, records, nil // torn tail
			}
			return 0, 0, fmt.Errorf("store: replay journal: %w", rerr)
		}
		id, _, ok := decodeFrame(frame)
		if !ok {
			return off, records, nil // CRC fail: stop at last good record
		}
		visit(id, off, len(frame))
		off += int64(len(frame))
		records++
	}
}

// casHeaderOK reports whether a CAS file carries the current schema.
func casHeaderOK(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	buf := make([]byte, casHeaderSize)
	if _, err := io.ReadFull(f, buf); err != nil {
		return false
	}
	return headerOK(buf, casMagic)
}

// readCASFile reads and verifies one CAS record, checking that its
// content matches the identity its name promised.
func readCASFile(path string, want recID) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !headerOK(buf, casMagic) {
		return nil, fmt.Errorf("store: %s: stale or foreign schema", path)
	}
	id, data, ok := decodeFrame(buf[casHeaderSize:])
	if !ok || id != want {
		return nil, fmt.Errorf("store: %s: corrupt record", path)
	}
	return data, nil
}

// writeCASFile writes one record atomically: temp file in the same
// directory, fsync, rename.
func writeCASFile(path string, id recID, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(header(casMagic)); err == nil {
		_, err = tmp.Write(encodeFrame(id, data))
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		tmp.Close()
		return err
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ---------- payload codec ----------

// HashBytes is the store's content-address helper: FNV-64a, the same
// family the memo layer keys with. Adapters build keys by hashing the
// identity fields of their record, separated by NUL bytes.
func HashBytes(parts ...[]byte) uint64 {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write(p)
	}
	return h.Sum64()
}

// HashStrings is HashBytes over strings.
func HashStrings(parts ...string) uint64 {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// Encoder builds a record payload. Adapters start payloads with their own
// schema-version byte (U8) so stale payloads are detected and skipped.
type Encoder struct{ buf []byte }

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Varint appends a signed varint (for small ints like positions).
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Varint(int64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads a record payload. The first decode error sticks; callers
// check Err (or Ok) once at the end instead of after every field.
type Decoder struct {
	b   []byte
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Ok reports whether every read so far succeeded and the payload was
// fully consumed.
func (d *Decoder) Ok() bool { return d.err == nil && len(d.b) == 0 }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("store: truncated payload")
	}
}

// U8 reads a byte.
func (d *Decoder) U8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Varint()
	if d.err != nil || n < 0 || int64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
