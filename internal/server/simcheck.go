// Post-fix simulation smoke check: a successful /v1/fix's final code is
// elaborated and pulsed for one clock cycle before the response is
// published. The serving path otherwise never exercises the simulation
// engine — compiler personas are string-rendering frontends — so this is
// both a cheap behavioral sanity signal ("the fixed design elaborates,
// settles, and survives a clock edge") and the hook that gives request
// traces their sim stage. The response body is byte-identical with the
// check on or off; outcomes surface only in /v1/stats, /metrics, and the
// request trace.
package server

import (
	"strings"
	"time"

	"repro/internal/agent"
	"repro/internal/resilience"
	"repro/internal/sema"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wave"
)

// Watchdog budgets for one smoke check: the settle-plus-one-pulse run is
// microseconds on healthy designs, so these bounds only ever trip on a
// runaway (or fault-injected) simulation.
const (
	simCheckWall  = 2 * time.Second
	simCheckSteps = 64
)

// simCheck runs the smoke check behind a panic guard: the check is a
// best-effort signal on the degradation ladder, so a panicking engine
// (or a fault-injected one) skips the feature instead of failing the
// whole agent run it rides on.
func (s *Server) simCheck(tr *agent.Transcript, parent *trace.Span) {
	if err := resilience.Safe("simcheck", func() { s.runSimCheck(tr, parent) }); err != nil {
		s.st.simSkipped.Inc()
		s.cfg.logf("server: sim check panicked (isolated): %v", err)
	}
}

// runSimCheck is the smoke check for one finished agent run, recording
// the outcome under a "sim" child of parent. Sources that do not
// elaborate (the personas accept code the stricter sim frontend
// rejects) are counted as skipped, not failed; a simulation that blows
// its watchdog budget is canceled and counted, never request-fatal. The
// shared SimCache means a coalesced-or-repeated source pays
// frontend+compile once.
func (s *Server) runSimCheck(tr *agent.Transcript, parent *trace.Span) {
	if s.simCache == nil || tr == nil || !tr.Success {
		return
	}
	sp := parent.Child("sim")
	defer sp.End()
	s.st.simChecks.Inc()

	prog, design, _ := s.simCache.Program(tr.FinalCode)
	var sm *sim.Simulator
	switch {
	case prog != nil:
		sm = sim.NewFromProgram(prog)
	case design != nil:
		// The compiled engine fell back; the walker is the reference
		// interpreter and accepts a superset of designs.
		var err error
		sm, err = sim.NewWith(design, sim.EngineWalker)
		if err != nil {
			sp.SetStr("result", "not_simulable")
			s.st.simSkipped.Inc()
			return
		}
	default:
		sp.SetStr("result", "not_elaborable")
		s.st.simSkipped.Inc()
		return
	}

	sm.SetWatchdog(resilience.NewWatchdog(simCheckWall, simCheckSteps))
	if s.simObs != nil {
		// Observe the check regardless of outcome: coverage on both
		// backends, the execution profile on the compiled engine. The
		// fold runs deferred so watchdog/settle exits still report.
		cov := wave.NewCoverage()
		sm.Observe(cov)
		profiled := sm.EnableProfile()
		if !profiled {
			sm.EnableActivations()
		}
		defer func() {
			cov.AddActivations(sm.Activations())
			var prof *wave.EngineProfile
			if profiled {
				prof = sm.Profile()
			}
			s.simObs.fold(cov, prof)
			sp.SetStr("coverage", cov.Stats().String())
		}()
	}
	if err := sm.Settle(); err != nil {
		if resilience.IsWatchdog(err) {
			sp.SetStr("result", "watchdog")
			s.st.simWatchdog.Inc()
			return
		}
		sp.SetStr("result", "settle_error")
		s.st.simFailed.Inc()
		return
	}
	if clk := clockInput(sm.Design()); clk != "" {
		sp.SetStr("clock", clk)
		if err := sm.ClockPulse(clk); err != nil {
			if resilience.IsWatchdog(err) {
				sp.SetStr("result", "watchdog")
				s.st.simWatchdog.Inc()
				return
			}
			sp.SetStr("result", "clock_error")
			s.st.simFailed.Inc()
			return
		}
	}
	sp.SetStr("result", "ok")
	s.st.simPassed.Inc()
}

// clockInput finds the design's clock-looking input port, if any.
func clockInput(d *sema.Design) string {
	for _, in := range d.Inputs() {
		switch strings.ToLower(in.Name) {
		case "clk", "clock":
			return in.Name
		}
	}
	return ""
}
