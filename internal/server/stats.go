// Live metrics for the fix service, surfaced at GET /v1/stats: request
// and status counters, fix/lint latency histograms (internal/metrics),
// queue and in-flight gauges, dispatch batching figures, and the
// process-wide memoization counters (memo.Totals). Everything is cheap
// atomics — the monitoring plane never contends with the serving plane.
package server

import (
	"net/http"
	"strconv"

	"repro/internal/analyze"
	"repro/internal/fault"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/trace"
)

// statusCodes are the statuses the service can emit; anything else lands
// in the "other" bucket.
var statusCodes = []int{200, 400, 404, 405, 413, 429, 500, 502, 503, 504}

// serverStats holds every live counter. Fields are written with atomics;
// Snapshot reads are not a consistent cut across fields (each field is
// individually exact), which is fine for monitoring.
type serverStats struct {
	fixRequests     metrics.Counter
	lintRequests    metrics.Counter
	healthzRequests metrics.Counter
	readyzRequests  metrics.Counter
	statsRequests   metrics.Counter

	status      map[int]*metrics.Counter
	statusOther metrics.Counter

	fixOK             metrics.Counter
	fixFailed         metrics.Counter
	coalesced         metrics.Counter
	agentRuns         metrics.Counter
	expiredBeforeRun  metrics.Counter
	deadlineExpired   metrics.Counter
	rejectedQueueFull metrics.Counter
	rejectedDraining  metrics.Counter

	batches     metrics.Counter
	batchedJobs metrics.Counter
	maxBatch    metrics.Gauge

	queueDepth metrics.Gauge
	inFlight   metrics.Gauge

	fixLatency  *metrics.Histogram
	lintLatency *metrics.Histogram

	// findingsByRule counts analyzer findings served through /v1/lint,
	// keyed by rule code. The key set is fixed at init from the static
	// rule registry, so the counters are lock-free; codes outside the
	// registry land in findingsOther. findingRules holds the codes in
	// registry order for stable /metrics exposition.
	findingsByRule map[string]*metrics.Counter
	findingRules   []string
	findingsOther  metrics.Counter

	// Post-fix simulation smoke checks (simcheck.go): attempted, and the
	// passed/failed/skipped split. Skipped means the fixed code does not
	// elaborate under the stricter sim frontend — expected for a subset
	// of persona-accepted sources, not an error.
	simChecks  metrics.Counter
	simPassed  metrics.Counter
	simFailed  metrics.Counter
	simSkipped metrics.Counter

	// Resilience plane: recovered panics by bulkhead, circuit-breaker
	// fast-fails, the in-agent LLM retry ledger, brownout shedding, and
	// sim-check watchdog trips.
	panicsHTTP         metrics.Counter
	panicsWorker       metrics.Counter
	breakerRejected    metrics.Counter
	llmRetriedRuns     metrics.Counter
	llmRetryRecovered  metrics.Counter
	llmAborted         metrics.Counter
	brownoutLintShed   metrics.Counter
	brownoutTracesShed metrics.Counter
	simWatchdog        metrics.Counter
}

func (st *serverStats) init() {
	st.status = make(map[int]*metrics.Counter, len(statusCodes))
	for _, code := range statusCodes {
		st.status[code] = &metrics.Counter{}
	}
	st.fixLatency = metrics.NewLatencyHistogram()
	st.lintLatency = metrics.NewLatencyHistogram()
	st.findingsByRule = make(map[string]*metrics.Counter, len(analyze.Rules()))
	for _, r := range analyze.Rules() {
		st.findingsByRule[r.Code] = &metrics.Counter{}
		st.findingRules = append(st.findingRules, r.Code)
	}
}

func (st *serverStats) countFinding(rule string) {
	if c, ok := st.findingsByRule[rule]; ok {
		c.Inc()
		return
	}
	st.findingsOther.Inc()
}

func (st *serverStats) countStatus(code int) {
	if c, ok := st.status[code]; ok {
		c.Inc()
		return
	}
	st.statusOther.Inc()
}

// recordBatchSize keeps a running maximum of dispatch batch sizes.
func (st *serverStats) recordBatchSize(n int) { st.maxBatch.Max(int64(n)) }

// StatsSnapshot is the GET /v1/stats response body.
type StatsSnapshot struct {
	UptimeMS float64 `json:"uptime_ms"`

	Requests struct {
		Fix     uint64 `json:"fix"`
		Lint    uint64 `json:"lint"`
		Healthz uint64 `json:"healthz"`
		Readyz  uint64 `json:"readyz"`
		Stats   uint64 `json:"stats"`
	} `json:"requests"`

	// Status maps HTTP status code (as a string, for JSON) to count.
	Status map[string]uint64 `json:"status"`

	Fix struct {
		OK                uint64 `json:"ok"`
		Failed            uint64 `json:"failed"`
		Coalesced         uint64 `json:"coalesced"`
		AgentRuns         uint64 `json:"agent_runs"`
		ExpiredBeforeRun  uint64 `json:"expired_before_run"`
		DeadlineExpired   uint64 `json:"deadline_expired"`
		RejectedQueueFull uint64 `json:"rejected_queue_full"`
		RejectedDraining  uint64 `json:"rejected_draining"`
	} `json:"fix"`

	Dispatch struct {
		Batches     uint64  `json:"batches"`
		BatchedJobs uint64  `json:"batched_jobs"`
		MaxBatch    int64   `json:"max_batch"`
		MeanBatch   float64 `json:"mean_batch"`
	} `json:"dispatch"`

	Queue struct {
		Depth       int64 `json:"depth"`
		InFlight    int64 `json:"in_flight"`
		MaxInFlight int   `json:"max_in_flight"`
		QueueDepth  int   `json:"queue_depth"`
		Draining    bool  `json:"draining"`
	} `json:"queue"`

	// Lint aggregates the analyzer findings served through /v1/lint,
	// keyed by rule code ("L001", ...); "other" collects codes outside
	// the registry. Zero-count rules are included so dashboards see the
	// full rule set.
	Lint struct {
		FindingsByRule map[string]uint64 `json:"findings_by_rule"`
	} `json:"lint"`

	// Fixers is the number of distinct pooled configurations.
	Fixers int `json:"fixers"`

	LatencyFixMS  metrics.HistogramSnapshot `json:"latency_fix_ms"`
	LatencyLintMS metrics.HistogramSnapshot `json:"latency_lint_ms"`

	// Cache mirrors memo.Totals(): the process-wide memoization counters
	// behind every pooled fixer. The aggregate fields are kept for
	// compatibility; Compile/Sim/Retrieval break the same counters out
	// per cache layer (memo.TotalsByKind) so warm-start effectiveness is
	// observable per layer.
	Cache struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
		Lookups   uint64 `json:"lookups"`

		Compile   CacheLayerStats `json:"compile"`
		Sim       CacheLayerStats `json:"sim"`
		Retrieval CacheLayerStats `json:"retrieval"`
	} `json:"cache"`

	// SimCheck summarizes the post-fix simulation smoke checks (zeros
	// when disabled). Watchdog counts checks canceled for blowing their
	// wall-clock/step budget — a skip, not a verdict on the fix.
	SimCheck struct {
		Checked  uint64 `json:"checked"`
		Passed   uint64 `json:"passed"`
		Failed   uint64 `json:"failed"`
		Skipped  uint64 `json:"skipped"`
		Watchdog uint64 `json:"watchdog"`
	} `json:"sim_check"`

	// Resilience is the fault-tolerance ledger: recovered panics per
	// bulkhead, breaker activity per fixer configuration, the LLM retry/
	// abort split, brownout shedding, and store degradation.
	Resilience struct {
		PanicsHTTP         uint64 `json:"panics_http"`
		PanicsWorker       uint64 `json:"panics_worker"`
		BreakerRejected    uint64 `json:"breaker_rejected"`
		LLMRetriedRuns     uint64 `json:"llm_retried_runs"`
		LLMRetryRecovered  uint64 `json:"llm_retry_recovered"`
		LLMAborted         uint64 `json:"llm_aborted"`
		BrownoutLintShed   uint64 `json:"brownout_lint_shed"`
		BrownoutTracesShed uint64 `json:"brownout_traces_shed"`
		SimWatchdogTrips   uint64 `json:"sim_watchdog_trips"`
		StoreDegraded      bool   `json:"store_degraded"`
		Ready              bool   `json:"ready"`

		// Breakers holds one snapshot per pooled fixer configuration,
		// keyed "compiler/persona/mode" (rag/iters/analyze omitted from
		// the key for readability; distinct configurations that collide
		// are distinguished by a numeric suffix).
		Breakers map[string]resilience.BreakerSnapshot `json:"breakers,omitempty"`
	} `json:"resilience"`

	// Faults, present only when a fault-injection profile is installed
	// (-fault-profile), snapshots each active injection point's decision
	// and fire counters — the chaos harness asserts determinism on these.
	Faults map[string]fault.PointStats `json:"faults,omitempty"`

	// Sim, present when the sim check runs with observability on, is
	// the simulation-layer aggregate: toggle coverage of the observed
	// checks plus the compiled engine's execution-profile tallies.
	Sim *SimObsSnapshot `json:"sim,omitempty"`

	// Stages, present when tracing is on, is the per-stage latency
	// breakdown folded from finished request traces — one histogram per
	// span name (fix, queue, run, agent, iteration, compile, rag, llm,
	// sim). Keys marshal in pipeline order (trace.StageNames), so the
	// JSON object order matches the attribution table. loadgen -stages
	// renders this as a table.
	Stages trace.OrderedStages `json:"stages,omitempty"`

	// Trace, present when tracing is on, is the trace collector's
	// occupancy (ring fill, slow tier, totals).
	Trace *trace.Occupancy `json:"trace,omitempty"`

	// Store, present when the daemon runs with -state-dir, is the durable
	// state layer's snapshot: record counts, journal size, flush lag, and
	// load/store counters.
	Store *store.Stats `json:"store,omitempty"`
}

// CacheLayerStats is one cache layer's counters (memo.Stats, JSON-ready).
type CacheLayerStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Lookups   uint64 `json:"lookups"`
}

func cacheLayer(s memo.Stats) CacheLayerStats {
	return CacheLayerStats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, Lookups: s.Lookups}
}

// Stats snapshots the live counters (also what /v1/stats serves).
func (s *Server) Stats() StatsSnapshot {
	st := &s.st
	var snap StatsSnapshot
	snap.UptimeMS = msSince(s.start)

	snap.Requests.Fix = st.fixRequests.Value()
	snap.Requests.Lint = st.lintRequests.Value()
	snap.Requests.Healthz = st.healthzRequests.Value()
	snap.Requests.Readyz = st.readyzRequests.Value()
	snap.Requests.Stats = st.statsRequests.Value()

	snap.Status = make(map[string]uint64)
	for _, code := range statusCodes {
		if v := st.status[code].Value(); v > 0 {
			snap.Status[strconv.Itoa(code)] = v
		}
	}
	if v := st.statusOther.Value(); v > 0 {
		snap.Status["other"] = v
	}

	snap.Fix.OK = st.fixOK.Value()
	snap.Fix.Failed = st.fixFailed.Value()
	snap.Fix.Coalesced = st.coalesced.Value()
	snap.Fix.AgentRuns = st.agentRuns.Value()
	snap.Fix.ExpiredBeforeRun = st.expiredBeforeRun.Value()
	snap.Fix.DeadlineExpired = st.deadlineExpired.Value()
	snap.Fix.RejectedQueueFull = st.rejectedQueueFull.Value()
	snap.Fix.RejectedDraining = st.rejectedDraining.Value()

	snap.Dispatch.Batches = st.batches.Value()
	snap.Dispatch.BatchedJobs = st.batchedJobs.Value()
	snap.Dispatch.MaxBatch = st.maxBatch.Value()
	if b := snap.Dispatch.Batches; b > 0 {
		snap.Dispatch.MeanBatch = float64(snap.Dispatch.BatchedJobs) / float64(b)
	}

	snap.Queue.Depth = st.queueDepth.Value()
	snap.Queue.InFlight = st.inFlight.Value()
	snap.Queue.MaxInFlight = s.cfg.MaxInFlight
	snap.Queue.QueueDepth = s.cfg.QueueDepth
	snap.Queue.Draining = s.isDraining()

	snap.Lint.FindingsByRule = make(map[string]uint64, len(st.findingsByRule)+1)
	for code, c := range st.findingsByRule {
		snap.Lint.FindingsByRule[code] = c.Value()
	}
	if v := st.findingsOther.Value(); v > 0 {
		snap.Lint.FindingsByRule["other"] = v
	}

	snap.Fixers = s.Fixers()
	snap.LatencyFixMS = st.fixLatency.Snapshot()
	snap.LatencyLintMS = st.lintLatency.Snapshot()

	t := memo.Totals()
	snap.Cache.Hits = t.Hits
	snap.Cache.Misses = t.Misses
	snap.Cache.Evictions = t.Evictions
	snap.Cache.Lookups = t.Lookups
	byKind := memo.TotalsByKind()
	snap.Cache.Compile = cacheLayer(byKind.Compile)
	snap.Cache.Sim = cacheLayer(byKind.Sim)
	snap.Cache.Retrieval = cacheLayer(byKind.Retrieval)

	snap.SimCheck.Checked = st.simChecks.Value()
	snap.SimCheck.Passed = st.simPassed.Value()
	snap.SimCheck.Failed = st.simFailed.Value()
	snap.SimCheck.Skipped = st.simSkipped.Value()
	snap.SimCheck.Watchdog = st.simWatchdog.Value()

	snap.Resilience.PanicsHTTP = st.panicsHTTP.Value()
	snap.Resilience.PanicsWorker = st.panicsWorker.Value()
	snap.Resilience.BreakerRejected = st.breakerRejected.Value()
	snap.Resilience.LLMRetriedRuns = st.llmRetriedRuns.Value()
	snap.Resilience.LLMRetryRecovered = st.llmRetryRecovered.Value()
	snap.Resilience.LLMAborted = st.llmAborted.Value()
	snap.Resilience.BrownoutLintShed = st.brownoutLintShed.Value()
	snap.Resilience.BrownoutTracesShed = st.brownoutTracesShed.Value()
	snap.Resilience.SimWatchdogTrips = st.simWatchdog.Value()
	snap.Resilience.StoreDegraded = s.cfg.Store != nil && s.cfg.Store.Degraded()
	snap.Resilience.Ready = s.ready.Load()
	snap.Resilience.Breakers = s.breakerSnapshots()
	snap.Faults = fault.Snapshot()

	snap.Sim = s.simObs.snapshot()

	if s.stages != nil {
		snap.Stages = trace.OrderedStages(s.stages.Snapshot())
	}
	if s.tracer != nil {
		occ := s.tracer.Occupancy()
		snap.Trace = &occ
	}

	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		snap.Store = &st
	}
	return snap
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.st.statsRequests.Inc()
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}
