package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// brokenSource is the paper's Fig. 5 example (posedge clk, no clk port):
// fixable by the default ReAct + RAG + Quartus configuration.
const brokenSource = `module top_module (
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1) begin
			out[i] <= in[99 - i];
		end
	end
endmodule
`

const cleanSource = "module m;\nendmodule\n"

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postFix(t *testing.T, url string, body map[string]any) (int, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/fix", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("non-JSON response (%d): %s", resp.StatusCode, raw)
		}
	}
	return resp.StatusCode, out
}

func TestFixEndpointFixesPaperExample(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, out := postFix(t, ts.URL, map[string]any{"source": brokenSource, "transcript": true})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v", status, out)
	}
	if out["success"] != true {
		t.Fatalf("fix did not succeed: %v", out)
	}
	if out["final_code"] == "" || out["transcript"] == "" {
		t.Fatal("missing final_code or transcript")
	}
	if out["coalesced"] != false {
		t.Fatal("singleton request reported coalesced")
	}
}

func TestFixDeterministicAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postFix(t, ts.URL, map[string]any{"source": brokenSource})
	_, second := postFix(t, ts.URL, map[string]any{"source": brokenSource})
	if first["final_code"] != second["final_code"] || first["iterations"] != second["iterations"] {
		t.Fatal("same request, different outcome across sequential calls")
	}
}

func TestLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		source string
		ok     bool
	}{{cleanSource, true}, {brokenSource, false}} {
		data, _ := json.Marshal(map[string]any{"source": tc.source})
		resp, err := http.Post(ts.URL+"/v1/lint", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var out lintResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out.Ok != tc.ok {
			t.Fatalf("lint(%q...) = %d %+v, want ok=%v", tc.source[:10], resp.StatusCode, out, tc.ok)
		}
		if !tc.ok && (out.Log == "" || out.Errors == 0) {
			t.Fatalf("failing lint carries no diagnostics: %+v", out)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"empty source", map[string]any{"source": " "}, http.StatusBadRequest},
		{"unknown compiler", map[string]any{"source": cleanSource, "compiler": "vcs"}, http.StatusBadRequest},
		{"unknown persona", map[string]any{"source": cleanSource, "persona": "gpt-9"}, http.StatusBadRequest},
		{"bad mode", map[string]any{"source": cleanSource, "mode": "zero-shot"}, http.StatusBadRequest},
		{"negative timeout", map[string]any{"source": cleanSource, "timeout_ms": -5}, http.StatusBadRequest},
		{"unknown field", map[string]any{"source": cleanSource, "sourcecode": "x"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if status, out := postFix(t, ts.URL, tc.body); status != tc.want {
			t.Errorf("%s: status = %d (%v), want %d", tc.name, status, out, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/fix")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/fix = %d, want 405", resp.StatusCode)
	}
}

// TestCoalescing is the thundering-herd contract: N identical concurrent
// requests cost one agent run, and every caller gets the same answer.
func TestCoalescing(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, Config{MaxInFlight: 2, Workers: 2})
	release := make(chan struct{})
	s.testHook = func(*flight) { <-release }

	var wg sync.WaitGroup
	type reply struct {
		status int
		body   map[string]any
	}
	replies := make([]reply, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, out := postFix(t, ts.URL, map[string]any{"source": brokenSource})
			replies[i] = reply{st, out}
		}(i)
	}

	// Wait until every follower has joined the (hook-blocked) leader.
	deadline := time.Now().Add(10 * time.Second)
	for s.st.coalesced.Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests coalesced", s.st.coalesced.Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if runs := s.st.agentRuns.Value(); runs != 1 {
		t.Fatalf("agent runs = %d, want 1 for %d identical requests", runs, n)
	}
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d (%v)", i, r.status, r.body)
		}
		if r.body["final_code"] != replies[0].body["final_code"] ||
			r.body["success"] != replies[0].body["success"] {
			t.Fatalf("request %d got a different answer", i)
		}
	}
	if s.Stats().Fix.Coalesced != n-1 {
		t.Fatalf("stats report %d coalesced, want %d", s.Stats().Fix.Coalesced, n-1)
	}
}

// TestAdmissionOverflow is the bounded-admission contract: once
// MaxInFlight + QueueDepth requests are admitted, the next one is
// refused immediately with 429.
func TestAdmissionOverflow(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlight: 1, QueueDepth: -1, MaxBatch: 1, Workers: 1,
		DisableCoalesce: true,
	})
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.testHook = func(*flight) {
		entered <- struct{}{}
		<-release
	}
	defer close(release)

	done := make(chan struct{})
	go func() {
		defer close(done)
		status, out := postFix(t, ts.URL, map[string]any{"source": brokenSource, "seed": 1})
		if status != http.StatusOK {
			t.Errorf("admitted request finished %d (%v), want 200", status, out)
		}
	}()
	<-entered // the slot is occupied and running

	status, out := postFix(t, ts.URL, map[string]any{"source": brokenSource, "seed": 2})
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow request = %d (%v), want 429", status, out)
	}
	if s.st.rejectedQueueFull.Value() != 1 {
		t.Fatalf("rejectedQueueFull = %d, want 1", s.st.rejectedQueueFull.Value())
	}
}

// TestDeadlineExpiry: a request whose deadline passes mid-run gets a
// clean 504 while the non-preemptible run finishes in the background.
func TestDeadlineExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, Workers: 1})
	release := make(chan struct{})
	s.testHook = func(*flight) { <-release }

	start := time.Now()
	status, out := postFix(t, ts.URL, map[string]any{"source": brokenSource, "timeout_ms": 80})
	waited := time.Since(start)
	close(release)

	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%v), want 504", status, out)
	}
	if waited > 5*time.Second {
		t.Fatalf("504 took %v; deadline did not cut the wait", waited)
	}
	if s.st.deadlineExpired.Value() == 0 {
		t.Fatal("deadlineExpired counter not incremented")
	}
	// The abandoned run still completes and releases its admission slot:
	// a follow-up request must succeed.
	if status, out := postFix(t, ts.URL, map[string]any{"source": cleanSource}); status != http.StatusOK {
		t.Fatalf("post-timeout request = %d (%v), want 200", status, out)
	}
}

// TestGracefulDrain: after BeginDrain (what SIGTERM triggers in
// rtlfixerd), new work is refused with 503 but admitted requests run to
// completion, and Drain returns once they have.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, Workers: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHook = func(*flight) {
		entered <- struct{}{}
		<-release
	}

	inFlight := make(chan struct {
		status int
		body   map[string]any
	}, 1)
	go func() {
		st, out := postFix(t, ts.URL, map[string]any{"source": brokenSource})
		inFlight <- struct {
			status int
			body   map[string]any
		}{st, out}
	}()
	<-entered // the request is mid-run

	s.BeginDrain()
	if status, _ := postFix(t, ts.URL, map[string]any{"source": cleanSource}); status != http.StatusServiceUnavailable {
		t.Fatalf("fix during drain = %d, want 503", status)
	}
	// Liveness vs routability: healthz stays 200 (the process is alive,
	// just draining) while readyz flips to 503 so balancers stop routing.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (liveness)", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}

	close(release)
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	r := <-inFlight
	if r.status != http.StatusOK || r.body["success"] != true {
		t.Fatalf("in-flight request after SIGTERM = %d (%v), want a completed 200", r.status, r.body)
	}
}

// TestBatchedDispatch: requests arriving together are dispatched as one
// pipeline batch, not one batch each.
func TestBatchedDispatch(t *testing.T) {
	const n = 6
	s, ts := newTestServer(t, Config{
		MaxInFlight: n, MaxBatch: n, Workers: n,
		BatchLinger:     200 * time.Millisecond,
		DisableCoalesce: true, // distinct flights so the batch carries n jobs
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if st, out := postFix(t, ts.URL, map[string]any{"source": brokenSource, "seed": i + 1}); st != http.StatusOK {
				t.Errorf("request %d: %d (%v)", i, st, out)
			}
		}(i)
	}
	wg.Wait()
	snap := s.Stats()
	if snap.Dispatch.BatchedJobs != n {
		t.Fatalf("batched jobs = %d, want %d", snap.Dispatch.BatchedJobs, n)
	}
	if snap.Dispatch.MaxBatch < 2 {
		t.Fatalf("max batch = %d; concurrent requests were never batched", snap.Dispatch.MaxBatch)
	}
}

func TestStatsEndpointShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postFix(t, ts.URL, map[string]any{"source": brokenSource})
	postFix(t, ts.URL, map[string]any{"source": brokenSource})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("stats body is not the snapshot shape: %v", err)
	}
	if snap.Requests.Fix != 2 {
		t.Fatalf("fix requests = %d, want 2", snap.Requests.Fix)
	}
	if snap.LatencyFixMS.Count != 2 {
		t.Fatalf("fix latency count = %d, want 2", snap.LatencyFixMS.Count)
	}
	if snap.Fix.AgentRuns == 0 || snap.Fixers != 1 {
		t.Fatalf("run/fixer accounting off: %+v", snap.Fix)
	}
	// Identical sequential requests share the pooled fixer's compile
	// cache; the second one must have produced hits.
	if snap.Cache.Hits == 0 {
		t.Fatal("second identical request produced no cache hits")
	}
}

// TestFixerPoolSharesConfigurations: distinct configurations get distinct
// fixers; repeats reuse them.
func TestFixerPoolSharesConfigurations(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	postFix(t, ts.URL, map[string]any{"source": cleanSource})
	postFix(t, ts.URL, map[string]any{"source": cleanSource})
	postFix(t, ts.URL, map[string]any{"source": cleanSource, "compiler": "iverilog"})
	postFix(t, ts.URL, map[string]any{"source": cleanSource, "mode": "one-shot"})
	if got := s.Fixers(); got != 3 {
		t.Fatalf("fixer pool holds %d configurations, want 3", got)
	}
}

func TestCloseAnswersQueuedWaiters(t *testing.T) {
	s := New(Config{MaxInFlight: 4, Workers: 1, Seed: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.testHook = func(*flight) {
		entered <- struct{}{}
		<-release
	}
	var wg sync.WaitGroup
	statuses := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = postFix(t, ts.URL, map[string]any{"source": brokenSource, "seed": 100 + i})
		}(i)
	}
	<-entered // at least one job is mid-run
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release) // let running jobs finish; Close cancels unstarted ones
	}()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK && st != http.StatusServiceUnavailable {
			t.Errorf("request %d finished %d, want 200 or 503", i, st)
		}
	}
}

func TestRequestSizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSourceBytes: 512})
	big := fmt.Sprintf("module m;\n// %s\nendmodule\n", bytes.Repeat([]byte("x"), 1024))
	status, _ := postFix(t, ts.URL, map[string]any{"source": big})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize source = %d, want 413", status)
	}
}

// TestFollowerSurvivesLeaderTimeout: coalescing must be transparent — a
// follower with a healthy deadline keeps the flight alive and gets its
// answer even after the leader's deadline expired before the run
// started.
func TestFollowerSurvivesLeaderTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, Workers: 2, MaxBatch: 1})
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.testHook = func(f *flight) {
		if f.filename == "occupier.v" {
			entered <- struct{}{}
			<-release
		}
	}

	// Occupy the single run slot so the leader's flight stays queued
	// past its deadline.
	occupier := make(chan int, 1)
	go func() {
		st, _ := postFix(t, ts.URL, map[string]any{"source": cleanSource, "filename": "occupier.v"})
		occupier <- st
	}()
	<-entered

	// Leader: identical herd source, deadline that expires while queued.
	leader := make(chan int, 1)
	go func() {
		st, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource, "timeout_ms": 60})
		leader <- st
	}()
	if st := <-leader; st != http.StatusGatewayTimeout {
		t.Fatalf("leader = %d, want 504 (deadline expired while queued)", st)
	}

	// Follower joins the still-queued flight with a healthy deadline.
	follower := make(chan struct {
		status int
		body   map[string]any
	}, 1)
	go func() {
		st, out := postFix(t, ts.URL, map[string]any{"source": brokenSource})
		follower <- struct {
			status int
			body   map[string]any
		}{st, out}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.st.coalesced.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the leader's flight")
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	if st := <-occupier; st != http.StatusOK {
		t.Fatalf("occupier = %d, want 200", st)
	}
	r := <-follower
	if r.status != http.StatusOK || r.body["success"] != true {
		t.Fatalf("follower = %d (%v), want a successful 200: the leader's timeout must not kill the flight", r.status, r.body)
	}
	if s.st.expiredBeforeRun.Value() != 0 {
		t.Fatalf("flight was skipped (%d expiredBeforeRun) despite a live follower", s.st.expiredBeforeRun.Value())
	}
}

// TestNoHeadOfLineBlockingAcrossBatches: a fast request dispatched after
// a slow one (in a different batch) must complete while the slow run is
// still executing.
func TestNoHeadOfLineBlockingAcrossBatches(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, Workers: 2, MaxBatch: 1, DisableCoalesce: true})
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.testHook = func(f *flight) {
		if f.filename == "slow.v" {
			entered <- struct{}{}
			<-release
		}
	}
	defer close(release)

	slow := make(chan int, 1)
	go func() {
		st, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource, "filename": "slow.v"})
		slow <- st
	}()
	<-entered // the slow run occupies its batch

	start := time.Now()
	st, out := postFix(t, ts.URL, map[string]any{"source": cleanSource, "filename": "fast.v"})
	if st != http.StatusOK {
		t.Fatalf("fast request behind a slow batch = %d (%v), want 200", st, out)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("fast request waited %v behind the slow batch", waited)
	}
	select {
	case <-slow:
		t.Fatal("slow request finished before the fast one was measured — test setup broken")
	default:
	}
}

// TestFixerPoolBounded: the pool of per-configuration fixers is capped,
// so a client sweeping max_iterations cannot leak unbounded caches.
func TestFixerPoolBounded(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	full := 0
	for i := 1; i <= maxFixerConfigs+5; i++ {
		st, out := postFix(t, ts.URL, map[string]any{"source": cleanSource, "max_iterations": i})
		switch st {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			full++
			if msg, _ := out["error"].(string); !strings.Contains(msg, "fixer pool full") {
				t.Fatalf("503 with unexpected body: %v", out)
			}
		default:
			t.Fatalf("sweep request %d = %d (%v)", i, st, out)
		}
	}
	if full != 5 {
		t.Fatalf("%d requests refused, want 5 beyond the %d-config cap", full, maxFixerConfigs)
	}
	if got := s.Fixers(); got != maxFixerConfigs {
		t.Fatalf("pool holds %d configs, want the cap %d", got, maxFixerConfigs)
	}
	// Over-limit iterations are a 400, keeping the key space finite.
	if st, _ := postFix(t, ts.URL, map[string]any{"source": cleanSource, "max_iterations": maxRequestIterations + 1}); st != http.StatusBadRequest {
		t.Fatalf("max_iterations over the clamp = %d, want 400", st)
	}
}

// latchSource is clean to the compiler frontend but dirty to the
// analyzer: y holds a latch and the sensitivity list is incomplete.
const latchSource = `module top_module (
	input sel,
	input a,
	output reg y
);
	always @(a) begin
		if (sel) y = a;
	end
endmodule
`

func TestLintStructuredFindings(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post := func(body map[string]any) lintResponse {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/lint", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lint status = %d", resp.StatusCode)
		}
		var out lintResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	out := post(map[string]any{"source": latchSource})
	if !out.Ok {
		t.Fatalf("frontend-clean source reported not ok: %+v", out)
	}
	rules := map[string]int{}
	for _, f := range out.Findings {
		rules[f.Rule]++
		if f.Rule != "" && (f.Severity != "warning" || f.Line == 0 || f.Message == "") {
			t.Errorf("malformed finding: %+v", f)
		}
	}
	if rules["L001"] == 0 || rules["L002"] == 0 {
		t.Fatalf("latch/sensitivity findings missing: %v", rules)
	}

	// The toggle routes to a separate pooled fixer with the analyzer off.
	off := post(map[string]any{"source": latchSource, "analyze": false})
	if len(off.Findings) != 0 {
		t.Fatalf("analyze=false still returned findings: %+v", off.Findings)
	}
	if s.Fixers() != 2 {
		t.Fatalf("analyzer toggle did not split the fixer pool: %d fixers", s.Fixers())
	}

	snap := s.Stats()
	if snap.Lint.FindingsByRule["L001"] == 0 || snap.Lint.FindingsByRule["L002"] == 0 {
		t.Fatalf("stats did not count findings by rule: %v", snap.Lint.FindingsByRule)
	}
	if _, ok := snap.Lint.FindingsByRule["L010"]; !ok {
		t.Fatal("stats snapshot omits zero-count rules")
	}
}
