package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestFixRequestTraceTree is the acceptance gate: a real /v1/fix run
// with tracing on must yield a retrievable span tree covering
// admission → queue → run → agent iterations → compile, plus the
// post-fix sim check, under a "fix" root.
func TestFixRequestTraceTree(t *testing.T) {
	c := trace.NewCollector(0, 0, 0)
	_, ts := newTestServer(t, Config{Tracing: c})
	status, out := postFix(t, ts.URL, map[string]any{"source": brokenSource})
	if status != http.StatusOK || out["success"] != true {
		t.Fatalf("fix failed: %d %v", status, out)
	}

	resp, raw := get(t, ts.URL+"/v1/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace list status = %d", resp.StatusCode)
	}
	var list traceListResponse
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatalf("trace list: %v\n%s", err, raw)
	}
	if !list.Enabled || len(list.Traces) == 0 {
		t.Fatalf("no traces listed: %+v", list)
	}
	var fixID string
	for _, s := range list.Traces {
		if s.Root == "fix" {
			fixID = s.ID
			break
		}
	}
	if fixID == "" {
		t.Fatalf("no fix trace among %+v", list.Traces)
	}

	resp, raw = get(t, ts.URL+"/v1/trace/"+fixID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace get status = %d: %s", resp.StatusCode, raw)
	}
	var tree trace.TraceJSON
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatalf("trace tree: %v", err)
	}
	if tree.Root.Name != "fix" {
		t.Fatalf("root = %q, want fix", tree.Root.Name)
	}
	counts := map[string]int{}
	var walk func(sp trace.SpanJSON)
	walk = func(sp trace.SpanJSON) {
		counts[sp.Name]++
		for _, ch := range sp.Children {
			walk(ch)
		}
	}
	walk(tree.Root)
	for _, stage := range []string{"admission", "queue", "wait", "run", "agent", "iteration", "compile", "sim"} {
		if counts[stage] == 0 {
			t.Fatalf("trace missing %q span; got %v", stage, counts)
		}
	}
	if id, ok := tree.Root.Attrs["request_id"].(string); !ok || id == "" {
		t.Fatalf("fix root has no request_id attr: %v", tree.Root.Attrs)
	}

	// Unknown IDs are a clean 404.
	resp, _ = get(t, ts.URL+"/v1/trace/t-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace status = %d, want 404", resp.StatusCode)
	}
}

// TestTraceDisabled: without a collector the endpoints answer cleanly
// and cheaply rather than 500ing.
func TestTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := get(t, ts.URL+"/v1/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace list status = %d", resp.StatusCode)
	}
	var list traceListResponse
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if list.Enabled || len(list.Traces) != 0 {
		t.Fatalf("disabled tracing listed traces: %+v", list)
	}
	resp, _ = get(t, ts.URL+"/v1/trace/t-000001")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace get status = %d, want 404", resp.StatusCode)
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and checks
// the exposition parses, carries the TYPE headers the smoke script
// greps, and reflects the served requests.
func TestMetricsEndpoint(t *testing.T) {
	c := trace.NewCollector(0, 0, 0)
	_, ts := newTestServer(t, Config{Tracing: c})
	if status, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource}); status != http.StatusOK {
		t.Fatal("fix failed")
	}

	resp, raw := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != metrics.PromContentType {
		t.Fatalf("content type = %q", got)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE rtlfixer_fix_requests_total counter",
		"# TYPE rtlfixer_fix_latency_ms histogram",
		"# TYPE rtlfixer_stage_duration_ms histogram",
		"# TYPE rtlfixer_queue_depth gauge",
		`rtlfixer_fix_outcomes_total{outcome="ok"} 1`,
		"rtlfixer_fix_requests_total 1",
		`rtlfixer_http_responses_total{code="200"}`,
		`rtlfixer_fix_latency_ms_bucket{le="+Inf"} 1`,
		`rtlfixer_stage_duration_ms_bucket{stage="compile",le="+Inf"}`,
		`rtlfixer_cache_events_total{layer="compile",event="hit"}`,
		"rtlfixer_traces_collected_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.LastIndexByte(line, ' ') <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestRequestIDPropagation: an incoming X-Request-ID is echoed; absent
// one, the server assigns and echoes its own, and the access log (when
// configured) carries it.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	_, ts := newTestServer(t, Config{AccessLog: logger})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-7" {
		t.Fatalf("echoed id = %q, want caller-7", got)
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	assigned := resp.Header.Get("X-Request-ID")
	if !strings.HasPrefix(assigned, "r-") {
		t.Fatalf("assigned id = %q, want r- prefix", assigned)
	}

	logs := logBuf.String()
	for _, want := range []string{`"id":"caller-7"`, `"id":"` + assigned + `"`, `"path":"/v1/healthz"`, `"status":200`} {
		if !strings.Contains(logs, want) {
			t.Fatalf("access log missing %s:\n%s", want, logs)
		}
	}
}

// TestHealthzBuildInfoAndTrace: the health body reports build info and,
// with tracing on, collector occupancy.
func TestHealthzBuildInfoAndTrace(t *testing.T) {
	c := trace.NewCollector(8, 0, time.Hour)
	_, ts := newTestServer(t, Config{Tracing: c})
	if status, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource}); status != http.StatusOK {
		t.Fatal("fix failed")
	}
	resp, raw := get(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	build, ok := body["build"].(map[string]any)
	if !ok || build["go"] == "" || build["module"] != "repro" {
		t.Fatalf("bad build info: %v", body["build"])
	}
	tr, ok := body["trace"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing trace occupancy: %v", body)
	}
	if tr["collected"].(float64) < 1 || tr["ring"].(float64) < 1 {
		t.Fatalf("occupancy not reflecting the fix trace: %v", tr)
	}
}

// TestStatsCarriesStagesAndSimCheck: /v1/stats grows the stage
// breakdown and sim-check counters the loadgen table consumes.
func TestStatsCarriesStagesAndSimCheck(t *testing.T) {
	c := trace.NewCollector(0, 0, 0)
	s, ts := newTestServer(t, Config{Tracing: c})
	if status, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource}); status != http.StatusOK {
		t.Fatal("fix failed")
	}
	snap := s.Stats()
	if snap.SimCheck.Checked != 1 {
		t.Fatalf("sim checks = %+v, want 1 checked", snap.SimCheck)
	}
	if snap.SimCheck.Passed+snap.SimCheck.Failed+snap.SimCheck.Skipped != 1 {
		t.Fatalf("sim check outcome unaccounted: %+v", snap.SimCheck)
	}
	if snap.Trace == nil || snap.Trace.Collected == 0 {
		t.Fatalf("stats missing trace occupancy: %+v", snap.Trace)
	}
	for _, stage := range []string{"fix", "queue", "agent", "compile"} {
		if snap.Stages[stage].Count == 0 {
			t.Fatalf("stage %q absent from stats: %v", stage, snap.Stages)
		}
	}
	// And it round-trips through the wire form loadgen reads.
	var wire struct {
		Stages map[string]metrics.HistogramSnapshot `json:"stages"`
	}
	_, raw := get(t, ts.URL+"/v1/stats")
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Stages["compile"].Count == 0 {
		t.Fatalf("wire stages missing compile: %v", wire.Stages)
	}
	if table := trace.RenderStageTable(wire.Stages); !strings.Contains(table, "compile") {
		t.Fatalf("stage table missing compile:\n%s", table)
	}
}

// TestSimCheckDisabled: the flag removes the check entirely.
func TestSimCheckDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableSimCheck: true})
	if status, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource}); status != http.StatusOK {
		t.Fatal("fix failed")
	}
	if snap := s.Stats(); snap.SimCheck.Checked != 0 {
		t.Fatalf("disabled sim check ran: %+v", snap.SimCheck)
	}
}

// TestStatsSimObservability: with the sim check and observation on
// (both defaults), a successful fix leaves nonzero toggle coverage in
// the /v1/stats "sim" section and the rtlfixer_sim_* families on
// /metrics — the serving half of the wave-layer acceptance gate.
func TestStatsSimObservability(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if status, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource}); status != http.StatusOK {
		t.Fatal("fix failed")
	}
	snap := s.Stats()
	if snap.Sim == nil {
		t.Fatal("stats missing sim observability section")
	}
	if snap.Sim.Runs == 0 || snap.Sim.Samples == 0 {
		t.Fatalf("sim check ran unobserved: %+v", snap.Sim)
	}
	// The smoke check pulses the clock, so at minimum clk rose and fell
	// and the sequential process fired.
	if snap.Sim.Toggles == 0 || snap.Sim.LastCoveredPoints == 0 || snap.Sim.LastFraction <= 0 {
		t.Fatalf("zero toggle coverage from a clocked smoke check: %+v", snap.Sim)
	}
	if snap.Sim.LastProcsActive == 0 {
		t.Fatalf("no process activations recorded: %+v", snap.Sim)
	}
	// The fixed design compiles, so the engine profile must be live too.
	if snap.Sim.Instructions == 0 || snap.Sim.Settles == 0 || len(snap.Sim.TopOps) == 0 {
		t.Fatalf("compiled-engine profile empty: %+v", snap.Sim)
	}

	// Wire form: the "sim" key is present with the same numbers.
	var wire struct {
		Sim *SimObsSnapshot `json:"sim"`
	}
	_, raw := get(t, ts.URL+"/v1/stats")
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Sim == nil || wire.Sim.Runs != snap.Sim.Runs {
		t.Fatalf("wire sim section = %+v, want runs %d", wire.Sim, snap.Sim.Runs)
	}

	_, raw = get(t, ts.URL+"/metrics")
	text := string(raw)
	for _, want := range []string{
		"# TYPE rtlfixer_sim_toggle_coverage gauge",
		"rtlfixer_sim_observed_runs_total 1",
		"rtlfixer_sim_toggles_total",
		"rtlfixer_sim_instructions_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	// The gauge must be a parseable nonzero fraction.
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "rtlfixer_sim_toggle_coverage ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, "rtlfixer_sim_toggle_coverage "), 64)
		if err != nil || v <= 0 || v > 1 {
			t.Fatalf("bad coverage gauge %q: %v", line, err)
		}
		return
	}
	t.Fatal("rtlfixer_sim_toggle_coverage sample line absent")
}

// TestSimObserveDisabled: DisableSimObserve keeps the smoke check but
// drops the observability plane — stats omit "sim" entirely.
func TestSimObserveDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableSimObserve: true})
	if status, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource}); status != http.StatusOK {
		t.Fatal("fix failed")
	}
	snap := s.Stats()
	if snap.SimCheck.Checked != 1 {
		t.Fatalf("sim check should still run: %+v", snap.SimCheck)
	}
	if snap.Sim != nil {
		t.Fatalf("disabled observation still reported: %+v", snap.Sim)
	}
	var wire map[string]json.RawMessage
	_, raw := get(t, ts.URL+"/v1/stats")
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	if _, ok := wire["sim"]; ok {
		t.Fatalf("stats JSON carries top-level sim section when disabled:\n%s", raw)
	}
}

// TestStagesJSONPipelineOrder: the /v1/stats "stages" object must
// marshal its keys in pipeline order (trace.StageNames), not Go's
// alphabetical map order, so the JSON reads like the attribution table.
func TestStagesJSONPipelineOrder(t *testing.T) {
	c := trace.NewCollector(0, 0, 0)
	_, ts := newTestServer(t, Config{Tracing: c})
	if status, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource}); status != http.StatusOK {
		t.Fatal("fix failed")
	}
	var wire struct {
		Stages json.RawMessage `json:"stages"`
	}
	_, raw := get(t, ts.URL+"/v1/stats")
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	var stages map[string]metrics.HistogramSnapshot
	if err := json.Unmarshal(wire.Stages, &stages); err != nil {
		t.Fatal(err)
	}
	want := trace.StageNames(stages)
	if len(want) < 5 {
		t.Fatalf("too few stages to check ordering: %v", want)
	}
	// Histogram snapshot values never contain stage-name keys, so the
	// first occurrence of each `"name":` marks its position.
	text := string(wire.Stages)
	last := -1
	for _, name := range want {
		idx := strings.Index(text, `"`+name+`":`)
		if idx < 0 {
			t.Fatalf("stage %q absent from stages JSON", name)
		}
		if idx <= last {
			t.Fatalf("stages JSON out of pipeline order at %q; want %v in:\n%s", name, want, text)
		}
		last = idx
	}
}

// TestConcurrentMetricsScrapes races /metrics and /v1/stats scrapes
// against live fix traffic — under -race this is the data-race gate for
// the whole monitoring plane, including the new sim family.
func TestConcurrentMetricsScrapes(t *testing.T) {
	_, ts := newTestServer(t, Config{Tracing: trace.NewCollector(0, 0, 0)})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			src := brokenSource
			if n%2 == 0 {
				src = cleanSource
			}
			for j := 0; j < 3; j++ {
				postFix(t, ts.URL, map[string]any{"source": src})
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				resp, _ := get(t, ts.URL+"/metrics")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("metrics status = %d", resp.StatusCode)
				}
				resp, _ = get(t, ts.URL+"/v1/stats")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("stats status = %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	// After the dust settles the sim family reflects the observed runs.
	_, raw := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(raw), "rtlfixer_sim_observed_runs_total") {
		t.Fatal("sim family absent after concurrent traffic")
	}
}
