// Observability endpoints: Prometheus text exposition at GET /metrics
// and the request-trace surface at GET /v1/trace (recent + slow-retained
// list) and GET /v1/trace/{id} (one full span tree). Both read the same
// atomics and snapshots /v1/stats reads — the monitoring plane never
// contends with serving.
package server

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"

	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// handleMetrics serves GET /metrics in Prometheus exposition format
// 0.0.4. Family names carry the rtlfixer_ prefix; histograms are the
// serving latency histograms plus, when tracing is on, the per-stage
// duration histograms folded from finished request traces.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	p := metrics.NewPromWriter(w)
	st := &s.st

	p.Counter("rtlfixer_fix_requests_total", "Fix requests received.", st.fixRequests.Value())
	p.Counter("rtlfixer_lint_requests_total", "Lint requests received.", st.lintRequests.Value())
	p.Counter("rtlfixer_healthz_requests_total", "Health checks received.", st.healthzRequests.Value())
	p.Counter("rtlfixer_stats_requests_total", "Stats requests received.", st.statsRequests.Value())

	var codes []metrics.PromSample
	for _, code := range statusCodes {
		if v := st.status[code].Value(); v > 0 {
			codes = append(codes, metrics.PromSample{
				Labels: []metrics.PromLabel{{Name: "code", Value: strconv.Itoa(code)}},
				Value:  float64(v),
			})
		}
	}
	if v := st.statusOther.Value(); v > 0 {
		codes = append(codes, metrics.PromSample{
			Labels: []metrics.PromLabel{{Name: "code", Value: "other"}},
			Value:  float64(v),
		})
	}
	p.CounterVec("rtlfixer_http_responses_total", "HTTP responses by status code.", codes)

	p.CounterVec("rtlfixer_fix_outcomes_total", "Fix request outcomes.", []metrics.PromSample{
		outcomeSample("ok", st.fixOK.Value()),
		outcomeSample("failed", st.fixFailed.Value()),
		outcomeSample("coalesced", st.coalesced.Value()),
		outcomeSample("expired_before_run", st.expiredBeforeRun.Value()),
		outcomeSample("deadline_expired", st.deadlineExpired.Value()),
		outcomeSample("rejected_queue_full", st.rejectedQueueFull.Value()),
		outcomeSample("rejected_draining", st.rejectedDraining.Value()),
	})
	p.Counter("rtlfixer_agent_runs_total", "Agent debugging loops executed.", st.agentRuns.Value())

	p.Counter("rtlfixer_dispatch_batches_total", "Dispatch batches formed.", st.batches.Value())
	p.Counter("rtlfixer_dispatch_batched_jobs_total", "Jobs carried by dispatch batches.", st.batchedJobs.Value())
	p.Gauge("rtlfixer_dispatch_max_batch", "Largest batch dispatched so far.", float64(st.maxBatch.Value()))

	p.Gauge("rtlfixer_queue_depth", "Admitted fix requests not yet running.", float64(st.queueDepth.Value()))
	p.Gauge("rtlfixer_in_flight", "Agent runs executing now.", float64(st.inFlight.Value()))
	p.Gauge("rtlfixer_draining", "1 while the server refuses new fix work.", boolGauge(s.isDraining()))
	p.Gauge("rtlfixer_uptime_seconds", "Seconds since the server started.", msSince(s.start)/1000)
	p.Gauge("rtlfixer_fixer_configs", "Distinct pooled fixer configurations.", float64(s.Fixers()))

	p.Histogram("rtlfixer_fix_latency_ms", "Fix request latency, milliseconds.", st.fixLatency.Snapshot())
	p.Histogram("rtlfixer_lint_latency_ms", "Lint request latency, milliseconds.", st.lintLatency.Snapshot())

	byKind := memo.TotalsByKind()
	p.CounterVec("rtlfixer_cache_events_total", "Memoization events by cache layer.",
		append(append(
			cacheSamples("compile", byKind.Compile),
			cacheSamples("sim", byKind.Sim)...),
			cacheSamples("retrieval", byKind.Retrieval)...))

	var rules []metrics.PromSample
	for _, code := range st.findingRules {
		rules = append(rules, metrics.PromSample{
			Labels: []metrics.PromLabel{{Name: "rule", Value: code}},
			Value:  float64(st.findingsByRule[code].Value()),
		})
	}
	if v := st.findingsOther.Value(); v > 0 {
		rules = append(rules, metrics.PromSample{
			Labels: []metrics.PromLabel{{Name: "rule", Value: "other"}},
			Value:  float64(v),
		})
	}
	p.CounterVec("rtlfixer_lint_findings_total", "Analyzer findings served via /v1/lint, by rule.", rules)

	p.CounterVec("rtlfixer_sim_checks_total", "Post-fix simulation smoke checks by result.", []metrics.PromSample{
		{Labels: []metrics.PromLabel{{Name: "result", Value: "passed"}}, Value: float64(st.simPassed.Value())},
		{Labels: []metrics.PromLabel{{Name: "result", Value: "failed"}}, Value: float64(st.simFailed.Value())},
		{Labels: []metrics.PromLabel{{Name: "result", Value: "skipped"}}, Value: float64(st.simSkipped.Value())},
		{Labels: []metrics.PromLabel{{Name: "result", Value: "watchdog"}}, Value: float64(st.simWatchdog.Value())},
	})

	if s.simObs != nil {
		frac, runs, toggles, instructions := s.simObs.coverageGauge()
		p.Gauge("rtlfixer_sim_toggle_coverage", "Toggle+activation coverage fraction of the latest observed sim check.", frac)
		p.Counter("rtlfixer_sim_observed_runs_total", "Sim smoke checks run with coverage observation attached.", runs)
		p.Counter("rtlfixer_sim_toggles_total", "Signal bit-toggle events across observed sim checks.", toggles)
		p.Counter("rtlfixer_sim_instructions_total", "Compiled-engine instructions executed across observed sim checks.", instructions)
	}

	// Resilience plane.
	p.CounterVec("rtlfixer_panics_recovered_total", "Panics recovered by bulkhead site.", []metrics.PromSample{
		{Labels: []metrics.PromLabel{{Name: "site", Value: "http"}}, Value: float64(st.panicsHTTP.Value())},
		{Labels: []metrics.PromLabel{{Name: "site", Value: "worker"}}, Value: float64(st.panicsWorker.Value())},
	})
	p.Counter("rtlfixer_breaker_rejected_total", "Fix requests fast-failed by an open circuit breaker.", st.breakerRejected.Value())
	p.CounterVec("rtlfixer_llm_runs_total", "Agent runs by LLM-backend resilience event.", []metrics.PromSample{
		{Labels: []metrics.PromLabel{{Name: "event", Value: "retried"}}, Value: float64(st.llmRetriedRuns.Value())},
		{Labels: []metrics.PromLabel{{Name: "event", Value: "recovered"}}, Value: float64(st.llmRetryRecovered.Value())},
		{Labels: []metrics.PromLabel{{Name: "event", Value: "aborted"}}, Value: float64(st.llmAborted.Value())},
	})
	p.CounterVec("rtlfixer_brownout_shed_total", "Best-effort work shed under overload, by surface.", []metrics.PromSample{
		{Labels: []metrics.PromLabel{{Name: "surface", Value: "lint"}}, Value: float64(st.brownoutLintShed.Value())},
		{Labels: []metrics.PromLabel{{Name: "surface", Value: "trace"}}, Value: float64(st.brownoutTracesShed.Value())},
	})
	p.Gauge("rtlfixer_ready", "1 once the server passes /v1/readyz gating (prewarm done, not draining).", boolGauge(s.ready.Load() && !s.isDraining()))
	if s.cfg.Store != nil {
		p.Gauge("rtlfixer_store_degraded", "1 while the durable store is shedding to in-memory-only.", boolGauge(s.cfg.Store.Degraded()))
	}

	if s.stages != nil {
		snap := s.stages.Snapshot()
		series := make([]metrics.PromHistSeries, 0, len(snap))
		for _, stage := range trace.StageNames(snap) {
			series = append(series, metrics.PromHistSeries{
				Labels: []metrics.PromLabel{{Name: "stage", Value: stage}},
				Snap:   snap[stage],
			})
		}
		p.HistogramVec("rtlfixer_stage_duration_ms", "Span durations per pipeline stage, milliseconds.", series)
	}
	if s.tracer != nil {
		occ := s.tracer.Occupancy()
		p.Counter("rtlfixer_traces_collected_total", "Request traces finished and collected.", occ.Collected)
		p.Gauge("rtlfixer_trace_ring_occupancy", "Traces held in the recent-trace ring.", float64(occ.Ring))
		p.Gauge("rtlfixer_trace_ring_capacity", "Capacity of the recent-trace ring.", float64(occ.RingCap))
		p.Gauge("rtlfixer_trace_slow_retained", "Slow traces retained past ring eviction.", float64(occ.Slow))
	}
	_ = p.Err() // sticky; nothing useful to do mid-response
}

func outcomeSample(outcome string, v uint64) metrics.PromSample {
	return metrics.PromSample{
		Labels: []metrics.PromLabel{{Name: "outcome", Value: outcome}},
		Value:  float64(v),
	}
}

func cacheSamples(layer string, st memo.Stats) []metrics.PromSample {
	label := func(event string) []metrics.PromLabel {
		return []metrics.PromLabel{{Name: "layer", Value: layer}, {Name: "event", Value: event}}
	}
	return []metrics.PromSample{
		{Labels: label("hit"), Value: float64(st.Hits)},
		{Labels: label("miss"), Value: float64(st.Misses)},
		{Labels: label("eviction"), Value: float64(st.Evictions)},
		{Labels: label("lookup"), Value: float64(st.Lookups)},
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// traceListResponse is the GET /v1/trace body.
type traceListResponse struct {
	Enabled   bool            `json:"enabled"`
	Occupancy trace.Occupancy `json:"occupancy"`
	Traces    []trace.Summary `json:"traces"`
}

// handleTraceList serves GET /v1/trace: newest-first summaries of the
// retained traces (ring plus slow tier), bounded by ?limit=N.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := traceListResponse{Enabled: s.tracer != nil, Traces: []trace.Summary{}}
	if s.tracer == nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	resp.Occupancy = s.tracer.Occupancy()
	if got := s.tracer.Summaries(limit); got != nil {
		resp.Traces = got
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceGet serves GET /v1/trace/{id}: the full span tree of one
// retained trace.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || strings.ContainsRune(id, '/') {
		writeError(w, http.StatusNotFound, "trace id required: /v1/trace/{id}")
		return
	}
	tr, ok := s.tracer.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "trace %q not retained (evicted or never collected)", id)
		return
	}
	writeJSON(w, http.StatusOK, tr.JSON())
}

// buildSummary reports what binary is serving: Go toolchain, module
// version, and VCS revision when stamped (debug.ReadBuildInfo).
func buildSummary() map[string]string {
	b := map[string]string{"go": runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b["module"] = info.Main.Path
	if info.Main.Version != "" {
		b["version"] = info.Main.Version
	}
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			b["revision"] = kv.Value
		case "vcs.time":
			b["vcs_time"] = kv.Value
		}
	}
	return b
}
