package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/memo"
	"repro/internal/store"
)

// TestWarmRestartServesIdenticalResponsesFromCache is the in-process
// version of the smoke script's kill-and-restart assertion: a daemon
// restarted over the same -state-dir must answer the replayed workload
// byte-identically (modulo timing fields) and serve its first request
// with cache hits, not recomputes.
func TestWarmRestartServesIdenticalResponsesFromCache(t *testing.T) {
	dir := t.TempDir()
	req := map[string]any{"source": brokenSource, "seed": int64(7)}

	// Cold daemon: serve once, drain, flush, close.
	st1, err := store.Open(dir, store.Options{NoFlusher: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Store: st1})
	status, cold := postFix(t, ts1.URL, req)
	if status != http.StatusOK {
		t.Fatalf("cold fix status = %d: %v", status, cold)
	}
	ts1.Close()
	s1.Close()
	if err := st1.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	// Warm daemon over the same state dir.
	st2, err := store.Open(dir, store.Options{NoFlusher: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	if st2.Stats().LoadedAtOpen == 0 {
		t.Fatal("state did not survive the restart")
	}
	_, ts2 := newTestServer(t, Config{Store: st2})

	before := memo.TotalsByKind().Compile
	status, warm := postFix(t, ts2.URL, req)
	if status != http.StatusOK {
		t.Fatalf("warm fix status = %d: %v", status, warm)
	}
	delta := memo.TotalsByKind().Compile.Sub(before)
	if delta.Hits == 0 {
		t.Fatalf("warm first request must hit the restored cache: %+v", delta)
	}
	if delta.Misses != 0 {
		t.Fatalf("warm first request recompiled %d times", delta.Misses)
	}

	// Byte-identical modulo the timing/coalescing fields.
	for _, field := range []string{"success", "iterations", "final_code", "fixer_rules"} {
		cv, wv := fmtField(cold[field]), fmtField(warm[field])
		if cv != wv {
			t.Fatalf("field %q differs across restart:\ncold: %v\nwarm: %v", field, cv, wv)
		}
	}
}

func fmtField(v any) string {
	switch x := v.(type) {
	case nil:
		return "<nil>"
	case string:
		return x
	default:
		b, _ := json.Marshal(v)
		return string(b)
	}
}

// TestStatsReportsPerCacheLayersAndStore checks the /v1/stats breakdown:
// per-layer cache counters plus the store section when configured.
func TestStatsReportsPerCacheLayersAndStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoFlusher: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s, ts := newTestServer(t, Config{Store: st})
	if status, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource}); status != http.StatusOK {
		t.Fatalf("fix status = %d", status)
	}

	snap := s.Stats()
	if snap.Store == nil {
		t.Fatal("stats must carry the store section when -state-dir is set")
	}
	if snap.Store.Dir != dir {
		t.Fatalf("store dir = %q, want %q", snap.Store.Dir, dir)
	}
	if snap.Store.Stores == 0 {
		t.Fatal("serving a fix must write compile records behind")
	}
	// The aggregate must equal the sum of the per-layer counters.
	sum := snap.Cache.Compile.Hits + snap.Cache.Sim.Hits + snap.Cache.Retrieval.Hits
	if snap.Cache.Hits != sum {
		t.Fatalf("aggregate hits %d != per-layer sum %d", snap.Cache.Hits, sum)
	}

	// Without a store the section is absent.
	s2, _ := newTestServer(t, Config{})
	if s2.Stats().Store != nil {
		t.Fatal("store section must be omitted without -state-dir")
	}
}
