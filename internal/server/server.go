// Package server is the long-running fix service: a JSON HTTP API over
// one shared pool of core.RTLFixer instances, so the compile cache and
// retrieval index built for one request serve every later request.
//
// The serving spine borrows the admission-control / event-batching /
// continuous-monitoring shape of the DAQ systems in PAPERS.md:
//
//   - Bounded admission — at most MaxInFlight running plus QueueDepth
//     waiting requests are admitted; everything beyond that is refused
//     immediately with 429 rather than queued without bound.
//   - Single-flight coalescing — identical (configuration, filename,
//     source-hash, seed) requests arriving together share one agent run:
//     a thundering herd costs one run, and every waiter gets the result.
//   - Batched dispatch — admitted requests are collected into small
//     batches (bounded size and linger) and fanned out through
//     internal/pipeline workers, the same pool the offline benchmarks
//     use; each request is answered the moment its own job completes.
//   - Per-request deadlines — every request carries a deadline
//     (timeout_ms, clamped to server bounds); expiry answers 504 while
//     the non-preemptible agent run finishes in the background and still
//     warms the cache.
//   - Graceful drain — BeginDrain refuses new work with 503 while
//     admitted requests run to completion; Drain waits for them.
//
// The resilience plane (resilience.go) hardens that spine: handler and
// worker panics are recovered into typed 500s, per-fixer-configuration
// circuit breakers fail fast after consecutive bad runs, overload browns
// out best-effort surfaces (lint, tracing) before fix traffic, and
// /v1/readyz separates routability (drain, warm-up, store degradation)
// from /v1/healthz liveness.
//
// Endpoints: POST /v1/fix, POST /v1/lint, GET /v1/healthz,
// GET /v1/readyz, GET /v1/stats.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/fault"
	"repro/internal/memo"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config tunes the service. The zero value is usable: every field has a
// serving-sensible default.
type Config struct {
	// Seed is the base seed shared by every pooled fixer; a request's
	// own seed selects the problem instance (core.RTLFixer.Fix's
	// sampleSeed), so one daemon is reproducible end to end.
	Seed int64
	// MaxInFlight bounds concurrently running fix requests; <= 0 means
	// 2 x NumCPU.
	MaxInFlight int
	// QueueDepth bounds admitted-but-waiting fix requests beyond
	// MaxInFlight; < 0 means 0, 0 means the default 64.
	QueueDepth int
	// MaxBatch bounds how many queued requests one dispatch batch may
	// carry; <= 0 means MaxInFlight.
	MaxBatch int
	// BatchLinger is how long the dispatcher waits to fill a batch after
	// its first request arrives; <= 0 means 2ms.
	BatchLinger time.Duration
	// Workers sizes the pipeline pool each batch fans out over; <= 0
	// means NumCPU.
	Workers int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// <= 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request deadlines; <= 0 means 2m.
	MaxTimeout time.Duration
	// MaxSourceBytes bounds request source size; <= 0 means 1 MiB.
	MaxSourceBytes int
	// DisableCoalesce turns off single-flight coalescing (for A/B load
	// tests; every request then runs its own agent loop).
	DisableCoalesce bool
	// DisableCache builds the pooled fixers without the memo layer.
	DisableCache bool
	// Store, when non-nil, is the durable state layer (internal/store)
	// under every pooled fixer's caches: each fixer warm-starts from it
	// at construction and writes fresh results behind, so a restarted
	// daemon serves its first requests from cache. The caller owns the
	// store's lifecycle (rtlfixerd flushes and closes it after drain);
	// /v1/stats and /v1/healthz report its size, flush lag, and
	// load/store counters.
	Store *store.Store
	// Logf, when non-nil, receives one line per lifecycle event
	// (start/drain) — never one per request.
	Logf func(format string, args ...any)
	// Tracing, when non-nil, collects one span tree per request: the
	// whole path (admission → queue → run → agent iterations → compile/
	// rag/llm, plus the post-fix sim check) is recorded and served at
	// GET /v1/trace (recent list) and GET /v1/trace/{id} (full tree).
	// Nil disables tracing: the no-op span chain keeps every hot path
	// allocation-free and responses byte-identical.
	Tracing *trace.Collector
	// DisableSimCheck turns off the post-fix simulation smoke check: by
	// default a successful fix's final code is elaborated and pulsed for
	// one clock cycle through the shared sim cache — a cheap behavioral
	// sanity signal (and the serving path's only exercise of the
	// simulation engine). The response body is unchanged either way;
	// outcomes surface in /v1/stats and on the request trace.
	DisableSimCheck bool
	// DisableSimObserve turns off simulation-layer observability on the
	// smoke check (waveform-less toggle coverage plus, on the compiled
	// backend, the engine profile). On by default whenever the sim check
	// runs; results surface under /v1/stats "sim" and the
	// rtlfixer_sim_* metrics families. Responses are unchanged either
	// way.
	DisableSimObserve bool
	// AccessLog, when non-nil, receives one structured record per HTTP
	// request (request id, method, path, status, duration). Request IDs
	// honor an incoming X-Request-ID header and are echoed back on the
	// response either way.
	AccessLog *slog.Logger
	// Prewarm builds the default fixer configuration in the background at
	// startup; /v1/readyz answers 503 "warming" until it is pooled, so a
	// fleet's load balancer only routes to daemons whose first request
	// will not pay index construction. Off by default (tests and
	// single-shot tools want a synchronously-ready server).
	Prewarm bool
	// BreakerThreshold is how many consecutive failed agent runs against
	// one fixer configuration open its circuit breaker (new requests for
	// that configuration get an immediate 503 until the cooldown's
	// half-open probe succeeds). <= 0 means 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting a
	// half-open probe through; <= 0 means 5s.
	BreakerCooldown time.Duration
	// BrownoutThreshold is the admission-fill fraction past which the
	// server browns out best-effort surfaces (lint answers 503, new
	// request traces are shed) to keep capacity for fix traffic; <= 0
	// means 0.9, >= 1 effectively disables brownout.
	BrownoutThreshold float64
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.NumCPU()
	}
	switch {
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	case c.QueueDepth == 0:
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = c.MaxInFlight
	}
	if c.BatchLinger <= 0 {
		c.BatchLinger = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BrownoutThreshold <= 0 {
		c.BrownoutThreshold = 0.9
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// fixerKey identifies one pooled fixer configuration.
type fixerKey struct {
	compiler string
	persona  string
	mode     core.Mode
	rag      bool
	iters    int
	analyze  bool
}

// Server is the fix service. It implements http.Handler; wire it into an
// http.Server (cmd/rtlfixerd does) or httptest (the tests do).
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time
	st    serverStats

	// fixers pools one core.RTLFixer per configuration, lazily built, so
	// every request against the same configuration shares its compile
	// cache and retrieval index.
	fixersMu sync.Mutex
	fixers   map[fixerKey]*core.RTLFixer

	// Admission + dispatch state lives in dispatch.go.
	admitMu  sync.RWMutex // guards draining and sends into queue
	draining bool
	queue    chan *flight
	admitted chan struct{} // capacity = MaxInFlight + QueueDepth
	runSlots chan struct{} // capacity = MaxInFlight: bounds executing runs
	batchWG  sync.WaitGroup

	flightsMu sync.Mutex
	flights   map[flightKey]*flight
	flightWG  sync.WaitGroup

	stop           chan struct{} // closed by Close: cancels queued work
	stopOnce       sync.Once
	queueCloseOnce sync.Once
	dispatcherDone chan struct{}

	// testHook, when non-nil, runs at the start of every agent run (test
	// seam for blocking runs; set before serving traffic).
	testHook func(f *flight)

	// Resilience plane (resilience.go): per-fixer-configuration circuit
	// breakers, the readiness latch /v1/readyz gates on, and the
	// admission-fill mark past which best-effort surfaces brown out.
	breakersMu sync.Mutex
	breakers   map[fixerKey]*resilience.Breaker
	ready      atomic.Bool
	brownoutAt int

	// Observability plane. tracer aliases cfg.Tracing (nil = off);
	// stages folds finished traces into per-stage latency histograms
	// for /metrics, /v1/stats, and the loadgen breakdown table.
	tracer *trace.Collector
	stages *trace.StageAgg
	// simCache backs the post-fix simulation smoke check (nil when
	// disabled); shared across requests like the fixer pool's caches.
	simCache *memo.SimCache
	// simObs aggregates sim-check coverage and engine profiles
	// (simobs.go); nil when the check or its observability is off.
	simObs *simObs
	// reqSeq numbers requests that arrive without an X-Request-ID.
	reqSeq atomic.Uint64
}

// New builds and starts a server (its dispatcher goroutine runs until
// Close or Drain).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:            cfg,
		start:          time.Now(),
		fixers:         map[fixerKey]*core.RTLFixer{},
		queue:          make(chan *flight, cfg.MaxInFlight+cfg.QueueDepth),
		admitted:       make(chan struct{}, cfg.MaxInFlight+cfg.QueueDepth),
		runSlots:       make(chan struct{}, cfg.MaxInFlight),
		flights:        map[flightKey]*flight{},
		stop:           make(chan struct{}),
		dispatcherDone: make(chan struct{}),
		breakers:       map[fixerKey]*resilience.Breaker{},
	}
	s.st.init()
	s.brownoutAt = int(cfg.BrownoutThreshold * float64(cfg.MaxInFlight+cfg.QueueDepth))
	if s.brownoutAt < 1 {
		s.brownoutAt = 1
	}
	s.tracer = cfg.Tracing
	if s.tracer != nil {
		s.stages = trace.NewStageAgg()
		s.tracer.SetOnFinish(s.stages.Observe)
	}
	if !cfg.DisableSimCheck {
		s.simCache = memo.NewSimCache(0)
		if !cfg.DisableSimObserve {
			s.simObs = newSimObs()
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/fix", s.handleFix)
	s.mux.HandleFunc("/v1/lint", s.handleLint)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/trace", s.handleTraceList)
	s.mux.HandleFunc("/v1/trace/", s.handleTraceGet)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.Prewarm {
		go s.prewarm()
	} else {
		s.ready.Store(true)
	}
	go s.dispatch()
	return s
}

// requestIDKey carries the per-request ID on the request context.
type requestIDKey struct{}

// requestID returns the ID ServeHTTP assigned to this request ("" for
// requests not routed through ServeHTTP, e.g. direct handler tests).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ServeHTTP implements http.Handler: it assigns (or propagates) the
// request ID, echoes it as a response header, records per-status
// counters, and emits one structured access-log record when configured.
// It is also the process's handler-panic bulkhead: a panicking handler
// is recovered into a typed 500 (when nothing was written yet) and a
// counter, and the daemon keeps serving.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
	}
	w.Header().Set("X-Request-ID", id)
	r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
	rec := &statusRecorder{ResponseWriter: w}
	func() {
		defer func() {
			if rv := recover(); rv != nil {
				pe := resilience.Recovered("http", rv)
				s.st.panicsHTTP.Inc()
				s.cfg.logf("server: recovered handler panic on %s %s: %v\n%s",
					r.Method, r.URL.Path, pe.Value, pe.Stack)
				if rec.status == 0 {
					writeError(rec, http.StatusInternalServerError,
						"internal error: handler panicked (recovered; server healthy)")
				}
			}
		}()
		s.mux.ServeHTTP(rec, r)
	}()
	s.st.countStatus(rec.code())
	if s.cfg.AccessLog != nil {
		s.cfg.AccessLog.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.code()),
			slog.Float64("dur_ms", msSince(started)))
	}
}

// statusRecorder captures the response status for the stats counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) code() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

// fixRequest is the POST /v1/fix (and, minus the agent fields, /v1/lint)
// body. Omitted fields take the documented defaults.
type fixRequest struct {
	// Source is the erroneous Verilog (required).
	Source string `json:"source"`
	// Filename appears in compiler logs; default "main.v".
	Filename string `json:"filename"`
	// Compiler is the feedback persona; default "quartus".
	Compiler string `json:"compiler"`
	// Persona is the simulated LLM; default "gpt-3.5".
	Persona string `json:"persona"`
	// Mode is "react" or "one-shot"; default "react".
	Mode string `json:"mode"`
	// RAG consults the retrieval database; default true.
	RAG *bool `json:"rag"`
	// MaxIterations bounds ReAct revisions; 0 = the paper's 10.
	MaxIterations int `json:"max_iterations"`
	// Analyze runs the semantic lint rules over the source: /v1/lint
	// appends their findings to the response, /v1/fix surfaces them in the
	// model's feedback. Default true.
	Analyze *bool `json:"analyze"`
	// Seed selects the problem instance (sampleSeed); default 1.
	Seed *int64 `json:"seed"`
	// TimeoutMS is the request deadline; 0 = server default.
	TimeoutMS int64 `json:"timeout_ms"`
	// Transcript asks for the rendered ReAct transcript in the response.
	Transcript bool `json:"transcript"`
}

// fixResponse is the POST /v1/fix success body.
type fixResponse struct {
	Success    bool     `json:"success"`
	Iterations int      `json:"iterations"`
	FinalCode  string   `json:"final_code"`
	FixerRules []string `json:"fixer_rules,omitempty"`
	// Coalesced is true when this response was served by a run another
	// request started.
	Coalesced bool `json:"coalesced"`
	// ElapsedMS is the agent run's wall-clock time (shared by every
	// coalesced waiter), not the request's queueing time.
	ElapsedMS  float64 `json:"elapsed_ms"`
	Transcript string  `json:"transcript,omitempty"`
}

// lintPos is a secondary source position inside a lint finding.
type lintPos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// lintFinding is one structured diagnostic in the /v1/lint response.
// Compiler-frontend diagnostics have an empty rule; analyzer findings
// carry their stable L-code.
type lintFinding struct {
	Rule     string    `json:"rule,omitempty"`
	Severity string    `json:"severity"`
	Category string    `json:"category"`
	Line     int       `json:"line"`
	Col      int       `json:"col"`
	Symbol   string    `json:"symbol,omitempty"`
	Message  string    `json:"message"`
	Related  []lintPos `json:"related,omitempty"`
}

// lintResponse is the POST /v1/lint success body.
type lintResponse struct {
	Ok       bool          `json:"ok"`
	Log      string        `json:"log"`
	Errors   int           `json:"errors"`
	Findings []lintFinding `json:"findings"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeFixerError distinguishes a bad configuration (client error) from
// an exhausted fixer pool (server-side bound).
func writeFixerError(w http.ResponseWriter, err error) {
	if errors.Is(err, errFixerPoolFull) {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// decodeFixRequest parses and validates a request body, applying
// defaults. A nil error means req is servable.
func (s *Server) decodeFixRequest(w http.ResponseWriter, r *http.Request) (*fixRequest, bool) {
	// JSON escaping inflates the wire form (\n, \", \\ are two bytes
	// each), so allow the body twice the source budget plus envelope
	// slack; the exact check below is on the decoded source length.
	body := http.MaxBytesReader(w, r.Body, 2*int64(s.cfg.MaxSourceBytes)+8192)
	var req fixRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", s.cfg.MaxSourceBytes)
		} else {
			writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return nil, false
	}
	if strings.TrimSpace(req.Source) == "" {
		writeError(w, http.StatusBadRequest, "source is required")
		return nil, false
	}
	if len(req.Source) > s.cfg.MaxSourceBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "source over %d bytes", s.cfg.MaxSourceBytes)
		return nil, false
	}
	if req.Filename == "" {
		req.Filename = "main.v"
	}
	if req.Compiler == "" {
		req.Compiler = "quartus"
	}
	if req.Persona == "" {
		req.Persona = "gpt-3.5"
	}
	if req.Mode == "" {
		req.Mode = string(core.ModeReAct)
	}
	if req.Mode != string(core.ModeReAct) && req.Mode != string(core.ModeOneShot) {
		writeError(w, http.StatusBadRequest, "mode must be %q or %q", core.ModeReAct, core.ModeOneShot)
		return nil, false
	}
	if req.MaxIterations < 0 || req.MaxIterations > maxRequestIterations {
		writeError(w, http.StatusBadRequest, "max_iterations must be in [0, %d]", maxRequestIterations)
		return nil, false
	}
	if req.MaxIterations == 0 {
		// Normalize to the effective default so "omitted" and "10" share
		// one pooled fixer and coalesce together.
		req.MaxIterations = agent.DefaultMaxIterations
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "timeout_ms must be >= 0")
		return nil, false
	}
	return &req, true
}

func (r *fixRequest) rag() bool {
	if r.RAG == nil {
		return true
	}
	return *r.RAG
}

func (r *fixRequest) analyze() bool {
	if r.Analyze == nil {
		return true
	}
	return *r.Analyze
}

func (r *fixRequest) seed() int64 {
	if r.Seed == nil {
		return 1
	}
	return *r.Seed
}

func (r *fixRequest) key() fixerKey {
	return fixerKey{
		compiler: r.Compiler,
		persona:  r.Persona,
		mode:     core.Mode(r.Mode),
		rag:      r.rag(),
		iters:    r.MaxIterations,
		analyze:  r.analyze(),
	}
}

// timeout clamps the request deadline to server bounds.
func (s *Server) timeout(req *fixRequest) time.Duration {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// Request-surface bounds on the fixer pool. Every field of fixerKey is
// client-controlled, so both the key space (iterations clamp) and the
// pool itself are capped — otherwise a request sweep could allocate one
// compile cache + retrieval index per distinct configuration, forever.
const (
	maxRequestIterations = 100
	maxFixerConfigs      = 64
)

// errFixerPoolFull maps to 503 in the handlers.
var errFixerPoolFull = errors.New("fixer pool full: too many distinct configurations")

// fixerFor returns the pooled fixer for a configuration, building it on
// first use. The pool is the point of the daemon: every request against
// the same configuration shares one compile cache and retrieval index.
// Construction runs outside fixersMu — with a store attached it scans
// persisted records (disk I/O), and that must never stall every other
// request behind the pool lock. Racing builders of one configuration
// both construct; the loser's fixer is discarded.
func (s *Server) fixerFor(key fixerKey) (*core.RTLFixer, error) {
	s.fixersMu.Lock()
	if f, ok := s.fixers[key]; ok {
		s.fixersMu.Unlock()
		return f, nil
	}
	if len(s.fixers) >= maxFixerConfigs {
		s.fixersMu.Unlock()
		return nil, errFixerPoolFull
	}
	s.fixersMu.Unlock()

	// A nil *store.Store must stay a nil Backing interface: a typed nil
	// would read as "store present" inside core.New.
	var backing store.Backing
	if s.cfg.Store != nil {
		backing = s.cfg.Store
	}
	f, err := core.New(core.Options{
		CompilerName:    key.compiler,
		PersonaName:     key.persona,
		RAG:             key.rag,
		Mode:            key.mode,
		MaxIterations:   key.iters,
		Seed:            s.cfg.Seed,
		Cache:           !s.cfg.DisableCache,
		DisableAnalyzer: !key.analyze,
		Store:           backing,
	})
	if err != nil {
		return nil, err
	}

	s.fixersMu.Lock()
	defer s.fixersMu.Unlock()
	if cur, ok := s.fixers[key]; ok {
		return cur, nil // a racer registered first; serve its fixer
	}
	if len(s.fixers) >= maxFixerConfigs {
		return nil, errFixerPoolFull
	}
	s.fixers[key] = f
	return f, nil
}

// Fixers reports how many distinct configurations the pool holds.
func (s *Server) Fixers() int {
	s.fixersMu.Lock()
	defer s.fixersMu.Unlock()
	return len(s.fixers)
}

// handleFix serves POST /v1/fix: admit, coalesce, dispatch, wait.
func (s *Server) handleFix(w http.ResponseWriter, r *http.Request) {
	s.st.fixRequests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if fault.Hit(fault.HandlerPanic) {
		panic("fault: injected handler panic")
	}
	started := time.Now()
	root := s.traceStart("fix")
	defer root.End()
	root.SetStr("request_id", requestID(r.Context()))

	adm := root.Child("admission")
	req, ok := s.decodeFixRequest(w, r)
	if !ok {
		adm.SetStr("outcome", "bad_request")
		adm.End()
		return
	}
	root.SetStr("filename", req.Filename)
	root.SetStr("compiler", req.Compiler)
	root.SetStr("mode", req.Mode)
	root.SetInt("seed", req.seed())
	fixer, err := s.fixerFor(req.key())
	if err != nil {
		adm.SetStr("outcome", "fixer_error")
		adm.End()
		writeFixerError(w, err)
		return
	}
	br := s.breakerFor(req.key())
	if !br.Allow() {
		adm.SetStr("outcome", "breaker_open")
		adm.End()
		s.st.breakerRejected.Inc()
		writeError(w, http.StatusServiceUnavailable,
			"circuit breaker open for this fixer configuration; retry after cooldown")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req))
	defer cancel()

	f, coalesced, err := s.joinOrLead(ctx, req, fixer, root)
	if err != nil {
		switch {
		case errors.Is(err, errDraining):
			adm.SetStr("outcome", "rejected_draining")
			s.st.rejectedDraining.Inc()
			writeError(w, http.StatusServiceUnavailable, "server is draining")
		case errors.Is(err, errQueueFull):
			adm.SetStr("outcome", "rejected_queue_full")
			s.st.rejectedQueueFull.Inc()
			writeError(w, http.StatusTooManyRequests, "admission queue full (%d in flight + %d queued)",
				s.cfg.MaxInFlight, s.cfg.QueueDepth)
		default:
			adm.SetStr("outcome", "error")
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		adm.End()
		return
	}
	if coalesced {
		adm.SetStr("outcome", "coalesced")
		s.st.coalesced.Inc()
	} else {
		adm.SetStr("outcome", "admitted")
	}
	adm.End()
	root.SetBool("coalesced", coalesced)

	wait := root.Child("wait")
	select {
	case <-f.done:
		wait.End()
	case <-ctx.Done():
		wait.SetBool("expired", true)
		wait.End()
		root.SetStr("outcome", "deadline_expired")
		s.st.deadlineExpired.Inc()
		s.st.fixLatency.Observe(msSince(started))
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %v", s.timeout(req))
		return
	}

	s.st.fixLatency.Observe(msSince(started))
	// Only the leader of a non-coalesced flight records the run's outcome
	// on the breaker, so one bad run counts once no matter how many
	// waiters shared it.
	if !coalesced {
		s.recordBreaker(br, f)
	}
	switch {
	case f.err != nil:
		if _, isPanic := resilience.AsPanic(f.err); isPanic {
			root.SetStr("outcome", "panic")
			writeError(w, http.StatusInternalServerError,
				"internal error: agent run panicked (isolated; server healthy)")
			break
		}
		root.SetStr("outcome", "canceled")
		writeError(w, http.StatusServiceUnavailable, "run canceled: %v", f.err)
	case f.tr == nil:
		// The leader's deadline expired before the run started, so the
		// batch skipped it; this waiter raced the same fate.
		root.SetStr("outcome", "expired_before_run")
		s.st.deadlineExpired.Inc()
		writeError(w, http.StatusGatewayTimeout, "coalesced run expired before starting")
	case f.tr.Aborted != "":
		// The (simulated) LLM backend stayed down past the retry budget:
		// the upstream dependency failed, not the request — 502.
		root.SetStr("outcome", "llm_aborted")
		writeError(w, http.StatusBadGateway, "llm backend failed: %s", f.tr.Aborted)
	default:
		resp := fixResponse{
			Success:    f.tr.Success,
			Iterations: f.tr.Iterations,
			FinalCode:  f.tr.FinalCode,
			FixerRules: f.tr.FixerRules,
			Coalesced:  coalesced,
			ElapsedMS:  float64(f.elapsed) / float64(time.Millisecond),
		}
		if req.Transcript {
			resp.Transcript = f.tr.Render()
		}
		root.SetStr("outcome", "ok")
		root.SetBool("success", f.tr.Success)
		if f.tr.Success {
			s.st.fixOK.Inc()
		} else {
			s.st.fixFailed.Inc()
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleLint serves POST /v1/lint: one compile, no agent, no queue (a
// lint is a single frontend pass — orders of magnitude cheaper than a fix
// run, and served from the shared compile cache on repeats).
func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	s.st.lintRequests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.brownedOut() {
		// Lint is a best-effort surface: under fix-traffic pressure it is
		// the first thing shed (the degradation ladder's brownout rung).
		s.st.brownoutLintShed.Inc()
		writeError(w, http.StatusServiceUnavailable, "lint shed under load (brownout); retry later")
		return
	}
	started := time.Now()
	req, ok := s.decodeFixRequest(w, r)
	if !ok {
		return
	}
	root := s.traceStart("lint")
	root.SetStr("request_id", requestID(r.Context()))
	root.SetStr("filename", req.Filename)
	defer root.End()
	fixer, err := s.fixerFor(req.key())
	if err != nil {
		writeFixerError(w, err)
		return
	}
	cs := root.Child("compile")
	res := fixer.Lint(req.Filename, req.Source)
	cs.SetBool("ok", res.Ok)
	cs.End()
	root.SetBool("ok", res.Ok)
	resp := lintResponse{Ok: res.Ok, Log: res.Log, Findings: []lintFinding{}}
	for _, d := range res.Diags {
		if d.Severity == diag.SeverityError {
			resp.Errors++
		}
		f := lintFinding{
			Rule:     d.Rule,
			Severity: d.Severity.String(),
			Category: d.Category.String(),
			Line:     d.Pos.Line,
			Col:      d.Pos.Col,
			Symbol:   d.Symbol,
			Message:  d.Message,
		}
		for _, rp := range d.Related {
			f.Related = append(f.Related, lintPos{Line: rp.Line, Col: rp.Col})
		}
		resp.Findings = append(resp.Findings, f)
		if d.Rule != "" {
			s.st.countFinding(d.Rule)
		}
	}
	s.st.lintLatency.Observe(msSince(started))
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /v1/healthz: pure liveness, always 200 while
// the process can answer at all. Routability — drain, warm-up, store
// degradation — lives on /v1/readyz (resilience.go); healthz still
// names those states in its body so one curl tells an operator the
// story, but a draining or degraded daemon is alive, not dead. With a
// durable store attached, the body carries its size and flush lag so
// operators can see unflushed work at a glance.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.st.healthzRequests.Inc()
	body := map[string]any{}
	if s.cfg.Store != nil {
		// Brief, not Stats: healthz is polled, and the full snapshot
		// walks the whole index under the store's serving mutex.
		body["store"] = s.cfg.Store.Brief()
		body["degraded"] = s.cfg.Store.Degraded()
	}
	body["build"] = buildSummary()
	if s.tracer != nil {
		body["trace"] = s.tracer.Occupancy()
	}
	if s.isDraining() {
		body["status"] = "draining"
	} else {
		body["status"] = "ok"
	}
	body["uptime_ms"] = msSince(s.start)
	writeJSON(w, http.StatusOK, body)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
