// Admission, single-flight coalescing, and batched dispatch for the fix
// service. The flow for one POST /v1/fix:
//
//	handler ── joinOrLead ──┬── follower: wait on an existing flight
//	                        └── leader: admit → enqueue → wait
//	dispatcher ── collect a batch (≤ MaxBatch, ≤ BatchLinger) ──
//	           └─ each batch runs in its own goroutine: pipeline.Run
//	              fans it over Workers goroutines, agent runs gated by
//	              the MaxInFlight run-slot semaphore; each flight is
//	              finished (result stored, waiters woken) the moment its
//	              own job completes (pipeline OnResult), so a slow run
//	              never head-of-line-blocks an unrelated request.
//
// Admission is a counting semaphore over leaders only: coalesced
// followers ride for free, which is exactly the point — a thundering
// herd of identical requests consumes one admission slot and one agent
// run. Everything here is bounded: the queue channel's capacity equals
// the admission limit, so enqueues never block and overflow is an
// immediate 429 at the handler.
package server

import (
	"context"
	"errors"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/memo"
	"repro/internal/pipeline"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Admission failures, mapped to HTTP statuses by the fix handler.
var (
	errQueueFull = errors.New("admission queue full")
	errDraining  = errors.New("draining")
	// errShutdown marks runs aborted by Close before they started; their
	// waiters get 503, distinct from a genuine deadline 504.
	errShutdown = errors.New("server closed before the run started")
)

// flightKey identifies coalescable work: same fixer configuration, same
// file, same source content, same problem instance.
type flightKey struct {
	cfg      fixerKey
	filename string
	srcHash  uint64
	seed     int64
}

// flight is one scheduled agent run plus everyone waiting on it. The
// leader creates it and pays admission; followers join while it is still
// in the flights map. finish stores the outcome and closes done.
type flight struct {
	key      flightKey
	fixer    *core.RTLFixer
	filename string
	source   string
	seed     int64
	// waiters holds the request context of the leader and every
	// coalesced follower (guarded by Server.flightsMu). A queued flight
	// is only skipped when every waiter's context is dead — a follower
	// with a healthy deadline keeps the run alive even if the leader
	// timed out or disconnected.
	waiters []context.Context
	done    chan struct{}

	// root is the leader's request trace span (nil with tracing off or
	// for FNV-collision flights); queueSpan covers admission → run-slot
	// acquisition. Only the leader's trace carries the run: coalesced
	// followers' traces record their own admission and wait, and the
	// shared agent work appears once, under the request that started it.
	root      *trace.Span
	queueSpan *trace.Span

	// Outcome, valid after done is closed.
	tr      *agent.Transcript
	elapsed time.Duration
	err     error
}

// joinOrLead coalesces the request onto an in-flight identical run when
// possible, otherwise admits a new flight. The returned bool is true for
// a coalesced follower. Lock order: flightsMu, then admitMu (read side);
// nothing acquires them the other way around.
func (s *Server) joinOrLead(ctx context.Context, req *fixRequest, fixer *core.RTLFixer, root *trace.Span) (*flight, bool, error) {
	key := flightKey{cfg: req.key(), filename: req.Filename, srcHash: memo.HashSource(req.Source), seed: req.seed()}

	s.flightsMu.Lock()
	defer s.flightsMu.Unlock()
	existing, exists := s.flights[key]
	if !s.cfg.DisableCoalesce && exists && existing.source == req.Source {
		existing.waiters = append(existing.waiters, ctx)
		return existing, true, nil
	}
	f := &flight{
		key:      key,
		fixer:    fixer,
		filename: req.Filename,
		source:   req.Source,
		seed:     req.seed(),
		waiters:  []context.Context{ctx},
		done:     make(chan struct{}),
		root:     root,
	}
	if err := s.admitLocked(f); err != nil {
		return nil, false, err
	}
	// Register for coalescing unless the slot is taken by an FNV
	// collision (same key, different source) — that flight runs
	// unregistered and cannot be joined.
	if !s.cfg.DisableCoalesce && !exists {
		s.flights[key] = f
	}
	return f, false, nil
}

// admitLocked charges the admission semaphore and enqueues the flight.
// Callers hold flightsMu; the admit lock's read side is taken here so a
// send into queue can never race BeginDrain's close-off.
func (s *Server) admitLocked(f *flight) error {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.admitted <- struct{}{}:
	default:
		return errQueueFull
	}
	s.flightWG.Add(1)
	s.st.queueDepth.Inc()
	// The queue span opens the moment admission is charged and closes
	// when the run slot is acquired (or the flight dies first), so its
	// duration is exactly the time the request read as "queued".
	f.queueSpan = f.root.Child("queue")
	s.queue <- f // capacity == admission limit: never blocks
	return nil
}

// dispatch is the batching loop: take the first queued flight, linger
// briefly to fill a batch, fan the batch out through internal/pipeline,
// repeat. Batches run concurrently (tracked by batchWG) so one slow job
// never head-of-line-blocks later arrivals; the number of agent runs
// actually executing is bounded separately by the runSlots semaphore
// (MaxInFlight), which is what makes concurrent batches safe.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := s.collectBatch(first)
		s.batchWG.Add(1)
		go func() {
			defer s.batchWG.Done()
			s.runBatch(batch)
		}()
	}
}

// collectBatch gathers up to MaxBatch flights, waiting at most
// BatchLinger after the first one — the DAQ event-building compromise
// between batching efficiency and added latency.
func (s *Server) collectBatch(first *flight) []*flight {
	batch := []*flight{first}
	if s.cfg.MaxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchLinger)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case f, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, f)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// runBatch fans one batch over the pipeline pool. Each flight completes
// individually via OnResult, so a fast job never waits for a slow
// batchmate's response (only for the batch's worker slots).
func (s *Server) runBatch(batch []*flight) {
	s.st.batches.Inc()
	s.st.batchedJobs.Add(uint64(len(batch)))
	s.st.recordBatchSize(len(batch))

	jobs := make([]pipeline.Job, len(batch))
	for i, f := range batch {
		jobs[i] = pipeline.Job{Filename: f.filename, Code: f.source, SampleSeed: f.seed}
	}
	// The queueDepth gauge counts admitted-not-yet-running requests; it
	// is decremented only once a run slot is held (or the flight dies
	// first), so slot-waiting jobs still read as queued in /v1/stats.
	fn := func(_ context.Context, j pipeline.Job) *agent.Transcript {
		f := batch[j.Index]
		if !s.flightAliveOrRetire(f) {
			// Every waiter's deadline expired before the run started.
			// Skip the work; finish delivers tr == nil.
			s.st.queueDepth.Dec()
			s.st.expiredBeforeRun.Inc()
			f.queueSpan.SetStr("outcome", "expired")
			f.queueSpan.End()
			return nil
		}
		// Concurrent batches share the MaxInFlight run slots; waiting
		// here is the queueing the admission budget promised.
		select {
		case s.runSlots <- struct{}{}:
		case <-s.stop:
			// Safe to write here: fn and this job's finish (via
			// OnResult) run sequentially, and finish only overwrites
			// err on a pipeline-level cancellation.
			s.st.queueDepth.Dec()
			f.err = errShutdown
			f.queueSpan.SetStr("outcome", "shutdown")
			f.queueSpan.End()
			return nil
		}
		defer func() { <-s.runSlots }()
		s.st.queueDepth.Dec()
		if !s.flightAliveOrRetire(f) {
			s.st.expiredBeforeRun.Inc()
			f.queueSpan.SetStr("outcome", "expired")
			f.queueSpan.End()
			return nil
		}
		f.queueSpan.End()
		if s.testHook != nil {
			s.testHook(f)
		}
		s.st.inFlight.Inc()
		defer s.st.inFlight.Dec()
		s.st.agentRuns.Inc()
		if fault.Hit(fault.WorkerPanic) {
			// Deliberately past the gauges and their defers: the injected
			// panic unwinds through them exactly like a real one, and the
			// pipeline's recover turns it into this job's PanicError.
			panic("fault: injected worker panic")
		}
		run := f.root.Child("run")
		run.SetInt("batch_size", int64(len(batch)))
		ag := run.Child("agent")
		tr := f.fixer.FixTraced(f.filename, f.source, f.seed, ag)
		if tr != nil {
			ag.SetBool("success", tr.Success)
			ag.SetInt("iterations", int64(tr.Iterations))
			// Per-run resilience accounting (per run, not per waiter —
			// coalesced followers share one transcript).
			if tr.LLMRetries > 0 {
				s.st.llmRetriedRuns.Inc()
				if tr.Aborted == "" {
					s.st.llmRetryRecovered.Inc()
				}
			}
			if tr.Aborted != "" {
				s.st.llmAborted.Inc()
			}
		}
		ag.End()
		s.simCheck(tr, run)
		run.End()
		return tr
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { // Close aborts jobs that have not started
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	_, _ = pipeline.Run(ctx, pipeline.Config{
		Workers: s.cfg.Workers,
		OnResult: func(r pipeline.Result) {
			f := batch[r.Job.Index]
			if pe, isPanic := resilience.AsPanic(r.Err); isPanic {
				// The run panicked mid-flight: fn's defers already
				// released the run slot and gauges during the unwind, so
				// no queue-depth charge is outstanding here.
				s.st.panicsWorker.Inc()
				s.cfg.logf("server: agent run panicked (isolated): %v\n%s", pe.Value, pe.Stack)
			} else if r.Err != nil {
				// Canceled before it ran (server Close): the queue-depth
				// charge from admission is still outstanding.
				s.st.queueDepth.Dec()
			}
			s.finish(f, r)
		},
	}, jobs, fn)
}

// finish publishes a flight's outcome and releases its admission slot.
// The flight leaves the map before done closes, so late arrivals start a
// fresh run instead of reading a completed flight.
func (s *Server) finish(f *flight, r pipeline.Result) {
	s.flightsMu.Lock()
	if cur, ok := s.flights[f.key]; ok && cur == f {
		delete(s.flights, f.key)
	}
	s.flightsMu.Unlock()

	f.tr = r.Transcript
	f.elapsed = r.Elapsed
	if r.Err != nil {
		f.err = r.Err // preserve a pre-set errShutdown otherwise
	}
	close(f.done)

	<-s.admitted // release the admission slot
	s.flightWG.Done()
}

// flightAliveOrRetire reports whether any waiter still cares about the
// flight. When every waiter's context is dead the flight is removed from
// the coalescing map in the same critical section, so no follower with a
// healthy deadline can join a flight already condemned to be skipped.
func (s *Server) flightAliveOrRetire(f *flight) bool {
	s.flightsMu.Lock()
	defer s.flightsMu.Unlock()
	for _, ctx := range f.waiters {
		if ctx.Err() == nil {
			return true
		}
	}
	if cur, ok := s.flights[f.key]; ok && cur == f {
		delete(s.flights, f.key)
	}
	return false
}

// isDraining reports whether BeginDrain has been called.
func (s *Server) isDraining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// BeginDrain stops admitting fix work: subsequent /v1/fix requests get
// 503 and /v1/healthz reports draining. Requests already admitted (in
// flight or queued) are unaffected. Safe to call more than once.
func (s *Server) BeginDrain() {
	s.admitMu.Lock()
	already := s.draining
	s.draining = true
	s.admitMu.Unlock()
	if !already {
		s.cfg.logf("server: draining (no new fix work admitted)")
	}
}

// Drain gracefully shuts the dispatch machinery down: stop admission,
// wait for every admitted flight to finish, then stop the dispatcher.
// Returns ctx.Err() if the deadline expires first (flights still running
// keep running; call Close to abandon queued ones).
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	flightsDone := make(chan struct{})
	go func() {
		s.flightWG.Wait()
		close(flightsDone)
	}()
	select {
	case <-flightsDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.queueCloseOnce.Do(func() { close(s.queue) })
	select {
	case <-s.dispatcherDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	batchesDone := make(chan struct{})
	go func() {
		s.batchWG.Wait()
		close(batchesDone)
	}()
	select {
	case <-batchesDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.cfg.logf("server: drained cleanly")
	return nil
}

// Close force-stops the server: drain admission, cancel queued jobs that
// have not started (their waiters get 503), and stop the dispatcher.
// Running agent runs cannot be preempted and are left to finish their
// flights. Always returns nil; the error form satisfies io.Closer.
func (s *Server) Close() error {
	s.BeginDrain()
	s.stopOnce.Do(func() { close(s.stop) })
	s.queueCloseOnce.Do(func() { close(s.queue) })
	<-s.dispatcherDone
	s.batchWG.Wait()
	return nil
}
