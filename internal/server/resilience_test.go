package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// getJSON fetches url and decodes the JSON body.
func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-JSON body from %s: %v", url, err)
	}
	return resp.StatusCode, out
}

func serverStatsJSON(t *testing.T, base string) map[string]any {
	t.Helper()
	_, out := getJSON(t, base+"/v1/stats")
	return out
}

// TestWorkerPanicIsolated: an agent run that panics mid-flight answers
// its waiter a typed 500, the daemon keeps serving, and the panic is
// counted — the tentpole's panic-isolation contract.
func TestWorkerPanicIsolated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r := fault.MustParse("worker.panic:1", 1)
	if err := r.SetLimit(fault.WorkerPanic, 1); err != nil {
		t.Fatal(err)
	}
	fault.Install(r)
	defer fault.Uninstall()

	status, out := postFix(t, ts.URL, map[string]any{"source": brokenSource})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked run = %d %v, want 500", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "isolated; server healthy") {
		t.Fatalf("panic error body = %v", out)
	}
	// The daemon survived: the very next request runs normally.
	status, out = postFix(t, ts.URL, map[string]any{"source": brokenSource})
	if status != http.StatusOK || out["success"] != true {
		t.Fatalf("post-panic request = %d %v", status, out)
	}
	stats := serverStatsJSON(t, ts.URL)
	res := stats["resilience"].(map[string]any)
	if res["panics_worker"].(float64) != 1 {
		t.Fatalf("panics_worker = %v", res["panics_worker"])
	}
}

// TestHandlerPanicRecovered: a panic inside an HTTP handler is caught by
// the ServeHTTP bulkhead — typed 500, counter, daemon up.
func TestHandlerPanicRecovered(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r := fault.MustParse("handler.panic:1", 1)
	if err := r.SetLimit(fault.HandlerPanic, 1); err != nil {
		t.Fatal(err)
	}
	fault.Install(r)
	defer fault.Uninstall()

	status, out := postFix(t, ts.URL, map[string]any{"source": cleanSource})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked handler = %d %v, want 500", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "recovered; server healthy") {
		t.Fatalf("panic error body = %v", out)
	}
	if status, _ := postFix(t, ts.URL, map[string]any{"source": cleanSource}); status != http.StatusOK {
		t.Fatalf("post-panic request = %d", status)
	}
	res := serverStatsJSON(t, ts.URL)["resilience"].(map[string]any)
	if res["panics_http"].(float64) != 1 {
		t.Fatalf("panics_http = %v", res["panics_http"])
	}
}

// TestLLMAbortAnswers502: a persistently-failing backend aborts the run
// past the retry budget; the waiter gets a typed 502 (upstream fault,
// not client error) and the abort is counted.
func TestLLMAbortAnswers502(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	fault.Install(fault.MustParse("llm.persistent:1", 1))
	defer fault.Uninstall()

	status, out := postFix(t, ts.URL, map[string]any{"source": brokenSource})
	if status != http.StatusBadGateway {
		t.Fatalf("aborted run = %d %v, want 502", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "llm backend") {
		t.Fatalf("abort body = %v", out)
	}
	res := serverStatsJSON(t, ts.URL)["resilience"].(map[string]any)
	if res["llm_aborted"].(float64) != 1 {
		t.Fatalf("llm_aborted = %v", res["llm_aborted"])
	}
}

// TestLLMRetryRecoveredSurfaces: two transient failures are retried
// inside the agent; the request still answers 200 and the retry ledger
// shows a retried, recovered run — the chaos gate's recovery floor
// reads exactly these counters.
func TestLLMRetryRecoveredSurfaces(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r := fault.MustParse("llm.transient:1", 1)
	if err := r.SetLimit(fault.LLMTransient, 2); err != nil {
		t.Fatal(err)
	}
	fault.Install(r)
	defer fault.Uninstall()

	status, out := postFix(t, ts.URL, map[string]any{"source": brokenSource})
	if status != http.StatusOK || out["success"] != true {
		t.Fatalf("retried run = %d %v, want 200 success", status, out)
	}
	stats := serverStatsJSON(t, ts.URL)
	res := stats["resilience"].(map[string]any)
	if res["llm_retried_runs"].(float64) != 1 || res["llm_retry_recovered"].(float64) != 1 {
		t.Fatalf("retry ledger = %v", res)
	}
	// The active profile's counters are on the stats body for the chaos
	// harness's determinism assertions.
	faults, ok := stats["faults"].(map[string]any)
	if !ok {
		t.Fatalf("faults section missing: %v", stats["faults"])
	}
	pt := faults["llm.transient"].(map[string]any)
	if pt["fired"].(float64) != 2 {
		t.Fatalf("llm.transient fired = %v, want 2", pt["fired"])
	}
}

// TestBreakerOpensAndRecloses: consecutive aborted runs against one
// fixer configuration open its breaker (immediate 503, no agent run);
// after the cooldown a half-open probe recloses it.
func TestBreakerOpensAndRecloses(t *testing.T) {
	_, ts := newTestServer(t, Config{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond})
	fault.Install(fault.MustParse("llm.persistent:1", 1))

	for i := 0; i < 2; i++ {
		if status, _ := postFix(t, ts.URL, map[string]any{"source": brokenSource, "seed": i + 1}); status != http.StatusBadGateway {
			t.Fatalf("abort %d: status %d, want 502", i, status)
		}
	}
	status, out := postFix(t, ts.URL, map[string]any{"source": brokenSource, "seed": 3})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("open breaker = %d %v, want 503", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "circuit breaker open") {
		t.Fatalf("breaker body = %v", out)
	}

	// Backend recovers; after the cooldown the half-open probe runs for
	// real and its success recloses the circuit.
	fault.Uninstall()
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < 2; i++ {
		status, out = postFix(t, ts.URL, map[string]any{"source": brokenSource, "seed": 10 + i})
		if status != http.StatusOK {
			t.Fatalf("post-recovery request %d = %d %v", i, status, out)
		}
	}

	res := serverStatsJSON(t, ts.URL)["resilience"].(map[string]any)
	if res["breaker_rejected"].(float64) != 1 {
		t.Fatalf("breaker_rejected = %v", res["breaker_rejected"])
	}
	brs, ok := res["breakers"].(map[string]any)
	if !ok || len(brs) != 1 {
		t.Fatalf("breakers = %v", res["breakers"])
	}
	for _, v := range brs {
		b := v.(map[string]any)
		if b["state"] != "closed" || b["opens"].(float64) != 1 {
			t.Fatalf("breaker snapshot = %v", b)
		}
	}
}

// TestReadyzGates: readyz follows the readiness latch (warming → 503)
// while healthz stays 200 throughout — the liveness/routability split.
func TestReadyzGates(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if status, out := getJSON(t, ts.URL+"/v1/readyz"); status != http.StatusOK || out["status"] != "ready" {
		t.Fatalf("readyz = %d %v", status, out)
	}
	s.ready.Store(false)
	if status, out := getJSON(t, ts.URL+"/v1/readyz"); status != http.StatusServiceUnavailable || out["status"] != "warming" {
		t.Fatalf("warming readyz = %d %v", status, out)
	}
	if status, _ := getJSON(t, ts.URL+"/v1/healthz"); status != http.StatusOK {
		t.Fatalf("healthz while warming = %d, want 200", status)
	}
	s.ready.Store(true)
	if status, _ := getJSON(t, ts.URL+"/v1/readyz"); status != http.StatusOK {
		t.Fatalf("readyz after warmup = %d", status)
	}
}

// TestPrewarmBuildsDefaultFixer: with Prewarm on, readyz turns 200 once
// the background build finishes, and the default configuration is
// already pooled — the first routed request pays no index construction.
func TestPrewarmBuildsDefaultFixer(t *testing.T) {
	s, ts := newTestServer(t, Config{Prewarm: true})
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _ := getJSON(t, ts.URL+"/v1/readyz")
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never turned ready under Prewarm")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Fixers() != 1 {
		t.Fatalf("fixers after prewarm = %d, want 1", s.Fixers())
	}
	// The prewarmed configuration is the default request's: no second
	// pool entry appears when an unconfigured request arrives.
	if status, _ := postFix(t, ts.URL, map[string]any{"source": cleanSource}); status != http.StatusOK {
		t.Fatalf("first request = %d", status)
	}
	if s.Fixers() != 1 {
		t.Fatalf("fixers after first request = %d, want 1 (prewarm matched)", s.Fixers())
	}
}

// TestBrownoutShedsLint: with the admission pool saturated, lint (a
// best-effort surface) is shed with 503 and counted; once load clears
// it serves again. Fix traffic is untouched by the brownout check.
func TestBrownoutShedsLint(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: -1, Workers: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.testHook = func(*flight) {
		close(entered)
		<-release
	}

	go func() {
		body, _ := json.Marshal(map[string]any{"source": brokenSource})
		resp, err := http.Post(ts.URL+"/v1/fix", "application/json", strings.NewReader(string(body)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // admission pool (capacity 1) is now full

	resp, err := http.Post(ts.URL+"/v1/lint", "application/json",
		strings.NewReader(`{"source":"module m;\nendmodule\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("lint under brownout = %d, want 503", resp.StatusCode)
	}
	close(release)

	// Load cleared: lint serves again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Post(ts.URL+"/v1/lint", "application/json",
			strings.NewReader(`{"source":"module m;\nendmodule\n"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lint still shed after load cleared: %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res := serverStatsJSON(t, ts.URL)["resilience"].(map[string]any)
	if res["brownout_lint_shed"].(float64) < 1 {
		t.Fatalf("brownout_lint_shed = %v", res["brownout_lint_shed"])
	}
}
