// Simulation-layer observability for the serving spine: every post-fix
// smoke check (simcheck.go) runs with a wave coverage observer and, on
// the compiled backend, the engine profiler attached. The per-run
// results fold into one process-wide aggregate served under the "sim"
// key of /v1/stats and as the rtlfixer_sim_* families on /metrics.
// Attachment costs nothing on the response path — the check itself is
// already off the critical path, and the aggregate is a small
// mutex-guarded struct written once per check.
package server

import (
	"sort"
	"sync"

	"repro/internal/wave"
)

// simObs accumulates sim-check observability across the process.
type simObs struct {
	mu sync.Mutex

	runs    uint64 // observed runs folded in
	samples uint64 // post-settle snapshots across runs
	toggles uint64 // bit-change events across runs

	// Latest-run coverage plane (per-run fractions are more useful than
	// a lifetime union across unrelated designs) plus lifetime maxima.
	lastCovered, lastTotal  int
	lastProcs, lastProcsAct int
	bestFraction            float64

	// Engine-profile plane, summed across runs.
	instructions  uint64
	settles       uint64
	fixpointIters uint64
	ops           map[string]uint64
	hottest       wave.ProcessStat
}

func newSimObs() *simObs {
	return &simObs{ops: map[string]uint64{}}
}

// fold merges one observed check into the aggregate. cov must be
// non-nil; prof may be nil (walker fallback).
func (o *simObs) fold(cov *wave.Coverage, prof *wave.EngineProfile) {
	st := cov.Stats()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.runs++
	o.samples += st.Samples
	o.toggles += st.Toggles
	o.lastCovered = st.PointsCovered
	o.lastTotal = st.PointsTotal
	o.lastProcs = st.Processes
	o.lastProcsAct = st.ProcessesActive
	if f := st.Fraction(); f > o.bestFraction {
		o.bestFraction = f
	}
	if prof == nil {
		return
	}
	o.instructions += prof.Instructions
	o.settles += prof.Settles
	o.fixpointIters += prof.FixpointIters
	for _, oc := range prof.Ops {
		o.ops[oc.Op] += oc.Count
	}
	if h := prof.Hottest(); h.Activations > o.hottest.Activations {
		o.hottest = h
	}
}

// SimObsSnapshot is the /v1/stats "sim" section.
type SimObsSnapshot struct {
	Runs    uint64 `json:"runs"`
	Samples uint64 `json:"samples"`
	Toggles uint64 `json:"toggles"`

	// Coverage of the most recent observed check plus the best fraction
	// seen — per-run toggle coverage, not a union across designs.
	LastCoveredPoints int     `json:"last_covered_points"`
	LastTotalPoints   int     `json:"last_total_points"`
	LastProcesses     int     `json:"last_processes"`
	LastProcsActive   int     `json:"last_processes_active"`
	LastFraction      float64 `json:"last_fraction"`
	BestFraction      float64 `json:"best_fraction"`

	// Engine-profile aggregate (zero when every check fell back to the
	// walker, which cannot profile).
	Instructions  uint64            `json:"instructions"`
	Settles       uint64            `json:"settles"`
	FixpointIters uint64            `json:"fixpoint_iters"`
	TopOps        []wave.OpCount    `json:"top_ops,omitempty"`
	Hottest       *wave.ProcessStat `json:"hottest_process,omitempty"`
}

// snapshot renders the aggregate (nil receiver → nil, for the
// omitempty stats field).
func (o *simObs) snapshot() *SimObsSnapshot {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	snap := &SimObsSnapshot{
		Runs: o.runs, Samples: o.samples, Toggles: o.toggles,
		LastCoveredPoints: o.lastCovered, LastTotalPoints: o.lastTotal,
		LastProcesses: o.lastProcs, LastProcsActive: o.lastProcsAct,
		BestFraction: o.bestFraction,
		Instructions: o.instructions, Settles: o.settles, FixpointIters: o.fixpointIters,
	}
	if total := o.lastTotal + o.lastProcs; total > 0 {
		snap.LastFraction = float64(o.lastCovered+o.lastProcsAct) / float64(total)
	}
	for op, n := range o.ops {
		snap.TopOps = append(snap.TopOps, wave.OpCount{Op: op, Count: n})
	}
	sort.Slice(snap.TopOps, func(i, j int) bool {
		if snap.TopOps[i].Count != snap.TopOps[j].Count {
			return snap.TopOps[i].Count > snap.TopOps[j].Count
		}
		return snap.TopOps[i].Op < snap.TopOps[j].Op
	})
	if len(snap.TopOps) > 8 {
		snap.TopOps = snap.TopOps[:8]
	}
	if o.hottest.Activations > 0 {
		h := o.hottest
		snap.Hottest = &h
	}
	return snap
}

// coverageGauge returns the latest run's coverage fraction for the
// rtlfixer_sim_toggle_coverage gauge (0 when nothing observed yet).
func (o *simObs) coverageGauge() (frac float64, runs, toggles, instructions uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if total := o.lastTotal + o.lastProcs; total > 0 {
		frac = float64(o.lastCovered+o.lastProcsAct) / float64(total)
	}
	return frac, o.runs, o.toggles, o.instructions
}
