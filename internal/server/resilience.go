// The serving spine's resilience plane: per-fixer-configuration circuit
// breakers, the /v1/readyz readiness gate, background prewarm, and the
// overload brownout that sheds best-effort surfaces before fix traffic.
//
// The degradation ladder, top rung first:
//
//   - Handler or worker panic → recovered into a typed 500 + counter;
//     the daemon keeps serving (server.go / dispatch.go).
//   - LLM backend outage → retried inside the agent (internal/agent);
//     past the budget the run aborts into a typed 502, and consecutive
//     aborts against one configuration open its breaker here.
//   - Store unavailable → the store itself degrades to bounded
//     in-memory-only (internal/store); /v1/readyz answers 503
//     "store-degraded" so balancers drain writes away, /v1/healthz just
//     reports the flag (the process is alive).
//   - Overload → once admission fill crosses BrownoutThreshold, lint
//     answers 503 and new request traces are shed; fix traffic keeps
//     the capacity.
//   - Sim-check or analyzer failure → the feature is skipped and
//     counted, never request-fatal (simcheck.go, internal/analyze).
package server

import (
	"fmt"
	"net/http"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// breakerFor returns the circuit breaker guarding one fixer
// configuration, building it on first use. Breakers are per
// configuration because failure is per configuration: one persona
// pinned against a dead backend must not black-hole requests for the
// others.
func (s *Server) breakerFor(key fixerKey) *resilience.Breaker {
	s.breakersMu.Lock()
	defer s.breakersMu.Unlock()
	if b, ok := s.breakers[key]; ok {
		return b
	}
	b := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: s.cfg.BreakerThreshold,
		Cooldown:         s.cfg.BreakerCooldown,
	})
	s.breakers[key] = b
	return b
}

// recordBreaker folds one finished flight into its configuration's
// breaker. Failures are the run-level faults a breaker can meaningfully
// shield — a panicked run or an LLM-abort; an unsuccessful-but-completed
// fix is the agent doing its job, and cancellations/expiries say nothing
// about the configuration's health.
func (s *Server) recordBreaker(br *resilience.Breaker, f *flight) {
	switch {
	case resilience.IsPanic(f.err):
		br.Failure()
	case f.tr != nil && f.tr.Aborted != "":
		br.Failure()
	case f.tr != nil:
		br.Success()
	}
}

// breakerSnapshots renders every pooled breaker for /v1/stats, keyed
// "compiler/persona/mode"; distinct configurations sharing that triple
// get a "#n" suffix so none are silently merged.
func (s *Server) breakerSnapshots() map[string]resilience.BreakerSnapshot {
	s.breakersMu.Lock()
	defer s.breakersMu.Unlock()
	if len(s.breakers) == 0 {
		return nil
	}
	out := make(map[string]resilience.BreakerSnapshot, len(s.breakers))
	for key, b := range s.breakers {
		name := fmt.Sprintf("%s/%s/%s", key.compiler, key.persona, key.mode)
		for n := 2; ; n++ {
			if _, taken := out[name]; !taken {
				break
			}
			name = fmt.Sprintf("%s/%s/%s#%d", key.compiler, key.persona, key.mode, n)
		}
		out[name] = b.Snapshot()
	}
	return out
}

// brownedOut reports whether admission fill has crossed the brownout
// mark: len(admitted) counts every outstanding admission charge, so the
// read is one channel length, cheap enough for every lint request.
func (s *Server) brownedOut() bool {
	return len(s.admitted) >= s.brownoutAt
}

// traceStart is the brownout-aware trace entry point for request
// handlers: under brownout new traces are shed (nil span — the whole
// chain no-ops) so tracing's allocations are spent on fix capacity
// instead. Shed traces are counted; responses are byte-identical either
// way, as with tracing disabled.
func (s *Server) traceStart(name string) *trace.Span {
	if s.tracer == nil {
		return nil
	}
	if s.brownedOut() {
		s.st.brownoutTracesShed.Inc()
		return nil
	}
	return s.tracer.Start(name)
}

// prewarm builds the default fixer configuration (the one an
// unconfigured request maps to) and then flips the readiness latch, so
// a prewarming daemon's first routed request hits a built retrieval
// index instead of paying construction.
func (s *Server) prewarm() {
	key := fixerKey{
		compiler: "quartus",
		persona:  "gpt-3.5",
		mode:     core.ModeReAct,
		rag:      true,
		iters:    agent.DefaultMaxIterations,
		analyze:  true,
	}
	if _, err := s.fixerFor(key); err != nil {
		s.cfg.logf("server: prewarm failed (serving anyway): %v", err)
	}
	s.ready.Store(true)
	s.cfg.logf("server: prewarmed default fixer configuration; ready")
}

// handleReadyz serves GET /v1/readyz: the routability probe. 503 while
// draining, while the prewarm is still building, or while the store is
// degraded; 200 otherwise. Load balancers and loadgen -wait-ready poll
// this; liveness stays on /v1/healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.st.readyzRequests.Inc()
	body := map[string]any{}
	status := http.StatusOK
	switch {
	case s.isDraining():
		body["status"] = "draining"
		status = http.StatusServiceUnavailable
	case !s.ready.Load():
		body["status"] = "warming"
		status = http.StatusServiceUnavailable
	case s.cfg.Store != nil && s.cfg.Store.Degraded():
		body["status"] = "store-degraded"
		status = http.StatusServiceUnavailable
	default:
		body["status"] = "ready"
	}
	writeJSON(w, status, body)
}
