package bitvec

import (
	"math/rand"
	"testing"
)

// These tests pin the alias contract stated at the top of inplace.go:
// every destination-passing op must produce the same bits as its
// allocating counterpart even when the destination shares storage with
// an operand — the exact situation a Verilog self-aliasing store
// (q[4:1] = q) puts the compiled engine in.

// aliasOf returns a Vec sharing v's backing words.
func aliasOf(v *Vec) Vec { return *v }

// TestAliasBinaryOps runs every two-operand op with the destination
// aliased as the left operand, the right operand, and both, across
// widths that cross word boundaries and exceed the stack alias buffer.
func TestAliasBinaryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// 600 > aliasBufWords*64, forcing the heap spill path in unalias.
	widths := []int{1, 7, 32, 63, 64, 65, 127, 200, 600}
	ops := []struct {
		name string
		in   func(v *Vec, a, b Vec)
		ref  func(a, b Vec) Vec
	}{
		{"AndOf", (*Vec).AndOf, Vec.And},
		{"OrOf", (*Vec).OrOf, Vec.Or},
		{"XorOf", (*Vec).XorOf, Vec.Xor},
		{"XnorOf", (*Vec).XnorOf, func(a, b Vec) Vec { return a.Xor(b).Not() }},
		{"AddOf", (*Vec).AddOf, Vec.Add},
		{"SubOf", (*Vec).SubOf, Vec.Sub},
		{"MulOf", (*Vec).MulOf, Vec.Mul},
	}
	for _, w := range widths {
		for trial := 0; trial < 6; trial++ {
			a := randVec(rng, w)
			b := randVec(rng, w)
			for _, op := range ops {
				// dst aliases the left operand.
				v := a.Resize(w)
				op.in(&v, aliasOf(&v), b)
				if want := op.ref(a, b); !v.Eq(want) {
					t.Fatalf("%s(w=%d) dst==a: got %s want %s", op.name, w, v, want)
				}
				// dst aliases the right operand.
				v = b.Resize(w)
				op.in(&v, a, aliasOf(&v))
				if want := op.ref(a, b); !v.Eq(want) {
					t.Fatalf("%s(w=%d) dst==b: got %s want %s", op.name, w, v, want)
				}
				// dst aliases both operands.
				v = a.Resize(w)
				op.in(&v, aliasOf(&v), aliasOf(&v))
				if want := op.ref(a, a); !v.Eq(want) {
					t.Fatalf("%s(w=%d) dst==a==b: got %s want %s", op.name, w, v, want)
				}
			}
		}
	}
}

// TestAliasUnaryAndShift covers the single-operand ops under
// self-aliasing, including every shift distance class.
func TestAliasUnaryAndShift(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, w := range []int{1, 9, 64, 65, 130, 600} {
		for trial := 0; trial < 6; trial++ {
			a := randVec(rng, w)

			v := a.Resize(w)
			v.NotOf(aliasOf(&v))
			if want := a.Not(); !v.Eq(want) {
				t.Fatalf("NotOf(w=%d) self: got %s want %s", w, v, want)
			}

			v = a.Resize(w)
			v.NegOf(aliasOf(&v))
			if want := New(w).Sub(a); !v.Eq(want) {
				t.Fatalf("NegOf(w=%d) self: got %s want %s", w, v, want)
			}

			for _, n := range []int{0, 1, 63, 64, 65, w - 1, w, -2} {
				v = a.Resize(w)
				v.ShlOf(aliasOf(&v), n)
				if want := a.Shl(n); !v.Eq(want) {
					t.Fatalf("ShlOf(w=%d, n=%d) self: got %s want %s", w, n, v, want)
				}
				v = a.Resize(w)
				v.ShrOf(aliasOf(&v), n)
				if want := a.Shr(n); !v.Eq(want) {
					t.Fatalf("ShrOf(w=%d, n=%d) self: got %s want %s", w, n, v, want)
				}
			}
		}
	}
}

// TestAliasConcatRepeat exercises the copy-on-alias snapshots in
// ConcatOf and RepeatOf. The destination is wider than the operand, so
// the test builds it at the result width and feeds it a resized alias
// view of its own storage via CopyResize first.
func TestAliasConcatRepeat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, w := range []int{3, 32, 64, 70, 300} {
		for trial := 0; trial < 6; trial++ {
			a := randVec(rng, w)

			// {a, a} where both halves alias the destination's low words.
			v := New(2 * w)
			v.CopyResize(a)
			low := Vec{width: w, words: v.words}
			v.ConcatOf(low, low)
			if want := a.Concat(a); !v.Eq(want) {
				t.Fatalf("ConcatOf(w=%d) self: got %s want %s", w, v, want)
			}

			// {3{a}} with a aliasing the destination.
			v = New(3 * w)
			v.CopyResize(a)
			low = Vec{width: w, words: v.words}
			v.RepeatOf(low, 3)
			if want := a.Repeat(3); !v.Eq(want) {
				t.Fatalf("RepeatOf(w=%d) self: got %s want %s", w, v, want)
			}
		}
	}
}

// storeSliceRef is the obviously-correct immutable model of
// StoreSliceOf: read every source bit from a snapshot, write through
// SetBit.
func storeSliceRef(v, src Vec, lo, w int) Vec {
	out := v.Resize(v.Width())
	for i := 0; i < w; i++ {
		pos := lo + i
		if pos < 0 || pos >= v.Width() {
			continue
		}
		out = out.SetBit(pos, src.Bit(i))
	}
	return out
}

// TestStoreSliceOfAliasing is the regression surface for the engine's
// copy-on-alias slice-store bug: under full or partial self-aliasing
// the stored bits must come from the pre-store value.
func TestStoreSliceOfAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, w := range []int{4, 8, 33, 64, 65, 130, 600} {
		for trial := 0; trial < 8; trial++ {
			a := randVec(rng, w)
			cases := []struct {
				name  string
				lo, n int
			}{
				{"full_width", 0, w},
				{"overlap_up", 1, w - 1},   // q[w-1:1] = q — the original bug shape
				{"overlap_down", 0, w - 1}, // q[w-2:0] = q
				{"interior", w / 3, w / 2}, // strictly inside
				{"past_end", w - 2, 5},     // clips at the top
				{"negative_lo", -2, w / 2}, // clips at the bottom
			}
			for _, tc := range cases {
				v := a.Resize(w)
				want := storeSliceRef(v, v, tc.lo, tc.n)
				changed := v.StoreSliceOf(aliasOf(&v), tc.lo, tc.n)
				if !v.Eq(want) {
					t.Fatalf("StoreSliceOf %s (w=%d lo=%d n=%d) self-alias: got %s want %s",
						tc.name, w, tc.lo, tc.n, v, want)
				}
				if changed != !a.Eq(want) {
					t.Fatalf("StoreSliceOf %s (w=%d): changed=%v but value %s -> %s",
						tc.name, w, changed, a, want)
				}
				// Non-aliased store of an equal source must agree too.
				v2 := a.Resize(w)
				src := a.Resize(w)
				v2.StoreSliceOf(src, tc.lo, tc.n)
				if !v2.Eq(want) {
					t.Fatalf("StoreSliceOf %s (w=%d) non-aliased disagrees with aliased: %s vs %s",
						tc.name, w, v2, want)
				}
			}
		}
	}
}

// TestAliasFastPathZeroAllocs proves the other half of the contract:
// the copy-on-alias ops stay allocation-free when operands do NOT
// alias, and the stack buffer absorbs aliased operands up to
// aliasBufWords words.
func TestAliasFastPathZeroAllocs(t *testing.T) {
	a, b := FromUint64(64, 0xA5A5), FromUint64(64, 0x5A5A)
	wa, wb := New(500), New(500) // within aliasBufWords*64 bits
	wa.SetUint64(123)
	wb.SetUint64(456)
	dst, wdst := New(64), New(500)
	cc := New(128)
	rp := New(192)
	allocs := testing.AllocsPerRun(200, func() {
		// Non-aliased copy-on-alias ops: must not snapshot.
		dst.MulOf(a, b)
		cc.ConcatOf(a, b)
		rp.RepeatOf(a, 3)
		dst.StoreSliceOf(b, 3, 40)
		wdst.MulOf(wa, wb)
		wdst.StoreSliceOf(wa, 17, 300)
		// Aliased but within the stack buffer: snapshot lives in buf.
		dst.StoreSliceOf(aliasOf(&dst), 1, 30)
		wdst.StoreSliceOf(aliasOf(&wdst), 2, 400)
	})
	if allocs != 0 {
		t.Fatalf("alias-aware ops allocated %.1f/op on alloc-free paths", allocs)
	}
}
