package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromUint64Masks(t *testing.T) {
	v := FromUint64(4, 0xFF)
	if v.Uint64() != 0xF {
		t.Fatalf("got %x, want f", v.Uint64())
	}
}

func TestBitAndSetBit(t *testing.T) {
	v := New(100)
	v = v.SetBit(99, true)
	if !v.Bit(99) || v.Bit(98) {
		t.Fatal("SetBit(99) wrong")
	}
	v = v.SetBit(99, false)
	if !v.IsZero() {
		t.Fatal("clearing bit 99 should zero the vector")
	}
	// out-of-range set is ignored
	v = v.SetBit(100, true)
	if !v.IsZero() {
		t.Fatal("out-of-range SetBit must be ignored")
	}
}

func TestAddSubWraparound(t *testing.T) {
	a := FromUint64(8, 200)
	b := FromUint64(8, 100)
	if got := a.Add(b).Uint64(); got != (300 & 0xFF) {
		t.Fatalf("8-bit 200+100 = %d, want %d", got, 300&0xFF)
	}
	if got := b.Sub(a).Uint64(); got != uint64((100-200)&0xFF) {
		t.Fatalf("8-bit 100-200 = %d, want %d", got, (100-200)&0xFF)
	}
}

func TestWideAddCarries(t *testing.T) {
	// 2^64 - 1 + 1 must carry into the second word.
	a := FromUint64(128, ^uint64(0))
	b := FromUint64(128, 1)
	sum := a.Add(b)
	if sum.Uint64() != 0 || !sum.Bit(64) {
		t.Fatalf("128-bit carry failed: %s", sum.Hex())
	}
}

func TestShlShrAcrossWords(t *testing.T) {
	v := FromUint64(128, 1)
	v = v.Shl(100)
	if !v.Bit(100) || v.PopCount() != 1 {
		t.Fatalf("Shl(100) wrong: %s", v.Hex())
	}
	v = v.Shr(100)
	if v.Uint64() != 1 || v.PopCount() != 1 {
		t.Fatalf("Shr(100) wrong: %s", v.Hex())
	}
}

func TestConcatOrder(t *testing.T) {
	hi := FromUint64(4, 0xA)
	lo := FromUint64(4, 0x5)
	c := hi.Concat(lo)
	if c.Width() != 8 || c.Uint64() != 0xA5 {
		t.Fatalf("{4'hA,4'h5} = %s, want 8'ha5", c.Hex())
	}
}

func TestRepeat(t *testing.T) {
	v := FromUint64(2, 0b10)
	r := v.Repeat(3)
	if r.Width() != 6 || r.Uint64() != 0b101010 {
		t.Fatalf("{3{2'b10}} = %s", r)
	}
	if v.Repeat(0).Width() != 0 {
		t.Fatal("zero repetition must be empty")
	}
}

func TestSlice(t *testing.T) {
	v := FromUint64(16, 0xABCD)
	s := v.Slice(11, 4)
	if s.Width() != 8 || s.Uint64() != 0xBC {
		t.Fatalf("0xABCD[11:4] = %s, want bc", s.Hex())
	}
}

func TestReduceOps(t *testing.T) {
	all1 := FromUint64(4, 0xF)
	mixed := FromUint64(4, 0x5)
	zero := New(4)
	if !all1.ReduceAnd().Bool() || mixed.ReduceAnd().Bool() {
		t.Error("ReduceAnd wrong")
	}
	if !mixed.ReduceOr().Bool() || zero.ReduceOr().Bool() {
		t.Error("ReduceOr wrong")
	}
	if mixed.ReduceXor().Bool() { // two bits set -> parity 0
		t.Error("ReduceXor parity wrong")
	}
	if !FromUint64(4, 0x7).ReduceXor().Bool() { // three bits
		t.Error("ReduceXor parity wrong for odd popcount")
	}
}

func TestUltComparesWide(t *testing.T) {
	a := FromUint64(128, 5).Shl(64) // 5 * 2^64
	b := FromUint64(128, ^uint64(0))
	if a.Ult(b) {
		t.Fatal("5*2^64 must not be < 2^64-1")
	}
	if !b.Ult(a) {
		t.Fatal("2^64-1 must be < 5*2^64")
	}
}

func TestParseBinary(t *testing.T) {
	v, err := ParseBinary(8, "1010_0101")
	if err != nil || v.Uint64() != 0xA5 {
		t.Fatalf("ParseBinary = %v, %v", v, err)
	}
	if _, err := ParseBinary(4, "10a1"); err == nil {
		t.Fatal("bad digit must error")
	}
}

func TestStringFormats(t *testing.T) {
	v := FromUint64(4, 5)
	if v.String() != "4'b0101" {
		t.Fatalf("String = %q", v.String())
	}
	if v.Hex() != "4'h5" {
		t.Fatalf("Hex = %q", v.Hex())
	}
}

// ---------- property tests ----------

func randVec(rng *rand.Rand, width int) Vec {
	v := New(width)
	for i := 0; i < width; i++ {
		if rng.Intn(2) == 1 {
			v = v.SetBit(i, true)
		}
	}
	return v
}

func TestPropAddCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(200)
		a, b := randVec(rng, w), randVec(rng, w)
		if !a.Add(b).Eq(b.Add(a)) {
			t.Fatalf("add not commutative at width %d", w)
		}
	}
}

func TestPropSubInvertsAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(200)
		a, b := randVec(rng, w), randVec(rng, w)
		if !a.Add(b).Sub(b).Eq(a) {
			t.Fatalf("(a+b)-b != a at width %d", w)
		}
	}
}

func TestPropNotInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(300)
		a := randVec(rng, w)
		if !a.Not().Not().Eq(a) {
			t.Fatalf("~~a != a at width %d", w)
		}
	}
}

func TestPropDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(150)
		a, b := randVec(rng, w), randVec(rng, w)
		left := a.And(b).Not()
		right := a.Not().Or(b.Not())
		if !left.Eq(right) {
			t.Fatalf("De Morgan violated at width %d", w)
		}
	}
}

func TestPropShiftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 200; i++ {
		w := 10 + rng.Intn(150)
		n := rng.Intn(w)
		a := randVec(rng, w)
		// left then right shift preserves the low w-n bits
		got := a.Shl(n).Shr(n)
		want := a.Slice(w-n-1, 0).Resize(w)
		if n == w {
			want = New(w)
		}
		if !got.Eq(want) {
			t.Fatalf("shift round-trip failed: w=%d n=%d a=%s got=%s want=%s",
				w, n, a.Hex(), got.Hex(), want.Hex())
		}
	}
}

func TestPropConcatWidths(t *testing.T) {
	f := func(aw, bw uint8, av, bv uint64) bool {
		a := FromUint64(int(aw%100)+1, av)
		b := FromUint64(int(bw%100)+1, bv)
		c := a.Concat(b)
		if c.Width() != a.Width()+b.Width() {
			return false
		}
		// low part must equal b, high part must equal a
		return c.Slice(b.Width()-1, 0).Eq(b) &&
			c.Shr(b.Width()).Resize(a.Width()).Eq(a)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(16))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulMatchesUint64(t *testing.T) {
	f := func(a, b uint32) bool {
		va := FromUint64(64, uint64(a))
		vb := FromUint64(64, uint64(b))
		return va.Mul(vb).Uint64() == uint64(a)*uint64(b)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropPopCountAfterXor(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 100; i++ {
		w := 1 + rng.Intn(300)
		a := randVec(rng, w)
		if a.Xor(a).PopCount() != 0 {
			t.Fatal("a^a must be zero")
		}
		if a.Xor(a.Not()).PopCount() != w {
			t.Fatal("a ^ ~a must be all ones")
		}
	}
}
