package bitvec

import (
	"math/rand"
	"testing"
)

// TestInPlaceEquivalence checks every destination-passing op against its
// immutable counterpart across a width sweep that crosses word
// boundaries.
func TestInPlaceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	widths := []int{1, 3, 8, 31, 32, 63, 64, 65, 100, 127, 128, 200, 255}
	for _, wa := range widths {
		for trial := 0; trial < 8; trial++ {
			wb := widths[rng.Intn(len(widths))]
			a, b := randVec(rng, wa), randVec(rng, wb)
			wmax := wa
			if wb > wmax {
				wmax = wb
			}

			check := func(name string, got, want Vec) {
				t.Helper()
				if got.Width() != want.Width() || !got.Eq(want) {
					t.Fatalf("%s (wa=%d wb=%d): got %s want %s", name, wa, wb, got, want)
				}
			}

			dst := New(wmax)
			dst.AndOf(a, b)
			check("AndOf", dst, a.And(b))
			dst.OrOf(a, b)
			check("OrOf", dst, a.Or(b))
			dst.XorOf(a, b)
			check("XorOf", dst, a.Xor(b))
			dst.XnorOf(a, b)
			check("XnorOf", dst, a.Xor(b).Not())
			dst.AddOf(a, b)
			check("AddOf", dst, a.Add(b))
			dst.SubOf(a, b)
			check("SubOf", dst, a.Sub(b))
			mul := New(wmax)
			mul.MulOf(a, b)
			check("MulOf", mul, a.Mul(b))

			na := New(wa)
			na.NotOf(a)
			check("NotOf", na, a.Not())
			na.NegOf(a)
			check("NegOf", na, New(wa).Sub(a))

			div := New(wa)
			div.DivLowOf(a, b)
			if b.IsZero() {
				check("DivLowOf/0", div, New(wa))
			} else {
				check("DivLowOf", div, FromUint64(wa, a.Uint64()/b.Uint64()))
			}
			div.ModLowOf(a, b)
			if !b.IsZero() {
				check("ModLowOf", div, FromUint64(wa, a.Uint64()%b.Uint64()))
			}

			for _, n := range []int{0, 1, 7, wa / 2, wa - 1, wa, wa + 3, -3} {
				sh := New(wa)
				sh.ShlOf(a, n)
				check("ShlOf", sh, a.Shl(n))
				sh.ShrOf(a, n)
				check("ShrOf", sh, a.Shr(n))
			}
			// ShrOf doubling as part-select: narrower destination.
			if wa > 4 {
				ps := New(3)
				ps.ShrOf(a, 2)
				check("ShrOf/narrow", ps, a.Shr(2).Resize(3))
			}

			cc := New(wa + wb)
			cc.ConcatOf(a, b)
			check("ConcatOf", cc, a.Concat(b))

			for _, n := range []int{0, 1, 3} {
				rp := New(wa * n)
				rp.RepeatOf(a, n)
				check("RepeatOf", rp, a.Repeat(n))
			}

			cp := New(wb)
			cp.CopyResize(a)
			check("CopyResize", cp, a.Resize(wb))

			if a.AllOnes() != a.ReduceAnd().Bool() {
				t.Fatalf("AllOnes(w=%d) = %v disagrees with ReduceAnd", wa, a.AllOnes())
			}
		}
	}
}

func TestInPlaceSettersAndZero(t *testing.T) {
	v := New(100)
	v.SetUint64(0xDEADBEEFCAFE)
	if v.Uint64() != 0xDEADBEEFCAFE || v.PopCount() != FromUint64(100, 0xDEADBEEFCAFE).PopCount() {
		t.Fatal("SetUint64 wrong")
	}
	v.SetBitInPlace(99, true)
	if !v.Bit(99) {
		t.Fatal("SetBitInPlace high bit")
	}
	v.SetBitInPlace(120, true) // out of range: ignored
	v.SetBitInPlace(-1, true)
	v.Zero()
	if !v.IsZero() {
		t.Fatal("Zero must clear everything")
	}
	v.SetBool(true)
	if v.Uint64() != 1 {
		t.Fatal("SetBool")
	}
	// width truncation on narrow vectors
	n := New(3)
	n.SetUint64(0xFF)
	if n.Uint64() != 7 {
		t.Fatalf("SetUint64 must mask to width: %d", n.Uint64())
	}
}

// TestInPlaceZeroAllocs proves the hot-path contract: none of the
// destination-passing ops allocate.
func TestInPlaceZeroAllocs(t *testing.T) {
	a, b := FromUint64(64, 0x1234), FromUint64(64, 0x77)
	wideA, wideB := New(255), New(255)
	wideA.SetUint64(5)
	wideB.SetUint64(9)
	dst, wdst := New(64), New(255)
	allocs := testing.AllocsPerRun(100, func() {
		dst.AddOf(a, b)
		dst.AndOf(a, b)
		dst.MulOf(a, b)
		dst.ShlOf(a, 3)
		wdst.AddOf(wideA, wideB)
		wdst.XorOf(wideA, wideB)
		wdst.ShrOf(wideA, 100)
		wdst.CopyResize(a)
	})
	if allocs != 0 {
		t.Fatalf("in-place ops allocated %.1f/op", allocs)
	}
}
