package bitvec

import "math/bits"

// This file is the destination-passing half of the package: every method
// writes its result into the receiver's existing backing storage instead of
// allocating a fresh vector. The compiled simulation engine
// (internal/sim) preallocates one Vec per register at build time and runs
// steady-state cycles through these methods with zero heap allocations;
// single-word (width <= 64) vectors take branch-free fast paths.
//
// Contracts shared by all methods here:
//
//   - The receiver's width is fixed; results are truncated or
//     zero-extended to it, exactly as the immutable operation of the same
//     name would produce at that width.
//   - Operands are read-only, but every method tolerates the receiver
//     aliasing an operand (sharing its backing storage): the word-wise ops
//     read each operand word before overwriting it, the shifts iterate in
//     the direction that keeps unread words intact, and the remaining ops
//     (MulOf, ConcatOf, RepeatOf, StoreSliceOf) detect aliasing and
//     snapshot the operand first — the copy-on-alias the simulator's
//     differential fuzzer exists to police. Self-aliased results are
//     bit-identical to the allocating op of the same name.
//   - The non-aliased paths never allocate. Copy-on-alias paths may spill
//     to the heap for very wide operands (beyond aliasBufWords words) —
//     the compiled engine's register allocator copies aliased stores at
//     compile time, so its steady state never takes those paths. Callers
//     that share a Vec (e.g. values returned from Simulator.Get) must
//     still copy before mutating.

// Zero clears every bit in place.
func (v *Vec) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// SetUint64 sets the vector to u truncated to its width, in place.
func (v *Vec) SetUint64(u uint64) {
	if len(v.words) == 0 {
		return
	}
	v.words[0] = u
	for i := 1; i < len(v.words); i++ {
		v.words[i] = 0
	}
	v.mask()
}

// SetBool sets the vector to 1 or 0, in place.
func (v *Vec) SetBool(b bool) {
	if b {
		v.SetUint64(1)
	} else {
		v.SetUint64(0)
	}
}

// CopyResize copies o into v, zero-extending or truncating to v's width —
// the in-place form of o.Resize(v.Width()). Alias-safe.
func (v *Vec) CopyResize(o Vec) {
	n := len(v.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	copy(v.words, o.words[:n])
	for i := n; i < len(v.words); i++ {
		v.words[i] = 0
	}
	v.mask()
}

// SetBitInPlace sets bit i to b. Out-of-range indices are ignored,
// matching Vec.SetBit.
func (v *Vec) SetBitInPlace(i int, b bool) {
	if i < 0 || i >= v.width {
		return
	}
	if b {
		v.words[i/wordBits] |= 1 << (i % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (i % wordBits)
	}
}

// wordAt reads word i of o, zero-extending past its storage.
func wordAt(o Vec, i int) uint64 {
	if i < len(o.words) {
		return o.words[i]
	}
	return 0
}

// aliasBufWords sizes the stack scratch used by copy-on-alias paths: 512
// bits covers every signal in the corpus without allocating.
const aliasBufWords = 8

// aliases reports whether v and o share backing storage. Vectors are
// allocated whole (the package never subslices words), so identity of the
// first word identifies identity of the whole array.
func (v *Vec) aliases(o Vec) bool {
	return len(v.words) > 0 && len(o.words) > 0 && &v.words[0] == &o.words[0]
}

// unalias returns o, or a snapshot of o taken before v is mutated when o
// shares v's storage. The snapshot lives in buf when it fits (keeping the
// common aliased widths allocation-free) and on the heap otherwise.
func (v *Vec) unalias(o Vec, buf *[aliasBufWords]uint64) Vec {
	if !v.aliases(o) {
		return o
	}
	var w []uint64
	if len(o.words) <= len(buf) {
		w = buf[:len(o.words)]
	} else {
		w = make([]uint64, len(o.words))
	}
	copy(w, o.words)
	return Vec{width: o.width, words: w}
}

// AndOf sets v = a & b (zero-extended to v's width).
func (v *Vec) AndOf(a, b Vec) {
	if len(v.words) == 1 {
		v.words[0] = wordAt(a, 0) & wordAt(b, 0)
		v.mask()
		return
	}
	for i := range v.words {
		v.words[i] = wordAt(a, i) & wordAt(b, i)
	}
	v.mask()
}

// OrOf sets v = a | b.
func (v *Vec) OrOf(a, b Vec) {
	if len(v.words) == 1 {
		v.words[0] = wordAt(a, 0) | wordAt(b, 0)
		v.mask()
		return
	}
	for i := range v.words {
		v.words[i] = wordAt(a, i) | wordAt(b, i)
	}
	v.mask()
}

// XorOf sets v = a ^ b.
func (v *Vec) XorOf(a, b Vec) {
	if len(v.words) == 1 {
		v.words[0] = wordAt(a, 0) ^ wordAt(b, 0)
		v.mask()
		return
	}
	for i := range v.words {
		v.words[i] = wordAt(a, i) ^ wordAt(b, i)
	}
	v.mask()
}

// XnorOf sets v = ~(a ^ b) at v's width.
func (v *Vec) XnorOf(a, b Vec) {
	for i := range v.words {
		v.words[i] = ^(wordAt(a, i) ^ wordAt(b, i))
	}
	v.mask()
}

// NotOf sets v = ~a at v's width.
func (v *Vec) NotOf(a Vec) {
	for i := range v.words {
		v.words[i] = ^wordAt(a, i)
	}
	v.mask()
}

// AddOf sets v = a + b with wraparound at v's width.
func (v *Vec) AddOf(a, b Vec) {
	if len(v.words) == 1 {
		v.words[0] = wordAt(a, 0) + wordAt(b, 0)
		v.mask()
		return
	}
	var carry uint64
	for i := range v.words {
		s, c := bits.Add64(wordAt(a, i), wordAt(b, i), carry)
		v.words[i] = s
		carry = c
	}
	v.mask()
}

// SubOf sets v = a - b with wraparound at v's width.
func (v *Vec) SubOf(a, b Vec) {
	if len(v.words) == 1 {
		v.words[0] = wordAt(a, 0) - wordAt(b, 0)
		v.mask()
		return
	}
	var borrow uint64
	for i := range v.words {
		d, bo := bits.Sub64(wordAt(a, i), wordAt(b, i), borrow)
		v.words[i] = d
		borrow = bo
	}
	v.mask()
}

// NegOf sets v = -a (two's complement) at v's width.
func (v *Vec) NegOf(a Vec) {
	if len(v.words) == 1 {
		v.words[0] = -wordAt(a, 0)
		v.mask()
		return
	}
	var borrow uint64
	for i := range v.words {
		d, bo := bits.Sub64(0, wordAt(a, i), borrow)
		v.words[i] = d
		borrow = bo
	}
	v.mask()
}

// MulOf sets v = a * b truncated to v's width. Copy-on-alias: the
// accumulation reads operand words after writing result words, so aliased
// operands are snapshotted first.
func (v *Vec) MulOf(a, b Vec) {
	if len(v.words) == 1 {
		v.words[0] = wordAt(a, 0) * wordAt(b, 0)
		v.mask()
		return
	}
	var bufA, bufB [aliasBufWords]uint64
	a = v.unalias(a, &bufA)
	b = v.unalias(b, &bufB)
	v.Zero()
	for i := 0; i < len(a.words) && i < len(v.words); i++ {
		x := a.words[i]
		if x == 0 {
			continue
		}
		var carry uint64
		for j := 0; i+j < len(v.words); j++ {
			hi, lo := bits.Mul64(x, wordAt(b, j))
			s, c1 := bits.Add64(v.words[i+j], lo, 0)
			s, c2 := bits.Add64(s, carry, 0)
			v.words[i+j] = s
			carry = hi + c1 + c2
		}
	}
	v.mask()
}

// DivLowOf sets v to the walker's division semantics: zero when b is all
// zeros, else the low-64-bit quotient a.Uint64()/b.Uint64() at v's width.
func (v *Vec) DivLowOf(a, b Vec) {
	if b.IsZero() {
		v.Zero()
		return
	}
	v.SetUint64(a.Uint64() / b.Uint64())
}

// ModLowOf sets v to the low-64-bit remainder, zero when b is all zeros.
func (v *Vec) ModLowOf(a, b Vec) {
	if b.IsZero() {
		v.Zero()
		return
	}
	v.SetUint64(a.Uint64() % b.Uint64())
}

// ShlOf sets v = a << n at v's width (v.width == a.width in every engine
// use). Negative n shifts right, matching Vec.Shl. Self-aliasing (v == a)
// is safe: the descending word iteration writes each position after every
// read of a lower position it depends on.
func (v *Vec) ShlOf(a Vec, n int) {
	if n < 0 {
		v.ShrOf(a, -n)
		return
	}
	if n >= v.width {
		v.Zero()
		return
	}
	if len(v.words) == 1 {
		v.words[0] = wordAt(a, 0) << uint(n)
		v.mask()
		return
	}
	wordShift, bitShift := n/wordBits, uint(n%wordBits)
	for i := len(v.words) - 1; i >= 0; i-- {
		var w uint64
		if i >= wordShift {
			w = wordAt(a, i-wordShift) << bitShift
			if bitShift > 0 && i-wordShift-1 >= 0 {
				w |= wordAt(a, i-wordShift-1) >> (wordBits - bitShift)
			}
		}
		v.words[i] = w
	}
	v.mask()
}

// ShrOf sets v = a >> n (logical) truncated/extended to v's width. Unlike
// ShlOf it supports v.width != a.width, which makes it double as the
// part-select read primitive (a.Shr(lo).Resize(w)). Self-aliasing (v == a)
// is safe: the ascending iteration only reads words at or above the write
// position, before that position is overwritten.
func (v *Vec) ShrOf(a Vec, n int) {
	if n < 0 {
		v.ShlOf(a, -n)
		return
	}
	if n >= a.width {
		v.Zero()
		return
	}
	wordShift, bitShift := n/wordBits, uint(n%wordBits)
	for i := range v.words {
		w := wordAt(a, i+wordShift) >> bitShift
		if bitShift > 0 {
			w |= wordAt(a, i+wordShift+1) << (wordBits - bitShift)
		}
		v.words[i] = w
	}
	// Bits of a above its own width are zero by invariant, so no masking
	// against a.width is needed; mask to v's width only.
	v.mask()
}

// ConcatOf sets v = {a, b} (a in the high bits). v's width must be
// a.Width()+b.Width(). Copy-on-alias: aliasing v==a is absorbed by ShlOf;
// an aliased b is snapshotted before the shift clobbers its words.
func (v *Vec) ConcatOf(a, b Vec) {
	if len(v.words) == 1 {
		v.words[0] = wordAt(b, 0) | wordAt(a, 0)<<uint(b.width)
		v.mask()
		return
	}
	var bufB [aliasBufWords]uint64
	b = v.unalias(b, &bufB)
	v.ShlOf(a, b.width) // zero-fills the low words
	for i := range b.words {
		v.words[i] |= b.words[i]
	}
	v.mask()
}

// RepeatOf sets v = {n{a}}. v's width must be n*a.Width(). Copy-on-alias:
// an aliased a is snapshotted before the initial Zero erases it.
func (v *Vec) RepeatOf(a Vec, n int) {
	var bufA [aliasBufWords]uint64
	a = v.unalias(a, &bufA)
	v.Zero()
	if a.width == 0 {
		return
	}
	for r := 0; r < n; r++ {
		off := r * a.width
		wordShift, bitShift := off/wordBits, uint(off%wordBits)
		for i := 0; i < len(a.words); i++ {
			j := i + wordShift
			if j >= len(v.words) {
				break
			}
			v.words[j] |= a.words[i] << bitShift
			if bitShift > 0 && j+1 < len(v.words) {
				v.words[j+1] |= a.words[i] >> (wordBits - bitShift)
			}
		}
	}
	v.mask()
}

// StoreSliceOf writes w bits of src into v starting at bit lo — the
// part-select store primitive (q[lo+w-1:lo] = src). Positions outside v's
// width are dropped, matching the simulator's out-of-range write
// semantics. It reports whether any stored bit changed. Copy-on-alias:
// when src shares v's storage (q[4:1] = q), the source is snapshotted
// first, so every source bit reads the pre-store value exactly as the
// walker's immutable evaluation does.
func (v *Vec) StoreSliceOf(src Vec, lo, w int) bool {
	var buf [aliasBufWords]uint64
	src = v.unalias(src, &buf)
	changed := false
	width := v.width
	for i := 0; i < w; i++ {
		pos := lo + i
		if pos < 0 || pos >= width {
			continue
		}
		nb := src.Bit(i)
		if v.Bit(pos) != nb {
			v.SetBitInPlace(pos, nb)
			changed = true
		}
	}
	return changed
}

// EqResized reports whether o.Resize(v.Width()) would equal v — the
// compare half of a change-detecting store, without materializing the
// resized copy.
func (v Vec) EqResized(o Vec) bool {
	if len(v.words) == 0 {
		return true
	}
	last := len(v.words) - 1
	for i := 0; i < last; i++ {
		if v.words[i] != wordAt(o, i) {
			return false
		}
	}
	ow := wordAt(o, last)
	if rem := v.width % wordBits; rem != 0 {
		ow &= uint64(1)<<rem - 1
	}
	return v.words[last] == ow
}

// AllOnes reports whether every bit inside the width is set (the AND
// reduction). Width-0 vectors reduce to true, matching Vec.ReduceAnd.
func (v Vec) AllOnes() bool {
	if v.width == 0 {
		return true
	}
	full := v.width / wordBits
	for i := 0; i < full; i++ {
		if v.words[i] != ^uint64(0) {
			return false
		}
	}
	rem := v.width % wordBits
	if rem != 0 {
		want := uint64(1)<<rem - 1
		if v.words[len(v.words)-1]&want != want {
			return false
		}
	}
	return true
}
