// Package bitvec implements fixed-width two-state bit vectors of arbitrary
// width. The Verilog simulator evaluates every expression on these values;
// widths beyond 64 bits matter because VerilogEval-class problems routinely
// use [99:0] and [254:0] vectors.
//
// Values are immutable: every operation returns a fresh vector. All
// operations mask their result to the receiver's width, matching Verilog's
// self-determined truncation semantics.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a two-state bit vector with an explicit width in bits. The zero
// value is a zero-width vector.
type Vec struct {
	width int
	words []uint64 // little-endian: words[0] holds bits 0..63
}

// New returns a zero vector of the given width. Width 0 is allowed and
// behaves as an empty vector. Negative widths panic: they always indicate a
// bug in the caller's range arithmetic.
func New(width int) Vec {
	if width < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", width))
	}
	return Vec{width: width, words: make([]uint64, wordsFor(width))}
}

// FromUint64 builds a vector of the given width holding v truncated to that
// width.
func FromUint64(width int, v uint64) Vec {
	out := New(width)
	if len(out.words) > 0 {
		out.words[0] = v
	}
	out.mask()
	return out
}

// FromBits builds a vector from a slice of booleans, bit 0 first.
func FromBits(bits []bool) Vec {
	out := New(len(bits))
	for i, b := range bits {
		if b {
			out.words[i/wordBits] |= 1 << (i % wordBits)
		}
	}
	return out
}

// ParseBinary builds a vector of the given width from a binary string
// (most-significant bit first). Underscores are ignored, as in Verilog
// literals.
func ParseBinary(width int, s string) (Vec, error) {
	out := New(width)
	clean := strings.ReplaceAll(s, "_", "")
	n := len(clean)
	for i := 0; i < n; i++ {
		c := clean[n-1-i]
		switch c {
		case '0':
		case '1':
			if i < width {
				out.words[i/wordBits] |= 1 << (i % wordBits)
			}
		default:
			return Vec{}, fmt.Errorf("bitvec: bad binary digit %q", c)
		}
	}
	return out, nil
}

func wordsFor(width int) int { return (width + wordBits - 1) / wordBits }

// mask clears any bits above the width in the top word.
func (v *Vec) mask() {
	if v.width == 0 || len(v.words) == 0 {
		return
	}
	rem := v.width % wordBits
	if rem != 0 {
		v.words[len(v.words)-1] &= (1 << rem) - 1
	}
}

// Width returns the vector's width in bits.
func (v Vec) Width() int { return v.width }

// Bit returns bit i (false when i is outside the width, matching Verilog's
// out-of-range read-as-zero in two-state simulation).
func (v Vec) Bit(i int) bool {
	if i < 0 || i >= v.width {
		return false
	}
	return v.words[i/wordBits]>>(i%wordBits)&1 == 1
}

// SetBit returns a copy of v with bit i set to b. Out-of-range indices are
// ignored.
func (v Vec) SetBit(i int, b bool) Vec {
	out := v.clone()
	if i < 0 || i >= v.width {
		return out
	}
	if b {
		out.words[i/wordBits] |= 1 << (i % wordBits)
	} else {
		out.words[i/wordBits] &^= 1 << (i % wordBits)
	}
	return out
}

func (v Vec) clone() Vec {
	out := Vec{width: v.width, words: make([]uint64, len(v.words))}
	copy(out.words, v.words)
	return out
}

// Resize returns v zero-extended or truncated to the new width.
func (v Vec) Resize(width int) Vec {
	out := New(width)
	n := len(out.words)
	if len(v.words) < n {
		n = len(v.words)
	}
	copy(out.words, v.words[:n])
	out.mask()
	return out
}

// Uint64 returns the low 64 bits of the vector.
func (v Vec) Uint64() uint64 {
	if len(v.words) == 0 {
		return 0
	}
	return v.words[0]
}

// IsZero reports whether every bit is zero.
func (v Vec) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bool returns the Verilog truth value: true iff any bit is set.
func (v Vec) Bool() bool { return !v.IsZero() }

// Eq reports bitwise equality after zero-extension to the wider width.
func (v Vec) Eq(o Vec) bool {
	n := len(v.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(v.words) {
			a = v.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Ult reports v < o as unsigned integers (after zero-extension).
func (v Vec) Ult(o Vec) bool {
	n := len(v.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := n - 1; i >= 0; i-- {
		var a, b uint64
		if i < len(v.words) {
			a = v.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return a < b
		}
	}
	return false
}

func binop(a, b Vec, width int, f func(x, y uint64) uint64) Vec {
	out := New(width)
	for i := range out.words {
		var x, y uint64
		if i < len(a.words) {
			x = a.words[i]
		}
		if i < len(b.words) {
			y = b.words[i]
		}
		out.words[i] = f(x, y)
	}
	out.mask()
	return out
}

// And returns the bitwise AND at the wider operand width.
func (v Vec) And(o Vec) Vec {
	return binop(v, o, maxInt(v.width, o.width), func(x, y uint64) uint64 { return x & y })
}

// Or returns the bitwise OR at the wider operand width.
func (v Vec) Or(o Vec) Vec {
	return binop(v, o, maxInt(v.width, o.width), func(x, y uint64) uint64 { return x | y })
}

// Xor returns the bitwise XOR at the wider operand width.
func (v Vec) Xor(o Vec) Vec {
	return binop(v, o, maxInt(v.width, o.width), func(x, y uint64) uint64 { return x ^ y })
}

// Not returns the bitwise complement at v's own width.
func (v Vec) Not() Vec {
	out := New(v.width)
	for i := range out.words {
		out.words[i] = ^v.words[i]
	}
	out.mask()
	return out
}

// Add returns v + o at the wider operand width, with wraparound.
func (v Vec) Add(o Vec) Vec {
	width := maxInt(v.width, o.width)
	out := New(width)
	var carry uint64
	for i := range out.words {
		var x, y uint64
		if i < len(v.words) {
			x = v.words[i]
		}
		if i < len(o.words) {
			y = o.words[i]
		}
		s, c1 := bits.Add64(x, y, carry)
		out.words[i] = s
		carry = c1
	}
	out.mask()
	return out
}

// Sub returns v - o at the wider operand width, with wraparound.
func (v Vec) Sub(o Vec) Vec {
	width := maxInt(v.width, o.width)
	out := New(width)
	var borrow uint64
	for i := range out.words {
		var x, y uint64
		if i < len(v.words) {
			x = v.words[i]
		}
		if i < len(o.words) {
			y = o.words[i]
		}
		d, b1 := bits.Sub64(x, y, borrow)
		out.words[i] = d
		borrow = b1
	}
	out.mask()
	return out
}

// Mul returns v * o truncated to the wider operand width.
func (v Vec) Mul(o Vec) Vec {
	width := maxInt(v.width, o.width)
	out := New(width)
	// Schoolbook multiply, truncating above the result width.
	for i := 0; i < len(v.words) && i < len(out.words); i++ {
		var carry uint64
		x := v.words[i]
		if x == 0 {
			continue
		}
		for j := 0; i+j < len(out.words); j++ {
			var y uint64
			if j < len(o.words) {
				y = o.words[j]
			}
			hi, lo := bits.Mul64(x, y)
			s, c1 := bits.Add64(out.words[i+j], lo, 0)
			s, c2 := bits.Add64(s, carry, 0)
			out.words[i+j] = s
			carry = hi + c1 + c2
		}
	}
	out.mask()
	return out
}

// Shl returns v << n at v's width.
func (v Vec) Shl(n int) Vec {
	if n < 0 {
		return v.Shr(-n)
	}
	out := New(v.width)
	if n >= v.width {
		return out
	}
	wordShift, bitShift := n/wordBits, uint(n%wordBits)
	for i := len(out.words) - 1; i >= wordShift; i-- {
		w := v.words[i-wordShift] << bitShift
		if bitShift > 0 && i-wordShift-1 >= 0 {
			w |= v.words[i-wordShift-1] >> (wordBits - bitShift)
		}
		out.words[i] = w
	}
	out.mask()
	return out
}

// Shr returns v >> n (logical) at v's width.
func (v Vec) Shr(n int) Vec {
	if n < 0 {
		return v.Shl(-n)
	}
	out := New(v.width)
	if n >= v.width {
		return out
	}
	wordShift, bitShift := n/wordBits, uint(n%wordBits)
	for i := 0; i+wordShift < len(v.words); i++ {
		w := v.words[i+wordShift] >> bitShift
		if bitShift > 0 && i+wordShift+1 < len(v.words) {
			w |= v.words[i+wordShift+1] << (wordBits - bitShift)
		}
		out.words[i] = w
	}
	out.mask()
	return out
}

// Slice returns bits [hi:lo] as a new vector of width hi-lo+1. Bits outside
// v read as zero. Panics when hi < lo: that is a caller bug, and the
// elaborator rejects reversed ranges before simulation.
func (v Vec) Slice(hi, lo int) Vec {
	if hi < lo {
		panic(fmt.Sprintf("bitvec: reversed slice [%d:%d]", hi, lo))
	}
	return v.Shr(lo).Resize(hi - lo + 1)
}

// Concat returns {v, o} — v in the high bits, o in the low bits, matching
// Verilog concatenation order.
func (v Vec) Concat(o Vec) Vec {
	out := New(v.width + o.width)
	for i := 0; i < o.width; i++ {
		if o.Bit(i) {
			out.words[i/wordBits] |= 1 << (i % wordBits)
		}
	}
	for i := 0; i < v.width; i++ {
		if v.Bit(i) {
			j := i + o.width
			out.words[j/wordBits] |= 1 << (j % wordBits)
		}
	}
	return out
}

// Repeat returns v replicated n times ({n{v}}).
func (v Vec) Repeat(n int) Vec {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative replication count %d", n))
	}
	out := New(0)
	for i := 0; i < n; i++ {
		out = out.Concat(v)
	}
	return out
}

// ReduceAnd returns the AND of all bits (width-1 result).
func (v Vec) ReduceAnd() Vec {
	if v.width == 0 {
		return FromUint64(1, 1)
	}
	for i := 0; i < v.width; i++ {
		if !v.Bit(i) {
			return FromUint64(1, 0)
		}
	}
	return FromUint64(1, 1)
}

// ReduceOr returns the OR of all bits (width-1 result).
func (v Vec) ReduceOr() Vec {
	if v.Bool() {
		return FromUint64(1, 1)
	}
	return FromUint64(1, 0)
}

// ReduceXor returns the XOR of all bits (width-1 result).
func (v Vec) ReduceXor() Vec {
	var parity uint64
	for _, w := range v.words {
		parity ^= uint64(bits.OnesCount64(w)) & 1
	}
	return FromUint64(1, parity&1)
}

// PopCount returns the number of set bits.
func (v Vec) PopCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// String renders the vector as a Verilog-style sized binary literal, e.g.
// 4'b0101.
func (v Vec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d'b", v.width)
	if v.width == 0 {
		b.WriteByte('0')
		return b.String()
	}
	for i := v.width - 1; i >= 0; i-- {
		if v.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Hex renders the vector as a Verilog-style sized hex literal, e.g. 8'hf3.
func (v Vec) Hex() string {
	digits := (v.width + 3) / 4
	if digits == 0 {
		digits = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d'h", v.width)
	for i := digits - 1; i >= 0; i-- {
		nibble := v.Shr(i*4).Uint64() & 0xf
		fmt.Fprintf(&b, "%x", nibble)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
