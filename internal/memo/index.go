package memo

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/rag"
)

// RetrievalIndex is a precompiled view of one rag.Database, built once
// (core.New time) and shared read-only by every worker:
//
//   - an inverted pattern→entries index: each distinct pattern string is
//     tested against the log once instead of once per entry holding it
//     (the curated DBs reuse tags like "Error (10161)" heavily);
//   - an inverted word→entries index with per-entry multiplicities for
//     the keyword retriever;
//   - precomputed shingle sets per entry LogExample for the fuzzy
//     retriever, which otherwise re-shingles the whole database per call.
//
// All three indexed paths reproduce the naive scans' results exactly,
// including tie order (scores are accumulated in entry order and ranked
// through the same rag.SelectByScore / stable-sort tail).
type RetrievalIndex struct {
	db      *rag.Database
	entries []rag.Entry

	patterns []patternPosting
	words    []wordPosting

	// shingles caches per-entry LogExample shingle sets by shingle size.
	// The default size is built eagerly; other sizes (a caller using
	// rag.Fuzzy{ShingleK: 5}) are built once on demand.
	mu       sync.RWMutex
	shingles map[int][]map[string]struct{}

	// restored is true when the index image was loaded from a durable
	// backing instead of built (NewPersistedRetrievalIndex, persist.go).
	restored bool

	c counters
}

// patternPosting maps one distinct non-empty pattern string to the
// entries whose Patterns contain it.
type patternPosting struct {
	pat     string
	entries []int
}

// wordPosting maps one distinct lowercased word (length >= 4, as the
// keyword retriever requires) to the entries whose patterns contain it,
// with the per-entry occurrence count — the naive scan counts duplicate
// words once per occurrence, so multiplicity matters for score parity.
type wordPosting struct {
	word  string
	posts []wordPost
}

type wordPost struct {
	entry int
	count int
}

// NewRetrievalIndex precompiles the index for db.
func NewRetrievalIndex(db *rag.Database) *RetrievalIndex {
	entries := db.Entries()
	idx := &RetrievalIndex{
		db:       db,
		entries:  entries,
		shingles: map[int][]map[string]struct{}{},
	}

	patTo := map[string][]int{}
	wordTo := map[string]map[int]int{}
	var patOrder, wordOrder []string
	for i, e := range entries {
		seenPat := map[string]bool{}
		for _, p := range e.Patterns {
			if p == "" {
				continue
			}
			if !seenPat[p] {
				seenPat[p] = true
				if _, ok := patTo[p]; !ok {
					patOrder = append(patOrder, p)
				}
				patTo[p] = append(patTo[p], i)
			}
			for _, w := range strings.Fields(strings.ToLower(p)) {
				if len(w) < 4 {
					continue
				}
				if _, ok := wordTo[w]; !ok {
					wordTo[w] = map[int]int{}
					wordOrder = append(wordOrder, w)
				}
				wordTo[w][i]++
			}
		}
	}
	for _, p := range patOrder {
		idx.patterns = append(idx.patterns, patternPosting{pat: p, entries: patTo[p]})
	}
	for _, w := range wordOrder {
		posts := make([]wordPost, 0, len(wordTo[w]))
		for e, n := range wordTo[w] {
			posts = append(posts, wordPost{entry: e, count: n})
		}
		sort.Slice(posts, func(i, j int) bool { return posts[i].entry < posts[j].entry })
		idx.words = append(idx.words, wordPosting{word: w, posts: posts})
	}

	defaultK, _ := rag.Fuzzy{}.Params()
	idx.shingles[defaultK] = shingleEntries(entries, defaultK)
	return idx
}

func shingleEntries(entries []rag.Entry, k int) []map[string]struct{} {
	sets := make([]map[string]struct{}, len(entries))
	for i, e := range entries {
		sets[i] = cluster.Shingles(e.LogExample, k)
	}
	return sets
}

// Database returns the database the index was built over.
func (idx *RetrievalIndex) Database() *rag.Database { return idx.db }

// Restored reports whether the index image came from a durable backing
// rather than a fresh build.
func (idx *RetrievalIndex) Restored() bool { return idx.restored }

// Stats snapshots the index's lookup counter.
func (idx *RetrievalIndex) Stats() Stats { return idx.c.snapshot() }

// entryShingles returns the precomputed shingle sets for size k, building
// and caching them on first use of a non-default size.
func (idx *RetrievalIndex) entryShingles(k int) []map[string]struct{} {
	idx.mu.RLock()
	sets, ok := idx.shingles[k]
	idx.mu.RUnlock()
	if ok {
		return sets
	}
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if sets, ok = idx.shingles[k]; ok {
		return sets
	}
	sets = shingleEntries(idx.entries, k)
	idx.shingles[k] = sets
	return sets
}

// exactTag serves rag.ExactTag's semantics from the inverted index: each
// distinct pattern is substring-tested once, the per-entry best (longest
// matching pattern) accumulated, then ranked through the shared
// SelectByScore tail. Hits are collected in entry order, so stable-sort
// ties break identically to the naive scan.
func (idx *RetrievalIndex) exactTag(log string, k int) []rag.Entry {
	best := make([]int, len(idx.entries))
	for _, pp := range idx.patterns {
		if !strings.Contains(log, pp.pat) {
			continue
		}
		n := len(pp.pat)
		for _, e := range pp.entries {
			if n > best[e] {
				best[e] = n
			}
		}
	}
	var hits []rag.ScoredEntry
	for i, b := range best {
		if b > 0 {
			hits = append(hits, rag.ScoredEntry{Entry: idx.entries[i], Score: b})
		}
	}
	return rag.SelectByScore(hits, k)
}

// keyword serves rag.Keyword's semantics: each distinct qualifying word
// is substring-tested once against the lowercased log, scores accumulate
// with the naive scan's per-occurrence multiplicity.
func (idx *RetrievalIndex) keyword(log string, k int) []rag.Entry {
	lower := strings.ToLower(log)
	score := make([]int, len(idx.entries))
	for _, wp := range idx.words {
		if !strings.Contains(lower, wp.word) {
			continue
		}
		for _, p := range wp.posts {
			score[p.entry] += p.count
		}
	}
	var hits []rag.ScoredEntry
	for i, s := range score {
		if s > 0 {
			hits = append(hits, rag.ScoredEntry{Entry: idx.entries[i], Score: s})
		}
	}
	return rag.SelectByScore(hits, k)
}

// fuzzy serves rag.Fuzzy's semantics from the precomputed shingle sets:
// only the query log is shingled per call.
func (idx *RetrievalIndex) fuzzy(f rag.Fuzzy, log string, k int) []rag.Entry {
	shingleK, minSim := f.Params()
	logSet := cluster.Shingles(log, shingleK)
	sets := idx.entryShingles(shingleK)
	type scored struct {
		entry int
		sim   float64
	}
	var hits []scored
	for i := range idx.entries {
		sim := cluster.Jaccard(logSet, sets[i])
		if sim >= minSim {
			hits = append(hits, scored{i, sim})
		}
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].sim > hits[j].sim })
	var out []rag.Entry
	for _, h := range hits {
		if len(out) >= k {
			break
		}
		out = append(out, idx.entries[h.entry])
	}
	return out
}

// indexedRetriever adapts a RetrievalIndex to the rag.Retriever
// interface, serving the wrapped strategy's queries from the index.
type indexedRetriever struct {
	idx   *RetrievalIndex
	inner rag.Retriever
}

// Indexable reports whether a RetrievalIndex can serve a strategy. nil
// means the agent's default (exact-tag), which is indexable. Callers can
// check before paying for NewRetrievalIndex: a custom strategy (such as
// the guidance-size ablation's truncating wrapper) would make the index
// dead weight.
func Indexable(r rag.Retriever) bool {
	switch r.(type) {
	case nil, rag.ExactTag, rag.Keyword, rag.Fuzzy:
		return true
	}
	return false
}

// Wrap returns a retriever that serves inner's strategy from the index.
// nil means the agent's default (exact-tag). Strategies the index cannot
// reproduce are returned unwrapped — correctness over speed.
func (idx *RetrievalIndex) Wrap(inner rag.Retriever) rag.Retriever {
	if inner == nil {
		inner = rag.ExactTag{}
	}
	if !Indexable(inner) {
		return inner
	}
	return &indexedRetriever{idx: idx, inner: inner}
}

// Name implements rag.Retriever.
func (r *indexedRetriever) Name() string { return r.inner.Name() }

// Retrieve implements rag.Retriever. A query against a database other
// than the one the index was built over falls back to the naive scan (a
// foreign db means the caller substituted entries, as the ablations do).
// So does a query against the indexed database after it has grown via
// Add — the index is a construction-time snapshot, and serving it then
// would break the indexed-equals-naive contract.
func (r *indexedRetriever) Retrieve(db *rag.Database, log string, k int) []rag.Entry {
	if db != r.idx.db || db.Len() != len(r.idx.entries) {
		return r.inner.Retrieve(db, log, k)
	}
	r.idx.c.lookups.Add(1)
	globalRetrieval.lookups.Add(1)
	switch in := r.inner.(type) {
	case rag.ExactTag:
		return r.idx.exactTag(log, k)
	case rag.Keyword:
		return r.idx.keyword(log, k)
	case rag.Fuzzy:
		return r.idx.fuzzy(in, log, k)
	}
	return r.inner.Retrieve(db, log, k)
}
