// Package memo is the sharded memoization layer in front of the two hot
// paths the evaluation pipeline hammers: compilation (every ReAct
// iteration recompiles, and repeats of the same curated entry recompile
// identical sources) and retrieval (the naive retrievers rescan the whole
// guidance database — rag.Fuzzy even re-shingles every LogExample — per
// call).
//
// The design follows the sharded front-end-buffer / central-aggregator
// pattern of high-throughput DAQ systems (see PAPERS.md): lookup
// structures are precomputed once and sharded by key hash, so the worker
// pool never repeats work and never serializes on a single lock.
//
// Three components:
//
//   - CompileCache — a concurrency-safe, content-addressed cache of
//     compiler.Result keyed by (persona, filename, FNV-64a of source),
//     fronting any compiler.Compiler via Cached.
//   - RetrievalIndex — a precompiled index over one rag.Database: an
//     inverted pattern→entry index serving ExactTag and Keyword, and
//     precomputed shingle sets serving Fuzzy. Wrap adapts it to the
//     rag.Retriever interface.
//   - SimCache (simcache.go) — the same content addressing over the
//     simulation oracle's pipeline: parse + elaborate + sim.Compile,
//     shared by every dataset.Problem.Check so the pass@k loop pays one
//     engine compile per distinct source.
//
// All three caches are process-lifetime by default; persist.go hangs a
// durable backing (internal/store) underneath them: compile results and
// the retrieval-index image restore at attach time (warm start) and
// write behind, sim sources are recorded and replayed through the
// compiler at boot. Lookups stay in-memory-first; only a miss consults
// disk before recomputing. Per-layer process totals (TotalsByKind)
// make warm-start effectiveness observable per cache.
//
// Correctness contract: every component is transparent. A cached compile
// returns the same Result the wrapped persona would produce (results are
// shared, so callers must treat them as read-only — which every consumer
// already does); an indexed retrieval returns the same entries in the
// same order as the naive scan; a restored record serves the same bytes
// a cold compute would (collision-guarded and schema-versioned, so
// anything doubtful recomputes). Table output is therefore byte-identical
// with the layer on or off, at any worker count, across restarts.
package memo

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/compiler"
	"repro/internal/store"
)

// Stats is a point-in-time snapshot of memoization counters.
type Stats struct {
	// Hits and Misses count compile-cache lookups.
	Hits   uint64
	Misses uint64
	// Evictions counts compile-cache entries displaced by capacity
	// pressure (or, rarely, by an FNV collision overwrite).
	Evictions uint64
	// Lookups counts retrievals served from a RetrievalIndex.
	Lookups uint64
}

// Add returns the component-wise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
		Lookups:   s.Lookups + o.Lookups,
	}
}

// Sub returns the component-wise difference s - o (for delta reporting
// between two Totals snapshots).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:      s.Hits - o.Hits,
		Misses:    s.Misses - o.Misses,
		Evictions: s.Evictions - o.Evictions,
		Lookups:   s.Lookups - o.Lookups,
	}
}

// counters is the live, atomically-updated form of Stats. Every increment
// is mirrored into the package-global totals so CLIs can report aggregate
// cache behaviour across many fixer instances without threading handles.
type counters struct {
	hits, misses, evictions, lookups atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Lookups:   c.lookups.Load(),
	}
}

// The process-wide totals are kept per cache layer so warm-start
// effectiveness is observable per layer (compile vs sim vs retrieval),
// then summed for the legacy aggregate view.
var (
	globalCompile   counters
	globalSim       counters
	globalRetrieval counters
)

// Totals returns the process-wide aggregate counters over every
// CompileCache, SimCache, and RetrievalIndex ever created. Under
// concurrency the hit/miss split is approximate (two workers can race to
// populate the same key, recording two misses where a serial run records
// one miss and one hit); the cached values themselves are exact.
func Totals() Stats {
	t := TotalsByKind()
	return t.Compile.Add(t.Sim).Add(t.Retrieval)
}

// KindTotals breaks the process-wide counters out per cache layer.
type KindTotals struct {
	// Compile covers every CompileCache (persona compile results).
	Compile Stats
	// Sim covers every SimCache (the simulation oracle's frontend +
	// engine-compile pipeline).
	Sim Stats
	// Retrieval covers every RetrievalIndex (lookups served from the
	// precompiled index).
	Retrieval Stats
}

// TotalsByKind returns the per-layer process-wide counters.
func TotalsByKind() KindTotals {
	return KindTotals{
		Compile:   globalCompile.snapshot(),
		Sim:       globalSim.snapshot(),
		Retrieval: globalRetrieval.snapshot(),
	}
}

// Default sizing. 64 shards keeps lock contention negligible for any
// plausible worker count; 16384 entries comfortably hold a full Table 1
// run's distinct (source, persona) population.
const (
	defaultShards   = 64
	defaultCapacity = 16384
)

// compileKey is the content address of one compilation.
type compileKey struct {
	persona  string
	filename string
	srcHash  uint64
}

// compileEntry retains the source alongside the result so an FNV-64
// collision degrades to a miss instead of serving a wrong result.
type compileEntry struct {
	src string
	res compiler.Result
}

// cacheShard is one lock domain of the cache: a bounded map with FIFO
// displacement (deterministic, no clock reads).
type cacheShard struct {
	mu      sync.Mutex
	entries map[compileKey]compileEntry
	order   []compileKey
}

// CompileCache is a concurrency-safe, sharded, content-addressed cache of
// compilation results.
type CompileCache struct {
	shards      []cacheShard
	capPerShard int
	c           counters
	// backing, when non-nil, is the durable store under the cache:
	// misses consult it before recomputing, fresh results are written
	// behind. Set once via AttachStore (persist.go) before serving.
	backing store.Backing
	// loaded counts entries restored from the backing (attach-time warm
	// start plus lazy miss-path loads).
	loaded atomic.Uint64
}

// NewCompileCache builds a cache holding at least capacity results
// across all shards; capacity <= 0 selects the default (16384). The
// bound is rounded up to shard granularity (shards × ceil(capacity /
// shards), never more than 2x the request), so a caller bounding memory
// never gets avoidable evictions below its requested capacity.
func NewCompileCache(capacity int) *CompileCache {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	shards := defaultShards
	if capacity < shards {
		shards = capacity // one entry per shard: the bound is exact
	}
	perShard := (capacity + shards - 1) / shards
	cc := &CompileCache{shards: make([]cacheShard, shards), capPerShard: perShard}
	for i := range cc.shards {
		cc.shards[i].entries = make(map[compileKey]compileEntry)
	}
	return cc
}

// Stats snapshots this cache's counters.
func (cc *CompileCache) Stats() Stats { return cc.c.snapshot() }

// Len returns the number of cached results (for tests and sizing checks).
func (cc *CompileCache) Len() int {
	n := 0
	for i := range cc.shards {
		s := &cc.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// HashSource is the content address used by the memoization layer (and
// the server's request-coalescing keys): FNV-64a over the source bytes.
// Collisions are tolerable because every consumer keeps the source
// alongside and compares it before trusting a match.
func HashSource(src string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(src))
	return h.Sum64()
}

func (cc *CompileCache) shardFor(key compileKey) *cacheShard {
	return &cc.shards[key.srcHash%uint64(len(cc.shards))]
}

// get returns the cached result for key when present and the stored
// source matches (the collision guard).
func (cc *CompileCache) get(key compileKey, src string) (compiler.Result, bool) {
	s := cc.shardFor(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if ok && e.src == src {
		cc.c.hits.Add(1)
		globalCompile.hits.Add(1)
		return e.res, true
	}
	// Memory missed (or an FNV collision shadowed the slot): consult the
	// durable backing before conceding a recompute.
	if cc.backing != nil {
		if res, ok := cc.backingGet(key, src); ok {
			cc.c.hits.Add(1)
			globalCompile.hits.Add(1)
			return res, true
		}
	}
	cc.c.misses.Add(1)
	globalCompile.misses.Add(1)
	return compiler.Result{}, false
}

// peek is get without the miss accounting: a present entry counts as a
// hit (exactly as get would count it), an absent one counts nothing and
// touches nothing, so a caller probing before a full Compile leaves the
// hit/miss statistics identical to an unprobed Compile.
func (cc *CompileCache) peek(key compileKey, src string) (compiler.Result, bool) {
	s := cc.shardFor(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if ok && e.src == src {
		cc.c.hits.Add(1)
		globalCompile.hits.Add(1)
		return e.res, true
	}
	if cc.backing != nil {
		if res, ok := cc.backingGet(key, src); ok {
			cc.c.hits.Add(1)
			globalCompile.hits.Add(1)
			return res, true
		}
	}
	return compiler.Result{}, false
}

// put stores a result, displacing the oldest entry in the shard when the
// shard is full (FIFO: deterministic and cheap; a displaced entry is
// simply recomputed on its next miss).
func (cc *CompileCache) put(key compileKey, src string, res compiler.Result) {
	s := cc.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		// Racing workers populating the same key, or an FNV collision
		// overwrite; either way the slot is already accounted in order.
		if old.src != src {
			cc.c.evictions.Add(1)
			globalCompile.evictions.Add(1)
		}
		s.entries[key] = compileEntry{src: src, res: res}
		return
	}
	for len(s.entries) >= cc.capPerShard && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if _, ok := s.entries[oldest]; ok {
			delete(s.entries, oldest)
			cc.c.evictions.Add(1)
			globalCompile.evictions.Add(1)
		}
	}
	s.entries[key] = compileEntry{src: src, res: res}
	s.order = append(s.order, key)
}

// cachedCompiler fronts a compiler.Compiler with a CompileCache.
type cachedCompiler struct {
	inner compiler.Compiler
	cache *CompileCache
}

// Cached wraps a persona so repeated compilations of identical
// (filename, source) pairs are served from cc. The wrapper delegates
// Name and InfoScore, so it is indistinguishable from the wrapped persona
// everywhere but in speed.
func (cc *CompileCache) Cached(c compiler.Compiler) compiler.Compiler {
	return &cachedCompiler{inner: c, cache: cc}
}

// Cached wraps a persona with a fresh default-sized cache — the
// convenience form for callers that do not need to read the counters.
func Cached(c compiler.Compiler) compiler.Compiler {
	return NewCompileCache(0).Cached(c)
}

// Name implements compiler.Compiler.
func (c *cachedCompiler) Name() string { return c.inner.Name() }

// InfoScore implements compiler.Compiler.
func (c *cachedCompiler) InfoScore() float64 { return c.inner.InfoScore() }

// CompileHit reports whether (filename, src) is already cached — in
// memory or the durable backing — returning the cached result when so.
// A hit is accounted exactly as a Compile hit; a miss has no side
// effects, and callers fall through to Compile for the full miss path.
// The tracing layer probes this (via a structural interface) to
// attribute cache hits on compile spans without widening
// compiler.Compiler.
func (c *cachedCompiler) CompileHit(filename, src string) (compiler.Result, bool) {
	key := compileKey{persona: c.inner.Name(), filename: filename, srcHash: HashSource(src)}
	return c.cache.peek(key, src)
}

// Compile implements compiler.Compiler.
func (c *cachedCompiler) Compile(filename, src string) compiler.Result {
	key := compileKey{persona: c.inner.Name(), filename: filename, srcHash: HashSource(src)}
	if res, ok := c.cache.get(key, src); ok {
		return res
	}
	res := c.inner.Compile(filename, src)
	c.cache.put(key, src, res)
	c.cache.backingPut(key, src, res)
	return res
}
