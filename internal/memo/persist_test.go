package memo

import (
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/rag"
	"repro/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoFlusher: true})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

const persistGood = `
module top_module(input clk, input [3:0] d, output reg [3:0] q);
	always @(posedge clk) q <= d;
endmodule
`

const persistBroken = `
module top_module(input a, output y)
	assign y = a;
endmodule
`

func TestCompileCachePersistRoundtrip(t *testing.T) {
	dir := t.TempDir()
	quartus, _ := compiler.ByName("quartus")

	// Cold process: compile through an attached cache, flush, close.
	st1 := openStore(t, dir)
	cc1 := NewCompileCache(0)
	if n := cc1.AttachStore(st1); n != 0 {
		t.Fatalf("fresh store loaded %d records", n)
	}
	comp1 := cc1.Cached(quartus)
	wantGood := comp1.Compile("main.v", persistGood)
	wantBroken := comp1.Compile("main.v", persistBroken)
	if err := st1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Warm process: attach restores both records; lookups hit without
	// recompiling, and the served fields match the fresh compile exactly.
	st2 := openStore(t, dir)
	defer st2.Close()
	cc2 := NewCompileCache(0)
	if n := cc2.AttachStore(st2); n != 2 {
		t.Fatalf("warm start loaded %d records, want 2", n)
	}
	comp2 := cc2.Cached(quartus)
	for _, tc := range []struct {
		src  string
		want compiler.Result
	}{{persistGood, wantGood}, {persistBroken, wantBroken}} {
		got := comp2.Compile("main.v", tc.src)
		if got.Ok != tc.want.Ok || got.Log != tc.want.Log ||
			!reflect.DeepEqual(got.Diags, tc.want.Diags) {
			t.Fatalf("restored result differs for %q", tc.src[:20])
		}
	}
	s := cc2.Stats()
	if s.Hits != 2 || s.Misses != 0 {
		t.Fatalf("warm cache stats = %+v, want 2 hits 0 misses", s)
	}
	if cc2.Loaded() != 2 {
		t.Fatalf("Loaded = %d, want 2", cc2.Loaded())
	}
}

func TestCompileCacheBackingMissConsultsDisk(t *testing.T) {
	dir := t.TempDir()
	quartus, _ := compiler.ByName("quartus")
	st := openStore(t, dir)
	defer st.Close()

	// Two caches over one live backing: what the first compiles, the
	// second finds on its (memory) miss path — before any flush.
	cc1 := NewCompileCache(0)
	cc1.AttachStore(st)
	want := cc1.Cached(quartus).Compile("main.v", persistGood)

	cc2 := NewCompileCache(0)
	cc2.backing = st // attach without the eager load: isolate the lazy path
	got := cc2.Cached(quartus).Compile("main.v", persistGood)
	if got.Ok != want.Ok || got.Log != want.Log {
		t.Fatal("lazy backing consult served a different result")
	}
	if s := cc2.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("lazy consult stats = %+v, want a hit", s)
	}
}

func TestCompileCacheBackingCollisionGuard(t *testing.T) {
	dir := t.TempDir()
	quartus, _ := compiler.ByName("quartus")
	st := openStore(t, dir)
	defer st.Close()

	// Plant a record at the key for persistGood whose payload identifies
	// a different source — the disk-level analogue of an FNV collision.
	key := compileStoreKey("Quartus", "main.v", persistGood)
	st.Put(store.KindCompile, key,
		encodeCompileRecord("Quartus", "main.v", persistBroken, compiler.Result{Ok: true, Log: "forged"}))

	cc := NewCompileCache(0)
	cc.backing = st
	got := cc.Cached(quartus).Compile("main.v", persistGood)
	if got.Log == "forged" {
		t.Fatal("collision guard failed: forged record served")
	}
	if s := cc.Stats(); s.Misses != 1 {
		t.Fatalf("collided lookup must miss and recompute: %+v", s)
	}
}

func TestCompileCacheStalePayloadSkipped(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	var e store.Encoder
	e.U8(99) // future schema
	e.String("who knows")
	st.Put(store.KindCompile, 12345, e.Bytes())

	cc := NewCompileCache(0)
	if n := cc.AttachStore(st); n != 0 {
		t.Fatalf("stale payload loaded: %d", n)
	}
}

func TestSimCachePersistWarmStart(t *testing.T) {
	dir := t.TempDir()

	st1 := openStore(t, dir)
	sc1 := NewSimCache(0)
	sc1.AttachStore(st1, false)
	p1, _, _ := sc1.Program(persistGood)
	if p1 == nil {
		t.Fatal("source should compile")
	}
	sc1.Frontend(persistBroken) // broken sources are recorded too
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	sc2 := NewSimCache(0)
	if n := sc2.AttachStore(st2, true); n != 2 {
		t.Fatalf("warm start replayed %d sources, want 2", n)
	}
	if sc2.Loaded() != 2 {
		t.Fatalf("Loaded = %d, want 2", sc2.Loaded())
	}
	// The first lookup after warm start is a pure hit.
	p2, d2, _ := sc2.Program(persistGood)
	if p2 == nil || d2 == nil {
		t.Fatal("warm-started entry lost its program")
	}
	if s := sc2.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("warm sim cache stats = %+v", s)
	}
	// warm=false records but does not replay.
	sc3 := NewSimCache(0)
	if n := sc3.AttachStore(st2, false); n != 0 || sc3.Len() != 0 {
		t.Fatalf("cold attach must not replay (n=%d len=%d)", n, sc3.Len())
	}
}

func TestPersistedRetrievalIndexRoundtrip(t *testing.T) {
	dir := t.TempDir()
	db := rag.QuartusDB()
	logs := []string{
		"Error (10161): Verilog HDL error at main.v(3): object \"clk\" is not declared",
		"Error (10170): Verilog HDL syntax error at main.v(5) near text \";\"",
		"some log that matches nothing at all",
	}

	st1 := openStore(t, dir)
	fresh := NewPersistedRetrievalIndex(db, st1)
	if fresh.Restored() {
		t.Fatal("first build cannot be restored")
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	restored := NewPersistedRetrievalIndex(db, st2)
	if !restored.Restored() {
		t.Fatal("second build should restore from the store")
	}
	// The restored image must reproduce the fresh index (and therefore
	// the naive scans) exactly, for every indexable strategy.
	for _, log := range logs {
		for _, strat := range []rag.Retriever{rag.ExactTag{}, rag.Keyword{}, rag.Fuzzy{}} {
			want := fresh.Wrap(strat).Retrieve(db, log, 4)
			got := restored.Wrap(strat).Retrieve(db, log, 4)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%T differs on %q:\nfresh:    %v\nrestored: %v", strat, log, want, got)
			}
		}
	}
}

func TestPersistedRetrievalIndexRejectsForeignDB(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	_ = NewPersistedRetrievalIndex(rag.QuartusDB(), st)

	// A different database hashes differently: no restore, fresh build.
	other := rag.NewDatabase(rag.QuartusDB().Entries()[:3])
	idx := NewPersistedRetrievalIndex(other, st)
	if idx.Restored() {
		t.Fatal("foreign database must not restore another db's image")
	}
}
