package memo

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/sim"
)

const simCacheGood = `
module top_module(input clk, input [7:0] d, output reg [7:0] q);
	always @(posedge clk) q <= q + d;
endmodule
`

// simCacheFallback elaborates but uses a dynamic replication count, which
// the compiled engine rejects — the cache must remember the nil program.
const simCacheFallback = `
module top_module(input [3:0] n, output [7:0] y);
	assign y = {n{1'b1}};
endmodule
`

const simCacheBroken = `
module top_module(input a, output b);
	assign b = c;
endmodule
`

func TestSimCacheTransparent(t *testing.T) {
	sc := NewSimCache(0)
	for _, src := range []string{simCacheGood, simCacheFallback, simCacheBroken} {
		_, wantDesign, wantDiags := compiler.Frontend(src)
		prog, design, diags := sc.Program(src)
		if (design == nil) != (wantDesign == nil) {
			t.Fatalf("design presence differs from Frontend for %q", src[:20])
		}
		if len(diags) != len(wantDiags) {
			t.Fatalf("diags differ: %d vs %d", len(diags), len(wantDiags))
		}
		if design != nil {
			wantProg, err := sim.Compile(wantDesign)
			if (prog == nil) != (err != nil) {
				t.Fatalf("program presence differs from sim.Compile (err=%v)", err)
			}
			_ = wantProg
		} else if prog != nil {
			t.Fatal("program must be nil when the design is nil")
		}
	}
	if sc.Len() != 3 {
		t.Fatalf("Len = %d, want 3", sc.Len())
	}
}

func TestSimCacheHitsAndReuse(t *testing.T) {
	sc := NewSimCache(0)
	p1, d1, _ := sc.Program(simCacheGood)
	p2, d2, _ := sc.Program(simCacheGood)
	if p1 == nil || p1 != p2 || d1 != d2 {
		t.Fatal("repeat lookups must return the identical cached objects")
	}
	st := sc.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", st)
	}
	// the shared program instantiates independent simulators
	a, b := sim.NewFromProgram(p1), sim.NewFromProgram(p1)
	a.SetInputUint("d", 2)
	a.ClockPulse("clk")
	if a.Get("q").Uint64() != 2 || b.Get("q").Uint64() != 0 {
		t.Fatal("cached program leaked state between instances")
	}
	// fallback sources cache their nil program (no recompilation storm)
	if prog, design, _ := sc.Program(simCacheFallback); prog != nil || design == nil {
		t.Fatal("fallback source must cache design with nil program")
	}
	before := sc.Stats().Misses
	sc.Program(simCacheFallback)
	if sc.Stats().Misses != before {
		t.Fatal("fallback outcome was not cached")
	}
}

func TestSimCacheFrontend(t *testing.T) {
	sc := NewSimCache(0)
	file, design, diags := sc.Frontend(simCacheBroken)
	if design != nil || file == nil || !diags.HasErrors() {
		t.Fatalf("broken source: file=%v design=%v errs=%v", file != nil, design != nil, diags.HasErrors())
	}
	// Frontend and Program share entries: one miss total for the source.
	sc.Program(simCacheBroken)
	st := sc.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want shared entry", st)
	}
}

func TestSimCacheCapacityBound(t *testing.T) {
	sc := NewSimCache(8)
	for i := 0; i < 64; i++ {
		src := fmt.Sprintf("module m(input a, output y); assign y = a ^ %d'd1; endmodule", i%30+2)
		sc.Program(src)
	}
	if sc.Len() > 16 { // shards × ceil(capacity/shards) ≤ 2x requested
		t.Fatalf("cache exceeded its bound: %d entries", sc.Len())
	}
	if sc.Stats().Evictions == 0 {
		t.Fatal("expected evictions under capacity pressure")
	}
}

// TestSimCacheCollisionGuard plants an entry whose stored source differs
// from the probing source at the same key — the FNV-collision shape — and
// checks the lookup recomputes rather than serving the foreign entry,
// then displaces the collided slot (counted as an eviction).
func TestSimCacheCollisionGuard(t *testing.T) {
	sc := NewSimCache(0)
	key := HashSource(simCacheGood)
	shard := &sc.shards[key%uint64(len(sc.shards))]

	// Plant a foreign entry (compiled from a different source) at
	// simCacheGood's slot.
	foreign := compileSimEntry(simCacheFallback)
	shard.mu.Lock()
	shard.entries[key] = foreign
	shard.order = append(shard.order, key)
	shard.mu.Unlock()

	prog, design, _ := sc.Program(simCacheGood)
	if design == nil {
		t.Fatal("collided lookup must recompute the real source")
	}
	if prog == nil {
		t.Fatal("simCacheGood compiles under the engine; got nil program")
	}
	st := sc.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("collision must count as a miss: %+v", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("collision overwrite must count as an eviction: %+v", st)
	}
	// The slot now holds the real source: the next lookup hits.
	if _, d2, _ := sc.Program(simCacheGood); d2 != design {
		t.Fatal("recomputed entry was not installed")
	}
	if st := sc.Stats(); st.Hits != 1 {
		t.Fatalf("post-collision lookup must hit: %+v", st)
	}
}

// TestSimCacheChurnConcurrent hammers a deliberately tiny cache from many
// goroutines with a working set larger than capacity, so FIFO
// displacement, re-misses of displaced keys, and racing fills of the same
// key all happen at once. Asserts the capacity bound holds, displaced
// entries recompute correctly, and planted collisions never leak a
// foreign entry to any caller.
func TestSimCacheChurnConcurrent(t *testing.T) {
	const capacity, distinct, workers, iters = 8, 40, 8, 120
	sc := NewSimCache(capacity)
	srcs := make([]string, distinct)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("module m(input [3:0] a, output [3:0] y); assign y = a + 4'd%d; endmodule", i%16)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				src := srcs[(w*7+i)%distinct]
				prog, design, diags := sc.Program(src)
				if design == nil || prog == nil {
					t.Errorf("valid source failed under churn: %v", diags)
					return
				}
				// Interleave collision plants: overwrite a random slot
				// with an entry for a different source, as a hash
				// collision would.
				if i%17 == 0 {
					key := HashSource(srcs[(i+1)%distinct])
					shard := &sc.shards[key%uint64(len(sc.shards))]
					shard.mu.Lock()
					if _, ok := shard.entries[key]; ok {
						shard.entries[key] = simEntry{src: srcs[i%distinct],
							file: nil, design: nil, diags: nil}
					}
					shard.mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	if n := sc.Len(); n > 2*capacity {
		t.Fatalf("capacity bound violated under churn: %d entries", n)
	}
	st := sc.Stats()
	if st.Evictions == 0 {
		t.Fatalf("churn over capacity must displace entries: %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("churn should mix hits and misses: %+v", st)
	}
	// Every cached entry must be self-consistent: the stored source is
	// the one its design was compiled from (planted collisions must have
	// been displaced by real recomputes or remain marked foreign, never
	// half-merged).
	for i := range sc.shards {
		s := &sc.shards[i]
		s.mu.Lock()
		for key, e := range s.entries {
			if e.design != nil && HashSource(e.src) != key {
				s.mu.Unlock()
				t.Fatalf("entry stored under wrong key: %q", e.src)
			}
		}
		s.mu.Unlock()
	}
}

func TestSimCacheConcurrent(t *testing.T) {
	sc := NewSimCache(0)
	var wg sync.WaitGroup
	progs := make([]*sim.Program, 16)
	for i := range progs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, _ := sc.Program(simCacheGood)
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for _, p := range progs {
		if p == nil || p != progs[0] {
			t.Fatal("racing lookups must converge on one cached program")
		}
	}
}
