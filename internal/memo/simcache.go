package memo

// SimCache is the content-addressed cache in front of the simulation
// oracle's compile pipeline: parse + elaborate + sim.Compile, keyed by
// FNV-64a of the source with the same collision guard the compile cache
// uses. The functional check is the innermost loop of every pass@k
// experiment — each candidate is re-frontended for scoring, each
// problem's reference is re-frontended for vector generation on every
// Check, and rtlfixerd re-serves the same hot problems — so one shared
// SimCache turns all of that into a single compile per distinct source.
//
// Cached entries are immutable by contract: sim.Program is read-only and
// instantiated per run via sim.NewFromProgram; the design and diagnostics
// are shared exactly as the compile cache shares compiler.Result. A
// source whose design the simulator compiler rejects caches a nil Program
// (callers fall back to the walker through sim.New) so the rejection is
// not recomputed either.
//
// Counters: cache hits/misses feed both the per-cache Stats and the
// process-wide Totals, beside the compile cache's.

import (
	"sync"
	"sync/atomic"

	"repro/internal/compiler"
	"repro/internal/diag"
	"repro/internal/sema"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/verilog"
)

// simEntry is one cached frontend+compile outcome.
type simEntry struct {
	src    string
	file   *verilog.SourceFile
	design *sema.Design
	diags  diag.List
	prog   *sim.Program // nil when design is nil or the engine fell back
}

type simShard struct {
	mu      sync.Mutex
	entries map[uint64]simEntry
	order   []uint64
}

// SimCache is a concurrency-safe, sharded, content-addressed cache of
// elaborated designs and their compiled simulation programs.
type SimCache struct {
	shards      []simShard
	capPerShard int
	c           counters
	// backing, when non-nil, durably records every distinct source the
	// cache compiles (replay-style persistence: programs hold pointer
	// graphs that cannot round-trip through disk, so the record is the
	// input and warm start replays it through the compiler). Set once via
	// AttachStore (persist.go) before serving.
	backing store.Backing
	// loaded counts sources recompiled from the backing at attach time.
	loaded atomic.Uint64
}

// NewSimCache builds a cache holding at least capacity entries across all
// shards; capacity <= 0 selects the default.
func NewSimCache(capacity int) *SimCache {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	shards := defaultShards
	if capacity < shards {
		shards = capacity
	}
	perShard := (capacity + shards - 1) / shards
	sc := &SimCache{shards: make([]simShard, shards), capPerShard: perShard}
	for i := range sc.shards {
		sc.shards[i].entries = make(map[uint64]simEntry)
	}
	return sc
}

// Stats snapshots this cache's counters.
func (sc *SimCache) Stats() Stats { return sc.c.snapshot() }

// Len returns the number of cached entries.
func (sc *SimCache) Len() int {
	n := 0
	for i := range sc.shards {
		s := &sc.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Frontend is compiler.Frontend through the cache: same results,
// amortized parse+sema.
func (sc *SimCache) Frontend(src string) (*verilog.SourceFile, *sema.Design, diag.List) {
	e := sc.lookup(src)
	return e.file, e.design, e.diags
}

// Program returns the compiled simulation program for src alongside the
// elaborated design and diagnostics. The program is nil when the source
// does not elaborate or uses a construct the compiled engine rejects; in
// the latter case the design is still usable with the walker.
func (sc *SimCache) Program(src string) (*sim.Program, *sema.Design, diag.List) {
	e := sc.lookup(src)
	return e.prog, e.design, e.diags
}

func (sc *SimCache) lookup(src string) simEntry {
	key := HashSource(src)
	s := &sc.shards[key%uint64(len(sc.shards))]
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if ok && e.src == src {
		sc.c.hits.Add(1)
		globalSim.hits.Add(1)
		return e
	}
	sc.c.misses.Add(1)
	globalSim.misses.Add(1)

	e = compileSimEntry(src)
	// Record the source durably (write-behind) so a warm start can
	// replay it; the store dedupes repeats of the same key.
	sc.backingPut(src)

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, dup := s.entries[key]; dup {
		if old.src == src {
			// racing workers compiled the same source; keep the first
			return old
		}
		sc.c.evictions.Add(1)
		globalSim.evictions.Add(1)
		s.entries[key] = e
		return e
	}
	for len(s.entries) >= sc.capPerShard && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if _, ok := s.entries[oldest]; ok {
			delete(s.entries, oldest)
			sc.c.evictions.Add(1)
			globalSim.evictions.Add(1)
		}
	}
	s.entries[key] = e
	s.order = append(s.order, key)
	return e
}

// compileSimEntry runs the full oracle compile pipeline for one source.
func compileSimEntry(src string) simEntry {
	e := simEntry{src: src}
	e.file, e.design, e.diags = compiler.Frontend(src)
	if e.design != nil {
		if prog, err := sim.Compile(e.design); err == nil {
			e.prog = prog
		}
	}
	return e
}

// insertWarm places a precompiled entry into the cache without touching
// the hit/miss counters or the backing — the attach-time warm-start path.
// Present entries are left alone (first write wins, as in lookup).
func (sc *SimCache) insertWarm(e simEntry) {
	key := HashSource(e.src)
	s := &sc.shards[key%uint64(len(sc.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[key]; dup {
		return
	}
	for len(s.entries) >= sc.capPerShard && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if _, ok := s.entries[oldest]; ok {
			delete(s.entries, oldest)
			sc.c.evictions.Add(1)
			globalSim.evictions.Add(1)
		}
	}
	s.entries[key] = e
	s.order = append(s.order, key)
	sc.loaded.Add(1)
}
