// Persistence adapters: the bridge between the in-memory memoization
// caches and the durable content-addressed store (internal/store).
//
// Design rules shared by all three adapters:
//
//   - In-memory-first: the hot lookup path is untouched (alloc-free,
//     shard-locked); the backing is consulted only on a miss, and written
//     only behind (store.Put is an in-memory append; the store's flusher
//     owns the disk).
//   - Content-addressed with collision guards: store keys are FNV-64a
//     over the record's identity, and every payload carries the identity
//     fields verbatim so an FNV collision (or foreign record) degrades to
//     a miss, never a wrong answer.
//   - Versioned payloads: each record starts with a one-byte schema
//     version; a stale payload is skipped, not misread.
//
// What each adapter persists:
//
//   - CompileCache: the full persona result (ok, log, diagnostics). The
//     cached compile path consumes only those fields — the AST/design
//     pointers a fresh compile also carries are never read through the
//     cache — so a restored record is behaviourally identical.
//   - SimCache: the source text only (replay-style persistence). A
//     compiled sim.Program is a pointer graph that cannot round-trip
//     through disk, so the record is the input and warm start replays it
//     through the compile pipeline — paying the cost at boot, before
//     traffic, instead of on the first request.
//   - RetrievalIndex: the full precompiled image (pattern and word
//     postings, default shingle sets), keyed by a content hash of the
//     database, so a warm boot skips the index build entirely.
package memo

import (
	"repro/internal/compiler"
	"repro/internal/diag"
	"repro/internal/rag"
	"repro/internal/store"
)

// Payload schema versions, one per record kind. Bump when the layout
// changes; old payloads are then ignored and rewritten on the next miss.
const (
	compilePayloadV   = 2 // v2: diagnostics carry Rule + Related positions
	simPayloadV       = 1
	retrievalPayloadV = 1
)

// ---------- CompileCache ----------

// compileStoreKey content-addresses one compilation in the store.
func compileStoreKey(persona, filename, src string) uint64 {
	return store.HashStrings(persona, filename, src)
}

func encodeCompileRecord(persona, filename, src string, res compiler.Result) []byte {
	var e store.Encoder
	e.U8(compilePayloadV)
	e.String(persona)
	e.String(filename)
	e.String(src)
	e.Bool(res.Ok)
	e.String(res.Log)
	// nil-ness is preserved so a restored Result is DeepEqual to the
	// fresh one (tests compare them; consumers cannot tell apart).
	e.Bool(res.Diags == nil)
	e.Varint(int64(len(res.Diags)))
	for _, d := range res.Diags {
		e.Varint(int64(d.Severity))
		e.Varint(int64(d.Category))
		e.Varint(int64(d.Pos.Line))
		e.Varint(int64(d.Pos.Col))
		e.String(d.Symbol)
		e.String(d.Message)
		e.String(d.Suggestion)
		e.String(d.Rule)
		e.Bool(d.Related == nil)
		e.Varint(int64(len(d.Related)))
		for _, p := range d.Related {
			e.Varint(int64(p.Line))
			e.Varint(int64(p.Col))
		}
	}
	return e.Bytes()
}

// decodeCompileRecord parses a compile payload. The returned Result
// carries no AST/design pointers (they cannot round-trip through disk);
// no consumer of the cached compile path reads them.
func decodeCompileRecord(data []byte) (persona, filename, src string, res compiler.Result, ok bool) {
	d := store.NewDecoder(data)
	if d.U8() != compilePayloadV {
		return "", "", "", compiler.Result{}, false
	}
	persona = d.String()
	filename = d.String()
	src = d.String()
	res.Ok = d.Bool()
	res.Log = d.String()
	nilDiags := d.Bool()
	n := d.Varint()
	if d.Err() != nil || n < 0 || n > 1<<20 {
		return "", "", "", compiler.Result{}, false
	}
	if !nilDiags {
		res.Diags = make(diag.List, 0, n)
	}
	for i := int64(0); i < n; i++ {
		var dg diag.Diagnostic
		dg.Severity = diag.Severity(d.Varint())
		dg.Category = diag.Category(d.Varint())
		dg.Pos.Line = int(d.Varint())
		dg.Pos.Col = int(d.Varint())
		dg.Symbol = d.String()
		dg.Message = d.String()
		dg.Suggestion = d.String()
		dg.Rule = d.String()
		nilRelated := d.Bool()
		nr := d.Varint()
		if d.Err() != nil || nr < 0 || nr > 1<<20 {
			return "", "", "", compiler.Result{}, false
		}
		if !nilRelated {
			dg.Related = make([]diag.Pos, 0, nr)
		}
		for j := int64(0); j < nr; j++ {
			var p diag.Pos
			p.Line = int(d.Varint())
			p.Col = int(d.Varint())
			dg.Related = append(dg.Related, p)
		}
		res.Diags = append(res.Diags, dg)
	}
	if !d.Ok() {
		return "", "", "", compiler.Result{}, false
	}
	return persona, filename, src, res, true
}

// AttachStore hooks a durable backing under the cache and warm-starts
// it: persisted compile records load into memory (respecting the
// capacity bound), runtime misses consult the backing before
// recomputing, and fresh results are written behind. When personas are
// given, only their records warm-load — a cache fronting one persona
// must not fill (and FIFO-displace) itself with entries its lookups can
// never key; foreign-persona records stay reachable through the lazy
// miss path of whichever cache owns them. Attach before serving traffic
// — the backing field is not synchronized against concurrent lookups.
// Returns the number of records restored.
func (cc *CompileCache) AttachStore(b store.Backing, personas ...string) int {
	cc.backing = b
	want := map[string]bool{}
	for _, p := range personas {
		want[p] = true
	}
	n := 0
	b.Load(store.KindCompile, func(key uint64, data []byte) {
		persona, filename, src, res, ok := decodeCompileRecord(data)
		if !ok || (len(want) > 0 && !want[persona]) {
			return
		}
		k := compileKey{persona: persona, filename: filename, srcHash: HashSource(src)}
		cc.put(k, src, res)
		cc.loaded.Add(1)
		n++
	})
	return n
}

// Loaded reports how many entries this cache restored from its backing.
func (cc *CompileCache) Loaded() uint64 { return cc.loaded.Load() }

// backingGet consults the durable store for a memory miss, verifying the
// record's identity before trusting it, and promotes a hit into memory.
func (cc *CompileCache) backingGet(key compileKey, src string) (compiler.Result, bool) {
	data, ok := cc.backing.Get(store.KindCompile, compileStoreKey(key.persona, key.filename, src))
	if !ok {
		return compiler.Result{}, false
	}
	persona, filename, gotSrc, res, ok := decodeCompileRecord(data)
	if !ok || persona != key.persona || filename != key.filename || gotSrc != src {
		return compiler.Result{}, false // stale schema or FNV collision
	}
	cc.put(key, src, res)
	cc.loaded.Add(1)
	return res, true
}

// backingPut writes one fresh result behind. No-op without a backing.
func (cc *CompileCache) backingPut(key compileKey, src string, res compiler.Result) {
	if cc.backing == nil {
		return
	}
	cc.backing.Put(store.KindCompile,
		compileStoreKey(key.persona, key.filename, src),
		encodeCompileRecord(key.persona, key.filename, src, res))
}

// ---------- SimCache ----------

func encodeSimRecord(src string) []byte {
	var e store.Encoder
	e.U8(simPayloadV)
	e.String(src)
	return e.Bytes()
}

func decodeSimRecord(data []byte) (string, bool) {
	d := store.NewDecoder(data)
	if d.U8() != simPayloadV {
		return "", false
	}
	src := d.String()
	if !d.Ok() {
		return "", false
	}
	return src, true
}

// AttachStore hooks a durable backing under the sim cache. Every distinct
// source the cache compiles from now on is recorded (write-behind). With
// warm true, previously recorded sources are replayed through the compile
// pipeline immediately — the boot-time cost that buys hit-only serving
// afterwards; with warm false, the attach only records. Attach before
// serving traffic. Returns the number of sources replayed.
func (sc *SimCache) AttachStore(b store.Backing, warm bool) int {
	sc.backing = b
	if !warm {
		return 0
	}
	n := 0
	b.Load(store.KindSimSource, func(key uint64, data []byte) {
		src, ok := decodeSimRecord(data)
		if !ok || HashSource(src) != key {
			return // stale schema or collision: recompute on demand
		}
		sc.insertWarm(compileSimEntry(src))
		n++
	})
	return n
}

// Loaded reports how many sources this cache replayed from its backing.
func (sc *SimCache) Loaded() uint64 { return sc.loaded.Load() }

func (sc *SimCache) backingPut(src string) {
	if sc.backing == nil {
		return
	}
	sc.backing.Put(store.KindSimSource, HashSource(src), encodeSimRecord(src))
}

// ---------- RetrievalIndex ----------

// entriesIdentity serializes a rag.Database's full entry list — both
// the content address (hashed) and the collision guard (stored verbatim
// in the record and compared on restore, like the compile adapter's
// source field).
func entriesIdentity(entries []rag.Entry) []byte {
	var e store.Encoder
	for _, en := range entries {
		e.String(en.ID)
		e.Varint(int64(en.Category))
		e.String(en.Compiler)
		e.Varint(int64(len(en.Patterns)))
		for _, p := range en.Patterns {
			e.String(p)
		}
		e.String(en.LogExample)
		e.String(en.Guidance)
		e.String(en.Demonstration)
	}
	return e.Bytes()
}

func encodeRetrievalRecord(identity []byte, idx *RetrievalIndex) []byte {
	var e store.Encoder
	e.U8(retrievalPayloadV)
	e.String(string(identity))
	e.Varint(int64(len(idx.entries)))

	e.Varint(int64(len(idx.patterns)))
	for _, pp := range idx.patterns {
		e.String(pp.pat)
		e.Varint(int64(len(pp.entries)))
		for _, i := range pp.entries {
			e.Varint(int64(i))
		}
	}
	e.Varint(int64(len(idx.words)))
	for _, wp := range idx.words {
		e.String(wp.word)
		e.Varint(int64(len(wp.posts)))
		for _, p := range wp.posts {
			e.Varint(int64(p.entry))
			e.Varint(int64(p.count))
		}
	}
	// Only the eagerly built default shingle size is persisted; other
	// sizes rebuild on demand exactly as in the unpersisted index.
	defaultK, _ := rag.Fuzzy{}.Params()
	sets := idx.shingles[defaultK]
	e.Varint(int64(defaultK))
	e.Varint(int64(len(sets)))
	for _, set := range sets {
		e.Varint(int64(len(set)))
		for sh := range set {
			e.String(sh)
		}
	}
	return e.Bytes()
}

// decodeRetrievalRecord rebuilds an index image over db's live entries.
// Any mismatch (schema, full entry-list identity, cardinality) rejects
// the record — an FNV key collision therefore degrades to a rebuild.
func decodeRetrievalRecord(data []byte, identity []byte, db *rag.Database, entries []rag.Entry) (*RetrievalIndex, bool) {
	d := store.NewDecoder(data)
	if d.U8() != retrievalPayloadV || d.String() != string(identity) || d.Varint() != int64(len(entries)) {
		return nil, false
	}
	idx := &RetrievalIndex{
		db:       db,
		entries:  entries,
		shingles: map[int][]map[string]struct{}{},
	}
	bound := int64(len(entries))
	np := d.Varint()
	if d.Err() != nil || np < 0 || np > 1<<20 {
		return nil, false
	}
	for i := int64(0); i < np; i++ {
		pp := patternPosting{pat: d.String()}
		n := d.Varint()
		if d.Err() != nil || n < 0 || n > bound {
			return nil, false
		}
		for j := int64(0); j < n; j++ {
			idx2 := d.Varint()
			if idx2 < 0 || idx2 >= bound {
				return nil, false
			}
			pp.entries = append(pp.entries, int(idx2))
		}
		idx.patterns = append(idx.patterns, pp)
	}
	nw := d.Varint()
	if d.Err() != nil || nw < 0 || nw > 1<<20 {
		return nil, false
	}
	for i := int64(0); i < nw; i++ {
		wp := wordPosting{word: d.String()}
		n := d.Varint()
		if d.Err() != nil || n < 0 || n > bound {
			return nil, false
		}
		for j := int64(0); j < n; j++ {
			en := d.Varint()
			cnt := d.Varint()
			if en < 0 || en >= bound || cnt < 0 {
				return nil, false
			}
			wp.posts = append(wp.posts, wordPost{entry: int(en), count: int(cnt)})
		}
		idx.words = append(idx.words, wp)
	}
	k := d.Varint()
	ns := d.Varint()
	if d.Err() != nil || k <= 0 || ns != bound {
		return nil, false
	}
	sets := make([]map[string]struct{}, ns)
	for i := int64(0); i < ns; i++ {
		n := d.Varint()
		if d.Err() != nil || n < 0 || n > 1<<20 {
			return nil, false
		}
		set := make(map[string]struct{}, n)
		for j := int64(0); j < n; j++ {
			set[d.String()] = struct{}{}
		}
		sets[i] = set
	}
	if !d.Ok() {
		return nil, false
	}
	idx.shingles[int(k)] = sets
	return idx, true
}

// NewPersistedRetrievalIndex returns a retrieval index for db, restored
// from the backing when a record content-addressed to db's exact entry
// list exists, otherwise built fresh and written behind. The restored
// index is structurally identical to a fresh build (postings and shingle
// sets are deterministic functions of the entries), so the
// indexed-equals-naive contract is unaffected.
func NewPersistedRetrievalIndex(db *rag.Database, b store.Backing) *RetrievalIndex {
	if b == nil {
		return NewRetrievalIndex(db)
	}
	entries := db.Entries()
	identity := entriesIdentity(entries)
	dbHash := store.HashBytes(identity)
	if data, ok := b.Get(store.KindRetrieval, dbHash); ok {
		if idx, ok := decodeRetrievalRecord(data, identity, db, entries); ok {
			idx.restored = true
			return idx
		}
	}
	idx := NewRetrievalIndex(db)
	b.Put(store.KindRetrieval, dbHash, encodeRetrievalRecord(identity, idx))
	return idx
}
