package memo

import (
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/rag"
)

// benchLog is a representative multi-error Quartus log for retrieval
// benchmarks, produced from the paper's Fig. 5 source.
func benchLog() string {
	return (compiler.Quartus{}).Compile("main.v", brokenSrc).Log
}

// measure times n iterations of f, best of three runs — the minimum is
// robust against scheduler stalls and GC pauses on loaded CI machines.
func measure(n int, f func()) time.Duration {
	best := time.Duration(0)
	for round := 0; round < 3; round++ {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		d := time.Since(t0)
		if round == 0 || d < best {
			best = d
		}
	}
	return best
}

// BenchmarkCompileCache times repeated compilation of one source through
// the sharded cache and reports the speedup over uncached recompilation —
// the workload shape of Table 1's repeats, where every repeat used to
// recompile the identical curated entry from scratch.
func BenchmarkCompileCache(b *testing.B) {
	persona := compiler.Quartus{}
	cc := NewCompileCache(0)
	cached := cc.Cached(persona)
	cached.Compile("main.v", brokenSrc) // warm: the one real compile
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := cached.Compile("main.v", brokenSrc); res.Ok {
			b.Fatal("broken source compiled")
		}
	}
	b.StopTimer()

	// Measure both paths directly so the benchmark reports the ratio the
	// acceptance gate asks for (>= 2x; in practice orders of magnitude).
	uncached := measure(200, func() { persona.Compile("main.v", brokenSrc) })
	hot := measure(200, func() { cached.Compile("main.v", brokenSrc) })
	if hot > 0 {
		b.ReportMetric(float64(uncached)/float64(hot), "speedup")
	}
}

// TestCompileCacheSpeedup is the acceptance gate in test form: a cache
// hit must be at least 2x faster than recompiling the same source. The
// observed ratio is ~50x, and measure's best-of-three minimum absorbs
// scheduler stalls, so 2x leaves very wide headroom; -short skips the
// timing assertion entirely for constrained environments.
func TestCompileCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped under -short")
	}
	persona := compiler.Quartus{}
	cached := Cached(persona)
	cached.Compile("main.v", brokenSrc)
	uncached := measure(500, func() { persona.Compile("main.v", brokenSrc) })
	hot := measure(500, func() { cached.Compile("main.v", brokenSrc) })
	if hot*2 > uncached {
		t.Fatalf("cache hit not >= 2x faster: uncached=%v cached=%v", uncached, hot)
	}
}

// BenchmarkRetrievalIndex times the three retrieval strategies through
// the precompiled index; BenchmarkRetrievalNaive is the baseline scan.
// The fuzzy strategy gains the most: the naive path re-shingles every
// LogExample in the database per call.
func BenchmarkRetrievalIndex(b *testing.B) {
	db := rag.ForCompiler("Quartus")
	idx := NewRetrievalIndex(db)
	log := benchLog()
	for _, strat := range []rag.Retriever{rag.ExactTag{}, rag.Keyword{}, rag.Fuzzy{}} {
		naive := strat
		indexed := idx.Wrap(strat)
		b.Run(naive.Name()+"/naive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				naive.Retrieve(db, log, 4)
			}
		})
		b.Run(naive.Name()+"/indexed", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				indexed.Retrieve(db, log, 4)
			}
			b.StopTimer()
			naiveDur := measure(300, func() { naive.Retrieve(db, log, 4) })
			indexedDur := measure(300, func() { indexed.Retrieve(db, log, 4) })
			if indexedDur > 0 {
				b.ReportMetric(float64(naiveDur)/float64(indexedDur), "speedup")
			}
		})
	}
}
