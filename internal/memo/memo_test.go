package memo

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/rag"
)

const cleanSrc = `module m(input a, output y);
	assign y = ~a;
endmodule
`

const brokenSrc = `module top_module (
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1) begin
			out[i] <= in[99 - i];
		end
	end
endmodule
`

// sampleLogs compiles a spread of sources through both log-producing
// personas so retrieval equivalence is checked against realistic logs.
func sampleLogs(t testing.TB) []string {
	t.Helper()
	srcs := []string{
		brokenSrc,
		"module m(input a, output y);\n\tassign y = b;\nendmodule\n",
		"module m(input a, output reg y);\n\talways @(posedge clk)\n\t\ty <= a\nendmodule\n",
		"module m(input [3:0] a, output y);\n\tassign y = a[7];\nendmodule\n",
		"module m(input a, output y)\n\tassign y = a;\nendmodule\n",
		cleanSrc,
	}
	var logs []string
	for _, persona := range compiler.All() {
		for _, src := range srcs {
			logs = append(logs, persona.Compile("main.v", src).Log)
		}
	}
	logs = append(logs, "", "unrelated text with no tags at all")
	return logs
}

// TestCachedCompilerTransparent is the compile cache's correctness gate:
// the wrapper must return results deep-equal to the bare persona's, and
// repeated compiles must hit.
func TestCachedCompilerTransparent(t *testing.T) {
	for _, persona := range compiler.All() {
		cc := NewCompileCache(0)
		cached := cc.Cached(persona)
		if cached.Name() != persona.Name() || cached.InfoScore() != persona.InfoScore() {
			t.Fatalf("%s: wrapper changes identity", persona.Name())
		}
		for _, src := range []string{cleanSrc, brokenSrc} {
			want := persona.Compile("main.v", src)
			got1 := cached.Compile("main.v", src)
			got2 := cached.Compile("main.v", src)
			if !reflect.DeepEqual(want.Log, got1.Log) || want.Ok != got1.Ok ||
				!reflect.DeepEqual(want.Diags, got1.Diags) {
				t.Fatalf("%s: cached result differs from direct compile", persona.Name())
			}
			if !reflect.DeepEqual(got1, got2) {
				t.Fatalf("%s: second lookup differs from first", persona.Name())
			}
		}
		s := cc.Stats()
		if s.Hits != 2 || s.Misses != 2 {
			t.Fatalf("%s: stats = %+v, want 2 hits / 2 misses", persona.Name(), s)
		}
	}
}

// TestCompileCacheKeysOnFilenameAndPersona pins the content address:
// same source under a different filename or persona is a distinct entry.
func TestCompileCacheKeysOnFilenameAndPersona(t *testing.T) {
	cc := NewCompileCache(0)
	q := cc.Cached(compiler.Quartus{})
	q.Compile("a.v", brokenSrc)
	q.Compile("b.v", brokenSrc)
	cc.Cached(compiler.IVerilog{}).Compile("a.v", brokenSrc)
	if got := cc.Len(); got != 3 {
		t.Fatalf("cache holds %d entries, want 3", got)
	}
	if s := cc.Stats(); s.Hits != 0 || s.Misses != 3 {
		t.Fatalf("stats = %+v, want 0 hits / 3 misses", s)
	}
}

// TestCompileCacheEviction fills a tiny cache past capacity and checks
// the FIFO displacement keeps it bounded while counting evictions.
func TestCompileCacheEviction(t *testing.T) {
	// Capacity below the shard count shrinks the shard array, so the
	// bound is exact: one single-entry shard here.
	cc := NewCompileCache(1)
	cached := cc.Cached(compiler.Simple{})
	const n = 200
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("module m%d(); endmodule\n", i)
		cached.Compile("main.v", src)
		cached.Compile("main.v", src) // immediate re-use must still hit
	}
	if got := cc.Len(); got > 1 {
		t.Fatalf("cache grew to %d entries, cap is 1", got)
	}
	s := cc.Stats()
	if s.Evictions == 0 {
		t.Fatal("no evictions recorded despite capacity pressure")
	}
	if s.Hits != n {
		t.Fatalf("immediate re-use hits = %d, want %d", s.Hits, n)
	}
}

// TestCompileCacheCapacityBounds pins NewCompileCache's sizing contract:
// the effective bound is at least the requested capacity and never more
// than double it.
func TestCompileCacheCapacityBounds(t *testing.T) {
	for _, capacity := range []int{1, 10, 63, 64, 100, 1000} {
		cc := NewCompileCache(capacity)
		effective := len(cc.shards) * cc.capPerShard
		if effective < capacity || effective > 2*capacity {
			t.Errorf("capacity %d: effective bound %d outside [cap, 2*cap]", capacity, effective)
		}
		// Fill well past capacity and confirm Len respects the bound.
		cached := cc.Cached(compiler.Simple{})
		for i := 0; i < 3*capacity+10; i++ {
			cached.Compile("main.v", fmt.Sprintf("module c%d(); endmodule\n", i))
		}
		if got := cc.Len(); got > effective {
			t.Errorf("capacity %d: cache holds %d entries, bound %d", capacity, got, effective)
		}
	}
}

// TestCompileCacheCollisionGuard white-boxes the FNV collision path: a
// stored entry whose source does not match must read as a miss, and the
// overwrite must not serve the stale result afterwards.
func TestCompileCacheCollisionGuard(t *testing.T) {
	cc := NewCompileCache(0)
	key := compileKey{persona: "Quartus", filename: "main.v", srcHash: 42}
	resA := compiler.Result{Ok: true, Log: "A"}
	cc.put(key, "source-a", resA)
	if _, ok := cc.get(key, "source-b"); ok {
		t.Fatal("colliding key with different source served a wrong result")
	}
	resB := compiler.Result{Ok: false, Log: "B"}
	cc.put(key, "source-b", resB)
	got, ok := cc.get(key, "source-b")
	if !ok || got.Log != "B" {
		t.Fatalf("overwritten entry not served: ok=%v log=%q", ok, got.Log)
	}
	if s := cc.Stats(); s.Evictions != 1 {
		t.Fatalf("collision overwrite should count one eviction, got %+v", s)
	}
}

// TestCompileCacheConcurrent hammers one cache from many goroutines (run
// under -race in CI) and checks every returned result is correct.
func TestCompileCacheConcurrent(t *testing.T) {
	cc := NewCompileCache(64)
	cached := cc.Cached(compiler.Quartus{})
	want := compiler.Quartus{}.Compile("main.v", brokenSrc)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := fmt.Sprintf("module w%d(); endmodule\n", (g*50+i)%40)
				if res := cached.Compile("main.v", src); !res.Ok {
					t.Errorf("clean module rejected: %s", res.Log)
					return
				}
				if res := cached.Compile("main.v", brokenSrc); res.Ok || res.Log != want.Log {
					t.Error("concurrent cached result diverged")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestIndexedRetrievalEquivalence is the retrieval index's correctness
// gate: for both curated databases, every strategy, and a spread of real
// compiler logs, the indexed path must return exactly the naive scan's
// entries in the same order.
func TestIndexedRetrievalEquivalence(t *testing.T) {
	logs := sampleLogs(t)
	for _, dbName := range []string{"Quartus", "iverilog"} {
		db := rag.ForCompiler(dbName)
		idx := NewRetrievalIndex(db)
		strategies := []rag.Retriever{
			rag.ExactTag{},
			rag.Keyword{},
			rag.Fuzzy{},
			rag.Fuzzy{ShingleK: 5, MinSimilarity: 0.02},
		}
		for _, naive := range strategies {
			indexed := idx.Wrap(naive)
			if indexed.Name() != naive.Name() {
				t.Fatalf("wrapped name %q != %q", indexed.Name(), naive.Name())
			}
			for _, log := range logs {
				for _, k := range []int{1, 2, 4, 100} {
					want := naive.Retrieve(db, log, k)
					got := indexed.Retrieve(db, log, k)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("%s/%s k=%d diverged on log %q:\nnaive   %v\nindexed %v",
							dbName, naive.Name(), k, log, ids(want), ids(got))
					}
				}
			}
		}
	}
}

func ids(entries []rag.Entry) []string {
	var out []string
	for _, e := range entries {
		out = append(out, e.ID)
	}
	return out
}

// TestIndexWrapFallsBackForUnknownStrategies: custom retrievers (like the
// guidance-size ablation's truncating wrapper) cannot be served by the
// index and must pass through unwrapped.
func TestIndexWrapFallsBackForUnknownStrategies(t *testing.T) {
	db := rag.ForCompiler("Quartus")
	idx := NewRetrievalIndex(db)
	custom := customRetriever{}
	if got := idx.Wrap(custom); got != rag.Retriever(custom) {
		t.Fatal("unknown strategy should pass through unwrapped")
	}
	if _, ok := idx.Wrap(nil).(*indexedRetriever); !ok {
		t.Fatal("nil should wrap the default exact-tag strategy")
	}
}

// TestIndexForeignDatabaseBypass: a query against a database other than
// the indexed one must fall back to the naive scan over that database.
func TestIndexForeignDatabaseBypass(t *testing.T) {
	db := rag.ForCompiler("Quartus")
	idx := NewRetrievalIndex(db)
	wrapped := idx.Wrap(rag.ExactTag{})
	truncated := rag.NewDatabase(db.Entries()[:5])
	log := (compiler.Quartus{}).Compile("main.v", brokenSrc).Log
	want := rag.ExactTag{}.Retrieve(truncated, log, 4)
	got := wrapped.Retrieve(truncated, log, 4)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("foreign-db query diverged: %v vs %v", ids(want), ids(got))
	}
	if s := idx.Stats(); s.Lookups != 0 {
		t.Fatalf("foreign-db query must not count as an index lookup: %+v", s)
	}
}

// TestIndexStaleAfterDatabaseGrowth: the index is a construction-time
// snapshot; once the database grows via Add, queries must fall back to
// the naive scan so new entries stay retrievable.
func TestIndexStaleAfterDatabaseGrowth(t *testing.T) {
	db := rag.ForCompiler("Quartus")
	idx := NewRetrievalIndex(db)
	wrapped := idx.Wrap(rag.ExactTag{})
	db.Add(rag.Entry{
		ID:       "grown-1",
		Patterns: []string{"UNIQUE-GROWN-TAG"},
		Guidance: "added after the index was built",
	})
	log := "some log carrying UNIQUE-GROWN-TAG in it"
	want := rag.ExactTag{}.Retrieve(db, log, 4)
	got := wrapped.Retrieve(db, log, 4)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-growth query diverged: naive %v, indexed %v", ids(want), ids(got))
	}
	found := false
	for _, e := range got {
		if e.ID == "grown-1" {
			found = true
		}
	}
	if !found {
		t.Fatal("entry added after index construction is not retrievable")
	}
}

// TestIndexableClassifiesStrategies pins the pre-build check core uses
// to avoid constructing an index it could never consult.
func TestIndexableClassifiesStrategies(t *testing.T) {
	for _, r := range []rag.Retriever{nil, rag.ExactTag{}, rag.Keyword{}, rag.Fuzzy{}} {
		if !Indexable(r) {
			t.Errorf("%T should be indexable", r)
		}
	}
	if Indexable(customRetriever{}) {
		t.Error("custom strategy must not be indexable")
	}
}

type customRetriever struct{}

func (customRetriever) Name() string { return "custom" }
func (customRetriever) Retrieve(db *rag.Database, log string, k int) []rag.Entry {
	return nil
}

// TestStatsArithmetic pins Add/Sub.
func TestStatsArithmetic(t *testing.T) {
	a := Stats{Hits: 5, Misses: 3, Evictions: 1, Lookups: 7}
	b := Stats{Hits: 2, Misses: 1, Evictions: 1, Lookups: 3}
	if got := a.Add(b); got != (Stats{Hits: 7, Misses: 4, Evictions: 2, Lookups: 10}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Stats{Hits: 3, Misses: 2, Evictions: 0, Lookups: 4}) {
		t.Fatalf("Sub = %+v", got)
	}
}
