package agent

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/fault"
	"repro/internal/llm"
)

// TestLLMTransientRetryRecovers: two transient backend failures are
// absorbed by the retry policy; the run completes normally with the
// retries on the transcript and no abort.
func TestLLMTransientRetryRecovers(t *testing.T) {
	r := fault.MustParse("llm.transient:1", 1)
	if err := r.SetLimit(fault.LLMTransient, 2); err != nil {
		t.Fatal(err)
	}
	fault.Install(r)
	defer fault.Uninstall()

	tr := RunReAct(quartusCfg(3, true), brokenClk)
	if tr.Aborted != "" {
		t.Fatalf("run aborted despite retry headroom: %s", tr.Aborted)
	}
	if tr.LLMRetries != 2 {
		t.Fatalf("LLMRetries = %d, want 2", tr.LLMRetries)
	}
	if tr.FinalCode == "" {
		t.Fatal("no final code")
	}
}

// TestLLMPersistentAborts: a backend that fails every attempt aborts
// the run with a typed, injected error on the transcript; the last good
// candidate is still returned.
func TestLLMPersistentAborts(t *testing.T) {
	fault.Install(fault.MustParse("llm.persistent:1", 1))
	defer fault.Uninstall()

	for _, run := range []func(Config, string) *Transcript{RunOneShot, RunReAct} {
		tr := run(quartusCfg(3, false), brokenClk)
		if tr.Aborted == "" || tr.Success {
			t.Fatalf("aborted=%q success=%v, want abort", tr.Aborted, tr.Success)
		}
		if !strings.Contains(tr.Aborted, "llm backend unavailable") {
			t.Fatalf("abort reason = %q", tr.Aborted)
		}
		if tr.FinalCode == "" {
			t.Fatal("aborted run must still carry the last candidate")
		}
		last := tr.Steps[len(tr.Steps)-1]
		if last.Tool != "Finish" || !strings.HasPrefix(last.Content, "aborted:") {
			t.Fatalf("last step = %+v", last)
		}
	}
}

// TestRetryBudgetBoundsAbortLatency: with transient faults firing every
// time, the per-run budget (8) stops retries long before
// iterations×MaxAttempts could.
func TestRetryBudgetBoundsAbortLatency(t *testing.T) {
	fault.Install(fault.MustParse("llm.transient:1", 2))
	defer fault.Uninstall()

	tr := RunReAct(quartusCfg(3, false), brokenClk)
	if tr.Aborted == "" {
		t.Fatal("run should abort once the budget is gone")
	}
	if tr.LLMRetries > 8 {
		t.Fatalf("LLMRetries = %d, budget is 8", tr.LLMRetries)
	}
}

// TestLLMGarbageIterates: garbled backend output does not wedge or
// abort the loop — the next compile fails and iteration continues.
func TestLLMGarbageIterates(t *testing.T) {
	r := fault.MustParse("llm.garbage:1", 1)
	if err := r.SetLimit(fault.LLMGarbage, 1); err != nil {
		t.Fatal(err)
	}
	fault.Install(r)
	defer fault.Uninstall()

	tr := RunReAct(quartusCfg(3, true), brokenClk)
	if tr.Aborted != "" {
		t.Fatalf("garbage output aborted the run: %s", tr.Aborted)
	}
	found := false
	for _, s := range tr.Steps {
		if strings.Contains(s.Content, "returned garbled output") {
			found = true
		}
	}
	if !found {
		t.Fatal("garbled revision not visible in the transcript")
	}
	if strings.Contains(tr.FinalCode, "<<garbled") && tr.Success {
		t.Fatal("success claimed on garbled final code")
	}
}

// TestAnalyzerPanicIsolated: a panicking analyzer is dropped, never
// fatal — the run completes with zero lint findings.
func TestAnalyzerPanicIsolated(t *testing.T) {
	fault.Install(fault.MustParse("analyze.panic:1", 1))
	defer fault.Uninstall()

	tr := RunReAct(quartusCfg(3, true), brokenClk)
	if tr.Aborted != "" {
		t.Fatalf("analyzer panic aborted the run: %s", tr.Aborted)
	}
	if tr.LintFindings != 0 {
		t.Fatalf("LintFindings = %d with the analyzer panicking", tr.LintFindings)
	}
	if tr.FinalCode == "" {
		t.Fatal("no final code")
	}
}

// TestEmptyProfileTranscriptsIdentical: installing an EMPTY fault
// registry must not perturb transcripts — the acceptance bar for
// byte-identical benchmark output under "-fault-profile ''".
func TestEmptyProfileTranscriptsIdentical(t *testing.T) {
	base := RunReAct(quartusCfg(7, true), brokenClk)
	fault.Install(fault.MustParse("", 7))
	injected := RunReAct(quartusCfg(7, true), brokenClk)
	fault.Uninstall()
	if base.Render() != injected.Render() {
		t.Fatal("empty fault profile changed the transcript")
	}
}

// TestSharedModelParallelAgentRuns drives parallel agent runs through
// ONE shared llm.Model under -race: the model's mutex must make this
// memory-safe even though per-run models remain the determinism-
// preserving default.
func TestSharedModelParallelAgentRuns(t *testing.T) {
	shared := llm.NewModel(llm.GPT35(), 99)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := Config{
				Compiler:   compiler.Quartus{},
				Model:      shared,
				Filename:   "main.v",
				SampleSeed: int64(g),
			}
			tr := RunReAct(cfg, brokenClk)
			if tr.FinalCode == "" {
				t.Error("empty final code")
			}
		}(g)
	}
	wg.Wait()
}
