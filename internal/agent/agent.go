// Package agent implements the autonomous debugging loop of RTLFixer: the
// ReAct prompting scheme (interleaved Thought / Action / Observation
// steps, §3.2) and the One-shot baseline it is compared against (single
// feedback turn, no iteration).
//
// The agent's tools are the ones Fig. 2b lists:
//
//	(1) Compiler[code] — compile, observe the log
//	(2) RAG[logs]      — retrieve expert guidance for the log
//	(3) Finish[answer] — return the final code
//
// plus the implicit "revise" act in which the LLM rewrites the code.
package agent

import (
	"fmt"
	"strings"

	"repro/internal/analyze"
	"repro/internal/compiler"
	"repro/internal/fixer"
	"repro/internal/llm"
	"repro/internal/rag"
	"repro/internal/trace"
)

// DefaultMaxIterations is the paper's ReAct budget: "we restrict the LLM
// to a maximum of 10 iterations of Thought-Action-Observation".
const DefaultMaxIterations = 10

// StepKind labels a transcript step.
type StepKind string

// Step kinds.
const (
	StepThought     StepKind = "Thought"
	StepAction      StepKind = "Action"
	StepObservation StepKind = "Observation"
)

// Step is one transcript entry.
type Step struct {
	Kind StepKind
	// Tool names the action's tool (Compiler, RAG, Revise, Finish) when
	// Kind is StepAction.
	Tool    string
	Content string
}

// Transcript records one debugging session.
type Transcript struct {
	Steps []Step
	// Iterations counts code revisions attempted.
	Iterations int
	// Success is true when the final code compiles.
	Success bool
	// FinalCode is the last code version (fixed or not).
	FinalCode string
	// FixerRules lists rule names the deterministic pre-fixer applied.
	FixerRules []string
	// LintFindings counts semantic-lint findings surfaced to the model
	// across all iterations (0 when the analyzer is disabled).
	LintFindings int
}

func (t *Transcript) add(kind StepKind, tool, content string) {
	t.Steps = append(t.Steps, Step{Kind: kind, Tool: tool, Content: content})
}

// Render formats the transcript in the paper's Fig. 2c style.
func (t *Transcript) Render() string {
	var b strings.Builder
	thoughtN, actionN, obsN := 0, 0, 0
	for _, s := range t.Steps {
		switch s.Kind {
		case StepThought:
			thoughtN++
			fmt.Fprintf(&b, "Thought %d:\n%s\n\n", thoughtN, s.Content)
		case StepAction:
			actionN++
			fmt.Fprintf(&b, "Action %d: %s\n%s\n\n", actionN, s.Tool, s.Content)
		case StepObservation:
			obsN++
			fmt.Fprintf(&b, "Observation %d:\n%s\n\n", obsN, s.Content)
		}
	}
	fmt.Fprintf(&b, "Result: success=%v after %d iteration(s)\n", t.Success, t.Iterations)
	return b.String()
}

// Config wires the agent's collaborators.
type Config struct {
	// Compiler is the feedback persona.
	Compiler compiler.Compiler
	// Model is the simulated LLM.
	Model *llm.Model
	// DB enables RAG when non-nil.
	DB *rag.Database
	// Retriever selects guidance; nil defaults to the paper's exact-tag
	// retriever.
	Retriever rag.Retriever
	// MaxIterations bounds ReAct; 0 means DefaultMaxIterations.
	MaxIterations int
	// Filename appears in compiler logs.
	Filename string
	// SampleSeed identifies the problem instance for the model's
	// deterministic capability rolls.
	SampleSeed int64
	// DisableAnalyzer turns off the semantic lint engine whose findings
	// are appended to every compile observation the model sees. The zero
	// value keeps it on.
	DisableAnalyzer bool
	// Span, when non-nil, is the parent trace span under which the loop
	// records its stage children (iteration, compile, rag, llm). Nil
	// disables tracing: the no-op span chain keeps the loop
	// allocation-free, and transcripts are identical either way.
	Span *trace.Span
}

func (c Config) retriever() rag.Retriever {
	if c.Retriever != nil {
		return c.Retriever
	}
	return rag.ExactTag{}
}

func (c Config) maxIters() int {
	if c.MaxIterations > 0 {
		return c.MaxIterations
	}
	return DefaultMaxIterations
}

func (c Config) filename() string {
	if c.Filename != "" {
		return c.Filename
	}
	return "main.v"
}

// hitCompiler is the optional probe the memo layer's cached compiler
// implements. The tracer uses it to attribute cache hits on compile
// spans without widening the compiler.Compiler interface; a hit counts
// in the cache statistics exactly as a Compile hit would, and a miss
// has no side effects, so memo transparency is undisturbed.
type hitCompiler interface {
	CompileHit(filename, src string) (compiler.Result, bool)
}

// compileStep compiles cur under a "compile" child span of parent,
// annotating the outcome and — when the compiler is the memo layer's
// cached wrapper — whether the result was served from cache. With a nil
// parent this is exactly cfg.Compiler.Compile: no probe, no spans, no
// allocations.
func compileStep(cfg Config, parent *trace.Span, cur string) compiler.Result {
	sp := parent.Child("compile")
	if sp == nil {
		return cfg.Compiler.Compile(cfg.filename(), cur)
	}
	var res compiler.Result
	hit := false
	if hc, ok := cfg.Compiler.(hitCompiler); ok {
		res, hit = hc.CompileHit(cfg.filename(), cur)
		sp.SetBool("cache_hit", hit)
	}
	if !hit {
		res = cfg.Compiler.Compile(cfg.filename(), cur)
	}
	sp.SetBool("ok", res.Ok)
	sp.End()
	return res
}

// preclean runs the deterministic rule-based fixer, which the paper
// applies to every LLM-generated sample before compilation.
func preclean(code string, t *Transcript) string {
	res := fixer.Fix(code)
	t.FixerRules = append(t.FixerRules, res.Applied...)
	return res.Code
}

// observe builds the observation/feedback text for one compile: the
// persona log, plus (analyzer on) the semantic-lint findings for the
// candidate. The lint lines ride along in the prompt without being
// mistaken for compile errors — their format deliberately matches none
// of the compiler-log dialects the model's log analysis parses, so the
// error taxonomy, retrieval, and repair strategy selection are
// byte-identical with the analyzer on or off.
func observe(cfg Config, code string, res compiler.Result, t *Transcript) string {
	if cfg.DisableAnalyzer {
		return res.Log
	}
	findings := analyze.Source(code, analyze.Options{})
	if len(findings) == 0 {
		return res.Log
	}
	t.LintFindings += len(findings)
	return strings.TrimRight(res.Log, "\n") + "\n" + analyze.RenderText(cfg.filename(), findings)
}

// RunOneShot is the baseline: one compile for feedback, one revision, one
// verifying compile. No reasoning steps, no iteration.
func RunOneShot(cfg Config, code string) *Transcript {
	t := &Transcript{}
	cur := preclean(code, t)

	t.add(StepAction, "Compiler", "submitting the candidate code")
	res := compileStep(cfg, cfg.Span, cur)
	if res.Ok {
		t.add(StepObservation, "", res.Log)
		t.Success = true
		t.FinalCode = cur
		t.add(StepAction, "Finish", "the code already compiles")
		return t
	}
	obs := observe(cfg, cur, res, t)
	t.add(StepObservation, "", obs)

	var guidance []rag.Entry
	if cfg.DB != nil && cfg.Compiler.InfoScore() > 0 {
		// Retrieval keys on the raw compiler log: lint lines carry no
		// error tags and would only dilute fuzzy matching.
		rs := cfg.Span.Child("rag")
		guidance = cfg.retriever().Retrieve(cfg.DB, res.Log, 4)
		rs.SetInt("entries", int64(len(guidance)))
		rs.End()
		t.add(StepAction, "RAG", "retrieving guidance for the compiler log")
		t.add(StepObservation, "", rag.Render(guidance))
	}

	ls := cfg.Span.Child("llm")
	rep := cfg.Model.Repair(llm.RepairRequest{
		Code:       cur,
		Feedback:   obs,
		Guidance:   guidance,
		Thought:    false,
		SampleSeed: cfg.SampleSeed,
		Iteration:  0,
	})
	ls.End()
	t.Iterations = 1
	cur = preclean(rep.Code, t)
	t.add(StepAction, "Revise", strings.Join(rep.Notes, "; "))

	final := compileStep(cfg, cfg.Span, cur)
	t.add(StepAction, "Compiler", "submitting the revised code")
	t.add(StepObservation, "", final.Log)
	t.Success = final.Ok
	t.FinalCode = cur
	t.add(StepAction, "Finish", "returning the revised code")
	return t
}

// RunReAct is the full RTLFixer loop: Thought → Action → Observation,
// iterating revisions until the compiler passes or the budget runs out.
func RunReAct(cfg Config, code string) *Transcript {
	t := &Transcript{}
	cur := preclean(code, t)

	res := compileStep(cfg, cfg.Span, cur)
	t.add(StepAction, "Compiler", "submitting the candidate code")
	if res.Ok {
		t.add(StepObservation, "", res.Log)
		t.Success = true
		t.FinalCode = cur
		t.add(StepAction, "Finish", "the code already compiles")
		return t
	}
	obs := observe(cfg, cur, res, t)
	t.add(StepObservation, "", obs)

	for iter := 1; iter <= cfg.maxIters(); iter++ {
		it := cfg.Span.Child("iteration")
		it.SetInt("n", int64(iter))
		hyps := llm.AnalyzeLog(res.Log)
		t.add(StepThought, "", llm.Thought(res.Log, hyps))

		var guidance []rag.Entry
		if cfg.DB != nil && cfg.Compiler.InfoScore() > 0 {
			// Raw log only: lint lines carry no retrievable error tags.
			rs := it.Child("rag")
			guidance = cfg.retriever().Retrieve(cfg.DB, res.Log, 4)
			rs.SetInt("entries", int64(len(guidance)))
			rs.End()
			t.add(StepAction, "RAG", firstLogLine(res.Log))
			t.add(StepObservation, "", rag.Render(guidance))
		}

		ls := it.Child("llm")
		rep := cfg.Model.Repair(llm.RepairRequest{
			Code:       cur,
			Feedback:   obs,
			Guidance:   guidance,
			Thought:    true,
			SampleSeed: cfg.SampleSeed,
			Iteration:  iter,
		})
		ls.End()
		t.Iterations = iter
		cur = preclean(rep.Code, t)
		t.add(StepAction, "Revise", strings.Join(rep.Notes, "; "))

		res = compileStep(cfg, it, cur)
		t.add(StepAction, "Compiler", "submitting the revised code")
		if res.Ok {
			t.add(StepObservation, "", res.Log)
			t.Success = true
			t.FinalCode = cur
			t.add(StepAction, "Finish", "the revised code compiles cleanly")
			it.End()
			return t
		}
		obs = observe(cfg, cur, res, t)
		t.add(StepObservation, "", obs)
		it.End()
	}
	t.FinalCode = cur
	t.add(StepAction, "Finish", "iteration budget exhausted; returning the best attempt")
	return t
}

func firstLogLine(log string) string {
	for _, line := range strings.Split(log, "\n") {
		if strings.TrimSpace(line) != "" {
			return strings.TrimSpace(line)
		}
	}
	return log
}
