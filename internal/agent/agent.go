// Package agent implements the autonomous debugging loop of RTLFixer: the
// ReAct prompting scheme (interleaved Thought / Action / Observation
// steps, §3.2) and the One-shot baseline it is compared against (single
// feedback turn, no iteration).
//
// The agent's tools are the ones Fig. 2b lists:
//
//	(1) Compiler[code] — compile, observe the log
//	(2) RAG[logs]      — retrieve expert guidance for the log
//	(3) Finish[answer] — return the final code
//
// plus the implicit "revise" act in which the LLM rewrites the code.
package agent

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analyze"
	"repro/internal/compiler"
	"repro/internal/fault"
	"repro/internal/fixer"
	"repro/internal/llm"
	"repro/internal/rag"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// DefaultMaxIterations is the paper's ReAct budget: "we restrict the LLM
// to a maximum of 10 iterations of Thought-Action-Observation".
const DefaultMaxIterations = 10

// StepKind labels a transcript step.
type StepKind string

// Step kinds.
const (
	StepThought     StepKind = "Thought"
	StepAction      StepKind = "Action"
	StepObservation StepKind = "Observation"
)

// Step is one transcript entry.
type Step struct {
	Kind StepKind
	// Tool names the action's tool (Compiler, RAG, Revise, Finish) when
	// Kind is StepAction.
	Tool    string
	Content string
}

// Transcript records one debugging session.
type Transcript struct {
	Steps []Step
	// Iterations counts code revisions attempted.
	Iterations int
	// Success is true when the final code compiles.
	Success bool
	// FinalCode is the last code version (fixed or not).
	FinalCode string
	// FixerRules lists rule names the deterministic pre-fixer applied.
	FixerRules []string
	// LintFindings counts semantic-lint findings surfaced to the model
	// across all iterations (0 when the analyzer is disabled).
	LintFindings int
	// LLMRetries counts backend calls that needed a retry (transient
	// failures absorbed by the resilience layer; 0 without injection).
	LLMRetries int
	// Aborted is non-empty when the run ended early because the LLM
	// backend failed past the retry policy: FinalCode is the last good
	// candidate and Success is false. The serving layer maps this to a
	// typed 502 and a breaker failure.
	Aborted string
}

func (t *Transcript) add(kind StepKind, tool, content string) {
	t.Steps = append(t.Steps, Step{Kind: kind, Tool: tool, Content: content})
}

// Render formats the transcript in the paper's Fig. 2c style.
func (t *Transcript) Render() string {
	var b strings.Builder
	thoughtN, actionN, obsN := 0, 0, 0
	for _, s := range t.Steps {
		switch s.Kind {
		case StepThought:
			thoughtN++
			fmt.Fprintf(&b, "Thought %d:\n%s\n\n", thoughtN, s.Content)
		case StepAction:
			actionN++
			fmt.Fprintf(&b, "Action %d: %s\n%s\n\n", actionN, s.Tool, s.Content)
		case StepObservation:
			obsN++
			fmt.Fprintf(&b, "Observation %d:\n%s\n\n", obsN, s.Content)
		}
	}
	fmt.Fprintf(&b, "Result: success=%v after %d iteration(s)\n", t.Success, t.Iterations)
	return b.String()
}

// Config wires the agent's collaborators.
type Config struct {
	// Compiler is the feedback persona.
	Compiler compiler.Compiler
	// Model is the simulated LLM.
	Model *llm.Model
	// DB enables RAG when non-nil.
	DB *rag.Database
	// Retriever selects guidance; nil defaults to the paper's exact-tag
	// retriever.
	Retriever rag.Retriever
	// MaxIterations bounds ReAct; 0 means DefaultMaxIterations.
	MaxIterations int
	// Filename appears in compiler logs.
	Filename string
	// SampleSeed identifies the problem instance for the model's
	// deterministic capability rolls.
	SampleSeed int64
	// DisableAnalyzer turns off the semantic lint engine whose findings
	// are appended to every compile observation the model sees. The zero
	// value keeps it on.
	DisableAnalyzer bool
	// Span, when non-nil, is the parent trace span under which the loop
	// records its stage children (iteration, compile, rag, llm). Nil
	// disables tracing: the no-op span chain keeps the loop
	// allocation-free, and transcripts are identical either way.
	Span *trace.Span
	// Retry tunes the backoff around transient LLM backend failures; the
	// zero value applies the agent defaults (4 attempts, 2ms base, 50ms
	// cap, an 8-retry budget per run). Only consulted when fault
	// injection is active — the simulated backend cannot fail on its own,
	// so production transcripts never touch the retry RNG.
	Retry resilience.RetryPolicy
}

// retryPolicy resolves the run's retry policy, giving each run its own
// retry budget unless the caller supplied one.
func (c Config) retryPolicy() resilience.RetryPolicy {
	p := c.Retry
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	if p.Budget == nil {
		p.Budget = resilience.NewBudget(8)
	}
	return p
}

func (c Config) retriever() rag.Retriever {
	if c.Retriever != nil {
		return c.Retriever
	}
	return rag.ExactTag{}
}

func (c Config) maxIters() int {
	if c.MaxIterations > 0 {
		return c.MaxIterations
	}
	return DefaultMaxIterations
}

func (c Config) filename() string {
	if c.Filename != "" {
		return c.Filename
	}
	return "main.v"
}

// hitCompiler is the optional probe the memo layer's cached compiler
// implements. The tracer uses it to attribute cache hits on compile
// spans without widening the compiler.Compiler interface; a hit counts
// in the cache statistics exactly as a Compile hit would, and a miss
// has no side effects, so memo transparency is undisturbed.
type hitCompiler interface {
	CompileHit(filename, src string) (compiler.Result, bool)
}

// compileStep compiles cur under a "compile" child span of parent,
// annotating the outcome and — when the compiler is the memo layer's
// cached wrapper — whether the result was served from cache. With a nil
// parent this is exactly cfg.Compiler.Compile: no probe, no spans, no
// allocations.
func compileStep(cfg Config, parent *trace.Span, cur string) compiler.Result {
	fault.Delay(fault.CompileStall)
	sp := parent.Child("compile")
	if sp == nil {
		return cfg.Compiler.Compile(cfg.filename(), cur)
	}
	var res compiler.Result
	hit := false
	if hc, ok := cfg.Compiler.(hitCompiler); ok {
		res, hit = hc.CompileHit(cfg.filename(), cur)
		sp.SetBool("cache_hit", hit)
	}
	if !hit {
		res = cfg.Compiler.Compile(cfg.filename(), cur)
	}
	sp.SetBool("ok", res.Ok)
	sp.End()
	return res
}

// preclean runs the deterministic rule-based fixer, which the paper
// applies to every LLM-generated sample before compilation.
func preclean(code string, t *Transcript) string {
	res := fixer.Fix(code)
	t.FixerRules = append(t.FixerRules, res.Applied...)
	return res.Code
}

// observe builds the observation/feedback text for one compile: the
// persona log, plus (analyzer on) the semantic-lint findings for the
// candidate. The lint lines ride along in the prompt without being
// mistaken for compile errors — their format deliberately matches none
// of the compiler-log dialects the model's log analysis parses, so the
// error taxonomy, retrieval, and repair strategy selection are
// byte-identical with the analyzer on or off.
func observe(cfg Config, code string, res compiler.Result, t *Transcript) string {
	if cfg.DisableAnalyzer {
		return res.Log
	}
	// Analyzer failure is never fatal (degradation ladder): a panicking
	// rule just means this observation carries no lint lines.
	findings, err := analyze.SafeSource(code, analyze.Options{})
	if err != nil || len(findings) == 0 {
		return res.Log
	}
	t.LintFindings += len(findings)
	return strings.TrimRight(res.Log, "\n") + "\n" + analyze.RenderText(cfg.filename(), findings)
}

// llmStep consults the backend once under a "llm" child span. Without
// fault injection it is exactly cfg.Model.Repair — no retry closure, no
// RNG draw, byte-identical transcripts. Under injection it layers the
// llm.* fault points behind the retry policy: transient failures are
// retried with backoff (counted on the transcript), persistent ones
// abort the run, and garbage output is mutated after a successful call
// so the loop has to iterate its way out.
func llmStep(cfg Config, parent *trace.Span, pol resilience.RetryPolicy, req llm.RepairRequest, t *Transcript) (llm.RepairResult, error) {
	ls := parent.Child("llm")
	if !fault.Enabled() {
		rep := cfg.Model.Repair(req)
		ls.End()
		return rep, nil
	}
	var rep llm.RepairResult
	stats, err := pol.Do(func() error {
		if fault.Hit(fault.LLMPersistent) {
			return fmt.Errorf("llm backend unavailable: %w", &fault.Error{Point: fault.LLMPersistent})
		}
		if fault.Hit(fault.LLMTransient) {
			return resilience.MarkTransient(fmt.Errorf("llm backend timeout: %w", &fault.Error{Point: fault.LLMTransient}))
		}
		rep = cfg.Model.Repair(req)
		return nil
	})
	t.LLMRetries += stats.Retries
	if stats.Retries > 0 {
		ls.SetInt("retries", int64(stats.Retries))
	}
	if err != nil {
		ls.SetStr("error", err.Error())
		ls.End()
		return rep, err
	}
	if fault.Hit(fault.LLMGarbage) {
		rep.Code = garble(rep.Code)
		rep.Notes = append(rep.Notes, "the backend returned garbled output")
	}
	ls.End()
	return rep, nil
}

// garble mangles a repair the way a truncated/corrupted backend
// response would: half the code followed by junk tokens. The loop's
// next compile fails and iteration continues — garbage output degrades
// quality, it must never wedge the run.
func garble(code string) string {
	if len(code) < 8 {
		return "<<garbled backend output>> @@#!"
	}
	return code[:len(code)/2] + "\n<<garbled backend output>> @@#!\n"
}

// abortRun finishes a transcript whose backend failed past the retry
// policy: the last good candidate is the answer, marked aborted.
func abortRun(t *Transcript, cur string, err error) *Transcript {
	t.Aborted = err.Error()
	t.FinalCode = cur
	t.add(StepAction, "Finish", "aborted: "+err.Error())
	return t
}

// RunOneShot is the baseline: one compile for feedback, one revision, one
// verifying compile. No reasoning steps, no iteration.
func RunOneShot(cfg Config, code string) *Transcript {
	t := &Transcript{}
	cur := preclean(code, t)

	t.add(StepAction, "Compiler", "submitting the candidate code")
	res := compileStep(cfg, cfg.Span, cur)
	if res.Ok {
		t.add(StepObservation, "", res.Log)
		t.Success = true
		t.FinalCode = cur
		t.add(StepAction, "Finish", "the code already compiles")
		return t
	}
	obs := observe(cfg, cur, res, t)
	t.add(StepObservation, "", obs)

	var guidance []rag.Entry
	if cfg.DB != nil && cfg.Compiler.InfoScore() > 0 {
		// Retrieval keys on the raw compiler log: lint lines carry no
		// error tags and would only dilute fuzzy matching.
		rs := cfg.Span.Child("rag")
		guidance = cfg.retriever().Retrieve(cfg.DB, res.Log, 4)
		rs.SetInt("entries", int64(len(guidance)))
		rs.End()
		t.add(StepAction, "RAG", "retrieving guidance for the compiler log")
		t.add(StepObservation, "", rag.Render(guidance))
	}

	rep, rerr := llmStep(cfg, cfg.Span, cfg.retryPolicy(), llm.RepairRequest{
		Code:       cur,
		Feedback:   obs,
		Guidance:   guidance,
		Thought:    false,
		SampleSeed: cfg.SampleSeed,
		Iteration:  0,
	}, t)
	if rerr != nil {
		return abortRun(t, cur, rerr)
	}
	t.Iterations = 1
	cur = preclean(rep.Code, t)
	t.add(StepAction, "Revise", strings.Join(rep.Notes, "; "))

	final := compileStep(cfg, cfg.Span, cur)
	t.add(StepAction, "Compiler", "submitting the revised code")
	t.add(StepObservation, "", final.Log)
	t.Success = final.Ok
	t.FinalCode = cur
	t.add(StepAction, "Finish", "returning the revised code")
	return t
}

// RunReAct is the full RTLFixer loop: Thought → Action → Observation,
// iterating revisions until the compiler passes or the budget runs out.
func RunReAct(cfg Config, code string) *Transcript {
	t := &Transcript{}
	cur := preclean(code, t)

	res := compileStep(cfg, cfg.Span, cur)
	t.add(StepAction, "Compiler", "submitting the candidate code")
	if res.Ok {
		t.add(StepObservation, "", res.Log)
		t.Success = true
		t.FinalCode = cur
		t.add(StepAction, "Finish", "the code already compiles")
		return t
	}
	obs := observe(cfg, cur, res, t)
	t.add(StepObservation, "", obs)

	pol := cfg.retryPolicy() // one retry budget across all iterations
	for iter := 1; iter <= cfg.maxIters(); iter++ {
		it := cfg.Span.Child("iteration")
		it.SetInt("n", int64(iter))
		hyps := llm.AnalyzeLog(res.Log)
		t.add(StepThought, "", llm.Thought(res.Log, hyps))

		var guidance []rag.Entry
		if cfg.DB != nil && cfg.Compiler.InfoScore() > 0 {
			// Raw log only: lint lines carry no retrievable error tags.
			rs := it.Child("rag")
			guidance = cfg.retriever().Retrieve(cfg.DB, res.Log, 4)
			rs.SetInt("entries", int64(len(guidance)))
			rs.End()
			t.add(StepAction, "RAG", firstLogLine(res.Log))
			t.add(StepObservation, "", rag.Render(guidance))
		}

		rep, rerr := llmStep(cfg, it, pol, llm.RepairRequest{
			Code:       cur,
			Feedback:   obs,
			Guidance:   guidance,
			Thought:    true,
			SampleSeed: cfg.SampleSeed,
			Iteration:  iter,
		}, t)
		if rerr != nil {
			it.End()
			return abortRun(t, cur, rerr)
		}
		t.Iterations = iter
		cur = preclean(rep.Code, t)
		t.add(StepAction, "Revise", strings.Join(rep.Notes, "; "))

		res = compileStep(cfg, it, cur)
		t.add(StepAction, "Compiler", "submitting the revised code")
		if res.Ok {
			t.add(StepObservation, "", res.Log)
			t.Success = true
			t.FinalCode = cur
			t.add(StepAction, "Finish", "the revised code compiles cleanly")
			it.End()
			return t
		}
		obs = observe(cfg, cur, res, t)
		t.add(StepObservation, "", obs)
		it.End()
	}
	t.FinalCode = cur
	t.add(StepAction, "Finish", "iteration budget exhausted; returning the best attempt")
	return t
}

func firstLogLine(log string) string {
	for _, line := range strings.Split(log, "\n") {
		if strings.TrimSpace(line) != "" {
			return strings.TrimSpace(line)
		}
	}
	return log
}
