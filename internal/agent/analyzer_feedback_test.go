package agent

import (
	"strings"
	"testing"
)

// latchWithSemaError parses cleanly but fails elaboration (undeclared
// identifiers), the common mid-repair state: the analyzer must still
// surface the inferred latch alongside the compile errors.
const latchWithSemaError = `module top_module (
	input sel,
	input a,
	output reg y
);
	always @(*) begin
		if (sel) y = a;
	end
	assign y2 = missing_signal;
endmodule
`

func TestAnalyzerFindingsReachModelFeedback(t *testing.T) {
	cfg := quartusCfg(7, false)
	cfg.MaxIterations = 1
	tr := RunReAct(cfg, latchWithSemaError)

	var lintObs string
	for _, s := range tr.Steps {
		if s.Kind == StepObservation && strings.Contains(s.Content, "lint: main.v:") {
			lintObs = s.Content
			break
		}
	}
	if lintObs == "" {
		t.Fatalf("no observation carries lint findings:\n%s", tr.Render())
	}
	// The observation text is the same string passed as
	// RepairRequest.Feedback, so asserting it asserts the prompt.
	if !strings.Contains(lintObs, "[L001 inferred-latch]") {
		t.Fatalf("latch finding missing from feedback:\n%s", lintObs)
	}
	if !strings.Contains(lintObs, "Error (") && !strings.Contains(lintObs, "error") {
		t.Fatalf("compiler log vanished from the observation:\n%s", lintObs)
	}
	if tr.LintFindings == 0 {
		t.Fatal("transcript did not count surfaced findings")
	}

	cfg.DisableAnalyzer = true
	tr = RunReAct(cfg, latchWithSemaError)
	for _, s := range tr.Steps {
		if strings.Contains(s.Content, "lint:") {
			t.Fatalf("lint line surfaced with the analyzer disabled: %q", s.Content)
		}
	}
	if tr.LintFindings != 0 {
		t.Fatalf("LintFindings = %d with analyzer disabled", tr.LintFindings)
	}
}

func TestAnalyzerFeedbackInOneShot(t *testing.T) {
	cfg := quartusCfg(3, false)
	tr := RunOneShot(cfg, latchWithSemaError)
	found := false
	for _, s := range tr.Steps {
		if s.Kind == StepObservation && strings.Contains(s.Content, "[L001 inferred-latch]") {
			found = true
		}
	}
	if !found {
		t.Fatalf("one-shot feedback carries no analyzer findings:\n%s", tr.Render())
	}
}

// TestAnalyzerTransparentToFixRate pins the design guarantee behind the
// analyzer A/B: the simulated model's log analysis ignores the lint
// dialect, so surfacing findings changes the prompt text but not the
// repair trajectory — fix outcomes are identical with the analyzer on
// or off (a real LLM would, of course, read the extra lines).
func TestAnalyzerTransparentToFixRate(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		on := RunReAct(quartusCfg(seed, true), brokenClk)
		offCfg := quartusCfg(seed, true)
		offCfg.DisableAnalyzer = true
		off := RunReAct(offCfg, brokenClk)
		if on.Success != off.Success || on.Iterations != off.Iterations || on.FinalCode != off.FinalCode {
			t.Fatalf("seed %d: analyzer changed the outcome: on=(%v,%d) off=(%v,%d)",
				seed, on.Success, on.Iterations, off.Success, off.Iterations)
		}
	}
}
