package agent

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/llm"
	"repro/internal/rag"
)

const brokenClk = `module top_module (
	input [7:0] in,
	output reg [7:0] out
);
	always @(posedge clk) begin
		out <= in;
	end
endmodule
`

const cleanSrc = `module m(input a, output y);
	assign y = ~a;
endmodule
`

func quartusCfg(seed int64, ragOn bool) Config {
	cfg := Config{
		Compiler:   compiler.Quartus{},
		Model:      llm.NewModel(llm.GPT35(), seed),
		Filename:   "main.v",
		SampleSeed: seed,
	}
	if ragOn {
		cfg.DB = rag.QuartusDB()
	}
	return cfg
}

func TestReActFixesAcrossSeeds(t *testing.T) {
	fixed := 0
	for seed := int64(0); seed < 10; seed++ {
		tr := RunReAct(quartusCfg(seed, true), brokenClk)
		if tr.Success {
			fixed++
			if res := (compiler.Quartus{}).Compile("x.v", tr.FinalCode); !res.Ok {
				t.Fatalf("success claimed but final code fails:\n%s", tr.FinalCode)
			}
		}
	}
	if fixed < 8 {
		t.Fatalf("ReAct+RAG fixed only %d/10", fixed)
	}
}

func TestReActCleanCodeZeroIterations(t *testing.T) {
	tr := RunReAct(quartusCfg(1, false), cleanSrc)
	if !tr.Success || tr.Iterations != 0 {
		t.Fatalf("success=%v iterations=%d", tr.Success, tr.Iterations)
	}
}

func TestReActRespectsIterationBudget(t *testing.T) {
	cfg := quartusCfg(3, false)
	cfg.MaxIterations = 2
	// hopeless input: not Verilog at all
	tr := RunReAct(cfg, "module m(input a, output y);\nthis is not verilog at all\nqqq www eee\nendmodule")
	if tr.Iterations > 2 {
		t.Fatalf("budget exceeded: %d iterations", tr.Iterations)
	}
}

func TestReActTranscriptStructure(t *testing.T) {
	tr := RunReAct(quartusCfg(5, true), brokenClk)
	var thoughts, compiles, rags int
	for _, s := range tr.Steps {
		switch {
		case s.Kind == StepThought:
			thoughts++
		case s.Kind == StepAction && s.Tool == "Compiler":
			compiles++
		case s.Kind == StepAction && s.Tool == "RAG":
			rags++
		}
	}
	if thoughts == 0 {
		t.Error("no Thought steps recorded")
	}
	if compiles < 2 {
		t.Errorf("expected at least initial+verify compiles, got %d", compiles)
	}
	if rags == 0 {
		t.Error("RAG enabled but never consulted")
	}
	rendered := tr.Render()
	for _, want := range []string{"Thought 1:", "Action", "Observation", "Result:"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestOneShotExactlyOneRevision(t *testing.T) {
	tr := RunOneShot(quartusCfg(2, false), brokenClk)
	if tr.Iterations != 1 {
		t.Fatalf("one-shot iterations = %d", tr.Iterations)
	}
	// No Thought steps in one-shot: the baseline excludes reasoning.
	for _, s := range tr.Steps {
		if s.Kind == StepThought {
			t.Fatal("one-shot must not produce Thought steps")
		}
	}
}

func TestOneShotCleanCode(t *testing.T) {
	tr := RunOneShot(quartusCfg(2, false), cleanSrc)
	if !tr.Success || tr.Iterations != 0 {
		t.Fatalf("success=%v iterations=%d", tr.Success, tr.Iterations)
	}
}

func TestSimplePersonaNoRAGStep(t *testing.T) {
	cfg := Config{
		Compiler:   compiler.Simple{},
		Model:      llm.NewModel(llm.GPT35(), 4),
		DB:         rag.QuartusDB(), // present but unusable without a log
		Filename:   "main.v",
		SampleSeed: 4,
	}
	tr := RunReAct(cfg, brokenClk)
	for _, s := range tr.Steps {
		if s.Kind == StepAction && s.Tool == "RAG" {
			t.Fatal("RAG must not run with the Simple persona (no log to retrieve from)")
		}
	}
}

func TestFixerRulesRecordedInTranscript(t *testing.T) {
	wrapped := "```verilog\n" + cleanSrc + "```"
	tr := RunReAct(quartusCfg(6, false), wrapped)
	if !tr.Success {
		t.Fatal("markdown-wrapped clean code must pass after the pre-fixer")
	}
	if len(tr.FixerRules) == 0 {
		t.Fatal("fixer rules should be recorded")
	}
}

func TestReActIterationsCounted(t *testing.T) {
	tr := RunReAct(quartusCfg(7, true), brokenClk)
	if tr.Success && tr.Iterations < 1 {
		t.Fatal("a fixed broken sample needs at least one revision")
	}
}

func TestDeterministicTranscripts(t *testing.T) {
	a := RunReAct(quartusCfg(9, true), brokenClk)
	b := RunReAct(quartusCfg(9, true), brokenClk)
	if a.Render() != b.Render() {
		t.Fatal("same seed must reproduce the same transcript")
	}
}
