package fuzz

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sema"
	"repro/internal/verilog"
)

func TestGeneratorDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(seed)
		b := Generate(seed)
		if a != b {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
	if Generate(1) == Generate(2) {
		t.Fatal("distinct seeds produced identical modules")
	}
}

// TestGeneratorCompileRate holds the generator to its "always
// compilable" contract: the frontend must accept nearly every module.
// A small miss rate is tolerated for hazard mutations that land on an
// unlucky site; a big one means the generator regressed.
func TestGeneratorCompileRate(t *testing.T) {
	const n = 300
	ok := 0
	for seed := int64(0); seed < n; seed++ {
		src := Generate(seed)
		file, diags := verilog.Parse(src)
		if diags.HasErrors() {
			t.Logf("seed %d: parse: %s\n%s", seed, diags.Summary(), src)
			continue
		}
		if _, diags := sema.Elaborate(file); diags.HasErrors() {
			t.Logf("seed %d: sema: %s\n%s", seed, diags.Summary(), src)
			continue
		}
		ok++
	}
	if rate := float64(ok) / n; rate < 0.95 {
		t.Fatalf("compile rate %.2f < 0.95 (%d/%d)", rate, ok, n)
	}
}

// TestCampaignSmoke runs a small deterministic campaign and requires
// zero divergences — the same property CI's fuzz-smoke job checks at
// larger scale.
func TestCampaignSmoke(t *testing.T) {
	count := 150
	if testing.Short() {
		count = 30
	}
	stats, finds := Run(Options{Seed: 1, Count: count, Cycles: 8})
	if stats.Checked == 0 {
		t.Fatal("campaign checked nothing")
	}
	for _, d := range finds {
		t.Errorf("seed %d diverged: %s\nminimized:\n%s", d.Seed, d.Mismatch, d.Minimized)
	}
}

// TestMinimizerShrinks drives the delta-debugging loop with a
// synthetic interestingness predicate (module still contains the
// aliasing store and still elaborates) and checks it strips the noise
// statements around it.
func TestMinimizerShrinks(t *testing.T) {
	src := `
module m(input clk, input [7:0] d0, input [7:0] d1, output reg [7:0] q, output reg [7:0] r);
	wire [7:0] t0 = d0 ^ d1;
	wire [7:0] t1 = t0 + 1;
	always @(posedge clk) begin
		r <= d1 & t1;
		if (d0[0])
			r <= r + 1;
		else
			r <= r - 1;
	end
	always @(posedge clk) begin
		q = d0;
		q[4:1] = q;
		r <= q ^ d1;
	end
endmodule`
	check := func(cand string) bool {
		if !strings.Contains(cand, "q[4:1] = q") {
			return false
		}
		file, diags := verilog.Parse(cand)
		if diags.HasErrors() {
			return false
		}
		_, diags = sema.Elaborate(file)
		return !diags.HasErrors()
	}
	min := MinimizeWith(src, check)
	if !check(min) {
		t.Fatalf("minimized output fails its own predicate:\n%s", min)
	}
	if got, want := LineCount(min), LineCount(src); got >= want {
		t.Fatalf("no shrinkage: %d lines -> %d lines\n%s", want, got, min)
	}
	if LineCount(min) > 10 {
		t.Fatalf("expected a <=10 line repro, got %d lines:\n%s", LineCount(min), min)
	}
	for _, noise := range []string{"t0", "t1", "if ("} {
		if strings.Contains(min, noise) {
			t.Fatalf("noise %q survived minimization:\n%s", noise, min)
		}
	}
}

// TestMinimizeRealDivergence checks the end-to-end contract on a
// module that genuinely diverged before the aliasing fixes: now that
// both backends agree, Minimize must refuse to "shrink" a non-repro.
func TestMinimizeRealDivergence(t *testing.T) {
	src := `module m(input clk, input [7:0] d, output reg [7:0] q);
	always @(posedge clk) begin
		q = d;
		q[4:1] = q;
	end
endmodule`
	if got := Minimize(src, 16, 5); got != src {
		t.Fatalf("Minimize altered a non-diverging module:\n%s", got)
	}
}

func TestTestCaseRendering(t *testing.T) {
	src := "module m(input clk, input a, output reg y);\n\talways @(posedge clk) y <= a;\nendmodule\n"
	tc := TestCase("fuzz_seed_9", src, 12, 9)
	for _, want := range []string{`name: "fuzz_seed_9"`, `clock: "clk"`, "cycles: 12", "seed: 9", "endmodule"} {
		if !strings.Contains(tc, want) {
			t.Fatalf("test case missing %q:\n%s", want, tc)
		}
	}
	if strings.Contains(tc, "`\n`") || strings.Count(tc, "`") != 2 {
		t.Fatalf("backquote hygiene: %s", tc)
	}
}

// TestAliasOracle pins the static cross-check: the L010 rule fires on
// the generator's signature alias shapes and stays quiet on a module
// without them.
func TestAliasOracle(t *testing.T) {
	dirty := `module fz(input clk, input [7:0] d0, output reg [7:0] q0);
	always @(posedge clk) begin
		q0 = d0;
		q0[4:1] = q0;
	end
endmodule
`
	if n := len(AliasFindingsFor(dirty)); n == 0 {
		t.Fatal("alias oracle missed a self-aliasing slice store")
	}
	clean := `module fz(input clk, input [7:0] d0, output reg [7:0] q0);
	always @(posedge clk) q0 <= d0;
endmodule
`
	if fs := AliasFindingsFor(clean); len(fs) != 0 {
		t.Fatalf("alias oracle fired on a clean module: %v", fs)
	}
}

// TestAliasBiasStreamStability guards CI replayability: with AliasBias
// zero the generator must emit exactly the bytes it always has, and with
// bias on, alias-hazard shapes become more common.
func TestAliasBiasStreamStability(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		plain := Generate(seed)
		unbiased := GenerateWith(seed, GenConfig{AliasBias: 0})
		if plain != unbiased {
			t.Fatalf("seed %d: zero AliasBias changed the generated stream", seed)
		}
	}
	hits := func(bias float64) int {
		n := 0
		for seed := int64(0); seed < 300; seed++ {
			if len(AliasFindingsFor(GenerateWith(seed, GenConfig{AliasBias: bias, MutateProb: -1}))) > 0 {
				n++
			}
		}
		return n
	}
	base, biased := hits(0), hits(1)
	if biased <= base {
		t.Fatalf("AliasBias=1 did not raise alias-hazard density: %d vs %d", biased, base)
	}
}

// TestCampaignReportsAnalyzerVerdict checks divergences carry the
// oracle's verdict (any diverging seed will do; rely on a known one).
func TestCampaignReportsAnalyzerVerdict(t *testing.T) {
	stats, finds := Run(Options{Seed: 0, Count: 400, Cycles: 8})
	if stats.Diverged != len(finds) {
		t.Fatalf("stats.Diverged=%d but %d finds", stats.Diverged, len(finds))
	}
	clean := 0
	for _, d := range finds {
		if d.AnalyzerClean != (d.AliasFindings == 0) {
			t.Fatalf("seed %d: inconsistent oracle verdict: %+v", d.Seed, d)
		}
		if d.AnalyzerClean {
			clean++
			if d.Priority() != "high" {
				t.Fatalf("clean divergence not high priority")
			}
		} else if d.Priority() != "normal" {
			t.Fatalf("flagged divergence not normal priority")
		}
	}
	if clean != stats.CleanDiverged {
		t.Fatalf("CleanDiverged=%d, counted %d", stats.CleanDiverged, clean)
	}
}

// TestCoverageGuided runs a short coverage-guided campaign and asserts
// the corpus signature grows monotonically and ends nonzero.
func TestCoverageGuided(t *testing.T) {
	var growth []int
	stats, _ := Run(Options{
		Seed: 0, Count: 60, Cycles: 6, Coverage: true,
		CoverageLog: func(line string) {
			var seed int64
			var cov, delta int
			if _, err := fmt.Sscanf(line, "corpus+ seed=%d coverage=%d (+%d)", &seed, &cov, &delta); err != nil {
				t.Fatalf("unparseable coverage log line %q: %v", line, err)
			}
			growth = append(growth, cov)
		},
	})
	if !stats.CoverageOn || stats.Corpus == 0 || stats.CoveragePoints == 0 {
		t.Fatalf("coverage guidance produced nothing: %+v", stats)
	}
	if len(growth) != stats.Corpus {
		t.Fatalf("%d log lines for %d admissions", len(growth), stats.Corpus)
	}
	for i := 1; i < len(growth); i++ {
		if growth[i] <= growth[i-1] {
			t.Fatalf("corpus coverage not monotonically increasing: %v", growth)
		}
	}
	if growth[len(growth)-1] != stats.CoveragePoints {
		t.Fatalf("final log %d != stats %d", growth[len(growth)-1], stats.CoveragePoints)
	}
	if !strings.Contains(stats.String(), "corpus=") {
		t.Fatalf("Stats.String missing corpus tallies: %s", stats)
	}
	// The default (unguided) rendering must stay byte-stable.
	if strings.Contains((Stats{}).String(), "corpus=") {
		t.Fatal("unguided Stats.String must not mention corpus")
	}
}
